// Package mobility implements the design-time phase of the paper's
// replacement technique (Fig. 6): computing, for every task of a graph,
// how many events its reconfiguration can be postponed without degrading
// the graph's isolated makespan.
//
// The calculation simulates the graph alone on an otherwise-empty system.
// A task's candidate mobility m is tested by forcing its load to skip m
// events (manager.Config.DelayPlan); the largest m that leaves the
// makespan at the reference value is the task's mobility. The first task
// of the reconfiguration sequence is pinned to mobility 0, as in the
// paper.
//
// The paper performs this work at design time precisely because it is
// orders of magnitude more expensive than a run-time replacement decision
// (its Table II); ComputePureRuntime exists to reproduce that comparison —
// it is the same calculation, packaged the way a purely run-time technique
// would have to invoke it (on every arrival of a graph).
package mobility

import (
	"fmt"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// Table holds the design-time results for one graph under one system
// configuration. Mobility values are indexed by local task index.
type Table struct {
	Graph   *taskgraph.Graph
	RUs     int
	Latency simtime.Time
	// Values[i] is the mobility of the task at local index i.
	Values []int
	// RefMakespan is the reference (all-mobility-zero) isolated makespan.
	RefMakespan simtime.Time
	// Schedules counts how many full schedules were simulated — the cost
	// driver the paper's hybrid split is about.
	Schedules int
}

// saturationCap bounds the candidate-mobility search. A task can never
// usefully skip more events than the isolated schedule generates; the cap
// is a defensive multiple of that.
func saturationCap(g *taskgraph.Graph) int { return 4*g.NumTasks() + 16 }

// Compute runs the design-time phase for g on a system with the given
// number of units and reconfiguration latency.
func Compute(g *taskgraph.Graph, rus int, latency simtime.Time) (*Table, error) {
	if g == nil {
		return nil, fmt.Errorf("mobility: nil graph")
	}
	base := manager.Config{RUs: rus, Latency: latency, Policy: policy.NewLRU()}
	ref, err := isolated(base, g, nil)
	if err != nil {
		return nil, fmt.Errorf("mobility: reference schedule: %w", err)
	}
	t := &Table{
		Graph:       g,
		RUs:         rus,
		Latency:     latency,
		Values:      make([]int, g.NumTasks()),
		RefMakespan: ref.Makespan,
		Schedules:   1,
	}
	rec := g.RecSequence()
	cap := saturationCap(g)
	// Every task except the first of the reconfiguration sequence is a
	// member of the paper's Task Set TS.
	for _, local := range rec[1:] {
		m := 0
		for m < cap {
			trial := m + 1
			res, err := isolated(base, g, map[int]int{local: trial})
			t.Schedules++
			if err != nil {
				return nil, fmt.Errorf("mobility: task %d trial %d: %w",
					g.Task(local).ID, trial, err)
			}
			if res.Makespan.After(ref.Makespan) {
				break // trial infeasible; keep m
			}
			if res.ForcedSkips < trial {
				// The simulator ran out of events before consuming the
				// whole budget: larger budgets behave identically, so the
				// mobility saturates at what was actually consumable.
				m = res.ForcedSkips
				break
			}
			m = trial
		}
		t.Values[local] = m
	}
	return t, nil
}

// isolated simulates g alone under base with the given forced-delay plan.
func isolated(base manager.Config, g *taskgraph.Graph, plan map[int]int) (*manager.Result, error) {
	cfg := base
	cfg.DelayPlan = plan
	return manager.Run(cfg, dynlist.NewSequence(g))
}

// Lookup returns a manager.Config.Mobility function serving the given
// tables (keyed by graph template). Graphs without a table get zero
// mobilities.
func Lookup(tables ...*Table) func(*taskgraph.Graph) []int {
	m := make(map[*taskgraph.Graph][]int, len(tables))
	for _, t := range tables {
		m[t.Graph] = t.Values
	}
	return func(g *taskgraph.Graph) []int { return m[g] }
}

// ComputeAll runs Compute for every distinct template in graphs and
// returns a ready-to-use lookup plus the tables (in first-appearance
// order).
func ComputeAll(graphs []*taskgraph.Graph, rus int, latency simtime.Time) (func(*taskgraph.Graph) []int, []*Table, error) {
	seen := make(map[*taskgraph.Graph]bool)
	var tables []*Table
	for _, g := range graphs {
		if seen[g] {
			continue
		}
		seen[g] = true
		t, err := Compute(g, rus, latency)
		if err != nil {
			return nil, nil, err
		}
		tables = append(tables, t)
	}
	return Lookup(tables...), tables, nil
}

// ComputePureRuntime is the "equivalent purely run-time" technique the
// paper's abstract compares against: the same mobility calculation, but
// performed at run time on each arrival. Benchmarks call it once per
// simulated arrival to measure the cost a purely run-time approach would
// pay; functionally it is identical to Compute.
func ComputePureRuntime(g *taskgraph.Graph, rus int, latency simtime.Time) (*Table, error) {
	return Compute(g, rus, latency)
}

// String renders the table in task-ID order.
func (t *Table) String() string {
	s := fmt.Sprintf("mobility of %s (R=%d, latency %v, ref makespan %v):",
		t.Graph.Name(), t.RUs, t.Latency, t.RefMakespan)
	for _, local := range t.Graph.RecSequence() {
		s += fmt.Sprintf(" %d:%d", t.Graph.Task(local).ID, t.Values[local])
	}
	return s
}
