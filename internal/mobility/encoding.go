package mobility

import (
	"encoding/json"
	"fmt"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// tableJSON is the persisted form of a design-time table: in a real
// deployment this file ships with the application bitstreams and is the
// only design-time artefact the run-time system needs.
type tableJSON struct {
	Graph         string    `json:"graph"`
	RUs           int       `json:"rus"`
	LatencyMs     float64   `json:"latency_ms"`
	RefMakespanMs float64   `json:"ref_makespan_ms"`
	Mobilities    []mobJSON `json:"mobilities"`
	Schedules     int       `json:"schedules,omitempty"`
}

type mobJSON struct {
	Task     taskgraph.TaskID `json:"task"`
	Mobility int              `json:"mobility"`
}

// MarshalJSON exports the table keyed by task ID (stable across runs).
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{
		Graph:         t.Graph.Name(),
		RUs:           t.RUs,
		LatencyMs:     t.Latency.Ms(),
		RefMakespanMs: t.RefMakespan.Ms(),
		Schedules:     t.Schedules,
	}
	for _, local := range t.Graph.RecSequence() {
		out.Mobilities = append(out.Mobilities, mobJSON{
			Task:     t.Graph.Task(local).ID,
			Mobility: t.Values[local],
		})
	}
	return json.Marshal(out)
}

// TableFromJSON restores a table against its graph template. The template
// must match the one the table was computed for (same name and task set).
func TableFromJSON(data []byte, g *taskgraph.Graph) (*Table, error) {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("mobility: decode: %v", err)
	}
	if g == nil {
		return nil, fmt.Errorf("mobility: nil graph template")
	}
	if in.Graph != g.Name() {
		return nil, fmt.Errorf("mobility: table is for graph %q, template is %q", in.Graph, g.Name())
	}
	if len(in.Mobilities) != g.NumTasks() {
		return nil, fmt.Errorf("mobility: table has %d entries, graph has %d tasks",
			len(in.Mobilities), g.NumTasks())
	}
	if in.RUs < 1 {
		return nil, fmt.Errorf("mobility: invalid unit count %d", in.RUs)
	}
	t := &Table{
		Graph:       g,
		RUs:         in.RUs,
		Latency:     simtime.FromMs(in.LatencyMs),
		RefMakespan: simtime.FromMs(in.RefMakespanMs),
		Values:      make([]int, g.NumTasks()),
		Schedules:   in.Schedules,
	}
	for _, m := range in.Mobilities {
		local := g.IndexOf(m.Task)
		if local < 0 {
			return nil, fmt.Errorf("mobility: table mentions task %d absent from %q", m.Task, g.Name())
		}
		if m.Mobility < 0 {
			return nil, fmt.Errorf("mobility: negative mobility %d for task %d", m.Mobility, m.Task)
		}
		t.Values[local] = m.Mobility
	}
	return t, nil
}
