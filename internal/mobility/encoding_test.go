package mobility

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestTableJSONRoundTrip(t *testing.T) {
	g := workload.Fig3TG2()
	tab, err := Compute(g, 4, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"graph":"fig3-tg2"`) {
		t.Errorf("json: %s", data)
	}
	back, err := TableFromJSON(data, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.RUs != tab.RUs || back.Latency != tab.Latency || back.RefMakespan != tab.RefMakespan {
		t.Errorf("header changed: %+v vs %+v", back, tab)
	}
	for i := range tab.Values {
		if back.Values[i] != tab.Values[i] {
			t.Errorf("value %d: %d vs %d", i, back.Values[i], tab.Values[i])
		}
	}
}

func TestTableFromJSONErrors(t *testing.T) {
	g := workload.Fig3TG2()
	tab, err := Compute(g, 4, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	good, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TableFromJSON([]byte("{"), g); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := TableFromJSON(good, nil); err == nil {
		t.Error("nil template accepted")
	}
	if _, err := TableFromJSON(good, workload.JPEG()); err == nil {
		t.Error("wrong template accepted")
	}
	bad := strings.Replace(string(good), `"task":7`, `"task":99`, 1)
	if _, err := TableFromJSON([]byte(bad), g); err == nil {
		t.Error("unknown task accepted")
	}
	bad = strings.Replace(string(good), `"mobility":1`, `"mobility":-3`, 1)
	if _, err := TableFromJSON([]byte(bad), g); err == nil {
		t.Error("negative mobility accepted")
	}
	bad = strings.Replace(string(good), `"rus":4`, `"rus":0`, 1)
	if _, err := TableFromJSON([]byte(bad), g); err == nil {
		t.Error("zero units accepted")
	}
}
