package mobility

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestCachedMatchesCompute(t *testing.T) {
	defer FlushCache()
	FlushCache()
	g := workload.JPEG()
	want, err := Compute(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Cached(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, want.Values) {
		t.Errorf("cached values %v, computed %v", got.Values, want.Values)
	}
	if got.RefMakespan != want.RefMakespan {
		t.Errorf("cached ref makespan %v, computed %v", got.RefMakespan, want.RefMakespan)
	}
	again, err := Cached(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Error("second Cached call did not return the memoized table")
	}
	if CacheLen() != 1 {
		t.Errorf("cache holds %d entries, want 1", CacheLen())
	}
}

func TestCachedKeysDistinguishConfigurations(t *testing.T) {
	defer FlushCache()
	FlushCache()
	g := workload.MPEG1()
	a, err := Cached(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(g, 5, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different RU counts share one cache entry")
	}
	if CacheLen() != 2 {
		t.Errorf("cache holds %d entries, want 2", CacheLen())
	}
}

// TestCachedSingleFlight hammers one key from many goroutines and checks
// every caller gets the same memoized table.
func TestCachedSingleFlight(t *testing.T) {
	defer FlushCache()
	FlushCache()
	g := workload.Hough()
	const callers = 16
	tables := make([]*Table, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tab, err := Cached(g, 4, workload.PaperLatency())
			if err != nil {
				t.Error(err)
				return
			}
			tables[i] = tab
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if tables[i] != tables[0] {
			t.Fatalf("caller %d got a different table instance", i)
		}
	}
	if CacheLen() != 1 {
		t.Errorf("cache holds %d entries, want 1", CacheLen())
	}
}

func TestCachedAllSharesTables(t *testing.T) {
	defer FlushCache()
	FlushCache()
	pool := workload.Multimedia()
	lookup, tables, err := CachedAll(pool, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(pool) {
		t.Fatalf("got %d tables for %d templates", len(tables), len(pool))
	}
	for i, g := range pool {
		if got := lookup(g); !reflect.DeepEqual(got, tables[i].Values) {
			t.Errorf("lookup(%s) = %v, want %v", g.Name(), got, tables[i].Values)
		}
	}
	// A second CachedAll over the same pool must hit, not recompute.
	_, tables2, err := CachedAll(pool, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tables {
		if tables2[i] != tables[i] {
			t.Errorf("table %d recomputed instead of served from cache", i)
		}
	}
	if CacheLen() != len(pool) {
		t.Errorf("cache holds %d entries, want %d", CacheLen(), len(pool))
	}
}

func TestCachedNilGraph(t *testing.T) {
	defer FlushCache()
	FlushCache()
	if _, err := Cached(nil, 4, workload.PaperLatency()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if CacheLen() != 0 {
		t.Error("failed computation was memoized")
	}
}
