package mobility

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// resetCache restores the pristine global cache state around a test that
// touches counters or the persistent tier.
func resetCache(t *testing.T) {
	t.Helper()
	FlushCache()
	ResetStats()
	prev := SetStore(nil)
	t.Cleanup(func() {
		SetStore(prev)
		FlushCache()
		ResetStats()
	})
}

// reparse round-trips a template through its JSON encoding: identical
// content, distinct pointer — the cross-process case fingerprint keying
// exists for.
func reparse(t *testing.T, g *taskgraph.Graph) *taskgraph.Graph {
	t.Helper()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := taskgraph.FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2 == g {
		t.Fatal("reparse returned the same pointer")
	}
	return g2
}

// fakeTableStore is an in-memory persistent tier for cache tests (the
// real adapter over the result store lives in internal/artifact, which
// imports this package and so cannot be used here).
type fakeTableStore struct {
	mu            sync.Mutex
	m             map[string][]byte
	loads, stores int
}

func newFakeTableStore() *fakeTableStore {
	return &fakeTableStore{m: make(map[string][]byte)}
}

func (f *fakeTableStore) key(fp string, rus int, latency simtime.Time) string {
	return fmt.Sprintf("%s|%d|%d", fp, rus, latency)
}

func (f *fakeTableStore) LoadTable(g *taskgraph.Graph, rus int, latency simtime.Time) (*Table, bool) {
	f.mu.Lock()
	data, ok := f.m[f.key(g.Fingerprint(), rus, latency)]
	f.loads++
	f.mu.Unlock()
	if !ok {
		return nil, false
	}
	t, err := TableFromJSON(data, g)
	if err != nil {
		return nil, false
	}
	return t, true
}

func (f *fakeTableStore) StoreTable(t *Table) error {
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.m[f.key(t.Graph.Fingerprint(), t.RUs, t.Latency)] = data
	f.stores++
	f.mu.Unlock()
	return nil
}

func TestCachedMatchesCompute(t *testing.T) {
	defer FlushCache()
	FlushCache()
	g := workload.JPEG()
	want, err := Compute(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Cached(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, want.Values) {
		t.Errorf("cached values %v, computed %v", got.Values, want.Values)
	}
	if got.RefMakespan != want.RefMakespan {
		t.Errorf("cached ref makespan %v, computed %v", got.RefMakespan, want.RefMakespan)
	}
	again, err := Cached(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Error("second Cached call did not return the memoized table")
	}
	if CacheLen() != 1 {
		t.Errorf("cache holds %d entries, want 1", CacheLen())
	}
}

func TestCachedKeysDistinguishConfigurations(t *testing.T) {
	defer FlushCache()
	FlushCache()
	g := workload.MPEG1()
	a, err := Cached(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(g, 5, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different RU counts share one cache entry")
	}
	if CacheLen() != 2 {
		t.Errorf("cache holds %d entries, want 2", CacheLen())
	}
}

// TestCachedSingleFlight hammers one key from many goroutines and checks
// every caller gets the same memoized table.
func TestCachedSingleFlight(t *testing.T) {
	defer FlushCache()
	FlushCache()
	g := workload.Hough()
	const callers = 16
	tables := make([]*Table, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tab, err := Cached(g, 4, workload.PaperLatency())
			if err != nil {
				t.Error(err)
				return
			}
			tables[i] = tab
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if tables[i] != tables[0] {
			t.Fatalf("caller %d got a different table instance", i)
		}
	}
	if CacheLen() != 1 {
		t.Errorf("cache holds %d entries, want 1", CacheLen())
	}
}

func TestCachedAllSharesTables(t *testing.T) {
	defer FlushCache()
	FlushCache()
	pool := workload.Multimedia()
	lookup, tables, err := CachedAll(pool, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(pool) {
		t.Fatalf("got %d tables for %d templates", len(tables), len(pool))
	}
	for i, g := range pool {
		if got := lookup(g); !reflect.DeepEqual(got, tables[i].Values) {
			t.Errorf("lookup(%s) = %v, want %v", g.Name(), got, tables[i].Values)
		}
	}
	// A second CachedAll over the same pool must hit, not recompute.
	_, tables2, err := CachedAll(pool, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tables {
		if tables2[i] != tables[i] {
			t.Errorf("table %d recomputed instead of served from cache", i)
		}
	}
	if CacheLen() != len(pool) {
		t.Errorf("cache holds %d entries, want %d", CacheLen(), len(pool))
	}
}

func TestCachedNilGraph(t *testing.T) {
	defer FlushCache()
	FlushCache()
	if _, err := Cached(nil, 4, workload.PaperLatency()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if CacheLen() != 0 {
		t.Error("failed computation was memoized")
	}
}

// TestCachedFingerprintKeyed is the satellite fix's pin: the cache key
// is the graph's content, not its pointer. A template re-parsed from its
// own JSON must hit the table its original computed, with the returned
// table rebound to the requesting pointer so run-time Lookup works.
func TestCachedFingerprintKeyed(t *testing.T) {
	resetCache(t)
	g := workload.JPEG()
	g2 := reparse(t, g)
	first, err := Cached(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Cached(g2, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	st := Stats()
	if st.Computes != 1 {
		t.Fatalf("computes = %d, want 1 — the re-parsed template must hit, not recompute", st.Computes)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if CacheLen() != 1 {
		t.Errorf("cache holds %d entries, want 1", CacheLen())
	}
	if second.Graph != g2 {
		t.Error("hit for the re-parsed template is not bound to its pointer")
	}
	if !reflect.DeepEqual(first.Values, second.Values) || first.RefMakespan != second.RefMakespan {
		t.Error("rebound table diverges from the computed one")
	}
}

// TestCachedAllDuplicateContent: a pool holding two content-identical
// pointers must produce a lookup that resolves both — the memoized table
// serves each, bound per pointer.
func TestCachedAllDuplicateContent(t *testing.T) {
	resetCache(t)
	g := workload.MPEG1()
	g2 := reparse(t, g)
	lookup, tables, err := CachedAll([]*taskgraph.Graph{g, g2}, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want one per requesting pointer", len(tables))
	}
	if Stats().Computes != 1 {
		t.Fatalf("computes = %d, want 1 for content-identical templates", Stats().Computes)
	}
	for _, gg := range []*taskgraph.Graph{g, g2} {
		if lookup(gg) == nil {
			t.Fatalf("lookup(%s@%p) = nil — a pointer in the pool resolved no mobilities", gg.Name(), gg)
		}
	}
}

// TestCachedStoreTier covers the persistent second tier end to end:
// a cold process computes and writes back; a "new process" (flushed map,
// fresh counters) loads from the tier with zero computes; the loaded
// table is the computed one.
func TestCachedStoreTier(t *testing.T) {
	resetCache(t)
	ts := newFakeTableStore()
	SetStore(ts)
	g := workload.Hough()

	cold, err := Cached(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	st := Stats()
	if st.Computes != 1 || st.StoreMisses != 1 || st.StoreWrites != 1 || st.StoreHits != 0 {
		t.Fatalf("cold stats %+v, want 1 compute, 1 store miss, 1 write-back", st)
	}

	// Second process: the in-memory map is gone, the tier persists.
	FlushCache()
	ResetStats()
	warm, err := Cached(g, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	st = Stats()
	if st.Computes != 0 {
		t.Fatalf("warm process computed %d tables; the tier should have served it", st.Computes)
	}
	if st.StoreHits != 1 || st.StoreWrites != 0 {
		t.Fatalf("warm stats %+v, want exactly one store hit and no write-back", st)
	}
	if !reflect.DeepEqual(warm.Values, cold.Values) || warm.RefMakespan != cold.RefMakespan {
		t.Error("tier-served table diverges from the computed one")
	}

	// Single-flight holds across the tier: many concurrent callers of a
	// flushed key still probe the store exactly once.
	FlushCache()
	ResetStats()
	before := ts.loads
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Cached(g, 4, workload.PaperLatency()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := ts.loads - before; got != 1 {
		t.Errorf("concurrent cold callers probed the tier %d times, want 1 (single-flight)", got)
	}
}

// TestDigestLine pins the stderr digest the CLIs print and the CI
// artifact-reuse gate greps.
func TestDigestLine(t *testing.T) {
	resetCache(t)
	if line := DigestLine(); line != "" {
		t.Fatalf("idle cache digest = %q, want empty", line)
	}
	g := workload.JPEG()
	if _, err := Cached(g, 4, workload.PaperLatency()); err != nil {
		t.Fatal(err)
	}
	line := DigestLine()
	want := "design-time cache: 1 tables, 0 hits, 1 misses, 1 computes; artifact tier: off"
	if line != want {
		t.Errorf("no-tier digest = %q, want %q", line, want)
	}

	FlushCache()
	ResetStats()
	SetStore(newFakeTableStore())
	if _, err := Cached(g, 4, workload.PaperLatency()); err != nil {
		t.Fatal(err)
	}
	line = DigestLine()
	if !strings.Contains(line, "1 computes; artifact tier: 0 hits, 1 misses, 1 stored") {
		t.Errorf("tiered digest = %q", line)
	}
}
