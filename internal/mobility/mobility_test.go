package mobility

import (
	"strings"
	"testing"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

// TestFig7Mobilities is the paper's worked example (Fig. 7): for Task
// Graph 2 of Fig. 3 on 4 units with 4 ms latency, tasks 5 and 6 have
// mobility 0 and task 7 has mobility 1; the reference makespan is 30 ms.
func TestFig7Mobilities(t *testing.T) {
	g := workload.Fig3TG2()
	tab, err := Compute(g, 4, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	if tab.RefMakespan != ms(30) {
		t.Errorf("reference makespan = %v, want 30 ms", tab.RefMakespan)
	}
	want := map[taskgraph.TaskID]int{4: 0, 5: 0, 6: 0, 7: 1}
	for i := 0; i < g.NumTasks(); i++ {
		id := g.Task(i).ID
		if tab.Values[i] != want[id] {
			t.Errorf("mobility(task %d) = %d, want %d", id, tab.Values[i], want[id])
		}
	}
}

// TestFirstTaskPinnedToZero: the first task of the reconfiguration
// sequence is excluded from the paper's Task Set.
func TestFirstTaskPinnedToZero(t *testing.T) {
	g := workload.Fig3TG2()
	tab, err := Compute(g, 4, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	first := g.RecSequence()[0]
	if tab.Values[first] != 0 {
		t.Errorf("first task mobility = %d, want 0", tab.Values[first])
	}
}

// TestMobilityDefinition: by construction, delaying any task by its
// mobility must keep the isolated makespan at the reference value, and
// the search already verified mobility+1 either degrades it or has no
// further effect. Re-verify the first half independently through the
// manager.
func TestMobilityDefinition(t *testing.T) {
	for _, g := range []*taskgraph.Graph{
		workload.Fig3TG2(), workload.JPEG(), workload.MPEG1(), workload.Hough(),
	} {
		tab, err := Compute(g, 4, ms(4))
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		base := manager.Config{RUs: 4, Latency: ms(4), Policy: policy.NewLRU()}
		for local, m := range tab.Values {
			if m == 0 {
				continue
			}
			base.DelayPlan = map[int]int{local: m}
			res, err := manager.Run(base, dynlist.NewSequence(g))
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan != tab.RefMakespan {
				t.Errorf("%s task %d: delay by mobility %d gives %v, ref %v",
					g.Name(), g.Task(local).ID, m, res.Makespan, tab.RefMakespan)
			}
		}
	}
}

// TestChainMobilitiesSaturate: in a chain on one unit every load is on
// the critical path, so all mobilities are 0.
func TestChainMobilitiesSaturate(t *testing.T) {
	g := taskgraph.Chain("c", 1, ms(2), ms(2), ms(2))
	tab, err := Compute(g, 1, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tab.Values {
		if v != 0 {
			t.Errorf("task %d mobility = %d, want 0", g.Task(i).ID, v)
		}
	}
}

// TestWideGraphHasMobility: with ample units, a long-running sibling
// gives the sink's load slack. For root(20) → {a(8), b(1)} → sink(1) on 4
// units with 4 ms latency the events are: end-of-load(b) at 12, end of
// root at 24, end of b at 25, end of a at 32. The sink's load (reference
// [12,16]) can be postponed past the events at 12, 24 and 25 — loading at
// 25 still completes by 29, before the sink's predecessors finish at 32 —
// but postponing it a third time lands at 32 and delays the sink. So its
// mobility is exactly 2.
func TestWideGraphHasMobility(t *testing.T) {
	g := taskgraph.ForkJoin("w", 1, ms(20), []simtime.Time{ms(8), ms(1)}, ms(1), true)
	tab, err := Compute(g, 4, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	sink := g.NumTasks() - 1
	if tab.Values[sink] != 2 {
		t.Errorf("sink mobility = %d, want 2", tab.Values[sink])
	}
}

func TestComputeAllAndLookup(t *testing.T) {
	jpeg := workload.JPEG()
	seq := []*taskgraph.Graph{jpeg, workload.MPEG1(), jpeg} // jpeg repeated
	lookup, tables, err := ComputeAll(seq, 4, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2 (deduplicated)", len(tables))
	}
	if vals := lookup(jpeg); vals == nil || len(vals) != jpeg.NumTasks() {
		t.Errorf("lookup(jpeg) = %v", vals)
	}
	if vals := lookup(workload.Hough()); vals != nil {
		t.Errorf("lookup(unknown graph) = %v, want nil", vals)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, 4, ms(4)); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Compute(workload.JPEG(), 0, ms(4)); err == nil {
		t.Error("zero units accepted")
	}
}

func TestScheduleCountGrowsWithTasks(t *testing.T) {
	small, err := Compute(workload.JPEG(), 4, ms(4)) // 4 tasks
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compute(workload.Hough(), 4, ms(4)) // 6 tasks
	if err != nil {
		t.Fatal(err)
	}
	if small.Schedules < 4 || big.Schedules <= small.Schedules {
		t.Errorf("schedule counts: jpeg=%d hough=%d", small.Schedules, big.Schedules)
	}
}

func TestTableString(t *testing.T) {
	tab, err := Compute(workload.Fig3TG2(), 4, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, frag := range []string{"fig3-tg2", "R=4", "30 ms", "7:1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestPureRuntimeEquivalence(t *testing.T) {
	g := workload.Hough()
	a, err := Compute(g, 4, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputePureRuntime(g, 4, ms(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Errorf("value %d differs: %d vs %d", i, a.Values[i], b.Values[i])
		}
	}
}
