package mobility

import (
	"sync"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// The design-time phase is by far the most expensive computation in a
// sweep — hundreds of full schedules per (template, RUs, latency) triple —
// and its result is a pure function of that triple. The process-wide cache
// below memoizes it so that every System, sweep scenario and experiment in
// the process shares one table per triple instead of recomputing it.
//
// Concurrency: the first caller of a key computes; concurrent callers of
// the same key block until that computation finishes (single-flight), so a
// parallel sweep over N scenarios still runs each design-time phase
// exactly once.

type cacheKey struct {
	g       *taskgraph.Graph
	rus     int
	latency simtime.Time
}

type cacheEntry struct {
	done chan struct{}
	t    *Table
	err  error
}

var cache = struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry
}{m: make(map[cacheKey]*cacheEntry)}

// Cached returns the design-time table for (g, rus, latency), computing it
// on first use and serving the memoized result afterwards. Tables are
// keyed by template identity (the *Graph pointer), matching how the
// manager looks mobility values up at run time.
func Cached(g *taskgraph.Graph, rus int, latency simtime.Time) (*Table, error) {
	key := cacheKey{g: g, rus: rus, latency: latency}
	cache.mu.Lock()
	e, ok := cache.m[key]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		cache.m[key] = e
		cache.mu.Unlock()
		e.t, e.err = Compute(g, rus, latency)
		if e.err != nil {
			// Do not memoize failures: a later caller may retry after
			// fixing the input (and errors here mean a broken graph).
			cache.mu.Lock()
			delete(cache.m, key)
			cache.mu.Unlock()
		}
		close(e.done)
		return e.t, e.err
	}
	cache.mu.Unlock()
	<-e.done
	return e.t, e.err
}

// CachedAll is ComputeAll backed by the process-wide cache: one table per
// distinct template in graphs, computed at most once per process.
func CachedAll(graphs []*taskgraph.Graph, rus int, latency simtime.Time) (func(*taskgraph.Graph) []int, []*Table, error) {
	seen := make(map[*taskgraph.Graph]bool)
	var tables []*Table
	for _, g := range graphs {
		if seen[g] {
			continue
		}
		seen[g] = true
		t, err := Cached(g, rus, latency)
		if err != nil {
			return nil, nil, err
		}
		tables = append(tables, t)
	}
	return Lookup(tables...), tables, nil
}

// CacheLen reports how many tables the process-wide cache holds.
func CacheLen() int {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return len(cache.m)
}

// FlushCache empties the process-wide cache (tests; or to release tables
// for template pools that will never be used again).
func FlushCache() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.m = make(map[cacheKey]*cacheEntry)
}
