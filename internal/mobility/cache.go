package mobility

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// The design-time phase is by far the most expensive computation in a
// sweep — hundreds of full schedules per (template, RUs, latency) triple —
// and its result is a pure function of that triple. Two cache tiers stand
// between a caller and Compute:
//
//   process map → persistent store → compute
//
// The process-wide map memoizes tables for the life of the process so
// every System, sweep scenario and experiment shares one table per
// triple. The optional persistent tier (a TableStore, normally the
// result store's artifact space — see internal/artifact) survives the
// process: a cold process, or a freshly re-leased shard worker on
// another host, loads the table a previous process computed instead of
// recomputing it. Tables are keyed by the graph's content fingerprint,
// not its pointer, so a template re-parsed from JSON in another process
// (or simply rebuilt in this one) still hits.
//
// Concurrency: the first caller of a key loads-or-computes; concurrent
// callers of the same key block until that finishes (single-flight), so
// a parallel sweep over N scenarios still runs each design-time phase —
// including the store probe — exactly once.

type cacheKey struct {
	fp      string // taskgraph.(*Graph).Fingerprint()
	rus     int
	latency simtime.Time
}

type cacheEntry struct {
	done chan struct{}
	t    *Table
	err  error
}

var cache = struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry
}{m: make(map[cacheKey]*cacheEntry)}

// TableStore is the persistent second cache tier: load a previously
// stored table for a triple, or store a freshly computed one. Both ends
// are best-effort — a load that fails (absent, damaged, stale) reports
// !ok and the caller recomputes; a store error is swallowed here because
// persistence is an optimization, never correctness. Implementations
// must be safe for concurrent use. internal/artifact adapts
// resultstore.Store to this interface; mobility deliberately does not
// import either.
type TableStore interface {
	LoadTable(g *taskgraph.Graph, rus int, latency simtime.Time) (*Table, bool)
	StoreTable(t *Table) error
}

var tier struct {
	mu sync.RWMutex
	ts TableStore
}

// SetStore installs ts as the process-wide persistent tier (nil
// uninstalls it) and returns the previous one, so callers can restore.
func SetStore(ts TableStore) TableStore {
	tier.mu.Lock()
	defer tier.mu.Unlock()
	prev := tier.ts
	tier.ts = ts
	return prev
}

func currentStore() TableStore {
	tier.mu.RLock()
	defer tier.mu.RUnlock()
	return tier.ts
}

var stats struct {
	hits        atomic.Int64
	misses      atomic.Int64
	computes    atomic.Int64
	storeHits   atomic.Int64
	storeMisses atomic.Int64
	storeWrites atomic.Int64
}

// CacheStats is a snapshot of the design-time cache counters: process-map
// lookups (Hits/Misses), actual Compute runs, and persistent-tier
// traffic. Misses = StoreHits + StoreMisses' successful computes + failed
// computes; a warm cross-process run shows Computes == 0.
type CacheStats struct {
	Tables                              int
	Hits, Misses, Computes              int64
	StoreHits, StoreMisses, StoreWrites int64
}

// Stats returns the current counter snapshot.
func Stats() CacheStats {
	return CacheStats{
		Tables:      CacheLen(),
		Hits:        stats.hits.Load(),
		Misses:      stats.misses.Load(),
		Computes:    stats.computes.Load(),
		StoreHits:   stats.storeHits.Load(),
		StoreMisses: stats.storeMisses.Load(),
		StoreWrites: stats.storeWrites.Load(),
	}
}

// ResetStats zeroes the counters (the CLIs call it at the start of a run
// so the digest describes that run alone; tables already cached stay).
func ResetStats() {
	stats.hits.Store(0)
	stats.misses.Store(0)
	stats.computes.Store(0)
	stats.storeHits.Store(0)
	stats.storeMisses.Store(0)
	stats.storeWrites.Store(0)
}

// DigestLine renders the counters as the one-line stderr digest the CLIs
// print next to the result-store summary, or "" when the cache saw no
// traffic (so runs that never enter a design-time phase stay silent).
// The CI artifact-reuse gate greps this format — keep it stable.
func DigestLine() string {
	st := Stats()
	if st.Hits+st.Misses == 0 {
		return ""
	}
	tierPart := "off"
	if currentStore() != nil {
		tierPart = fmt.Sprintf("%d hits, %d misses, %d stored",
			st.StoreHits, st.StoreMisses, st.StoreWrites)
	}
	return fmt.Sprintf("design-time cache: %d tables, %d hits, %d misses, %d computes; artifact tier: %s",
		st.Tables, st.Hits, st.Misses, st.Computes, tierPart)
}

// Cached returns the design-time table for (g, rus, latency), looking it
// up through both cache tiers and computing only on a full miss. The
// returned table is always bound to g: when the cached copy was computed
// for a different (content-identical) *Graph, a shallow rebound copy is
// returned so Lookup keyed by template pointer keeps working.
func Cached(g *taskgraph.Graph, rus int, latency simtime.Time) (*Table, error) {
	if g == nil {
		return nil, fmt.Errorf("mobility: nil graph")
	}
	key := cacheKey{fp: g.Fingerprint(), rus: rus, latency: latency}
	cache.mu.Lock()
	e, ok := cache.m[key]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		cache.m[key] = e
		cache.mu.Unlock()
		stats.misses.Add(1)
		e.t, e.err = loadOrCompute(g, rus, latency)
		if e.err != nil {
			// Do not memoize failures: a later caller may retry after
			// fixing the input (and errors here mean a broken graph).
			cache.mu.Lock()
			delete(cache.m, key)
			cache.mu.Unlock()
		}
		close(e.done)
		return rebind(e.t, g), e.err
	}
	cache.mu.Unlock()
	stats.hits.Add(1)
	<-e.done
	return rebind(e.t, g), e.err
}

// loadOrCompute is the single-flighted slow path behind a process-map
// miss: probe the persistent tier, fall back to Compute, and write the
// fresh table back best-effort.
func loadOrCompute(g *taskgraph.Graph, rus int, latency simtime.Time) (*Table, error) {
	ts := currentStore()
	if ts != nil {
		if t, ok := ts.LoadTable(g, rus, latency); ok {
			stats.storeHits.Add(1)
			return t, nil
		}
		stats.storeMisses.Add(1)
	}
	stats.computes.Add(1)
	t, err := Compute(g, rus, latency)
	if err != nil {
		return nil, err
	}
	if ts != nil {
		// Best-effort persistence: a full or read-only store costs the
		// next process a recompute, never this one its table.
		if err := ts.StoreTable(t); err == nil {
			stats.storeWrites.Add(1)
		}
	}
	return t, nil
}

// rebind returns t bound to g: the cached table itself when the pointers
// already agree, otherwise a shallow copy sharing the (immutable) values.
// Content-fingerprint keying means a hit may have been computed for a
// different pointer to the same template.
func rebind(t *Table, g *taskgraph.Graph) *Table {
	if t == nil || t.Graph == g {
		return t
	}
	c := *t
	c.Graph = g
	return &c
}

// CachedAll is ComputeAll backed by the two-tier cache: one table per
// distinct template in graphs, loaded or computed at most once per
// process. Each returned table is bound to the pointer that requested
// it, so the Lookup covers every template in graphs even when two
// pointers share content.
func CachedAll(graphs []*taskgraph.Graph, rus int, latency simtime.Time) (func(*taskgraph.Graph) []int, []*Table, error) {
	seen := make(map[*taskgraph.Graph]bool)
	var tables []*Table
	for _, g := range graphs {
		if seen[g] {
			continue
		}
		seen[g] = true
		t, err := Cached(g, rus, latency)
		if err != nil {
			return nil, nil, err
		}
		tables = append(tables, t)
	}
	return Lookup(tables...), tables, nil
}

// CacheLen reports how many tables the process-wide cache holds.
func CacheLen() int {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return len(cache.m)
}

// FlushCache empties the process-wide cache (tests; or to release tables
// for template pools that will never be used again). The persistent tier
// and the counters are unaffected.
func FlushCache() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.m = make(map[cacheKey]*cacheEntry)
}
