package simtime

import "testing"

// FuzzParseMs checks the duration parser never panics and that accepted
// values format back to something it accepts again (idempotent parse).
func FuzzParseMs(f *testing.F) {
	for _, s := range []string{"4", "2.5", "2.5 ms", "-1", "1e3", "", "ms", "NaN", "Inf", "0.0001"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseMs(s)
		if err != nil {
			return
		}
		back, err := ParseMs(v.String())
		if err != nil {
			t.Fatalf("ParseMs(%q) = %v, but its String %q does not parse: %v", s, v, v.String(), err)
		}
		// String rounds to microseconds, so back must equal v exactly
		// (v is already integral microseconds).
		if back != v {
			t.Fatalf("round trip %q: %d != %d", s, back, v)
		}
	})
}
