// Package simtime provides the fixed-point time base used throughout the
// simulator.
//
// The paper expresses every latency in milliseconds, and some task execution
// times are fractional (Fig. 2 uses 2.5 ms tasks). To keep the simulation
// exact and deterministic we avoid floating point entirely and count time in
// integer microseconds.
package simtime

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is an instant or duration on the simulated clock, in microseconds.
// The zero value is the simulation epoch.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond

	// Never is a sentinel lying beyond any reachable simulation instant.
	Never Time = math.MaxInt64
)

// maxMs is the largest millisecond magnitude FromMs accepts: beyond it
// the microsecond representation would overflow int64.
const maxMs = float64(math.MaxInt64) / float64(Millisecond)

// FromMs converts a (possibly fractional) millisecond count to a Time.
// It rounds to the nearest microsecond; the paper's inputs are all exact
// multiples of 0.5 ms, so no rounding occurs in practice. Non-finite or
// unrepresentable inputs are programming errors and panic.
func FromMs(ms float64) Time {
	if math.IsNaN(ms) || math.IsInf(ms, 0) || ms > maxMs || ms < -maxMs {
		panic(fmt.Sprintf("simtime: unrepresentable millisecond value %v", ms))
	}
	return Time(math.Round(ms * float64(Millisecond)))
}

// FromUs converts an integer microsecond count to a Time.
func FromUs(us int64) Time { return Time(us) }

// Ms reports t in milliseconds as a float64.
func (t Time) Ms() float64 { return float64(t) / float64(Millisecond) }

// Us reports t in microseconds.
func (t Time) Us() int64 { return int64(t) }

// Add returns t+d, saturating at Never so that arithmetic on the sentinel
// stays a sentinel.
func (t Time) Add(d Time) Time {
	if t == Never || d == Never {
		return Never
	}
	s := t + d
	if d > 0 && s < t { // overflow
		return Never
	}
	return s
}

// Sub returns t-d. Subtracting from Never yields Never.
func (t Time) Sub(d Time) Time {
	if t == Never {
		return Never
	}
	return t - d
}

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// IsNever reports whether t is the unreachable sentinel.
func (t Time) IsNever() bool { return t == Never }

// String formats the time the way the paper's figures do: as a millisecond
// quantity with the minimal number of decimals ("15 ms", "2.5 ms").
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	neg := t < 0
	v := t
	if neg {
		v = -v
	}
	whole := v / Millisecond
	frac := v % Millisecond
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	b.WriteString(strconv.FormatInt(int64(whole), 10))
	if frac != 0 {
		s := fmt.Sprintf("%03d", frac)
		s = strings.TrimRight(s, "0")
		b.WriteByte('.')
		b.WriteString(s)
	}
	b.WriteString(" ms")
	return b.String()
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxOf returns the latest of the given times, or the zero Time when the
// list is empty.
func MaxOf(ts ...Time) Time {
	var m Time
	for i, t := range ts {
		if i == 0 || t > m {
			m = t
		}
	}
	return m
}

// ParseMs parses a decimal millisecond string such as "2.5" or "4" into a
// Time. It accepts an optional trailing "ms".
func ParseMs(s string) (Time, error) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "ms"))
	if s == "" {
		return 0, fmt.Errorf("simtime: empty duration")
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("simtime: parse %q: %v", s, err)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) || f > maxMs || f < -maxMs {
		return 0, fmt.Errorf("simtime: duration %q out of range", s)
	}
	return FromMs(f), nil
}
