package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromMs(t *testing.T) {
	tests := []struct {
		ms   float64
		want Time
	}{
		{0, 0},
		{1, 1000},
		{2.5, 2500},
		{4, 4000},
		{0.001, 1},
		{79, 79000},
		{-1.5, -1500},
	}
	for _, tt := range tests {
		if got := FromMs(tt.ms); got != tt.want {
			t.Errorf("FromMs(%v) = %d, want %d", tt.ms, got, tt.want)
		}
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		t    Time
		want string
	}{
		{0, "0 ms"},
		{FromMs(4), "4 ms"},
		{FromMs(2.5), "2.5 ms"},
		{FromMs(0.25), "0.25 ms"},
		{FromMs(15), "15 ms"},
		{FromMs(-3.5), "-3.5 ms"},
		{Never, "never"},
		{Microsecond, "0.001 ms"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", tt.t, got, tt.want)
		}
	}
}

func TestAddSaturation(t *testing.T) {
	if got := Never.Add(FromMs(1)); got != Never {
		t.Errorf("Never.Add(1ms) = %v, want Never", got)
	}
	if got := FromMs(1).Add(Never); got != Never {
		t.Errorf("1ms.Add(Never) = %v, want Never", got)
	}
	big := Time(1) << 62
	if got := big.Add(big); got != Never {
		t.Errorf("overflowing Add = %d, want Never", got)
	}
	if got := FromMs(2).Add(FromMs(3)); got != FromMs(5) {
		t.Errorf("2ms+3ms = %v, want 5ms", got)
	}
}

func TestSub(t *testing.T) {
	if got := FromMs(5).Sub(FromMs(2)); got != FromMs(3) {
		t.Errorf("5ms-2ms = %v", got)
	}
	if got := Never.Sub(FromMs(2)); got != Never {
		t.Errorf("Never-2ms = %v, want Never", got)
	}
}

func TestComparisons(t *testing.T) {
	a, b := FromMs(1), FromMs(2)
	if !a.Before(b) || b.Before(a) {
		t.Error("Before misordered")
	}
	if !b.After(a) || a.After(b) {
		t.Error("After misordered")
	}
	if !Never.IsNever() || FromMs(1).IsNever() {
		t.Error("IsNever wrong")
	}
}

func TestMinMax(t *testing.T) {
	if Max(FromMs(1), FromMs(2)) != FromMs(2) {
		t.Error("Max wrong")
	}
	if Min(FromMs(1), FromMs(2)) != FromMs(1) {
		t.Error("Min wrong")
	}
	if MaxOf() != 0 {
		t.Error("MaxOf() should be 0")
	}
	if MaxOf(FromMs(3), FromMs(9), FromMs(4)) != FromMs(9) {
		t.Error("MaxOf wrong")
	}
}

func TestParseMs(t *testing.T) {
	tests := []struct {
		in      string
		want    Time
		wantErr bool
	}{
		{"4", FromMs(4), false},
		{"2.5", FromMs(2.5), false},
		{"2.5 ms", FromMs(2.5), false},
		{"4ms", FromMs(4), false},
		{" 10 ", FromMs(10), false},
		{"", 0, true},
		{"ms", 0, true},
		{"abc", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseMs(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseMs(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseMs(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// For any non-negative microsecond count below 2^40, String followed by
	// ParseMs recovers the value exactly.
	f := func(us uint32) bool {
		tm := Time(us)
		parsed, err := ParseMs(tm.String())
		return err == nil && parsed == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(a, b int32) bool {
		ta, tb := Time(a), Time(b)
		return ta.Add(tb).Sub(tb) == ta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseMsRejectsNonFinite(t *testing.T) {
	for _, s := range []string{"NaN", "Inf", "-Inf", "1e300", "-1e300"} {
		if _, err := ParseMs(s); err == nil {
			t.Errorf("ParseMs(%q) accepted a non-representable value", s)
		}
	}
}

func TestFromMsPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromMs(NaN) did not panic")
		}
	}()
	FromMs(math.NaN())
}
