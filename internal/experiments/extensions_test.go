package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSensitivityReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Sensitivity(smallOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"latency sensitivity", "16 ms", "heterogeneous", "LFD"} {
		if !strings.Contains(out, frag) {
			t.Errorf("sensitivity report missing %q:\n%s", frag, out)
		}
	}
}

func TestPrefetchReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Prefetch(smallOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"cross-graph prefetch", "preloads", "Skip + prefetch"} {
		if !strings.Contains(out, frag) {
			t.Errorf("prefetch report missing %q:\n%s", frag, out)
		}
	}
	// The prefetch rows must report preloads > 0 at some unit count.
	if !strings.Contains(out, "prefetch") {
		t.Error("no prefetch rows")
	}
}

func TestEnergyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := EnergyExperiment(smallOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"energy", "traffic", "LRU", "LFD", "saved %"} {
		if !strings.Contains(out, frag) {
			t.Errorf("energy report missing %q:\n%s", frag, out)
		}
	}
}

func TestVarianceReport(t *testing.T) {
	opt := smallOptions()
	opt.Apps = 40 // keep 10 seeds fast
	var buf bytes.Buffer
	if err := Variance(opt, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"seed robustness", "stddev", "of 10 seeds"} {
		if !strings.Contains(out, frag) {
			t.Errorf("variance report missing %q:\n%s", frag, out)
		}
	}
}
