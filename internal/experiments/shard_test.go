package experiments

import (
	"bytes"
	"testing"

	"repro/internal/resultstore"
	"repro/internal/storetest"
	"repro/internal/sweep"
)

// TestShardedPopulateMergeByteIdentical is the suite-level shard pin,
// the property the CI gate enforces through the rtrrepro binary: N
// shard populate runs into one store followed by a RequireStored render
// must emit reports byte-identical to a plain single-process run —
// covering the summary-grid path (fig9b), the NoBaseline counters path
// (variance) and the mixed stored/live path (sensitivity, whose
// heterogeneous half always runs live).
func TestShardedPopulateMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweeps in -short mode")
	}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Seed: 2011, Apps: 40, RUs: []int{4, 5}}
	exps := make([]Experiment, 0, 3)
	for _, id := range []string{"fig9b", "variance", "sensitivity"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		exps = append(exps, e)
	}

	render := func(opt Options) string {
		var buf bytes.Buffer
		for _, e := range exps {
			if err := e.Run(opt, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
		}
		return buf.String()
	}
	plain := render(base)

	const count = 2
	popOpt := base
	popOpt.Store = store
	totalRan, totalScenarios := 0, 0
	for idx := 0; idx < count; idx++ {
		st, err := Populate(popOpt, exps, sweep.Shard{Index: idx, Count: count})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", idx, count, err)
		}
		if st.Ran+st.SkippedByShard != st.Scenarios {
			t.Errorf("shard %d/%d stats don't tile: ran %d + skipped %d != %d",
				idx, count, st.Ran, st.SkippedByShard, st.Scenarios)
		}
		totalRan += st.Ran
		totalScenarios = st.Scenarios
	}
	if totalRan != totalScenarios {
		t.Errorf("shards ran %d scenarios, grids hold %d", totalRan, totalScenarios)
	}

	mergeOpt := base
	mergeOpt.Store = store
	mergeOpt.RequireStored = true
	hitsBefore, _, putsBefore := store.Stats()
	merged := render(mergeOpt)
	if merged != plain {
		t.Errorf("merged report diverged from the single-process run:\n--- plain ---\n%s\n--- merged ---\n%s", plain, merged)
	}
	hits, _, puts := store.Stats()
	if puts != putsBefore {
		t.Errorf("merge render wrote %d new entries — it re-simulated", puts-putsBefore)
	}
	if hits == hitsBefore {
		t.Error("merge render never read the store")
	}
}

// TestFig9MergeByteIdenticalAcrossBackends is the cross-backend pin the
// CI backend-conformance matrix enforces end to end: a sharded populate
// plus RequireStored merge of the fig9 grid must render byte-identically
// no matter which store backend holds the entries. Every backend's
// merged report is compared against the same plain single-process
// reference, so identity across backends follows transitively.
func TestFig9MergeByteIdenticalAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweeps in -short mode")
	}
	exp, ok := ByID("fig9b")
	if !ok {
		t.Fatal("experiment fig9b missing")
	}
	base := Options{Seed: 2011, Apps: 30, RUs: []int{4, 5}}
	render := func(opt Options) string {
		var buf bytes.Buffer
		if err := exp.Run(opt, &buf); err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		return buf.String()
	}
	plain := render(base)

	for _, bk := range storetest.Backends(t) {
		t.Run(bk.Name, func(t *testing.T) {
			store, reopen := bk.Open(t)
			const count = 2
			popOpt := base
			popOpt.Store = store
			for idx := 0; idx < count; idx++ {
				if _, err := Populate(popOpt, []Experiment{exp}, sweep.Shard{Index: idx, Count: count}); err != nil {
					t.Fatalf("shard %d/%d: %v", idx, count, err)
				}
			}
			// Merge through a fresh handle over the same data — the
			// separate merge process of a real campaign.
			mergeOpt := base
			mergeOpt.Store = reopen(t)
			mergeOpt.RequireStored = true
			if merged := render(mergeOpt); merged != plain {
				t.Errorf("merged report on %s diverged from the plain run:\n--- plain ---\n%s\n--- merged ---\n%s",
					bk.Name, plain, merged)
			}
			if _, _, puts := mergeOpt.Store.Stats(); puts != 0 {
				t.Errorf("merge render wrote %d new entries — it re-simulated", puts)
			}
		})
	}
}

// TestPopulateNeedsStore: populate without a store is a usage error, not
// a silent full local run.
func TestPopulateNeedsStore(t *testing.T) {
	if _, err := Populate(Options{}, All(), sweep.Shard{Index: 0, Count: 2}); err == nil {
		t.Error("Populate without a store accepted")
	}
}

// TestGridsDeclareCacheableSpecs: every experiment that declares grids
// must declare persistable ones — a GridsFunc returning an uncacheable
// Spec would make its shard runs silently useless (nothing written, the
// merge re-simulating everything it was supposed to skip).
func TestGridsDeclareCacheableSpecs(t *testing.T) {
	opt := Options{Seed: 2011, Apps: 10, RUs: []int{4}}
	declared := 0
	for _, e := range All() {
		if e.Grids == nil {
			continue
		}
		specs, err := e.Grids(opt)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(specs) == 0 {
			t.Errorf("%s declares a GridsFunc with no specs", e.ID)
		}
		for gi, sp := range specs {
			if err := sp.Cacheable(); err != nil {
				t.Errorf("%s grid %d is not persistable: %v", e.ID, gi, err)
			}
			if sp.Size() == 0 {
				t.Errorf("%s grid %d is empty", e.ID, gi)
			}
			if sp.Shard.Count != 0 {
				t.Errorf("%s grid %d pre-sets a shard", e.ID, gi)
			}
		}
		declared++
	}
	// The summary-grid experiments must all be shardable.
	if declared < 7 {
		t.Errorf("only %d experiments declare grids, want fig9a/b/c, ablation, sensitivity, prefetch, variance", declared)
	}
}
