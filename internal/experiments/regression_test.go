package experiments

import (
	"testing"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/mobility"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// TestFig9RegressionPin freezes the exact outcome of the paper-parameter
// run (500 apps, seed 2011, R=4, 4 ms) for the four key configurations.
// Any change to the scheduler's semantics — tie-breaking, event ordering,
// candidate rules — will move these integers; if that happens on purpose,
// re-derive DESIGN.md §2 against the paper's figures before updating.
func TestFig9RegressionPin(t *testing.T) {
	opt := DefaultOptions()
	pool, seq, err := opt.Workload()
	if err != nil {
		t.Fatal(err)
	}
	lookup, _, err := mobility.ComputeAll(pool, 4, workload.PaperLatency())
	if err != nil {
		t.Fatal(err)
	}
	mkL1 := func() policy.Policy {
		p, err := policy.NewLocalLFD(1)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name     string
		pol      policy.Policy
		skip     bool
		reused   int
		loads    int
		makespan simtime.Time
		skips    int
	}{
		{"LRU", policy.NewLRU(), false, 208, 2285, simtime.FromMs(36030), 0},
		{"Local LFD (1)", mkL1(), false, 492, 2001, simtime.FromMs(36030), 0},
		{"Local LFD (1) + Skip Events", mkL1(), true, 673, 1820, simtime.FromMs(35586), 430},
		{"LFD", policy.NewLFD(), false, 492, 2001, simtime.FromMs(36030), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := manager.Config{
				RUs: 4, Latency: workload.PaperLatency(), Policy: c.pol, SkipEvents: c.skip,
			}
			if c.skip {
				cfg.Mobility = lookup
			}
			res, err := manager.Run(cfg, dynlist.NewSequence(seq...))
			if err != nil {
				t.Fatal(err)
			}
			if res.Executed != 2493 {
				t.Errorf("executed = %d, want 2493", res.Executed)
			}
			if res.Reused != c.reused {
				t.Errorf("reused = %d, want %d", res.Reused, c.reused)
			}
			if res.Loads != c.loads {
				t.Errorf("loads = %d, want %d", res.Loads, c.loads)
			}
			if res.Makespan != c.makespan {
				t.Errorf("makespan = %v, want %v", res.Makespan, c.makespan)
			}
			if res.Skips != c.skips {
				t.Errorf("skips = %d, want %d", res.Skips, c.skips)
			}
		})
	}
}
