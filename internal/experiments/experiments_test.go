package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// smallOptions shrinks the Fig. 9 workload so unit tests stay fast while
// exercising the full pipeline.
func smallOptions() Options {
	return Options{
		Seed:    7,
		Apps:    60,
		RUs:     []int{4, 6},
		Latency: workload.PaperLatency(),
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("experiments = %d, want 13", len(all))
	}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
	if len(IDs()) != len(all) {
		t.Error("IDs() incomplete")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	d := DefaultOptions()
	if o.Seed != d.Seed || o.Apps != d.Apps || len(o.RUs) != len(d.RUs) || o.Latency != d.Latency {
		t.Errorf("normalized zero options = %+v, want defaults %+v", o, d)
	}
	if o.Apps != 500 || o.Latency != simtime.FromMs(4) {
		t.Errorf("paper defaults wrong: %+v", o)
	}
}

func TestSequenceDeterministic(t *testing.T) {
	o := smallOptions()
	a, err := o.sequence()
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.sequence()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 60 {
		t.Fatalf("len = %d", len(a))
	}
	// Each call builds fresh template objects, so compare by identity of
	// the drawn benchmark, not by pointer.
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Fatalf("sequence diverged at %d: %s vs %s", i, a[i].Name(), b[i].Name())
		}
	}
}

// TestFig2Report runs the full Fig. 2 experiment and requires every
// anchor to PASS.
func TestFig2Report(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(smallOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "FAIL") {
		t.Errorf("Fig. 2 anchors failed:\n%s", out)
	}
	if strings.Count(out, "PASS") != 6 {
		t.Errorf("expected 6 PASS lines:\n%s", out)
	}
}

func TestFig3Report(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(smallOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "FAIL") {
		t.Errorf("Fig. 3 anchors failed:\n%s", out)
	}
}

func TestFig7Report(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(smallOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "FAIL") {
		t.Errorf("Fig. 7 anchors failed:\n%s", out)
	}
}

// TestFig9Shapes runs the three Fig. 9 experiments on a reduced workload
// and checks the qualitative claims hold: LRU reuse below Local LFD,
// Local LFD approaching LFD with window size, and skip events lifting
// reuse above plain Local LFD.
func TestFig9Shapes(t *testing.T) {
	opt := smallOptions()
	for _, run := range []struct {
		name string
		fn   Runner
	}{
		{"fig9a", Fig9A}, {"fig9b", Fig9B}, {"fig9c", Fig9C},
	} {
		var buf bytes.Buffer
		if err := run.fn(opt, &buf); err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "LRU") || !strings.Contains(out, "LFD") {
			t.Errorf("%s: missing series:\n%s", run.name, out)
		}
		if !strings.Contains(out, "Avg.") {
			t.Errorf("%s: missing average column", run.name)
		}
	}
}

func TestAblationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation includes timing benchmarks")
	}
	opt := smallOptions()
	var buf bytes.Buffer
	if err := Ablation(opt, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"window sweep", "FIFO", "MRU", "Random", "10×"} {
		if !strings.Contains(out, frag) {
			t.Errorf("ablation report missing %q", frag)
		}
	}
}

func TestWorstCaseConstruction(t *testing.T) {
	full := FullFutureLookahead(smallSequence(t, 10))
	if len(full) == 0 {
		t.Fatal("empty full lookahead")
	}
	wc := NewWorstCase(full)
	if len(wc.Candidates) != 4 {
		t.Fatalf("candidates = %d, want 4 (the paper's scenario)", len(wc.Candidates))
	}
	for _, c := range wc.Candidates {
		for _, id := range full {
			if id == c.Task {
				t.Fatalf("candidate %d occurs in lookahead — not worst case", c.Task)
			}
		}
	}
	w1, w4 := WindowLookahead(1), WindowLookahead(4)
	if len(w4) <= len(w1) {
		t.Errorf("window lookahead must grow: %d vs %d", len(w1), len(w4))
	}
}

func smallSequence(t *testing.T, n int) []*taskgraph.Graph {
	t.Helper()
	o := Options{Seed: 3, Apps: n, Latency: workload.PaperLatency(), RUs: []int{4}}
	seq, err := o.sequence()
	if err != nil {
		t.Fatal(err)
	}
	return seq
}
