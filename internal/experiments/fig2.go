package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig2 reproduces the paper's first motivational example (Fig. 2): two
// small task graphs executed as the sequence TG1, TG2, TG2, TG1, TG2 on
// four units with 4 ms reconfiguration latency, under LRU, LFD and Local
// LFD with a one-graph Dynamic List.
func Fig2(opt Options, w io.Writer) error {
	opt = opt.normalized()
	section(w, "Fig. 2 — motivational example (R=4, latency 4 ms)")
	seq := workload.Fig2Sequence()

	type anchor struct {
		policy   string
		reuse    int    // reused tasks of 12
		reusePct string // paper's printed rate
		overhead simtime.Time
	}
	anchors := []anchor{
		{"lru", 2, "16.7%", simtime.FromMs(22)},
		{"lfd", 5, "41.7%", simtime.FromMs(11)},
		{"locallfd:1", 5, "41.7%", simtime.FromMs(15)},
	}
	for _, a := range anchors {
		res, err := core.Evaluate(core.Config{
			RUs: 4, Latency: workload.PaperLatency(), Policy: a.policy, RecordTrace: true,
		}, seq...)
		if err != nil {
			return err
		}
		s := res.Summary
		fmt.Fprintf(w, "\n%s (paper reuse %s):\n", s.PolicyName, a.reusePct)
		check(w, "reused tasks (of 12)", s.Reused, a.reuse)
		check(w, "reconfiguration overhead", s.Overhead(), a.overhead)
		fmt.Fprintf(w, "  reuse rate %.1f%%, makespan %v (ideal %v)\n",
			s.ReuseRate(), s.Makespan, s.IdealMakespan)
		fmt.Fprint(w, res.Run.Trace.Gantt(trace.GanttOptions{TickMs: 1}))
	}
	return nil
}
