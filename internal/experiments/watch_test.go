package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/resultstore"
	"repro/internal/sweep"
)

// fig9Experiments returns the three Fig. 9 experiments, the golden
// subjects of the watch-mode acceptance criterion.
func fig9Experiments(t *testing.T) []Experiment {
	t.Helper()
	exps := make([]Experiment, 0, 3)
	for _, id := range []string{"fig9a", "fig9b", "fig9c"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		exps = append(exps, e)
	}
	return exps
}

func renderAll(t *testing.T, exps []Experiment, opt Options) string {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range exps {
		if err := e.Run(opt, &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
	}
	return buf.String()
}

// TestWatchMergeGoldenFig9 is the acceptance pin for the live merge
// pipeline: a watch-mode merge STARTED BEFORE ANY SHARD IS POPULATED
// must block, consume scenarios as a coordinator pool stores them, and
// emit a fig9 report byte-identical to a plain single-process run — with
// the merge-side store handle reporting pure hits (its polling counts no
// misses and writes nothing).
func TestWatchMergeGoldenFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweeps in -short mode")
	}
	base := Options{Seed: 2011, Apps: 40, RUs: []int{4, 5}}
	exps := fig9Experiments(t)
	plain := renderAll(t, exps, base)

	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coordDir := t.TempDir()
	// A generous TTL: the pool must never look dead on a slow CI host;
	// this test exercises the waiting path, not expiry (see the dead-pool
	// test below for that).
	const ttl = time.Minute
	pool, err := coord.Open(coord.Config{Dir: coordDir, Shards: 4, Owner: "workers", LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	popErr := make(chan error, 1)
	go func() {
		// Give the merge a head start so it provably begins against an
		// empty store and has to wait for rows.
		time.Sleep(100 * time.Millisecond)
		popOpt := base
		popOpt.Store = store
		_, err := pool.RunWorkers(2, func(r coord.ShardRun) error {
			_, err := Populate(popOpt, exps, sweep.Shard{Index: r.Shard, Count: r.Count})
			return err
		})
		popErr <- err
	}()

	// The merge side: its own store handle (clean hit/miss accounting)
	// and its own coordinator handle adopting the pool's parameters.
	mergeStore, err := resultstore.Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	mergeC, err := coord.Open(coord.Config{Dir: coordDir, Owner: "merge"})
	if err != nil {
		t.Fatal(err)
	}
	mergeOpt := base
	mergeOpt.Store = mergeStore
	mergeOpt.RequireStored = true
	mergeOpt.StoreWait = &sweep.StoreWait{Poll: 10 * time.Millisecond, Done: mergeC.Drained}
	merged := renderAll(t, exps, mergeOpt)
	if err := <-popErr; err != nil {
		t.Fatal(err)
	}

	if merged != plain {
		t.Errorf("watch merge diverged from the single-process run:\n--- plain ---\n%s\n--- merged ---\n%s", plain, merged)
	}
	hits, misses, puts := mergeStore.Stats()
	if misses != 0 || puts != 0 {
		t.Errorf("watch merge stats: %d misses, %d puts — waiting must neither count misses nor write", misses, puts)
	}
	if hits == 0 {
		t.Error("watch merge never read the store")
	}
}

// TestWatchMergeDeadPoolErrors is the liveness half: a watch merge
// against a pool whose only worker claimed a shard and died must fail
// with the dead-pool verdict once the lease TTL passes — an error, never
// a hang.
func TestWatchMergeDeadPoolErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweeps in -short mode")
	}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coordDir := t.TempDir()
	const ttl = 300 * time.Millisecond
	dead, err := coord.Open(coord.Config{Dir: coordDir, Shards: 2, Owner: "dead-worker", LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	// The worker claims a shard and is never heard from again.
	if lease, err := dead.Claim(); err != nil || lease == nil {
		t.Fatal(lease, err)
	}

	mergeC, err := coord.Open(coord.Config{Dir: coordDir, Owner: "merge"})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := ByID("fig9b")
	if !ok {
		t.Fatal("fig9b missing")
	}
	opt := Options{Seed: 2011, Apps: 20, RUs: []int{4}}
	opt.Store = store
	opt.RequireStored = true
	opt.StoreWait = &sweep.StoreWait{Poll: 10 * time.Millisecond, Done: mergeC.Drained}

	errCh := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		errCh <- e.Run(opt, &buf)
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("watch merge against a dead pool succeeded")
		}
		if !strings.Contains(err.Error(), "looks dead") {
			t.Errorf("error %q does not carry the dead-pool verdict", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("watch merge hung on a dead pool — liveness broken")
	}
}
