package experiments

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/policy"
	"repro/internal/sweep"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// TableIIRow is one benchmark's measurements.
type TableIIRow struct {
	Benchmark string
	// InitialExecMs is the application's no-overhead execution time
	// (paper column 2; exact: 79 / 37 / 94 ms by construction).
	InitialExecMs float64
	// ManagerNs approximates paper column 3 — the run-time cost of the
	// task-graph execution manager — as the host time to drive one
	// instance of the benchmark through the event loop.
	ManagerNs float64
	// ModuleNs is the run-time replacement module's worst-case decision
	// time averaged over Dynamic List windows 1, 2 and 4 (paper column 4
	// averages the same three configurations).
	ModuleNs float64
	// DesignNs is the design-time mobility calculation (paper column 6).
	DesignNs float64
}

// MeasureTableII produces the Table II measurements for the three
// multimedia benchmarks on a 4-unit system.
func MeasureTableII(opt Options) ([]TableIIRow, error) {
	opt = opt.normalized()
	rows := make([]TableIIRow, 0, 3)
	for _, g := range workload.Multimedia() {
		row := TableIIRow{
			Benchmark:     g.Name(),
			InitialExecMs: g.CriticalPath().Ms(),
		}
		// Manager cost: one full isolated instance through the event loop.
		mres := testing.Benchmark(func(b *testing.B) {
			cfg := manager.Config{RUs: 4, Latency: opt.Latency, Policy: policy.NewLRU()}
			for i := 0; i < b.N; i++ {
				if _, err := manager.Run(cfg, dynlist.NewSequence(g)); err != nil {
					b.Fatal(err)
				}
			}
		})
		row.ManagerNs = float64(mres.NsPerOp())
		// Replacement module: worst-case decision, averaged over windows.
		var moduleNs []float64
		for _, w := range []int{1, 2, 4} {
			pol, err := sweep.LocalLFD(w, true).New()
			if err != nil {
				return nil, err
			}
			wc := NewWorstCase(windowLookaheadFor(g, w))
			bres := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pol.SelectVictim(wc.Request, wc.Candidates)
				}
			})
			moduleNs = append(moduleNs, float64(bres.NsPerOp()))
		}
		row.ModuleNs = metrics.Mean(moduleNs)
		// Design-time phase: the full mobility calculation.
		dres := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mobility.Compute(g, 4, opt.Latency); err != nil {
					b.Fatal(err)
				}
			}
		})
		row.DesignNs = float64(dres.NsPerOp())
		rows = append(rows, row)
	}
	return rows, nil
}

// windowLookaheadFor builds the worst-case lookahead for one benchmark:
// its own remainder plus w copies of itself in the Dynamic List.
func windowLookaheadFor(g *taskgraph.Graph, w int) []taskgraph.TaskID {
	out := append([]taskgraph.TaskID(nil), g.RecSequenceIDs()[1:]...)
	for i := 0; i < w; i++ {
		out = append(out, g.RecSequenceIDs()...)
	}
	return out
}

// TableII writes the Table II report: the replacement module's run-time
// impact per benchmark, next to the paper's PowerPC measurements.
func TableII(opt Options, w io.Writer) error {
	rows, err := MeasureTableII(opt)
	if err != nil {
		return err
	}
	section(w, "Table II — impact of the replacement module (R=4)")
	fmt.Fprintf(w, "%-10s %12s %14s %14s %14s %16s\n",
		"benchmark", "init (ms)", "manager ns", "module ns", "design ns", "design/module")
	for _, r := range rows {
		ratio := 0.0
		if r.ModuleNs > 0 {
			ratio = r.DesignNs / r.ModuleNs
		}
		fmt.Fprintf(w, "%-10s %12.0f %14.0f %14.0f %14.0f %16.1f\n",
			r.Benchmark, r.InitialExecMs, r.ManagerNs, r.ModuleNs, r.DesignNs, ratio)
	}
	fmt.Fprintln(w, "\npaper values (PowerPC @100 MHz): init 79/37/94 ms; manager 0.87/1.02/0.88 ms;")
	fmt.Fprintln(w, "module 0.08153 ms (avg over DL 1/2/4, 0.09–0.22 % of init); design 8.60/11.09/14.48 ms.")
	fmt.Fprintln(w, "expected shape: module ≪ manager ≪ application; design-time 1–3 orders above module.")
	return nil
}

// MeasureHybridVsPureRuntime quantifies the abstract's 10× claim: the
// run-time cost per application of the hybrid technique (replacement
// decisions only, mobility precomputed) versus an equivalent purely
// run-time technique (which must also compute mobilities on arrival).
func MeasureHybridVsPureRuntime(opt Options) (hybridNs, pureNs float64, err error) {
	opt = opt.normalized()
	g := workload.Hough() // largest benchmark: the paper's worst case
	pol, err := sweep.LocalLFD(1, true).New()
	if err != nil {
		return 0, 0, err
	}
	wc := NewWorstCase(windowLookaheadFor(g, 1))
	decisions := g.NumTasks() // one replacement decision per task

	hres := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for d := 0; d < decisions; d++ {
				pol.SelectVictim(wc.Request, wc.Candidates)
			}
		}
	})
	hybridNs = float64(hres.NsPerOp())

	pres := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mobility.ComputePureRuntime(g, 4, opt.Latency); err != nil {
				b.Fatal(err)
			}
			for d := 0; d < decisions; d++ {
				pol.SelectVictim(wc.Request, wc.Candidates)
			}
		}
	})
	pureNs = float64(pres.NsPerOp())
	return hybridNs, pureNs, nil
}
