package experiments

import (
	"testing"

	"repro/internal/coord"
	"repro/internal/resultstore"
	"repro/internal/sweep"
)

// TestPopulateResumesFromCheckpoints: a second populate of the same
// shard with the same checkpoint store skips every owned scenario
// outright — no probes, no writes — and reports them as Resumed, while
// a foreign fingerprint ignores the checkpoints and falls back to
// store hits (the slower but equally correct resume path).
func TestPopulateResumesFromCheckpoints(t *testing.T) {
	e, ok := ByID("fig9a")
	if !ok {
		t.Fatal("fig9a experiment missing")
	}
	exps := []Experiment{e}
	opt := Options{
		Seed: 2011, Apps: 10, RUs: []int{4, 5},
		Store:       resultstore.OpenMem(),
		Checkpoints: coord.NewCheckpointStore(coord.NewMem()),
		Fingerprint: "fp",
	}
	sh := sweep.Shard{Index: 0, Count: 2}

	st1, err := Populate(opt, exps, sh)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Resumed != 0 {
		t.Fatalf("cold populate resumed %d scenarios, want 0", st1.Resumed)
	}
	if st1.Ran == 0 {
		t.Fatal("cold populate ran nothing — test workload too small")
	}
	hits1, misses1, puts1 := opt.Store.Stats()

	st2, err := Populate(opt, exps, sh)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Resumed != st2.Ran || st2.Ran != st1.Ran {
		t.Fatalf("resumed populate: Resumed=%d Ran=%d, want both %d (everything checkpointed)",
			st2.Resumed, st2.Ran, st1.Ran)
	}
	hits2, misses2, puts2 := opt.Store.Stats()
	if hits2 != hits1 || misses2 != misses1 || puts2 != puts1 {
		t.Fatalf("resumed populate touched the store: stats went %d/%d/%d → %d/%d/%d",
			hits1, misses1, puts1, hits2, misses2, puts2)
	}

	// Foreign fingerprint: checkpoints read as absent, the store serves.
	foreign := opt
	foreign.Fingerprint = "other-campaign"
	st3, err := Populate(foreign, exps, sh)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Resumed != 0 {
		t.Fatalf("foreign-fingerprint populate resumed %d, want 0", st3.Resumed)
	}
	hits3, _, puts3 := opt.Store.Stats()
	if hits3 != hits1+int64(st1.Ran) || puts3 != puts1 {
		t.Fatalf("foreign-fingerprint populate: hits %d → %d, puts %d → %d; want %d more hits, no new writes",
			hits1, hits3, puts1, puts3, st1.Ran)
	}
}
