package experiments

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

// fig9Spec assembles the shared Fig. 9 grid: one random 500-application
// sequence, unit counts × policy series at the paper's latency. Both the
// report runners and the shard populate path build their sweeps here, so
// a sharded store always holds exactly the scenarios the report reads.
func fig9Spec(opt Options, series []sweep.PolicySpec) (sweep.Spec, error) {
	wl, err := opt.sweepWorkload()
	if err != nil {
		return sweep.Spec{}, err
	}
	return sweep.Spec{
		Workloads: []sweep.Workload{wl},
		RUs:       opt.RUs,
		Latencies: []simtime.Time{opt.Latency},
		Policies:  series,
	}, nil
}

// oneGrid wraps a single-spec experiment as its GridsFunc.
func oneGrid(spec sweep.Spec, err error) ([]sweep.Spec, error) {
	if err != nil {
		return nil, err
	}
	return []sweep.Spec{spec}, nil
}

// fig9Run executes the shared Fig. 9 protocol as one streaming sweep on
// the parallel scenario executor and renders it row by row. Ideal
// baselines (one per unit count) and design-time mobility tables are
// computed once and shared across the grid; results stream through a
// RowRenderer, so each unit count's table row prints the moment its
// policy block lands (policies are the innermost axis — that is why the
// table is oriented "RUs \ policy") and the renderer never holds more
// than one row however large the grid. In a watch-mode merge the rows
// appear as remote shards store their scenarios. metric extracts the
// plotted quantity from a run summary; the trailing "Avg." row is
// accumulated from per-policy running sums, O(policies) scalars.
func fig9Run(opt Options, w io.Writer, title string, series []sweep.PolicySpec,
	metric func(*metrics.Summary) float64, paperAvg map[string]float64) error {

	opt = opt.normalized()
	spec, err := fig9Spec(opt, series)
	if err != nil {
		return err
	}
	section(w, fmt.Sprintf("%s — %d apps from {JPEG, MPEG-1, Hough}, seed %d, latency %v",
		title, len(spec.Workloads[0].Seq), opt.Seed, opt.Latency))

	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	rowLabels := make([]string, 0, len(opt.RUs)+1)
	for _, r := range opt.RUs {
		rowLabels = append(rowLabels, strconv.Itoa(r))
	}
	rowLabels = append(rowLabels, "Avg.")
	// -csv output must follow the table, but the rows exist first; they
	// spool to a temp file as the table streams (O(1) in memory however
	// large the grid) and are copied under the "csv:" banner at the end.
	var csvSpool *os.File
	var csvTo io.Writer
	if opt.CSV {
		f, err := os.CreateTemp("", "rtr-fig9-csv-*.csv")
		if err != nil {
			return fmt.Errorf("csv spool: %w", err)
		}
		defer func() {
			f.Close()
			os.Remove(f.Name())
		}()
		csvSpool, csvTo = f, f
	}
	tab := metrics.NewStreamTable(w, metrics.StreamTableConfig{
		XLabel:    "RUs \\ policy",
		RowLabels: rowLabels,
		XValues:   names,
		CSVTo:     csvTo,
	})

	sums := make([]float64, len(series))
	rr := &sweep.RowRenderer{
		Sizes: []int{len(series)},
		Emit: func(i int, rows []sweep.SummaryRow) error {
			vals := make([]float64, len(rows))
			for pi, row := range rows {
				vals[pi] = metric(row.Summary)
				sums[pi] += vals[pi]
			}
			return tab.FloatRow(rowLabels[i], vals...)
		},
	}
	if err := opt.executor().Collect(spec, rr); err != nil {
		return err
	}
	if err := rr.Close(); err != nil {
		return err
	}
	avgs := make([]float64, len(series))
	for i, s := range sums {
		avgs[i] = s / float64(len(opt.RUs))
	}
	if err := tab.FloatRow("Avg.", avgs...); err != nil {
		return err
	}
	if opt.CSV {
		fmt.Fprintln(w, "\ncsv:")
		if _, err := csvSpool.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("csv spool: %w", err)
		}
		if _, err := io.Copy(w, csvSpool); err != nil {
			return fmt.Errorf("csv spool: %w", err)
		}
	}
	if len(paperAvg) > 0 {
		fmt.Fprintln(w, "\npaper-reported averages for comparison:")
		for _, s := range series {
			if v, ok := paperAvg[s.Name]; ok {
				fmt.Fprintf(w, "  %-28s %.2f\n", s.Name, v)
			}
		}
	}
	return nil
}

// fig9ASeries is Fig. 9a's policy axis: LRU, the Local LFD window sweep,
// clairvoyant LFD.
func fig9ASeries() []sweep.PolicySpec {
	return []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, false),
		sweep.LocalLFD(2, false),
		sweep.LocalLFD(4, false),
		lfdSeries(),
	}
}

// Fig9A reproduces Fig. 9a: reuse rates of LRU, Local LFD (1/2/4) and LFD
// under a pure ASAP load order, for 4–10 units. Expected shape: LRU far
// below; Local LFD approaches LFD as the Dynamic List window grows
// (paper averages: LRU 30.06 %, Local LFD(4) 45.93 %, LFD 45.97 %).
func Fig9A(opt Options, w io.Writer) error {
	return fig9Run(opt, w, "Fig. 9a — reuse rate (%) vs number of RUs (ASAP)",
		fig9ASeries(), (*metrics.Summary).ReuseRate,
		map[string]float64{"LRU": 30.06, "Local LFD (4)": 45.93, "LFD": 45.97})
}

// Fig9AGrids declares Fig. 9a's grid for shard populate runs.
func Fig9AGrids(opt Options) ([]sweep.Spec, error) {
	return oneGrid(fig9Spec(opt.normalized(), fig9ASeries()))
}

// fig9BSeries is Fig. 9b's policy axis, isolating the skip-events lift.
func fig9BSeries() []sweep.PolicySpec {
	return []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, false),
		sweep.LocalLFD(1, true),
		lfdSeries(),
	}
}

// Fig9B reproduces Fig. 9b: the skip-events feature lifts Local LFD(1)'s
// reuse above even clairvoyant LFD, because LFD never delays a load
// (paper averages: Local LFD(1)+Skip 48.19 %, LFD 44.38 %).
func Fig9B(opt Options, w io.Writer) error {
	return fig9Run(opt, w, "Fig. 9b — reuse rate (%) with Skip Events",
		fig9BSeries(), (*metrics.Summary).ReuseRate,
		map[string]float64{"Local LFD (1) + Skip Events": 48.19, "LFD": 44.38})
}

// Fig9BGrids declares Fig. 9b's grid for shard populate runs.
func Fig9BGrids(opt Options) ([]sweep.Spec, error) {
	return oneGrid(fig9Spec(opt.normalized(), fig9BSeries()))
}

// fig9CSeries is Fig. 9c's policy axis: the skip variants across windows.
func fig9CSeries() []sweep.PolicySpec {
	return []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, true),
		sweep.LocalLFD(2, true),
		sweep.LocalLFD(4, true),
		lfdSeries(),
	}
}

// Fig9C reproduces Fig. 9c: the percentage of the original
// reconfiguration overhead that remains. Expected shape: decreasing with
// more units; LFD lowest on average (paper 7.22 %) with Local LFD(4)+Skip
// close behind (8.9 %); at 4 units the skip variants beat LFD thanks to
// the extreme contention (15 tasks on 4 units).
func Fig9C(opt Options, w io.Writer) error {
	err := fig9Run(opt, w, "Fig. 9c — remaining reconfiguration overhead (%)",
		fig9CSeries(), (*metrics.Summary).RemainingOverheadPct,
		map[string]float64{"Local LFD (4) + Skip Events": 8.9, "LFD": 7.22})
	if err == nil {
		fmt.Fprintln(w, "  (the paper additionally reports 19.19 % for LRU at R=4)")
	}
	return err
}

// Fig9CGrids declares Fig. 9c's grid for shard populate runs.
func Fig9CGrids(opt Options) ([]sweep.Spec, error) {
	return oneGrid(fig9Spec(opt.normalized(), fig9CSeries()))
}
