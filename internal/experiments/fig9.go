package experiments

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/policy"
)

// fig9Series is one plotted line: a policy configuration instantiated per
// unit count (mobility tables are design-time artefacts that depend on R).
type fig9Series struct {
	name string
	skip bool
	mk   func() (policy.Policy, error)
}

func localLFDSeries(window int, skip bool) fig9Series {
	name := fmt.Sprintf("Local LFD (%d)", window)
	if skip {
		name += " + Skip Events"
	}
	return fig9Series{
		name: name,
		skip: skip,
		mk:   func() (policy.Policy, error) { return policy.NewLocalLFD(window) },
	}
}

func fixedSeries(name string, p policy.Policy) fig9Series {
	return fig9Series{name: name, mk: func() (policy.Policy, error) { return p, nil }}
}

// fig9Run executes the shared Fig. 9 protocol: one random 500-application
// sequence, a sweep over unit counts, one row per policy series. metric
// extracts the plotted quantity from a run summary.
func fig9Run(opt Options, w io.Writer, title string, series []fig9Series,
	metric func(*metrics.Summary) float64, paperAvg map[string]float64) error {

	opt = opt.normalized()
	pool, seq, err := opt.Workload()
	if err != nil {
		return err
	}
	section(w, fmt.Sprintf("%s — %d apps from {JPEG, MPEG-1, Hough}, seed %d, latency %v",
		title, len(seq), opt.Seed, opt.Latency))

	// Ideal (zero-latency) baselines depend only on the unit count.
	ideals := make(map[int]*manager.Result, len(opt.RUs))
	for _, r := range opt.RUs {
		ideal, err := manager.Run(manager.Config{
			RUs: r, Latency: 0, Policy: policy.NewLRU(),
		}, dynlist.NewSequence(seq...))
		if err != nil {
			return fmt.Errorf("ideal baseline R=%d: %w", r, err)
		}
		ideals[r] = ideal
	}

	cols := make([]string, 0, len(opt.RUs)+1)
	for _, r := range opt.RUs {
		cols = append(cols, strconv.Itoa(r))
	}
	cols = append(cols, "Avg.")
	tab := metrics.NewTable("", "policy \\ RUs", cols...)

	for _, s := range series {
		vals := make([]float64, 0, len(opt.RUs))
		for _, r := range opt.RUs {
			pol, err := s.mk()
			if err != nil {
				return err
			}
			cfg := manager.Config{RUs: r, Latency: opt.Latency, Policy: pol, SkipEvents: s.skip}
			if s.skip {
				lookup, _, err := mobility.ComputeAll(pool, r, opt.Latency)
				if err != nil {
					return fmt.Errorf("%s R=%d design-time phase: %w", s.name, r, err)
				}
				cfg.Mobility = lookup
			}
			res, err := manager.Run(cfg, dynlist.NewSequence(seq...))
			if err != nil {
				return fmt.Errorf("%s R=%d: %w", s.name, r, err)
			}
			sum, err := metrics.Summarize(s.name, r, opt.Latency, res, ideals[r])
			if err != nil {
				return fmt.Errorf("%s R=%d: %w", s.name, r, err)
			}
			vals = append(vals, metric(sum))
		}
		if err := tab.AddFloatRow(s.name, append(vals, metrics.Mean(vals))...); err != nil {
			return err
		}
	}
	fmt.Fprint(w, tab.String())
	if opt.CSV {
		fmt.Fprintln(w, "\ncsv:")
		fmt.Fprint(w, tab.CSV())
	}
	if len(paperAvg) > 0 {
		fmt.Fprintln(w, "\npaper-reported averages for comparison:")
		for _, s := range series {
			if v, ok := paperAvg[s.name]; ok {
				fmt.Fprintf(w, "  %-28s %.2f\n", s.name, v)
			}
		}
	}
	return nil
}

// Fig9A reproduces Fig. 9a: reuse rates of LRU, Local LFD (1/2/4) and LFD
// under a pure ASAP load order, for 4–10 units. Expected shape: LRU far
// below; Local LFD approaches LFD as the Dynamic List window grows
// (paper averages: LRU 30.06 %, Local LFD(4) 45.93 %, LFD 45.97 %).
func Fig9A(opt Options, w io.Writer) error {
	series := []fig9Series{
		fixedSeries("LRU", policy.NewLRU()),
		localLFDSeries(1, false),
		localLFDSeries(2, false),
		localLFDSeries(4, false),
		fixedSeries("LFD", policy.NewLFD()),
	}
	return fig9Run(opt, w, "Fig. 9a — reuse rate (%) vs number of RUs (ASAP)",
		series, (*metrics.Summary).ReuseRate,
		map[string]float64{"LRU": 30.06, "Local LFD (4)": 45.93, "LFD": 45.97})
}

// Fig9B reproduces Fig. 9b: the skip-events feature lifts Local LFD(1)'s
// reuse above even clairvoyant LFD, because LFD never delays a load
// (paper averages: Local LFD(1)+Skip 48.19 %, LFD 44.38 %).
func Fig9B(opt Options, w io.Writer) error {
	series := []fig9Series{
		fixedSeries("LRU", policy.NewLRU()),
		localLFDSeries(1, false),
		localLFDSeries(1, true),
		fixedSeries("LFD", policy.NewLFD()),
	}
	return fig9Run(opt, w, "Fig. 9b — reuse rate (%) with Skip Events",
		series, (*metrics.Summary).ReuseRate,
		map[string]float64{"Local LFD (1) + Skip Events": 48.19, "LFD": 44.38})
}

// Fig9C reproduces Fig. 9c: the percentage of the original
// reconfiguration overhead that remains. Expected shape: decreasing with
// more units; LFD lowest on average (paper 7.22 %) with Local LFD(4)+Skip
// close behind (8.9 %); at 4 units the skip variants beat LFD thanks to
// the extreme contention (15 tasks on 4 units).
func Fig9C(opt Options, w io.Writer) error {
	series := []fig9Series{
		fixedSeries("LRU", policy.NewLRU()),
		localLFDSeries(1, true),
		localLFDSeries(2, true),
		localLFDSeries(4, true),
		fixedSeries("LFD", policy.NewLFD()),
	}
	err := fig9Run(opt, w, "Fig. 9c — remaining reconfiguration overhead (%)",
		series, (*metrics.Summary).RemainingOverheadPct,
		map[string]float64{"Local LFD (4) + Skip Events": 8.9, "LFD": 7.22})
	if err == nil {
		fmt.Fprintln(w, "  (the paper additionally reports 19.19 % for LRU at R=4)")
	}
	return err
}
