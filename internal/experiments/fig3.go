package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig3 reproduces the paper's skip-events motivational example (Fig. 3):
// the sequence TG1, TG2, TG1 on four units, with and without the skip
// feature. Delaying task 7's reconfiguration by one event (its mobility)
// lets task 1 survive for reuse, cutting the overhead from 12 ms to 8 ms.
func Fig3(opt Options, w io.Writer) error {
	opt = opt.normalized()
	section(w, "Fig. 3 — skip events motivational example (R=4, latency 4 ms)")
	seq := workload.Fig3Sequence()

	type anchor struct {
		label    string
		skip     bool
		reuse    int
		makespan simtime.Time
		overhead simtime.Time
	}
	anchors := []anchor{
		{"Local LFD (1), ASAP", false, 0, simtime.FromMs(74), simtime.FromMs(12)},
		{"Local LFD (1) + Skip Events", true, 1, simtime.FromMs(70), simtime.FromMs(8)},
	}
	for _, a := range anchors {
		res, err := core.Evaluate(core.Config{
			RUs: 4, Latency: workload.PaperLatency(), Policy: "locallfd:1",
			SkipEvents: a.skip, RecordTrace: true,
		}, seq...)
		if err != nil {
			return err
		}
		s := res.Summary
		fmt.Fprintf(w, "\n%s:\n", a.label)
		check(w, "reused tasks (of 10)", s.Reused, a.reuse)
		check(w, "makespan", s.Makespan, a.makespan)
		check(w, "reconfiguration overhead", s.Overhead(), a.overhead)
		if a.skip {
			check(w, "skip decisions taken", res.Run.Skips, 1)
		}
		fmt.Fprint(w, res.Run.Trace.Gantt(trace.GanttOptions{TickMs: 1}))
	}
	return nil
}
