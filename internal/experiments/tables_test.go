package experiments

import (
	"testing"
)

// The Table I/II runners measure with testing.Benchmark, so each takes
// seconds of wall time; they are exercised here end to end but skipped in
// -short mode.

func TestTableIMeasurementShape(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-based measurement")
	}
	rows, err := MeasureTableI(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		if r.NsPerOp <= 0 {
			t.Errorf("%s: non-positive timing %v", r.Name, r.NsPerOp)
		}
		byName[r.Name] = r
	}
	// The paper's ordering must hold on the host: LRU and the Local LFD
	// windows monotonically below LFD.
	l1 := byName["Local LFD (1) + Skip Events"].NsPerOp
	l2 := byName["Local LFD (2) + Skip Events"].NsPerOp
	l4 := byName["Local LFD (4) + Skip Events"].NsPerOp
	lfd := byName["LFD"].NsPerOp
	if !(l1 < l2 && l2 < l4 && l4 < lfd) {
		t.Errorf("ordering violated: L1=%v L2=%v L4=%v LFD=%v", l1, l2, l4, lfd)
	}
	if lfd/l1 < 10 {
		t.Errorf("LFD/LocalLFD(1) ratio %v implausibly small", lfd/l1)
	}
}

func TestTableIIMeasurementShape(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-based measurement")
	}
	rows, err := MeasureTableII(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	inits := map[string]float64{"jpeg": 79, "mpeg1": 37, "hough": 94}
	for _, r := range rows {
		if r.InitialExecMs != inits[r.Benchmark] {
			t.Errorf("%s: init %v ms, want %v", r.Benchmark, r.InitialExecMs, inits[r.Benchmark])
		}
		// The hybrid split's raison d'être: the design-time phase costs
		// orders of magnitude more than one run-time decision.
		if r.DesignNs < 50*r.ModuleNs {
			t.Errorf("%s: design %v ns not ≫ module %v ns", r.Benchmark, r.DesignNs, r.ModuleNs)
		}
		if r.ManagerNs <= r.ModuleNs {
			t.Errorf("%s: manager %v ns not above module %v ns", r.Benchmark, r.ManagerNs, r.ModuleNs)
		}
	}
}
