package experiments

import (
	"testing"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/policy"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// evalShape runs one configuration over the shared reduced workload and
// returns its summary.
func evalShape(t *testing.T, pool, seq []*taskgraph.Graph, rus int, pol policy.Policy, skip bool) *metrics.Summary {
	t.Helper()
	lat := workload.PaperLatency()
	cfg := manager.Config{RUs: rus, Latency: lat, Policy: pol, SkipEvents: skip}
	if skip {
		lookup, _, err := mobility.ComputeAll(pool, rus, lat)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Mobility = lookup
	}
	res, err := manager.Run(cfg, dynlist.NewSequence(seq...))
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := manager.Run(manager.Config{RUs: rus, Latency: 0, Policy: policy.NewLRU()},
		dynlist.NewSequence(seq...))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := metrics.Summarize(pol.Name(), rus, lat, res, ideal)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestPaperShapeClaims verifies the qualitative claims of Section VI on a
// reduced but statistically meaningful workload (200 apps):
//
//  1. LFD reuse ≥ every ASAP policy's reuse (Belady optimality within the
//     no-delay regime);
//  2. Local LFD reuse grows with the Dynamic List window toward LFD;
//  3. LRU reuse is far below LFD;
//  4. skip events lift Local LFD(1) reuse above plain Local LFD(1) and
//     above LFD (the paper's "better than the optimum" observation);
//  5. at the paper's high-contention point (R=4), Local LFD + skip leaves
//     less remaining overhead than LFD.
func TestPaperShapeClaims(t *testing.T) {
	opt := Options{Seed: 2011, Apps: 200, Latency: workload.PaperLatency(), RUs: []int{4}}
	pool, seq, err := opt.Workload()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(w int) policy.Policy {
		p, err := policy.NewLocalLFD(w)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, rus := range []int{4, 6, 8} {
		lru := evalShape(t, pool, seq, rus, policy.NewLRU(), false)
		lfd := evalShape(t, pool, seq, rus, policy.NewLFD(), false)
		l1 := evalShape(t, pool, seq, rus, mk(1), false)
		l2 := evalShape(t, pool, seq, rus, mk(2), false)
		l4 := evalShape(t, pool, seq, rus, mk(4), false)
		l1skip := evalShape(t, pool, seq, rus, mk(1), true)

		// Claim 1: LFD tops every ASAP policy.
		for _, s := range []*metrics.Summary{lru, l1, l2, l4} {
			if s.ReuseRate() > lfd.ReuseRate()+1e-9 {
				t.Errorf("R=%d: %s reuse %.2f%% exceeds LFD %.2f%%",
					rus, s.PolicyName, s.ReuseRate(), lfd.ReuseRate())
			}
		}
		// Claim 2: monotone in the window (allowing exact ties).
		if l1.ReuseRate() > l2.ReuseRate()+1e-9 || l2.ReuseRate() > l4.ReuseRate()+1e-9 {
			t.Errorf("R=%d: window monotonicity violated: %.2f / %.2f / %.2f",
				rus, l1.ReuseRate(), l2.ReuseRate(), l4.ReuseRate())
		}
		// Claim 3: LRU well below LFD.
		if lru.ReuseRate() >= lfd.ReuseRate() {
			t.Errorf("R=%d: LRU %.2f%% not below LFD %.2f%%", rus, lru.ReuseRate(), lfd.ReuseRate())
		}
		// Claim 4: skip events add reuse at high contention.
		if rus == 4 {
			if l1skip.ReuseRate() <= l1.ReuseRate() {
				t.Errorf("R=4: skip did not lift reuse: %.2f%% vs %.2f%%",
					l1skip.ReuseRate(), l1.ReuseRate())
			}
			if l1skip.ReuseRate() <= lfd.ReuseRate() {
				t.Errorf("R=4: skip reuse %.2f%% did not exceed LFD %.2f%% (paper's Fig. 9b)",
					l1skip.ReuseRate(), lfd.ReuseRate())
			}
			// Claim 5: and it reduces remaining overhead below LFD's.
			if l1skip.RemainingOverheadPct() >= lfd.RemainingOverheadPct() {
				t.Errorf("R=4: skip remaining %.2f%% not below LFD %.2f%% (paper's Fig. 9c)",
					l1skip.RemainingOverheadPct(), lfd.RemainingOverheadPct())
			}
		}
	}
}

// TestLFDOptimalAmongNoDelayPolicies is a broader property check: over
// several seeds, no classic policy beats clairvoyant LFD on reuse in the
// ASAP (no-delay) regime.
func TestLFDOptimalAmongNoDelayPolicies(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		opt := Options{Seed: seed, Apps: 80, Latency: workload.PaperLatency(), RUs: []int{4}}
		pool, seq, err := opt.Workload()
		if err != nil {
			t.Fatal(err)
		}
		lfd := evalShape(t, pool, seq, 5, policy.NewLFD(), false)
		for _, pol := range []policy.Policy{
			policy.NewLRU(), policy.NewFIFO(), policy.NewMRU(), policy.NewRandom(seed),
		} {
			s := evalShape(t, pool, seq, 5, pol, false)
			if s.ReuseRate() > lfd.ReuseRate()+1e-9 {
				t.Errorf("seed %d: %s reuse %.2f%% beats LFD %.2f%%",
					seed, pol.Name(), s.ReuseRate(), lfd.ReuseRate())
			}
		}
	}
}
