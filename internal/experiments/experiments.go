// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) plus the motivational examples (Section II) and
// the mobility worked example (Section V). Each experiment writes a
// self-contained text report giving the measured values next to the
// paper's published ones.
//
// The experiments are deterministic: workload sequences are drawn from a
// seeded generator, and the simulator itself has no hidden randomness.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// lruSeries and lfdSeries are the two stateless reference series every
// figure plots alongside the paper's policy.
func lruSeries() sweep.PolicySpec { return sweep.Fixed("LRU", policy.NewLRU()) }
func lfdSeries() sweep.PolicySpec { return sweep.Fixed("LFD", policy.NewLFD()) }

// Options parametrizes the experiment suite.
type Options struct {
	// Seed drives workload generation (default 2011, the paper's year).
	Seed int64
	// Apps is the length of the random application sequence for the
	// Fig. 9 experiments (paper: 500).
	Apps int
	// RUs is the sweep of unit counts for Fig. 9 (paper plots 4..10 and
	// remarks on 3).
	RUs []int
	// Latency is the reconfiguration latency (paper examples: 4 ms).
	Latency simtime.Time
	// CSV additionally emits machine-readable CSV after each figure
	// table (Fig. 9 family and ablations).
	CSV bool
	// Parallel bounds the number of concurrently simulated scenarios in
	// the sweep-backed experiments (≤0: one per CPU). Reports are
	// byte-identical at every setting; see internal/sweep.
	Parallel int
	// Store, when non-nil, persists scenario results keyed by canonical
	// config hash: every grid experiment transparently serves unchanged
	// scenarios from disk on re-runs, with reports byte-identical to a
	// cold run. Trace-consuming experiments (fig2, fig3, energy) bypass
	// it. See internal/resultstore.
	Store *resultstore.Store
	// RequireStored renders reports purely from Store: a cacheable grid
	// scenario missing from it fails the experiment instead of being
	// silently re-simulated. This is the -merge-report mode after N
	// sharded populate runs (see Populate); uncacheable pieces (traces,
	// per-task latencies) still run live. Requires Store.
	RequireStored bool
	// StoreWait, with RequireStored, is the watch-mode merge: a grid
	// scenario missing from Store is awaited (polled) instead of failed,
	// so the suite can start rendering before a coordinator pool has
	// finished populating the store — each report row prints the moment
	// its scenarios land. StoreWait.Done decides when waiting further is
	// pointless (pool drained or dead); see internal/sweep.StoreWait and
	// coord.(*Coordinator).Drained.
	StoreWait *sweep.StoreWait
	// Retries is the per-scenario retry budget (-max-scenario-retries):
	// a live-simulation failure reruns up to this many extra times with
	// jittered exponential backoff before failing the sweep, and the
	// attempt count lands in the store entry. 0 fails on the first error.
	Retries int
	// Checkpoints, when non-nil, makes sharded populates resumable
	// mid-grid: Populate loads per-grid checkpoints, skips the prefix
	// the store already acknowledged, and saves fresh progress as
	// results land — so a re-leased shard repeats only the work since
	// the dead worker's last save. Fingerprint must be the campaign
	// fingerprint (the same identity the coordinator vets at Open);
	// checkpoints recorded under a different one are ignored.
	Checkpoints sweep.CheckpointStore
	// Fingerprint guards Checkpoints records against grids they do not
	// belong to.
	Fingerprint string
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Seed:    2011,
		Apps:    500,
		RUs:     []int{4, 5, 6, 7, 8, 9, 10},
		Latency: workload.PaperLatency(),
	}
}

// normalized fills zero fields with defaults.
func (o Options) normalized() Options {
	def := DefaultOptions()
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	if o.Apps <= 0 {
		o.Apps = def.Apps
	}
	if len(o.RUs) == 0 {
		o.RUs = def.RUs
	}
	if o.Latency <= 0 {
		o.Latency = def.Latency
	}
	return o
}

// Workload draws the Fig. 9 experiment inputs: the template pool
// ({JPEG, MPEG-1, Hough}) and a sequence of Apps applications selected
// uniformly from it with the option seed. The sequence references the
// returned pool's template objects — mobility tables are keyed by
// template identity, so callers must compute them from this same pool.
func (o Options) Workload() (pool, seq []*taskgraph.Graph, err error) {
	pool = workload.Multimedia()
	if err := workload.ValidateUniverse(pool); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	feed, err := dynlist.RandomSequence(pool, o.Apps, rng)
	if err != nil {
		return nil, nil, err
	}
	items := feed.Remaining()
	seq = make([]*taskgraph.Graph, len(items))
	for i, it := range items {
		seq[i] = it.Graph
	}
	return pool, seq, nil
}

// sequence is the sequence-only convenience over workload.
func (o Options) sequence() ([]*taskgraph.Graph, error) {
	_, seq, err := o.Workload()
	return seq, err
}

// executor returns the scenario executor the sweep-backed experiments
// share, honouring the Parallel, Store, RequireStored and StoreWait
// options.
func (o Options) executor() sweep.Executor {
	return sweep.Executor{
		Workers: o.Parallel, Store: o.Store,
		RequireStored: o.RequireStored, StoreWait: o.StoreWait,
		MaxScenarioRetries: o.Retries,
	}
}

// sweepWorkload wraps the Fig. 9 inputs as a sweep workload.
func (o Options) sweepWorkload() (sweep.Workload, error) {
	pool, seq, err := o.Workload()
	if err != nil {
		return sweep.Workload{}, err
	}
	return sweep.Workload{Pool: pool, Seq: seq}, nil
}

// Runner produces one experiment report.
type Runner func(opt Options, w io.Writer) error

// GridsFunc declares the cacheable sweep Specs an experiment executes,
// so shard mode can populate a shared result store without rendering
// the report (see Populate). Experiments with no persistable grid —
// worked examples, timing tables, trace-consuming sweeps — have none.
type GridsFunc func(opt Options) ([]sweep.Spec, error)

// Experiment couples an identifier with its runner and, for the grid
// experiments, the Specs shard runs populate.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
	Grids GridsFunc
}

// All returns every experiment in report order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Fig. 2 — motivational example: LRU vs LFD vs Local LFD", Fig2, nil},
		{"fig3", "Fig. 3 — motivational example: skip events", Fig3, nil},
		{"fig7", "Fig. 7 — design-time mobility calculation", Fig7, nil},
		{"fig9a", "Fig. 9a — reuse rates vs number of RUs (ASAP)", Fig9A, Fig9AGrids},
		{"fig9b", "Fig. 9b — reuse rates with skip events", Fig9B, Fig9BGrids},
		{"fig9c", "Fig. 9c — remaining reconfiguration overhead", Fig9C, Fig9CGrids},
		{"table1", "Table I — run-time delays of the replacement policies", TableI, nil},
		{"table2", "Table II — impact of the replacement module", TableII, nil},
		{"ablation", "Ablation — window sweep, skip contribution, extra baselines", Ablation, AblationGrids},
		{"energy", "Extension — reconfiguration energy and bus traffic", EnergyExperiment, nil},
		{"sensitivity", "Extension — latency sensitivity and heterogeneous latencies", Sensitivity, SensitivityGrids},
		{"prefetch", "Extension — cross-graph prefetch", Prefetch, PrefetchGrids},
		{"variance", "Extension — seed robustness of the headline claim", Variance, VarianceGrids},
	}
}

// PopulateStats summarizes one shard populate pass across the selected
// experiments' grids.
type PopulateStats struct {
	// Grids is the number of sweep Specs executed.
	Grids int
	// Scenarios is the total grid size across those Specs.
	Scenarios int
	// Ran is how many scenarios this shard owns (store hits among them
	// still count as ran — nothing was skipped by the shard).
	Ran int
	// SkippedByShard is how many scenarios other shards own.
	SkippedByShard int
	// Resumed is how many owned scenarios per-grid checkpoints skipped
	// (work a previous attempt at this shard already stored); they are
	// counted in Ran too, like store hits.
	Resumed int
}

// Populate executes one shard's slice of every selected experiment's
// cacheable grids into opt.Store, rendering nothing: the sweep results
// stream through a discarding collector and the store write-through is
// the only output. After every shard 0..N-1 has run against one shared
// store, a RequireStored suite run (-merge-report) renders the full
// report byte-identical to a single-process run. Experiments without a
// GridsFunc are skipped — they either have no grid or cannot be
// persisted (traces, timing) and run live at merge time instead.
func Populate(opt Options, exps []Experiment, shard sweep.Shard) (PopulateStats, error) {
	var st PopulateStats
	if opt.Store == nil {
		return st, fmt.Errorf("experiments: Populate needs a result store")
	}
	// Populate always simulates what the store lacks; RequireStored is
	// the merge side of the protocol, never the populate side.
	ex := sweep.Executor{Workers: opt.Parallel, Store: opt.Store, MaxScenarioRetries: opt.Retries}
	for _, e := range exps {
		if e.Grids == nil {
			continue
		}
		specs, err := e.Grids(opt)
		if err != nil {
			return st, fmt.Errorf("%s: %w", e.ID, err)
		}
		for gi, sp := range specs {
			sp.Shard = shard
			if opt.Checkpoints != nil {
				// One checkpoint per (shard, grid): a re-leased shard skips
				// the spec indices a previous attempt already stored.
				name := fmt.Sprintf("shard-%04d/%s-grid%d", shard.Index, e.ID, gi)
				resumed, err := ex.CollectResumable(sp, sweep.Discard, opt.Checkpoints, name, opt.Fingerprint)
				st.Resumed += resumed
				if err != nil {
					return st, fmt.Errorf("%s: %w", e.ID, err)
				}
			} else if err := ex.Collect(sp, sweep.Discard); err != nil {
				return st, fmt.Errorf("%s: %w", e.ID, err)
			}
			n := sp.Size()
			st.Grids++
			st.Scenarios += n
			st.Ran += shard.SizeOf(n)
			st.SkippedByShard += n - shard.SizeOf(n)
		}
	}
	return st, nil
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists experiment identifiers.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// check prints a measured-vs-expected line with a PASS/FAIL verdict; exact
// anchors from the paper's worked examples use it.
func check(w io.Writer, what string, got, want any) bool {
	ok := fmt.Sprint(got) == fmt.Sprint(want)
	verdict := "PASS"
	if !ok {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "  %-44s measured %-10v paper %-10v %s\n", what, got, want, verdict)
	return ok
}

// section prints a report header.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
