// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) plus the motivational examples (Section II) and
// the mobility worked example (Section V). Each experiment writes a
// self-contained text report giving the measured values next to the
// paper's published ones.
//
// The experiments are deterministic: workload sequences are drawn from a
// seeded generator, and the simulator itself has no hidden randomness.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// lruSeries and lfdSeries are the two stateless reference series every
// figure plots alongside the paper's policy.
func lruSeries() sweep.PolicySpec { return sweep.Fixed("LRU", policy.NewLRU()) }
func lfdSeries() sweep.PolicySpec { return sweep.Fixed("LFD", policy.NewLFD()) }

// Options parametrizes the experiment suite.
type Options struct {
	// Seed drives workload generation (default 2011, the paper's year).
	Seed int64
	// Apps is the length of the random application sequence for the
	// Fig. 9 experiments (paper: 500).
	Apps int
	// RUs is the sweep of unit counts for Fig. 9 (paper plots 4..10 and
	// remarks on 3).
	RUs []int
	// Latency is the reconfiguration latency (paper examples: 4 ms).
	Latency simtime.Time
	// CSV additionally emits machine-readable CSV after each figure
	// table (Fig. 9 family and ablations).
	CSV bool
	// Parallel bounds the number of concurrently simulated scenarios in
	// the sweep-backed experiments (≤0: one per CPU). Reports are
	// byte-identical at every setting; see internal/sweep.
	Parallel int
	// Store, when non-nil, persists scenario results keyed by canonical
	// config hash: every grid experiment transparently serves unchanged
	// scenarios from disk on re-runs, with reports byte-identical to a
	// cold run. Trace-consuming experiments (fig2, fig3, energy) bypass
	// it. See internal/resultstore.
	Store *resultstore.Store
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Seed:    2011,
		Apps:    500,
		RUs:     []int{4, 5, 6, 7, 8, 9, 10},
		Latency: workload.PaperLatency(),
	}
}

// normalized fills zero fields with defaults.
func (o Options) normalized() Options {
	def := DefaultOptions()
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	if o.Apps <= 0 {
		o.Apps = def.Apps
	}
	if len(o.RUs) == 0 {
		o.RUs = def.RUs
	}
	if o.Latency <= 0 {
		o.Latency = def.Latency
	}
	return o
}

// Workload draws the Fig. 9 experiment inputs: the template pool
// ({JPEG, MPEG-1, Hough}) and a sequence of Apps applications selected
// uniformly from it with the option seed. The sequence references the
// returned pool's template objects — mobility tables are keyed by
// template identity, so callers must compute them from this same pool.
func (o Options) Workload() (pool, seq []*taskgraph.Graph, err error) {
	pool = workload.Multimedia()
	if err := workload.ValidateUniverse(pool); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	feed, err := dynlist.RandomSequence(pool, o.Apps, rng)
	if err != nil {
		return nil, nil, err
	}
	items := feed.Remaining()
	seq = make([]*taskgraph.Graph, len(items))
	for i, it := range items {
		seq[i] = it.Graph
	}
	return pool, seq, nil
}

// sequence is the sequence-only convenience over workload.
func (o Options) sequence() ([]*taskgraph.Graph, error) {
	_, seq, err := o.Workload()
	return seq, err
}

// executor returns the scenario executor the sweep-backed experiments
// share, honouring the Parallel and Store options.
func (o Options) executor() sweep.Executor {
	return sweep.Executor{Workers: o.Parallel, Store: o.Store}
}

// sweepWorkload wraps the Fig. 9 inputs as a sweep workload.
func (o Options) sweepWorkload() (sweep.Workload, error) {
	pool, seq, err := o.Workload()
	if err != nil {
		return sweep.Workload{}, err
	}
	return sweep.Workload{Pool: pool, Seq: seq}, nil
}

// Runner produces one experiment report.
type Runner func(opt Options, w io.Writer) error

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
}

// All returns every experiment in report order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Fig. 2 — motivational example: LRU vs LFD vs Local LFD", Fig2},
		{"fig3", "Fig. 3 — motivational example: skip events", Fig3},
		{"fig7", "Fig. 7 — design-time mobility calculation", Fig7},
		{"fig9a", "Fig. 9a — reuse rates vs number of RUs (ASAP)", Fig9A},
		{"fig9b", "Fig. 9b — reuse rates with skip events", Fig9B},
		{"fig9c", "Fig. 9c — remaining reconfiguration overhead", Fig9C},
		{"table1", "Table I — run-time delays of the replacement policies", TableI},
		{"table2", "Table II — impact of the replacement module", TableII},
		{"ablation", "Ablation — window sweep, skip contribution, extra baselines", Ablation},
		{"energy", "Extension — reconfiguration energy and bus traffic", EnergyExperiment},
		{"sensitivity", "Extension — latency sensitivity and heterogeneous latencies", Sensitivity},
		{"prefetch", "Extension — cross-graph prefetch", Prefetch},
		{"variance", "Extension — seed robustness of the headline claim", Variance},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists experiment identifiers.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// check prints a measured-vs-expected line with a PASS/FAIL verdict; exact
// anchors from the paper's worked examples use it.
func check(w io.Writer, what string, got, want any) bool {
	ok := fmt.Sprint(got) == fmt.Sprint(want)
	verdict := "PASS"
	if !ok {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "  %-44s measured %-10v paper %-10v %s\n", what, got, want, verdict)
	return ok
}

// section prints a report header.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
