package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/workload"
)

const sensitivityRUs = 4

// sensitivityLatencies is the uniform latency sweep, 1–16 ms around the
// paper's fixed 4 ms.
func sensitivityLatencies() []simtime.Time {
	return []simtime.Time{
		simtime.FromMs(1), simtime.FromMs(2), simtime.FromMs(4),
		simtime.FromMs(8), simtime.FromMs(16),
	}
}

// sensitivitySpec assembles the uniform-latency grid (the cacheable half
// of the experiment; the heterogeneous run has a per-task latency
// function and can never be persisted).
func sensitivitySpec(opt Options) (sweep.Spec, error) {
	wl, err := opt.sweepWorkload()
	if err != nil {
		return sweep.Spec{}, err
	}
	return sweep.Spec{
		Workloads: []sweep.Workload{wl},
		RUs:       []int{sensitivityRUs},
		Latencies: sensitivityLatencies(),
		Policies: []sweep.PolicySpec{
			lruSeries(),
			sweep.LocalLFD(1, true),
			lfdSeries(),
		},
	}, nil
}

// SensitivityGrids declares the uniform-latency grid for shard populate
// runs.
func SensitivityGrids(opt Options) ([]sweep.Spec, error) {
	return oneGrid(sensitivitySpec(opt.normalized()))
}

// Sensitivity probes how the paper's conclusions depend on the one
// hardware parameter it fixes: the 4 ms reconfiguration latency. It
// sweeps uniform latencies from 1 to 16 ms and adds a heterogeneous run
// where each task's latency follows its bitstream size (the equal-sized-
// units assumption relaxed to "equal regions, differently full
// bitstreams"). The uniform sweep is a latency-axis Spec rendered row by
// row — the table is oriented "latency \ policy" so each latency's row
// is a contiguous block of spec order and prints as its policy block
// lands; mobility tables are computed once per latency and shared across
// its scenarios. The heterogeneous sweep streams one line per scenario.
func Sensitivity(opt Options, w io.Writer) error {
	opt = opt.normalized()
	spec, err := sensitivitySpec(opt)
	if err != nil {
		return err
	}
	wl := spec.Workloads[0]
	section(w, fmt.Sprintf("Extension — latency sensitivity at R=%d (%d apps, seed %d)",
		sensitivityRUs, len(wl.Seq), opt.Seed))

	latencies := spec.Latencies
	series := spec.Policies
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	rowLabels := make([]string, len(latencies))
	for i, l := range latencies {
		rowLabels[i] = l.String()
	}
	tab := metrics.NewStreamTable(w, metrics.StreamTableConfig{
		Title:     "remaining overhead (%) by uniform latency",
		XLabel:    "latency \\ policy",
		RowLabels: rowLabels,
		XValues:   names,
	})
	rr := &sweep.RowRenderer{
		Sizes: []int{len(series)},
		Emit: func(i int, rows []sweep.SummaryRow) error {
			vals := make([]float64, len(rows))
			for pi, row := range rows {
				vals[pi] = row.Summary.RemainingOverheadPct()
			}
			return tab.FloatRow(rowLabels[i], vals...)
		},
	}
	if err := opt.executor().Collect(spec, rr); err != nil {
		return err
	}
	if err := rr.Close(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nexpected: the remaining percentage is fairly stable across latencies —")
	fmt.Fprintln(w, "overheads scale with the latency, and so does the original-overhead baseline.")

	// Heterogeneous latencies derived from bitstream sizes. A per-task
	// latency function has no canonical encoding, so this sweep always
	// runs live (it bypasses the store — and RequireStored — by design).
	latFor, err := workload.LatencyFromBitstreams(workload.BitstreamBytes(), workload.DefaultConfigBandwidth)
	if err != nil {
		return err
	}
	hetSeries := []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, false),
		lfdSeries(),
	}
	fmt.Fprintln(w, "\nheterogeneous latencies (bitstream-size derived, mean 4 ms):")
	hetRR := &sweep.RowRenderer{
		Emit: func(i int, rows []sweep.SummaryRow) error {
			r := rows[0]
			fmt.Fprintf(w, "  %-16s reuse %6.2f%%  makespan %v\n",
				r.Scenario.Policy.Name, r.Counters.ReuseRate(), r.Counters.Makespan)
			return nil
		},
	}
	err = opt.executor().Collect(sweep.Spec{
		Workloads:  []sweep.Workload{wl},
		RUs:        []int{sensitivityRUs},
		Latencies:  []simtime.Time{0}, // overridden per task by LatencyFor
		Policies:   hetSeries,
		LatencyFor: latFor,
		NoBaseline: true,
	}, hetRR)
	if err != nil {
		return err
	}
	if err := hetRR.Close(); err != nil {
		return err
	}
	fmt.Fprintln(w, "  (reuse ordering matches the uniform-latency runs: the policies rank")
	fmt.Fprintln(w, "  identically when latencies vary per task)")
	return nil
}

// prefetchVariant builds one prefetch configuration on top of Local LFD.
func prefetchVariant(name string, window int, skip, prefetch, conservative bool) sweep.PolicySpec {
	s := sweep.LocalLFD(window, skip)
	s.Name = name
	s.CrossGraphPrefetch = prefetch
	s.ConservativePrefetch = conservative
	return s
}

// prefetchSpec assembles the (RUs × prefetch variants) grid.
func prefetchSpec(opt Options) (sweep.Spec, error) {
	wl, err := opt.sweepWorkload()
	if err != nil {
		return sweep.Spec{}, err
	}
	return sweep.Spec{
		Workloads: []sweep.Workload{wl},
		RUs:       opt.RUs,
		Latencies: []simtime.Time{opt.Latency},
		Policies: []sweep.PolicySpec{
			prefetchVariant("Local LFD (1)", 1, false, false, false),
			prefetchVariant("Local LFD (1) + Skip Events", 1, true, false, false),
			prefetchVariant("Local LFD (1) + prefetch", 1, false, true, false),
			prefetchVariant("Local LFD (1) + Skip + prefetch", 1, true, true, false),
			// The conservative variant needs a window reaching past the
			// graph being preloaded to recognize reusable victims.
			prefetchVariant("Local LFD (4) + conserv. prefetch", 4, false, true, true),
		},
	}, nil
}

// PrefetchGrids declares the prefetch grid for shard populate runs.
func PrefetchGrids(opt Options) ([]sweep.Spec, error) {
	return oneGrid(prefetchSpec(opt.normalized()))
}

// Prefetch evaluates the cross-graph prefetch extension: letting the idle
// reconfiguration circuitry preload the next enqueued graph. The paper's
// manager stops prefetching at graph boundaries; the extension removes
// the cold boundary load that dominates the remaining overhead at high
// contention. The whole (RUs × variants) grid is one streaming sweep
// printing one line per scenario the moment it lands — the degenerate
// (block size 1) case of the row renderer.
func Prefetch(opt Options, w io.Writer) error {
	opt = opt.normalized()
	spec, err := prefetchSpec(opt)
	if err != nil {
		return err
	}
	section(w, fmt.Sprintf("Extension — cross-graph prefetch (%d apps, seed %d, latency %v)",
		len(spec.Workloads[0].Seq), opt.Seed, opt.Latency))

	fmt.Fprintf(w, "%-4s %-34s %10s %12s %12s %10s\n",
		"RUs", "configuration", "reuse %", "overhead", "remaining %", "preloads")
	rr := &sweep.RowRenderer{
		Emit: func(i int, rows []sweep.SummaryRow) error {
			r := rows[0]
			fmt.Fprintf(w, "%-4d %-34s %10.2f %12v %12.2f %10d\n",
				r.Scenario.RUs, r.Scenario.Policy.Name, r.Summary.ReuseRate(), r.Summary.Overhead(),
				r.Summary.RemainingOverheadPct(), r.Counters.Preloads)
			return nil
		},
	}
	if err := opt.executor().Collect(spec, rr); err != nil {
		return err
	}
	if err := rr.Close(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nexpected: greedy prefetch hides nearly every load — only the run's very")
	fmt.Fprintln(w, "first cold reconfiguration stays exposed — but it evicts configurations")
	fmt.Fprintln(w, "later graphs would have reused, so reuse (and the energy saving) drops.")
	fmt.Fprintln(w, "The conservative variant only preloads onto victims its window does not")
	fmt.Fprintln(w, "expect back: it keeps plain Local LFD's reuse while still removing most")
	fmt.Fprintln(w, "of the boundary overhead — from R=6 up it beats both skip events and")
	fmt.Fprintln(w, "greedy prefetch on the reuse/overhead trade-off.")
	return nil
}

// EnergyExperiment quantifies the paper's energy/bus-pressure claims
// (§VI.A): the reconfiguration energy each policy spends on the Fig. 9
// workload and what reuse saved, under the default bitstream model. The
// energy model walks execution traces, so this sweep keeps full results
// (ResultSetCollector) and always runs live — traces are never stored.
func EnergyExperiment(opt Options, w io.Writer) error {
	opt = opt.normalized()
	wl, err := opt.sweepWorkload()
	if err != nil {
		return err
	}
	const rus = 4
	section(w, fmt.Sprintf("Extension — reconfiguration energy and bus traffic at R=%d", rus))
	model := metrics.DefaultEnergyModel()
	model.BitstreamBytes = workload.BitstreamBytes()

	series := []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, false),
		sweep.LocalLFD(1, true),
		sweep.LocalLFD(4, true),
		lfdSeries(),
	}
	rs, err := opt.executor().Run(sweep.Spec{
		Workloads: []sweep.Workload{wl},
		RUs:       []int{rus},
		Latencies: []simtime.Time{opt.Latency},
		Policies:  series,
		// The energy model consumes the trace, not the ideal baseline.
		NoBaseline:  true,
		RecordTrace: true,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-30s %10s %14s %14s %10s\n",
		"policy", "loads", "energy (mJ)", "traffic (MB)", "saved %")
	for pi, s := range series {
		rep, err := metrics.Energy(rs.At(0, 0, 0, pi).Run, model)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-30s %10d %14.1f %14.2f %10.1f\n",
			s.Name, rep.Loads, rep.SpentMillijoules, float64(rep.BusBytes)/(1<<20), rep.SavingsPct())
	}
	fmt.Fprintln(w, "\nexpected: energy and bus traffic track (1 − reuse rate) — the paper's")
	fmt.Fprintln(w, "claim that maximizing reuse directly cuts reconfiguration energy.")
	return nil
}
