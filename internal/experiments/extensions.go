package experiments

import (
	"fmt"
	"io"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Sensitivity probes how the paper's conclusions depend on the one
// hardware parameter it fixes: the 4 ms reconfiguration latency. It
// sweeps uniform latencies from 1 to 16 ms and adds a heterogeneous run
// where each task's latency follows its bitstream size (the equal-sized-
// units assumption relaxed to "equal regions, differently full
// bitstreams").
func Sensitivity(opt Options, w io.Writer) error {
	opt = opt.normalized()
	pool, seq, err := opt.Workload()
	if err != nil {
		return err
	}
	const rus = 4
	section(w, fmt.Sprintf("Extension — latency sensitivity at R=%d (%d apps, seed %d)",
		rus, len(seq), opt.Seed))

	mkLocal := func() policy.Policy {
		p, err := policy.NewLocalLFD(1)
		if err != nil {
			panic(err)
		}
		return p
	}
	latencies := []simtime.Time{
		simtime.FromMs(1), simtime.FromMs(2), simtime.FromMs(4),
		simtime.FromMs(8), simtime.FromMs(16),
	}
	cols := make([]string, len(latencies))
	for i, l := range latencies {
		cols[i] = l.String()
	}
	tab := metrics.NewTable("remaining overhead (%) by uniform latency", "policy \\ latency", cols...)
	for _, s := range []struct {
		name string
		pol  func() policy.Policy
		skip bool
	}{
		{"LRU", policy.NewLRU, false},
		{"Local LFD (1) + Skip Events", mkLocal, true},
		{"LFD", policy.NewLFD, false},
	} {
		var vals []float64
		for _, lat := range latencies {
			cfg := manager.Config{RUs: rus, Latency: lat, Policy: s.pol(), SkipEvents: s.skip}
			if s.skip {
				lookup, _, err := mobility.ComputeAll(pool, rus, lat)
				if err != nil {
					return err
				}
				cfg.Mobility = lookup
			}
			res, err := manager.Run(cfg, dynlist.NewSequence(seq...))
			if err != nil {
				return err
			}
			ideal, err := manager.Run(manager.Config{RUs: rus, Latency: 0, Policy: policy.NewLRU()},
				dynlist.NewSequence(seq...))
			if err != nil {
				return err
			}
			sum, err := metrics.Summarize(s.name, rus, lat, res, ideal)
			if err != nil {
				return err
			}
			vals = append(vals, sum.RemainingOverheadPct())
		}
		if err := tab.AddFloatRow(s.name, vals...); err != nil {
			return err
		}
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w, "\nexpected: the remaining percentage is fairly stable across latencies —")
	fmt.Fprintln(w, "overheads scale with the latency, and so does the original-overhead baseline.")

	// Heterogeneous latencies derived from bitstream sizes.
	latFor, err := workload.LatencyFromBitstreams(workload.BitstreamBytes(), workload.DefaultConfigBandwidth)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nheterogeneous latencies (bitstream-size derived, mean 4 ms):")
	for _, s := range []struct {
		name string
		pol  policy.Policy
	}{
		{"LRU", policy.NewLRU()},
		{"Local LFD (1)", mkLocal()},
		{"LFD", policy.NewLFD()},
	} {
		res, err := manager.Run(manager.Config{
			RUs: rus, LatencyFor: latFor, Policy: s.pol,
		}, dynlist.NewSequence(seq...))
		if err != nil {
			return err
		}
		reuse := 0.0
		if res.Executed > 0 {
			reuse = 100 * float64(res.Reused) / float64(res.Executed)
		}
		fmt.Fprintf(w, "  %-16s reuse %6.2f%%  makespan %v\n", s.name, reuse, res.Makespan)
	}
	fmt.Fprintln(w, "  (reuse ordering matches the uniform-latency runs: the policies rank")
	fmt.Fprintln(w, "  identically when latencies vary per task)")
	return nil
}

// Prefetch evaluates the cross-graph prefetch extension: letting the idle
// reconfiguration circuitry preload the next enqueued graph. The paper's
// manager stops prefetching at graph boundaries; the extension removes
// the cold boundary load that dominates the remaining overhead at high
// contention.
func Prefetch(opt Options, w io.Writer) error {
	opt = opt.normalized()
	pool, seq, err := opt.Workload()
	if err != nil {
		return err
	}
	section(w, fmt.Sprintf("Extension — cross-graph prefetch (%d apps, seed %d, latency %v)",
		len(seq), opt.Seed, opt.Latency))
	fmt.Fprintf(w, "%-4s %-34s %10s %12s %12s %10s\n",
		"RUs", "configuration", "reuse %", "overhead", "remaining %", "preloads")
	for _, rus := range opt.RUs {
		ideal, err := manager.Run(manager.Config{RUs: rus, Latency: 0, Policy: policy.NewLRU()},
			dynlist.NewSequence(seq...))
		if err != nil {
			return err
		}
		lookup, _, err := mobility.ComputeAll(pool, rus, opt.Latency)
		if err != nil {
			return err
		}
		for _, s := range []struct {
			name         string
			window       int
			skip         bool
			prefetch     bool
			conservative bool
		}{
			{"Local LFD (1)", 1, false, false, false},
			{"Local LFD (1) + Skip Events", 1, true, false, false},
			{"Local LFD (1) + prefetch", 1, false, true, false},
			{"Local LFD (1) + Skip + prefetch", 1, true, true, false},
			// The conservative variant needs a window reaching past the
			// graph being preloaded to recognize reusable victims.
			{"Local LFD (4) + conserv. prefetch", 4, false, true, true},
		} {
			pol, err := policy.NewLocalLFD(s.window)
			if err != nil {
				return err
			}
			cfg := manager.Config{
				RUs: rus, Latency: opt.Latency, Policy: pol,
				SkipEvents: s.skip, CrossGraphPrefetch: s.prefetch,
				ConservativePrefetch: s.conservative,
			}
			if s.skip {
				cfg.Mobility = lookup
			}
			res, err := manager.Run(cfg, dynlist.NewSequence(seq...))
			if err != nil {
				return err
			}
			sum, err := metrics.Summarize(s.name, rus, opt.Latency, res, ideal)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-4d %-34s %10.2f %12v %12.2f %10d\n",
				rus, s.name, sum.ReuseRate(), sum.Overhead(), sum.RemainingOverheadPct(), res.Preloads)
		}
	}
	fmt.Fprintln(w, "\nexpected: greedy prefetch hides nearly every load — only the run's very")
	fmt.Fprintln(w, "first cold reconfiguration stays exposed — but it evicts configurations")
	fmt.Fprintln(w, "later graphs would have reused, so reuse (and the energy saving) drops.")
	fmt.Fprintln(w, "The conservative variant only preloads onto victims its window does not")
	fmt.Fprintln(w, "expect back: it keeps plain Local LFD's reuse while still removing most")
	fmt.Fprintln(w, "of the boundary overhead — from R=6 up it beats both skip events and")
	fmt.Fprintln(w, "greedy prefetch on the reuse/overhead trade-off.")
	return nil
}

// EnergyExperiment quantifies the paper's energy/bus-pressure claims
// (§VI.A): the reconfiguration energy each policy spends on the Fig. 9
// workload and what reuse saved, under the default bitstream model.
func EnergyExperiment(opt Options, w io.Writer) error {
	opt = opt.normalized()
	pool, seq, err := opt.Workload()
	if err != nil {
		return err
	}
	const rus = 4
	section(w, fmt.Sprintf("Extension — reconfiguration energy and bus traffic at R=%d", rus))
	model := metrics.DefaultEnergyModel()
	model.BitstreamBytes = workload.BitstreamBytes()
	lookup, _, err := mobility.ComputeAll(pool, rus, opt.Latency)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-30s %10s %14s %14s %10s\n",
		"policy", "loads", "energy (mJ)", "traffic (MB)", "saved %")
	for _, s := range []struct {
		name string
		pol  policy.Policy
		skip bool
	}{
		{"LRU", policy.NewLRU(), false},
		{"Local LFD (1)", mustLocalPolicy(1), false},
		{"Local LFD (1) + Skip Events", mustLocalPolicy(1), true},
		{"Local LFD (4) + Skip Events", mustLocalPolicy(4), true},
		{"LFD", policy.NewLFD(), false},
	} {
		cfg := manager.Config{
			RUs: rus, Latency: opt.Latency, Policy: s.pol,
			SkipEvents: s.skip, RecordTrace: true,
		}
		if s.skip {
			cfg.Mobility = lookup
		}
		res, err := manager.Run(cfg, dynlist.NewSequence(seq...))
		if err != nil {
			return err
		}
		rep, err := metrics.Energy(res, model)
		if err != nil {
			return err
		}
		name := s.name
		fmt.Fprintf(w, "%-30s %10d %14.1f %14.2f %10.1f\n",
			name, rep.Loads, rep.SpentMillijoules, float64(rep.BusBytes)/(1<<20), rep.SavingsPct())
	}
	fmt.Fprintln(w, "\nexpected: energy and bus traffic track (1 − reuse rate) — the paper's")
	fmt.Fprintln(w, "claim that maximizing reuse directly cuts reconfiguration energy.")
	return nil
}

func mustLocalPolicy(w int) policy.Policy {
	p, err := policy.NewLocalLFD(w)
	if err != nil {
		panic(err)
	}
	return p
}
