package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Sensitivity probes how the paper's conclusions depend on the one
// hardware parameter it fixes: the 4 ms reconfiguration latency. It
// sweeps uniform latencies from 1 to 16 ms and adds a heterogeneous run
// where each task's latency follows its bitstream size (the equal-sized-
// units assumption relaxed to "equal regions, differently full
// bitstreams"). The uniform sweep is a latency-axis Spec; mobility tables
// are computed once per latency and shared across its scenarios.
func Sensitivity(opt Options, w io.Writer) error {
	opt = opt.normalized()
	wl, err := opt.sweepWorkload()
	if err != nil {
		return err
	}
	const rus = 4
	section(w, fmt.Sprintf("Extension — latency sensitivity at R=%d (%d apps, seed %d)",
		rus, len(wl.Seq), opt.Seed))

	latencies := []simtime.Time{
		simtime.FromMs(1), simtime.FromMs(2), simtime.FromMs(4),
		simtime.FromMs(8), simtime.FromMs(16),
	}
	series := []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, true),
		lfdSeries(),
	}
	rs, err := opt.executor().Run(sweep.Spec{
		Workloads: []sweep.Workload{wl},
		RUs:       []int{rus},
		Latencies: latencies,
		Policies:  series,
	})
	if err != nil {
		return err
	}

	cols := make([]string, len(latencies))
	for i, l := range latencies {
		cols[i] = l.String()
	}
	tab := metrics.NewTable("remaining overhead (%) by uniform latency", "policy \\ latency", cols...)
	for pi, s := range series {
		var vals []float64
		for li := range latencies {
			vals = append(vals, rs.At(0, 0, li, pi).Summary.RemainingOverheadPct())
		}
		if err := tab.AddFloatRow(s.Name, vals...); err != nil {
			return err
		}
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w, "\nexpected: the remaining percentage is fairly stable across latencies —")
	fmt.Fprintln(w, "overheads scale with the latency, and so does the original-overhead baseline.")

	// Heterogeneous latencies derived from bitstream sizes.
	latFor, err := workload.LatencyFromBitstreams(workload.BitstreamBytes(), workload.DefaultConfigBandwidth)
	if err != nil {
		return err
	}
	hetSeries := []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, false),
		lfdSeries(),
	}
	het, err := opt.executor().Run(sweep.Spec{
		Workloads:  []sweep.Workload{wl},
		RUs:        []int{rus},
		Latencies:  []simtime.Time{0}, // overridden per task by LatencyFor
		Policies:   hetSeries,
		LatencyFor: latFor,
		NoBaseline: true,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nheterogeneous latencies (bitstream-size derived, mean 4 ms):")
	for pi, s := range hetSeries {
		res := het.At(0, 0, 0, pi).Run
		reuse := 0.0
		if res.Executed > 0 {
			reuse = 100 * float64(res.Reused) / float64(res.Executed)
		}
		fmt.Fprintf(w, "  %-16s reuse %6.2f%%  makespan %v\n", s.Name, reuse, res.Makespan)
	}
	fmt.Fprintln(w, "  (reuse ordering matches the uniform-latency runs: the policies rank")
	fmt.Fprintln(w, "  identically when latencies vary per task)")
	return nil
}

// Prefetch evaluates the cross-graph prefetch extension: letting the idle
// reconfiguration circuitry preload the next enqueued graph. The paper's
// manager stops prefetching at graph boundaries; the extension removes
// the cold boundary load that dominates the remaining overhead at high
// contention. The whole (RUs × variants) grid is one sweep Spec.
func Prefetch(opt Options, w io.Writer) error {
	opt = opt.normalized()
	wl, err := opt.sweepWorkload()
	if err != nil {
		return err
	}
	section(w, fmt.Sprintf("Extension — cross-graph prefetch (%d apps, seed %d, latency %v)",
		len(wl.Seq), opt.Seed, opt.Latency))

	variant := func(name string, window int, skip, prefetch, conservative bool) sweep.PolicySpec {
		s := sweep.LocalLFD(window, skip)
		s.Name = name
		s.CrossGraphPrefetch = prefetch
		s.ConservativePrefetch = conservative
		return s
	}
	series := []sweep.PolicySpec{
		variant("Local LFD (1)", 1, false, false, false),
		variant("Local LFD (1) + Skip Events", 1, true, false, false),
		variant("Local LFD (1) + prefetch", 1, false, true, false),
		variant("Local LFD (1) + Skip + prefetch", 1, true, true, false),
		// The conservative variant needs a window reaching past the
		// graph being preloaded to recognize reusable victims.
		variant("Local LFD (4) + conserv. prefetch", 4, false, true, true),
	}
	rs, err := opt.executor().Run(sweep.Spec{
		Workloads: []sweep.Workload{wl},
		RUs:       opt.RUs,
		Latencies: []simtime.Time{opt.Latency},
		Policies:  series,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-4s %-34s %10s %12s %12s %10s\n",
		"RUs", "configuration", "reuse %", "overhead", "remaining %", "preloads")
	for ri, rus := range opt.RUs {
		for pi, s := range series {
			r := rs.At(0, ri, 0, pi)
			fmt.Fprintf(w, "%-4d %-34s %10.2f %12v %12.2f %10d\n",
				rus, s.Name, r.Summary.ReuseRate(), r.Summary.Overhead(),
				r.Summary.RemainingOverheadPct(), r.Run.Preloads)
		}
	}
	fmt.Fprintln(w, "\nexpected: greedy prefetch hides nearly every load — only the run's very")
	fmt.Fprintln(w, "first cold reconfiguration stays exposed — but it evicts configurations")
	fmt.Fprintln(w, "later graphs would have reused, so reuse (and the energy saving) drops.")
	fmt.Fprintln(w, "The conservative variant only preloads onto victims its window does not")
	fmt.Fprintln(w, "expect back: it keeps plain Local LFD's reuse while still removing most")
	fmt.Fprintln(w, "of the boundary overhead — from R=6 up it beats both skip events and")
	fmt.Fprintln(w, "greedy prefetch on the reuse/overhead trade-off.")
	return nil
}

// EnergyExperiment quantifies the paper's energy/bus-pressure claims
// (§VI.A): the reconfiguration energy each policy spends on the Fig. 9
// workload and what reuse saved, under the default bitstream model.
func EnergyExperiment(opt Options, w io.Writer) error {
	opt = opt.normalized()
	wl, err := opt.sweepWorkload()
	if err != nil {
		return err
	}
	const rus = 4
	section(w, fmt.Sprintf("Extension — reconfiguration energy and bus traffic at R=%d", rus))
	model := metrics.DefaultEnergyModel()
	model.BitstreamBytes = workload.BitstreamBytes()

	series := []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, false),
		sweep.LocalLFD(1, true),
		sweep.LocalLFD(4, true),
		lfdSeries(),
	}
	rs, err := opt.executor().Run(sweep.Spec{
		Workloads: []sweep.Workload{wl},
		RUs:       []int{rus},
		Latencies: []simtime.Time{opt.Latency},
		Policies:  series,
		// The energy model consumes the trace, not the ideal baseline.
		NoBaseline:  true,
		RecordTrace: true,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-30s %10s %14s %14s %10s\n",
		"policy", "loads", "energy (mJ)", "traffic (MB)", "saved %")
	for pi, s := range series {
		rep, err := metrics.Energy(rs.At(0, 0, 0, pi).Run, model)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-30s %10d %14.1f %14.2f %10.1f\n",
			s.Name, rep.Loads, rep.SpentMillijoules, float64(rep.BusBytes)/(1<<20), rep.SavingsPct())
	}
	fmt.Fprintln(w, "\nexpected: energy and bus traffic track (1 − reuse rate) — the paper's")
	fmt.Fprintln(w, "claim that maximizing reuse directly cuts reconfiguration energy.")
	return nil
}
