package experiments

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// TestParallelReportsByteIdentical is the report-level determinism pin:
// every sweep-backed experiment must emit byte-identical text whether its
// scenarios run one at a time or eight at a time. Run under -race (CI
// does) this doubles as the concurrency check for the whole
// experiments → sweep → manager stack.
//
// The experiments with testing.Benchmark timing lines (table1, table2,
// ablation's hybrid-vs-pure line) are excluded: wall-clock measurements
// are not byte-stable even sequentially.
func TestParallelReportsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid sweep in -short mode")
	}
	base := Options{Seed: 2011, Apps: 60, RUs: []int{4, 5, 6}}
	runners := map[string]Runner{
		"fig9a":       Fig9A,
		"fig9b":       Fig9B,
		"fig9c":       Fig9C,
		"energy":      EnergyExperiment,
		"sensitivity": Sensitivity,
		"prefetch":    Prefetch,
		"variance":    Variance,
	}
	for name, run := range runners {
		t.Run(name, func(t *testing.T) {
			render := func(parallel int) (string, error) {
				opt := base
				opt.Parallel = parallel
				var buf bytes.Buffer
				err := run(opt, &buf)
				return buf.String(), err
			}
			seq, err := render(1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := render(8)
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Errorf("parallel report diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
			if len(seq) == 0 {
				t.Error("empty report")
			}
		})
	}
}

// TestParallelReportsStableAcrossRepeats re-renders one grid experiment
// several times at high parallelism: scheduling noise must never reach
// the report.
func TestParallelReportsStableAcrossRepeats(t *testing.T) {
	opt := Options{Seed: 2011, Apps: 40, RUs: []int{4, 5}, Parallel: 8}
	render := func(w io.Writer) error { return Fig9B(opt, w) }
	var first bytes.Buffer
	if err := render(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.String() != first.String() {
			t.Fatalf("repeat %d diverged", i)
		}
	}
	if !bytes.Contains(first.Bytes(), []byte("Skip Events")) {
		t.Error(fmt.Errorf("report missing the skip-events series:\n%s", first.String()))
	}
}
