package experiments

import (
	"fmt"
	"io"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/mobility"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// Fig7 reproduces the mobility worked example: the design-time phase for
// Fig. 3's Task Graph 2 on four units. The paper walks through the
// reference schedule (30 ms) and the trial delays of tasks 5, 6 and 7,
// arriving at mobilities 0, 0 and 1.
func Fig7(opt Options, w io.Writer) error {
	opt = opt.normalized()
	section(w, "Fig. 7 — mobility calculation for Fig. 3's Task Graph 2 (R=4, latency 4 ms)")
	g := workload.Fig3TG2()
	lat := workload.PaperLatency()

	tab, err := mobility.Compute(g, 4, lat)
	if err != nil {
		return err
	}
	check(w, "reference schedule makespan", tab.RefMakespan, simtime.FromMs(30))

	// The paper's trial schedules, sub-figure by sub-figure.
	trials := []struct {
		label    string
		local    int
		delay    int
		makespan simtime.Time
	}{
		{"delay task 5 by 1 event (Fig. 7b)", 1, 1, simtime.FromMs(36)},
		{"delay task 6 by 1 event (Fig. 7c)", 2, 1, simtime.FromMs(32)},
		{"delay task 7 by 1 event (Fig. 7d, 1st)", 3, 1, simtime.FromMs(30)},
		{"delay task 7 by 2 events (Fig. 7d, 2nd)", 3, 2, simtime.FromMs(32)},
	}
	for _, tr := range trials {
		res, err := manager.Run(manager.Config{
			RUs: 4, Latency: lat, Policy: policy.NewLRU(),
			DelayPlan: map[int]int{tr.local: tr.delay},
		}, dynlist.NewSequence(g))
		if err != nil {
			return err
		}
		check(w, tr.label, res.Makespan, tr.makespan)
	}

	fmt.Fprintln(w, "\nresulting mobilities:")
	wantMob := map[int]int{0: 0, 1: 0, 2: 0, 3: 1} // locals of tasks 4,5,6,7
	for local := 0; local < g.NumTasks(); local++ {
		check(w, fmt.Sprintf("mobility(task %d)", g.Task(local).ID),
			tab.Values[local], wantMob[local])
	}
	fmt.Fprintf(w, "  schedules simulated during the design-time phase: %d\n", tab.Schedules)
	return nil
}
