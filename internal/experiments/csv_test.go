package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestFig9CSVMatchesTable: the csv: block spooled during the streaming
// run carries exactly the table's rows — header, one line per unit
// count, the Avg. line — in table order, even though the rows were
// written to the spool long before the block is emitted.
func TestFig9CSVMatchesTable(t *testing.T) {
	o := smallOptions()
	o.CSV = true
	var out bytes.Buffer
	if err := Fig9A(o, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	_, csvPart, ok := strings.Cut(s, "\ncsv:\n")
	if !ok {
		t.Fatalf("no csv: block in output:\n%s", s)
	}
	csvLines := strings.Split(csvPart, "\n\n")[0]
	lines := strings.Split(csvLines, "\n")
	// Header + one row per unit count + Avg.
	if want := 1 + len(o.RUs) + 1; len(lines) != want {
		t.Fatalf("csv block has %d lines, want %d:\n%s", len(lines), want, csvLines)
	}
	if lines[0] != "RUs \\ policy,LRU,Local LFD (1),Local LFD (2),Local LFD (4),LFD" {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[len(lines)-1], "Avg.,") {
		t.Errorf("last csv line = %q, want the Avg. row", lines[len(lines)-1])
	}
	// Every csv value appears in the rendered table: the spool is a
	// re-encoding of the same rows, not a second computation.
	tablePart := s[:strings.Index(s, "\ncsv:\n")]
	for i, line := range lines[1:] {
		for _, cell := range strings.Split(line, ",") {
			if !strings.Contains(tablePart, cell) {
				t.Errorf("csv row %d cell %q missing from the table", i, cell)
			}
		}
	}
}

// TestFig9NoCSVBlockByDefault: without -csv nothing is spooled and no
// csv: block appears.
func TestFig9NoCSVBlockByDefault(t *testing.T) {
	var out bytes.Buffer
	if err := Fig9A(smallOptions(), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "csv:") {
		t.Error("csv: block present without CSV option")
	}
}
