package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/resultstore"
)

// TestWarmStoreReportsByteIdentical is the experiments-level reuse pin:
// re-running a grid experiment against a populated store must re-simulate
// nothing and emit a byte-identical report. The CI determinism gate
// enforces the same property end to end through the rtrrepro binary.
func TestWarmStoreReportsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep in -short mode")
	}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 2011, Apps: 40, RUs: []int{4, 5}, Store: store}

	render := func() string {
		var buf bytes.Buffer
		if err := Fig9B(opt, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cold := render()
	_, _, puts := store.Stats()
	if puts == 0 {
		t.Fatal("cold run wrote nothing to the store")
	}
	hitsBefore, missesBefore, _ := store.Stats()
	warm := render()
	hits, misses, putsAfter := store.Stats()
	if warm != cold {
		t.Errorf("warm report diverged from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if misses != missesBefore {
		t.Errorf("warm run missed the store %d times — scenarios were re-simulated", misses-missesBefore)
	}
	if hits-hitsBefore != puts {
		t.Errorf("warm run hit %d of %d stored scenarios", hits-hitsBefore, puts)
	}
	if putsAfter != puts {
		t.Errorf("warm run wrote %d new entries", putsAfter-puts)
	}

	// A different seed is a different workload: nothing may be served
	// from the entries above.
	changed := opt
	changed.Seed = 2024
	var buf bytes.Buffer
	if err := Fig9B(changed, &buf); err != nil {
		t.Fatal(err)
	}
	hits2, misses2, _ := store.Stats()
	if hits2 != hits {
		t.Errorf("changed seed served %d stale entries", hits2-hits)
	}
	if misses2 == misses {
		t.Error("changed seed recorded no store misses")
	}
	if !strings.Contains(buf.String(), "seed 2024") {
		t.Error("changed-seed report does not mention its seed")
	}
}

// TestStoreSharedAcrossExperiments: experiments over the same grid share
// entries — fig9a and fig9b both plot LRU and LFD on the same workload,
// so the second experiment starts warm for those series.
func TestStoreSharedAcrossExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep in -short mode")
	}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 2011, Apps: 40, RUs: []int{4}, Store: store}
	var buf bytes.Buffer
	if err := Fig9A(opt, &buf); err != nil {
		t.Fatal(err)
	}
	hitsBefore, _, _ := store.Stats()
	if err := Fig9B(opt, &buf); err != nil {
		t.Fatal(err)
	}
	hits, _, _ := store.Stats()
	// Fig9A ran LRU, LocalLFD(1) and LFD at R=4; Fig9B reuses all three.
	if hits-hitsBefore < 3 {
		t.Errorf("fig9b hit only %d shared entries, want ≥3", hits-hitsBefore)
	}
}
