package experiments

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/resultstore"
	"repro/internal/sweep"
)

// TestCoordinatedPopulateMergeByteIdentical is the in-process version of
// the CI coord-self-healing gate: a 6-shard grid drained by a 3-worker
// coordinator pool — with one shard pre-claimed by a simulated dead
// worker that never heartbeats — must still produce a merge render
// byte-identical to a plain single-process run, with the dead worker's
// shard recovered at attempt 2.
func TestCoordinatedPopulateMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweeps in -short mode")
	}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Seed: 2011, Apps: 40, RUs: []int{4, 5}}
	exps := make([]Experiment, 0, 2)
	for _, id := range []string{"fig9b", "variance"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		exps = append(exps, e)
	}
	render := func(opt Options) string {
		var buf bytes.Buffer
		for _, e := range exps {
			if err := e.Run(opt, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
		}
		return buf.String()
	}
	plain := render(base)

	coordDir := t.TempDir()
	const shards = 6
	// The dead worker claims a shard and is never heard from again — the
	// pool below must wait out its lease and re-run the slice.
	dead, err := coord.Open(coord.Config{
		Dir: coordDir, Shards: shards, Owner: "dead-worker",
		LeaseTTL: 750 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	stuck, err := dead.Claim()
	if err != nil || stuck == nil {
		t.Fatal(stuck, err)
	}

	pool, err := coord.Open(coord.Config{
		Dir: coordDir, Owner: "pool",
		LeaseTTL: 750 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	popOpt := base
	popOpt.Store = store
	stats, err := pool.RunWorkers(3, func(r coord.ShardRun) error {
		_, err := Populate(popOpt, exps, sweep.Shard{Index: r.Shard, Count: r.Count})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != shards {
		t.Fatalf("pool completed %d shards, want all %d", stats.Completed, shards)
	}
	if stats.Recovered != 1 {
		t.Fatalf("pool recovered %d shards, want exactly the dead worker's 1", stats.Recovered)
	}
	st, err := pool.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.AllDone() {
		t.Fatalf("pool not drained: %+v", st.Shards)
	}
	if st.Shards[stuck.Shard].Attempts != 2 {
		t.Fatalf("dead worker's shard finished at attempt %d, want 2", st.Shards[stuck.Shard].Attempts)
	}

	mergeOpt := base
	mergeOpt.Store = store
	mergeOpt.RequireStored = true
	_, _, putsBefore := store.Stats()
	merged := render(mergeOpt)
	if merged != plain {
		t.Errorf("coordinated merge diverged from the single-process run:\n--- plain ---\n%s\n--- merged ---\n%s", plain, merged)
	}
	if _, _, puts := store.Stats(); puts != putsBefore {
		t.Errorf("merge render wrote %d new entries — a shard was incomplete", puts-putsBefore)
	}
}
