package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/simtime"
	"repro/internal/sweep"
)

const (
	varianceRUs   = 4
	varianceSeeds = 10
)

// varianceSpec assembles the seed-robustness grid: the Fig. 9b policy
// series at R=4 across ten independently drawn workloads, one sweep Spec
// (the seeds form the workload axis, so they run concurrently). The
// reuse rates come straight from the raw counters; no zero-latency
// baselines needed.
func varianceSpec(opt Options) (sweep.Spec, error) {
	series := []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, false),
		sweep.LocalLFD(1, true),
		lfdSeries(),
	}
	workloads := make([]sweep.Workload, 0, varianceSeeds)
	for s := int64(0); s < varianceSeeds; s++ {
		seedOpt := opt
		seedOpt.Seed = opt.Seed + s
		wl, err := seedOpt.sweepWorkload()
		if err != nil {
			return sweep.Spec{}, err
		}
		wl.Label = fmt.Sprintf("seed %d", seedOpt.Seed)
		workloads = append(workloads, wl)
	}
	return sweep.Spec{
		Workloads:  workloads,
		RUs:        []int{varianceRUs},
		Latencies:  []simtime.Time{opt.Latency},
		Policies:   series,
		NoBaseline: true,
	}, nil
}

// VarianceGrids declares the seed-robustness grid for shard populate runs.
func VarianceGrids(opt Options) ([]sweep.Spec, error) {
	return oneGrid(varianceSpec(opt.normalized()))
}

// Variance re-runs the headline comparison (Fig. 9b at the paper's
// high-contention point, R=4) across ten independent workload seeds and
// reports mean ± standard deviation per policy. The paper evaluates a
// single 500-application sequence; this experiment shows its conclusions
// are not an artefact of one draw.
//
// The report is an aggregate, so nothing prints until the sweep ends —
// but it still collects through the row renderer: each seed's policy
// block folds into O(policies) running accumulators (count, sum, sum of
// squares, min, max, and the per-seed headline comparison) the moment it
// lands, retaining no rows at all. A watch-mode merge therefore consumes
// the seeds as remote shards store them.
func Variance(opt Options, w io.Writer) error {
	opt = opt.normalized()
	section(w, fmt.Sprintf("Extension — seed robustness of Fig. 9b at R=%d (%d apps × %d seeds)",
		varianceRUs, opt.Apps, varianceSeeds))

	spec, err := varianceSpec(opt)
	if err != nil {
		return err
	}
	series := spec.Policies
	idx := func(name string) int {
		for i, s := range series {
			if s.Name == name {
				return i
			}
		}
		return -1
	}
	skipIdx, lfdIdx := idx("Local LFD (1) + Skip Events"), idx("LFD")
	if skipIdx < 0 || lfdIdx < 0 {
		return fmt.Errorf("variance: headline series missing from the policy axis")
	}

	type acc struct {
		n          int
		sum, sumsq float64
		min, max   float64
	}
	accs := make([]acc, len(series))
	wins := 0
	rr := &sweep.RowRenderer{
		Sizes: []int{len(series)},
		Emit: func(i int, rows []sweep.SummaryRow) error {
			for pi, row := range rows {
				v := row.Counters.ReuseRate()
				a := &accs[pi]
				if a.n == 0 || v < a.min {
					a.min = v
				}
				if a.n == 0 || v > a.max {
					a.max = v
				}
				a.n++
				a.sum += v
				a.sumsq += v * v
			}
			// The headline claim must hold on every seed, not just on
			// average.
			if rows[skipIdx].Counters.ReuseRate() > rows[lfdIdx].Counters.ReuseRate() {
				wins++
			}
			return nil
		},
	}
	if err := opt.executor().Collect(spec, rr); err != nil {
		return err
	}
	if err := rr.Close(); err != nil {
		return err
	}

	fmt.Fprintf(w, "%-30s %12s %10s %10s %10s\n", "policy", "mean reuse %", "stddev", "min", "max")
	for pi, sr := range series {
		a := accs[pi]
		mean := a.sum / float64(a.n)
		variance := a.sumsq/float64(a.n) - mean*mean
		if variance < 0 {
			variance = 0 // float fuzz on near-constant series
		}
		fmt.Fprintf(w, "%-30s %12.2f %10.2f %10.2f %10.2f\n",
			sr.Name, mean, math.Sqrt(variance), a.min, a.max)
	}
	fmt.Fprintf(w, "\nLocal LFD (1) + Skip Events beat clairvoyant LFD on %d of %d seeds\n", wins, varianceSeeds)
	return nil
}
