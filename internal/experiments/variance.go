package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

const (
	varianceRUs   = 4
	varianceSeeds = 10
)

// varianceSpec assembles the seed-robustness grid: the Fig. 9b policy
// series at R=4 across ten independently drawn workloads, one sweep Spec
// (the seeds form the workload axis, so they run concurrently). The
// reuse rates come straight from the raw counters; no zero-latency
// baselines needed.
func varianceSpec(opt Options) (sweep.Spec, error) {
	series := []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, false),
		sweep.LocalLFD(1, true),
		lfdSeries(),
	}
	workloads := make([]sweep.Workload, 0, varianceSeeds)
	for s := int64(0); s < varianceSeeds; s++ {
		seedOpt := opt
		seedOpt.Seed = opt.Seed + s
		wl, err := seedOpt.sweepWorkload()
		if err != nil {
			return sweep.Spec{}, err
		}
		wl.Label = fmt.Sprintf("seed %d", seedOpt.Seed)
		workloads = append(workloads, wl)
	}
	return sweep.Spec{
		Workloads:  workloads,
		RUs:        []int{varianceRUs},
		Latencies:  []simtime.Time{opt.Latency},
		Policies:   series,
		NoBaseline: true,
	}, nil
}

// VarianceGrids declares the seed-robustness grid for shard populate runs.
func VarianceGrids(opt Options) ([]sweep.Spec, error) {
	return oneGrid(varianceSpec(opt.normalized()))
}

// Variance re-runs the headline comparison (Fig. 9b at the paper's
// high-contention point, R=4) across ten independent workload seeds and
// reports mean ± standard deviation per policy. The paper evaluates a
// single 500-application sequence; this experiment shows its conclusions
// are not an artefact of one draw.
func Variance(opt Options, w io.Writer) error {
	opt = opt.normalized()
	section(w, fmt.Sprintf("Extension — seed robustness of Fig. 9b at R=%d (%d apps × %d seeds)",
		varianceRUs, opt.Apps, varianceSeeds))

	spec, err := varianceSpec(opt)
	if err != nil {
		return err
	}
	ss, err := opt.executor().RunSummaries(spec)
	if err != nil {
		return err
	}
	series := spec.Policies

	rates := make(map[string][]float64, len(series))
	for wi := range spec.Workloads {
		for pi, sr := range series {
			rates[sr.Name] = append(rates[sr.Name], ss.At(wi, 0, 0, pi).Counters.ReuseRate())
		}
	}

	fmt.Fprintf(w, "%-30s %12s %10s %10s %10s\n", "policy", "mean reuse %", "stddev", "min", "max")
	for _, sr := range series {
		vs := rates[sr.Name]
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(w, "%-30s %12.2f %10.2f %10.2f %10.2f\n",
			sr.Name, metrics.Mean(vs), metrics.Stddev(vs), lo, hi)
	}

	// The headline claim must hold on every seed, not just on average.
	wins := 0
	for i := range rates["LFD"] {
		if rates["Local LFD (1) + Skip Events"][i] > rates["LFD"][i] {
			wins++
		}
	}
	fmt.Fprintf(w, "\nLocal LFD (1) + Skip Events beat clairvoyant LFD on %d of %d seeds\n", wins, varianceSeeds)
	return nil
}
