package experiments

import (
	"fmt"
	"io"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/policy"
)

// Variance re-runs the headline comparison (Fig. 9b at the paper's
// high-contention point, R=4) across ten independent workload seeds and
// reports mean ± standard deviation per policy. The paper evaluates a
// single 500-application sequence; this experiment shows its conclusions
// are not an artefact of one draw.
func Variance(opt Options, w io.Writer) error {
	opt = opt.normalized()
	const rus = 4
	const seeds = 10
	section(w, fmt.Sprintf("Extension — seed robustness of Fig. 9b at R=%d (%d apps × %d seeds)",
		rus, opt.Apps, seeds))

	type series struct {
		name string
		mk   func() (policy.Policy, error)
		skip bool
	}
	all := []series{
		{"LRU", func() (policy.Policy, error) { return policy.NewLRU(), nil }, false},
		{"Local LFD (1)", func() (policy.Policy, error) { return policy.NewLocalLFD(1) }, false},
		{"Local LFD (1) + Skip Events", func() (policy.Policy, error) { return policy.NewLocalLFD(1) }, true},
		{"LFD", func() (policy.Policy, error) { return policy.NewLFD(), nil }, false},
	}
	rates := make(map[string][]float64, len(all))

	for s := int64(0); s < seeds; s++ {
		seedOpt := opt
		seedOpt.Seed = opt.Seed + s
		pool, seq, err := seedOpt.Workload()
		if err != nil {
			return err
		}
		lookup, _, err := mobility.ComputeAll(pool, rus, opt.Latency)
		if err != nil {
			return err
		}
		for _, sr := range all {
			pol, err := sr.mk()
			if err != nil {
				return err
			}
			cfg := manager.Config{RUs: rus, Latency: opt.Latency, Policy: pol, SkipEvents: sr.skip}
			if sr.skip {
				cfg.Mobility = lookup
			}
			res, err := manager.Run(cfg, dynlist.NewSequence(seq...))
			if err != nil {
				return fmt.Errorf("%s seed %d: %w", sr.name, seedOpt.Seed, err)
			}
			rate := 0.0
			if res.Executed > 0 {
				rate = 100 * float64(res.Reused) / float64(res.Executed)
			}
			rates[sr.name] = append(rates[sr.name], rate)
		}
	}

	fmt.Fprintf(w, "%-30s %12s %10s %10s %10s\n", "policy", "mean reuse %", "stddev", "min", "max")
	for _, sr := range all {
		vs := rates[sr.name]
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(w, "%-30s %12.2f %10.2f %10.2f %10.2f\n",
			sr.name, metrics.Mean(vs), metrics.Stddev(vs), lo, hi)
	}

	// The headline claim must hold on every seed, not just on average.
	wins := 0
	for i := range rates["LFD"] {
		if rates["Local LFD (1) + Skip Events"][i] > rates["LFD"][i] {
			wins++
		}
	}
	fmt.Fprintf(w, "\nLocal LFD (1) + Skip Events beat clairvoyant LFD on %d of %d seeds\n", wins, seeds)
	return nil
}
