package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

// Variance re-runs the headline comparison (Fig. 9b at the paper's
// high-contention point, R=4) across ten independent workload seeds and
// reports mean ± standard deviation per policy. The paper evaluates a
// single 500-application sequence; this experiment shows its conclusions
// are not an artefact of one draw. The seeds form the workload axis of
// one sweep Spec, so they run concurrently.
func Variance(opt Options, w io.Writer) error {
	opt = opt.normalized()
	const rus = 4
	const seeds = 10
	section(w, fmt.Sprintf("Extension — seed robustness of Fig. 9b at R=%d (%d apps × %d seeds)",
		rus, opt.Apps, seeds))

	series := []sweep.PolicySpec{
		lruSeries(),
		sweep.LocalLFD(1, false),
		sweep.LocalLFD(1, true),
		lfdSeries(),
	}
	workloads := make([]sweep.Workload, 0, seeds)
	for s := int64(0); s < seeds; s++ {
		seedOpt := opt
		seedOpt.Seed = opt.Seed + s
		wl, err := seedOpt.sweepWorkload()
		if err != nil {
			return err
		}
		wl.Label = fmt.Sprintf("seed %d", seedOpt.Seed)
		workloads = append(workloads, wl)
	}
	rs, err := opt.executor().Run(sweep.Spec{
		Workloads: workloads,
		RUs:       []int{rus},
		Latencies: []simtime.Time{opt.Latency},
		Policies:  series,
		// The reuse rates come straight from the raw counters; no
		// zero-latency baselines needed.
		NoBaseline: true,
	})
	if err != nil {
		return err
	}

	rates := make(map[string][]float64, len(series))
	for wi := range workloads {
		for pi, sr := range series {
			res := rs.At(wi, 0, 0, pi).Run
			rate := 0.0
			if res.Executed > 0 {
				rate = 100 * float64(res.Reused) / float64(res.Executed)
			}
			rates[sr.Name] = append(rates[sr.Name], rate)
		}
	}

	fmt.Fprintf(w, "%-30s %12s %10s %10s %10s\n", "policy", "mean reuse %", "stddev", "min", "max")
	for _, sr := range series {
		vs := rates[sr.Name]
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(w, "%-30s %12.2f %10.2f %10.2f %10.2f\n",
			sr.Name, metrics.Mean(vs), metrics.Stddev(vs), lo, hi)
	}

	// The headline claim must hold on every seed, not just on average.
	wins := 0
	for i := range rates["LFD"] {
		if rates["Local LFD (1) + Skip Events"][i] > rates["LFD"][i] {
			wins++
		}
	}
	fmt.Fprintf(w, "\nLocal LFD (1) + Skip Events beat clairvoyant LFD on %d of %d seeds\n", wins, seeds)
	return nil
}
