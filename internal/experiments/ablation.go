package experiments

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

// ablationWindows is the Dynamic List window sweep, going past the
// paper's stop at 4.
var ablationWindows = []int{1, 2, 3, 4, 6, 8}

// ablationRUs is the paper's most contended point, where replacement
// decisions matter most.
const ablationRUs = 4

// ablationSpec assembles the single sweep Spec behind ablations 1–3:
// both window variants across every window, then the classic baselines,
// all over one shared ideal baseline. The window-major policy order is
// what the streaming renderer relies on: each variant's windows are
// contiguous, so a table row completes as one block of spec order.
func ablationSpec(opt Options) (spec sweep.Spec, baselines []sweep.PolicySpec, err error) {
	wl, err := opt.sweepWorkload()
	if err != nil {
		return sweep.Spec{}, nil, err
	}
	var series []sweep.PolicySpec
	for _, skip := range []bool{false, true} {
		for _, ww := range ablationWindows {
			series = append(series, sweep.LocalLFD(ww, skip))
		}
	}
	baselines = []sweep.PolicySpec{
		lruSeries(),
		sweep.Fixed("FIFO", policy.NewFIFO()),
		sweep.Fixed("MRU", policy.NewMRU()),
		{
			// Hand-built spec: the Key must carry the seed (the display
			// name "Random" would alias differently-seeded runs in the
			// result store).
			Name: "Random",
			Key:  fmt.Sprintf("random:%d", opt.Seed),
			New:  func() (policy.Policy, error) { return policy.NewRandom(opt.Seed), nil },
		},
		lfdSeries(),
	}
	series = append(series, baselines...)
	spec = sweep.Spec{
		Workloads: []sweep.Workload{wl},
		RUs:       []int{ablationRUs},
		Latencies: []simtime.Time{opt.Latency},
		Policies:  series,
	}
	return spec, baselines, nil
}

// AblationGrids declares the ablation grid for shard populate runs (the
// timing-based ablation 4 has nothing to persist).
func AblationGrids(opt Options) ([]sweep.Spec, error) {
	spec, _, err := ablationSpec(opt.normalized())
	return oneGrid(spec, err)
}

// Ablation probes the design choices behind the paper's technique beyond
// what its own figures cover:
//
//  1. Dynamic List window sweep 1..8 — how much future knowledge Local
//     LFD actually needs (the paper stops at 4).
//  2. Skip-events contribution per window — isolating the feature's
//     effect at fixed lookahead.
//  3. Extra baselines (FIFO, MRU, Random) — placing the paper's LRU
//     baseline among other classic policies.
//
// All runs use the Fig. 9 workload at R=4 as one streaming sweep Spec,
// rendered row by row: the window axis is flattened into the policy axis
// with each variant's windows contiguous, so every table row of
// ablations 1+2 is a contiguous block of spec order and prints the
// moment its last window scenario lands; the baseline scenarios that
// follow stream as one line each. Only the overhead table's cells are
// carried across the sweep (O(variants × windows) floats — the second
// table of one pass, never result rows).
func Ablation(opt Options, w io.Writer) error {
	opt = opt.normalized()
	spec, baselines, err := ablationSpec(opt)
	if err != nil {
		return err
	}
	windows := ablationWindows
	variantNames := []string{"Local LFD", "Local LFD + Skip Events"}

	section(w, fmt.Sprintf("Ablation 1+2 — Dynamic List window sweep at R=%d (%d apps, seed %d)",
		ablationRUs, len(spec.Workloads[0].Seq), opt.Seed))
	cols := make([]string, len(windows))
	for i, ww := range windows {
		cols[i] = strconv.Itoa(ww)
	}
	reuseTab := metrics.NewStreamTable(w, metrics.StreamTableConfig{
		Title:     "reuse rate (%) by window",
		XLabel:    "variant \\ window",
		RowLabels: variantNames,
		XValues:   cols,
	})

	over := make([][]float64, len(variantNames))
	baselinesStarted := false
	rr := &sweep.RowRenderer{
		// Two window-sweep rows, then one line per baseline policy.
		Sizes: []int{len(windows), len(windows), 1},
		Emit: func(i int, rows []sweep.SummaryRow) error {
			if i < len(variantNames) {
				reuse := make([]float64, len(rows))
				for wi, row := range rows {
					reuse[wi] = row.Summary.ReuseRate()
					over[i] = append(over[i], row.Summary.RemainingOverheadPct())
				}
				return reuseTab.FloatRow(variantNames[i], reuse...)
			}
			if !baselinesStarted {
				// The reuse table is complete: flush the overhead table
				// accumulated alongside it, then open ablation 3.
				baselinesStarted = true
				fmt.Fprintln(w)
				overTab := metrics.NewStreamTable(w, metrics.StreamTableConfig{
					Title:     "remaining overhead (%) by window",
					XLabel:    "variant \\ window",
					RowLabels: variantNames,
					XValues:   cols,
				})
				for vi, name := range variantNames {
					if err := overTab.FloatRow(name, over[vi]...); err != nil {
						return err
					}
				}
				section(w, "Ablation 3 — classic cache policies as additional baselines (R=4)")
				fmt.Fprintf(w, "%-12s %12s %16s\n", "policy", "reuse (%)", "remaining (%)")
			}
			s := rows[0].Summary
			fmt.Fprintf(w, "%-12s %12.2f %16.2f\n", rows[0].Scenario.Policy.Name, s.ReuseRate(), s.RemainingOverheadPct())
			return nil
		},
	}
	if err := opt.executor().Collect(spec, rr); err != nil {
		return err
	}
	if err := rr.Close(); err != nil {
		return err
	}
	if want := len(variantNames) + len(baselines); rr.Rows() != want {
		return fmt.Errorf("ablation rendered %d rows, grid declares %d", rr.Rows(), want)
	}

	section(w, "Ablation 4 — hybrid vs purely run-time technique (abstract's 10× claim)")
	hybrid, pure, err := MeasureHybridVsPureRuntime(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "run-time cost per application (Hough, worst case): hybrid %.0f ns, purely run-time %.0f ns — %.1f× reduction\n",
		hybrid, pure, pure/hybrid)
	fmt.Fprintln(w, "(the paper reports ~10× on its PowerPC platform)")
	return nil
}
