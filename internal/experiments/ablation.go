package experiments

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

// ablationWindows is the Dynamic List window sweep, going past the
// paper's stop at 4.
var ablationWindows = []int{1, 2, 3, 4, 6, 8}

// ablationRUs is the paper's most contended point, where replacement
// decisions matter most.
const ablationRUs = 4

// ablationSpec assembles the single sweep Spec behind ablations 1–3:
// both window variants across every window, then the classic baselines,
// all over one shared ideal baseline. baseOff is the policy-axis offset
// of the first baseline series.
func ablationSpec(opt Options) (spec sweep.Spec, baselines []sweep.PolicySpec, baseOff int, err error) {
	wl, err := opt.sweepWorkload()
	if err != nil {
		return sweep.Spec{}, nil, 0, err
	}
	var series []sweep.PolicySpec
	for _, skip := range []bool{false, true} {
		for _, ww := range ablationWindows {
			series = append(series, sweep.LocalLFD(ww, skip))
		}
	}
	baselines = []sweep.PolicySpec{
		lruSeries(),
		sweep.Fixed("FIFO", policy.NewFIFO()),
		sweep.Fixed("MRU", policy.NewMRU()),
		{
			// Hand-built spec: the Key must carry the seed (the display
			// name "Random" would alias differently-seeded runs in the
			// result store).
			Name: "Random",
			Key:  fmt.Sprintf("random:%d", opt.Seed),
			New:  func() (policy.Policy, error) { return policy.NewRandom(opt.Seed), nil },
		},
		lfdSeries(),
	}
	baseOff = len(series)
	series = append(series, baselines...)
	spec = sweep.Spec{
		Workloads: []sweep.Workload{wl},
		RUs:       []int{ablationRUs},
		Latencies: []simtime.Time{opt.Latency},
		Policies:  series,
	}
	return spec, baselines, baseOff, nil
}

// AblationGrids declares the ablation grid for shard populate runs (the
// timing-based ablation 4 has nothing to persist).
func AblationGrids(opt Options) ([]sweep.Spec, error) {
	spec, _, _, err := ablationSpec(opt.normalized())
	return oneGrid(spec, err)
}

// Ablation probes the design choices behind the paper's technique beyond
// what its own figures cover:
//
//  1. Dynamic List window sweep 1..8 — how much future knowledge Local
//     LFD actually needs (the paper stops at 4).
//  2. Skip-events contribution per window — isolating the feature's
//     effect at fixed lookahead.
//  3. Extra baselines (FIFO, MRU, Random) — placing the paper's LRU
//     baseline among other classic policies.
//
// All runs use the Fig. 9 workload at R=4 as one streaming sweep Spec.
func Ablation(opt Options, w io.Writer) error {
	opt = opt.normalized()
	spec, baselines, baseOff, err := ablationSpec(opt)
	if err != nil {
		return err
	}
	windows := ablationWindows

	ss, err := opt.executor().RunSummaries(spec)
	if err != nil {
		return err
	}

	section(w, fmt.Sprintf("Ablation 1+2 — Dynamic List window sweep at R=%d (%d apps, seed %d)",
		ablationRUs, len(spec.Workloads[0].Seq), opt.Seed))
	cols := make([]string, len(windows))
	for i, ww := range windows {
		cols[i] = strconv.Itoa(ww)
	}
	reuseTab := metrics.NewTable("reuse rate (%) by window", "variant \\ window", cols...)
	overTab := metrics.NewTable("remaining overhead (%) by window", "variant \\ window", cols...)
	for si, skip := range []bool{false, true} {
		name := "Local LFD"
		if skip {
			name += " + Skip Events"
		}
		var reuse, over []float64
		for wi := range windows {
			s := ss.At(0, 0, 0, si*len(windows)+wi).Summary
			reuse = append(reuse, s.ReuseRate())
			over = append(over, s.RemainingOverheadPct())
		}
		if err := reuseTab.AddFloatRow(name, reuse...); err != nil {
			return err
		}
		if err := overTab.AddFloatRow(name, over...); err != nil {
			return err
		}
	}
	fmt.Fprint(w, reuseTab.String())
	fmt.Fprintln(w)
	fmt.Fprint(w, overTab.String())

	section(w, "Ablation 3 — classic cache policies as additional baselines (R=4)")
	fmt.Fprintf(w, "%-12s %12s %16s\n", "policy", "reuse (%)", "remaining (%)")
	for bi, b := range baselines {
		s := ss.At(0, 0, 0, baseOff+bi).Summary
		fmt.Fprintf(w, "%-12s %12.2f %16.2f\n", b.Name, s.ReuseRate(), s.RemainingOverheadPct())
	}

	section(w, "Ablation 4 — hybrid vs purely run-time technique (abstract's 10× claim)")
	hybrid, pure, err := MeasureHybridVsPureRuntime(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "run-time cost per application (Hough, worst case): hybrid %.0f ns, purely run-time %.0f ns — %.1f× reduction\n",
		hybrid, pure, pure/hybrid)
	fmt.Fprintln(w, "(the paper reports ~10× on its PowerPC platform)")
	return nil
}
