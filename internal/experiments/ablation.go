package experiments

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/policy"
)

// Ablation probes the design choices behind the paper's technique beyond
// what its own figures cover:
//
//  1. Dynamic List window sweep 1..8 — how much future knowledge Local
//     LFD actually needs (the paper stops at 4).
//  2. Skip-events contribution per window — isolating the feature's
//     effect at fixed lookahead.
//  3. Extra baselines (FIFO, MRU, Random) — placing the paper's LRU
//     baseline among other classic policies.
//
// All runs use the Fig. 9 workload at the paper's most contended point
// (R=4), where replacement decisions matter most.
func Ablation(opt Options, w io.Writer) error {
	opt = opt.normalized()
	pool, seq, err := opt.Workload()
	if err != nil {
		return err
	}
	const rus = 4
	lat := opt.Latency
	ideal, err := manager.Run(manager.Config{RUs: rus, Latency: 0, Policy: policy.NewLRU()},
		dynlist.NewSequence(seq...))
	if err != nil {
		return err
	}
	lookup, _, err := mobility.ComputeAll(pool, rus, lat)
	if err != nil {
		return err
	}

	eval := func(pol policy.Policy, skip bool) (*metrics.Summary, error) {
		cfg := manager.Config{RUs: rus, Latency: lat, Policy: pol, SkipEvents: skip}
		if skip {
			cfg.Mobility = lookup
		}
		res, err := manager.Run(cfg, dynlist.NewSequence(seq...))
		if err != nil {
			return nil, err
		}
		name := pol.Name()
		if skip {
			name += " + Skip Events"
		}
		return metrics.Summarize(name, rus, lat, res, ideal)
	}

	section(w, fmt.Sprintf("Ablation 1+2 — Dynamic List window sweep at R=%d (%d apps, seed %d)",
		rus, len(seq), opt.Seed))
	windows := []int{1, 2, 3, 4, 6, 8}
	cols := make([]string, len(windows))
	for i, ww := range windows {
		cols[i] = strconv.Itoa(ww)
	}
	reuseTab := metrics.NewTable("reuse rate (%) by window", "variant \\ window", cols...)
	overTab := metrics.NewTable("remaining overhead (%) by window", "variant \\ window", cols...)
	for _, skip := range []bool{false, true} {
		name := "Local LFD"
		if skip {
			name += " + Skip Events"
		}
		var reuse, over []float64
		for _, ww := range windows {
			pol, err := policy.NewLocalLFD(ww)
			if err != nil {
				return err
			}
			s, err := eval(pol, skip)
			if err != nil {
				return err
			}
			reuse = append(reuse, s.ReuseRate())
			over = append(over, s.RemainingOverheadPct())
		}
		if err := reuseTab.AddFloatRow(name, reuse...); err != nil {
			return err
		}
		if err := overTab.AddFloatRow(name, over...); err != nil {
			return err
		}
	}
	fmt.Fprint(w, reuseTab.String())
	fmt.Fprintln(w)
	fmt.Fprint(w, overTab.String())

	section(w, "Ablation 3 — classic cache policies as additional baselines (R=4)")
	baselines := []policy.Policy{
		policy.NewLRU(), policy.NewFIFO(), policy.NewMRU(), policy.NewRandom(opt.Seed),
		policy.NewLFD(),
	}
	fmt.Fprintf(w, "%-12s %12s %16s\n", "policy", "reuse (%)", "remaining (%)")
	for _, pol := range baselines {
		s, err := eval(pol, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12.2f %16.2f\n", pol.Name(), s.ReuseRate(), s.RemainingOverheadPct())
	}

	section(w, "Ablation 4 — hybrid vs purely run-time technique (abstract's 10× claim)")
	hybrid, pure, err := MeasureHybridVsPureRuntime(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "run-time cost per application (Hough, worst case): hybrid %.0f ns, purely run-time %.0f ns — %.1f× reduction\n",
		hybrid, pure, pure/hybrid)
	fmt.Fprintln(w, "(the paper reports ~10× on its PowerPC platform)")
	return nil
}
