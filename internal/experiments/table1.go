package experiments

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// WorstCase builds the paper's Table I measurement scenario for a given
// lookahead length: four replacement candidates whose configurations
// never occur in the lookahead, so every selection scans the entire
// future list once per candidate ("this search has to be carried out 4
// times").
type WorstCase struct {
	Request    policy.Request
	Candidates []policy.Candidate
}

// NewWorstCase constructs the scenario. lookahead is the visible future:
// for LFD the complete remaining 500-application request sequence, for
// Local LFD (w) the running graph's remainder plus w enqueued graphs.
func NewWorstCase(lookahead []taskgraph.TaskID) WorstCase {
	cands := make([]policy.Candidate, 4)
	for i := range cands {
		// Candidate IDs outside every benchmark's range: never found.
		cands[i] = policy.Candidate{
			RU:       i,
			Task:     taskgraph.TaskID(9000 + i),
			LastUse:  simtime.Time(i),
			LoadedAt: simtime.Time(i),
		}
	}
	return WorstCase{
		Request:    policy.Request{Task: 8999, Lookahead: lookahead},
		Candidates: cands,
	}
}

// NewLateHitCase is the cost-equivalent variant of the worst case for an
// implementation that (like ours) stops scanning once it finds a
// never-reused candidate: every candidate's configuration occurs, but only
// in the last four positions of the lookahead, so all four scans run the
// full list. The paper's implementation pays this cost in the absent-
// victim case; ours pays it here.
func NewLateHitCase(lookahead []taskgraph.TaskID) WorstCase {
	look := append([]taskgraph.TaskID(nil), lookahead...)
	wc := NewWorstCase(look)
	if n := len(look); n >= len(wc.Candidates) {
		for i, c := range wc.Candidates {
			look[n-len(wc.Candidates)+i] = c.Task
		}
	}
	wc.Request.Lookahead = look
	return wc
}

// FullFutureLookahead flattens a graph sequence into the request stream an
// LFD oracle would scan.
func FullFutureLookahead(seq []*taskgraph.Graph) []taskgraph.TaskID {
	var out []taskgraph.TaskID
	for _, g := range seq {
		out = append(out, g.RecSequenceIDs()...)
	}
	return out
}

// WindowLookahead builds the Local LFD (w) worst-case lookahead: the
// largest benchmark's remainder plus w full graphs.
func WindowLookahead(w int) []taskgraph.TaskID {
	hough := workload.Hough()
	out := append([]taskgraph.TaskID(nil), hough.RecSequenceIDs()[1:]...)
	for i := 0; i < w; i++ {
		out = append(out, hough.RecSequenceIDs()...)
	}
	return out
}

// TableIRow is one measured policy.
type TableIRow struct {
	Name       string
	NsPerOp    float64
	PaperMs    float64 // the paper's PowerPC@100MHz measurement
	RatioToLRU float64
}

// tableICase declares one measured policy: the sweep PolicySpec names it
// and constructs it, the lookahead shapes its worst case, and PaperMs is
// the paper's PowerPC measurement next to which it is reported.
type tableICase struct {
	spec    sweep.PolicySpec
	look    []taskgraph.TaskID
	paperMs float64
}

// tableICases builds the paper's five measured configurations.
func tableICases(full []taskgraph.TaskID) []tableICase {
	return []tableICase{
		{sweep.Fixed("LRU", policy.NewLRU()), nil, 0.00720},
		{sweep.Fixed("LFD", policy.NewLFD()), full, 11.34983},
		{sweep.LocalLFD(1, true), WindowLookahead(1), 0.06028},
		{sweep.LocalLFD(2, true), WindowLookahead(2), 0.07412},
		{sweep.LocalLFD(4, true), WindowLookahead(4), 0.11020},
	}
}

// MeasureTableI times each policy's victim selection in the worst case.
// It returns rows in the paper's order. Timing uses testing.Benchmark —
// necessarily sequential, unlike the simulation sweeps: concurrent
// scenarios would perturb each other's clocks. The results are
// machine-dependent; the meaningful comparison is the ratio column (see
// DESIGN.md §3 on the PowerPC substitution).
func MeasureTableI(opt Options) ([]TableIRow, error) {
	opt = opt.normalized()
	seq, err := opt.sequence()
	if err != nil {
		return nil, err
	}
	cases := tableICases(FullFutureLookahead(seq))
	rows := make([]TableIRow, 0, len(cases))
	var lruNs float64
	for _, c := range cases {
		pol, err := c.spec.New()
		if err != nil {
			return nil, err
		}
		// Use the late-hit variant so the measured cost includes one full
		// scan per candidate, matching the paper's implementation (which
		// cannot short-circuit); see NewLateHitCase.
		wc := NewLateHitCase(c.look)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pol.SelectVictim(wc.Request, wc.Candidates)
			}
		})
		ns := float64(res.NsPerOp())
		if c.spec.Name == "LRU" {
			lruNs = ns
		}
		rows = append(rows, TableIRow{Name: c.spec.Name, NsPerOp: ns, PaperMs: c.paperMs})
	}
	for i := range rows {
		if lruNs > 0 {
			rows[i].RatioToLRU = rows[i].NsPerOp / lruNs
		}
	}
	return rows, nil
}

// TableI writes the Table I report: worst-case run-time delay per
// replacement decision, measured on the host, next to the paper's
// PowerPC numbers and the policy-to-LRU ratios on both platforms.
func TableI(opt Options, w io.Writer) error {
	rows, err := MeasureTableI(opt)
	if err != nil {
		return err
	}
	section(w, "Table I — worst-case run-time delay of the replacement decision")
	fmt.Fprintf(w, "%-30s %14s %14s %12s %12s\n",
		"policy", "host ns/op", "paper ms", "host ratio", "paper ratio")
	var paperLRU float64
	for _, r := range rows {
		if r.Name == "LRU" {
			paperLRU = r.PaperMs
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %14.1f %14.5f %12.1f %12.1f\n",
			r.Name, r.NsPerOp, r.PaperMs, r.RatioToLRU, r.PaperMs/paperLRU)
	}
	fmt.Fprintln(w, "\nexpected shape: LRU ≪ Local LFD (1) < (2) < (4) ≪ LFD; the paper's")
	fmt.Fprintln(w, "LFD/LRU ratio is ~1576×, its Local LFD(1)/LRU ratio ~8.4×.")
	return nil
}
