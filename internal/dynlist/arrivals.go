package dynlist

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// RandomArrivals draws n applications uniformly from pool and spaces them
// with exponentially distributed inter-arrival gaps of the given mean —
// a Poisson arrival process, the standard model for the "highly dynamic
// environments" the paper targets. The first application arrives at time
// zero so the system starts busy. Generation is fully determined by rng.
func RandomArrivals(pool []*taskgraph.Graph, n int, meanGap simtime.Time, rng *rand.Rand) (*SliceFeed, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("dynlist: empty graph pool")
	}
	if n < 1 {
		return nil, fmt.Errorf("dynlist: need n ≥ 1, got %d", n)
	}
	if meanGap < 0 {
		return nil, fmt.Errorf("dynlist: negative mean gap %v", meanGap)
	}
	items := make([]Item, n)
	var at simtime.Time
	for i := range items {
		if i > 0 && meanGap > 0 {
			gap := simtime.Time(math.Round(rng.ExpFloat64() * float64(meanGap)))
			at = at.Add(gap)
		}
		items[i] = Item{Graph: pool[rng.Intn(len(pool))], Arrival: at, Instance: i}
	}
	return &SliceFeed{items: items}, nil
}
