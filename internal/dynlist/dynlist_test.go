package dynlist

import (
	"math/rand"
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

func g(name string, first taskgraph.TaskID, n int) *taskgraph.Graph {
	execs := make([]simtime.Time, n)
	for i := range execs {
		execs[i] = ms(1)
	}
	return taskgraph.Chain(name, first, execs...)
}

func TestListFIFO(t *testing.T) {
	var l List
	if _, ok := l.PopFront(); ok {
		t.Error("pop from empty list")
	}
	a, b := g("a", 1, 2), g("b", 10, 3)
	l.Push(Item{Graph: a, Instance: 0})
	l.Push(Item{Graph: b, Instance: 1})
	if l.Len() != 2 || l.At(0).Graph != a || l.At(1).Graph != b {
		t.Fatalf("list state wrong: len=%d", l.Len())
	}
	it, ok := l.PopFront()
	if !ok || it.Graph != a {
		t.Errorf("pop = %v", it.Graph)
	}
	it, ok = l.PopFront()
	if !ok || it.Graph != b {
		t.Errorf("pop = %v", it.Graph)
	}
	if l.Len() != 0 {
		t.Error("list not empty")
	}
}

func TestAppendWindow(t *testing.T) {
	var l List
	l.Push(Item{Graph: g("a", 1, 2)})  // tasks 1,2
	l.Push(Item{Graph: g("b", 10, 3)}) // tasks 10,11,12
	l.Push(Item{Graph: g("c", 20, 1)}) // task 20

	tests := []struct {
		w    int
		want []taskgraph.TaskID
	}{
		{0, nil},
		{1, []taskgraph.TaskID{1, 2}},
		{2, []taskgraph.TaskID{1, 2, 10, 11, 12}},
		{3, []taskgraph.TaskID{1, 2, 10, 11, 12, 20}},
		{99, []taskgraph.TaskID{1, 2, 10, 11, 12, 20}},
		{-1, []taskgraph.TaskID{1, 2, 10, 11, 12, 20}},
	}
	for _, tt := range tests {
		got := l.AppendWindow(nil, tt.w)
		if len(got) != len(tt.want) {
			t.Errorf("w=%d: got %v, want %v", tt.w, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("w=%d: got %v, want %v", tt.w, got, tt.want)
				break
			}
		}
	}
	// Appends to existing prefix.
	got := l.AppendWindow([]taskgraph.TaskID{7}, 1)
	if len(got) != 3 || got[0] != 7 || got[1] != 1 {
		t.Errorf("prefix append: %v", got)
	}
}

func TestNewSequence(t *testing.T) {
	a, b := g("a", 1, 1), g("b", 10, 1)
	f := NewSequence(a, b)
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	if rem := f.Remaining(); len(rem) != 2 {
		t.Fatalf("Remaining = %d", len(rem))
	}
	it, ok := f.Next()
	if !ok || it.Graph != a || it.Instance != 0 || it.Arrival != 0 {
		t.Errorf("first = %+v", it)
	}
	if rem := f.Remaining(); len(rem) != 1 || rem[0].Graph != b {
		t.Errorf("Remaining after one = %v", rem)
	}
	it, ok = f.Next()
	if !ok || it.Instance != 1 {
		t.Errorf("second = %+v", it)
	}
	if _, ok := f.Next(); ok {
		t.Error("exhausted feed returned ok")
	}
}

func TestNewTimed(t *testing.T) {
	a := g("a", 1, 1)
	f, err := NewTimed([]Item{
		{Graph: a, Arrival: ms(0)},
		{Graph: a, Arrival: ms(5)},
		{Graph: a, Arrival: ms(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	it, _ := f.Next()
	if it.Instance != 0 {
		t.Errorf("instances not renumbered: %+v", it)
	}

	if _, err := NewTimed([]Item{{Graph: a, Arrival: ms(5)}, {Graph: a, Arrival: ms(1)}}); err == nil {
		t.Error("decreasing arrivals accepted")
	}
	if _, err := NewTimed([]Item{{Graph: nil}}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestRandomSequence(t *testing.T) {
	pool := []*taskgraph.Graph{g("a", 1, 1), g("b", 10, 2), g("c", 20, 3)}
	f1, err := RandomSequence(pool, 100, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := RandomSequence(pool, 100, rand.New(rand.NewSource(5)))
	if f1.Len() != 100 {
		t.Fatalf("Len = %d", f1.Len())
	}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		a, _ := f1.Next()
		b, _ := f2.Next()
		if a.Graph != b.Graph {
			t.Fatalf("same seed diverged at %d", i)
		}
		seen[a.Graph.Name()] = true
	}
	if len(seen) != 3 {
		t.Errorf("only %d of 3 graphs drawn in 100 samples", len(seen))
	}

	if _, err := RandomSequence(nil, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := RandomSequence(pool, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRandomArrivals(t *testing.T) {
	pool := []*taskgraph.Graph{g("a", 1, 1), g("b", 10, 2)}
	f, err := RandomArrivals(pool, 50, ms(20), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	items := f.Remaining()
	if len(items) != 50 {
		t.Fatalf("len = %d", len(items))
	}
	if items[0].Arrival != 0 {
		t.Errorf("first arrival at %v, want 0", items[0].Arrival)
	}
	var prev simtime.Time
	var total simtime.Time
	for i, it := range items {
		if it.Arrival < prev {
			t.Fatalf("arrival %d at %v before %v", i, it.Arrival, prev)
		}
		prev = it.Arrival
		if it.Instance != i {
			t.Errorf("instance %d numbered %d", i, it.Instance)
		}
	}
	total = items[len(items)-1].Arrival
	// Mean gap 20 ms over 49 gaps: expect the span in a loose
	// [300, 3000] ms band (exponential spread).
	if total < ms(300) || total > ms(3000) {
		t.Errorf("span %v implausible for mean gap 20 ms", total)
	}
	// Deterministic per seed.
	f2, _ := RandomArrivals(pool, 50, ms(20), rand.New(rand.NewSource(4)))
	items2 := f2.Remaining()
	for i := range items {
		if items[i].Arrival != items2[i].Arrival || items[i].Graph != items2[i].Graph {
			t.Fatalf("seeded arrivals diverged at %d", i)
		}
	}
	// Zero gap means everything arrives at once.
	f3, err := RandomArrivals(pool, 5, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range f3.Remaining() {
		if it.Arrival != 0 {
			t.Errorf("zero-gap arrival at %v", it.Arrival)
		}
	}
	// Validation.
	if _, err := RandomArrivals(nil, 5, ms(1), rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := RandomArrivals(pool, 0, ms(1), rand.New(rand.NewSource(1))); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandomArrivals(pool, 3, -ms(1), rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative gap accepted")
	}
}
