// Package dynlist implements the paper's Dynamic List (DL): the run-time
// FIFO queue of applications waiting to execute (Fig. 1). The running
// application is not part of the DL; Local LFD's lookahead window is a
// prefix of the DL.
//
// Applications enter the DL through a Feed — a source of time-stamped
// arrivals. A static benchmark sequence (the paper's 500-application
// experiments) is a feed whose arrivals all occur at time zero; dynamic
// scenarios use later timestamps, reproducing the behaviour of Fig. 1
// where new applications are enqueued while others run.
package dynlist

import (
	"fmt"
	"math/rand"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// Item is one enqueued application instance.
type Item struct {
	Graph    *taskgraph.Graph
	Arrival  simtime.Time
	Instance int // position in the overall arrival order
}

// List is the Dynamic List proper. The zero value is an empty list.
//
// The list is a head-indexed queue over one backing array: PopFront
// advances the head instead of re-slicing the storage away, and the array
// rewinds whenever the queue drains, so a long simulation pushing and
// popping hundreds of arrivals reuses the same memory instead of growing
// a fresh tail after every drain.
type List struct {
	items []Item
	head  int
}

// Push appends an item (FIFO, as in the paper's Fig. 1).
func (l *List) Push(it Item) {
	if l.head == len(l.items) && l.head > 0 {
		// Drained: rewind onto the existing backing array.
		l.items = l.items[:0]
		l.head = 0
	}
	l.items = append(l.items, it)
}

// PopFront removes and returns the head of the list.
func (l *List) PopFront() (Item, bool) {
	if l.head == len(l.items) {
		return Item{}, false
	}
	it := l.items[l.head]
	l.items[l.head] = Item{} // drop the Graph reference
	l.head++
	return it, true
}

// Len returns the number of enqueued applications.
func (l *List) Len() int { return len(l.items) - l.head }

// At returns the i-th enqueued item (0 = head).
func (l *List) At(i int) Item { return l.items[l.head+i] }

// Reset empties the list, keeping the backing array for reuse.
func (l *List) Reset() {
	clear(l.items)
	l.items = l.items[:0]
	l.head = 0
}

// AppendWindow appends to dst the reconfiguration sequences of the first
// w enqueued graphs (all of them when w is negative or exceeds the list)
// and returns the extended slice. This is the Dynamic List contribution to
// a Local LFD lookahead. It allocates nothing beyond dst's own growth.
func (l *List) AppendWindow(dst []taskgraph.TaskID, w int) []taskgraph.TaskID {
	n := l.Len()
	if w >= 0 && w < n {
		n = w
	}
	for i := 0; i < n; i++ {
		dst = l.items[l.head+i].Graph.AppendRecIDs(dst)
	}
	return dst
}

// Feed is a source of arrivals with non-decreasing timestamps.
type Feed interface {
	// Next returns the next arrival. ok is false when the feed is
	// exhausted.
	Next() (it Item, ok bool)
}

// Oracle is implemented by feeds whose complete future is known in
// advance; the clairvoyant LFD policy needs it.
type Oracle interface {
	Feed
	// Remaining returns the arrivals not yet handed out by Next, in
	// order. The caller must not modify the result.
	Remaining() []Item
}

// SliceFeed is a Feed over a pre-built arrival list. It implements Oracle.
type SliceFeed struct {
	items []Item
	pos   int
}

var _ Oracle = (*SliceFeed)(nil)

// NewSequence builds a feed where every graph arrives at time zero, in
// order — the shape of the paper's 500-application experiments.
func NewSequence(graphs ...*taskgraph.Graph) *SliceFeed {
	items := make([]Item, len(graphs))
	for i, g := range graphs {
		items[i] = Item{Graph: g, Instance: i}
	}
	return &SliceFeed{items: items}
}

// NewTimed builds a feed from explicit arrivals. Arrival times must be
// non-decreasing; instances are renumbered in order.
func NewTimed(arrivals []Item) (*SliceFeed, error) {
	items := append([]Item(nil), arrivals...)
	var prev simtime.Time
	for i := range items {
		if items[i].Graph == nil {
			return nil, fmt.Errorf("dynlist: arrival %d has nil graph", i)
		}
		if items[i].Arrival < prev {
			return nil, fmt.Errorf("dynlist: arrival %d at %v precedes arrival %d at %v",
				i, items[i].Arrival, i-1, prev)
		}
		prev = items[i].Arrival
		items[i].Instance = i
	}
	return &SliceFeed{items: items}, nil
}

// Next implements Feed.
func (f *SliceFeed) Next() (Item, bool) {
	if f.pos >= len(f.items) {
		return Item{}, false
	}
	it := f.items[f.pos]
	f.pos++
	return it, true
}

// Remaining implements Oracle.
func (f *SliceFeed) Remaining() []Item { return f.items[f.pos:] }

// Rewind restarts the feed from its first arrival and returns the feed,
// so one arrival list can drive many runs (a pooled runner re-simulating
// a scenario, a benchmark iterating) without rebuilding it.
func (f *SliceFeed) Rewind() *SliceFeed {
	f.pos = 0
	return f
}

// Len returns the total number of arrivals in the feed.
func (f *SliceFeed) Len() int { return len(f.items) }

// RandomSequence draws n graphs uniformly from the pool using rng — the
// paper's "sequence of 500 applications randomly selected from our set of
// benchmarks".
func RandomSequence(pool []*taskgraph.Graph, n int, rng *rand.Rand) (*SliceFeed, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("dynlist: empty graph pool")
	}
	if n < 1 {
		return nil, fmt.Errorf("dynlist: need n ≥ 1, got %d", n)
	}
	graphs := make([]*taskgraph.Graph, n)
	for i := range graphs {
		graphs[i] = pool[rng.Intn(len(pool))]
	}
	return NewSequence(graphs...), nil
}
