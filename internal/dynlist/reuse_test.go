package dynlist

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// TestListReusesBackingArray: steady push/pop churn over a drained list
// runs on one backing array — no allocation once warm.
func TestListReusesBackingArray(t *testing.T) {
	g := taskgraph.Chain("g", 1, simtime.FromMs(1))
	var l List
	warm := func() {
		for i := 0; i < 16; i++ {
			l.Push(Item{Graph: g, Instance: i})
		}
		for {
			if _, ok := l.PopFront(); !ok {
				break
			}
		}
	}
	warm()
	if avg := testing.AllocsPerRun(20, warm); avg != 0 {
		t.Errorf("warm push/pop cycle allocates %.1f times, want 0", avg)
	}
}

// TestListReset empties the list in place.
func TestListReset(t *testing.T) {
	g := taskgraph.Chain("g", 1, simtime.FromMs(1))
	var l List
	l.Push(Item{Graph: g})
	l.Push(Item{Graph: g})
	l.PopFront()
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("len = %d after Reset", l.Len())
	}
	if _, ok := l.PopFront(); ok {
		t.Error("PopFront succeeded on reset list")
	}
	l.Push(Item{Graph: g, Instance: 9})
	if it := l.At(0); it.Instance != 9 {
		t.Errorf("At(0).Instance = %d after Reset+Push", it.Instance)
	}
}

// TestSliceFeedRewind: a rewound feed replays the identical arrival
// stream, so one feed can drive many runs.
func TestSliceFeedRewind(t *testing.T) {
	g := taskgraph.Chain("g", 1, simtime.FromMs(1))
	f := NewSequence(g, g, g)
	var first []int
	for {
		it, ok := f.Next()
		if !ok {
			break
		}
		first = append(first, it.Instance)
	}
	if len(first) != 3 {
		t.Fatalf("drained %d items, want 3", len(first))
	}
	if f.Rewind() != f {
		t.Error("Rewind should return the receiver")
	}
	for i := 0; ; i++ {
		it, ok := f.Next()
		if !ok {
			if i != len(first) {
				t.Fatalf("replay ended after %d items, want %d", i, len(first))
			}
			break
		}
		if it.Instance != first[i] {
			t.Fatalf("replay item %d: instance %d, want %d", i, it.Instance, first[i])
		}
	}
	if len(f.Remaining()) != 0 {
		t.Error("Remaining not empty after full replay")
	}
}
