// Package profiling wires the conventional -cpuprofile / -memprofile
// CLI flags to runtime/pprof, so every binary in this repo exposes
// profiling the same way `go test` does. The intended loop — profile a
// suspect sweep, read the flame graph, fix, re-run the allocation gates
// — is written up in EXPERIMENTS.md §"Profiling a run".
package profiling

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the two paths; either may be
// empty to skip that profile. The returned stop function must run when
// the program is done (defer it in main): it finishes the CPU profile
// and, if requested, forces a GC and writes the heap profile — a
// snapshot of live memory at exit, which for the simulator means the
// pooled runner state the hot loop retains. Start with both paths empty
// returns a no-op stop, so callers need no conditional.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("cpu profile: %w", err))
			}
		}
		if memPath != "" {
			// Collect garbage first so the profile shows what the program
			// keeps, not what the last sweep happened to leave unswept.
			runtime.GC()
			f, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, fmt.Errorf("heap profile: %w", err))
			} else {
				if err := pprof.WriteHeapProfile(f); err != nil {
					errs = append(errs, fmt.Errorf("heap profile: %w", err))
				}
				if err := f.Close(); err != nil {
					errs = append(errs, fmt.Errorf("heap profile: %w", err))
				}
			}
		}
		return errors.Join(errs...)
	}, nil
}
