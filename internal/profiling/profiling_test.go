package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesBothProfiles: a full Start/stop cycle leaves two
// non-empty pprof files behind.
func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to say.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1<<12))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestStartNoOp: empty paths mean no files and a working no-op stop.
func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Error(err)
	}
}

// TestStartRejectsUnwritableCPUPath: an uncreatable CPU profile path
// fails Start itself, before any work runs.
func TestStartRejectsUnwritableCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("Start accepted an uncreatable cpu profile path")
	}
}

// TestStopReportsUnwritableMemPath: the heap profile is written at stop
// time, so its path errors surface there.
func TestStopReportsUnwritableMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("stop accepted an uncreatable heap profile path")
	}
}
