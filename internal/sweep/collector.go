package sweep

import (
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// Collector receives completed scenario results as a sweep streams them
// out: one Collect call per executed scenario, always in spec order
// regardless of completion order, always from a single goroutine (a
// Collector needs no locking). Returning an error cancels the rest of
// the sweep.
//
// The executor holds on to a result only until its turn comes — at most
// a bounded reorder window of them (see Executor.Collect) — so a
// Collector that drops or condenses results caps the sweep's memory at
// O(workers) raw runs no matter how large the grid is.
type Collector interface {
	Collect(*Result) error
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(*Result) error

// Collect calls f.
func (f CollectorFunc) Collect(r *Result) error { return f(r) }

// Discard drops every result. With Executor.Store attached this is the
// write-through population mode: the sweep's only output is the store
// entries it persists — exactly what a shard run feeding a shared store
// wants (the report is rendered later, from the merged store).
var Discard Collector = CollectorFunc(func(*Result) error { return nil })

// ResultSetCollector accumulates every streamed result in spec order —
// the classic Run behaviour, O(grid) memory. Use it when a report needs
// raw runs (traces, completion times); summary-only grids should prefer
// SummaryCollector.
type ResultSetCollector struct {
	Results []*Result
}

// Collect appends the result.
func (c *ResultSetCollector) Collect(r *Result) error {
	c.Results = append(c.Results, r)
	return nil
}

// RunCounters is the O(1)-size residue of a raw run that summary-only
// reports consume: every scalar counter, none of the per-task slices
// (completion times, traces) that make a manager.Result O(workload).
type RunCounters struct {
	Executed, Reused, Loads, Evictions int
	Skips, ForcedSkips, Preloads       int
	Makespan                           simtime.Time
}

// countersOf captures the scalar counters of a completed run.
func countersOf(r *manager.Result) RunCounters {
	if r == nil {
		return RunCounters{}
	}
	return RunCounters{
		Executed: r.Executed, Reused: r.Reused, Loads: r.Loads, Evictions: r.Evictions,
		Skips: r.Skips, ForcedSkips: r.ForcedSkips, Preloads: r.Preloads,
		Makespan: r.Makespan,
	}
}

// ReuseRate returns reused/executed in percent (0 for an empty run),
// matching metrics.Summary.ReuseRate for sweeps run without baselines.
func (c RunCounters) ReuseRate() float64 {
	if c.Executed == 0 {
		return 0
	}
	return 100 * float64(c.Reused) / float64(c.Executed)
}

// SummaryRow is what SummaryCollector keeps per scenario: the derived
// metrics summary (nil when the sweep ran with Spec.NoBaseline) plus the
// scalar run counters. It holds no *manager.Result, so the raw run and
// its ideal baseline are garbage the moment the row is collected.
type SummaryRow struct {
	Scenario Scenario
	// Summary carries the paper's metrics; nil under Spec.NoBaseline.
	Summary *metrics.Summary
	// Counters are the scalar counters of the raw run.
	Counters RunCounters
}

// SummaryCollector condenses each result to a SummaryRow as it streams
// past, dropping the raw run and ideal baseline. A sweep collected this
// way retains O(workers) full results at any instant (the executor's
// reorder window) and O(grid) small rows — the difference is what lets
// one process sweep grids far larger than memory would allow with
// ResultSetCollector.
type SummaryCollector struct {
	Rows []SummaryRow
}

// Collect condenses and appends the result.
func (c *SummaryCollector) Collect(r *Result) error {
	c.Rows = append(c.Rows, SummaryRow{
		Scenario: r.Scenario,
		Summary:  r.Summary,
		Counters: countersOf(r.Run),
	})
	return nil
}

// SummarySet is a completed summary-only sweep: rows in spec order plus
// axis-indexed access, the lightweight analogue of ResultSet.
type SummarySet struct {
	Spec *Spec
	Rows []SummaryRow
}

// At returns the row at the given axis indices. Valid only for
// unsharded sweeps (a shard holds a subset of the grid's rows).
func (ss *SummarySet) At(workload, ru, latency, policy int) *SummaryRow {
	nr, nl, np := len(ss.Spec.RUs), len(ss.Spec.Latencies), len(ss.Spec.Policies)
	return &ss.Rows[((workload*nr+ru)*nl+latency)*np+policy]
}

// RunSummaries executes the sweep through a SummaryCollector and returns
// the summary rows in spec order. This is the streaming counterpart of
// Run for summary-only grids: same scenarios, same sharing, O(workers)
// raw results in memory instead of O(grid).
func (e Executor) RunSummaries(spec Spec) (*SummarySet, error) {
	var c SummaryCollector
	if err := e.Collect(spec, &c); err != nil {
		return nil, err
	}
	sp := spec
	return &SummarySet{Spec: &sp, Rows: c.Rows}, nil
}
