package sweep

import (
	"fmt"

	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// Collector receives completed scenario results as a sweep streams them
// out: one Collect call per executed scenario, always in spec order
// regardless of completion order, always from a single goroutine (a
// Collector needs no locking). Returning an error cancels the rest of
// the sweep.
//
// The executor holds on to a result only until its turn comes — at most
// a bounded reorder window of them (see Executor.Collect) — so a
// Collector that drops or condenses results caps the sweep's memory at
// O(workers) raw runs no matter how large the grid is.
type Collector interface {
	Collect(*Result) error
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(*Result) error

// Collect calls f.
func (f CollectorFunc) Collect(r *Result) error { return f(r) }

// Discard drops every result. With Executor.Store attached this is the
// write-through population mode: the sweep's only output is the store
// entries it persists — exactly what a shard run feeding a shared store
// wants (the report is rendered later, from the merged store).
var Discard Collector = CollectorFunc(func(*Result) error { return nil })

// ResultSetCollector accumulates every streamed result in spec order —
// the classic Run behaviour, O(grid) memory. Use it when a report needs
// raw runs (traces, completion times); summary-only grids should prefer
// SummaryCollector.
type ResultSetCollector struct {
	Results []*Result
}

// Collect appends the result.
func (c *ResultSetCollector) Collect(r *Result) error {
	c.Results = append(c.Results, r)
	return nil
}

// RunCounters is the O(1)-size residue of a raw run that summary-only
// reports consume: every scalar counter, none of the per-task slices
// (completion times, traces) that make a manager.Result O(workload).
type RunCounters struct {
	Executed, Reused, Loads, Evictions int
	Skips, ForcedSkips, Preloads       int
	Makespan                           simtime.Time
}

// countersOf captures the scalar counters of a completed run.
func countersOf(r *manager.Result) RunCounters {
	if r == nil {
		return RunCounters{}
	}
	return RunCounters{
		Executed: r.Executed, Reused: r.Reused, Loads: r.Loads, Evictions: r.Evictions,
		Skips: r.Skips, ForcedSkips: r.ForcedSkips, Preloads: r.Preloads,
		Makespan: r.Makespan,
	}
}

// ReuseRate returns reused/executed in percent (0 for an empty run),
// matching metrics.Summary.ReuseRate for sweeps run without baselines.
func (c RunCounters) ReuseRate() float64 {
	if c.Executed == 0 {
		return 0
	}
	return 100 * float64(c.Reused) / float64(c.Executed)
}

// SummaryRow is what SummaryCollector keeps per scenario: the derived
// metrics summary (nil when the sweep ran with Spec.NoBaseline) plus the
// scalar run counters. It holds no *manager.Result, so the raw run and
// its ideal baseline are garbage the moment the row is collected.
type SummaryRow struct {
	Scenario Scenario
	// Summary carries the paper's metrics; nil under Spec.NoBaseline.
	Summary *metrics.Summary
	// Counters are the scalar counters of the raw run.
	Counters RunCounters
}

// Condense captures the O(1)-size SummaryRow of one streamed result —
// the condensation SummaryCollector applies to every row, exposed for
// collectors that render rows instead of retaining them (RowRenderer,
// the CLIs' streaming tables). The raw run and ideal baseline become
// garbage the moment the caller drops r.
func Condense(r *Result) SummaryRow {
	return SummaryRow{
		Scenario: r.Scenario,
		Summary:  r.Summary,
		Counters: countersOf(r.Run),
	}
}

// SummaryCollector condenses each result to a SummaryRow as it streams
// past, dropping the raw run and ideal baseline. A sweep collected this
// way retains O(workers) full results at any instant (the executor's
// reorder window) and O(grid) small rows — the difference is what lets
// one process sweep grids far larger than memory would allow with
// ResultSetCollector.
type SummaryCollector struct {
	Rows []SummaryRow
}

// Collect condenses and appends the result.
func (c *SummaryCollector) Collect(r *Result) error {
	c.Rows = append(c.Rows, Condense(r))
	return nil
}

// RowRenderer groups a sweep's streamed results into report rows and
// hands each row over the moment its last scenario lands. It is the
// streaming report primitive on top of the Collector pipeline: where
// SummaryCollector retains O(grid) condensed rows for post-sweep
// indexing, a RowRenderer retains at most one in-progress block — O(1)
// in the grid size — because it renders and forgets. Every grid report
// (the experiments' figure tables, the CLIs' sweep tables) sits on it,
// which is what makes tables print incrementally while a sweep runs and,
// in a coordinator watch-mode merge, the moment each scenario is stored
// by a remote shard.
//
// Scenarios arrive in spec order (policies innermost), so a report's
// rows must be contiguous runs of spec order: transpose a table if its
// natural rows lie along an outer axis (a "policy × RUs" figure becomes
// "RUs \ policy" so each unit count's row completes as its policy block
// streams past).
type RowRenderer struct {
	// Sizes is the sequence of consecutive block sizes, in scenarios per
	// report row; after the sequence is exhausted the last size repeats.
	// Empty means 1 (one rendered row per scenario). Typical tables use
	// one size — the length of the innermost axis.
	Sizes []int
	// Emit renders completed block i. The rows slice is reused for the
	// next block: consume it, do not retain it.
	Emit func(i int, rows []SummaryRow) error

	block   []SummaryRow
	emitted int
	maxHeld int
}

// size returns the current block's expected size.
func (r *RowRenderer) size() int {
	switch {
	case len(r.Sizes) == 0:
		return 1
	case r.emitted < len(r.Sizes):
		return r.Sizes[r.emitted]
	default:
		return r.Sizes[len(r.Sizes)-1]
	}
}

// Collect condenses the result into the current block and emits the
// block once full.
func (r *RowRenderer) Collect(res *Result) error {
	if r.size() < 1 {
		return fmt.Errorf("sweep: RowRenderer block %d has non-positive size %d", r.emitted, r.size())
	}
	r.block = append(r.block, Condense(res))
	if len(r.block) > r.maxHeld {
		r.maxHeld = len(r.block)
	}
	if len(r.block) < r.size() {
		return nil
	}
	block := r.block
	r.block = r.block[:0]
	i := r.emitted
	r.emitted++
	return r.Emit(i, block)
}

// Close verifies the stream ended on a row boundary; a partial block
// left behind means the declared Sizes do not tile the grid — a report
// bug, not a sweep error.
func (r *RowRenderer) Close() error {
	if len(r.block) != 0 {
		return fmt.Errorf("sweep: render stream ended mid-row: %d of %d scenarios of row %d collected",
			len(r.block), r.size(), r.emitted)
	}
	return nil
}

// Rows reports how many report rows have been emitted.
func (r *RowRenderer) Rows() int { return r.emitted }

// MaxHeld reports the largest number of condensed rows buffered at any
// instant — the bounded-retention evidence: it never exceeds the largest
// block size, however large the grid.
func (r *RowRenderer) MaxHeld() int { return r.maxHeld }

// SummarySet is a completed summary-only sweep: rows in spec order plus
// axis-indexed access, the lightweight analogue of ResultSet.
type SummarySet struct {
	Spec *Spec
	Rows []SummaryRow
}

// At returns the row at the given axis indices. Valid only for
// unsharded sweeps (a shard holds a subset of the grid's rows).
func (ss *SummarySet) At(workload, ru, latency, policy int) *SummaryRow {
	nr, nl, np := len(ss.Spec.RUs), len(ss.Spec.Latencies), len(ss.Spec.Policies)
	return &ss.Rows[((workload*nr+ru)*nl+latency)*np+policy]
}

// RunSummaries executes the sweep through a SummaryCollector and returns
// the summary rows in spec order. This is the streaming counterpart of
// Run for summary-only grids: same scenarios, same sharing, O(workers)
// raw results in memory instead of O(grid).
func (e Executor) RunSummaries(spec Spec) (*SummarySet, error) {
	var c SummaryCollector
	if err := e.Collect(spec, &c); err != nil {
		return nil, err
	}
	sp := spec
	return &SummarySet{Spec: &sp, Rows: c.Rows}, nil
}
