// Package sweep turns the repo's scenario grids — policies × unit counts ×
// latencies × workload seeds, the shape of every figure and table in the
// paper's evaluation — into a declarative Spec executed on a bounded
// worker pool.
//
// A Spec is the cross product of four axes (Workloads, RUs, Latencies,
// Policies). Expand flattens it into Scenarios in a fixed spec order;
// Executor.Collect simulates them concurrently and streams the results
// into a Collector in that same order, from one goroutine, so a parallel
// sweep is byte-for-byte interchangeable with a sequential one. Shared
// inputs are computed once per sweep, not once per scenario: the
// zero-latency ideal baseline per (workload, RUs), and the design-time
// mobility tables per (template, RUs, latency) via the process-wide
// cache in internal/mobility.
//
// The Collector is the report path's unit of composition:
//
//   - Run gathers everything into a ResultSet (O(grid) raw results —
//     only for reports that need traces or completion times);
//   - RunSummaries streams through a SummaryCollector, dropping each raw
//     run as it passes (O(workers) raw results, O(grid) small rows);
//   - RowRenderer groups the stream into report rows and renders each
//     one the moment its last scenario lands — O(1) rows retained, the
//     primitive behind every streaming table (see metrics.StreamTable);
//   - Discard, with a Store attached, is the write-through populate mode
//     of sharded runs: the store entries are the only output.
//
// Spec.Shard splits the grid across cooperating processes: shard i of N
// owns every scenario whose spec index ≡ i (mod N), the shards tile the
// grid exactly, and a shared result store merges them back into one
// report — Executor.RequireStored renders purely from the store, failing
// (never silently re-simulating) on a missing scenario, and
// Executor.StoreWait softens that into the watch-mode merge: a missing
// scenario is awaited and served the moment a remote shard stores it,
// with StoreWait.Done (typically coord.(*Coordinator).Drained) bounding
// the wait so a dead pool errors instead of hanging. See the CLIs'
// -shard/-coord/-merge-report/-watch flags and ARCHITECTURE.md for the
// full pipeline.
//
// Typical use (the Fig. 9 protocol):
//
//	rs, err := sweep.Run(sweep.Spec{
//	    Workloads: []sweep.Workload{{Pool: pool, Seq: seq}},
//	    RUs:       []int{4, 5, 6, 7, 8, 9, 10},
//	    Latencies: []simtime.Time{workload.PaperLatency()},
//	    Policies: []sweep.PolicySpec{
//	        sweep.Fixed("LRU", policy.NewLRU()),
//	        sweep.LocalLFD(1, true), // "+ Skip Events"
//	    },
//	})
//	sum := rs.At(0, ruIdx, 0, polIdx).Summary
package sweep

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// Workload is one input sequence drawn over a template pool. Mobility
// tables are keyed by template identity, so Seq must reference the graphs
// of Pool (Pool may be nil when no policy uses skip events).
type Workload struct {
	// Label identifies the workload in scenario names (e.g. "seed 2014");
	// empty is fine for single-workload sweeps.
	Label string
	// Pool is the set of templates the design-time phase runs over.
	Pool []*taskgraph.Graph
	// Seq is the arrival sequence (all applications available at time
	// zero, as in the paper's experiments).
	Seq []*taskgraph.Graph
}

// PolicySpec is one value of the policy axis: how to build the policy and
// which manager features to enable around it.
type PolicySpec struct {
	// Name is the display name used in reports and summaries.
	Name string
	// Key is the canonical policy identity folded into scenario config
	// hashes ("lru", "locallfd:2", "random:7", …). The constructors below
	// set it; hand-built specs that leave it empty make the whole Spec
	// ineligible for the persisted result store (see Spec.ScenarioKeys).
	// It must fully determine the policy's behaviour: two specs may share
	// a Key only if their New constructors build equivalent policies.
	Key string
	// New builds a fresh policy instance. It is called once per scenario,
	// so stateful policies (Random) never cross goroutines.
	New func() (policy.Policy, error)
	// Skip enables skip events; the executor supplies the design-time
	// mobility tables for the scenario's (pool, RUs, latency).
	Skip bool
	// CrossGraphPrefetch / ConservativePrefetch enable the prefetch
	// extension variants.
	CrossGraphPrefetch   bool
	ConservativePrefetch bool
}

// Fixed wraps an existing policy instance under a display name. The
// instance is shared by every scenario of the axis value; use it only for
// stateless policies (LRU, MRU, FIFO, LFD, Local LFD) — which is also why
// the policy's own Name() can serve as the store identity Key (a stateful
// policy's name would not capture its seed).
func Fixed(name string, p policy.Policy) PolicySpec {
	return PolicySpec{
		Name: name,
		Key:  "fixed:" + p.Name(),
		New:  func() (policy.Policy, error) { return p, nil },
	}
}

// FromSpec builds the policy axis value from a CLI-style specifier
// ("lru", "locallfd:2", "random:7", …). The display name defaults to the
// parsed policy's Name (plus " + Skip Events" when skip is set).
func FromSpec(spec string, skip bool) (PolicySpec, error) {
	p, err := policy.Parse(spec) // fail fast on bad specifiers
	if err != nil {
		return PolicySpec{}, err
	}
	name := p.Name()
	if skip {
		name += " + Skip Events"
	}
	return PolicySpec{
		Name: name,
		Key:  strings.ToLower(strings.TrimSpace(spec)),
		New:  func() (policy.Policy, error) { return policy.Parse(spec) },
		Skip: skip,
	}, nil
}

// LocalLFD is the paper's policy axis value: Local LFD with a Dynamic
// List window of w graphs, optionally with skip events, named the way the
// paper's figures name it ("Local LFD (w) + Skip Events").
func LocalLFD(w int, skip bool) PolicySpec {
	name := fmt.Sprintf("Local LFD (%d)", w)
	if skip {
		name += " + Skip Events"
	}
	return PolicySpec{
		Name: name,
		Key:  fmt.Sprintf("locallfd:%d", w),
		New:  func() (policy.Policy, error) { return policy.NewLocalLFD(w) },
		Skip: skip,
	}
}

// Spec declares a scenario grid: the cross product of its four axes.
type Spec struct {
	Workloads []Workload
	RUs       []int
	Latencies []simtime.Time
	Policies  []PolicySpec

	// LatencyFor, when non-nil, supplies per-task latencies (heterogeneous
	// configurations), overriding the Latencies axis values in the
	// manager; the axis still names the scenarios.
	LatencyFor func(taskgraph.TaskID) simtime.Time
	// NoBaseline skips the zero-latency ideal run and the derived
	// Summary; Result.Run alone is populated. Use when the report only
	// needs raw counters.
	NoBaseline bool
	// RecordTrace retains full execution traces on results.
	RecordTrace bool
	// Shard restricts execution to one deterministic slice of the grid
	// (see Shard); the zero value runs everything. Expansion, spec
	// indices and config hashes are shard-independent.
	Shard Shard
}

// Size returns the number of scenarios the Spec expands to.
func (s Spec) Size() int {
	return len(s.Workloads) * len(s.RUs) * len(s.Latencies) * len(s.Policies)
}

// validate checks the axes are usable and free of duplicates. A repeated
// axis value would expand to two scenarios with the same config hash —
// the same simulation run twice and, with a result store attached, two
// writers racing on one key — so it is rejected with a pointed error
// instead of silently doubling the work.
func (s Spec) validate() error {
	if err := s.Shard.validate(); err != nil {
		return err
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("sweep: no workloads")
	}
	for i, w := range s.Workloads {
		if len(w.Seq) == 0 {
			return fmt.Errorf("sweep: workload %d (%q) has an empty sequence", i, w.Label)
		}
		for j := range s.Workloads[:i] {
			if sameWorkload(&s.Workloads[j], &s.Workloads[i]) {
				return fmt.Errorf("sweep: workloads %d and %d are duplicates (label %q) — every scenario of one would rerun the other's", j, i, w.Label)
			}
		}
	}
	if len(s.RUs) == 0 {
		return fmt.Errorf("sweep: no RU counts")
	}
	seenRU := make(map[int]int, len(s.RUs))
	for i, r := range s.RUs {
		if r < 1 {
			return fmt.Errorf("sweep: bad RU count %d", r)
		}
		if j, dup := seenRU[r]; dup {
			return fmt.Errorf("sweep: duplicate RU count %d at axis positions %d and %d", r, j, i)
		}
		seenRU[r] = i
	}
	if len(s.Latencies) == 0 {
		return fmt.Errorf("sweep: no latencies")
	}
	seenLat := make(map[simtime.Time]int, len(s.Latencies))
	for i, l := range s.Latencies {
		if j, dup := seenLat[l]; dup {
			return fmt.Errorf("sweep: duplicate latency %v at axis positions %d and %d", l, j, i)
		}
		seenLat[l] = i
	}
	if len(s.Policies) == 0 {
		return fmt.Errorf("sweep: no policies")
	}
	seenPol := make(map[policyIdentity]int, len(s.Policies))
	for i, p := range s.Policies {
		if p.New == nil {
			return fmt.Errorf("sweep: policy %d (%q) has no constructor", i, p.Name)
		}
		id := p.identity()
		if j, dup := seenPol[id]; dup {
			return fmt.Errorf("sweep: policies %d and %d (%q) are duplicates — same policy and feature flags", j, i, p.Name)
		}
		seenPol[id] = i
	}
	return nil
}

// policyIdentity is the comparable tuple that makes two policy axis
// values the same scenario: the canonical key (falling back to the
// display name for hand-built specs) plus every feature flag.
type policyIdentity struct {
	key, name                string
	skip, prefetch, conserve bool
}

func (p PolicySpec) identity() policyIdentity {
	key := p.Key
	if key == "" {
		key = "name:" + p.Name
	}
	return policyIdentity{
		key: key, name: p.Name,
		skip: p.Skip, prefetch: p.CrossGraphPrefetch, conserve: p.ConservativePrefetch,
	}
}

// sameWorkload reports whether two workloads would simulate identically:
// same label, same pool templates and same arrival sequence (by template
// identity, which is what mobility tables and the manager key on).
func sameWorkload(a, b *Workload) bool {
	if a.Label != b.Label || len(a.Pool) != len(b.Pool) || len(a.Seq) != len(b.Seq) {
		return false
	}
	for i := range a.Pool {
		if a.Pool[i] != b.Pool[i] {
			return false
		}
	}
	for i := range a.Seq {
		if a.Seq[i] != b.Seq[i] {
			return false
		}
	}
	return true
}

// Scenario is one fully-specified simulation drawn from a Spec. The
// index fields locate it on each axis; Index is its position in spec
// order (workloads outermost, policies innermost).
type Scenario struct {
	Index                                     int
	WorkloadIdx, RUIdx, LatencyIdx, PolicyIdx int

	Workload *Workload
	RUs      int
	Latency  simtime.Time
	Policy   PolicySpec
}

// Name renders a stable human-readable scenario identifier.
func (sc Scenario) Name() string {
	s := sc.Policy.Name
	if sc.Workload.Label != "" {
		s = sc.Workload.Label + " " + s
	}
	return fmt.Sprintf("%s R=%d latency=%v", s, sc.RUs, sc.Latency)
}

// Expand flattens the grid into scenarios in spec order.
func (s *Spec) Expand() ([]Scenario, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	out := make([]Scenario, 0, s.Size())
	for wi := range s.Workloads {
		for ri, r := range s.RUs {
			for li, lat := range s.Latencies {
				for pi, p := range s.Policies {
					out = append(out, Scenario{
						Index:       len(out),
						WorkloadIdx: wi, RUIdx: ri, LatencyIdx: li, PolicyIdx: pi,
						Workload: &s.Workloads[wi],
						RUs:      r,
						Latency:  lat,
						Policy:   p,
					})
				}
			}
		}
	}
	return out, nil
}

// Result is one executed scenario.
type Result struct {
	Scenario Scenario
	// Elapsed is the measured wall time of simulating this scenario's own
	// run (excluding the shared ideal baseline and design-time phase, and
	// zero when the result was served from a store). The executor persists
	// it with store entries so warm re-runs can dispatch on measured cost
	// instead of the static heuristic; it never reaches a report.
	Elapsed time.Duration
	// Run is the raw simulation outcome.
	Run *manager.Result
	// Ideal is the shared zero-latency baseline for the scenario's
	// (workload, RUs); nil when Spec.NoBaseline is set.
	Ideal *manager.Result
	// Summary carries the paper's metrics; nil when Spec.NoBaseline is
	// set.
	Summary *metrics.Summary

	// stored records that the result store acknowledged this result — a
	// store serve, or a live run whose write-back Put succeeded. The
	// Checkpointer advances its resume position only over stored results:
	// a checkpoint may never skip past a scenario the store cannot serve
	// to the next attempt.
	stored bool
}

// ResultSet is a completed sweep: results in spec order plus axis-indexed
// access. Sharded sweeps produce partial sets (only the shard's results,
// still in spec order) on which At is invalid.
type ResultSet struct {
	Spec    *Spec
	Results []*Result
}

// At returns the result at the given axis indices.
func (rs *ResultSet) At(workload, ru, latency, policy int) *Result {
	nr, nl, np := len(rs.Spec.RUs), len(rs.Spec.Latencies), len(rs.Spec.Policies)
	return rs.Results[((workload*nr+ru)*nl+latency)*np+policy]
}

// Summaries collects the metric summaries in spec order (nil entries when
// the sweep ran without baselines).
func (rs *ResultSet) Summaries() []*metrics.Summary {
	out := make([]*metrics.Summary, len(rs.Results))
	for i, r := range rs.Results {
		out[i] = r.Summary
	}
	return out
}
