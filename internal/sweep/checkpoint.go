package sweep

import (
	"encoding/json"
	"time"
)

// CheckpointSchema identifies the checkpoint record layout. Bump it
// whenever Checkpoint's meaning changes; old records then read as
// absent and the participant simply starts cold — a checkpoint is an
// optimisation, never a correctness input.
const CheckpointSchema = 1

// Checkpoint is the resumable state of one campaign participant — a
// shard populate or a merge render. It is small by construction: the
// executor retains only a bounded reorder window and the renderer only
// the current row block, so "where to resume" compresses to a pair of
// counters. Records persist in the pool's coordination backend (see
// coord.CheckpointStore) keyed by participant, guarded by the campaign
// fingerprint so state from a different grid can never be resumed.
type Checkpoint struct {
	Schema int `json:"schema"`
	// Fingerprint is the campaign fingerprint the record belongs to —
	// the same grid identity the coordinator vets at Open.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Collected counts the contiguous prefix of the shard's owned
	// positions whose results the store acknowledged (served from it, or
	// written back successfully). A resumed attempt skips exactly these.
	Collected int `json:"collected,omitempty"`
	// Rows counts renderer rows emitted when the checkpointed collector
	// renders (zero for populate-only shards).
	Rows int `json:"rows,omitempty"`
	// Offset counts report bytes already written by a merge render; a
	// resumed merge re-renders from the store and suppresses exactly
	// this prefix (see campaign.CheckpointedWriter).
	Offset int64 `json:"offset,omitempty"`
	// SavedAtNS timestamps the save, for operators inspecting a pool.
	SavedAtNS int64 `json:"saved_at_ns,omitempty"`
}

// Encode serializes the record, stamping the schema.
func (c *Checkpoint) Encode() []byte {
	c.Schema = CheckpointSchema
	data, err := json.Marshal(c)
	if err != nil {
		// Checkpoint has no unserializable fields; keep the signature
		// save-path friendly.
		panic("sweep: encode checkpoint: " + err.Error())
	}
	return data
}

// DecodeCheckpoint parses a checkpoint record, vetting the schema and
// the campaign fingerprint. Damaged, foreign or future records read as
// "no checkpoint": resuming from them would corrupt the campaign,
// starting cold merely repeats work the store will serve anyway.
func DecodeCheckpoint(data []byte, fingerprint string) (*Checkpoint, bool) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil ||
		c.Schema != CheckpointSchema || c.Fingerprint != fingerprint {
		return nil, false
	}
	return &c, true
}

// CheckpointStore persists named checkpoint records. Implemented by
// coord.CheckpointStore over every coordination backend (fs, mem,
// sqlite, http), so checkpoints travel with the pool state — over the
// wire too.
type CheckpointStore interface {
	// LoadCheckpoint returns the raw record under name, or false when
	// none exists or it cannot be read.
	LoadCheckpoint(name string) ([]byte, bool)
	// SaveCheckpoint atomically replaces the record under name.
	SaveCheckpoint(name string, data []byte) error
}

// LoadCheckpoint reads and vets the named record; missing, unreadable,
// damaged and foreign records all read as absent.
func LoadCheckpoint(cks CheckpointStore, name, fingerprint string) (*Checkpoint, bool) {
	data, ok := cks.LoadCheckpoint(name)
	if !ok {
		return nil, false
	}
	return DecodeCheckpoint(data, fingerprint)
}

// Checkpointer wraps a Collector with resume bookkeeping: it counts the
// contiguous prefix of results the store acknowledged and periodically
// persists it, so the next attempt at this shard (after a SIGKILL, a
// lost lease, a host crash) skips straight past the completed spec
// indices instead of re-probing — or worse, re-simulating — them.
//
// Advancement freezes at the first unacknowledged result (failed store
// write, uncacheable sweep, post-cancel straggler): a checkpoint must
// never skip a scenario the store cannot serve to the next attempt.
// Save failures are counted, never fatal — the sweep's correctness does
// not depend on checkpoints existing at all.
type Checkpointer struct {
	// C receives every result, unchanged and in spec order.
	C Collector
	// Store persists the records; Name keys this participant (e.g.
	// "shard-0007/fig9b-grid0"); Fingerprint guards against resuming
	// foreign state.
	Store       CheckpointStore
	Name        string
	Fingerprint string
	// Resume is the prefix already collected before this run (the
	// executor's ResumeSkip); the counter starts there.
	Resume int
	// Stride bounds how many acknowledged results may land between
	// saves when the downstream collector exposes no row boundaries;
	// values ≤ 0 mean 8. When C implements `Rows() int` (the streaming
	// renderers), saves align to row-block boundaries instead.
	Stride int

	collected    int
	rows         int
	frozen       bool
	sinceSave    int
	saves        int
	saveFailures int
	started      bool
}

// Collect passes the result through and advances the checkpoint state.
func (k *Checkpointer) Collect(r *Result) error {
	if !k.started {
		k.started = true
		k.collected = k.Resume
	}
	if err := k.C.Collect(r); err != nil {
		return err
	}
	if k.frozen || !r.stored {
		k.frozen = true
		return nil
	}
	k.collected++
	k.sinceSave++
	if rower, ok := k.C.(interface{ Rows() int }); ok {
		if n := rower.Rows(); n != k.rows {
			k.rows = n
			k.save()
		}
		return nil
	}
	stride := k.Stride
	if stride <= 0 {
		stride = 8
	}
	if k.sinceSave >= stride {
		k.save()
	}
	return nil
}

func (k *Checkpointer) save() {
	k.sinceSave = 0
	cp := Checkpoint{
		Fingerprint: k.Fingerprint,
		Collected:   k.collected,
		Rows:        k.rows,
		SavedAtNS:   time.Now().UnixNano(),
	}
	if err := k.Store.SaveCheckpoint(k.Name, cp.Encode()); err != nil {
		k.saveFailures++
		return
	}
	k.saves++
}

// Flush persists the final state; call it once Collect has returned,
// error or not — on failure the record is exactly what lets the next
// attempt resume past the work that did land.
func (k *Checkpointer) Flush() {
	if !k.started {
		k.collected = k.Resume
	}
	k.save()
}

// Collected reports the acknowledged contiguous prefix, including the
// resumed part.
func (k *Checkpointer) Collected() int {
	if !k.started {
		return k.Resume
	}
	return k.collected
}

// Saves reports how many checkpoint writes succeeded and failed.
func (k *Checkpointer) Saves() (saved, failed int) { return k.saves, k.saveFailures }

// CollectResumable is Collect for a re-leasable shard populate: it
// loads the shard's checkpoint, skips the acknowledged prefix, and
// checkpoints fresh progress as results land, so a worker that dies
// mid-grid costs only the work since the last save — not the shard
// generation. It returns how many owned positions the checkpoint
// skipped. Only collectors that tolerate missing results may ride it
// (the populate path's Discard); renderers must see every row.
func (e Executor) CollectResumable(spec Spec, c Collector, cks CheckpointStore, name, fingerprint string) (int, error) {
	resumed := 0
	if cp, ok := LoadCheckpoint(cks, name, fingerprint); ok {
		resumed = cp.Collected
	}
	if n := spec.Shard.SizeOf(spec.Size()); resumed > n {
		resumed = n
	}
	if resumed < 0 {
		resumed = 0
	}
	e.ResumeSkip = resumed
	k := &Checkpointer{C: c, Store: cks, Name: name, Fingerprint: fingerprint, Resume: resumed}
	err := e.Collect(spec, k)
	k.Flush()
	return resumed, err
}
