package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard selects one deterministic slice of a Spec's expanded scenario
// grid, so N cooperating processes — typically on separate hosts sharing
// one result store — can split a sweep between them and merge through
// the store's content-addressed keys.
//
// The partition is round-robin over spec order: shard i of N owns every
// scenario whose Index ≡ i (mod N). Policies are the innermost axis, so
// consecutive indices differ in policy and each shard receives an even
// mix of cheap and expensive series instead of a contiguous (and
// possibly all-LFD) block. For every Count the shards are pairwise
// disjoint and tile the grid exactly; Expand still returns the full
// grid (spec-order indices and config hashes are shard-independent —
// that is what makes the store merge trivial), and the Executor skips
// the scenarios other shards own.
//
// The zero value means "the whole grid". Count == 1 with Index == 0 is
// equivalent.
type Shard struct {
	// Index identifies this shard, 0 ≤ Index < Count.
	Index int
	// Count is the total number of shards the grid is split across.
	Count int
}

// validate rejects impossible shard coordinates. The zero value is
// valid (unsharded).
func (sh Shard) validate() error {
	if sh.Index == 0 && sh.Count == 0 {
		return nil
	}
	if sh.Count < 1 {
		return fmt.Errorf("sweep: shard count %d < 1", sh.Count)
	}
	if sh.Index < 0 || sh.Index >= sh.Count {
		return fmt.Errorf("sweep: shard index %d outside 0..%d", sh.Index, sh.Count-1)
	}
	return nil
}

// enabled reports whether the shard actually restricts the grid.
func (sh Shard) enabled() bool { return sh.Count > 1 }

// Owns reports whether the scenario at spec index i belongs to this
// shard. Every index belongs to exactly one shard of a given Count.
func (sh Shard) Owns(i int) bool {
	if !sh.enabled() {
		return true
	}
	return i%sh.Count == sh.Index
}

// SizeOf returns how many of n spec-ordered scenarios this shard owns.
func (sh Shard) SizeOf(n int) int {
	if !sh.enabled() {
		return n
	}
	size := n / sh.Count
	if sh.Index < n%sh.Count {
		size++
	}
	return size
}

// String renders the CLI form, "index/count" ("0/1" for the zero value).
func (sh Shard) String() string {
	count := sh.Count
	if count < 1 {
		count = 1
	}
	return fmt.Sprintf("%d/%d", sh.Index, count)
}

// ParseShard parses the CLI shard form "i/N" (e.g. "0/2" for the first
// of two shards). Errors name the -shard flag both CLIs expose and say
// which part of the value is wrong, so a typo on one host of a
// multi-host sweep is diagnosable from the message alone.
func ParseShard(s string) (Shard, error) {
	idx, count, ok := strings.Cut(strings.TrimSpace(s), "/")
	if !ok {
		return Shard{}, fmt.Errorf("-shard %q: want \"i/N\" — shard index i of N total shards, e.g. \"0/2\"", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return Shard{}, fmt.Errorf("-shard %q: index %q is not an integer (want \"i/N\", e.g. \"0/2\")", s, strings.TrimSpace(idx))
	}
	n, err := strconv.Atoi(strings.TrimSpace(count))
	if err != nil {
		return Shard{}, fmt.Errorf("-shard %q: shard count %q is not an integer (want \"i/N\", e.g. \"0/2\")", s, strings.TrimSpace(count))
	}
	sh := Shard{Index: i, Count: n}
	// An explicit "0/0" is a request for zero shards, not the unsharded
	// zero value — reject it rather than silently running everything.
	if sh.Count < 1 {
		return Shard{}, fmt.Errorf("-shard %q: shard count must be at least 1, got %d", s, sh.Count)
	}
	if sh.Index < 0 || sh.Index >= sh.Count {
		return Shard{}, fmt.Errorf("-shard %q: index %d outside 0..%d (want 0 ≤ i < N)", s, sh.Index, sh.Count-1)
	}
	return sh, nil
}
