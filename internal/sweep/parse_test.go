package sweep

import "testing"

func TestParseRUs(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"4-10", []int{4, 5, 6, 7, 8, 9, 10}, false},
		{"3-3", []int{3}, false},
		{" 4 - 6 ", []int{4, 5, 6}, false},
		{"3,5,9", []int{3, 5, 9}, false},
		{"7", []int{7}, false},
		{"10-4", nil, true},
		{"0-3", nil, true},
		{"a-b", nil, true},
		{"4,x", nil, true},
		{"", nil, true},
		{"-2", nil, true},
	}
	for _, tt := range cases {
		got, err := ParseRUs(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseRUs(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("ParseRUs(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("ParseRUs(%q) = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}

func TestParsePolicies(t *testing.T) {
	got, err := ParsePolicies("lru, locallfd:2 ,lfd", false)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"LRU", "Local LFD (2)", "LFD"}
	if len(got) != len(want) {
		t.Fatalf("parsed %d policies, want %d", len(got), len(want))
	}
	for i, ps := range got {
		if ps.Name != want[i] {
			t.Errorf("policy %d = %q, want %q", i, ps.Name, want[i])
		}
	}
	skip, err := ParsePolicies("locallfd:1", true)
	if err != nil {
		t.Fatal(err)
	}
	if skip[0].Name != "Local LFD (1) + Skip Events" || !skip[0].Skip {
		t.Errorf("skip parse = %+v", skip[0])
	}
	for _, bad := range []string{"", " , ", "lru,nonsense"} {
		if _, err := ParsePolicies(bad, false); err == nil {
			t.Errorf("ParsePolicies(%q) accepted", bad)
		}
	}
}
