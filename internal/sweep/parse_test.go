package sweep

import (
	"strings"
	"testing"
)

func TestParseRUs(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"4-10", []int{4, 5, 6, 7, 8, 9, 10}, false},
		{"3-3", []int{3}, false},
		{" 4 - 6 ", []int{4, 5, 6}, false},
		{"3,5,9", []int{3, 5, 9}, false},
		{"7", []int{7}, false},
		{"10-4", nil, true},
		{"0-3", nil, true},
		{"a-b", nil, true},
		{"4,x", nil, true},
		{"", nil, true},
		{"-2", nil, true},
	}
	for _, tt := range cases {
		got, err := ParseRUs(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseRUs(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("ParseRUs(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("ParseRUs(%q) = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		in      string
		want    Shard
		wantErr bool
	}{
		{"0/2", Shard{Index: 0, Count: 2}, false},
		{"1/2", Shard{Index: 1, Count: 2}, false},
		{" 3 / 8 ", Shard{Index: 3, Count: 8}, false},
		{"0/1", Shard{Index: 0, Count: 1}, false},
		{"", Shard{}, true},
		{"2", Shard{}, true},
		{"2/2", Shard{}, true},  // index out of range
		{"-1/2", Shard{}, true}, // negative index
		{"0/0", Shard{}, true},  // no shards
		{"a/b", Shard{}, true},
	}
	for _, tt := range cases {
		got, err := ParseShard(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseShard(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
	if s := (Shard{Index: 1, Count: 4}).String(); s != "1/4" {
		t.Errorf("String() = %q, want 1/4", s)
	}
	if s := (Shard{}).String(); s != "0/1" {
		t.Errorf("zero-value String() = %q, want 0/1", s)
	}
}

// TestParseShardErrorMessages pins the operator-facing diagnostics: every
// rejection names the -shard flag, echoes the offending value, says which
// part is wrong, and shows the accepted "i/N" form where the fix isn't
// implied. A typo on one host of a multi-host sweep must be diagnosable
// from the message alone.
func TestParseShardErrorMessages(t *testing.T) {
	cases := []struct {
		in   string
		want []string // every fragment must appear in the error
	}{
		{"", []string{`-shard ""`, `"i/N"`, `"0/2"`}},
		{"3", []string{`-shard "3"`, `"i/N"`, "shard index i of N total shards"}},
		{"a/2", []string{`-shard "a/2"`, `index "a" is not an integer`, `"i/N"`}},
		{"0/x", []string{`-shard "0/x"`, `count "x" is not an integer`, `"i/N"`}},
		{"0/0", []string{`-shard "0/0"`, "count must be at least 1"}},
		{"0/-2", []string{`-shard "0/-2"`, "count must be at least 1"}},
		{"2/2", []string{`-shard "2/2"`, "index 2 outside 0..1", "0 ≤ i < N"}},
		{"-1/2", []string{`-shard "-1/2"`, "index -1 outside 0..1"}},
	}
	for _, tt := range cases {
		_, err := ParseShard(tt.in)
		if err == nil {
			t.Errorf("ParseShard(%q) accepted", tt.in)
			continue
		}
		for _, frag := range tt.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("ParseShard(%q) error %q missing %q", tt.in, err, frag)
			}
		}
	}
}

func TestParsePolicies(t *testing.T) {
	got, err := ParsePolicies("lru, locallfd:2 ,lfd", false)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"LRU", "Local LFD (2)", "LFD"}
	if len(got) != len(want) {
		t.Fatalf("parsed %d policies, want %d", len(got), len(want))
	}
	for i, ps := range got {
		if ps.Name != want[i] {
			t.Errorf("policy %d = %q, want %q", i, ps.Name, want[i])
		}
	}
	skip, err := ParsePolicies("locallfd:1", true)
	if err != nil {
		t.Fatal(err)
	}
	if skip[0].Name != "Local LFD (1) + Skip Events" || !skip[0].Skip {
		t.Errorf("skip parse = %+v", skip[0])
	}
	for _, bad := range []string{"", " , ", "lru,nonsense"} {
		if _, err := ParsePolicies(bad, false); err == nil {
			t.Errorf("ParsePolicies(%q) accepted", bad)
		}
	}
}
