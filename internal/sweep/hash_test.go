package sweep

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// goldenSpec is a small, fully deterministic grid over the paper's Fig. 2
// workload: stable content, every policy constructor, both skip states
// and a no-baseline variant.
func goldenSpec() Spec {
	seq := workload.Fig2Sequence()
	return Spec{
		Workloads: []Workload{{Label: "fig2", Seq: seq}},
		RUs:       []int{4},
		Latencies: []simtime.Time{workload.PaperLatency()},
		Policies: []PolicySpec{
			mustFromSpec("lru", false),
			mustFromSpec("locallfd:1", true),
			mustFromSpec("lfd", false),
		},
	}
}

func mustFromSpec(spec string, skip bool) PolicySpec {
	p, err := FromSpec(spec, skip)
	if err != nil {
		panic(err)
	}
	return p
}

// TestScenarioKeysGolden pins the canonical config hashes for
// representative scenarios. These keys name entries in every persisted
// result store: if this test fails, the hash recipe changed and every
// existing store is silently invalidated (or worse, mis-addressed). That
// may be intentional — then bump resultstore.SchemaVersion, regenerate
// the constants below (the failure message prints the new values) and
// say so in CHANGES.md — but it must never happen by accident.
func TestScenarioKeysGolden(t *testing.T) {
	spec := goldenSpec()
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	// Regenerated for schema v2: the schema version moved out of the key
	// (it governs entry validity in place), so these digests are a pure
	// function of the scenario configuration and stay put across bumps.
	want := []string{
		"93615d8fe32621f46b349d3ee7815a11a9c11a362710b23c94075777b238aecd",
		"145c31232195bc877b30d9d85beafb3cad5da6e10d950a3c8723b416071b33b4",
		"0c3d774368103cf9c36168a779dcb80bd2894bd500f46276e4f0b182c7474151",
	}
	if len(keys) != len(want) {
		t.Fatalf("%d keys for %d scenarios", len(keys), len(want))
	}
	for i, k := range keys {
		if k != want[i] {
			t.Errorf("scenario %d key\n got %s\nwant %s\n(hash inputs changed — bump resultstore.SchemaVersion and regenerate)", i, k, want[i])
		}
	}

	noBase := spec
	noBase.NoBaseline = true
	nbKeys, err := noBase.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	const wantNoBase = "c3e2f658a3f1c110a5aaeb9fcbc1571ff3a992751b009afef47a4b796c2632bb"
	if nbKeys[0] != wantNoBase {
		t.Errorf("no-baseline key\n got %s\nwant %s", nbKeys[0], wantNoBase)
	}
}

// TestScenarioKeysSensitivity checks every declared hash input actually
// moves the hash, and that recomputation is stable.
func TestScenarioKeysSensitivity(t *testing.T) {
	base := goldenSpec()
	baseKeys, err := base.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	recomputed := goldenSpec()
	again, err := recomputed.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseKeys {
		if baseKeys[i] != again[i] {
			t.Fatalf("keys unstable across recomputation at %d", i)
		}
	}
	// All scenarios of one grid are pairwise distinct.
	seen := map[string]bool{}
	for _, k := range baseKeys {
		if seen[k] {
			t.Fatalf("key %s repeats within the grid", k)
		}
		seen[k] = true
	}

	mutations := map[string]func(*Spec){
		"rus":      func(s *Spec) { s.RUs = []int{5} },
		"latency":  func(s *Spec) { s.Latencies = []simtime.Time{simtime.FromMs(8)} },
		"label":    func(s *Spec) { s.Workloads[0].Label = "renamed" },
		"sequence": func(s *Spec) { s.Workloads[0].Seq = s.Workloads[0].Seq[:3] },
		"name":     func(s *Spec) { s.Policies[0].Name = "LRU (display)" },
		"skip":     func(s *Spec) { s.Policies[0].Skip = true },
		"prefetch": func(s *Spec) { s.Policies[0].CrossGraphPrefetch = true },
		"conserve": func(s *Spec) { s.Policies[0].ConservativePrefetch = true },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			spec := goldenSpec()
			mutate(&spec)
			keys, err := spec.ScenarioKeys()
			if err != nil {
				t.Fatal(err)
			}
			if keys[0] == baseKeys[0] {
				t.Errorf("mutating %s left the scenario key unchanged", name)
			}
		})
	}
}

// TestCacheable enumerates the uncacheable spec shapes.
func TestCacheable(t *testing.T) {
	ok := goldenSpec()
	if err := ok.Cacheable(); err != nil {
		t.Errorf("golden spec uncacheable: %v", err)
	}
	traced := goldenSpec()
	traced.RecordTrace = true
	if err := traced.Cacheable(); err == nil {
		t.Error("trace-recording spec reported cacheable")
	}
	het := goldenSpec()
	het.LatencyFor = func(taskgraph.TaskID) simtime.Time { return 0 }
	if err := het.Cacheable(); err == nil {
		t.Error("per-task-latency spec reported cacheable")
	}
	nokey := goldenSpec()
	nokey.Policies[0].Key = ""
	if err := nokey.Cacheable(); err == nil {
		t.Error("keyless policy spec reported cacheable")
	}
}
