package sweep

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// goldenSpec is a small, fully deterministic grid over the paper's Fig. 2
// workload: stable content, every policy constructor, both skip states
// and a no-baseline variant.
func goldenSpec() Spec {
	seq := workload.Fig2Sequence()
	return Spec{
		Workloads: []Workload{{Label: "fig2", Seq: seq}},
		RUs:       []int{4},
		Latencies: []simtime.Time{workload.PaperLatency()},
		Policies: []PolicySpec{
			mustFromSpec("lru", false),
			mustFromSpec("locallfd:1", true),
			mustFromSpec("lfd", false),
		},
	}
}

func mustFromSpec(spec string, skip bool) PolicySpec {
	p, err := FromSpec(spec, skip)
	if err != nil {
		panic(err)
	}
	return p
}

// TestScenarioKeysGolden pins the canonical config hashes for
// representative scenarios. These keys name entries in every persisted
// result store: if this test fails, the hash recipe changed and every
// existing store is silently invalidated (or worse, mis-addressed). That
// may be intentional — then bump resultstore.SchemaVersion, regenerate
// the constants below (the failure message prints the new values) and
// say so in CHANGES.md — but it must never happen by accident.
func TestScenarioKeysGolden(t *testing.T) {
	spec := goldenSpec()
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"9ee050cfc3347e5200c9ba4d3d2580a06ff55cedba55ab96399d15e53407a74b",
		"0680b70f9df92e3bc8ce118468d5f5da260cace0b4d2d4c71ea85f7a33df21a0",
		"9538aca6a156bdec65a62e477ce8ade3d2310bfaa248ce996a686cbc3ed09e1b",
	}
	if len(keys) != len(want) {
		t.Fatalf("%d keys for %d scenarios", len(keys), len(want))
	}
	for i, k := range keys {
		if k != want[i] {
			t.Errorf("scenario %d key\n got %s\nwant %s\n(hash inputs changed — bump resultstore.SchemaVersion and regenerate)", i, k, want[i])
		}
	}

	noBase := spec
	noBase.NoBaseline = true
	nbKeys, err := noBase.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	const wantNoBase = "6e4b9166b787cbd3909f4def0df1fd68e8c293ef2f8af491aa2d46427a7eae9f"
	if nbKeys[0] != wantNoBase {
		t.Errorf("no-baseline key\n got %s\nwant %s", nbKeys[0], wantNoBase)
	}
}

// TestScenarioKeysSensitivity checks every declared hash input actually
// moves the hash, and that recomputation is stable.
func TestScenarioKeysSensitivity(t *testing.T) {
	base := goldenSpec()
	baseKeys, err := base.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	recomputed := goldenSpec()
	again, err := recomputed.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseKeys {
		if baseKeys[i] != again[i] {
			t.Fatalf("keys unstable across recomputation at %d", i)
		}
	}
	// All scenarios of one grid are pairwise distinct.
	seen := map[string]bool{}
	for _, k := range baseKeys {
		if seen[k] {
			t.Fatalf("key %s repeats within the grid", k)
		}
		seen[k] = true
	}

	mutations := map[string]func(*Spec){
		"rus":      func(s *Spec) { s.RUs = []int{5} },
		"latency":  func(s *Spec) { s.Latencies = []simtime.Time{simtime.FromMs(8)} },
		"label":    func(s *Spec) { s.Workloads[0].Label = "renamed" },
		"sequence": func(s *Spec) { s.Workloads[0].Seq = s.Workloads[0].Seq[:3] },
		"name":     func(s *Spec) { s.Policies[0].Name = "LRU (display)" },
		"skip":     func(s *Spec) { s.Policies[0].Skip = true },
		"prefetch": func(s *Spec) { s.Policies[0].CrossGraphPrefetch = true },
		"conserve": func(s *Spec) { s.Policies[0].ConservativePrefetch = true },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			spec := goldenSpec()
			mutate(&spec)
			keys, err := spec.ScenarioKeys()
			if err != nil {
				t.Fatal(err)
			}
			if keys[0] == baseKeys[0] {
				t.Errorf("mutating %s left the scenario key unchanged", name)
			}
		})
	}
}

// TestCacheable enumerates the uncacheable spec shapes.
func TestCacheable(t *testing.T) {
	ok := goldenSpec()
	if err := ok.Cacheable(); err != nil {
		t.Errorf("golden spec uncacheable: %v", err)
	}
	traced := goldenSpec()
	traced.RecordTrace = true
	if err := traced.Cacheable(); err == nil {
		t.Error("trace-recording spec reported cacheable")
	}
	het := goldenSpec()
	het.LatencyFor = func(taskgraph.TaskID) simtime.Time { return 0 }
	if err := het.Cacheable(); err == nil {
		t.Error("per-task-latency spec reported cacheable")
	}
	nokey := goldenSpec()
	nokey.Policies[0].Key = ""
	if err := nokey.Cacheable(); err == nil {
		t.Error("keyless policy spec reported cacheable")
	}
}
