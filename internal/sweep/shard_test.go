package sweep

import (
	"reflect"
	"strings"
	"testing"
)

// TestShardPartitionProperty pins the sharding contract for every Count
// in 1..8 over grids whose size is and is not a multiple of the count:
// the shards are pairwise disjoint, tile the full index space exactly,
// and SizeOf agrees with Owns.
func TestShardPartitionProperty(t *testing.T) {
	for _, n := range []int{1, 7, 8, 28, 29, 100} {
		for count := 1; count <= 8; count++ {
			owner := make([]int, n)
			for i := range owner {
				owner[i] = -1
			}
			total := 0
			for idx := 0; idx < count; idx++ {
				sh := Shard{Index: idx, Count: count}
				size := 0
				for i := 0; i < n; i++ {
					if !sh.Owns(i) {
						continue
					}
					if owner[i] != -1 {
						t.Fatalf("n=%d count=%d: index %d owned by shards %d and %d", n, count, i, owner[i], idx)
					}
					owner[i] = idx
					size++
				}
				if got := sh.SizeOf(n); got != size {
					t.Errorf("n=%d shard %d/%d: SizeOf = %d, Owns counted %d", n, idx, count, got, size)
				}
				total += size
			}
			if total != n {
				t.Errorf("n=%d count=%d: shards cover %d indices, want %d", n, count, total, n)
			}
			for i, o := range owner {
				if o == -1 {
					t.Fatalf("n=%d count=%d: index %d unowned", n, count, i)
				}
			}
		}
	}
}

// TestShardedExecutionTilesGrid runs every shard of a real spec through
// the executor and checks the union of collected scenarios is exactly
// the full grid, each slice in spec order.
func TestShardedExecutionTilesGrid(t *testing.T) {
	spec := fig9Spec(t, 4, 5)
	full, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 3, 5} {
		seen := make(map[int]bool, spec.Size())
		for idx := 0; idx < count; idx++ {
			sh := spec
			sh.Shard = Shard{Index: idx, Count: count}
			rs, err := Executor{Workers: 4}.Run(sh)
			if err != nil {
				t.Fatal(err)
			}
			last := -1
			for _, r := range rs.Results {
				i := r.Scenario.Index
				if i <= last {
					t.Errorf("count=%d shard %d: results not in spec order (%d after %d)", count, idx, i, last)
				}
				last = i
				if seen[i] {
					t.Errorf("count=%d: scenario %d ran on two shards", count, i)
				}
				seen[i] = true
				if !reflect.DeepEqual(r.Summary, full.Results[i].Summary) {
					t.Errorf("count=%d scenario %d: sharded summary diverged from full run", count, i)
				}
			}
			if len(rs.Results) != sh.Shard.SizeOf(spec.Size()) {
				t.Errorf("count=%d shard %d: %d results, SizeOf says %d",
					count, idx, len(rs.Results), sh.Shard.SizeOf(spec.Size()))
			}
		}
		if len(seen) != spec.Size() {
			t.Errorf("count=%d: shards ran %d of %d scenarios", count, len(seen), spec.Size())
		}
	}
}

// TestShardValidation: impossible shard coordinates fail the sweep
// before anything runs.
func TestShardValidation(t *testing.T) {
	for name, sh := range map[string]Shard{
		"index==count":    {Index: 2, Count: 2},
		"negative index":  {Index: -1, Count: 2},
		"negative count":  {Index: 0, Count: -1},
		"index w/o count": {Index: 1, Count: 0},
	} {
		spec := fig9Spec(t, 4)
		spec.Shard = sh
		if _, err := spec.Expand(); err == nil {
			t.Errorf("%s: shard %+v accepted", name, sh)
		}
	}
}

// TestShardedStoreMerge is the merge pin at the executor level: N shard
// runs into one store followed by a RequireStored full sweep must serve
// everything from disk and match a direct run field for field.
func TestShardedStoreMerge(t *testing.T) {
	spec := fig9Spec(t, 4, 5)
	store := openStore(t)
	const count = 3
	for idx := 0; idx < count; idx++ {
		sh := spec
		sh.Shard = Shard{Index: idx, Count: count}
		if err := (Executor{Workers: 4, Store: store}).Collect(sh, Discard); err != nil {
			t.Fatalf("shard %d/%d: %v", idx, count, err)
		}
	}
	_, _, puts := store.Stats()
	if puts != int64(spec.Size()) {
		t.Fatalf("shards wrote %d entries, grid has %d scenarios", puts, spec.Size())
	}

	merged, err := Executor{Workers: 4, Store: store, RequireStored: true}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, putsAfter := store.Stats(); putsAfter != puts {
		t.Errorf("merge run wrote %d new entries — it re-simulated", putsAfter-puts)
	}
	direct, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Results) != len(direct.Results) {
		t.Fatalf("merged %d results, direct %d", len(merged.Results), len(direct.Results))
	}
	for i := range direct.Results {
		if !reflect.DeepEqual(merged.Results[i].Summary, direct.Results[i].Summary) {
			t.Errorf("scenario %d: merged summary diverged from direct run", i)
		}
	}
}

// TestRequireStoredMissFails: merge mode must error on a scenario no
// shard populated, never silently re-simulate it.
func TestRequireStoredMissFails(t *testing.T) {
	spec := fig9Spec(t, 4)
	store := openStore(t)
	// Populate only shard 0 of 2, then demand the whole grid.
	sh := spec
	sh.Shard = Shard{Index: 0, Count: 2}
	if err := (Executor{Store: store}).Collect(sh, Discard); err != nil {
		t.Fatal(err)
	}
	_, err := Executor{Store: store, RequireStored: true}.Run(spec)
	if err == nil {
		t.Fatal("merge over a half-populated store succeeded")
	}
	if !strings.Contains(err.Error(), "not in result store") {
		t.Errorf("error %q does not name the missing entry", err)
	}
	if _, _, puts := store.Stats(); puts != int64(sh.Shard.SizeOf(spec.Size())) {
		t.Errorf("merge wrote entries despite RequireStored")
	}

	// RequireStored without a store is a usage error.
	if _, err := (Executor{RequireStored: true}).Run(spec); err == nil {
		t.Error("RequireStored without a store accepted")
	}
}
