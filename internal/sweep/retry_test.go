package sweep

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/resultstore"
)

// flakySpec is a single-scenario cacheable spec whose policy fails the
// first `fails` constructions and succeeds afterwards — the canonical
// "transient infrastructure error" a retry budget exists for.
func flakySpec(t testing.TB, fails int) Spec {
	t.Helper()
	spec := fig9Spec(t, 4)
	calls := 0
	spec.Policies = []PolicySpec{{
		Name: "flaky", Key: "flaky",
		New: func() (policy.Policy, error) {
			calls++
			if calls <= fails {
				return nil, fmt.Errorf("boom %d", calls)
			}
			return policy.NewLRU(), nil
		},
	}}
	return spec
}

// TestRetryRecordsAttempts is the tentpole acceptance pin: a scenario
// scripted to fail twice and then succeed completes the sweep within a
// budget of 3, and the store entry records attempts=3 plus the last
// retried error. The backoff schedule is captured through the test
// sleep seam — two sleeps, each jittered over [d/2, 3d/2) of the
// doubled 100ms default base.
func TestRetryRecordsAttempts(t *testing.T) {
	spec := flakySpec(t, 2)
	store := resultstore.OpenMem()
	var delays []time.Duration
	ex := Executor{Workers: 1, Store: store, MaxScenarioRetries: 3}
	ex.retrySleep = func(d time.Duration, stop <-chan struct{}) bool {
		delays = append(delays, d)
		return true
	}
	if err := ex.Collect(spec, Discard); err != nil {
		t.Fatal(err)
	}

	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := store.Get(keys[0])
	if !ok {
		t.Fatal("retried scenario missing from store")
	}
	if ent.Attempts != 3 {
		t.Fatalf("entry attempts = %d, want 3", ent.Attempts)
	}
	if want := "boom 2"; ent.LastError != want {
		t.Fatalf("entry last_error = %q, want %q", ent.LastError, want)
	}
	if ent.RetriedAtNS == 0 {
		t.Fatal("entry retried_at_ns unset on a retried scenario")
	}

	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2 (one per retry)", len(delays))
	}
	for i, base := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		if delays[i] < base/2 || delays[i] >= base*3/2 {
			t.Errorf("retry %d slept %v, want jitter in [%v, %v)", i+1, delays[i], base/2, base*3/2)
		}
	}
}

// TestRetryCleanEntryAttempts reports attempts=1 and no error metadata
// for scenarios that never needed a retry, budget or not.
func TestRetryCleanEntryAttempts(t *testing.T) {
	spec := flakySpec(t, 0)
	store := resultstore.OpenMem()
	ex := Executor{Workers: 1, Store: store, MaxScenarioRetries: 3}
	if err := ex.Collect(spec, Discard); err != nil {
		t.Fatal(err)
	}
	keys, _ := spec.ScenarioKeys()
	ent, ok := store.Get(keys[0])
	if !ok {
		t.Fatal("scenario missing from store")
	}
	if ent.Attempts != 1 || ent.LastError != "" || ent.RetriedAtNS != 0 {
		t.Fatalf("clean entry has retry metadata: attempts=%d last_error=%q retried_at_ns=%d",
			ent.Attempts, ent.LastError, ent.RetriedAtNS)
	}
}

// TestRetryExhaustion: a budget of 2 yields 3 attempts, then the final
// error wrapped with the attempt count; a zero budget fails on the
// first error with the classic unwrapped message.
func TestRetryExhaustion(t *testing.T) {
	spec := flakySpec(t, 1_000_000)
	ex := Executor{Workers: 1, MaxScenarioRetries: 2}
	ex.retrySleep = func(time.Duration, <-chan struct{}) bool { return true }
	err := ex.Collect(spec, Discard)
	if err == nil {
		t.Fatal("exhausted retry budget did not fail the sweep")
	}
	if !strings.Contains(err.Error(), "after 3 attempts:") || !strings.Contains(err.Error(), "boom 3") {
		t.Fatalf("exhaustion error = %q, want attempt-count wrap of the final failure", err)
	}

	ex0 := Executor{Workers: 1}
	err = ex0.Collect(flakySpec(t, 1_000_000), Discard)
	if err == nil {
		t.Fatal("zero-budget sweep with failing scenario succeeded")
	}
	if strings.Contains(err.Error(), "attempts") {
		t.Fatalf("zero-budget error %q mentions attempts; the classic message must be unchanged", err)
	}
}

// TestRetryCancelledDuringBackoff: a sweep cancelled while a scenario
// waits out its backoff aborts the wait and surfaces both facts.
func TestRetryCancelledDuringBackoff(t *testing.T) {
	spec := flakySpec(t, 1_000_000)
	ex := Executor{Workers: 1, MaxScenarioRetries: 5}
	ex.retrySleep = func(time.Duration, <-chan struct{}) bool { return false }
	err := ex.Collect(spec, Discard)
	if err == nil {
		t.Fatal("cancelled backoff did not fail the sweep")
	}
	if !strings.Contains(err.Error(), "cancelled while backing off from:") ||
		!strings.Contains(err.Error(), "boom 1") {
		t.Fatalf("cancellation error = %q, want the backoff abort wrapping the scenario failure", err)
	}
}

// TestRetryBackoffSchedule pins the delay function itself: doubling
// from the base per prior failure, the 30s cap, and the jitter window.
func TestRetryBackoffSchedule(t *testing.T) {
	cases := []struct {
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{0, 1, 100 * time.Millisecond}, // default base
		{0, 2, 200 * time.Millisecond},
		{0, 3, 400 * time.Millisecond},
		{time.Second, 1, time.Second},
		{time.Second, 4, 8 * time.Second},
		{time.Minute, 1, maxRetryBackoff}, // base above the cap
		{time.Second, 30, maxRetryBackoff},
	}
	for _, c := range cases {
		for i := 0; i < 32; i++ { // jitter is random; sample the window
			d := retryBackoff(c.base, c.attempt)
			if d < c.want/2 || d >= c.want*3/2 {
				t.Fatalf("retryBackoff(%v, %d) = %v, want jitter in [%v, %v)",
					c.base, c.attempt, d, c.want/2, c.want*3/2)
			}
		}
	}
}
