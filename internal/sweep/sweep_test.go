package sweep

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

func fig9Spec(t testing.TB, rus ...int) Spec {
	t.Helper()
	pool := workload.Multimedia()
	feed, err := dynlist.RandomSequence(pool, 60, rand.New(rand.NewSource(2011)))
	if err != nil {
		t.Fatal(err)
	}
	items := feed.Remaining()
	seq := make([]*taskgraph.Graph, len(items))
	for i, it := range items {
		seq[i] = it.Graph
	}
	return Spec{
		Workloads: []Workload{{Pool: pool, Seq: seq}},
		RUs:       rus,
		Latencies: []simtime.Time{workload.PaperLatency()},
		Policies: []PolicySpec{
			Fixed("LRU", policy.NewLRU()),
			LocalLFD(1, false),
			LocalLFD(1, true),
			Fixed("LFD", policy.NewLFD()),
		},
	}
}

func TestExpandOrderAndIndexing(t *testing.T) {
	spec := fig9Spec(t, 4, 5, 6)
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != spec.Size() {
		t.Fatalf("expanded %d scenarios, Size() says %d", len(scenarios), spec.Size())
	}
	// Spec order: workloads, RUs, latencies, policies — policies innermost.
	want := 0
	for wi := range spec.Workloads {
		for ri, r := range spec.RUs {
			for li := range spec.Latencies {
				for pi, p := range spec.Policies {
					sc := scenarios[want]
					if sc.Index != want {
						t.Fatalf("scenario %d has Index %d", want, sc.Index)
					}
					if sc.WorkloadIdx != wi || sc.RUIdx != ri || sc.LatencyIdx != li || sc.PolicyIdx != pi {
						t.Fatalf("scenario %d axis indices = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
							want, sc.WorkloadIdx, sc.RUIdx, sc.LatencyIdx, sc.PolicyIdx, wi, ri, li, pi)
					}
					if sc.RUs != r || sc.Policy.Name != p.Name {
						t.Fatalf("scenario %d = R%d %q, want R%d %q", want, sc.RUs, sc.Policy.Name, r, p.Name)
					}
					want++
				}
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	base := fig9Spec(t, 4)
	for name, breakIt := range map[string]func(*Spec){
		"no workloads": func(s *Spec) { s.Workloads = nil },
		"empty seq":    func(s *Spec) { s.Workloads = []Workload{{}} },
		"no rus":       func(s *Spec) { s.RUs = nil },
		"bad ru":       func(s *Spec) { s.RUs = []int{0} },
		"no latencies": func(s *Spec) { s.Latencies = nil },
		"no policies":  func(s *Spec) { s.Policies = nil },
		"nil ctor":     func(s *Spec) { s.Policies = []PolicySpec{{Name: "broken"}} },
	} {
		s := base
		breakIt(&s)
		if _, err := (Executor{}).Run(s); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
}

// TestParallelMatchesSequential is the executor-level determinism check:
// a pool of 8 workers must produce exactly the results of the sequential
// path, in the same order. Run under -race this also exercises the shared
// ideal-baseline and mobility caches for data races.
func TestParallelMatchesSequential(t *testing.T) {
	spec := fig9Spec(t, 4, 5, 6)
	seqRS, err := Executor{Workers: 1}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	parRS, err := Executor{Workers: 8}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRS.Results) != len(parRS.Results) {
		t.Fatalf("sequential %d results, parallel %d", len(seqRS.Results), len(parRS.Results))
	}
	for i := range seqRS.Results {
		s, p := seqRS.Results[i], parRS.Results[i]
		if s.Scenario.Name() != p.Scenario.Name() {
			t.Fatalf("result %d: scenario %q vs %q", i, s.Scenario.Name(), p.Scenario.Name())
		}
		if !reflect.DeepEqual(s.Summary, p.Summary) {
			t.Errorf("result %d (%s): summary diverged:\nseq: %+v\npar: %+v",
				i, s.Scenario.Name(), s.Summary, p.Summary)
		}
		if s.Run.Makespan != p.Run.Makespan || s.Run.Reused != p.Run.Reused ||
			s.Run.Loads != p.Run.Loads || s.Run.Skips != p.Run.Skips {
			t.Errorf("result %d (%s): raw counters diverged", i, s.Scenario.Name())
		}
	}
}

func TestSharedBaselinesAndSummaries(t *testing.T) {
	spec := fig9Spec(t, 4, 5)
	rs, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One ideal instance per (workload, RUs), shared across the policy axis.
	for ri := range spec.RUs {
		first := rs.At(0, ri, 0, 0)
		for pi := 1; pi < len(spec.Policies); pi++ {
			r := rs.At(0, ri, 0, pi)
			if r.Ideal != first.Ideal {
				t.Errorf("R=%d policy %d: ideal baseline not shared", spec.RUs[ri], pi)
			}
		}
	}
	// Summaries carry the axis values and display names.
	r := rs.At(0, 1, 0, 2)
	if r.Summary.PolicyName != "Local LFD (1) + Skip Events" || r.Summary.RUs != 5 {
		t.Errorf("At(0,1,0,2) = %q R=%d, want skip series at R=5", r.Summary.PolicyName, r.Summary.RUs)
	}
	if got := rs.Summaries(); len(got) != spec.Size() || got[0] != rs.Results[0].Summary {
		t.Error("Summaries() does not mirror spec order")
	}
	// Skip events actually fired at the contended point (mobility tables
	// were wired through).
	if skips := rs.At(0, 0, 0, 2).Run.Skips; skips == 0 {
		t.Error("skip-events scenario recorded no skips at R=4 — mobility tables missing")
	}
}

func TestFirstErrorCancels(t *testing.T) {
	spec := fig9Spec(t, 4)
	boom := fmt.Errorf("boom")
	spec.Policies = []PolicySpec{
		Fixed("LRU", policy.NewLRU()),
		{Name: "broken", New: func() (policy.Policy, error) { return nil, boom }},
		Fixed("LFD", policy.NewLFD()),
	}
	_, err := Executor{Workers: 4}.Run(spec)
	if err == nil {
		t.Fatal("sweep with failing scenario succeeded")
	}
	want := `sweep: scenario 1 (broken R=4 latency=4 ms): boom`
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
}

func TestNoBaseline(t *testing.T) {
	spec := fig9Spec(t, 4)
	spec.NoBaseline = true
	rs, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs.Results {
		if r.Run == nil {
			t.Fatalf("result %d: no run", i)
		}
		if r.Ideal != nil || r.Summary != nil {
			t.Fatalf("result %d: baseline populated despite NoBaseline", i)
		}
	}
}

func TestWorkloadTemplatesDerivedFromSeq(t *testing.T) {
	pool := workload.Multimedia()
	w := Workload{Seq: []*taskgraph.Graph{pool[0], pool[1], pool[0]}}
	got := w.templates()
	if len(got) != 2 || got[0] != pool[0] || got[1] != pool[1] {
		t.Errorf("templates() = %v, want distinct templates in first-appearance order", got)
	}
}

func TestFromSpec(t *testing.T) {
	ps, err := FromSpec("locallfd:2", true)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Name != "Local LFD (2) + Skip Events" || !ps.Skip {
		t.Errorf("FromSpec = %+v", ps)
	}
	p1, err := ps.New()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := ps.New()
	if p1 == p2 {
		t.Error("FromSpec.New returned a shared instance")
	}
	if _, err := FromSpec("nonsense", false); err == nil {
		t.Error("bad specifier accepted")
	}
}
