package sweep

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/policy"
)

// TestRunSummariesMatchesRun: the streaming summary path must agree with
// the full ResultSet row for row — same order, same summaries, same
// scalar counters.
func TestRunSummariesMatchesRun(t *testing.T) {
	spec := fig9Spec(t, 4, 5)
	rs, err := Executor{Workers: 4}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Executor{Workers: 4}.RunSummaries(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Rows) != len(rs.Results) {
		t.Fatalf("%d rows for %d results", len(ss.Rows), len(rs.Results))
	}
	for i, row := range ss.Rows {
		res := rs.Results[i]
		if row.Scenario.Index != i || row.Scenario.Name() != res.Scenario.Name() {
			t.Errorf("row %d: scenario %q at index %d", i, row.Scenario.Name(), row.Scenario.Index)
		}
		if !reflect.DeepEqual(row.Summary, res.Summary) {
			t.Errorf("row %d (%s): summary diverged", i, row.Scenario.Name())
		}
		want := countersOf(res.Run)
		if row.Counters != want {
			t.Errorf("row %d (%s): counters = %+v, want %+v", i, row.Scenario.Name(), row.Counters, want)
		}
	}
	// Axis indexing mirrors ResultSet.At.
	if a, b := ss.At(0, 1, 0, 2), rs.At(0, 1, 0, 2); !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Error("SummarySet.At does not mirror ResultSet.At")
	}
}

// TestCollectStreamsInSpecOrder: whatever the completion order on a wide
// pool, the collector sees one call per scenario, in spec order, and can
// rely on single-goroutine delivery (no locking in this collector).
func TestCollectStreamsInSpecOrder(t *testing.T) {
	spec := fig9Spec(t, 4, 5, 6)
	next := 0
	err := Executor{Workers: 8}.Collect(spec, CollectorFunc(func(r *Result) error {
		if r.Scenario.Index != next {
			t.Fatalf("collected scenario %d, want %d", r.Scenario.Index, next)
		}
		next++
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if next != spec.Size() {
		t.Fatalf("collected %d of %d scenarios", next, spec.Size())
	}
}

// TestCollectorErrorCancels: a collector error aborts the sweep with a
// pointed error and no further Collect calls.
func TestCollectorErrorCancels(t *testing.T) {
	spec := fig9Spec(t, 4, 5)
	boom := fmt.Errorf("disk full")
	calls := 0
	err := Executor{Workers: 4}.Collect(spec, CollectorFunc(func(r *Result) error {
		calls++
		if r.Scenario.Index == 2 {
			return boom
		}
		return nil
	}))
	if err == nil {
		t.Fatal("collector error swallowed")
	}
	want := fmt.Sprintf("sweep: collect scenario 2 (%s): disk full", mustScenarioName(t, spec, 2))
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
	if calls != 3 {
		t.Errorf("collector called %d times after failing on the third", calls)
	}
}

// TestCollectorErrorNotDisplacedByStraggler: when a collector error
// cancels the sweep, a scenario error straggling in from a worker that
// was already in flight must not displace it — the caller debugs the
// cancellation's actual cause.
func TestCollectorErrorNotDisplacedByStraggler(t *testing.T) {
	spec := fig9Spec(t, 4)
	release := make(chan struct{})
	spec.Policies = []PolicySpec{
		spec.Policies[0], // completes first; its collection fails the sweep
		{Name: "late-boom", Key: "late-boom", New: func() (policy.Policy, error) {
			<-release // errors only once the sweep is already cancelled
			return nil, fmt.Errorf("straggler failure")
		}},
		spec.Policies[3],
	}
	boom := fmt.Errorf("collector sink full")
	ex := Executor{Workers: 2, SpecOrderDispatch: true}
	ex.onCancel = func() { close(release) }
	err := ex.Collect(spec, CollectorFunc(func(*Result) error { return boom }))
	if err == nil {
		t.Fatal("failing sweep succeeded")
	}
	want := fmt.Sprintf("sweep: collect scenario 0 (%s): collector sink full", mustScenarioName(t, spec, 0))
	if err.Error() != want {
		t.Errorf("error = %q, want the collector error %q", err, want)
	}
}

func mustScenarioName(t *testing.T, spec Spec, i int) string {
	t.Helper()
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return scenarios[i].Name()
}

// TestCollectBoundedReorderWindow pins the streaming memory guarantee:
// however large the grid, the executor never holds more dispatched-but-
// uncollected scenarios than the reorder window — O(workers), not
// O(grid). This is the CI memory-regression gate for SummaryCollector
// sweeps.
func TestCollectBoundedReorderWindow(t *testing.T) {
	rus := make([]int, 0, 17)
	for r := 4; r <= 20; r++ {
		rus = append(rus, r)
	}
	spec := fig9Spec(t, rus...) // 17 × 4 = 68 scenarios, well past the window
	const workers = 2
	window := reorderWindow(workers)
	if spec.Size() <= window {
		t.Fatalf("grid of %d does not exceed the window of %d — test proves nothing", spec.Size(), window)
	}
	maxPending := 0
	ex := Executor{Workers: workers}
	ex.observePending = func(n int) {
		if n > maxPending {
			maxPending = n
		}
	}
	var c SummaryCollector
	if err := ex.Collect(spec, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != spec.Size() {
		t.Fatalf("collected %d of %d", len(c.Rows), spec.Size())
	}
	if maxPending == 0 {
		t.Fatal("observePending never fired")
	}
	if maxPending > window {
		t.Errorf("held %d uncollected scenarios, window is %d — memory is not O(workers)", maxPending, window)
	}
}

// TestRowRendererBlocks is the pure grouping pin: Sizes sequencing with
// last-size repeat, block indices, Close's ragged-grid error and the
// MaxHeld bookkeeping, driven by synthetic results (no simulator).
func TestRowRendererBlocks(t *testing.T) {
	feed := func(rr *RowRenderer, n int) error {
		for i := 0; i < n; i++ {
			if err := rr.Collect(&Result{Scenario: Scenario{Index: i}}); err != nil {
				return err
			}
		}
		return nil
	}

	var got [][]int
	rr := &RowRenderer{
		Sizes: []int{2, 3, 1},
		Emit: func(i int, rows []SummaryRow) error {
			if i != len(got) {
				t.Fatalf("block index %d, want %d", i, len(got))
			}
			idxs := make([]int, len(rows))
			for j, r := range rows {
				idxs[j] = r.Scenario.Index
			}
			got = append(got, idxs)
			return nil
		},
	}
	// 2 + 3 + 1 + 1 (the last size repeats) = 7 scenarios, 4 blocks.
	if err := feed(rr, 7); err != nil {
		t.Fatal(err)
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2, 3, 4}, {5}, {6}}
	for i := range want {
		if len(got) <= i || len(got[i]) != len(want[i]) {
			t.Fatalf("blocks = %v, want shapes of %v", got, want)
		}
	}
	if rr.Rows() != 4 {
		t.Errorf("Rows() = %d, want 4", rr.Rows())
	}
	if rr.MaxHeld() != 3 {
		t.Errorf("MaxHeld() = %d, want 3 (the largest block)", rr.MaxHeld())
	}

	ragged := &RowRenderer{Sizes: []int{3}, Emit: func(int, []SummaryRow) error { return nil }}
	if err := feed(ragged, 4); err != nil {
		t.Fatal(err)
	}
	if err := ragged.Close(); err == nil {
		t.Error("Close accepted a stream that ended mid-row")
	}

	emitErr := &RowRenderer{Emit: func(int, []SummaryRow) error { return fmt.Errorf("sink full") }}
	if err := emitErr.Collect(&Result{}); err == nil {
		t.Error("Emit error swallowed")
	}

	bad := &RowRenderer{Sizes: []int{0}, Emit: func(int, []SummaryRow) error { return nil }}
	if err := bad.Collect(&Result{}); err == nil {
		t.Error("non-positive block size accepted")
	}
}

// TestRowRendererBoundedRetention is the renderer half of the streaming
// memory gate: on a grid far larger than one report row, a RowRenderer
// buffers at most one block — O(1) rows, never O(grid) — while emitting
// rows whose contents match the O(grid) SummaryCollector path exactly.
func TestRowRendererBoundedRetention(t *testing.T) {
	rus := make([]int, 0, 17)
	for r := 4; r <= 20; r++ {
		rus = append(rus, r)
	}
	spec := fig9Spec(t, rus...) // 17 × 4 = 68 scenarios
	group := len(spec.Policies)

	var rows []SummaryRow
	rr := &RowRenderer{
		Sizes: []int{group},
		Emit: func(i int, block []SummaryRow) error {
			rows = append(rows, append([]SummaryRow(nil), block...)...)
			return nil
		},
	}
	if err := (Executor{Workers: 4}).Collect(spec, rr); err != nil {
		t.Fatal(err)
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
	if rr.Rows() != spec.Size()/group {
		t.Errorf("emitted %d rows, grid has %d", rr.Rows(), spec.Size()/group)
	}
	if rr.MaxHeld() != group {
		t.Errorf("renderer held %d rows at peak, want exactly one block of %d — retention is not O(1) rows", rr.MaxHeld(), group)
	}
	ss, err := Executor{Workers: 4}.RunSummaries(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ss.Rows) {
		t.Fatalf("renderer streamed %d scenarios, SummaryCollector %d", len(rows), len(ss.Rows))
	}
	for i := range rows {
		a, b := &rows[i], &ss.Rows[i]
		if a.Scenario.Name() != b.Scenario.Name() || a.Counters != b.Counters || !reflect.DeepEqual(a.Summary, b.Summary) {
			t.Errorf("row %d: renderer diverged from SummaryCollector", i)
		}
	}
}

// TestEstimatedCostOrdering sanity-checks the dispatch heuristic: the
// LFD family outweighs the O(1) policies, wider windows outweigh
// narrower ones, and fewer units mean more work. (Only dispatch order —
// never results — depends on these.)
func TestEstimatedCostOrdering(t *testing.T) {
	spec := fig9Spec(t, 4, 10)
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cost := func(policyName string, rus int) float64 {
		for i := range scenarios {
			if scenarios[i].Policy.Name == policyName && scenarios[i].RUs == rus {
				return estimatedCost(&scenarios[i])
			}
		}
		t.Fatalf("no scenario %q R=%d", policyName, rus)
		return 0
	}
	lfd4, lru4 := cost("LFD", 4), cost("LRU", 4)
	if lfd4 <= lru4 {
		t.Errorf("LFD cost %v not above LRU %v at R=4", lfd4, lru4)
	}
	if local := cost("Local LFD (1)", 4); local <= lru4 || local >= lfd4 {
		t.Errorf("Local LFD (1) cost %v not between LRU %v and LFD %v", local, lru4, lfd4)
	}
	if lfd10 := cost("LFD", 10); lfd10 >= lfd4 {
		t.Errorf("LFD at R=10 cost %v not below R=4 %v", lfd10, lfd4)
	}
	if w4 := policyCostWeight(LocalLFD(4, false)); w4 <= policyCostWeight(LocalLFD(1, false)) {
		t.Errorf("window 4 weight %v not above window 1", w4)
	}
}

// TestCostOrderDispatchesStragglerFirst pins the heavy-tail fix where a
// one-core host's wall clock cannot: on a descending-RU grid the most
// contended LFD scenario (the ~20× straggler) has the highest spec
// index, and spec order would start it last. Cost-order dispatch must
// hand it to the pool first — and with SpecOrderDispatch set, must not.
func TestCostOrderDispatchesStragglerFirst(t *testing.T) {
	spec := fig9Spec(t, 10, 8, 6, 4) // descending: the expensive R=4 block last
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	straggler := -1
	for i := range scenarios {
		if scenarios[i].Policy.Name == "LFD" && scenarios[i].RUs == 4 {
			straggler = i
		}
	}
	if straggler < spec.Size()-2 {
		t.Fatalf("grid layout changed: LFD R=4 at index %d of %d", straggler, spec.Size())
	}
	order := dispatchOrder(t, Executor{Workers: 1}, spec)
	if order[0] != straggler {
		t.Errorf("cost order dispatched scenario %d (%s) first, want the straggler %d (%s)",
			order[0], scenarios[order[0]].Name(), straggler, scenarios[straggler].Name())
	}
	fifo := dispatchOrder(t, Executor{Workers: 1, SpecOrderDispatch: true}, spec)
	for i, got := range fifo {
		if got != i {
			t.Fatalf("spec-order dispatch ran scenario %d at step %d", got, i)
		}
	}
}

func dispatchOrder(t *testing.T, ex Executor, spec Spec) []int {
	t.Helper()
	var order []int
	ex.observeDispatch = func(i int) { order = append(order, i) }
	if err := ex.Collect(spec, Discard); err != nil {
		t.Fatal(err)
	}
	if len(order) != spec.Size() {
		t.Fatalf("dispatched %d of %d scenarios", len(order), spec.Size())
	}
	return order
}

// TestSpecOrderDispatchIdentical: the dispatch strategy must never reach
// the results — cost-order and spec-order runs are interchangeable.
func TestSpecOrderDispatchIdentical(t *testing.T) {
	spec := fig9Spec(t, 4, 5)
	lpt, err := Executor{Workers: 4}.RunSummaries(spec)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := Executor{Workers: 4, SpecOrderDispatch: true}.RunSummaries(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(lpt.Rows) != len(fifo.Rows) {
		t.Fatalf("cost-order collected %d rows, spec-order %d", len(lpt.Rows), len(fifo.Rows))
	}
	for i := range lpt.Rows {
		a, b := &lpt.Rows[i], &fifo.Rows[i]
		if a.Scenario.Name() != b.Scenario.Name() || a.Counters != b.Counters ||
			!reflect.DeepEqual(a.Summary, b.Summary) {
			t.Errorf("row %d: dispatch order changed the collected result", i)
		}
	}
}
