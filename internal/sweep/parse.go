package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRUs parses a CLI unit-count axis: a single count ("4"), an
// inclusive range ("4-10"), or a comma list ("3,4,6").
func ParseRUs(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if from, to, ok := strings.Cut(s, "-"); ok {
		lo, err1 := strconv.Atoi(strings.TrimSpace(from))
		hi, err2 := strconv.Atoi(strings.TrimSpace(to))
		if err1 != nil || err2 != nil || lo < 1 || hi < lo {
			return nil, fmt.Errorf("sweep: bad RU range %q", s)
		}
		out := make([]int, 0, hi-lo+1)
		for r := lo; r <= hi; r++ {
			out = append(out, r)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r < 1 {
			return nil, fmt.Errorf("sweep: bad RU count %q", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty RU list %q", s)
	}
	return out, nil
}

// ParsePolicies parses a comma-separated list of policy specifiers
// ("lru,locallfd:1,lfd") into the policy axis, applying skip to each.
func ParsePolicies(s string, skip bool) ([]PolicySpec, error) {
	var out []PolicySpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ps, err := FromSpec(part, skip)
		if err != nil {
			return nil, err
		}
		out = append(out, ps)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty policy list %q", s)
	}
	return out, nil
}
