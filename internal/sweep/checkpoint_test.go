package sweep

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/policy"
	"repro/internal/resultstore"
)

// memCheckpoints is an in-test CheckpointStore; failSaves > 0 makes the
// next saves fail, pinning that checkpoints are an optimisation the
// sweep never depends on.
type memCheckpoints struct {
	m         map[string][]byte
	failSaves int
}

func newMemCheckpoints() *memCheckpoints { return &memCheckpoints{m: make(map[string][]byte)} }

func (m *memCheckpoints) LoadCheckpoint(name string) ([]byte, bool) {
	d, ok := m.m[name]
	return d, ok
}

func (m *memCheckpoints) SaveCheckpoint(name string, data []byte) error {
	if m.failSaves > 0 {
		m.failSaves--
		return fmt.Errorf("memCheckpoints: injected save failure")
	}
	m.m[name] = append([]byte(nil), data...)
	return nil
}

func TestCheckpointDecodeVetting(t *testing.T) {
	cp := Checkpoint{Fingerprint: "fp", Collected: 7, Rows: 2, Offset: 99}
	data := cp.Encode()
	got, ok := DecodeCheckpoint(data, "fp")
	if !ok {
		t.Fatal("round-trip decode failed")
	}
	if got.Collected != 7 || got.Rows != 2 || got.Offset != 99 || got.Schema != CheckpointSchema {
		t.Fatalf("decoded %+v, want the encoded fields back", got)
	}
	if _, ok := DecodeCheckpoint(data, "other-campaign"); ok {
		t.Fatal("foreign fingerprint accepted")
	}
	if _, ok := DecodeCheckpoint([]byte(`{"schema":99,"fingerprint":"fp"}`), "fp"); ok {
		t.Fatal("future schema accepted")
	}
	if _, ok := DecodeCheckpoint([]byte(`{torn`), "fp"); ok {
		t.Fatal("damaged record accepted")
	}
}

// TestCheckpointerFreezesOnUnstored: the acknowledged prefix advances
// over stored results only and freezes permanently at the first result
// the store did not acknowledge — later stored stragglers must not
// punch holes a resume would skip over.
func TestCheckpointerFreezesOnUnstored(t *testing.T) {
	cks := newMemCheckpoints()
	k := &Checkpointer{C: Discard, Store: cks, Name: "shard-0000/t", Fingerprint: "fp", Stride: 2}
	feed := []bool{true, true, true, false, true, true}
	for _, stored := range feed {
		if err := k.Collect(&Result{stored: stored}); err != nil {
			t.Fatal(err)
		}
	}
	if k.Collected() != 3 {
		t.Fatalf("Collected() = %d after freeze, want 3", k.Collected())
	}
	k.Flush()
	if saved, failed := k.Saves(); saved < 2 || failed != 0 {
		t.Fatalf("saves = %d/%d failed, want ≥2 (stride + flush) and none failed", saved, failed)
	}
	cp, ok := LoadCheckpoint(cks, "shard-0000/t", "fp")
	if !ok || cp.Collected != 3 {
		t.Fatalf("persisted checkpoint = %+v (ok=%v), want Collected 3", cp, ok)
	}
}

// rowingCollector exposes renderer-style row boundaries: one row per
// two results.
type rowingCollector struct{ n int }

func (r *rowingCollector) Collect(*Result) error { r.n++; return nil }
func (r *rowingCollector) Rows() int             { return r.n / 2 }

// TestCheckpointerRowBoundarySaves: when the downstream collector
// renders, saves align to completed row blocks, not the stride.
func TestCheckpointerRowBoundarySaves(t *testing.T) {
	cks := newMemCheckpoints()
	k := &Checkpointer{C: &rowingCollector{}, Store: cks, Name: "merge/t", Fingerprint: "fp", Stride: 1}
	for i := 0; i < 5; i++ {
		if err := k.Collect(&Result{stored: true}); err != nil {
			t.Fatal(err)
		}
	}
	if saved, _ := k.Saves(); saved != 2 {
		t.Fatalf("saves = %d after 5 results at 2 results/row, want 2 (row boundaries only)", saved)
	}
	cp, ok := LoadCheckpoint(cks, "merge/t", "fp")
	if !ok || cp.Rows != 2 || cp.Collected != 4 {
		t.Fatalf("persisted checkpoint = %+v (ok=%v), want Rows 2, Collected 4", cp, ok)
	}
}

// TestCheckpointerSaveFailuresTolerated: a backend that refuses the
// checkpoint write costs resumability, never the sweep.
func TestCheckpointerSaveFailuresTolerated(t *testing.T) {
	cks := newMemCheckpoints()
	cks.failSaves = 100
	k := &Checkpointer{C: Discard, Store: cks, Name: "t", Fingerprint: "fp", Stride: 1}
	for i := 0; i < 4; i++ {
		if err := k.Collect(&Result{stored: true}); err != nil {
			t.Fatal(err)
		}
	}
	k.Flush()
	if saved, failed := k.Saves(); saved != 0 || failed != 5 {
		t.Fatalf("saves = %d/%d failed, want 0 saved and 5 failed", saved, failed)
	}
}

// resumableSpec is a three-scenario spec (policies LRU, mid, LFD over
// one RU) whose middle policy is built by mid — the injection point for
// a mid-sweep death.
func resumableSpec(t testing.TB, mid func() (policy.Policy, error)) Spec {
	t.Helper()
	spec := fig9Spec(t, 4)
	spec.Policies = []PolicySpec{
		Fixed("LRU", policy.NewLRU()),
		{Name: "mid", Key: "mid", New: mid},
		Fixed("LFD", policy.NewLFD()),
	}
	return spec
}

// TestCollectResumableSkipsCompletedPrefix is the tentpole resume pin:
// attempt 1 dies mid-grid (scenario 1 fails), attempt 2 loads the
// checkpoint and resumes past the completed prefix — scenario 0 is
// neither probed nor simulated again, asserted by the dispatch
// observer and a poisoned constructor.
func TestCollectResumableSkipsCompletedPrefix(t *testing.T) {
	store := resultstore.OpenMem()
	cks := newMemCheckpoints()
	const name, fp = "shard-0000/grid0", "fp"

	ex := Executor{Workers: 1, Store: store, SpecOrderDispatch: true}
	spec := resumableSpec(t, func() (policy.Policy, error) {
		return nil, fmt.Errorf("worker died here")
	})
	resumed, err := ex.CollectResumable(spec, Discard, cks, name, fp)
	if err == nil {
		t.Fatal("attempt 1 was scripted to die and did not")
	}
	if resumed != 0 {
		t.Fatalf("attempt 1 resumed %d, want 0 (cold start)", resumed)
	}
	cp, ok := LoadCheckpoint(cks, name, fp)
	if !ok || cp.Collected != 1 {
		t.Fatalf("attempt 1 left checkpoint %+v (ok=%v), want Collected 1", cp, ok)
	}

	// Attempt 2: the mid scenario now works; the completed scenario 0
	// must be skipped outright (its constructor panics if dispatched).
	spec2 := resumableSpec(t, func() (policy.Policy, error) { return policy.NewLRU(), nil })
	spec2.Policies[0].New = func() (policy.Policy, error) {
		panic("resumed attempt re-dispatched a checkpointed scenario")
	}
	var dispatched []int
	ex2 := Executor{Workers: 1, Store: store, SpecOrderDispatch: true}
	ex2.observeDispatch = func(i int) { dispatched = append(dispatched, i) }
	resumed, err = ex2.CollectResumable(spec2, Discard, cks, name, fp)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("attempt 2 resumed %d, want 1", resumed)
	}
	sort.Ints(dispatched)
	if want := []int{1, 2}; !reflect.DeepEqual(dispatched, want) {
		t.Fatalf("attempt 2 dispatched %v, want %v (prefix skipped)", dispatched, want)
	}
	if cp, ok := LoadCheckpoint(cks, name, fp); !ok || cp.Collected != 3 {
		t.Fatalf("attempt 2 left checkpoint %+v (ok=%v), want Collected 3", cp, ok)
	}

	// Attempt 3: everything checkpointed — nothing runs at all.
	spec3 := resumableSpec(t, nil)
	for i := range spec3.Policies {
		spec3.Policies[i].New = func() (policy.Policy, error) {
			panic("fully-resumed attempt dispatched a scenario")
		}
	}
	resumed, err = (Executor{Workers: 1, Store: store}).CollectResumable(spec3, Discard, cks, name, fp)
	if err != nil || resumed != 3 {
		t.Fatalf("attempt 3 resumed %d (err %v), want 3 and nil", resumed, err)
	}
}

// TestCollectResumableVetsCheckpoints: foreign-fingerprint records are
// ignored and absurd collected counts clamp to the shard's size.
func TestCollectResumableVetsCheckpoints(t *testing.T) {
	store := resultstore.OpenMem()
	cks := newMemCheckpoints()
	const name = "shard-0000/grid0"

	foreign := Checkpoint{Fingerprint: "other-campaign", Collected: 3}
	if err := cks.SaveCheckpoint(name, foreign.Encode()); err != nil {
		t.Fatal(err)
	}
	spec := resumableSpec(t, func() (policy.Policy, error) { return policy.NewLRU(), nil })
	resumed, err := (Executor{Workers: 1, Store: store}).CollectResumable(spec, Discard, cks, name, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("foreign checkpoint resumed %d scenarios, want 0", resumed)
	}

	huge := Checkpoint{Fingerprint: "fp", Collected: 1 << 20}
	if err := cks.SaveCheckpoint(name, huge.Encode()); err != nil {
		t.Fatal(err)
	}
	spec2 := resumableSpec(t, nil)
	for i := range spec2.Policies {
		spec2.Policies[i].New = func() (policy.Policy, error) {
			panic("clamped resume dispatched a scenario")
		}
	}
	resumed, err = (Executor{Workers: 1, Store: store}).CollectResumable(spec2, Discard, cks, name, "fp")
	if err != nil || resumed != 3 {
		t.Fatalf("oversized checkpoint resumed %d (err %v), want clamp to the 3 owned scenarios", resumed, err)
	}
}
