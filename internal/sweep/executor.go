package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/policy"
	"repro/internal/resultstore"
	"repro/internal/taskgraph"
)

// Executor runs the scenarios of a Spec on a bounded worker pool.
//
// Results are collected in spec order regardless of completion order, and
// every shared input is computed once per sweep: the zero-latency ideal
// baseline once per (workload, RUs) — with the LRU policy, exactly as the
// paper's figures do — and the design-time mobility tables once per
// (template, RUs, latency) through the process-wide mobility cache. The
// first scenario error cancels the remaining work.
//
// With a Store attached, every scenario's canonical config hash is looked
// up before it is dispatched to the pool: hits are served from disk
// (neither the simulation nor its ideal baseline reruns) and misses are
// written back on completion. Stored results carry the exact counters,
// completions and summary of a live run, so a warm sweep's ResultSet is
// byte-identical in every report to a cold one. Specs the store cannot
// identify canonically (see Spec.Cacheable) bypass it transparently.
type Executor struct {
	// Workers bounds the number of concurrently running scenarios; values
	// ≤ 0 mean runtime.GOMAXPROCS(0). Workers == 1 is the sequential
	// execution the determinism tests compare against.
	Workers int
	// Store, when non-nil, persists scenario results keyed by canonical
	// config hash and serves overlapping re-runs from disk.
	Store *resultstore.Store
}

// Run executes every scenario of spec and returns the results in spec
// order. On error it reports the failing scenario with the smallest spec
// index among those that failed before cancellation took effect.
func Run(spec Spec) (*ResultSet, error) { return Executor{}.Run(spec) }

// Run executes the sweep. See the type comment for the sharing and
// ordering guarantees.
func (e Executor) Run(spec Spec) (*ResultSet, error) {
	sp := spec
	scenarios, err := sp.Expand()
	if err != nil {
		return nil, err
	}
	// Canonical config hashes, precomputed once per sweep (the workload
	// content hash dominates and is shared by every scenario of an axis
	// value). An uncacheable spec bypasses the store; a duplicate-hash
	// grid is a real error even though Expand's structural check passed.
	var keys []string
	if e.Store != nil && sp.Cacheable() == nil {
		ks, err := sp.scenarioKeysFor(scenarios)
		if err != nil {
			return nil, err
		}
		keys = ks
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	ideals := newIdealCache(&sp)
	results := make([]*Result, len(scenarios))
	errs := make([]error, len(scenarios))

	jobs := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var key string
				if keys != nil {
					key = keys[i]
				}
				res, err := e.runStored(&sp, scenarios[i], ideals, key)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range scenarios {
		select {
		case jobs <- i:
		case <-stop:
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %d (%s): %w", i, scenarios[i].Name(), err)
		}
	}
	return &ResultSet{Spec: &sp, Results: results}, nil
}

// runStored serves one scenario from the result store when possible and
// simulates (then writes back) otherwise. key is empty when the sweep
// runs without a store.
func (e Executor) runStored(sp *Spec, sc Scenario, ideals *idealCache, key string) (*Result, error) {
	if key != "" {
		if ent, ok := e.Store.Get(key); ok {
			if res := resultFromEntry(sp, sc, ent); res != nil {
				return res, nil
			}
		}
	}
	res, err := runScenario(sp, sc, ideals)
	if err != nil || key == "" {
		return res, err
	}
	ent := &resultstore.Entry{
		Scenario: sc.Name(),
		Run:      resultstore.RecordRun(res.Run),
		Ideal:    resultstore.RecordRun(res.Ideal),
		Summary:  res.Summary,
	}
	// A failed write (full disk, read-only store) must not lose the
	// computed sweep: the store degrades to re-simulation next run and
	// reports the failure in its summary line.
	_ = e.Store.Put(key, ent)
	return res, nil
}

// resultFromEntry rebuilds a scenario result from a store entry, or
// returns nil when the entry lacks a part this sweep needs (only possible
// for a hand-damaged store — the baseline flag is part of the key).
func resultFromEntry(sp *Spec, sc Scenario, ent *resultstore.Entry) *Result {
	res := &Result{Scenario: sc, Run: ent.Run.Result()}
	if sp.NoBaseline {
		return res
	}
	if ent.Ideal == nil || ent.Summary == nil {
		return nil
	}
	res.Ideal = ent.Ideal.Result()
	sum := *ent.Summary
	res.Summary = &sum
	return res
}

// runScenario simulates one scenario: fresh policy instance, shared
// mobility tables, shared ideal baseline, summary.
func runScenario(sp *Spec, sc Scenario, ideals *idealCache) (*Result, error) {
	pol, err := sc.Policy.New()
	if err != nil {
		return nil, err
	}
	cfg := manager.Config{
		RUs:                  sc.RUs,
		Latency:              sc.Latency,
		LatencyFor:           sp.LatencyFor,
		Policy:               pol,
		SkipEvents:           sc.Policy.Skip,
		CrossGraphPrefetch:   sc.Policy.CrossGraphPrefetch,
		ConservativePrefetch: sc.Policy.ConservativePrefetch,
		RecordTrace:          sp.RecordTrace,
	}
	if sc.Policy.Skip {
		lookup, _, err := mobility.CachedAll(sc.Workload.templates(), sc.RUs, sc.Latency)
		if err != nil {
			return nil, fmt.Errorf("design-time phase: %w", err)
		}
		cfg.Mobility = lookup
	}
	run, err := manager.Run(cfg, dynlist.NewSequence(sc.Workload.Seq...))
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: sc, Run: run}
	if sp.NoBaseline {
		return res, nil
	}
	ideal, err := ideals.get(sc.WorkloadIdx, sc.RUs)
	if err != nil {
		return nil, fmt.Errorf("ideal baseline: %w", err)
	}
	sum, err := metrics.Summarize(sc.Policy.Name, sc.RUs, sc.Latency, run, ideal)
	if err != nil {
		return nil, err
	}
	res.Ideal = ideal
	res.Summary = sum
	return res, nil
}

// templates returns the workload's template pool, deriving the distinct
// templates of Seq when Pool was not given.
func (w *Workload) templates() []*taskgraph.Graph {
	if len(w.Pool) > 0 {
		return w.Pool
	}
	seen := make(map[*taskgraph.Graph]bool, 4)
	var out []*taskgraph.Graph
	for _, g := range w.Seq {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// idealCache single-flights the zero-latency baselines shared by every
// scenario of one (workload, RUs) pair.
type idealCache struct {
	sp *Spec
	mu sync.Mutex
	m  map[idealKey]*idealEntry
}

type idealKey struct {
	workload int
	rus      int
}

type idealEntry struct {
	done chan struct{}
	res  *manager.Result
	err  error
}

func newIdealCache(sp *Spec) *idealCache {
	return &idealCache{sp: sp, m: make(map[idealKey]*idealEntry)}
}

func (c *idealCache) get(workload, rus int) (*manager.Result, error) {
	key := idealKey{workload: workload, rus: rus}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &idealEntry{done: make(chan struct{})}
		c.m[key] = e
		c.mu.Unlock()
		e.res, e.err = manager.Run(manager.Config{
			RUs: rus, Latency: 0, Policy: policy.NewLRU(),
		}, dynlist.NewSequence(c.sp.Workloads[workload].Seq...))
		close(e.done)
		return e.res, e.err
	}
	c.mu.Unlock()
	<-e.done
	return e.res, e.err
}
