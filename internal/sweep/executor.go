package sweep

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/policy"
	"repro/internal/resultstore"
	"repro/internal/taskgraph"
)

// Executor runs the scenarios of a Spec on a bounded worker pool and
// streams the results, in spec order, into a Collector.
//
// Results are collected in spec order regardless of completion order, and
// every shared input is computed once per sweep: the zero-latency ideal
// baseline once per (workload, RUs) — with the LRU policy, exactly as the
// paper's figures do — and the design-time mobility tables once per
// (template, RUs, latency) through the process-wide mobility cache. The
// first scenario error cancels the remaining work.
//
// Scenarios are dispatched to the pool in descending estimated cost
// (longest-processing-time order) rather than spec order: an LFD-family
// scenario at a low unit count costs an order of magnitude more than LRU
// at a high one, and feeding it last would leave the pool idle behind a
// single straggler. With a Store attached, the estimate prefers the
// measured wall time a previous run recorded with each entry (served by
// ElapsedHint across schema versions, so even the full re-simulation
// after a schema bump dispatches on real measurements); scenarios never
// simulated before are predicted by a per-policy-family linear cost
// model fitted over those measurements and updated live as completions
// land (see internal/costmodel and costCalibrator), so even never-seen
// grid points rank on calibrated estimates. Collection stays in spec order either way, held to a
// bounded reorder window so a sweep never buffers more than O(workers)
// completed results — the property that lets SummaryCollector sweeps run
// grids far larger than memory would hold as ResultSets. The memory
// bound and the cost-order look-ahead are the same knob: dispatch may
// reorder only within the window (in-order collection could otherwise
// buffer the whole grid), so on grids larger than the window the
// expensive scenarios are front-run within each window's reach rather
// than globally — a straggler at the grid's far end still starts up to
// a window early, with the remaining cheap scenarios backfilling behind
// it. Policies are the innermost axis, so any window wider than the
// policy axis sees every policy family at once and the worst imbalance
// (cheap and dear series interleaved) is fully reordered.
//
// With a Store attached, every scenario's canonical config hash is looked
// up before it runs: hits are served from disk (neither the simulation
// nor its ideal baseline reruns) and misses are written back on
// completion — unless the sweep has already failed, in which case no
// further entries are persisted (a cancelled sweep must never silently
// populate the store with the scenarios that happened to finish). Stored
// results carry the exact counters, completions and summary of a live
// run, so a warm sweep is byte-identical in every report to a cold one.
// Specs the store cannot identify canonically (see Spec.Cacheable)
// bypass it transparently.
//
// With Spec.Shard set, only the shard's slice of the grid runs; config
// hashes and spec order are shard-independent, so N shard runs into one
// shared store tile the grid exactly and a later store-only sweep (see
// RequireStored) merges them into the full report.
type Executor struct {
	// Workers bounds the number of concurrently running scenarios; values
	// ≤ 0 mean runtime.GOMAXPROCS(0). Workers == 1 is the sequential
	// execution the determinism tests compare against.
	Workers int
	// Store, when non-nil, persists scenario results keyed by canonical
	// config hash and serves overlapping re-runs from disk.
	Store *resultstore.Store
	// RequireStored turns a store miss on a cacheable scenario into an
	// error instead of a re-simulation: the merge mode after sharded
	// populate runs, where silently re-simulating would paper over a
	// shard that never ran. Uncacheable specs (which can never be in the
	// store) still run live. Requires Store.
	RequireStored bool
	// StoreWait softens RequireStored from "missing now means failed"
	// into "missing now means not stored yet": a cacheable scenario
	// absent from the store is awaited — polled via Store.Probe —
	// until a producer lands it or StoreWait.Done reports no producer
	// ever will. This is the watch-mode merge: it may start before (or
	// while) a coordinator pool populates the store, and each scenario is
	// served the moment its entry appears, so a streaming collector
	// renders rows while remote shards are still running. Requires
	// RequireStored (and therefore Store).
	StoreWait *StoreWait
	// SpecOrderDispatch feeds scenarios to the pool in spec order instead
	// of descending estimated cost. Results are identical either way;
	// this exists for benchmarks comparing the dispatch strategies and
	// as an escape hatch should the cost heuristic ever misjudge a
	// workload badly.
	SpecOrderDispatch bool
	// MaxScenarioRetries is the per-scenario retry budget for live
	// simulation errors: a failing scenario reruns up to this many extra
	// times with jittered exponential backoff before its error fails the
	// sweep, so one flaky scenario no longer burns a whole shard
	// generation. 0 (the default) fails on the first error — the classic
	// behavior. Store misses under RequireStored and store-wait verdicts
	// are never retried: they are coverage facts, not flaky work. The
	// attempt count (and, past the first attempt, the last retried error
	// and retry time) is recorded in the store entry — see
	// resultstore.Entry.Attempts.
	MaxScenarioRetries int
	// RetryBackoff is the base delay before the first retry, doubled per
	// further attempt and jittered over [d/2, 3d/2) so pooled workers
	// retrying a shared flaky dependency do not stampede in lockstep;
	// values ≤ 0 mean 100ms.
	RetryBackoff time.Duration
	// ResumeSkip treats the first N owned positions as already collected
	// (typically loaded from a Checkpoint): they are neither probed,
	// dispatched, nor delivered to the collector. Only meaningful when
	// the collector does not need the skipped results — the sharded
	// populate path's Discard — so prefer CollectResumable, which pairs
	// the skip with the checkpoint bookkeeping that makes it safe.
	ResumeSkip int

	// retrySleep overrides the retry backoff sleep; tests inject it to
	// pin the budget and the backoff schedule without wall-clock waits.
	// It returns false when the sweep was cancelled mid-sleep.
	retrySleep func(d time.Duration, stop <-chan struct{}) bool

	// observePending, when non-nil, receives the number of dispatched-
	// but-uncollected scenarios after every dispatch and completion.
	// Tests use it to pin the O(workers) reorder-window bound.
	observePending func(int)
	// observeDispatch, when non-nil, receives each scenario's spec index
	// as it is handed to a worker. Tests use it to pin the cost-order
	// (LPT) dispatch, which wall clock cannot show on a one-core host.
	observeDispatch func(int)
	// onCancel, when non-nil, runs once immediately after the sweep is
	// cancelled (first error). Tests use it to sequence in-flight
	// workers deterministically against the cancellation.
	onCancel func()
}

// Run executes every scenario of spec and returns the results in spec
// order. On error it reports the failing scenario with the smallest spec
// index among those that failed before cancellation took effect.
func Run(spec Spec) (*ResultSet, error) { return Executor{}.Run(spec) }

// Run executes the sweep and gathers every result into a ResultSet —
// a thin wrapper over Collect with a ResultSetCollector, O(grid) memory.
// With Spec.Shard set the ResultSet holds only the shard's results (in
// spec order); axis indexing via At is then invalid.
func (e Executor) Run(spec Spec) (*ResultSet, error) {
	var c ResultSetCollector
	if err := e.Collect(spec, &c); err != nil {
		return nil, err
	}
	sp := spec
	return &ResultSet{Spec: &sp, Results: c.Results}, nil
}

// reorderWindow bounds how far dispatch may run ahead of in-order
// collection: the executor holds at most this many dispatched-but-
// uncollected scenarios (in flight + buffered completions), so memory
// for raw results is O(workers) with a small floor that keeps cost-order
// dispatch effective on little pools.
func reorderWindow(workers int) int {
	const floor = 32
	if w := 4 * workers; w > floor {
		return w
	}
	return floor
}

// indexedResult carries one completion from a worker back to the
// coordinator. pos indexes the shard's owned list, not the full grid.
type indexedResult struct {
	pos int
	res *Result
	err error
}

// Collect executes the sweep, streaming results into c in spec order.
// See the Executor doc comment for the ordering, sharing, sharding and
// memory guarantees.
func (e Executor) Collect(spec Spec, c Collector) error {
	sp := spec
	scenarios, err := sp.Expand()
	if err != nil {
		return err
	}
	if e.RequireStored && e.Store == nil {
		return fmt.Errorf("sweep: RequireStored without a store")
	}
	if e.StoreWait != nil && !e.RequireStored {
		return fmt.Errorf("sweep: StoreWait without RequireStored (waiting only makes sense for a store-only merge)")
	}
	// Canonical config hashes, precomputed once per sweep (the workload
	// content hash dominates and is shared by every scenario of an axis
	// value). An uncacheable spec bypasses the store; a duplicate-hash
	// grid is a real error even though Expand's structural check passed.
	var keys []string
	if e.Store != nil && sp.Cacheable() == nil {
		ks, err := sp.scenarioKeysFor(scenarios)
		if err != nil {
			return err
		}
		keys = ks
	}
	// The shard's slice of the grid, in spec order. owned[pos] is a spec
	// index; collection order is ascending pos.
	owned := make([]int, 0, sp.Shard.SizeOf(len(scenarios)))
	for i := range scenarios {
		if sp.Shard.Owns(i) {
			owned = append(owned, i)
		}
	}
	if len(owned) == 0 {
		return nil
	}
	// A checkpointed resume: the first skip owned positions were fully
	// collected (and acknowledged by the store) in a previous attempt, so
	// this run starts past them — no probe, no dispatch, no collect.
	skip := e.ResumeSkip
	if skip < 0 {
		skip = 0
	}
	if skip > len(owned) {
		skip = len(owned)
	}
	if skip == len(owned) {
		return nil
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(owned)-skip {
		workers = len(owned) - skip
	}
	window := reorderWindow(workers)

	// Dispatch cost estimates (spec order is free: cost identical ⇒ the
	// earlier position wins the scan below). With a store attached, a
	// scenario whose previous simulation left a measured wall time behind
	// is ranked by that measurement; the rest are predicted by a linear
	// cost model fitted per policy family over the measurements (see
	// internal/costmodel), falling back to the static heuristic only when
	// nothing has ever been measured. The calibrator keeps learning from
	// live completions below, so long sweeps self-calibrate mid-run.
	costs := make([]float64, len(owned))
	var calib *costCalibrator
	if !e.SpecOrderDispatch {
		for p := skip; p < len(owned); p++ {
			costs[p] = estimatedCost(&scenarios[owned[p]])
		}
		if keys != nil {
			calib = newCostCalibrator(e.Store, scenarios, owned, keys, skip)
			calib.apply(costs, nil)
		}
	}

	ideals := newIdealCache(&sp)
	jobs := make(chan int)
	completions := make(chan indexedResult)
	stop := make(chan struct{})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable runner per worker: every scenario this goroutine
			// simulates runs on the same warm memory (manager.Runner reuse
			// is byte-identical to a fresh run).
			runner := manager.NewRunner()
			for p := range jobs {
				i := owned[p]
				var key string
				if keys != nil {
					key = keys[i]
				}
				res, err := e.runStored(&sp, scenarios[i], ideals, runner, key, stop)
				completions <- indexedResult{pos: p, res: res, err: err}
			}
		}()
	}

	// Coordinator: single goroutine interleaving dispatch and in-order
	// collection. Invariant: every dispatched-but-uncollected position
	// lies in [collected, collected+window), so pending + in flight never
	// exceeds the reorder window.
	dispatched := make([]bool, len(owned))
	for p := 0; p < skip; p++ {
		dispatched[p] = true
	}
	var (
		nDispatched = skip
		inFlight    int
		collected   = skip
		pending     = make(map[int]*Result, window)
		cancelled   bool
		firstPos    = -1 // lowest owned position that failed
		firstErr    error
		collectErr  error
	)
	cancel := func() {
		if cancelled {
			return
		}
		cancelled = true
		close(stop)
		if e.onCancel != nil {
			e.onCancel()
		}
	}
	// bestEligible picks the most expensive undispatched position within
	// the reorder window (ties to the lower position — with uniform
	// costs, or SpecOrderDispatch, this degrades to exact spec order).
	bestEligible := func() int {
		lim := collected + window
		if lim > len(owned) {
			lim = len(owned)
		}
		best := -1
		for p := collected; p < lim; p++ {
			if dispatched[p] {
				continue
			}
			if best < 0 || costs[p] > costs[best] {
				best = p
			}
		}
		return best
	}

	for collected < len(owned) {
		if cancelled && inFlight == 0 {
			break
		}
		pick := -1
		if !cancelled && nDispatched < len(owned) {
			pick = bestEligible()
		}
		jobsCh := jobs
		if pick < 0 {
			jobsCh = nil
		}
		select {
		case jobsCh <- pick:
			dispatched[pick] = true
			nDispatched++
			inFlight++
			if e.observeDispatch != nil {
				e.observeDispatch(owned[pick])
			}
			if e.observePending != nil {
				e.observePending(len(pending) + inFlight)
			}
		case done := <-completions:
			inFlight--
			if done.err != nil {
				// A collector error is always the cancellation's cause
				// (collection stops at the first scenario error, so the
				// two never both occur from one cancel) — scenario
				// errors straggling in afterwards must not displace it.
				if collectErr == nil && (firstPos < 0 || done.pos < firstPos) {
					firstPos, firstErr = done.pos, done.err
				}
				cancel()
				continue
			}
			if cancelled {
				continue // the sweep already failed; drop the result
			}
			pending[done.pos] = done.res
			if calib != nil && done.res.Elapsed > 0 {
				// A live simulation just measured itself (store serves have
				// Elapsed == 0 and teach nothing): fold it into the model
				// and re-rank what has not been dispatched yet.
				calib.observe(done.pos, done.res.Elapsed)
				calib.apply(costs, dispatched)
			}
			if e.observePending != nil {
				e.observePending(len(pending) + inFlight)
			}
			for {
				res, ok := pending[collected]
				if !ok {
					break
				}
				delete(pending, collected)
				if err := c.Collect(res); err != nil {
					i := owned[collected]
					collectErr = fmt.Errorf("sweep: collect scenario %d (%s): %w", i, scenarios[i].Name(), err)
					cancel()
					break
				}
				collected++
			}
		}
	}
	// Both loop exits guarantee inFlight == 0: the cancelled exit checks
	// it explicitly, and full collection implies every dispatched
	// scenario was received — in-flight stragglers always drain through
	// the completions case above (never preempted; their results are
	// dropped and, post-cancel, never persisted).
	close(jobs)
	wg.Wait()

	if firstPos >= 0 {
		i := owned[firstPos]
		return fmt.Errorf("sweep: scenario %d (%s): %w", i, scenarios[i].Name(), firstErr)
	}
	return collectErr
}

// costCalibrator ranks dispatch on measured reality instead of the
// static heuristic. At construction it probes the store for every owned
// scenario's measured wall time (ElapsedHint serves timings across
// schema versions — after a bump, the warm re-run that re-simulates
// everything is exactly the run that profits most from last time's
// measurements) and seeds a per-policy-family linear cost model with
// them. apply then writes each position's best estimate: the exact
// measurement where one exists, the family's fitted prediction
// otherwise (internal/costmodel's fallback chain ends at the rescaled
// heuristic, so a never-measured grid still sorts sensibly). As live
// completions land, observe feeds them back in and apply re-ranks the
// undispatched remainder — a cold sweep calibrates itself mid-run. Like
// the heuristic, all of this affects wall clock only, never results.
//
// On a fully warm run each entry file is read twice — the hint probe
// here, the serve in runStored. Deliberate: memoizing decoded entries
// between the two would hold O(grid) raw results and break the
// executor's O(workers) memory bound, while the second read hits the
// page cache and a warm serve is ~instant regardless of its dispatch
// position.
type costCalibrator struct {
	model     *costmodel.Model
	family    []string  // per owned position: policy family key
	load      []float64 // per owned position: workload length / RUs
	heuristic []float64 // per owned position: static estimatedCost
	measured  []float64 // per owned position: stored wall time (ns), 0 if none
}

// newCostCalibrator probes the store for every owned scenario past the
// resume skip and seeds the model. keys index the full grid; owned
// positions map into it. Skipped positions stay unprobed — they were
// collected by a previous attempt and will never be dispatched, so a
// hint read per skipped scenario would be pure backend traffic.
func newCostCalibrator(store *resultstore.Store, scenarios []Scenario, owned []int, keys []string, skip int) *costCalibrator {
	cal := &costCalibrator{
		model:     costmodel.New(),
		family:    make([]string, len(owned)),
		load:      make([]float64, len(owned)),
		heuristic: make([]float64, len(owned)),
		measured:  make([]float64, len(owned)),
	}
	for p := skip; p < len(owned); p++ {
		i := owned[p]
		sc := &scenarios[i]
		cal.family[p] = costFamily(sc)
		cal.load[p] = scenarioLoad(sc)
		cal.heuristic[p] = estimatedCost(sc)
		if hint, ok := store.ElapsedHint(keys[i]); ok {
			cal.measured[p] = float64(hint)
			cal.model.Observe(cal.family[p], cal.load[p], cal.heuristic[p], hint)
		}
	}
	return cal
}

// apply writes the current best cost estimate for every position not yet
// dispatched (dispatched == nil means all): the measurement where one
// exists, the model's prediction otherwise, the untouched heuristic only
// while the model knows nothing at all.
func (cal *costCalibrator) apply(costs []float64, dispatched []bool) {
	for p := range costs {
		if dispatched != nil && dispatched[p] {
			continue
		}
		if cal.measured[p] > 0 {
			costs[p] = cal.measured[p]
			continue
		}
		if pred, ok := cal.model.Predict(cal.family[p], cal.load[p], cal.heuristic[p]); ok {
			costs[p] = pred
		}
	}
}

// observe folds one live completion's measured wall time into the model.
func (cal *costCalibrator) observe(p int, elapsed time.Duration) {
	cal.model.Observe(cal.family[p], cal.load[p], cal.heuristic[p], elapsed)
}

// costFamily buckets a scenario for cost modeling: the policy's
// canonical key plus the event-skip and prefetch flags, i.e. exactly the
// policy-side inputs that change how much work one decision costs.
// Scenarios of one family differ only in workload and unit count, which
// is what the model's load regressor captures.
func costFamily(sc *Scenario) string {
	key := sc.Policy.Key
	if key == "" {
		key = "name:" + sc.Policy.Name
	}
	if sc.Policy.Skip {
		key += "+skip"
	}
	if sc.Policy.CrossGraphPrefetch {
		key += "+prefetch"
	}
	if sc.Policy.ConservativePrefetch {
		key += "+conserve"
	}
	return key
}

// scenarioLoad is the cost model's regressor: workload length over unit
// count — decisions grow with queue length and contention shrinks with
// units, the same shape the static heuristic scales by policy weight.
func scenarioLoad(sc *Scenario) float64 {
	return float64(len(sc.Workload.Seq)) / float64(sc.RUs)
}

// estimatedCost ranks a scenario for dispatch order: a heuristic for
// relative simulation time, never correctness — a bad estimate costs
// wall clock, nothing else. Cost grows with the workload length and the
// policy's per-decision scan (clairvoyant LFD walks the whole remaining
// future, Local LFD a w-graph window, the classic policies O(1)), and
// shrinks with the unit count (fewer units ⇒ more replacement decisions
// and more contention).
func estimatedCost(sc *Scenario) float64 {
	return policyCostWeight(sc.Policy) * float64(len(sc.Workload.Seq)) / float64(sc.RUs)
}

// policyCostWeight estimates the policy axis value's per-decision cost
// from its canonical key (falling back to the display name), recognizing
// the LFD family the constructors in this package produce.
func policyCostWeight(p PolicySpec) float64 {
	key := strings.ToLower(p.Key)
	if key == "" {
		key = strings.ToLower(p.Name)
	}
	switch {
	case strings.Contains(key, "locallfd") || strings.Contains(key, "local lfd"):
		if _, after, ok := strings.Cut(key, ":"); ok {
			if w, err := strconv.Atoi(strings.TrimSpace(after)); err == nil && w > 0 {
				return 1 + float64(w)
			}
		}
		return 2
	case strings.Contains(key, "lfd"):
		// Full-future scans dominate every other policy by an order of
		// magnitude on long sequences.
		return 64
	default:
		return 1
	}
}

// runStored serves one scenario from the result store when possible and
// simulates (then writes back) otherwise. key is empty when the sweep
// runs without a store or the spec is uncacheable; stop is closed once
// the sweep has failed, after which nothing more is persisted.
func (e Executor) runStored(sp *Spec, sc Scenario, ideals *idealCache, runner *manager.Runner, key string, stop <-chan struct{}) (*Result, error) {
	if key != "" {
		if e.RequireStored && e.StoreWait != nil {
			return e.awaitStored(sp, sc, key, stop)
		}
		if ent, ok := e.Store.Get(key); ok {
			if res := resultFromEntry(sp, sc, ent); res != nil {
				res.stored = true
				return res, nil
			}
		}
		if e.RequireStored {
			return nil, fmt.Errorf("not in result store %s (did every shard run?)", e.Store.Dir())
		}
	}
	res, retry, err := e.runRetried(sp, sc, ideals, runner, stop)
	if err != nil || key == "" {
		return res, err
	}
	select {
	case <-stop:
		// The sweep has already failed: a worker that happened to finish
		// after cancellation must not persist its scenario — a failed
		// sweep leaves the store exactly as rich as it was when the
		// error struck, never silently part-populated beyond it.
		return res, nil
	default:
	}
	ent := &resultstore.Entry{
		Scenario:  sc.Name(),
		ElapsedNS: int64(res.Elapsed),
		Attempts:  retry.attempts,
		Run:       resultstore.RecordRun(res.Run),
		Ideal:     resultstore.RecordRun(res.Ideal),
		Summary:   res.Summary,
	}
	if retry.attempts > 1 {
		ent.LastError = retry.lastErr.Error()
		ent.RetriedAtNS = retry.retriedAt.UnixNano()
	}
	// A failed write (full disk, read-only store) must not lose the
	// computed sweep: the store degrades to re-simulation next run and
	// reports the failure in its summary line — but an unacknowledged
	// result must not advance a checkpoint either (see Checkpointer), so
	// only a successful Put marks the result stored.
	if e.Store.Put(key, ent) == nil {
		res.stored = true
	}
	return res, nil
}

// retryInfo is the attempt bookkeeping runRetried hands back for the
// store entry: how many executions the result took, and — past the
// first — the last retried failure and when the winning attempt began.
type retryInfo struct {
	attempts  int
	lastErr   error
	retriedAt time.Time
}

// maxRetryBackoff caps the exponential retry delay; past it only the
// jitter varies.
const maxRetryBackoff = 30 * time.Second

// runRetried executes one scenario live, retrying failures within the
// MaxScenarioRetries budget with jittered exponential backoff. On
// exhaustion the final error is wrapped with the attempt count (only
// when retries were actually configured, so the zero-budget path reads
// exactly as before).
func (e Executor) runRetried(sp *Spec, sc Scenario, ideals *idealCache, runner *manager.Runner, stop <-chan struct{}) (*Result, retryInfo, error) {
	info := retryInfo{attempts: 1}
	for {
		res, err := runScenario(sp, sc, ideals, runner)
		if err == nil {
			return res, info, nil
		}
		if info.attempts > e.MaxScenarioRetries {
			if e.MaxScenarioRetries > 0 {
				err = fmt.Errorf("after %d attempts: %w", info.attempts, err)
			}
			return nil, info, err
		}
		info.lastErr = err
		if !e.sleepBackoff(retryBackoff(e.RetryBackoff, info.attempts), stop) {
			return nil, info, fmt.Errorf("sweep cancelled while backing off from: %w", err)
		}
		info.attempts++
		info.retriedAt = time.Now()
	}
}

// retryBackoff is the delay before the retry following failed attempt
// number `attempt` (1-based): the base doubled per prior failure, capped
// at maxRetryBackoff, then jittered uniformly over [d/2, 3d/2).
func retryBackoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < maxRetryBackoff; i++ {
		d *= 2
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepBackoff waits out one retry delay, aborting (false) if the sweep
// is cancelled meanwhile.
func (e Executor) sleepBackoff(d time.Duration, stop <-chan struct{}) bool {
	if e.retrySleep != nil {
		return e.retrySleep(d, stop)
	}
	select {
	case <-stop:
		return false
	case <-time.After(d):
		return true
	}
}

// StoreWait configures the watch-mode serve of a RequireStored sweep:
// how often to re-probe the store for a missing scenario and how to
// decide that no producer will ever store it.
type StoreWait struct {
	// Poll is the store re-probe interval; values ≤ 0 mean 200ms. Probes
	// go through Store.Probe — one file read per poll, a hit counted
	// only on the serve, never a miss for "not here yet" — so a watch
	// merge's digest reads exactly like a post-drain merge's.
	Poll time.Duration
	// Done reports whether the producers have finished. (false, nil)
	// keeps the executor waiting; (true, nil) means no further entries
	// will arrive, so a still-missing scenario becomes a hard error —
	// RequireStored's contract, deferred until the pool has had its say;
	// a non-nil error means the producers can never finish (a coordinator
	// pool dead past its lease TTL — see coord.(*Coordinator).Drained)
	// and fails the sweep instead of hanging it forever. Called
	// concurrently from the executor's workers; it must be safe for that.
	Done func() (bool, error)
}

// awaitStored serves one scenario from the store the moment a producer
// lands it, per the StoreWait contract above. stop aborts the wait when
// the sweep fails elsewhere.
func (e Executor) awaitStored(sp *Spec, sc Scenario, key string, stop <-chan struct{}) (*Result, error) {
	poll := e.StoreWait.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	serve := func(ent *resultstore.Entry) (*Result, error) {
		if res := resultFromEntry(sp, sc, ent); res != nil {
			res.stored = true
			return res, nil
		}
		return nil, fmt.Errorf("entry in result store %s lacks a part this sweep needs (damaged store?)", e.Store.Dir())
	}
	for {
		if ent, ok := e.Store.Probe(key); ok {
			return serve(ent)
		}
		done, err := e.StoreWait.Done()
		if err != nil {
			return nil, err
		}
		if done {
			// The pool may have stored the entry between our probe and
			// its done record: one last look before declaring it missing.
			if ent, ok := e.Store.Probe(key); ok {
				return serve(ent)
			}
			return nil, fmt.Errorf("not in result store %s after the pool drained (did its workers run the same grid?)", e.Store.Dir())
		}
		select {
		case <-stop:
			return nil, fmt.Errorf("sweep cancelled while waiting for the store")
		case <-time.After(poll):
		}
	}
}

// resultFromEntry rebuilds a scenario result from a store entry, or
// returns nil when the entry lacks a part this sweep needs (only possible
// for a hand-damaged store — the baseline flag is part of the key).
func resultFromEntry(sp *Spec, sc Scenario, ent *resultstore.Entry) *Result {
	res := &Result{Scenario: sc, Run: ent.Run.Result()}
	if sp.NoBaseline {
		return res
	}
	if ent.Ideal == nil || ent.Summary == nil {
		return nil
	}
	res.Ideal = ent.Ideal.Result()
	sum := *ent.Summary
	res.Summary = &sum
	return res
}

// runScenario simulates one scenario on the worker's reusable runner:
// fresh policy instance, shared mobility tables, shared ideal baseline,
// summary.
func runScenario(sp *Spec, sc Scenario, ideals *idealCache, runner *manager.Runner) (*Result, error) {
	pol, err := sc.Policy.New()
	if err != nil {
		return nil, err
	}
	cfg := manager.Config{
		RUs:                  sc.RUs,
		Latency:              sc.Latency,
		LatencyFor:           sp.LatencyFor,
		Policy:               pol,
		SkipEvents:           sc.Policy.Skip,
		CrossGraphPrefetch:   sc.Policy.CrossGraphPrefetch,
		ConservativePrefetch: sc.Policy.ConservativePrefetch,
		RecordTrace:          sp.RecordTrace,
	}
	if sc.Policy.Skip {
		lookup, _, err := mobility.CachedAll(sc.Workload.templates(), sc.RUs, sc.Latency)
		if err != nil {
			return nil, fmt.Errorf("design-time phase: %w", err)
		}
		cfg.Mobility = lookup
	}
	// Only the scenario's own simulation is timed: the ideal baseline and
	// the design-time mobility tables are shared across the sweep, so
	// folding their one-off cost into whichever scenario happened to pay
	// it would skew the measured dispatch costs of warm re-runs.
	start := time.Now()
	run, err := runner.Run(cfg, dynlist.NewSequence(sc.Workload.Seq...))
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: sc, Elapsed: time.Since(start), Run: run}
	if sp.NoBaseline {
		return res, nil
	}
	ideal, err := ideals.get(sc.WorkloadIdx, sc.RUs)
	if err != nil {
		return nil, fmt.Errorf("ideal baseline: %w", err)
	}
	sum, err := metrics.Summarize(sc.Policy.Name, sc.RUs, sc.Latency, run, ideal)
	if err != nil {
		return nil, err
	}
	res.Ideal = ideal
	res.Summary = sum
	return res, nil
}

// templates returns the workload's template pool, deriving the distinct
// templates of Seq when Pool was not given.
func (w *Workload) templates() []*taskgraph.Graph {
	if len(w.Pool) > 0 {
		return w.Pool
	}
	seen := make(map[*taskgraph.Graph]bool, 4)
	var out []*taskgraph.Graph
	for _, g := range w.Seq {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// idealCache single-flights the zero-latency baselines shared by every
// scenario of one (workload, RUs) pair.
type idealCache struct {
	sp *Spec
	mu sync.Mutex
	m  map[idealKey]*idealEntry
}

type idealKey struct {
	workload int
	rus      int
}

type idealEntry struct {
	done chan struct{}
	res  *manager.Result
	err  error
}

func newIdealCache(sp *Spec) *idealCache {
	return &idealCache{sp: sp, m: make(map[idealKey]*idealEntry)}
}

func (c *idealCache) get(workload, rus int) (*manager.Result, error) {
	key := idealKey{workload: workload, rus: rus}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &idealEntry{done: make(chan struct{})}
		c.m[key] = e
		c.mu.Unlock()
		e.res, e.err = manager.Run(manager.Config{
			RUs: rus, Latency: 0, Policy: policy.NewLRU(),
		}, dynlist.NewSequence(c.sp.Workloads[workload].Seq...))
		close(e.done)
		return e.res, e.err
	}
	c.mu.Unlock()
	<-e.done
	return e.res, e.err
}
