package sweep

import (
	"testing"
	"time"

	"repro/internal/resultstore"
)

// trueCostLine is the fabricated ground truth for one policy family:
// elapsed = intercept + slope·(workload length / RUs). The slopes and
// intercepts differ per family in a way no single global rescale of the
// static heuristic can reproduce — in particular the heuristic ranks
// LRU below both Local LFD variants at every load, while the truth here
// puts LRU above them (its intercept dominates at fig9 loads).
type trueCostLine struct{ slope, intercept float64 }

var trueCosts = map[string]trueCostLine{
	"fixed:LRU":       {slope: 5e3, intercept: 2e6},
	"locallfd:1":      {slope: 9e3, intercept: 1e6},
	"locallfd:1+skip": {slope: 7e3, intercept: 5e5},
	"fixed:LFD":       {slope: 4e5, intercept: 5e7},
}

func trueElapsed(sc *Scenario) time.Duration {
	line, ok := trueCosts[costFamily(sc)]
	if !ok {
		panic("no true cost line for family " + costFamily(sc))
	}
	return time.Duration(line.intercept + line.slope*scenarioLoad(sc))
}

// inversions counts scenario pairs whose cost ranking contradicts the
// true elapsed-time ranking — the disagreement between the dispatch
// order a cost vector produces and the ideal LPT order. Ties in cost
// are not inversions (the executor breaks them by spec position).
func inversions(costs []float64, truth []time.Duration) int {
	inv := 0
	for i := range costs {
		for j := range costs {
			if truth[i] > truth[j] && costs[i] < costs[j] {
				inv++
			}
		}
	}
	return inv
}

// TestCalibratedDispatchBeatsHeuristic is the dispatch-order quality
// property: with stored fig9 timings for a strict subset of the grid
// (three of seven unit counts, so every family has measurements at
// several loads but most grid points have none), the calibrated cost
// vector must order the grid at least as close to the true elapsed-time
// LPT order as the static heuristic does. With linear per-family ground
// truth the fitted model recovers the lines exactly, so the calibrated
// order matches the truth outright — zero inversions — while the
// heuristic, whose fixed policy weights contradict the fabricated
// reality, keeps a nonzero disagreement.
func TestCalibratedDispatchBeatsHeuristic(t *testing.T) {
	spec := fig9Spec(t, 4, 5, 6, 7, 8, 9, 10)
	spec.NoBaseline = true
	scenarios, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	store := openStore(t)
	measuredRUs := map[int]bool{4: true, 7: true, 10: true}
	stored := 0
	for i := range scenarios {
		if !measuredRUs[scenarios[i].RUs] {
			continue
		}
		ent := &resultstore.Entry{
			ElapsedNS: int64(trueElapsed(&scenarios[i])),
			Run:       &resultstore.Run{Executed: 1, Graphs: 1},
		}
		if err := store.Put(keys[i], ent); err != nil {
			t.Fatal(err)
		}
		stored++
	}
	if stored == 0 || stored == len(scenarios) {
		t.Fatalf("stored %d of %d scenarios; the property needs a strict, non-empty subset", stored, len(scenarios))
	}

	owned := make([]int, len(scenarios))
	truth := make([]time.Duration, len(scenarios))
	heuristic := make([]float64, len(scenarios))
	calibrated := make([]float64, len(scenarios))
	for i := range scenarios {
		owned[i] = i
		truth[i] = trueElapsed(&scenarios[i])
		heuristic[i] = estimatedCost(&scenarios[i])
		calibrated[i] = heuristic[i]
	}
	cal := newCostCalibrator(store, scenarios, owned, keys, 0)
	cal.apply(calibrated, nil)

	invCal := inversions(calibrated, truth)
	invHeur := inversions(heuristic, truth)
	t.Logf("inversions vs true LPT order: calibrated %d, heuristic %d (%d scenarios, %d measured)",
		invCal, invHeur, len(scenarios), stored)
	if invHeur == 0 {
		t.Fatal("static heuristic already matches the fabricated truth — the property proves nothing")
	}
	if invCal > invHeur {
		t.Fatalf("calibrated order has %d inversions vs truth, heuristic %d — the model made dispatch worse", invCal, invHeur)
	}
	if invCal != 0 {
		t.Errorf("calibrated order has %d inversions vs linear truth; the per-family fit should recover exact lines", invCal)
	}
}
