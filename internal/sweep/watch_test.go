package sweep

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resultstore"
)

// TestStoreWaitServesAsEntriesLand is the executor half of the watch
// merge: a RequireStored sweep with a StoreWait starts against an empty
// store, a producer populates it concurrently, and every scenario is
// served the moment its entry appears — with results identical to a
// plain live run and the consumer's store handle reporting pure hits
// (the Has polling never counts as misses).
func TestStoreWaitServesAsEntriesLand(t *testing.T) {
	spec := fig9Spec(t, 4)
	plain, err := Executor{Workers: 2}.RunSummaries(spec)
	if err != nil {
		t.Fatal(err)
	}

	store := openStore(t)
	var producerDone atomic.Bool
	prodErr := make(chan error, 1)
	go func() {
		// The consumer below is already polling when this starts.
		time.Sleep(50 * time.Millisecond)
		err := (Executor{Workers: 1, Store: store}).Collect(spec, Discard)
		producerDone.Store(true)
		prodErr <- err
	}()

	// A second handle on the same directory keeps the consumer's hit/miss
	// accounting separate from the producer's.
	consumer, err := resultstore.Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	ex := Executor{
		Workers: 2, Store: consumer, RequireStored: true,
		StoreWait: &StoreWait{Poll: 5 * time.Millisecond, Done: func() (bool, error) {
			return producerDone.Load(), nil
		}},
	}
	watched, err := ex.RunSummaries(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-prodErr; err != nil {
		t.Fatal(err)
	}

	if len(watched.Rows) != len(plain.Rows) {
		t.Fatalf("watched %d rows, plain %d", len(watched.Rows), len(plain.Rows))
	}
	for i := range watched.Rows {
		a, b := &watched.Rows[i], &plain.Rows[i]
		if a.Scenario.Name() != b.Scenario.Name() || a.Counters != b.Counters || !reflect.DeepEqual(a.Summary, b.Summary) {
			t.Errorf("row %d (%s): watched serve diverged from the live run", i, b.Scenario.Name())
		}
	}
	hits, misses, puts := consumer.Stats()
	if misses != 0 || puts != 0 {
		t.Errorf("watch consumer stats: %d misses, %d puts — polling must never count misses or write", misses, puts)
	}
	if hits != int64(spec.Size()) {
		t.Errorf("watch consumer served %d hits, want %d", hits, spec.Size())
	}
}

// TestStoreWaitDrainedMissMeansError: once Done reports the pool
// drained, a still-missing scenario is RequireStored's hard error — a
// watch merge against a pool that ran a different grid fails, it does
// not hang.
func TestStoreWaitDrainedMissMeansError(t *testing.T) {
	spec := fig9Spec(t, 4)
	ex := Executor{
		Workers: 2, Store: openStore(t), RequireStored: true,
		StoreWait: &StoreWait{Poll: time.Millisecond, Done: func() (bool, error) { return true, nil }},
	}
	err := ex.Collect(spec, Discard)
	if err == nil {
		t.Fatal("empty store + drained pool succeeded")
	}
	if !strings.Contains(err.Error(), "after the pool drained") {
		t.Errorf("error %q does not name the drained pool", err)
	}
}

// TestStoreWaitDeadPoolFailsSweep: a Done error (the dead-pool verdict)
// fails the sweep promptly instead of polling forever.
func TestStoreWaitDeadPoolFailsSweep(t *testing.T) {
	spec := fig9Spec(t, 4)
	var polls atomic.Int64
	ex := Executor{
		Workers: 2, Store: openStore(t), RequireStored: true,
		StoreWait: &StoreWait{Poll: time.Millisecond, Done: func() (bool, error) {
			if polls.Add(1) < 3 {
				return false, nil // look alive for a couple of polls first
			}
			return false, fmt.Errorf("pool looks dead")
		}},
	}
	done := make(chan error, 1)
	go func() { done <- ex.Collect(spec, Discard) }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "pool looks dead") {
			t.Errorf("error %q does not carry the liveness verdict", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dead pool hung the sweep")
	}
}

// TestStoreWaitRequiresRequireStored: waiting is only meaningful for a
// store-only merge; misconfiguration is refused up front.
func TestStoreWaitRequiresRequireStored(t *testing.T) {
	ex := Executor{Store: openStore(t), StoreWait: &StoreWait{Done: func() (bool, error) { return true, nil }}}
	if err := ex.Collect(fig9Spec(t, 4), Discard); err == nil || !strings.Contains(err.Error(), "RequireStored") {
		t.Errorf("StoreWait without RequireStored gave %v, want a pointed refusal", err)
	}
}
