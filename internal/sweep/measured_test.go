package sweep

import (
	"testing"
	"time"

	"repro/internal/resultstore"
	"repro/internal/storetest"
)

// fabricateTimings writes one minimal store entry per scenario whose
// measured elapsed time is controlled by the caller: elapsed(i) is the
// recorded wall time for spec index i. The entries are valid for the
// current schema, so they also serve as hits.
func fabricateTimings(t *testing.T, store *resultstore.Store, spec Spec, elapsed func(i int) time.Duration) []string {
	t.Helper()
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		ent := &resultstore.Entry{
			ElapsedNS: int64(elapsed(i)),
			Run:       &resultstore.Run{Executed: 1, Graphs: 1},
		}
		if err := store.Put(key, ent); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestMeasuredCostDispatchOrder pins the measured-cost feed: with a store
// carrying per-scenario wall times, dispatch must follow the measurements
// in descending order — even where they contradict the static heuristic.
// The fabricated timings are largest at spec index 0 (an LRU scenario the
// heuristic ranks cheapest), so a heuristic feed would start elsewhere.
func TestMeasuredCostDispatchOrder(t *testing.T) {
	spec := fig9Spec(t, 6, 4)
	spec.NoBaseline = true
	n := spec.Size()
	store := openStore(t)
	fabricateTimings(t, store, spec, func(i int) time.Duration {
		return time.Duration(n-i) * time.Millisecond // descending in spec order
	})

	order := dispatchOrder(t, Executor{Workers: 1, Store: store}, spec)
	for step, idx := range order {
		if idx != step {
			t.Fatalf("dispatch step %d ran scenario %d; measured costs descend in spec order, so dispatch must too (full order %v)", step, idx, order)
		}
	}

	// Without the store the same grid must NOT dispatch in spec order:
	// the heuristic starts with the expensive contended LFD block at the
	// grid's end. This guards against the measured feed silently becoming
	// a no-op (the assertion above would then pass vacuously).
	heuristic := dispatchOrder(t, Executor{Workers: 1}, spec)
	if heuristic[0] == 0 {
		t.Fatalf("heuristic dispatch also starts at spec index 0 — the measured-order assertion proves nothing (order %v)", heuristic)
	}
}

// TestMeasuredCostSurvivesSchemaBump is the case the hint path exists
// for: after a schema bump every entry is unservable (the whole grid
// re-simulates) but the timings recorded at the same keys still drive
// dispatch. The re-simulation then overwrites the stale entries in place
// with fresh measurements.
func TestMeasuredCostSurvivesSchemaBump(t *testing.T) {
	spec := fig9Spec(t, 6, 4)
	spec.NoBaseline = true
	n := spec.Size()
	store := openStore(t)
	keys := fabricateTimings(t, store, spec, func(i int) time.Duration {
		return time.Duration(n-i) * time.Millisecond
	})
	storetest.StaleifySchema(t, store)
	// Fresh handle: the stats below must describe the post-bump sweep
	// alone, not the fabrication writes.
	store, err := resultstore.Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}

	order := dispatchOrder(t, Executor{Workers: 1, Store: store}, spec)
	for step, idx := range order {
		if idx != step {
			t.Fatalf("dispatch step %d ran scenario %d; stale-schema timings must still order dispatch (full order %v)", step, idx, order)
		}
	}
	// Unservable entries mean every scenario really re-simulated and was
	// written back under the current schema, with a real measurement.
	hits, misses, puts := store.Stats()
	if hits != 0 || misses != int64(n) || puts != int64(n) {
		t.Fatalf("stale store stats hits=%d misses=%d puts=%d, want 0/%d/%d", hits, misses, puts, n, n)
	}
	for _, key := range keys {
		ent, ok := store.Get(key)
		if !ok {
			t.Fatalf("re-simulation did not overwrite the stale entry for %s", key[:12])
		}
		if ent.ElapsedNS <= 0 {
			t.Fatalf("rewritten entry for %s lost the measured timing", key[:12])
		}
	}
}

// TestMeasuredCostPartialHintsCalibrated covers the mixed grid: a few
// scenarios measured, the rest on the rescaled heuristic. Scenario 1 is a
// Local LFD series the heuristic ranks well above LRU, but its recorded
// measurement is a microsecond — so on the calibrated scale it must sink
// below every unmeasured scenario and dispatch last. The unmeasured
// scenarios keep their heuristic relative order (rescaling by one factor
// cannot reorder them).
func TestMeasuredCostPartialHintsCalibrated(t *testing.T) {
	spec := fig9Spec(t, 6, 4)
	spec.NoBaseline = true
	store := openStore(t)
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	// Scenario 0 (LRU at R=6, the heuristic's cheapest) measured at an
	// hour anchors the calibration scale; scenario 1 (Local LFD, ranked
	// above it by the heuristic) measured at a microsecond must sink.
	for i, d := range map[int]time.Duration{0: time.Hour, 1: time.Microsecond} {
		ent := &resultstore.Entry{
			ElapsedNS: int64(d),
			Run:       &resultstore.Run{Executed: 1, Graphs: 1},
		}
		if err := store.Put(keys[i], ent); err != nil {
			t.Fatal(err)
		}
	}

	order := dispatchOrder(t, Executor{Workers: 1, Store: store}, spec)
	if last := order[len(order)-1]; last != 1 {
		t.Fatalf("dispatch ended with %d, want the microsecond-measured scenario 1 last (order %v)", last, order)
	}
	heuristic := dispatchOrder(t, Executor{Workers: 1}, spec)
	if hLast := heuristic[len(heuristic)-1]; hLast == 1 {
		t.Fatalf("heuristic alone also dispatches scenario 1 last — the demotion assertion proves nothing (order %v)", heuristic)
	}
	rest := func(o []int) []int {
		var out []int
		for _, i := range o {
			if i != 0 && i != 1 {
				out = append(out, i)
			}
		}
		return out
	}
	gotRest, wantRest := rest(order), rest(heuristic)
	for i := range wantRest {
		if gotRest[i] != wantRest[i] {
			t.Fatalf("unmeasured scenarios reordered: got %v, want heuristic order %v", gotRest, wantRest)
		}
	}
}

// TestElapsedRecordedAndServed: a cold store-backed sweep records every
// scenario's measured wall time on its entry (ElapsedHint serves it), and
// a warm re-run — which simulates nothing — reports zero Elapsed on its
// results instead of replaying the stale measurement as its own.
func TestElapsedRecordedAndServed(t *testing.T) {
	spec := fig9Spec(t, 4)
	store := openStore(t)
	ex := Executor{Workers: 2, Store: store}

	cold, err := ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cold.Results {
		if r.Elapsed <= 0 {
			t.Errorf("cold scenario %s has no measured elapsed time", r.Scenario.Name())
		}
	}
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		if hint, ok := store.ElapsedHint(key); !ok || hint <= 0 {
			t.Errorf("no elapsed hint recorded for %s", key[:12])
		}
	}

	warm, err := ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range warm.Results {
		if r.Elapsed != 0 {
			t.Errorf("store-served scenario %s claims a measured elapsed time of %v", r.Scenario.Name(), r.Elapsed)
		}
	}
}
