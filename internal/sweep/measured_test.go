package sweep

import (
	"testing"
	"time"

	"repro/internal/resultstore"
	"repro/internal/storetest"
)

// fabricateTimings writes one minimal store entry per scenario whose
// measured elapsed time is controlled by the caller: elapsed(i) is the
// recorded wall time for spec index i. The entries are valid for the
// current schema, so they also serve as hits.
func fabricateTimings(t *testing.T, store *resultstore.Store, spec Spec, elapsed func(i int) time.Duration) []string {
	t.Helper()
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		ent := &resultstore.Entry{
			ElapsedNS: int64(elapsed(i)),
			Run:       &resultstore.Run{Executed: 1, Graphs: 1},
		}
		if err := store.Put(key, ent); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestMeasuredCostDispatchOrder pins the measured-cost feed: with a store
// carrying per-scenario wall times, dispatch must follow the measurements
// in descending order — even where they contradict the static heuristic.
// The fabricated timings are largest at spec index 0 (an LRU scenario the
// heuristic ranks cheapest), so a heuristic feed would start elsewhere.
func TestMeasuredCostDispatchOrder(t *testing.T) {
	spec := fig9Spec(t, 6, 4)
	spec.NoBaseline = true
	n := spec.Size()
	store := openStore(t)
	fabricateTimings(t, store, spec, func(i int) time.Duration {
		return time.Duration(n-i) * time.Millisecond // descending in spec order
	})

	order := dispatchOrder(t, Executor{Workers: 1, Store: store}, spec)
	for step, idx := range order {
		if idx != step {
			t.Fatalf("dispatch step %d ran scenario %d; measured costs descend in spec order, so dispatch must too (full order %v)", step, idx, order)
		}
	}

	// Without the store the same grid must NOT dispatch in spec order:
	// the heuristic starts with the expensive contended LFD block at the
	// grid's end. This guards against the measured feed silently becoming
	// a no-op (the assertion above would then pass vacuously).
	heuristic := dispatchOrder(t, Executor{Workers: 1}, spec)
	if heuristic[0] == 0 {
		t.Fatalf("heuristic dispatch also starts at spec index 0 — the measured-order assertion proves nothing (order %v)", heuristic)
	}
}

// TestMeasuredCostSurvivesSchemaBump is the case the hint path exists
// for: after a schema bump every entry is unservable (the whole grid
// re-simulates) but the timings recorded at the same keys still drive
// dispatch. The re-simulation then overwrites the stale entries in place
// with fresh measurements.
func TestMeasuredCostSurvivesSchemaBump(t *testing.T) {
	spec := fig9Spec(t, 6, 4)
	spec.NoBaseline = true
	n := spec.Size()
	store := openStore(t)
	keys := fabricateTimings(t, store, spec, func(i int) time.Duration {
		return time.Duration(n-i) * time.Millisecond
	})
	storetest.StaleifySchema(t, store)
	// Fresh handle: the stats below must describe the post-bump sweep
	// alone, not the fabrication writes.
	store, err := resultstore.Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}

	order := dispatchOrder(t, Executor{Workers: 1, Store: store}, spec)
	for step, idx := range order {
		if idx != step {
			t.Fatalf("dispatch step %d ran scenario %d; stale-schema timings must still order dispatch (full order %v)", step, idx, order)
		}
	}
	// Unservable entries mean every scenario really re-simulated and was
	// written back under the current schema, with a real measurement.
	hits, misses, puts := store.Stats()
	if hits != 0 || misses != int64(n) || puts != int64(n) {
		t.Fatalf("stale store stats hits=%d misses=%d puts=%d, want 0/%d/%d", hits, misses, puts, n, n)
	}
	for _, key := range keys {
		ent, ok := store.Get(key)
		if !ok {
			t.Fatalf("re-simulation did not overwrite the stale entry for %s", key[:12])
		}
		if ent.ElapsedNS <= 0 {
			t.Fatalf("rewritten entry for %s lost the measured timing", key[:12])
		}
	}
}

// TestMeasuredCostPartialHintsCalibrated covers the mixed grid under the
// cost model: a few scenarios measured, the rest predicted per policy
// family. The grid is fig9 at RUs {6, 4} — spec indices 0-3 are the R=6
// block (LRU, LocalLFD, LocalLFD+skip, LFD), 4-7 the R=4 block. Two
// stored measurements contradict the static heuristic as hard as
// possible: scenario 0 (LRU at R=6, the heuristic's cheapest) took an
// hour, scenario 1 (Local LFD at R=6, ranked above LRU) took a
// nanosecond.
//
// The model must generalize each measurement to its whole family — not
// just pin the measured point: the unmeasured LRU at R=4 (index 4)
// inherits hour-scale cost and dispatches ahead of every live-measured
// scenario, while the unmeasured Local LFD at R=4 (index 5) sinks with
// its family to the very end. Mid-run self-calibration fills in the
// families with no stored data from live completions (the LFD block's
// real wall times are milliseconds, dwarfed by the hour anchor), so the
// full dispatch order is deterministic under only the weak assumption
// that a real 60-app simulation takes between ~100ns and well under an
// hour.
func TestMeasuredCostPartialHintsCalibrated(t *testing.T) {
	spec := fig9Spec(t, 6, 4)
	spec.NoBaseline = true
	store := openStore(t)
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range map[int]time.Duration{0: time.Hour, 1: time.Nanosecond} {
		ent := &resultstore.Entry{
			ElapsedNS: int64(d),
			Run:       &resultstore.Run{Executed: 1, Graphs: 1},
		}
		if err := store.Put(keys[i], ent); err != nil {
			t.Fatal(err)
		}
	}

	order := dispatchOrder(t, Executor{Workers: 1, Store: store}, spec)
	// Initial ranking: the never-measured LFD and skip families sort by
	// the median-rescaled heuristic (the hour anchor makes them huge, LFD
	// R=4 largest); the LRU family line predicts 1.5h for R=4; the Local
	// LFD family sinks to nanoseconds. After the first live completion the
	// model learns real (millisecond) scales for the unseen families, so
	// the hour-calibrated LRU family overtakes them — mid-run
	// recalibration is what puts 4 and 0 in positions 1 and 2. The
	// relative order of the three remaining live scenarios (3, 6, 2)
	// depends on this machine's real wall-time ratios, so only their
	// position block is pinned; the nanosecond-family pair closes the run.
	if order[0] != 7 || order[1] != 4 || order[2] != 0 {
		t.Fatalf("calibrated dispatch order %v, want it to open 7 (median-scaled LFD), 4 (hour-family LRU R=4), 0 (hour-measured)", order)
	}
	mid := map[int]bool{order[3]: true, order[4]: true, order[5]: true}
	if !mid[3] || !mid[6] || !mid[2] {
		t.Fatalf("calibrated dispatch order %v, want the live block {3, 6, 2} in positions 3-5", order)
	}
	if order[6] != 5 || order[7] != 1 {
		t.Fatalf("calibrated dispatch order %v, want the nanosecond family last: 5 (predicted) then 1 (measured)", order)
	}
	heuristic := dispatchOrder(t, Executor{Workers: 1}, spec)
	if hLast := heuristic[len(heuristic)-1]; hLast == 1 {
		t.Fatalf("heuristic alone also dispatches scenario 1 last — the family-demotion assertion proves nothing (order %v)", heuristic)
	}
}

// orderCheckCollector asserts results arrive in strictly ascending spec
// order with the scenario's own index, no matter how dispatch reordered
// the grid.
type orderCheckCollector struct {
	t    *testing.T
	next int
	got  int
}

func (c *orderCheckCollector) Collect(r *Result) error {
	if r.Scenario.Index != c.next {
		c.t.Errorf("collected scenario %d, want %d (delivery reordered)", r.Scenario.Index, c.next)
	}
	c.next++
	c.got++
	return nil
}

// TestPartialHintsSubsetDispatchAndDelivery is the ElapsedHint fallback
// pin: a grid where only a strict subset of scenarios has stored timings
// must dispatch the measured ones first (descending measured time) and
// still deliver every result in spec order, on a concurrent pool. The
// two LFD scenarios carry hour-scale fabricated measurements, so they
// outrank every model prediction derived from them; everything else is
// live-simulated and streamed back in order.
func TestPartialHintsSubsetDispatchAndDelivery(t *testing.T) {
	spec := fig9Spec(t, 6, 4)
	spec.NoBaseline = true
	n := spec.Size()
	store := openStore(t)
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	// Spec indices 3 and 7 are the LFD scenarios (R=6 and R=4).
	for i, d := range map[int]time.Duration{3: 2 * time.Hour, 7: time.Hour} {
		ent := &resultstore.Entry{
			ElapsedNS: int64(d),
			Run:       &resultstore.Run{Executed: 1, Graphs: 1},
		}
		if err := store.Put(keys[i], ent); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh handle: the stats below must describe the sweep alone, not
	// the fabrication writes.
	store, err = resultstore.Open(store.Dir())
	if err != nil {
		t.Fatal(err)
	}

	var order []int
	ex := Executor{Workers: 2, Store: store}
	ex.observeDispatch = func(i int) { order = append(order, i) }
	c := &orderCheckCollector{t: t}
	if err := ex.Collect(spec, c); err != nil {
		t.Fatal(err)
	}
	if c.got != n {
		t.Fatalf("collected %d of %d results", c.got, n)
	}
	if len(order) < 2 || order[0] != 3 || order[1] != 7 {
		t.Fatalf("dispatch order %v, want the measured scenarios first: 3 (2h) then 7 (1h)", order)
	}
	// The measured pair was served from the store, the rest simulated and
	// written back — a partial store must never re-simulate what it has
	// nor skip persisting what it lacks.
	if hits, misses, puts := store.Stats(); hits != 2 || misses != int64(n-2) || puts != int64(n-2) {
		t.Fatalf("stats hits=%d misses=%d puts=%d, want 2/%d/%d", hits, misses, puts, n-2, n-2)
	}
}

// TestElapsedRecordedAndServed: a cold store-backed sweep records every
// scenario's measured wall time on its entry (ElapsedHint serves it), and
// a warm re-run — which simulates nothing — reports zero Elapsed on its
// results instead of replaying the stale measurement as its own.
func TestElapsedRecordedAndServed(t *testing.T) {
	spec := fig9Spec(t, 4)
	store := openStore(t)
	ex := Executor{Workers: 2, Store: store}

	cold, err := ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cold.Results {
		if r.Elapsed <= 0 {
			t.Errorf("cold scenario %s has no measured elapsed time", r.Scenario.Name())
		}
	}
	keys, err := spec.ScenarioKeys()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		if hint, ok := store.ElapsedHint(key); !ok || hint <= 0 {
			t.Errorf("no elapsed hint recorded for %s", key[:12])
		}
	}

	warm, err := ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range warm.Results {
		if r.Elapsed != 0 {
			t.Errorf("store-served scenario %s claims a measured elapsed time of %v", r.Scenario.Name(), r.Elapsed)
		}
	}
}
