package sweep

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/storetest"
	"repro/internal/taskgraph"
)

func openStore(t *testing.T) *resultstore.Store {
	t.Helper()
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreWarmRunIdentical is the reuse pin: a second identical sweep
// against the same store simulates nothing (every scenario is a hit) and
// returns results field-for-field identical to the cold run — the
// property the CI determinism gate enforces end to end on the CLI. It
// runs against every registered store backend: serving from memory or
// the campaign database must reproduce the fs behavior bit for bit.
func TestStoreWarmRunIdentical(t *testing.T) {
	for _, bk := range storetest.Backends(t) {
		t.Run(bk.Name, func(t *testing.T) {
			spec := fig9Spec(t, 4, 5)
			store, reopen := bk.Open(t)
			ex := Executor{Workers: 4, Store: store}

			cold, err := ex.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			hits, misses, puts := store.Stats()
			if hits != 0 || misses != int64(spec.Size()) || puts != int64(spec.Size()) {
				t.Fatalf("cold run stats hits=%d misses=%d puts=%d, want 0/%d/%d",
					hits, misses, puts, spec.Size(), spec.Size())
			}

			// The warm run serves through a fresh handle over the same
			// data — what re-invoking the CLI against the same -store
			// locator does. A policy axis whose constructor panics proves
			// no scenario was dispatched to the simulator.
			warmStore := reopen(t)
			warmSpec := spec
			warmSpec.Policies = make([]PolicySpec, len(spec.Policies))
			for i, p := range spec.Policies {
				warmSpec.Policies[i] = p
				warmSpec.Policies[i].New = func() (policy.Policy, error) {
					panic("warm run dispatched a scenario to the simulator")
				}
			}
			warm, err := (Executor{Workers: 4, Store: warmStore}).Run(warmSpec)
			if err != nil {
				t.Fatal(err)
			}
			hits, _, puts = warmStore.Stats()
			if hits != int64(spec.Size()) || puts != 0 {
				t.Fatalf("warm run stats hits=%d puts=%d, want %d hits and no new writes",
					hits, puts, spec.Size())
			}

			for i := range cold.Results {
				c, w := cold.Results[i], warm.Results[i]
				if !reflect.DeepEqual(c.Summary, w.Summary) {
					t.Errorf("scenario %d summary diverged:\ncold %+v\nwarm %+v", i, c.Summary, w.Summary)
				}
				cr, wr := *c.Run, *w.Run
				cr.Templates, wr.Templates = nil, nil // in-memory only, never reported
				if !reflect.DeepEqual(cr, wr) {
					t.Errorf("scenario %d run diverged:\ncold %+v\nwarm %+v", i, cr, wr)
				}
				if c.Ideal.Makespan != w.Ideal.Makespan || c.Ideal.Executed != w.Ideal.Executed {
					t.Errorf("scenario %d ideal diverged", i)
				}
			}
		})
	}
}

// TestStoreMissOnChangedConfig: any change to a hash input — workload
// seed, RU count, latency, policy, a feature flag — must miss.
func TestStoreMissOnChangedConfig(t *testing.T) {
	store := openStore(t)
	ex := Executor{Workers: 2, Store: store}
	base := fig9Spec(t, 4)
	base.Policies = base.Policies[:1] // LRU only: 1 scenario
	if _, err := ex.Run(base); err != nil {
		t.Fatal(err)
	}

	variants := map[string]func(Spec) Spec{
		"rus":     func(s Spec) Spec { s.RUs = []int{5}; return s },
		"latency": func(s Spec) Spec { s.Latencies = []simtime.Time{simtime.FromMs(8)}; return s },
		"policy": func(s Spec) Spec {
			s.Policies = []PolicySpec{Fixed("MRU", policy.NewMRU())}
			return s
		},
		"flag": func(s Spec) Spec {
			p := s.Policies[0]
			p.CrossGraphPrefetch = true
			s.Policies = []PolicySpec{p}
			return s
		},
		"baseline": func(s Spec) Spec { s.NoBaseline = true; return s },
		"workload": func(s Spec) Spec {
			other := fig9Spec(t, 4) // fresh draw shares content but not templates…
			s.Workloads = []Workload{{Label: "other", Pool: other.Workloads[0].Pool, Seq: other.Workloads[0].Seq[:30]}}
			return s
		},
	}
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			_, missesBefore, _ := store.Stats()
			if _, err := ex.Run(mutate(base)); err != nil {
				t.Fatal(err)
			}
			_, missesAfter, _ := store.Stats()
			if missesAfter == missesBefore {
				t.Errorf("changed %s did not miss the store", name)
			}
		})
	}
}

// TestStoreBypassesUncacheableSpecs: trace-recording sweeps and per-task
// latency sweeps run correctly and leave the store untouched.
func TestStoreBypassesUncacheableSpecs(t *testing.T) {
	store := openStore(t)
	ex := Executor{Workers: 2, Store: store}

	traced := fig9Spec(t, 4)
	traced.Policies = traced.Policies[:1]
	traced.RecordTrace = true
	rs, err := ex.Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Results[0].Run.Trace == nil {
		t.Error("trace-recording sweep lost its trace")
	}

	het := fig9Spec(t, 4)
	het.Policies = het.Policies[:1]
	het.LatencyFor = func(taskgraph.TaskID) simtime.Time { return simtime.FromMs(2) }
	het.NoBaseline = true
	if _, err := ex.Run(het); err != nil {
		t.Fatal(err)
	}

	noKey := fig9Spec(t, 4)
	noKey.Policies = []PolicySpec{{Name: "hand-built", New: func() (policy.Policy, error) { return policy.NewLRU(), nil }}}
	if _, err := ex.Run(noKey); err != nil {
		t.Fatal(err)
	}

	if hits, misses, puts := store.Stats(); hits != 0 || misses != 0 || puts != 0 {
		t.Errorf("uncacheable sweeps touched the store: %d/%d/%d", hits, misses, puts)
	}
}

// TestNoStoreWritesAfterCancel is the failed-sweep persistence pin: a
// worker still in flight when the first error cancels the sweep must
// not write its scenario to the store. The test sequences the races
// away: one worker fails immediately while two others block inside
// their policy constructors until the cancellation has happened, so
// every surviving scenario provably completes post-cancel.
func TestNoStoreWritesAfterCancel(t *testing.T) {
	store := openStore(t)
	release := make(chan struct{})
	blocker := func(key string) PolicySpec {
		return PolicySpec{
			Name: key,
			Key:  key,
			New: func() (policy.Policy, error) {
				<-release // held until the sweep is cancelled
				return policy.NewLRU(), nil
			},
		}
	}
	boom := fmt.Errorf("boom")
	spec := fig9Spec(t, 4)
	spec.Policies = []PolicySpec{
		blocker("blocker-a"),
		{Name: "broken", Key: "broken", New: func() (policy.Policy, error) { return nil, boom }},
		blocker("blocker-b"),
	}
	ex := Executor{Workers: 2, Store: store}
	ex.onCancel = func() { close(release) }
	_, err := ex.Run(spec)
	if err == nil {
		t.Fatal("failing sweep succeeded")
	}
	if !strings.Contains(err.Error(), "scenario 1") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error = %q, want the boom scenario", err)
	}
	if _, _, puts := store.Stats(); puts != 0 {
		t.Errorf("cancelled sweep persisted %d scenarios that completed after the failure", puts)
	}
}

// TestPreCancelWritesSurvive: scenarios persisted before the error
// struck stay in the store — only post-cancel writes are suppressed.
func TestPreCancelWritesSurvive(t *testing.T) {
	store := openStore(t)
	spec := fig9Spec(t, 4)
	spec.Policies = []PolicySpec{
		spec.Policies[0], // LRU, completes and persists first
		{Name: "broken", Key: "broken", New: func() (policy.Policy, error) { return nil, fmt.Errorf("boom") }},
		spec.Policies[3], // never dispatched on a sequential pool
	}
	if _, err := (Executor{Workers: 1, Store: store, SpecOrderDispatch: true}).Run(spec); err == nil {
		t.Fatal("failing sweep succeeded")
	}
	if _, _, puts := store.Stats(); puts != 1 {
		t.Errorf("sweep persisted %d scenarios, want exactly the one completed before the error", puts)
	}
}

// TestDuplicateAxisValuesRejected: a repeated axis value is the same
// scenario hash twice in one grid and must fail loudly, not run twice.
func TestDuplicateAxisValuesRejected(t *testing.T) {
	cases := map[string]func(*Spec){
		"rus":      func(s *Spec) { s.RUs = []int{4, 5, 4} },
		"latency":  func(s *Spec) { s.Latencies = append(s.Latencies, s.Latencies[0]) },
		"policy":   func(s *Spec) { s.Policies = append(s.Policies, s.Policies[0]) },
		"workload": func(s *Spec) { s.Workloads = append(s.Workloads, s.Workloads[0]) },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			spec := fig9Spec(t, 4, 5)
			mutate(&spec)
			if _, err := spec.Expand(); err == nil {
				t.Fatalf("duplicate %s axis value accepted", name)
			} else if !strings.Contains(err.Error(), "duplicate") {
				t.Errorf("error %q does not name the duplicate", err)
			}
			if _, err := Run(spec); err == nil {
				t.Fatalf("sweep with duplicate %s axis value ran", name)
			}
		})
	}
	// Distinct display names over the same configuration are still two
	// identical simulations — rejected too.
	spec := fig9Spec(t, 4)
	renamed := spec.Policies[0]
	renamed.Name = "LRU (again)"
	spec.Policies = append(spec.Policies, renamed)
	if _, err := spec.Expand(); err != nil {
		t.Fatalf("renamed duplicate rejected structurally: %v — want hash-level rejection only", err)
	}
	if _, err := spec.ScenarioKeys(); err != nil {
		// Renaming changes the hash (the name is reported output), so
		// this is a valid, distinct grid for the store too.
		t.Fatalf("renamed series should hash distinctly: %v", err)
	}
}
