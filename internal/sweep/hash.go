package sweep

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/resultstore"
	"repro/internal/taskgraph"
)

// ErrUncacheable marks a Spec whose scenarios cannot be identified by a
// canonical config hash, and which therefore bypasses the persisted
// result store: trace-recording sweeps (traces are not serialized),
// sweeps with a per-task latency function (a func has no canonical
// encoding), and policy axis values without a Key.
var ErrUncacheable = errors.New("spec not cacheable")

// Cacheable reports whether the Spec's scenarios can be served from and
// written to a result store. A nil error means yes; otherwise the error
// wraps ErrUncacheable and names the first obstacle.
func (s *Spec) Cacheable() error {
	if s.RecordTrace {
		return fmt.Errorf("%w: trace recording requested (traces are not serialized)", ErrUncacheable)
	}
	if s.LatencyFor != nil {
		return fmt.Errorf("%w: per-task latency function set (no canonical encoding)", ErrUncacheable)
	}
	for i, p := range s.Policies {
		if p.Key == "" {
			return fmt.Errorf("%w: policy %d (%q) has no canonical Key", ErrUncacheable, i, p.Name)
		}
	}
	return nil
}

// ScenarioKeys computes the canonical config hash of every scenario the
// Spec expands to, in spec order. The hash folds in everything that
// determines a scenario's configuration: the full workload content
// (template structure and arrival sequence — which subsumes the
// generator seed), the unit count, the reconfiguration latency, the
// policy key and display name, every feature flag, and whether the ideal
// baseline is computed. The store schema version is deliberately not an
// input — it lives inside each entry, so a bump invalidates stored
// outcomes without moving their keys (see resultstore.NewHash). Distinct scenarios hashing to
// the same key (content-duplicate axis values that slipped past
// validate's structural check) are an error: the grid would silently
// simulate the same configuration twice.
func (s *Spec) ScenarioKeys() ([]string, error) {
	if err := s.Cacheable(); err != nil {
		return nil, err
	}
	scenarios, err := s.Expand()
	if err != nil {
		return nil, err
	}
	return s.scenarioKeysFor(scenarios)
}

// scenarioKeysFor computes the keys for already-expanded scenarios —
// keys[i] identifies scenarios[i]. The executor uses this to avoid a
// second Expand; callers must have checked Cacheable.
func (s *Spec) scenarioKeysFor(scenarios []Scenario) ([]string, error) {
	wlKeys := make([]string, len(s.Workloads))
	for i := range s.Workloads {
		k, err := workloadKey(&s.Workloads[i])
		if err != nil {
			return nil, fmt.Errorf("sweep: workload %d (%q): %w", i, s.Workloads[i].Label, err)
		}
		wlKeys[i] = k
	}
	keys := make([]string, len(scenarios))
	seen := make(map[string]int, len(scenarios))
	for i, sc := range scenarios {
		key := scenarioKey(wlKeys[sc.WorkloadIdx], sc, s.NoBaseline)
		if j, dup := seen[key]; dup {
			return nil, fmt.Errorf("sweep: scenarios %d (%s) and %d (%s) share config hash %s — duplicate grid entry",
				j, scenarios[j].Name(), i, sc.Name(), key[:12])
		}
		seen[key] = i
		keys[i] = key
	}
	return keys, nil
}

// workloadKey canonically hashes a workload: its label, the canonical
// JSON encoding of every distinct template (pool order first, then
// first-appearance order in the sequence), and the arrival sequence as
// template indices. Hashing the materialized content rather than the
// generator seed means any change to workload generation invalidates
// store entries automatically.
func workloadKey(w *Workload) (string, error) {
	h := resultstore.NewHash()
	h.String("label", w.Label)
	index := make(map[*taskgraph.Graph]int)
	add := func(g *taskgraph.Graph) error {
		if _, ok := index[g]; ok {
			return nil
		}
		data, err := json.Marshal(g)
		if err != nil {
			return fmt.Errorf("encode template %s: %w", g.Name(), err)
		}
		h.Bytes(fmt.Sprintf("template:%d", len(index)), data)
		index[g] = len(index)
		return nil
	}
	for _, g := range w.Pool {
		if err := add(g); err != nil {
			return "", err
		}
	}
	h.Int("pool", int64(len(w.Pool)))
	for _, g := range w.Seq {
		if err := add(g); err != nil {
			return "", err
		}
	}
	for _, g := range w.Seq {
		h.Int("seq", int64(index[g]))
	}
	return h.Sum(), nil
}

// scenarioKey folds one expanded scenario into its canonical config hash.
func scenarioKey(wlKey string, sc Scenario, noBaseline bool) string {
	h := resultstore.NewHash()
	h.String("workload", wlKey)
	h.Int("rus", int64(sc.RUs))
	h.Int("latency", int64(sc.Latency))
	h.String("policy", sc.Policy.Key)
	h.String("policy_name", sc.Policy.Name)
	h.Bool("skip_events", sc.Policy.Skip)
	h.Bool("cross_graph_prefetch", sc.Policy.CrossGraphPrefetch)
	h.Bool("conservative_prefetch", sc.Policy.ConservativePrefetch)
	h.Bool("baseline", !noBaseline)
	return h.Sum()
}
