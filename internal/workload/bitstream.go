package workload

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// BitstreamBytes returns per-task configuration sizes for the multimedia
// benchmarks. The paper assumes equal-sized reconfigurable units, so all
// bitstreams are the same order of magnitude; sizes here scale gently
// with the computational weight of each stage (a heavier kernel uses more
// of its region). These feed both the energy model
// (metrics.EnergyModel.BitstreamBytes) and the heterogeneous-latency
// extension (LatencyFromBitstreams).
func BitstreamBytes() map[taskgraph.TaskID]int {
	const kib = 1 << 10
	return map[taskgraph.TaskID]int{
		// JPEG decoder
		11: 240 * kib, // vld
		12: 220 * kib, // iqzz
		13: 360 * kib, // idct
		14: 260 * kib, // cc
		// MPEG-1 encoder
		21: 340 * kib, // me
		22: 240 * kib, // mc
		23: 300 * kib, // dct
		24: 200 * kib, // q
		25: 260 * kib, // vlc
		// Hough
		31: 260 * kib, // smooth
		32: 240 * kib, // gradx
		33: 240 * kib, // grady
		34: 260 * kib, // magn
		35: 380 * kib, // hough
		36: 280 * kib, // peaks
	}
}

// LatencyFromBitstreams derives per-task reconfiguration latencies from
// bitstream sizes and a configuration-port bandwidth (bytes per
// millisecond). With the default sizes, 75 KiB/ms makes the average
// latency land at the paper's 4 ms.
func LatencyFromBitstreams(sizes map[taskgraph.TaskID]int, bytesPerMs int) (func(taskgraph.TaskID) simtime.Time, error) {
	if bytesPerMs <= 0 {
		return nil, fmt.Errorf("workload: non-positive configuration bandwidth %d", bytesPerMs)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("workload: empty bitstream size map")
	}
	return func(id taskgraph.TaskID) simtime.Time {
		b, ok := sizes[id]
		if !ok {
			// Unknown tasks fall back to the mean size.
			total := 0
			for _, v := range sizes {
				total += v
			}
			b = total / len(sizes)
		}
		return simtime.FromMs(float64(b) / float64(bytesPerMs))
	}, nil
}

// DefaultConfigBandwidth is the configuration-port bandwidth (bytes/ms)
// that puts the mean multimedia bitstream at the paper's 4 ms latency.
const DefaultConfigBandwidth = 68 << 10
