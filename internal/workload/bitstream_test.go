package workload

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

func TestBitstreamCoversUniverse(t *testing.T) {
	sizes := BitstreamBytes()
	for _, g := range Multimedia() {
		for _, task := range g.Tasks() {
			b, ok := sizes[task.ID]
			if !ok {
				t.Errorf("task %d (%s) has no bitstream size", task.ID, task.Name)
				continue
			}
			if b < 100<<10 || b > 1<<20 {
				t.Errorf("task %d bitstream %d bytes outside plausible partial-bitstream range", task.ID, b)
			}
		}
	}
	if len(sizes) != 15 {
		t.Errorf("sizes cover %d tasks, want 15", len(sizes))
	}
}

func TestLatencyFromBitstreams(t *testing.T) {
	lat, err := LatencyFromBitstreams(BitstreamBytes(), DefaultConfigBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	// Mean latency across the universe should sit at the paper's 4 ms.
	var total simtime.Time
	n := 0
	for id := range BitstreamBytes() {
		l := lat(id)
		if l <= 0 {
			t.Errorf("task %d latency %v", id, l)
		}
		total += l
		n++
	}
	mean := total / simtime.Time(n)
	if mean < simtime.FromMs(3.9) || mean > simtime.FromMs(4.1) {
		t.Errorf("mean latency = %v, want ≈4 ms", mean)
	}
	// Heavier kernels take longer.
	if lat(35) <= lat(24) {
		t.Errorf("hough (35) %v should exceed q (24) %v", lat(35), lat(24))
	}
	// Unknown tasks fall back to the mean size.
	unknown := lat(taskgraph.TaskID(999))
	if unknown < simtime.FromMs(3.5) || unknown > simtime.FromMs(4.5) {
		t.Errorf("fallback latency = %v, want ≈4 ms", unknown)
	}
}

func TestLatencyFromBitstreamsValidation(t *testing.T) {
	if _, err := LatencyFromBitstreams(BitstreamBytes(), 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := LatencyFromBitstreams(nil, 100); err == nil {
		t.Error("empty size map accepted")
	}
}
