// Package workload defines the applications the paper evaluates with and
// generates the experiment sequences.
//
// Two families of graphs exist:
//
//   - The motivational-example graphs of Fig. 2 and Fig. 3, whose
//     structures and execution times were reverse-engineered so that every
//     number in those figures reproduces exactly (see DESIGN.md §2).
//   - The three multimedia benchmarks (JPEG decoder, MPEG-1 encoder, Hough
//     transform). The paper gives their node counts (4, 5, 6 — fifteen
//     distinct tasks in total) and their initial execution times
//     (79, 37, 94 ms; Table II) but not their structures or per-task
//     times; we model the canonical pipeline of each application with
//     per-task times chosen so the critical paths match the paper.
//
// Task IDs are globally unique across the three multimedia benchmarks, as
// reuse identity requires; the Fig. 2/Fig. 3 graphs use the paper's own
// small IDs and must not be mixed with other families in one workload
// (ValidateUniverse catches that).
package workload

import (
	"fmt"
	"sync"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

// PaperLatency is the reconfiguration latency used in all of the paper's
// worked examples (4 ms) and, absent other information, in its
// experiments. Virtex-class devices of the paper's era had per-region
// reconfiguration times of this order.
const PaperLatencyMs = 4.0

// PaperLatency returns PaperLatencyMs as a simtime.Time.
func PaperLatency() simtime.Time { return ms(PaperLatencyMs) }

// Fig2TG1 is Task Graph 1 of Fig. 2: the chain 1(2.5) → 2(2.5) → 3(4).
func Fig2TG1() *taskgraph.Graph {
	return taskgraph.Chain("fig2-tg1", 1, ms(2.5), ms(2.5), ms(4))
}

// Fig2TG2 is Task Graph 2 of Fig. 2: the chain 4(4) → 5(4).
func Fig2TG2() *taskgraph.Graph {
	return taskgraph.Chain("fig2-tg2", 4, ms(4), ms(4))
}

// Fig2Sequence is the application sequence of Fig. 2: TG1, TG2, TG2, TG1,
// TG2 — twelve task executions in total.
func Fig2Sequence() []*taskgraph.Graph {
	tg1, tg2 := Fig2TG1(), Fig2TG2()
	return []*taskgraph.Graph{tg1, tg2, tg2, tg1, tg2}
}

// Fig3TG1 is Task Graph 1 of Fig. 3: the fork 1(12) → {2(6), 3(6)}.
func Fig3TG1() *taskgraph.Graph {
	return taskgraph.ForkJoin("fig3-tg1", 1, ms(12), []simtime.Time{ms(6), ms(6)}, 0, false)
}

// Fig3TG2 is Task Graph 2 of Fig. 3 (also the subject of the Fig. 7
// mobility example): the diamond 4(12) → {5(8), 6(6)} → 7(6).
func Fig3TG2() *taskgraph.Graph {
	return taskgraph.ForkJoin("fig3-tg2", 4, ms(12), []simtime.Time{ms(8), ms(6)}, ms(6), true)
}

// Fig3Sequence is the application sequence of Fig. 3: TG1, TG2, TG1 — ten
// task executions in total.
func Fig3Sequence() []*taskgraph.Graph {
	tg1, tg2 := Fig3TG1(), Fig3TG2()
	return []*taskgraph.Graph{tg1, tg2, tg1}
}

// The three multimedia benchmarks are process-wide singletons: graphs
// are immutable once built, and design-time mobility tables (and their
// process-wide cache, internal/mobility) are keyed by template identity —
// returning one instance per benchmark lets every experiment, System and
// sweep in the process share one cached table per configuration instead
// of recomputing it for a fresh pointer each call.

// JPEG is the 4-node JPEG decoder benchmark: the classic decoding
// pipeline VLD → dequantize/zig-zag → IDCT → colour conversion. Critical
// path 79 ms (paper Table II).
var JPEG = sync.OnceValue(func() *taskgraph.Graph {
	return taskgraph.NewBuilder("jpeg").
		AddTask(11, "vld", ms(17)).
		AddTask(12, "iqzz", ms(14)).
		AddTask(13, "idct", ms(31)).
		AddTask(14, "cc", ms(17)).
		AddDep(11, 12).AddDep(12, 13).AddDep(13, 14).
		MustBuild()
})

// MPEG1 is the 5-node MPEG-1 encoder benchmark: motion estimation →
// motion compensation → DCT → quantization → VLC. Critical path 37 ms
// (paper Table II).
var MPEG1 = sync.OnceValue(func() *taskgraph.Graph {
	return taskgraph.NewBuilder("mpeg1").
		AddTask(21, "me", ms(12)).
		AddTask(22, "mc", ms(5)).
		AddTask(23, "dct", ms(8)).
		AddTask(24, "q", ms(4)).
		AddTask(25, "vlc", ms(8)).
		AddDep(21, 22).AddDep(22, 23).AddDep(23, 24).AddDep(24, 25).
		MustBuild()
})

// Hough is the 6-node pattern-recognition benchmark built around the
// Hough transform: smoothing feeds two parallel gradient filters, whose
// results merge into the magnitude/threshold stage, then the transform
// and peak detection. Critical path 18+12+14+32+18 = 94 ms (paper
// Table II); the parallel branch exercises multi-unit execution.
var Hough = sync.OnceValue(func() *taskgraph.Graph {
	return taskgraph.NewBuilder("hough").
		AddTask(31, "smooth", ms(18)).
		AddTask(32, "gradx", ms(12)).
		AddTask(33, "grady", ms(10)).
		AddTask(34, "magn", ms(14)).
		AddTask(35, "hough", ms(32)).
		AddTask(36, "peaks", ms(18)).
		AddDep(31, 32).AddDep(31, 33).
		AddDep(32, 34).AddDep(33, 34).
		AddDep(34, 35).AddDep(35, 36).
		MustBuild()
})

// Multimedia returns the paper's three-benchmark pool in a stable order
// (a fresh slice over the singleton templates).
func Multimedia() []*taskgraph.Graph {
	return []*taskgraph.Graph{JPEG(), MPEG1(), Hough()}
}

// ValidateUniverse checks that distinct templates in a workload use
// disjoint task-ID sets (repeating the same template is fine). Reuse is
// keyed on task IDs, so an accidental collision between different
// applications would let one app "reuse" another's configuration.
func ValidateUniverse(graphs []*taskgraph.Graph) error {
	owner := map[taskgraph.TaskID]*taskgraph.Graph{}
	seen := map[*taskgraph.Graph]bool{}
	for _, g := range graphs {
		if g == nil {
			return fmt.Errorf("workload: nil graph")
		}
		if seen[g] {
			continue
		}
		seen[g] = true
		for _, t := range g.Tasks() {
			if other, clash := owner[t.ID]; clash {
				return fmt.Errorf("workload: task id %d used by both %q and %q",
					t.ID, other.Name(), g.Name())
			}
			owner[t.ID] = g
		}
	}
	return nil
}

// UniverseSize counts distinct task IDs across the workload — the
// paper's "15 different tasks compete for 4 reconfigurable units".
func UniverseSize(graphs []*taskgraph.Graph) int {
	ids := map[taskgraph.TaskID]bool{}
	for _, g := range graphs {
		for _, t := range g.Tasks() {
			ids[t.ID] = true
		}
	}
	return len(ids)
}
