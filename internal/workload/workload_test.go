package workload

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// TestPaperNodeCounts: the paper states the JPEG, MPEG-1 and Hough graphs
// have 4, 5 and 6 nodes — fifteen distinct tasks in total.
func TestPaperNodeCounts(t *testing.T) {
	if n := JPEG().NumTasks(); n != 4 {
		t.Errorf("JPEG nodes = %d, want 4", n)
	}
	if n := MPEG1().NumTasks(); n != 5 {
		t.Errorf("MPEG-1 nodes = %d, want 5", n)
	}
	if n := Hough().NumTasks(); n != 6 {
		t.Errorf("Hough nodes = %d, want 6", n)
	}
	if n := UniverseSize(Multimedia()); n != 15 {
		t.Errorf("task universe = %d, want 15", n)
	}
}

// TestPaperInitialExecutionTimes: Table II column 2 gives the initial
// (no-overhead) execution times: 79, 37 and 94 ms.
func TestPaperInitialExecutionTimes(t *testing.T) {
	cases := []struct {
		g    *taskgraph.Graph
		want simtime.Time
	}{
		{JPEG(), simtime.FromMs(79)},
		{MPEG1(), simtime.FromMs(37)},
		{Hough(), simtime.FromMs(94)},
	}
	for _, tt := range cases {
		if got := tt.g.CriticalPath(); got != tt.want {
			t.Errorf("%s critical path = %v, want %v", tt.g.Name(), got, tt.want)
		}
	}
}

func TestFig2Graphs(t *testing.T) {
	tg1, tg2 := Fig2TG1(), Fig2TG2()
	if tg1.NumTasks() != 3 || tg2.NumTasks() != 2 {
		t.Fatalf("node counts: %d, %d", tg1.NumTasks(), tg2.NumTasks())
	}
	if tg1.CriticalPath() != simtime.FromMs(9) {
		t.Errorf("TG1 critical path = %v, want 9 ms", tg1.CriticalPath())
	}
	if tg2.CriticalPath() != simtime.FromMs(8) {
		t.Errorf("TG2 critical path = %v, want 8 ms", tg2.CriticalPath())
	}
	seq := Fig2Sequence()
	if len(seq) != 5 {
		t.Fatalf("sequence length = %d, want 5", len(seq))
	}
	total := 0
	for _, g := range seq {
		total += g.NumTasks()
	}
	if total != 12 {
		t.Errorf("total executions = %d, want 12", total)
	}
	if seq[0] != seq[3] || seq[1] != seq[2] || seq[1] != seq[4] {
		t.Error("sequence must share templates for reuse to be possible")
	}
}

func TestFig3Graphs(t *testing.T) {
	tg1, tg2 := Fig3TG1(), Fig3TG2()
	if tg1.CriticalPath() != simtime.FromMs(18) {
		t.Errorf("TG1 critical path = %v, want 18 ms", tg1.CriticalPath())
	}
	if tg2.CriticalPath() != simtime.FromMs(26) {
		t.Errorf("TG2 critical path = %v, want 26 ms", tg2.CriticalPath())
	}
	seq := Fig3Sequence()
	total := 0
	for _, g := range seq {
		total += g.NumTasks()
	}
	if total != 10 {
		t.Errorf("total executions = %d, want 10 (paper: '7 out of 10 hidden')", total)
	}
}

func TestValidateUniverse(t *testing.T) {
	if err := ValidateUniverse(Multimedia()); err != nil {
		t.Errorf("multimedia pool invalid: %v", err)
	}
	// Repeating the same template is fine.
	j := JPEG()
	if err := ValidateUniverse([]*taskgraph.Graph{j, j, j}); err != nil {
		t.Errorf("repeated template rejected: %v", err)
	}
	// Two *distinct* templates with overlapping IDs must be rejected:
	// Fig. 2 and Fig. 3 families share small IDs.
	if err := ValidateUniverse([]*taskgraph.Graph{Fig2TG1(), Fig3TG1()}); err == nil {
		t.Error("ID collision not detected")
	}
	if err := ValidateUniverse([]*taskgraph.Graph{nil}); err == nil {
		t.Error("nil graph not detected")
	}
}

func TestHoughHasParallelBranch(t *testing.T) {
	if w := Hough().Width(); w < 2 {
		t.Errorf("Hough width = %d, want ≥ 2 (gradient filters run in parallel)", w)
	}
}

func TestPaperLatency(t *testing.T) {
	if PaperLatency() != simtime.FromMs(4) {
		t.Errorf("PaperLatency = %v, want 4 ms", PaperLatency())
	}
}
