// Package coord turns `-shard i/N` into a self-healing worker pool: a
// file-based shard coordinator that lives next to the result store and
// follows the same discipline (plain JSON files, atomic renames, safe to
// share between processes and hosts over any filesystem that renames
// atomically).
//
// The state directory holds one subdirectory per shard. A worker claims
// the next unleased (or expired) shard, heartbeats while it populates
// the shared result store with the shard's slice of the grid, and marks
// the shard done. A worker that dies mid-shard simply stops
// heartbeating: once its lease is older than the TTL, any other worker
// re-claims the shard under the next generation number and re-runs the
// slice — idempotent, because the result store dedupes scenarios by
// canonical config hash, so the scenarios the dead worker did finish are
// served as hits and only the remainder re-simulates.
//
// Mutual exclusion is an O_EXCL file create per (shard, generation):
// exactly one process can create `gen-G.claim`, so every generation of
// every shard has exactly one owner — there is nothing to lock and no
// daemon to run. The claim marker, not the lease file, is the source of
// truth for ownership; the lease file carries the owner's heartbeats. A
// worker that loses its lease to a thief (it stalled past the TTL but
// did not die) may still finish and mark the shard done — the two
// executions wrote the same store entries, so completion by either is
// completion.
//
// Layout under the coordinator directory (these are also the logical
// keys every Backend stores — the protocol state is identical whether
// it lives in files, memory or a campaign database):
//
//	coordinator.json       shard count + lease TTL + sweep fingerprint
//	                       (exclusive create by the first worker; later
//	                       workers verify or adopt all three)
//	shard-0007/
//	  gen-0001.claim       generation claim marker, exclusive create
//	  lease.json           current owner + heartbeat (atomic overwrite)
//	  done.json            completion record (owner, attempts, when)
//
// Persistence is pluggable: the protocol runs over a Backend (Get/Put/
// exclusive-Create/List plus the pool clock). The default FSBackend is
// the historical on-disk format above, byte for byte; MemBackend backs
// fake-clock -race tests and ephemeral single-process pools; and
// SQLiteBackend puts the pool state in the same single-file campaign
// database the result store can use (`-coord sqlite:FILE.db`).
// internal/coordtest runs the shared conformance suite against all of
// them.
//
// The same evidence drives the merge side of the pipeline: a watch-mode
// merge (the CLIs' `-coord … -merge-report -watch`) renders the report
// while the pool populates the store, and decides "finished?" from the
// done records and "still alive?" from the newest heartbeat, claim or
// completion timestamp across the pool — older than the lease TTL means
// no worker can still be heartbeating and the merge errors instead of
// polling forever (CheckDrained/Drained). PoolWatch packages the polling
// loop: background progress lines per shard transition plus a cached
// drain verdict for the sweep executor's workers, final once drained or
// dead. See ARCHITECTURE.md for how coordinator, result store and the
// streaming renderers compose into one unsupervised pipeline.
package coord

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"time"
)

// ErrLeaseLost reports that a later generation of the shard has been
// claimed: the caller stalled past the lease TTL and another worker took
// the shard over. The work itself is safe to finish (store writes are
// idempotent), but the heartbeat no longer protects anything.
var ErrLeaseLost = errors.New("coord: lease lost to a newer claim")

// ErrUninitialised reports an adoption-only Open (Config.Shards == 0) of
// a state directory no worker has initialised yet. CLIs catch it to
// point at their shard-count flag.
var ErrUninitialised = errors.New("coord: state directory not initialised")

// DefaultLeaseTTL is the lease expiry when Config.LeaseTTL is zero: how
// long a shard survives without heartbeats before other workers may
// re-claim it.
const DefaultLeaseTTL = 30 * time.Second

// Config opens a Coordinator.
type Config struct {
	// Dir is the coordinator state directory, shared by every worker of
	// the sweep (for multi-host pools: on the same shared filesystem as
	// the result store). Ignored when Backend is set.
	Dir string
	// Backend, when non-nil, is the persistence substrate the pool
	// state lives in (and the pool's clock); nil means the default
	// filesystem backend over Dir. Coordinators of one pool must use
	// backends over the same state: the same directory or campaign
	// file, or the very same MemBackend instance.
	Backend Backend
	// Shards is the total shard count. The first worker to open the
	// directory persists it; later workers may pass 0 to adopt the
	// existing count, and a non-zero mismatch is an error.
	Shards int
	// Owner identifies this worker in leases and status output. Empty
	// defaults to "host-pid".
	Owner string
	// LeaseTTL is how stale a lease's heartbeat may be before the shard is
	// considered abandoned and re-claimable. Every worker of one pool
	// must use the same TTL, and the coordinator enforces it the same way
	// as the shard count: the first worker persists the value
	// (DefaultLeaseTTL when zero), later workers may pass 0 to adopt it,
	// and a non-zero mismatch is refused — a host with a shorter TTL than
	// the pool would steal live leases and duplicate their work.
	LeaseTTL time.Duration
	// Heartbeat is the refresh (and idle-poll) interval RunWorkers uses;
	// 0 means a quarter of the lease TTL. It must be comfortably below
	// the TTL or live leases will be stolen.
	Heartbeat time.Duration
	// Fingerprint, when non-empty, identifies the sweep this pool is
	// running (experiments, workload parameters, shard count — whatever
	// the caller hashes). The first worker persists it; a later worker
	// with a different non-empty fingerprint is refused, catching the
	// operator error of pointing hosts with different flags at one
	// coordinator before they waste hours populating a store the merge
	// will reject.
	Fingerprint string
}

// Coordinator hands out shard leases from a backend's pool state. Safe
// for concurrent use by any number of goroutines and processes.
type Coordinator struct {
	b         Backend
	shards    int
	ttl       time.Duration
	heartbeat time.Duration
	owner     string
}

// now is the pool clock: every lease-expiry decision — claiming,
// Status, CheckDrained, LastActivity clamping — reads it, and it comes
// from the backend so fake-clock tests drive the exact production
// arithmetic.
func (c *Coordinator) now() time.Time { return c.b.Now() }

// stateFile is coordinator.json: the pool-wide constants every worker
// must agree on.
type stateFile struct {
	Shards      int    `json:"shards"`
	LeaseTTLNS  int64  `json:"lease_ttl_ns"`
	Fingerprint string `json:"fingerprint,omitempty"`
	CreatedBy   string `json:"created_by"`
	CreatedNS   int64  `json:"created_ns"`
}

// leaseFile is shard-*/lease.json: the current generation owner and its
// latest heartbeat.
type leaseFile struct {
	Shard       int    `json:"shard"`
	Gen         int    `json:"gen"`
	Owner       string `json:"owner"`
	HeartbeatNS int64  `json:"heartbeat_ns"`
	StartedNS   int64  `json:"started_ns"`
}

// claimFile is the content of a gen-*.claim marker. The marker's
// existence is the claim; the content lets expiry checks use the
// coordinator's clock (not file mtimes) and status name the claimer.
type claimFile struct {
	Owner     string `json:"owner"`
	ClaimedNS int64  `json:"claimed_ns"`
}

// doneFile is shard-*/done.json: presence marks the shard complete.
type doneFile struct {
	Shard      int    `json:"shard"`
	Owner      string `json:"owner"`
	Attempts   int    `json:"attempts"`
	FinishedNS int64  `json:"finished_ns"`
	ElapsedNS  int64  `json:"elapsed_ns"`
}

// stateKey is the pool-constants record every worker must agree on.
const stateKey = "coordinator.json"

// Open creates or joins the coordinator pool state. See Config for the
// initialise-vs-adopt rules.
func Open(cfg Config) (*Coordinator, error) {
	b := cfg.Backend
	if b == nil {
		if cfg.Dir == "" {
			return nil, errors.New("coord: empty coordinator directory")
		}
		b = NewFS(cfg.Dir)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("coord: shard count %d < 0", cfg.Shards)
	}
	c := &Coordinator{
		b:     b,
		owner: cfg.Owner,
	}
	if c.owner == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		c.owner = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	state, err := getJSON[stateFile](b, stateKey)
	if errors.Is(err, fs.ErrNotExist) {
		if cfg.Shards == 0 {
			return nil, fmt.Errorf("%w: %s — the first worker must pass the shard count", ErrUninitialised, c.Dir())
		}
		ttl := cfg.LeaseTTL
		if ttl <= 0 {
			ttl = DefaultLeaseTTL
		}
		state = &stateFile{
			Shards:      cfg.Shards,
			LeaseTTLNS:  int64(ttl),
			Fingerprint: cfg.Fingerprint,
			CreatedBy:   c.owner,
			CreatedNS:   c.now().UnixNano(),
		}
		err = createJSON(b, stateKey, state)
		if errors.Is(err, fs.ErrExist) {
			// Two first workers raced; adopt the winner's state below.
			state, err = getJSON[stateFile](b, stateKey)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	if state.Shards < 1 {
		return nil, fmt.Errorf("coord: %s in %s records %d shards — corrupt state", stateKey, c.Dir(), state.Shards)
	}
	if cfg.Shards != 0 && cfg.Shards != state.Shards {
		return nil, fmt.Errorf("coord: shard count %d does not match the coordinator's %d (initialised by %s) — every worker of one pool must agree",
			cfg.Shards, state.Shards, state.CreatedBy)
	}
	if cfg.Fingerprint != "" && state.Fingerprint != "" && cfg.Fingerprint != state.Fingerprint {
		return nil, fmt.Errorf("coord: sweep fingerprint mismatch with %s (initialised by %s): this worker was launched with different experiment parameters than the pool",
			c.Dir(), state.CreatedBy)
	}
	c.shards = state.Shards
	// The TTL is pool-wide state, exactly like the shard count: expiry
	// decisions made with different TTLs on different hosts would steal
	// live leases (shorter) or stall recovery (longer).
	c.ttl = time.Duration(state.LeaseTTLNS)
	if c.ttl <= 0 {
		c.ttl = DefaultLeaseTTL // hand-edited or pre-TTL state file
	}
	if cfg.LeaseTTL > 0 && cfg.LeaseTTL != c.ttl {
		return nil, fmt.Errorf("coord: lease TTL %v does not match the pool's %v (initialised by %s) — every worker of one pool must agree",
			cfg.LeaseTTL, c.ttl, state.CreatedBy)
	}
	c.heartbeat = cfg.Heartbeat
	if c.heartbeat <= 0 {
		c.heartbeat = c.ttl / 4
	}
	if c.heartbeat >= c.ttl {
		return nil, fmt.Errorf("coord: heartbeat interval %v is not below the lease TTL %v — live leases would be stolen", c.heartbeat, c.ttl)
	}
	return c, nil
}

// Shards returns the pool's total shard count.
func (c *Coordinator) Shards() int { return c.shards }

// Owner returns this worker's identity as recorded in leases.
func (c *Coordinator) Owner() string { return c.owner }

// LeaseTTL returns the pool's lease expiry.
func (c *Coordinator) LeaseTTL() time.Duration { return c.ttl }

// HeartbeatInterval returns the refresh/poll interval this worker uses
// (Config.Heartbeat, or a quarter of the lease TTL) — also the natural
// cadence for watchers polling the pool's state.
func (c *Coordinator) HeartbeatInterval() time.Duration { return c.heartbeat }

// Dir returns the pool state's location: the state directory for the
// fs backend, the locator ("mem:", "sqlite:FILE") otherwise. The name
// is historical; treat it as a display string, not necessarily a path.
func (c *Coordinator) Dir() string { return c.b.Location() }

// Backend exposes the persistence substrate, for conformance tooling
// and callers sharing one backend across Coordinator handles.
func (c *Coordinator) Backend() Backend { return c.b }

// shardKey is the logical key prefix of one shard's records.
func shardKey(shard int) string {
	return fmt.Sprintf("shard-%04d", shard)
}

func claimKey(shard, gen int) string {
	return fmt.Sprintf("shard-%04d/gen-%04d.claim", shard, gen)
}

func leaseKey(shard int) string { return shardKey(shard) + "/lease.json" }
func doneKey(shard int) string  { return shardKey(shard) + "/done.json" }

// Lease is one claimed (shard, generation): the holder runs the shard's
// slice, heartbeats, and marks it done.
type Lease struct {
	c *Coordinator
	// Shard is the claimed shard index, 0 ≤ Shard < Shards().
	Shard int
	// Gen is the claim generation, 1 on the first attempt. Gen > 1 means
	// the shard was re-claimed after a previous worker's lease expired —
	// the attempt count the CI self-healing gate asserts on.
	Gen int
}

// Claim atomically claims the lowest-numbered shard that is neither done
// nor covered by a live lease, creating generation markers with O_EXCL so
// every (shard, generation) has exactly one owner no matter how many
// workers race. It returns (nil, nil) when nothing is claimable right
// now — every remaining shard is done or leased with fresh heartbeats —
// which is the caller's cue to poll Status and either stop (all done) or
// wait for a lease to expire.
func (c *Coordinator) Claim() (*Lease, error) {
	for shard := 0; shard < c.shards; shard++ {
		lease, err := c.tryShard(shard)
		if err != nil {
			return nil, err
		}
		if lease != nil {
			return lease, nil
		}
	}
	return nil, nil
}

// tryShard claims one shard if it is open: never claimed, or its newest
// generation's heartbeat (falling back to the claim timestamp when the
// claimer died before writing a lease) is older than the TTL.
func (c *Coordinator) tryShard(shard int) (*Lease, error) {
	ins, err := c.inspect(shard)
	if err != nil {
		return nil, err
	}
	if ins.done != nil {
		return nil, nil
	}
	gen := 1
	if ins.topGen > 0 {
		if c.now().Sub(ins.lastBeat) < c.ttl {
			return nil, nil // live lease
		}
		gen = ins.topGen + 1
	}
	claim := claimFile{Owner: c.owner, ClaimedNS: c.now().UnixNano()}
	err = createJSON(c.b, claimKey(shard, gen), &claim)
	if errors.Is(err, fs.ErrExist) {
		return nil, nil // lost the race for this generation; shard is taken
	}
	if err != nil {
		return nil, fmt.Errorf("coord: claim shard %d: %w", shard, err)
	}
	l := &Lease{c: c, Shard: shard, Gen: gen}
	if err := l.writeLease(); err != nil {
		return nil, err
	}
	return l, nil
}

// inspection is one shard's on-disk state, read without locks: the
// newest claimed generation, the freshest evidence of life for it, and
// the done/lease records if present.
type inspection struct {
	topGen   int
	topClaim *claimFile
	lease    *leaseFile
	done     *doneFile
	// lastBeat is the newest generation's proof of life: its lease
	// heartbeat, or its claim timestamp while no lease has been written
	// (the claimer may have died in between — the claim time starts the
	// same TTL clock).
	lastBeat time.Time
}

func (c *Coordinator) inspect(shard int) (*inspection, error) {
	var ins inspection
	names, err := c.b.List(shardKey(shard))
	if errors.Is(err, fs.ErrNotExist) {
		return &ins, nil
	}
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, ".claim") {
			continue
		}
		g, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), ".claim"))
		if err != nil || g <= ins.topGen {
			continue
		}
		ins.topGen = g
	}
	if ins.topGen > 0 {
		// A claim marker that fails to decode still proves the generation
		// exists; its zero timestamp just makes the lease look expired,
		// which is the safe direction (re-claim, idempotent re-run).
		ins.topClaim, _ = getJSON[claimFile](c.b, claimKey(shard, ins.topGen))
		if ins.topClaim != nil {
			ins.lastBeat = time.Unix(0, ins.topClaim.ClaimedNS)
		}
	}
	if l, err := getJSON[leaseFile](c.b, leaseKey(shard)); err == nil && l.Gen == ins.topGen {
		ins.lease = l
		if hb := time.Unix(0, l.HeartbeatNS); hb.After(ins.lastBeat) {
			ins.lastBeat = hb
		}
	}
	ins.lastBeat = c.clampFuture(ins.lastBeat, c.now())
	ins.done, _ = getJSON[doneFile](c.b, doneKey(shard))
	return &ins, nil
}

// clampFuture is the one clock-skew rule every LastActivity and expiry
// decision shares. Timestamps come from other hosts' clocks: skew
// within one TTL just shifts expiry by the skew (stall bounded by
// 2×TTL), but evidence of life further in the future than one TTL can
// only be a broken clock, and trusting it would block recovery of a
// dead shard — or keep a dead pool looking alive to CheckDrained — for
// the whole skew. Treat it as no evidence at all (zero time, already
// expired). Worst case, a live worker with that broken clock has its
// slice re-run concurrently: idempotent duplicate work, never
// corruption. Backward skew only expires leases early, with the same
// bounded cost.
func (c *Coordinator) clampFuture(t, now time.Time) time.Time {
	if t.After(now.Add(c.ttl)) {
		return time.Time{}
	}
	return t
}

// writeLease publishes (or refreshes) the lease file for this holder's
// generation.
func (l *Lease) writeLease() error {
	now := l.c.now().UnixNano()
	lf := leaseFile{
		Shard: l.Shard, Gen: l.Gen, Owner: l.c.owner,
		HeartbeatNS: now, StartedNS: now,
	}
	if prev, err := getJSON[leaseFile](l.c.b, leaseKey(l.Shard)); err == nil && prev.Gen == l.Gen {
		lf.StartedNS = prev.StartedNS
	}
	if err := putJSON(l.c.b, leaseKey(l.Shard), &lf); err != nil {
		return fmt.Errorf("coord: lease shard %d: %w", l.Shard, err)
	}
	return nil
}

// Heartbeat refreshes the lease so other workers keep treating the shard
// as live. It returns ErrLeaseLost once a newer generation has been
// claimed — the holder stalled past the TTL and the shard now belongs to
// someone else; finishing the work remains safe, but Done will be
// credited to whichever generation completes first.
func (l *Lease) Heartbeat() error {
	ins, err := l.c.inspect(l.Shard)
	if err != nil {
		return err
	}
	if ins.topGen > l.Gen {
		return ErrLeaseLost
	}
	return l.writeLease()
}

// Done marks the shard complete. Idempotent: the first completion record
// wins and later ones (a stale-generation holder finishing after a
// take-over) are no-ops — by then the store holds the shard's entries
// either way.
func (l *Lease) Done() error {
	d := doneFile{
		Shard: l.Shard, Owner: l.c.owner, Attempts: l.Gen,
		FinishedNS: l.c.now().UnixNano(),
	}
	if lf, err := getJSON[leaseFile](l.c.b, leaseKey(l.Shard)); err == nil && lf.Gen == l.Gen {
		d.ElapsedNS = d.FinishedNS - lf.StartedNS
	}
	key := doneKey(l.Shard)
	err := createJSON(l.c.b, key, &d)
	if errors.Is(err, fs.ErrExist) {
		// Someone recorded completion first — fine. Unless the existing
		// record is undecodable (disk damage; our own writes are atomic):
		// then inspect would keep reporting the shard unfinished and the
		// pool would re-run it forever, so repair it in place.
		if _, rerr := getJSON[doneFile](l.c.b, key); rerr != nil {
			if werr := putJSON(l.c.b, key, &d); werr != nil {
				return fmt.Errorf("coord: repair done record of shard %d: %w", l.Shard, werr)
			}
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("coord: done shard %d: %w", l.Shard, err)
	}
	return nil
}

// ShardState classifies one shard in a Status report.
type ShardState string

const (
	// StatePending — never claimed, or every claim's lease has expired.
	StatePending ShardState = "pending"
	// StateLeased — a live lease is heartbeating.
	StateLeased ShardState = "leased"
	// StateDone — a completion record exists.
	StateDone ShardState = "done"
)

// ShardStatus is one shard's row in a Status report.
type ShardStatus struct {
	Shard int
	State ShardState
	// Owner is the completing worker (done), the current leaseholder
	// (leased), or the last claimer (pending after expiry).
	Owner string
	// Attempts is how many generations were claimed — the self-healing
	// evidence: attempts > 1 means at least one worker died (or stalled
	// past the TTL) on this shard and another took it over.
	Attempts int
	// HeartbeatAge is the age of the newest proof of life; meaningful for
	// leased and expired-pending shards.
	HeartbeatAge time.Duration
	// LastActivity is the shard's newest proof of life as an absolute
	// time: the completion time for done shards, the newest heartbeat (or
	// claim) timestamp for claimed ones, zero for never-claimed shards.
	// Watch-mode merges aggregate it across the pool to tell a slow pool
	// from a dead one (see CheckDrained).
	LastActivity time.Time
}

// Status is a point-in-time snapshot of every shard.
type Status struct {
	Shards []ShardStatus
}

// Counts tallies the snapshot by state.
func (s Status) Counts() (done, leased, pending int) {
	for _, sh := range s.Shards {
		switch sh.State {
		case StateDone:
			done++
		case StateLeased:
			leased++
		default:
			pending++
		}
	}
	return
}

// AllDone reports whether every shard has a completion record.
func (s Status) AllDone() bool {
	done, _, _ := s.Counts()
	return done == len(s.Shards)
}

// MaxAttempts returns the largest per-shard attempt count in the
// snapshot (0 when nothing was ever claimed).
func (s Status) MaxAttempts() int {
	max := 0
	for _, sh := range s.Shards {
		if sh.Attempts > max {
			max = sh.Attempts
		}
	}
	return max
}

// Status snapshots every shard's state. It is advisory — leases move
// under concurrent workers — but a shard reported done stays done.
func (c *Coordinator) Status() (Status, error) {
	st := Status{Shards: make([]ShardStatus, c.shards)}
	now := c.now()
	for i := range st.Shards {
		row := &st.Shards[i]
		row.Shard = i
		ins, err := c.inspect(i)
		if err != nil {
			return Status{}, err
		}
		switch {
		case ins.done != nil:
			row.State = StateDone
			row.Owner = ins.done.Owner
			row.Attempts = ins.done.Attempts
			if ins.topGen > row.Attempts {
				row.Attempts = ins.topGen
			}
			// clampFuture: a completion stamped beyond one TTL in the
			// future can only be a broken clock, and letting it stand
			// would keep an otherwise-dead pool looking alive for the
			// whole skew. Zero evidence errs toward the dead verdict —
			// an error the operator sees, never a hang.
			row.LastActivity = c.clampFuture(time.Unix(0, ins.done.FinishedNS), now)
		case ins.topGen > 0:
			row.Attempts = ins.topGen
			row.HeartbeatAge = now.Sub(ins.lastBeat)
			row.LastActivity = ins.lastBeat
			if row.HeartbeatAge < c.ttl {
				row.State = StateLeased
			} else {
				row.State = StatePending
			}
			if ins.lease != nil {
				row.Owner = ins.lease.Owner
			} else if ins.topClaim != nil {
				row.Owner = ins.topClaim.Owner
			}
		default:
			row.State = StatePending
		}
	}
	return st, nil
}

// Render prints the status as the operator-facing table the CLIs'
// -coord-status flag emits (and the CI self-healing gate greps — keep
// the format stable).
func (s Status) Render(dir string) string {
	var b strings.Builder
	done, leased, pending := s.Counts()
	fmt.Fprintf(&b, "coordinator %s: %d shards, %d done, %d leased, %d pending\n",
		dir, len(s.Shards), done, leased, pending)
	for _, sh := range s.Shards {
		fmt.Fprintf(&b, "shard %d: %s", sh.Shard, sh.State)
		if sh.Owner != "" {
			fmt.Fprintf(&b, " by %s", sh.Owner)
		}
		if sh.Attempts > 0 {
			fmt.Fprintf(&b, ", attempts %d", sh.Attempts)
		}
		if sh.State == StateLeased {
			fmt.Fprintf(&b, ", heartbeat %s ago", sh.HeartbeatAge.Round(time.Millisecond))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
