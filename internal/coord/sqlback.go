package coord

import (
	"errors"
	"io/fs"
	"strings"
	"time"

	"repro/internal/campdb"
)

// SQLiteBackend keeps the pool state in the single-file campaign
// database behind the CLIs' `-coord sqlite:FILE.db` scheme (see
// internal/campdb). Pointing -store and -coord at the same file puts
// the result objects and the coordinator state side by side in
// separate buckets: the whole campaign — every stored scenario, every
// lease and attempt record — is one portable artifact. Exclusive
// Create maps to the database's locked set-if-absent, so claims keep
// their exactly-one-winner property across processes sharing the file.
type SQLiteBackend struct {
	// Clock overrides the expiry clock; nil means time.Now.
	Clock func() time.Time

	db *campdb.DB
}

// coordBucket holds coordinator state; internal/resultstore uses the
// "object" bucket in the same file.
const coordBucket = "coord"

// NewSQLite opens (creating if needed) the campaign database at path
// and returns its coordinator backend.
func NewSQLite(path string) (*SQLiteBackend, error) {
	db, err := campdb.Open(path)
	if err != nil {
		return nil, err
	}
	return &SQLiteBackend{db: db}, nil
}

func (b *SQLiteBackend) Get(key string) ([]byte, error) {
	data, err := b.db.Get(coordBucket, key)
	if errors.Is(err, campdb.ErrNotExist) {
		return nil, fs.ErrNotExist
	}
	return data, err
}

func (b *SQLiteBackend) Put(key string, data []byte) error {
	return b.db.Put(coordBucket, key, data)
}

func (b *SQLiteBackend) Create(key string, data []byte) error {
	err := b.db.Create(coordBucket, key, data)
	if errors.Is(err, campdb.ErrExist) {
		return fs.ErrExist
	}
	return err
}

func (b *SQLiteBackend) List(dir string) ([]string, error) {
	keys, err := b.db.Keys(coordBucket)
	if err != nil {
		return nil, err
	}
	prefix := dir + "/"
	var names []string
	for _, k := range keys {
		if rest, ok := strings.CutPrefix(k, prefix); ok && rest != "" && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	return names, nil
}

func (b *SQLiteBackend) Now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *SQLiteBackend) Location() string { return "sqlite:" + b.db.Path() }

var _ Backend = (*SQLiteBackend)(nil)
