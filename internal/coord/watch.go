package coord

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file is the merge side of the coordinator protocol: a watch-mode
// merge (`-merge-report -watch`) starts before — or while — the worker
// pool populates the shared result store, renders each report row the
// moment its scenarios are stored, and needs exactly two answers from
// the pool state: "is it finished?" and "is it still alive?". Both come
// from the same evidence workers already leave behind — heartbeats,
// claim timestamps and done records — so watching needs no new protocol,
// no daemon and no cooperation from the workers.

// OpenForMerge opens the pool on behalf of a merge-side consumer (the
// CLIs' `-coord … -merge-report`). With wait set, an uninitialised state
// directory is polled once a second until a worker initialises it —
// announced once on out — so a watch-mode merge may start before the
// first worker ("launch everywhere, merge anywhere, in any order"); the
// fingerprint check still refuses a merge whose flags differ from the
// pool's the moment the pool exists. Without wait, ErrUninitialised
// passes through for the caller to decorate.
func OpenForMerge(cfg Config, wait bool, out io.Writer) (*Coordinator, error) {
	announced := false
	for {
		c, err := Open(cfg)
		if !wait || !errors.Is(err, ErrUninitialised) {
			return c, err
		}
		if !announced {
			fmt.Fprintf(out, "merge watch: waiting for a worker to initialise %s\n", cfg.Dir)
			announced = true
		}
		time.Sleep(time.Second)
	}
}

// MergeGate is the whole merge-side drain policy behind the CLIs'
// `-coord … -merge-report [-watch]`, kept in one place so the two CLIs
// cannot drift: it opens the pool (OpenForMerge — with watch set a
// not-yet-initialised pool is awaited, without it ErrUninitialised is
// decorated with the operator hint), then either starts a background
// PoolWatch printing progress to out (watch: the returned PoolWatch and
// poll interval — the heartbeat interval capped at one second — wire
// straight into a sweep StoreWait, and the caller must Stop the watch
// and Wait for the drain after rendering), or checks the pool has
// already drained and refuses with the per-shard tally otherwise
// (pw == nil in that case).
func MergeGate(cfg Config, watch bool, out io.Writer) (c *Coordinator, pw *PoolWatch, poll time.Duration, err error) {
	c, err = OpenForMerge(cfg, watch, out)
	if errors.Is(err, ErrUninitialised) {
		return nil, nil, 0, fmt.Errorf("%w — no worker has initialised the pool yet (start the workers, or add -watch to wait for them)", err)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	if !watch {
		st, err := c.Status()
		if err != nil {
			return nil, nil, 0, err
		}
		if !st.AllDone() {
			done, leased, pending := st.Counts()
			return nil, nil, 0, fmt.Errorf("coordinator pool %s has not drained (%d done, %d leased, %d pending of %d shards) — wait for the workers, or add -watch to block and render rows as shards land",
				cfg.Dir, done, leased, pending, c.Shards())
		}
		return c, nil, 0, nil
	}
	poll = c.HeartbeatInterval()
	if poll > time.Second {
		poll = time.Second
	}
	return c, c.WatchPool(out, poll), poll, nil
}

// CheckDrained classifies a Status snapshot for a watcher:
//
//   - (true, nil) once every shard has a completion record — the pool
//     has drained and no further store entries will arrive;
//   - (false, nil) while the pool is live (a heartbeat, claim or
//     completion younger than the lease TTL exists) or has not started
//     (nothing was ever claimed — a watch launched before the first
//     worker waits for the pool to form);
//   - (false, error) when the pool is dead: shards were claimed but the
//     newest proof of life across the whole pool is older than the lease
//     TTL. No worker can still be heartbeating — the same TTL rule that
//     lets surviving workers re-claim a dead worker's shard — so the
//     remaining shards will never finish without operator action, and a
//     watcher must error out rather than poll forever.
//
// The dead verdict deliberately keys on pool-wide evidence, not
// per-shard leases: between finishing one shard and claiming the next a
// healthy worker briefly holds no lease at all, but its last completion
// (or its next claim) keeps the newest-activity clock fresh.
func (c *Coordinator) CheckDrained(st Status) (bool, error) {
	if st.AllDone() {
		return true, nil
	}
	var newest time.Time
	claimed := false
	for _, sh := range st.Shards {
		if sh.Attempts > 0 || sh.State == StateDone {
			claimed = true
		}
		if sh.LastActivity.After(newest) {
			newest = sh.LastActivity
		}
	}
	if !claimed {
		return false, nil // pool forming: no worker has claimed anything yet
	}
	if age := c.now().Sub(newest); age > c.ttl {
		done, leased, pending := st.Counts()
		return false, fmt.Errorf("coord: pool %s looks dead: %d done, %d leased, %d pending, and the newest heartbeat/completion is %v old (lease TTL %v) — no live worker remains; restart workers, then re-run the merge",
			c.Dir(), done, leased, pending, age.Round(time.Millisecond), c.ttl)
	}
	return false, nil
}

// Drained is the one-shot form of CheckDrained over a fresh Status
// snapshot, shaped to serve directly as a sweep StoreWait.Done callback.
// Safe for concurrent use.
func (c *Coordinator) Drained() (bool, error) {
	st, err := c.Status()
	if err != nil {
		return false, err
	}
	return c.CheckDrained(st)
}

// Watcher diffs successive Status snapshots into the operator-facing
// progress lines a watch-mode merge prints to stderr. Line formats are
// stable — the CI watch gate greps them:
//
//	merge watch: DIR: 2/6 shards done, 3 leased, 1 pending
//	merge watch: shard 4 leased by hostA-11 (attempt 1)
//	merge watch: shard 4 done by hostA-11 (attempt 1)
//	merge watch: shard 4 lease expired (last owner hostA-11, attempt 1)
//	merge watch: pool drained: 6 shards done
//
// The counts line prints on the first Tick and whenever the tally
// changes; a per-shard line prints on every state or attempt transition
// (a new attempt on a leased shard means the lease was re-claimed after
// expiry — the self-healing path made visible).
type Watcher struct {
	c       *Coordinator
	prev    []ShardStatus
	counts  string
	settled bool
}

// NewWatcher returns a Watcher over this coordinator's pool.
func (c *Coordinator) NewWatcher() *Watcher { return &Watcher{c: c} }

// Tick snapshots the pool and returns the progress lines describing what
// changed since the previous Tick, plus the drain verdict (see
// CheckDrained; err is the dead-pool or I/O error). Once drained it
// reports (nil, true, nil) forever.
func (w *Watcher) Tick() (lines []string, drained bool, err error) {
	if w.settled {
		return nil, true, nil
	}
	st, err := w.c.Status()
	if err != nil {
		return nil, false, err
	}
	done, leased, pending := st.Counts()
	counts := fmt.Sprintf("merge watch: %s: %d/%d shards done, %d leased, %d pending",
		w.c.Dir(), done, len(st.Shards), leased, pending)
	if counts != w.counts {
		lines = append(lines, counts)
		w.counts = counts
	}
	for i, sh := range st.Shards {
		var prev ShardStatus
		if i < len(w.prev) {
			prev = w.prev[i]
		}
		if sh.State == prev.State && sh.Attempts == prev.Attempts {
			continue
		}
		switch sh.State {
		case StateDone:
			lines = append(lines, fmt.Sprintf("merge watch: shard %d done by %s (attempt %d)", sh.Shard, sh.Owner, sh.Attempts))
		case StateLeased:
			lines = append(lines, fmt.Sprintf("merge watch: shard %d leased by %s (attempt %d)", sh.Shard, sh.Owner, sh.Attempts))
		default:
			if sh.Attempts > 0 {
				lines = append(lines, fmt.Sprintf("merge watch: shard %d lease expired (last owner %s, attempt %d)", sh.Shard, sh.Owner, sh.Attempts))
			}
		}
	}
	w.prev = st.Shards
	drained, err = w.c.CheckDrained(st)
	if drained {
		w.settled = true
		lines = append(lines, fmt.Sprintf("merge watch: pool drained: %d shards done", len(st.Shards)))
	}
	return lines, drained, err
}

// PoolWatch is a background Watcher: one goroutine polls the pool,
// prints progress lines, and caches the latest drain verdict so any
// number of sweep workers can consult Done without each re-reading the
// state directory. Create with WatchPool, release with Stop.
type PoolWatch struct {
	mu      sync.Mutex
	drained bool
	err     error

	settled  chan struct{} // closed once the verdict is final (drained or dead)
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// WatchPool starts a PoolWatch printing progress lines to out every
// interval (≤ 0 means the pool's heartbeat interval). The first poll is
// synchronous, so Done is meaningful immediately. The watch goroutine
// exits on Stop or once the pool settles — drained, dead, or state
// directory unreadable; a settled verdict is final for this watch (a
// pool revived after a dead verdict needs a fresh merge).
func (c *Coordinator) WatchPool(out io.Writer, interval time.Duration) *PoolWatch {
	if interval <= 0 {
		interval = c.heartbeat
	}
	pw := &PoolWatch{settled: make(chan struct{}), stop: make(chan struct{})}
	w := c.NewWatcher()
	tick := func() bool {
		lines, drained, err := w.Tick()
		for _, l := range lines {
			fmt.Fprintln(out, l)
		}
		if err != nil {
			fmt.Fprintln(out, "merge watch:", err)
		}
		pw.mu.Lock()
		pw.drained, pw.err = drained, err
		pw.mu.Unlock()
		if drained || err != nil {
			close(pw.settled)
			return true
		}
		return false
	}
	if tick() {
		return pw
	}
	pw.wg.Add(1)
	go func() {
		defer pw.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-pw.stop:
				return
			case <-t.C:
				if tick() {
					return
				}
			}
		}
	}()
	return pw
}

// Done reports the latest cached verdict, in the shape of a sweep
// StoreWait.Done callback. Safe for concurrent use.
func (pw *PoolWatch) Done() (bool, error) {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.drained, pw.err
}

// Wait blocks until the pool settles and returns the final verdict. A
// watch-mode merge can finish rendering marginally before the pool's
// last done record lands (store writes precede completion records);
// waiting here is what makes "-watch blocks until the pool drains" —
// and the final "pool drained" progress line — part of the contract
// rather than a race. Returns early with the latest verdict if Stop is
// called first.
func (pw *PoolWatch) Wait() (bool, error) {
	select {
	case <-pw.settled:
	case <-pw.stop:
	}
	return pw.Done()
}

// Stop ends the background polling and waits for the watch goroutine to
// exit. Idempotent.
func (pw *PoolWatch) Stop() {
	pw.stopOnce.Do(func() { close(pw.stop) })
	pw.wg.Wait()
}
