package coord

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// RunStats summarizes one process's share of a pool run.
type RunStats struct {
	// Completed counts the shards this process finished.
	Completed int
	// Recovered counts completions at generation > 1: shards this process
	// re-ran after another worker's lease expired.
	Recovered int
	// LostLeases counts heartbeats that found a newer claim — this
	// process stalled past the TTL on a shard and finished it anyway.
	LostLeases int
}

// Summary renders the one-line epilogue both CLIs print to stderr after
// a successful RunWorkers (and the CI self-healing gate may grep — keep
// the format stable, and keep it here so the CLIs cannot drift apart).
func (s RunStats) Summary(shards int) string {
	return fmt.Sprintf("coord pool drained: all %d shards done; this process completed %d (%d recovered from expired leases)",
		shards, s.Completed, s.Recovered)
}

// ShardRun is handed to the RunWorkers callback for each claimed shard.
type ShardRun struct {
	// Shard and Count are the claimed slice's coordinates: run
	// sweep.Shard{Index: Shard, Count: Count}.
	Shard, Count int
	// Attempt is the claim generation (1 = first attempt).
	Attempt int
}

// RunWorkers drains the pool: `workers` concurrent claim loops, each
// claiming a shard, running fn on it with heartbeats maintained in the
// background (at a quarter of the lease TTL), marking it done and moving
// on. A loop that finds nothing claimable polls until every shard is
// done — covering the self-healing case where the only remaining shard
// is leased to a worker that has died and must first expire.
//
// The first fn error stops this process's loops and is returned; the
// erroring shard's lease is left to expire so other processes (or a
// retry of this one) re-claim it. A deterministic per-shard failure thus
// fails each worker that attempts it rather than retrying forever.
//
// fn runs concurrently from multiple loops; everything it shares must be
// safe for that (the sweep executor and result store are).
func (c *Coordinator) RunWorkers(workers int, fn func(ShardRun) error) (RunStats, error) {
	if workers < 1 {
		workers = 1
	}
	interval := c.heartbeat
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}

	var (
		mu       sync.Mutex
		stats    RunStats
		firstErr error
		stop     = make(chan struct{})
		stopOnce sync.Once
	)
	abort := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped() {
				lease, err := c.Claim()
				if err != nil {
					abort(err)
					return
				}
				if lease == nil {
					st, err := c.Status()
					if err != nil {
						abort(err)
						return
					}
					if st.AllDone() {
						return
					}
					select {
					case <-stop:
						return
					case <-time.After(interval):
					}
					continue
				}
				lost, err := c.runLeased(lease, interval, fn)
				if err != nil {
					abort(fmt.Errorf("shard %d/%d (attempt %d): %w", lease.Shard, c.shards, lease.Gen, err))
					return
				}
				mu.Lock()
				stats.Completed++
				if lease.Gen > 1 {
					stats.Recovered++
				}
				if lost {
					stats.LostLeases++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return stats, firstErr
}

// runLeased executes fn for one lease with a background heartbeat,
// then marks the shard done. A lost lease is reported, not fatal: the
// work completed and the store holds its entries either way.
func (c *Coordinator) runLeased(lease *Lease, interval time.Duration, fn func(ShardRun) error) (lost bool, err error) {
	hbStop := make(chan struct{})
	hbDone := make(chan bool)
	go func() {
		leaseLost := false
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-hbStop:
				hbDone <- leaseLost
				return
			case <-ticker.C:
				if !leaseLost {
					if err := lease.Heartbeat(); errors.Is(err, ErrLeaseLost) {
						leaseLost = true
					}
					// Other heartbeat errors (transient filesystem trouble)
					// are dropped: the next tick retries, and a persistently
					// unreachable state directory surfaces as an expired
					// lease plus a duplicate, idempotent re-run.
				}
			}
		}
	}()
	err = fn(ShardRun{Shard: lease.Shard, Count: c.shards, Attempt: lease.Gen})
	close(hbStop)
	lost = <-hbDone
	if err != nil {
		return lost, err
	}
	return lost, lease.Done()
}
