package coord

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an adjustable test clock shared by every coordinator
// handle of a test, so lease expiry is driven deterministically instead
// of by sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// sortedAttempts lists every claimed generation of a shard in ascending
// order, from the claim markers alone.
func (c *Coordinator) sortedAttempts(shard int) ([]int, error) {
	names, err := c.b.List(shardKey(shard))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var gens []int
	for _, name := range names {
		if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, ".claim") {
			continue
		}
		if g, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), ".claim")); err == nil {
			gens = append(gens, g)
		}
	}
	sort.Ints(gens)
	return gens, nil
}

// fsOn builds a filesystem backend over dir on the given test clock —
// a fresh handle per worker, the way separate processes would open the
// same state directory.
func fsOn(dir string, clk *fakeClock) *FSBackend {
	b := NewFS(dir)
	b.Clock = clk.Now
	return b
}

func openTest(t *testing.T, dir string, shards int, owner string, clk *fakeClock) *Coordinator {
	t.Helper()
	c, err := Open(Config{
		Backend: fsOn(dir, clk),
		Shards:  shards, Owner: owner,
		LeaseTTL: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClaimLifecycle(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c := openTest(t, dir, 3, "w1", clk)

	var leases []*Lease
	for i := 0; i < 3; i++ {
		l, err := c.Claim()
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			t.Fatalf("claim %d returned nothing with open shards", i)
		}
		if l.Shard != i || l.Gen != 1 {
			t.Fatalf("claim %d = shard %d gen %d, want shard %d gen 1", i, l.Shard, l.Gen, i)
		}
		leases = append(leases, l)
	}
	if l, err := c.Claim(); err != nil || l != nil {
		t.Fatalf("claim on a fully leased pool = %v, %v; want nil, nil", l, err)
	}

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if done, leased, pending := st.Counts(); done != 0 || leased != 3 || pending != 0 {
		t.Fatalf("status %d/%d/%d, want 0 done, 3 leased, 0 pending", done, leased, pending)
	}

	for _, l := range leases {
		if err := l.Done(); err != nil {
			t.Fatal(err)
		}
	}
	st, err = c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.AllDone() {
		t.Fatalf("not all done after completing every shard: %+v", st.Shards)
	}
	if st.MaxAttempts() != 1 {
		t.Fatalf("max attempts %d on an uncontested run, want 1", st.MaxAttempts())
	}
	if l, err := c.Claim(); err != nil || l != nil {
		t.Fatalf("claim on a finished pool = %v, %v; want nil, nil", l, err)
	}
}

func TestExpiredLeaseReclaimed(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	dead := openTest(t, dir, 2, "dead", clk)
	alive := openTest(t, dir, 0, "alive", clk)

	l, err := dead.Claim()
	if err != nil || l == nil || l.Shard != 0 {
		t.Fatalf("dead worker claim = %v, %v", l, err)
	}
	// While the heartbeat is fresh the live worker gets the other shard,
	// then nothing.
	l2, err := alive.Claim()
	if err != nil || l2 == nil || l2.Shard != 1 {
		t.Fatalf("alive claim = %v, %v, want shard 1", l2, err)
	}
	if l3, _ := alive.Claim(); l3 != nil {
		t.Fatalf("claimed %d while both shards are live", l3.Shard)
	}

	// The dead worker stops heartbeating; past the TTL its shard is
	// re-leased under the next generation.
	clk.Advance(11 * time.Second)
	if err := l2.Heartbeat(); err != nil {
		t.Fatalf("heartbeat of the live lease: %v", err)
	}
	stolen, err := alive.Claim()
	if err != nil || stolen == nil {
		t.Fatalf("reclaim = %v, %v", stolen, err)
	}
	if stolen.Shard != 0 || stolen.Gen != 2 {
		t.Fatalf("reclaimed shard %d gen %d, want shard 0 gen 2", stolen.Shard, stolen.Gen)
	}

	// The original holder's heartbeat now reports the loss.
	if err := l.Heartbeat(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale holder heartbeat = %v, want ErrLeaseLost", err)
	}

	if err := stolen.Done(); err != nil {
		t.Fatal(err)
	}
	st, err := alive.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards[0].State != StateDone || st.Shards[0].Attempts != 2 || st.Shards[0].Owner != "alive" {
		t.Fatalf("recovered shard status %+v, want done/attempts 2/alive", st.Shards[0])
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := openTest(t, dir, 1, "a", clk)
	b := openTest(t, dir, 0, "b", clk)

	l, err := a.Claim()
	if err != nil || l == nil {
		t.Fatal(l, err)
	}
	// Heartbeats every 6 s against a 10 s TTL: the shard must never be
	// claimable from the other worker.
	for i := 0; i < 5; i++ {
		clk.Advance(6 * time.Second)
		if err := l.Heartbeat(); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
		if thief, _ := b.Claim(); thief != nil {
			t.Fatalf("shard stolen at heartbeat %d", i)
		}
	}
}

// TestDeadBeforeLeaseWrite covers the crash window between winning the
// claim marker and writing the lease file: the claim timestamp starts
// the same TTL clock, so the shard is not stuck forever.
func TestDeadBeforeLeaseWrite(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c := openTest(t, dir, 1, "w", clk)

	// Simulate the half-dead claimer by writing the claim marker alone.
	if err := createJSON(c.b, claimKey(0, 1), &claimFile{Owner: "ghost", ClaimedNS: clk.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if l, _ := c.Claim(); l != nil {
		t.Fatalf("claimed shard %d while the ghost's claim is fresh", l.Shard)
	}
	clk.Advance(11 * time.Second)
	l, err := c.Claim()
	if err != nil || l == nil || l.Gen != 2 {
		t.Fatalf("post-expiry claim = %+v, %v, want gen 2", l, err)
	}
}

func TestOpenValidation(t *testing.T) {
	clk := newFakeClock()
	if _, err := Open(Config{Dir: "", Shards: 1}); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	if _, err := Open(Config{Backend: fsOn(dir, clk)}); err == nil || !strings.Contains(err.Error(), "not initialised") {
		t.Errorf("adopting an uninitialised dir = %v, want a pointed error", err)
	}
	if _, err := Open(Config{Backend: fsOn(dir, clk), Shards: 4, Fingerprint: "sweep-a"}); err != nil {
		t.Fatal(err)
	}
	// Adoption with 0 shards, and agreement with the recorded count.
	c, err := Open(Config{Backend: fsOn(dir, clk)})
	if err != nil || c.Shards() != 4 {
		t.Fatalf("adopt = %v shards %d, want 4", err, c.Shards())
	}
	if _, err := Open(Config{Backend: fsOn(dir, clk), Shards: 6}); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("shard-count mismatch = %v, want refusal", err)
	}
	if _, err := Open(Config{Backend: fsOn(dir, clk), Fingerprint: "sweep-b"}); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Errorf("fingerprint mismatch = %v, want refusal", err)
	}
	if _, err := Open(Config{Backend: fsOn(dir, clk), Fingerprint: "sweep-a"}); err != nil {
		t.Errorf("matching fingerprint refused: %v", err)
	}
}

// TestLeaseTTLIsPoolState: the TTL is persisted like the shard count —
// adopted when omitted, refused on mismatch — because expiry decisions
// made with different TTLs on different hosts would steal live leases.
func TestLeaseTTLIsPoolState(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	first, err := Open(Config{Backend: fsOn(dir, clk), Shards: 2, Owner: "a", LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if first.LeaseTTL() != 5*time.Second {
		t.Fatalf("initialiser TTL %v, want 5s", first.LeaseTTL())
	}
	adopted, err := Open(Config{Backend: fsOn(dir, clk), Owner: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if adopted.LeaseTTL() != 5*time.Second {
		t.Fatalf("adopted TTL %v, want the pool's 5s", adopted.LeaseTTL())
	}
	if _, err := Open(Config{Backend: fsOn(dir, clk), Owner: "c", LeaseTTL: 7 * time.Second}); err == nil || !strings.Contains(err.Error(), "lease TTL") {
		t.Errorf("TTL mismatch = %v, want refusal", err)
	}
	if _, err := Open(Config{Backend: fsOn(dir, clk), Owner: "d", LeaseTTL: 5 * time.Second}); err != nil {
		t.Errorf("matching TTL refused: %v", err)
	}
}

// TestDoneRepairsCorruptRecord: an undecodable done.json (disk damage —
// our own writes are atomic) must not livelock the pool; the next
// completion repairs it in place.
func TestDoneRepairsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c := openTest(t, dir, 1, "w", clk)
	l, err := c.Claim()
	if err != nil || l == nil {
		t.Fatal(l, err)
	}
	// The torn/garbage record a crashed disk could leave behind.
	if err := c.b.Put(doneKey(0), nil); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.AllDone() {
		t.Fatal("corrupt done record counted as completion")
	}
	if err := l.Done(); err != nil {
		t.Fatal(err)
	}
	st, err = c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.AllDone() {
		t.Fatalf("Done did not repair the corrupt record: %+v", st.Shards)
	}
}

// TestClaimSurvivesFutureTimestamps: a dead worker whose clock ran ahead
// must not block recovery for the skew. Beyond one TTL of future skew
// the timestamp can only be a broken clock and reads as expired at
// once; within one TTL, expiry shifts by the skew (stall ≤ 2×TTL).
func TestClaimSurvivesFutureTimestamps(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	broken := &fakeClock{t: clk.Now().Add(time.Hour)} // 1h ahead, dead
	dead, err := Open(Config{Backend: fsOn(dir, broken), Shards: 2, Owner: "dead", LeaseTTL: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if l, err := dead.Claim(); err != nil || l == nil || l.Shard != 0 {
		t.Fatal(l, err)
	}
	alive := openTest(t, dir, 0, "alive", clk)
	l, err := alive.Claim()
	if err != nil || l == nil || l.Shard != 0 || l.Gen != 2 {
		t.Fatalf("hour-future lease claim = %+v, %v; want immediate gen-2 reclaim of shard 0", l, err)
	}
	if err := l.Done(); err != nil {
		t.Fatal(err) // finish shard 0 so the clock advance below can't expire our own lease
	}

	// Modest skew (3s ahead of a 10s TTL): live until (skew + TTL) on
	// the local clock, never a theft of a possibly-live lease.
	slight := &fakeClock{t: clk.Now().Add(3 * time.Second)}
	dead2, err := Open(Config{Backend: fsOn(dir, slight), Owner: "dead2", LeaseTTL: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if l, err := dead2.Claim(); err != nil || l == nil || l.Shard != 1 {
		t.Fatal(l, err)
	}
	if l, _ := alive.Claim(); l != nil {
		t.Fatalf("slightly-future lease stolen immediately (shard %d)", l.Shard)
	}
	clk.Advance(14 * time.Second) // past skew + TTL
	l2, err := alive.Claim()
	if err != nil || l2 == nil || l2.Shard != 1 || l2.Gen != 2 {
		t.Fatalf("reclaim after skew+TTL = %+v, %v, want shard 1 gen 2", l2, err)
	}
}

// TestClaimContentionProperty is the lease-exclusion property test: K
// goroutines race to drain N shards, and every shard must be claimed
// exactly once per lease generation — no lost shards, no double claims.
// A second round races the same workers over the expired (never
// completed) leases to prove per-generation exclusion, not just
// first-claim exclusion.
func TestClaimContentionProperty(t *testing.T) {
	const (
		shards  = 24
		workers = 8
	)
	dir := t.TempDir()
	clk := newFakeClock()

	race := func(wantGen int) {
		t.Helper()
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			claimed = make(map[int][]string) // shard -> claiming owners
			total   atomic.Int64
		)
		for w := 0; w < workers; w++ {
			owner := fmt.Sprintf("w%d", w)
			c := openTest(t, dir, shards, owner, clk)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					l, err := c.Claim()
					if err != nil {
						t.Error(err)
						return
					}
					if l == nil {
						return // nothing claimable for this worker
					}
					if l.Gen != wantGen {
						t.Errorf("shard %d claimed at gen %d, want %d", l.Shard, l.Gen, wantGen)
					}
					mu.Lock()
					claimed[l.Shard] = append(claimed[l.Shard], owner)
					mu.Unlock()
					total.Add(1)
				}
			}()
		}
		wg.Wait()
		if total.Load() != shards {
			t.Fatalf("generation %d: %d claims for %d shards", wantGen, total.Load(), shards)
		}
		for s := 0; s < shards; s++ {
			if n := len(claimed[s]); n != 1 {
				t.Errorf("generation %d: shard %d claimed %d times by %v", wantGen, s, n, claimed[s])
			}
		}
	}

	race(1)
	// No shard was completed; expire every generation-1 lease and prove
	// the second generation is handed out exactly once per shard too.
	clk.Advance(11 * time.Second)
	race(2)

	// The claim markers on disk agree: every shard carries exactly the
	// generations 1 and 2.
	c := openTest(t, dir, shards, "inspector", clk)
	for s := 0; s < shards; s++ {
		gens, err := c.sortedAttempts(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(gens) != 2 || gens[0] != 1 || gens[1] != 2 {
			t.Errorf("shard %d claim markers %v, want [1 2]", s, gens)
		}
	}
}

// TestRunWorkersDrainsPool runs the real worker loop (real clock, short
// TTL): every shard executed exactly once, stats consistent.
func TestRunWorkersDrainsPool(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, Shards: 9, Owner: "pool", LeaseTTL: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu   sync.Mutex
		runs = make(map[int]int)
	)
	stats, err := c.RunWorkers(3, func(r ShardRun) error {
		if r.Count != 9 {
			t.Errorf("shard run count %d, want 9", r.Count)
		}
		mu.Lock()
		runs[r.Shard]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 9 || stats.Recovered != 0 {
		t.Fatalf("stats %+v, want 9 completed, 0 recovered", stats)
	}
	for s := 0; s < 9; s++ {
		if runs[s] != 1 {
			t.Errorf("shard %d ran %d times", s, runs[s])
		}
	}
	st, err := c.Status()
	if err != nil || !st.AllDone() {
		t.Fatalf("pool not drained: %v %v", st, err)
	}
}

// TestRunWorkersRecoversDeadLease is the in-process self-healing pin: a
// simulated dead worker claims a shard and never heartbeats; a live pool
// with a short TTL must wait it out, re-claim at generation 2 and finish
// everything.
func TestRunWorkersRecoversDeadLease(t *testing.T) {
	dir := t.TempDir()
	dead, err := Open(Config{Dir: dir, Shards: 4, Owner: "dead", LeaseTTL: 750 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	l, err := dead.Claim()
	if err != nil || l == nil {
		t.Fatal(l, err)
	}
	// The dead worker is never heard from again.

	alive, err := Open(Config{Dir: dir, Shards: 0, Owner: "alive", LeaseTTL: 750 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := alive.RunWorkers(2, func(ShardRun) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 4 {
		t.Fatalf("completed %d shards, want all 4", stats.Completed)
	}
	if stats.Recovered != 1 {
		t.Fatalf("recovered %d shards, want exactly the dead worker's 1", stats.Recovered)
	}
	st, err := alive.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.AllDone() {
		t.Fatalf("pool not drained: %+v", st.Shards)
	}
	if st.Shards[l.Shard].Attempts != 2 {
		t.Fatalf("dead worker's shard finished with attempts %d, want 2", st.Shards[l.Shard].Attempts)
	}
	if st.MaxAttempts() != 2 {
		t.Fatalf("max attempts %d, want 2", st.MaxAttempts())
	}
}

// TestRunWorkersPropagatesError: the first shard error stops the local
// pool and surfaces with the shard coordinates.
func TestRunWorkersPropagatesError(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, Shards: 6, Owner: "w", LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err = c.RunWorkers(2, func(r ShardRun) error {
		if r.Shard == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the shard failure", err)
	}
	if !strings.Contains(err.Error(), "shard 2/6") {
		t.Errorf("error %q does not name the failing shard", err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards[2].State == StateDone {
		t.Error("failed shard marked done")
	}
}

func TestStatusRender(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	c := openTest(t, dir, 2, "w1", clk)
	l, err := c.Claim()
	if err != nil || l == nil {
		t.Fatal(l, err)
	}
	if err := l.Done(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Claim(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	out := st.Render(dir)
	for _, frag := range []string{
		"2 shards, 1 done, 1 leased, 0 pending",
		"shard 0: done by w1, attempts 1",
		"shard 1: leased by w1, attempts 1",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("render output missing %q:\n%s", frag, out)
		}
	}
}
