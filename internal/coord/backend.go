package coord

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/backendurl"
)

// Backend is the persistence substrate under a Coordinator: a small
// key→bytes map with one extra primitive, exclusive Create — the claim
// operation the whole protocol rests on. Keys are slash-separated
// logical paths identical to the historical on-disk layout
// ("coordinator.json", "shard-0007/gen-0001.claim", …), so the fs
// backend *is* the historical format, byte for byte, and operators
// (and the CI self-healing gate) can keep inspecting the state
// directory with ls.
//
// All protocol semantics — initialise-vs-adopt, generation numbering,
// lease expiry, the clock-skew clamp, drain verdicts — live in
// Coordinator and are therefore identical across backends; a backend
// moves bytes and tells the time. internal/coordtest runs the shared
// conformance suite against every registered backend.
//
// The clock lives on the backend (Now) so every expiry decision —
// claims, Status, CheckDrained, ShardStatus.LastActivity clamping —
// comes from one injected source: a fake-clock test exercises the
// exact arithmetic production runs.
type Backend interface {
	// Get returns the bytes under key; a missing key is fs.ErrNotExist.
	Get(key string) ([]byte, error)
	// Put atomically writes key, overwriting: a concurrent Get sees
	// the old bytes or the new, never a torn mix.
	Put(key string, data []byte) error
	// Create atomically writes key only if absent, failing with
	// fs.ErrExist otherwise: of any number of concurrent creators,
	// exactly one succeeds. A crash mid-Create must never leave a
	// half-written value at key.
	Create(key string, data []byte) error
	// List returns the entry names directly under the given key
	// prefix ("shard-0007" → ["done.json", "gen-0001.claim", …]); a
	// prefix nothing was ever written under may return fs.ErrNotExist
	// or an empty list.
	List(dir string) ([]string, error)
	// Now is the pool-wide clock for every lease-expiry decision.
	Now() time.Time
	// Location names where the state lives, for operator-facing
	// messages: the state directory for fs, "mem:", "sqlite:FILE".
	Location() string
}

// OpenBackend resolves a CLI backend locator (see internal/backendurl;
// same syntax as -store) into a coordinator backend, attributing parse
// errors to the given flag. opts tunes the wire client for http(s)
// locators (token, timeout); at most one may be passed.
func OpenBackend(flag, locator string, opts ...backendurl.HTTPOptions) (Backend, error) {
	loc, err := backendurl.Parse(flag, locator)
	if err != nil {
		return nil, err
	}
	switch loc.Scheme {
	case backendurl.SchemeMem:
		return NewMem(), nil
	case backendurl.SchemeSQLite:
		return NewSQLite(loc.Path)
	case backendurl.SchemeHTTP, backendurl.SchemeHTTPS:
		var o backendurl.HTTPOptions
		if len(opts) > 0 {
			o = opts[0]
		}
		return backendurl.NewHTTPCoord(loc, o)
	default:
		return NewFS(loc.Path), nil
	}
}

// The wire backend implements the Backend contract structurally —
// backendurl cannot import this package — so pin it here.
var _ Backend = (*backendurl.HTTPCoord)(nil)

// getJSON decodes one state record. fs.ErrNotExist passes through for
// existence checks.
func getJSON[T any](b Backend, key string) (*T, error) {
	data, err := b.Get(key)
	if err != nil {
		return nil, err
	}
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("decode %s: %w", key, err)
	}
	return &v, nil
}

// createJSON writes a state record with Create semantics: exactly one
// concurrent creator succeeds (fs.ErrExist otherwise), atomically.
func createJSON(b Backend, key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return b.Create(key, data)
}

// putJSON writes a state record atomically, overwriting.
func putJSON(b Backend, key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return b.Put(key, data)
}
