package coord

// CheckpointStore persists sweep checkpoint records (see
// sweep.Checkpoint) in a pool's coordination backend under the
// "checkpoint/" prefix — a namespace the lease protocol never touches:
// shard inspection lists only "shard-NNNN/" prefixes and the state
// record lives at "coordinator.json", so checkpoints ride along every
// backend, including the http control plane (the server's coordinator
// key grammar already admits slash-separated paths), without any
// protocol change.
type CheckpointStore struct {
	b Backend
}

// NewCheckpointStore wraps the pool's backend for checkpoint traffic.
func NewCheckpointStore(b Backend) *CheckpointStore { return &CheckpointStore{b: b} }

func checkpointKey(name string) string { return "checkpoint/" + name }

// LoadCheckpoint returns the raw record saved under name, or false when
// none exists or the backend cannot read it — resuming is an
// optimisation, so read failures degrade to a cold start, never an
// error.
func (s *CheckpointStore) LoadCheckpoint(name string) ([]byte, bool) {
	data, err := s.b.Get(checkpointKey(name))
	if err != nil {
		return nil, false
	}
	return data, true
}

// SaveCheckpoint atomically replaces the record under name.
func (s *CheckpointStore) SaveCheckpoint(name string, data []byte) error {
	return s.b.Put(checkpointKey(name), data)
}
