package coord

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// FSBackend is the default backend: plain JSON files in a shared state
// directory, the same discipline as the result store (atomic renames,
// safe between processes and hosts over any filesystem that renames
// atomically). Exclusive creation is link(2): exactly one process can
// publish a temp file at the claim path, and an interrupted writer
// leaves only a stray .tmp — a plain O_EXCL create-then-write would be
// exclusive but not crash-atomic, and a SIGKILL between the create and
// the write (precisely the failure this package exists to survive)
// would leave an empty done.json no one can ever complete.
type FSBackend struct {
	dir string
	// Clock overrides the expiry clock; nil means time.Now. Tests
	// inject a fake clock here — production code leaves it nil.
	Clock func() time.Time
}

// NewFS returns the filesystem backend over the given state directory
// (created lazily on the first write).
func NewFS(dir string) *FSBackend { return &FSBackend{dir: dir} }

func (b *FSBackend) path(key string) string {
	return filepath.Join(b.dir, filepath.FromSlash(key))
}

func (b *FSBackend) Get(key string) ([]byte, error) {
	return os.ReadFile(b.path(key))
}

func (b *FSBackend) Put(key string, data []byte) error {
	p := b.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := writeTemp(p, data)
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (b *FSBackend) Create(key string, data []byte) error {
	p := b.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := writeTemp(p, data)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if err := os.Link(tmp, p); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return fs.ErrExist
		}
		return err
	}
	return nil
}

func (b *FSBackend) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(b.path(dir))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		names = append(names, ent.Name())
	}
	return names, nil
}

func (b *FSBackend) Now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *FSBackend) Location() string { return b.dir }

// writeTemp writes data to a fresh temp file next to path and returns
// its name; the caller publishes it with rename or link.
func writeTemp(path string, data []byte) (string, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*.tmp")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return tmp.Name(), nil
}

var _ Backend = (*FSBackend)(nil)
