package coord

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a race-safe writer for PoolWatch's background goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestCheckDrainedLifecycle walks the drain verdict through every pool
// state on the fake clock: forming (nothing claimed → wait), live
// (fresh heartbeats → wait), between-claims gap (only a recent
// completion as proof of life → still wait), dead (every proof of life
// older than the TTL → error), drained (all done → true).
func TestCheckDrainedLifecycle(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	c := openTest(t, dir, 2, "w", clk)

	drained, err := c.Drained()
	if drained || err != nil {
		t.Fatalf("forming pool: drained=%v err=%v, want wait", drained, err)
	}

	lease, err := c.Claim()
	if err != nil || lease == nil {
		t.Fatal(lease, err)
	}
	if drained, err := c.Drained(); drained || err != nil {
		t.Fatalf("live lease: drained=%v err=%v, want wait", drained, err)
	}

	// The worker completes its shard and is between claims: no lease is
	// live, but the completion timestamp keeps the pool alive.
	if err := lease.Done(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(c.LeaseTTL() / 2)
	if drained, err := c.Drained(); drained || err != nil {
		t.Fatalf("between claims: drained=%v err=%v, want wait", drained, err)
	}

	// The worker claims the second shard and dies: once its heartbeat is
	// older than the TTL the whole pool is evidence-dead.
	lease2, err := c.Claim()
	if err != nil || lease2 == nil {
		t.Fatal(lease2, err)
	}
	clk.Advance(c.LeaseTTL() + time.Second)
	drained, err = c.Drained()
	if drained {
		t.Fatal("dead pool reported drained")
	}
	if err == nil || !strings.Contains(err.Error(), "looks dead") {
		t.Fatalf("dead pool verdict = %v, want a pointed 'looks dead' error", err)
	}

	// A surviving worker re-claims (generation 2) and finishes: drained.
	lease3, err := c.Claim()
	if err != nil || lease3 == nil {
		t.Fatal(lease3, err)
	}
	if lease3.Shard != lease2.Shard || lease3.Gen != 2 {
		t.Fatalf("re-claim got shard %d gen %d, want shard %d gen 2", lease3.Shard, lease3.Gen, lease2.Shard)
	}
	if err := lease3.Done(); err != nil {
		t.Fatal(err)
	}
	if drained, err := c.Drained(); !drained || err != nil {
		t.Fatalf("finished pool: drained=%v err=%v, want true", drained, err)
	}
}

// TestCheckDrainedClampsFutureCompletions: a done record stamped by a
// worker whose clock runs more than one TTL fast must not keep a dead
// pool looking alive for the whole skew — the same clamp inspect applies
// to heartbeats. The skewed completion contributes no liveness evidence,
// so once the genuinely-claimed shard's lease ages past the TTL the pool
// is declared dead after one TTL of real time, not after the skew.
func TestCheckDrainedClampsFutureCompletions(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	c := openTest(t, dir, 2, "sane", clk)

	// A worker with a far-future clock completes shard 0.
	skewedBack := NewFS(dir)
	skewedBack.Clock = func() time.Time { return clk.Now().Add(48 * time.Hour) }
	skewed, err := Open(Config{Backend: skewedBack, Owner: "skewed"})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := skewed.Claim()
	if err != nil || lease == nil {
		t.Fatal(lease, err)
	}
	if err := lease.Done(); err != nil {
		t.Fatal(err)
	}

	// A sane worker claims shard 1 and dies. Its lease is the pool's only
	// real evidence; once it expires the pool must read dead despite the
	// 48-hours-from-now completion record.
	lease2, err := c.Claim()
	if err != nil || lease2 == nil {
		t.Fatal(lease2, err)
	}
	clk.Advance(c.LeaseTTL() + time.Second)
	drained, err := c.Drained()
	if drained {
		t.Fatal("dead pool reported drained")
	}
	if err == nil || !strings.Contains(err.Error(), "looks dead") {
		t.Fatalf("future-skewed completion masked the dead pool: verdict = %v", err)
	}
}

// TestWatcherProgressLines pins the stderr lines a watch-mode merge
// prints (the CI watch gate greps the counts and drained formats): one
// counts line whenever the tally changes, one line per shard transition
// — leased, done, lease expired, re-leased at the next attempt — and
// the final drained line.
func TestWatcherProgressLines(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	c := openTest(t, dir, 2, "hostA-1", clk)
	w := c.NewWatcher()

	tick := func() []string {
		t.Helper()
		lines, _, err := w.Tick()
		if err != nil {
			t.Fatal(err)
		}
		return lines
	}
	mustContain := func(lines []string, wants ...string) {
		t.Helper()
		for _, want := range wants {
			found := false
			for _, l := range lines {
				if strings.Contains(l, want) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("lines %q miss %q", lines, want)
			}
		}
	}

	mustContain(tick(), "merge watch: "+dir+": 0/2 shards done, 0 leased, 2 pending")
	if lines := tick(); len(lines) != 0 {
		t.Errorf("idle tick emitted %q", lines)
	}

	lease, err := c.Claim()
	if err != nil || lease == nil {
		t.Fatal(lease, err)
	}
	mustContain(tick(), "0/2 shards done, 1 leased, 1 pending",
		"merge watch: shard 0 leased by hostA-1 (attempt 1)")

	// The leaseholder dies. The expiry tick reports the transition AND
	// the dead-pool verdict (no other worker is alive to keep the pool's
	// evidence fresh) — a watcher on a genuinely dead pool errors here.
	clk.Advance(c.LeaseTTL() + time.Second)
	expLines, expDrained, expErr := w.Tick()
	if expDrained || expErr == nil || !strings.Contains(expErr.Error(), "looks dead") {
		t.Fatalf("expiry tick = (drained=%v, err=%v), want the dead verdict", expDrained, expErr)
	}
	mustContain(expLines, "merge watch: shard 0 lease expired (last owner hostA-1, attempt 1)")
	lease2, err := c.Claim()
	if err != nil || lease2 == nil || lease2.Gen != 2 {
		t.Fatal(lease2, err)
	}
	mustContain(tick(), "merge watch: shard 0 leased by hostA-1 (attempt 2)")

	if err := lease2.Done(); err != nil {
		t.Fatal(err)
	}
	lease3, err := c.Claim()
	if err != nil || lease3 == nil {
		t.Fatal(lease3, err)
	}
	if err := lease3.Done(); err != nil {
		t.Fatal(err)
	}
	lines, drained, err := w.Tick()
	if err != nil || !drained {
		t.Fatalf("drained=%v err=%v, want drained", drained, err)
	}
	mustContain(lines, "2/2 shards done",
		"merge watch: shard 0 done by hostA-1 (attempt 2)",
		"merge watch: shard 1 done by hostA-1 (attempt 1)",
		"merge watch: pool drained: 2 shards done")

	// Settled: nothing more, forever.
	lines, drained, err = w.Tick()
	if len(lines) != 0 || !drained || err != nil {
		t.Errorf("settled tick = (%q, %v, %v), want silence", lines, drained, err)
	}
}

// TestPoolWatchDoneVerdict drives the background watcher end to end on
// real (short) time: Done flips to drained once the pool finishes, and
// the printed transcript carries the per-shard lines.
func TestPoolWatchDoneVerdict(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, Shards: 1, Owner: "w", LeaseTTL: time.Minute, Heartbeat: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	pw := c.WatchPool(&out, 5*time.Millisecond)
	defer pw.Stop()
	if drained, err := pw.Done(); drained || err != nil {
		t.Fatalf("fresh pool: drained=%v err=%v", drained, err)
	}
	lease, err := c.Claim()
	if err != nil || lease == nil {
		t.Fatal(lease, err)
	}
	if err := lease.Done(); err != nil {
		t.Fatal(err)
	}
	waited := make(chan struct{})
	go func() {
		defer close(waited)
		if drained, err := pw.Wait(); !drained || err != nil {
			t.Errorf("Wait = (%v, %v), want the drained verdict", drained, err)
		}
	}()
	select {
	case <-waited:
	case <-time.After(30 * time.Second):
		t.Fatal("PoolWatch.Wait never reported the drained pool")
	}
	pw.Stop()
	if got := out.String(); !strings.Contains(got, "pool drained: 1 shards done") {
		t.Errorf("transcript %q misses the drained line", got)
	}
}

// TestOpenForMergeUninitialised: without wait, ErrUninitialised passes
// straight through for the CLI to decorate.
func TestOpenForMergeUninitialised(t *testing.T) {
	var out syncBuffer
	_, err := OpenForMerge(Config{Dir: t.TempDir()}, false, &out)
	if err == nil || !strings.Contains(err.Error(), "not initialised") {
		t.Fatalf("err = %v, want ErrUninitialised through", err)
	}
	if out.String() != "" {
		t.Errorf("non-wait open wrote %q", out.String())
	}
}
