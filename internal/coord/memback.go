package coord

import (
	"io/fs"
	"strings"
	"sync"
	"time"
)

// MemBackend keeps the pool state in a process-local map: the
// substrate for fake-clock `-race` tests (no tempdir churn, no file
// I/O in the claim path) and for single-process ephemeral runs
// (`-coord mem:`). Every Coordinator of the pool must share the one
// instance — state dies with the process, so multi-process pools
// through it are impossible by construction.
type MemBackend struct {
	// Clock overrides the expiry clock; nil means time.Now.
	Clock func() time.Time

	mu sync.Mutex
	m  map[string][]byte
}

// NewMem returns a fresh, empty in-memory backend.
func NewMem() *MemBackend { return &MemBackend{m: make(map[string][]byte)} }

func (b *MemBackend) Get(key string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.m[key]
	if !ok {
		return nil, fs.ErrNotExist
	}
	return data, nil
}

func (b *MemBackend) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = cp
	return nil
}

func (b *MemBackend) Create(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.m[key]; ok {
		return fs.ErrExist
	}
	b.m[key] = cp
	return nil
}

func (b *MemBackend) List(dir string) ([]string, error) {
	prefix := dir + "/"
	b.mu.Lock()
	defer b.mu.Unlock()
	var names []string
	for k := range b.m {
		if rest, ok := strings.CutPrefix(k, prefix); ok && rest != "" && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	return names, nil
}

func (b *MemBackend) Now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *MemBackend) Location() string { return "mem:" }

var _ Backend = (*MemBackend)(nil)
