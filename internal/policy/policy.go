// Package policy implements the configuration replacement policies the
// paper compares:
//
//   - LRU, FIFO, MRU, Random — classic cache-style baselines that ignore
//     the future (the paper evaluates LRU; the others are included as
//     additional baselines).
//   - LFD — Belady's longest-forward-distance policy [Belady 1966], the
//     clairvoyant upper bound on reuse; it sees the entire remaining
//     request sequence.
//   - Local LFD — the paper's contribution: LFD restricted to the window
//     of knowledge actually available at run time, i.e. the remainder of
//     the running graph's reconfiguration sequence plus the task graphs
//     currently enqueued in the Dynamic List.
//
// A policy only chooses a victim among the candidates the execution
// manager deems replaceable; the skip-events mechanism (Fig. 8) is applied
// by the manager on top of the policy's decision, using the reusability
// information the lookahead scan produces.
//
// The lookahead-based policies deliberately use the linear-scan
// implementation the paper describes and times in Table I ("the
// replacement module always has to search in the whole list"): for each
// candidate, the forward distance is found by scanning the lookahead
// sequence front to back. This keeps the measured run-time behaviour
// faithful to the paper's.
package policy

import (
	"fmt"
	"math/rand"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// WindowAll requests the entire remaining request sequence (clairvoyant
// LFD). WindowNone requests no lookahead at all.
const (
	WindowAll  = -1
	WindowNone = 0
)

// Candidate describes one replaceable unit at decision time.
type Candidate struct {
	RU       int              // unit index
	Task     taskgraph.TaskID // resident configuration
	LastUse  simtime.Time     // when it last finished executing (LRU key)
	LoadedAt simtime.Time     // when it was written (FIFO key)
}

// Request is one replacement decision to make.
type Request struct {
	// Task is the configuration about to be loaded.
	Task taskgraph.TaskID
	// Now is the current simulation time.
	Now simtime.Time
	// Lookahead is the future request sequence visible to the policy,
	// nearest first. Its extent is governed by the policy's Window: the
	// manager passes the remainder of the running graph plus the Dynamic
	// List window (or the full future for WindowAll).
	Lookahead []taskgraph.TaskID
}

// Decision is the outcome of victim selection.
type Decision struct {
	// RU is the chosen victim unit.
	RU int
	// Victim is the configuration being evicted.
	Victim taskgraph.TaskID
	// Distance is the victim's forward distance: the index of its next
	// occurrence in the lookahead, or -1 when it does not occur (never
	// reused as far as the policy can see). Policies that do not inspect
	// the future report -1.
	Distance int
	// Reusable reports whether the victim occurs in the lookahead; the
	// manager's skip-events logic fires only for reusable victims.
	Reusable bool
}

// Forker is implemented by stateful policies whose decision state cannot
// be shared by concurrent simulations. Fork returns an independent
// equivalent instance: it replays the same decision stream from its
// initial state.
type Forker interface {
	Fork() Policy
}

// Fork returns a policy safe to hand to a second, concurrent run.
// Stateless policies are returned as-is; stateful ones (Random) are
// re-created from their initial state via Forker.
func Fork(p Policy) Policy {
	if f, ok := p.(Forker); ok {
		return f.Fork()
	}
	return p
}

// Resetter is implemented by stateful policies that can rewind their
// decision state to the initial one in place — the allocation-free
// counterpart of Forker for sequential reuse. Where Fork hands a fresh
// instance to a concurrent run, Reset lets a pooled runner reuse one
// instance across consecutive runs: after Reset the policy replays
// exactly the decision stream a newly constructed instance would.
type Resetter interface {
	Reset()
}

// Reset rewinds p to its initial decision state and reports whether it
// was stateful. Stateless policies (every policy here except Random) are
// trivially "reset"; stateful ones must implement Resetter. A reused
// runner calls this between runs so back-to-back simulations with one
// policy instance are byte-identical to simulations with fresh instances.
func Reset(p Policy) bool {
	if r, ok := p.(Resetter); ok {
		r.Reset()
		return true
	}
	return false
}

// Policy selects replacement victims.
type Policy interface {
	// Name identifies the policy in reports (e.g. "Local LFD (2)").
	Name() string
	// Window is the number of Dynamic List graphs the policy wants to
	// see: WindowNone, WindowAll, or a positive window size.
	Window() int
	// SelectVictim picks a victim among candidates. The manager
	// guarantees len(candidates) ≥ 1. Candidates arrive ordered by unit
	// index; ties must resolve to the earliest candidate so runs are
	// deterministic.
	SelectVictim(req Request, candidates []Candidate) Decision
}

// scanDistance returns the index of task's first occurrence in lookahead,
// or -1. This is the linear search the paper's Table I times.
func scanDistance(task taskgraph.TaskID, lookahead []taskgraph.TaskID) int {
	for i, id := range lookahead {
		if id == task {
			return i
		}
	}
	return -1
}

// decide fills a Decision for candidate c given its scanned distance.
func decide(c Candidate, dist int) Decision {
	return Decision{RU: c.RU, Victim: c.Task, Distance: dist, Reusable: dist >= 0}
}

// --- LRU -----------------------------------------------------------------

type lru struct{}

// NewLRU returns the least-recently-used policy: evict the candidate whose
// configuration finished executing longest ago.
func NewLRU() Policy { return lru{} }

func (lru) Name() string { return "LRU" }
func (lru) Window() int  { return WindowNone }

func (lru) SelectVictim(req Request, cands []Candidate) Decision {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.LastUse < best.LastUse {
			best = c
		}
	}
	return decide(best, scanDistance(best.Task, req.Lookahead))
}

// --- MRU -----------------------------------------------------------------

type mru struct{}

// NewMRU returns the most-recently-used policy (a known-adversarial
// baseline for looping reference patterns).
func NewMRU() Policy { return mru{} }

func (mru) Name() string { return "MRU" }
func (mru) Window() int  { return WindowNone }

func (mru) SelectVictim(req Request, cands []Candidate) Decision {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.LastUse > best.LastUse {
			best = c
		}
	}
	return decide(best, scanDistance(best.Task, req.Lookahead))
}

// --- FIFO ----------------------------------------------------------------

type fifo struct{}

// NewFIFO returns the first-in-first-out policy: evict the configuration
// loaded longest ago, regardless of use.
func NewFIFO() Policy { return fifo{} }

func (fifo) Name() string { return "FIFO" }
func (fifo) Window() int  { return WindowNone }

func (fifo) SelectVictim(req Request, cands []Candidate) Decision {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.LoadedAt < best.LoadedAt {
			best = c
		}
	}
	return decide(best, scanDistance(best.Task, req.Lookahead))
}

// --- Random --------------------------------------------------------------

type random struct {
	seed int64
	src  rand.Source
	rng  *rand.Rand
}

// NewRandom returns a uniformly random policy seeded for reproducibility.
func NewRandom(seed int64) Policy {
	src := rand.NewSource(seed)
	return &random{seed: seed, src: src, rng: rand.New(src)}
}

func (*random) Name() string { return "Random" }
func (*random) Window() int  { return WindowNone }

// Fork returns an independent Random replaying the same stream from the
// original seed, so a concurrent run cannot race on the shared generator.
func (r *random) Fork() Policy { return NewRandom(r.seed) }

// Reset rewinds the generator to the original seed in place — no fresh
// rand.Rand — so a pooled runner reusing this instance replays the same
// decision stream as a newly constructed one.
func (r *random) Reset() { r.src.Seed(r.seed) }

func (r *random) SelectVictim(req Request, cands []Candidate) Decision {
	c := cands[r.rng.Intn(len(cands))]
	return decide(c, scanDistance(c.Task, req.Lookahead))
}

// --- LFD family ----------------------------------------------------------

// lfd implements longest-forward-distance over whatever lookahead it is
// given; the window distinguishes clairvoyant LFD from Local LFD.
type lfd struct {
	name   string
	window int
}

// NewLFD returns Belady's clairvoyant policy: longest forward distance
// over the complete remaining request sequence. It is the paper's
// reuse-optimal reference and is only realizable when the whole workload
// is known in advance.
func NewLFD() Policy { return &lfd{name: "LFD", window: WindowAll} }

// NewLocalLFD returns the paper's Local LFD with a Dynamic List window of
// w graphs (w ≥ 1). The policy sees the remainder of the running graph
// plus the next w enqueued graphs.
func NewLocalLFD(w int) (Policy, error) {
	if w < 1 {
		return nil, fmt.Errorf("policy: Local LFD window must be ≥ 1, got %d", w)
	}
	return &lfd{name: fmt.Sprintf("Local LFD (%d)", w), window: w}, nil
}

func (p *lfd) Name() string { return p.name }
func (p *lfd) Window() int  { return p.window }

// SelectVictim picks the candidate requested farthest in the future.
// Candidates absent from the lookahead count as infinitely far; among
// those, and among equal finite distances, the first (lowest unit index)
// wins — the paper's Fig. 2c relies on exactly this tie-break ("Local LFD
// selects the first candidate it finds").
func (p *lfd) SelectVictim(req Request, cands []Candidate) Decision {
	best := cands[0]
	bestDist := scanDistance(best.Task, req.Lookahead)
	if bestDist < 0 {
		// First candidate is already never-reused; nothing can beat it.
		return decide(best, bestDist)
	}
	for _, c := range cands[1:] {
		d := scanDistance(c.Task, req.Lookahead)
		if d < 0 {
			return decide(c, d)
		}
		if d > bestDist {
			best, bestDist = c, d
		}
	}
	return decide(best, bestDist)
}
