package policy

import "testing"

// TestResetRewindsRandom: after Reset, a Random policy replays its
// decision stream from the original seed — with the same instance, no
// fresh generator.
func TestResetRewindsRandom(t *testing.T) {
	cands := []Candidate{cand(0, 1, 0, 0), cand(1, 2, 0, 0), cand(2, 3, 0, 0)}
	p := NewRandom(7)
	first := make([]int, 40)
	for i := range first {
		first[i] = p.SelectVictim(Request{}, cands).RU
	}
	if !Reset(p) {
		t.Fatal("Random should report itself stateful on Reset")
	}
	for i := range first {
		if ru := p.SelectVictim(Request{}, cands).RU; ru != first[i] {
			t.Fatalf("decision %d after Reset: ru=%d, want %d", i, ru, first[i])
		}
	}
}

// TestResetStatelessIsNoOp: stateless policies report false and keep
// working.
func TestResetStatelessIsNoOp(t *testing.T) {
	for _, p := range []Policy{NewLRU(), NewMRU(), NewFIFO(), NewLFD()} {
		if Reset(p) {
			t.Errorf("%s claims to be stateful", p.Name())
		}
		d := p.SelectVictim(Request{}, []Candidate{cand(0, 1, 0, 0)})
		if d.Victim != 1 {
			t.Errorf("%s broken after Reset: victim %d", p.Name(), d.Victim)
		}
	}
}

// TestSelectVictimAllocationFree pins every policy's decision path to
// zero heap allocations — a victim selection runs inside the manager's
// hot loop, so a single allocation here multiplies by hundreds of
// thousands across a sweep.
func TestSelectVictimAllocationFree(t *testing.T) {
	cands := []Candidate{
		cand(0, 1, 6, 0), cand(1, 2, 10, 4), cand(2, 3, 16, 8), cand(3, 4, 20, 12),
	}
	look := ids(9, 8, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3)
	local, err := NewLocalLFD(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{NewLRU(), NewMRU(), NewFIFO(), NewRandom(7), NewLFD(), local} {
		p := p
		avg := testing.AllocsPerRun(100, func() {
			p.SelectVictim(Request{Task: 6, Lookahead: look}, cands)
		})
		if avg != 0 {
			t.Errorf("%s: SelectVictim allocates %.1f times, want 0", p.Name(), avg)
		}
	}
}

// TestResetAllocationFree: rewinding a stateful policy between runs must
// not allocate either — it happens once per Runner.Reset.
func TestResetAllocationFree(t *testing.T) {
	p := NewRandom(3)
	if avg := testing.AllocsPerRun(100, func() { Reset(p) }); avg != 0 {
		t.Errorf("Reset allocates %.1f times, want 0", avg)
	}
}
