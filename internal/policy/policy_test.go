package policy

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

func cand(ru int, task taskgraph.TaskID, lastUse, loadedAt float64) Candidate {
	return Candidate{RU: ru, Task: task, LastUse: ms(lastUse), LoadedAt: ms(loadedAt)}
}

func ids(xs ...int) []taskgraph.TaskID {
	out := make([]taskgraph.TaskID, len(xs))
	for i, x := range xs {
		out[i] = taskgraph.TaskID(x)
	}
	return out
}

func TestLRU(t *testing.T) {
	p := NewLRU()
	if p.Name() != "LRU" || p.Window() != WindowNone {
		t.Errorf("meta: %s/%d", p.Name(), p.Window())
	}
	cands := []Candidate{
		cand(0, 1, 6.5, 0),
		cand(1, 2, 10.5, 4),
		cand(2, 3, 16, 8),
	}
	d := p.SelectVictim(Request{Task: 5}, cands)
	if d.RU != 0 || d.Victim != 1 {
		t.Errorf("LRU chose ru=%d victim=%d, want ru=0 victim=1", d.RU, d.Victim)
	}
	if d.Reusable {
		t.Error("no lookahead ⇒ not reusable")
	}
}

func TestLRUTieBreaksToFirst(t *testing.T) {
	p := NewLRU()
	cands := []Candidate{cand(2, 9, 5, 0), cand(3, 8, 5, 1)}
	d := p.SelectVictim(Request{}, cands)
	if d.RU != 2 {
		t.Errorf("tie should pick first candidate, got ru=%d", d.RU)
	}
}

func TestMRU(t *testing.T) {
	p := NewMRU()
	cands := []Candidate{cand(0, 1, 6.5, 0), cand(1, 2, 10.5, 4)}
	d := p.SelectVictim(Request{}, cands)
	if d.Victim != 2 {
		t.Errorf("MRU chose %d, want 2", d.Victim)
	}
}

func TestFIFO(t *testing.T) {
	p := NewFIFO()
	cands := []Candidate{
		cand(0, 1, 50, 30), // recently loaded
		cand(1, 2, 60, 10), // oldest load, most recently used
	}
	d := p.SelectVictim(Request{}, cands)
	if d.Victim != 2 {
		t.Errorf("FIFO chose %d, want 2 (oldest load)", d.Victim)
	}
}

func TestRandomDeterminism(t *testing.T) {
	cands := []Candidate{cand(0, 1, 0, 0), cand(1, 2, 0, 0), cand(2, 3, 0, 0)}
	a, b := NewRandom(7), NewRandom(7)
	for i := 0; i < 50; i++ {
		da := a.SelectVictim(Request{}, cands)
		db := b.SelectVictim(Request{}, cands)
		if da.RU != db.RU {
			t.Fatalf("iteration %d: same seed diverged (%d vs %d)", i, da.RU, db.RU)
		}
	}
}

func TestLFDFarthestWins(t *testing.T) {
	p := NewLFD()
	if p.Window() != WindowAll {
		t.Errorf("LFD window = %d", p.Window())
	}
	// Paper Fig. 2b, first replacement: loading task 5, candidates tasks
	// 1,2,3; future = [4,5,1,2,3,4,5]. Task 3 is farthest ⇒ evicted.
	cands := []Candidate{cand(0, 1, 0, 0), cand(1, 2, 0, 0), cand(2, 3, 0, 0)}
	d := p.SelectVictim(Request{Task: 5, Lookahead: ids(4, 5, 1, 2, 3, 4, 5)}, cands)
	if d.Victim != 3 || d.RU != 2 {
		t.Errorf("victim = %d on ru %d, want task 3 on ru 2", d.Victim, d.RU)
	}
	if !d.Reusable || d.Distance != 4 {
		t.Errorf("distance = %d reusable = %v, want 4,true", d.Distance, d.Reusable)
	}
}

func TestLFDInfinitePreferred(t *testing.T) {
	p := NewLFD()
	// Task 9 never occurs again: must be evicted even though task 1 is
	// farther among the finite ones.
	cands := []Candidate{cand(0, 1, 0, 0), cand(1, 9, 0, 0), cand(2, 2, 0, 0)}
	d := p.SelectVictim(Request{Lookahead: ids(2, 1)}, cands)
	if d.Victim != 9 {
		t.Errorf("victim = %d, want 9 (absent from future)", d.Victim)
	}
	if d.Reusable || d.Distance != -1 {
		t.Errorf("absent victim: distance=%d reusable=%v", d.Distance, d.Reusable)
	}
}

func TestLFDAllInfiniteTieBreak(t *testing.T) {
	// Paper Fig. 2c: candidates 1,2,3 all absent from DL ⇒ "Local LFD
	// selects the first candidate it finds" (unit order).
	p, err := NewLocalLFD(1)
	if err != nil {
		t.Fatal(err)
	}
	cands := []Candidate{cand(0, 1, 0, 0), cand(1, 2, 0, 0), cand(2, 3, 0, 0)}
	d := p.SelectVictim(Request{Lookahead: ids(4, 5)}, cands)
	if d.RU != 0 || d.Victim != 1 {
		t.Errorf("victim = task %d on ru %d, want task 1 on ru 0", d.Victim, d.RU)
	}
}

func TestLFDFiniteTieBreakToFirst(t *testing.T) {
	p := NewLFD()
	// Two candidates of the same task id cannot happen, but equal
	// distances can't either (first occurrence is unique per id); test
	// nonetheless that strict improvement is required via equal-distance
	// construction: both tasks first occur at... distinct indices, so
	// craft adjacent ones and ensure max wins not last.
	cands := []Candidate{cand(0, 1, 0, 0), cand(1, 2, 0, 0)}
	d := p.SelectVictim(Request{Lookahead: ids(2, 1)}, cands)
	if d.Victim != 1 {
		t.Errorf("victim = %d, want 1 (distance 1 > 0)", d.Victim)
	}
}

func TestLocalLFDWindowValidation(t *testing.T) {
	if _, err := NewLocalLFD(0); err == nil {
		t.Error("window 0 accepted")
	}
	if _, err := NewLocalLFD(-1); err == nil {
		t.Error("window -1 accepted")
	}
	p, err := NewLocalLFD(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Window() != 4 || p.Name() != "Local LFD (4)" {
		t.Errorf("meta: %q/%d", p.Name(), p.Window())
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec    string
		name    string
		window  int
		wantErr bool
	}{
		{"lru", "LRU", WindowNone, false},
		{"LRU", "LRU", WindowNone, false},
		{"mru", "MRU", WindowNone, false},
		{"fifo", "FIFO", WindowNone, false},
		{"random", "Random", WindowNone, false},
		{"random:42", "Random", WindowNone, false},
		{"random:x", "", 0, true},
		{"lfd", "LFD", WindowAll, false},
		{"locallfd:2", "Local LFD (2)", 2, false},
		{"locallfd", "", 0, true},
		{"locallfd:0", "", 0, true},
		{"locallfd:abc", "", 0, true},
		{"belady", "", 0, true},
		{"", "", 0, true},
	}
	for _, tt := range cases {
		p, err := Parse(tt.spec)
		if (err != nil) != tt.wantErr {
			t.Errorf("Parse(%q) err = %v, wantErr = %v", tt.spec, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if p.Name() != tt.name || p.Window() != tt.window {
			t.Errorf("Parse(%q) = %q/%d, want %q/%d", tt.spec, p.Name(), p.Window(), tt.name, tt.window)
		}
	}
	if len(Known()) == 0 {
		t.Error("Known() empty")
	}
}

func TestScanDistanceWorstCase(t *testing.T) {
	// The Table I worst case: the candidate never occurs, so the whole
	// lookahead is scanned. Verify -1 on a long miss and correct index on
	// a late hit.
	look := make([]taskgraph.TaskID, 2500)
	for i := range look {
		look[i] = taskgraph.TaskID(i%15 + 100)
	}
	if d := scanDistance(99, look); d != -1 {
		t.Errorf("missing task distance = %d", d)
	}
	look[2499] = 99
	if d := scanDistance(99, look); d != 2499 {
		t.Errorf("late hit distance = %d", d)
	}
}
