package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a policy from a CLI-style specifier:
//
//	lru | mru | fifo | random[:seed] | lfd | locallfd:<window>
//
// The specifier is case-insensitive.
func Parse(spec string) (Policy, error) {
	name, arg, hasArg := strings.Cut(strings.ToLower(strings.TrimSpace(spec)), ":")
	switch name {
	case "lru":
		return NewLRU(), nil
	case "mru":
		return NewMRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "random":
		seed := int64(1)
		if hasArg {
			s, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("policy: bad random seed %q: %v", arg, err)
			}
			seed = s
		}
		return NewRandom(seed), nil
	case "lfd":
		return NewLFD(), nil
	case "locallfd":
		if !hasArg {
			return nil, fmt.Errorf("policy: locallfd needs a window, e.g. locallfd:2")
		}
		w, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("policy: bad locallfd window %q: %v", arg, err)
		}
		return NewLocalLFD(w)
	default:
		return nil, fmt.Errorf("policy: unknown policy %q (want lru, mru, fifo, random, lfd or locallfd:<w>)", spec)
	}
}

// Known lists the accepted specifier forms, for CLI help text.
func Known() []string {
	return []string{"lru", "mru", "fifo", "random[:seed]", "lfd", "locallfd:<window>"}
}
