package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// genScenario builds a random decision scenario from fuzz inputs.
func genScenario(rng *rand.Rand) (Request, []Candidate) {
	n := 1 + rng.Intn(8)
	cands := make([]Candidate, n)
	for i := range cands {
		cands[i] = Candidate{
			RU:       i,
			Task:     taskgraph.TaskID(1 + rng.Intn(20)),
			LastUse:  simtime.Time(rng.Intn(1000)),
			LoadedAt: simtime.Time(rng.Intn(1000)),
		}
	}
	look := make([]taskgraph.TaskID, rng.Intn(30))
	for i := range look {
		look[i] = taskgraph.TaskID(1 + rng.Intn(20))
	}
	return Request{Task: taskgraph.TaskID(1 + rng.Intn(20)), Lookahead: look}, cands
}

// TestDecisionAlwaysAmongCandidates: every policy returns one of the
// offered candidates with a consistent victim/unit pair.
func TestDecisionAlwaysAmongCandidates(t *testing.T) {
	pols := []Policy{NewLRU(), NewMRU(), NewFIFO(), NewRandom(3), NewLFD()}
	if p, err := NewLocalLFD(2); err == nil {
		pols = append(pols, p)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		req, cands := genScenario(rng)
		for _, p := range pols {
			d := p.SelectVictim(req, cands)
			found := false
			for _, c := range cands {
				if c.RU == d.RU && c.Task == d.Victim {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s invented a victim: %+v not among %+v", p.Name(), d, cands)
			}
		}
	}
}

// TestLFDPicksMaximalDistance: whatever LFD returns, no candidate has a
// strictly greater forward distance (with absence counting as infinite).
func TestLFDPicksMaximalDistance(t *testing.T) {
	p := NewLFD()
	rng := rand.New(rand.NewSource(12))
	dist := func(task taskgraph.TaskID, look []taskgraph.TaskID) int {
		for i, id := range look {
			if id == task {
				return i
			}
		}
		return 1 << 30 // infinite
	}
	for trial := 0; trial < 500; trial++ {
		req, cands := genScenario(rng)
		d := p.SelectVictim(req, cands)
		chosen := dist(d.Victim, req.Lookahead)
		for _, c := range cands {
			if dist(c.Task, req.Lookahead) > chosen {
				t.Fatalf("trial %d: candidate %d farther than chosen %d", trial, c.Task, d.Victim)
			}
		}
		// Decision metadata must agree with a fresh scan.
		wantReusable := chosen < 1<<30
		if d.Reusable != wantReusable {
			t.Fatalf("trial %d: Reusable=%v, want %v", trial, d.Reusable, wantReusable)
		}
	}
}

// TestDistanceReportedCorrectly via testing/quick: the reported distance
// is the index of the victim's first occurrence.
func TestDistanceReportedCorrectly(t *testing.T) {
	p := NewLFD()
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		req, cands := genScenario(rng)
		d := p.SelectVictim(req, cands)
		if !d.Reusable {
			for _, id := range req.Lookahead {
				if id == d.Victim {
					return false
				}
			}
			return d.Distance == -1
		}
		return d.Distance >= 0 && d.Distance < len(req.Lookahead) &&
			req.Lookahead[d.Distance] == d.Victim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicPolicies: identical inputs give identical outputs
// (Random is deterministic per seeded instance stream, tested elsewhere).
func TestDeterministicPolicies(t *testing.T) {
	pols := []Policy{NewLRU(), NewMRU(), NewFIFO(), NewLFD()}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		req, cands := genScenario(rng)
		for _, p := range pols {
			a := p.SelectVictim(req, cands)
			b := p.SelectVictim(req, cands)
			if a != b {
				t.Fatalf("%s nondeterministic: %+v vs %+v", p.Name(), a, b)
			}
		}
	}
}
