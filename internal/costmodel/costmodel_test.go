package costmodel

import (
	"math"
	"sync"
	"testing"
	"time"
)

func approx(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-6*math.Abs(want)+1e-9 {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

// TestPredictRecoversLine: two or more observations at distinct loads pin
// the family's line exactly, including the intercept the through-origin
// heuristic cannot express.
func TestPredictRecoversLine(t *testing.T) {
	m := New()
	line := func(x float64) time.Duration { return time.Duration(1e6 + 250*x) }
	for _, x := range []float64{6, 10, 15} {
		m.Observe("lfd", x, 64*x, line(x))
	}
	for _, x := range []float64{4, 8.5, 20} { // interpolation and extrapolation
		got, ok := m.Predict("lfd", x, 64*x)
		if !ok {
			t.Fatalf("Predict(x=%v) not ok with 3 observations", x)
		}
		approx(t, got, float64(line(x)), "fitted prediction")
	}
}

// TestPredictSingleObservation: one observation gives a through-origin
// slope — scale-correct even without an intercept.
func TestPredictSingleObservation(t *testing.T) {
	m := New()
	m.Observe("lru", 10, 10, 500*time.Microsecond)
	got, ok := m.Predict("lru", 15, 15)
	if !ok {
		t.Fatal("Predict not ok after one observation of the family")
	}
	approx(t, got, 1.5*float64(500*time.Microsecond), "through-origin prediction")
}

// TestPredictDegenerateLoads: several observations at one load cannot
// identify a slope and an intercept; the model must fall back to the
// ratio instead of dividing by a ~zero determinant.
func TestPredictDegenerateLoads(t *testing.T) {
	m := New()
	m.Observe("lru", 10, 10, 2*time.Millisecond)
	m.Observe("lru", 10, 10, 2*time.Millisecond)
	got, ok := m.Predict("lru", 20, 20)
	if !ok {
		t.Fatal("Predict not ok")
	}
	approx(t, got, 2*float64(2*time.Millisecond), "degenerate-load prediction")
}

// TestPredictUnseenFamilyUsesMedianRescale: a family with no
// observations gets the static heuristic rescaled by the median observed
// elapsed/heuristic ratio — the pre-model fallback, kept as last resort.
func TestPredictUnseenFamilyUsesMedianRescale(t *testing.T) {
	m := New()
	// Ratios 100, 200, 10000: the median (200) must win, not the mean.
	m.Observe("a", 10, 10, 1000*10)
	m.Observe("b", 10, 10, 2000*10)
	m.Observe("c", 10, 10, 100000*10)
	got, ok := m.Predict("never-seen", 10, 50)
	if !ok {
		t.Fatal("Predict not ok despite observed ratios")
	}
	approx(t, got, 50*2000, "median-rescaled heuristic")
}

// TestPredictEmptyModel: with nothing observed there is nothing to
// calibrate with; the caller keeps its static heuristic.
func TestPredictEmptyModel(t *testing.T) {
	m := New()
	if _, ok := m.Predict("any", 10, 10); ok {
		t.Error("empty model claimed a prediction")
	}
	if m.Observations() != 0 {
		t.Errorf("empty model reports %d observations", m.Observations())
	}
}

// TestObserveIgnoresUseless: non-positive loads or timings carry no
// information and must not poison the sums.
func TestObserveIgnoresUseless(t *testing.T) {
	m := New()
	m.Observe("x", 0, 10, time.Second)
	m.Observe("x", 10, 10, 0)
	m.Observe("x", -5, 10, time.Second)
	if m.Observations() != 0 {
		t.Errorf("useless observations counted: %d", m.Observations())
	}
}

// TestPredictionsAlwaysPositive: a decreasing fit extrapolated toward
// x=0 must clamp to the positive ratio estimate, never hand the executor
// a negative cost.
func TestPredictionsAlwaysPositive(t *testing.T) {
	m := New()
	// Steeply decreasing: elapsed falls as load grows.
	m.Observe("weird", 10, 10, 10*time.Millisecond)
	m.Observe("weird", 20, 20, 1*time.Millisecond)
	got, ok := m.Predict("weird", 1, 1)
	if !ok || got <= 0 {
		t.Fatalf("Predict = %v, %v; want a positive fallback", got, ok)
	}
}

// TestIncrementalSelfCalibration is the mid-run shape: the model starts
// on the global rescale for an unseen family and snaps to the family's
// real scale the moment its first live measurement lands.
func TestIncrementalSelfCalibration(t *testing.T) {
	m := New()
	m.Observe("cheap", 10, 10, 10*time.Microsecond) // ratio 1e3
	before, ok := m.Predict("dear", 10, 640)
	if !ok {
		t.Fatal("no fallback prediction")
	}
	approx(t, before, 640*1e3, "pre-calibration fallback")
	m.Observe("dear", 15, 960, 3*time.Second)
	after, ok := m.Predict("dear", 10, 640)
	if !ok {
		t.Fatal("no prediction after live observation")
	}
	approx(t, after, float64(2*time.Second), "post-calibration family estimate")
}

// TestConcurrentObservePredict: the executor observes from its
// coordinator while nothing stops future callers sharing a model.
func TestConcurrentObservePredict(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				m.Observe("f", float64(i), float64(i), time.Duration(i)*time.Microsecond)
				m.Predict("f", float64(i), float64(i))
				m.Predict("other", float64(i), float64(i))
			}
		}(w)
	}
	wg.Wait()
	if m.Observations() != 800 {
		t.Errorf("observations = %d, want 800", m.Observations())
	}
}
