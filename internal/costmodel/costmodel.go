// Package costmodel calibrates dispatch-cost estimates from measured
// scenario wall times.
//
// The sweep executor dispatches scenarios longest-processing-time first,
// which needs only a relative ordering of expected simulation times. The
// result store records the measured wall time of every simulated
// scenario (elapsed_ns); this package aggregates those measurements into
// one small linear model per policy family:
//
//	elapsed ≈ a + b·(workload length / RUs)
//
// The regressor is the scenario's load — sequence length over unit
// count, the same quantity the static heuristic scales — because per-
// decision policy cost is what separates families, and decisions grow
// with queue length and contention. Two observations of a family at
// different loads pin its line; one pins a through-origin slope; a
// family never measured at all falls back to the static heuristic
// rescaled by the median measured-to-heuristic ratio across all
// families — the pre-model behavior, kept as the last resort so a store
// with any measurements always beats a cold heuristic.
//
// Models are cheap to update (constant-size running sums per family), so
// the executor folds in live measurements as scenarios complete and
// re-predicts the not-yet-dispatched remainder: a long sweep
// self-calibrates mid-run, and a grid point never seen in any store is
// ranked by its family's fitted line rather than a hand-tuned constant.
// Predictions steer wall clock only, never results.
package costmodel

import (
	"sort"
	"sync"
	"time"
)

// Model accumulates per-family observations and serves predictions.
// The zero value is not usable; call New. Safe for concurrent use.
type Model struct {
	mu       sync.RWMutex
	families map[string]*fit
	ratios   []float64 // elapsed/heuristic of every observation, unsorted
	n        int
}

// fit holds the running least-squares sums of one family's
// (load, elapsed) observations.
type fit struct {
	n                        int
	sumX, sumY, sumXX, sumXY float64
}

// New returns an empty model.
func New() *Model {
	return &Model{families: make(map[string]*fit)}
}

// Observe folds in one measured scenario: its family, load regressor x,
// static heuristic cost, and measured wall time. Non-positive x or
// elapsed observations carry no information and are ignored.
func (m *Model) Observe(family string, x, heuristic float64, elapsed time.Duration) {
	if x <= 0 || elapsed <= 0 {
		return
	}
	y := float64(elapsed)
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.families[family]
	if f == nil {
		f = &fit{}
		m.families[family] = f
	}
	f.n++
	f.sumX += x
	f.sumY += y
	f.sumXX += x * x
	f.sumXY += x * y
	if heuristic > 0 {
		m.ratios = append(m.ratios, y/heuristic)
	}
	m.n++
}

// Observations reports how many measurements the model holds.
func (m *Model) Observations() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

// Predict estimates the wall time (in float64 nanoseconds, the
// executor's cost scale) of a scenario with the given family, load and
// static heuristic cost. ok is false only when the model holds no usable
// information at all — no observation of the family and no ratio to
// rescale the heuristic by — in which case the caller keeps its static
// heuristic.
func (m *Model) Predict(family string, x, heuristic float64) (cost float64, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if f := m.families[family]; f != nil && f.n > 0 && x > 0 {
		if f.n >= 2 {
			// Least squares with intercept, unless the observed loads are
			// (numerically) all equal — then the slope is unidentifiable
			// and the through-origin ratio below is the honest estimate.
			n := float64(f.n)
			den := n*f.sumXX - f.sumX*f.sumX
			if den > 1e-9*f.sumXX {
				b := (n*f.sumXY - f.sumX*f.sumY) / den
				a := (f.sumY - b*f.sumX) / n
				if pred := a + b*x; pred > 0 {
					return pred, true
				}
				// An extrapolation below zero (decreasing fit, small x)
				// falls through to the ratio, which is always positive.
			}
		}
		// Through-origin slope from the ratio of sums: exact for one
		// observation, a load-weighted mean rate for several equal loads.
		return x * f.sumY / f.sumX, true
	}
	// Family never measured: the static heuristic, rescaled onto the
	// measured scale by the median observed ratio.
	if len(m.ratios) == 0 || heuristic <= 0 {
		return 0, false
	}
	return heuristic * median(m.ratios), true
}

// median of a non-empty slice, without mutating it.
func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
