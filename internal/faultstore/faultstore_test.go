package faultstore

import (
	"strings"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/resultstore"
)

func TestFailNextStoreLoadReadsAsMiss(t *testing.T) {
	b := resultstore.NewMem()
	if err := b.Store("k", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(7)
	f := WrapStore(b, plan)
	plan.FailNext(OpStoreLoad, "", 1)
	if _, ok := f.Load("k"); ok {
		t.Fatal("scripted load fault did not read as a miss")
	}
	if data, ok := f.Load("k"); !ok || string(data) != `{"ok":true}` {
		t.Fatalf("second load = %q, %v — the script was one-shot", data, ok)
	}
	if got := plan.Injected()[OpStoreLoad]; got != 1 {
		t.Fatalf("injected[%s] = %d, want 1", OpStoreLoad, got)
	}
}

func TestTornWriteLeavesUndecodableHalf(t *testing.T) {
	b := resultstore.NewMem()
	plan := NewPlan(7)
	f := WrapStore(b, plan)
	plan.TornNext(OpStoreStore, "victim", 1)

	payload := []byte(`{"schema_version":2,"scenario":"s"}`)
	err := f.Store("victim", payload)
	if err == nil || !strings.Contains(err.Error(), "injected store.store fault") {
		t.Fatalf("torn write error = %v, want the injected-fault message", err)
	}
	half, ok := b.Load("victim")
	if !ok || len(half) != len(payload)/2 {
		t.Fatalf("underlying backend holds %d bytes (ok=%v), want the torn half (%d)",
			len(half), ok, len(payload)/2)
	}
	// The reader side must reject the junk: through the Store layer the
	// torn entry is a miss, never a half-parsed result.
	if _, ok := resultstore.FromBackend(b).Get("victim"); ok {
		t.Fatal("torn entry decoded as a valid result")
	}
	// And an untouched key writes through cleanly.
	if err := f.Store("other", payload); err != nil {
		t.Fatal(err)
	}
	if data, ok := b.Load("other"); !ok || len(data) != len(payload) {
		t.Fatalf("clean write stored %d bytes (ok=%v), want %d", len(data), ok, len(payload))
	}
}

func TestKeyMatchScoping(t *testing.T) {
	plan := NewPlan(7)
	f := WrapCoord(coord.NewMem(), plan)
	plan.FailNext(OpCoordGet, "lease", 2)
	if err := f.Put("shard-0000/lease", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Put("meta", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get("meta"); err != nil {
		t.Fatalf("fault scoped to %q hit key %q: %v", "lease", "meta", err)
	}
	if _, err := f.Get("shard-0000/lease"); err == nil {
		t.Fatal("scripted coord.get fault did not fire on the matching key")
	}
	if _, err := f.Get("shard-0000/lease"); err == nil {
		t.Fatal("second shot of the two-shot script did not fire")
	}
	if _, err := f.Get("shard-0000/lease"); err != nil {
		t.Fatalf("exhausted script still firing: %v", err)
	}
	if plan.InjectedTotal() != 2 {
		t.Fatalf("InjectedTotal() = %d, want 2", plan.InjectedTotal())
	}
}

func TestCoordCreateFailsWithoutTearing(t *testing.T) {
	b := coord.NewMem()
	plan := NewPlan(7)
	f := WrapCoord(b, plan)
	plan.TornNext(OpCoordCreate, "", 1)
	if err := f.Create("claim", []byte("owner")); err == nil {
		t.Fatal("scripted create fault did not fire")
	}
	// Create never tears: a half-written claim no one holds would wedge
	// the shard, so the key must be absent — and claimable — afterwards.
	if _, err := b.Get("claim"); err == nil {
		t.Fatal("failed Create left state behind")
	}
	if err := f.Create("claim", []byte("owner")); err != nil {
		t.Fatalf("re-claim after injected failure: %v", err)
	}
}

func TestWildcardAndLatency(t *testing.T) {
	plan := NewPlan(7).WithLatency(100 * time.Microsecond)
	f := WrapCoord(coord.NewMem(), plan)
	plan.FailNext("*", "", 3)
	if err := f.Put("a", nil); err == nil {
		t.Fatal("wildcard script missed Put")
	}
	if _, err := f.List(""); err == nil {
		t.Fatal("wildcard script missed List")
	}
	if _, err := f.Get("a"); err == nil {
		t.Fatal("wildcard script missed Get")
	}
	// Latency-only from here on: semantics untouched, Now() delegated.
	if err := f.Put("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if data, err := f.Get("a"); err != nil || string(data) != "v" {
		t.Fatalf("Get under latency = %q, %v", data, err)
	}
	if f.Now().IsZero() {
		t.Fatal("Now() must delegate to the backend clock")
	}
	if !strings.HasPrefix(f.Location(), "fault(") {
		t.Fatalf("Location() = %q, want the fault(...) tag", f.Location())
	}
}
