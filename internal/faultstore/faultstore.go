// Package faultstore wraps result-store and coordinator backends with
// scripted and seeded fault injection: errors, latency, and torn
// writes. It is the test substrate for every recovery path this module
// promises — per-scenario retry budgets, checkpointed resume, GC of
// torn entries — and doubles as a registered conformance decorator
// (RTR_BACKEND=fault in internal/storetest and internal/coordtest), so
// the backend contracts are exercised under injected timing jitter too.
//
// A Plan is the shared fault schedule: scripted faults (FailNext,
// TornNext) fire deterministically on the next matching operations,
// while WithLatency adds seeded, bounded real-time delays to every
// call. Latency never changes semantics — conformance suites assert
// exact counter values, so the decorator they register injects latency
// only; the destructive modes are for dedicated recovery tests.
package faultstore

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/resultstore"
)

// Op names an interceptable backend operation, e.g. "store.store" or
// "coord.put". The wildcard "*" matches every operation.
const (
	OpStoreLoad   = "store.load"
	OpStoreStore  = "store.store"
	OpStoreVisit  = "store.visit"
	OpStoreDelete = "store.delete"
	OpCoordGet    = "coord.get"
	OpCoordPut    = "coord.put"
	OpCoordCreate = "coord.create"
	OpCoordList   = "coord.list"
)

type mode int

const (
	modeFail mode = iota
	modeTorn
)

// script is one scheduled fault: the next `remaining` operations
// matching (op, key substring) misbehave.
type script struct {
	op        string
	keyMatch  string
	remaining int
	mode      mode
}

// Plan is a fault schedule shared by any number of wrapped backends.
// All methods are safe for concurrent use.
type Plan struct {
	mu         sync.Mutex
	rng        *rand.Rand
	maxLatency time.Duration
	scripts    []*script
	injected   map[string]int
}

// NewPlan returns an empty schedule; seed drives the latency jitter, so
// a failing run reproduces exactly.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed)), injected: make(map[string]int)}
}

// WithLatency makes every wrapped call sleep a seeded duration in
// [0, max). Keep it small (sub-millisecond) next to fake-clock tests:
// the sleep is real time, never the injected clock.
func (p *Plan) WithLatency(max time.Duration) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.maxLatency = max
	return p
}

// FailNext scripts the next n operations matching op (exact name or
// "*") and keyMatch (substring; "" matches all keys) to fail without
// touching the underlying backend.
func (p *Plan) FailNext(op, keyMatch string, n int) *Plan {
	return p.script(op, keyMatch, n, modeFail)
}

// TornNext scripts the next n matching writes to tear: half the bytes
// reach the real backend, then the call fails. Reads and other
// non-write operations scripted this way simply fail.
func (p *Plan) TornNext(op, keyMatch string, n int) *Plan {
	return p.script(op, keyMatch, n, modeTorn)
}

func (p *Plan) script(op, keyMatch string, n int, m mode) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.scripts = append(p.scripts, &script{op: op, keyMatch: keyMatch, remaining: n, mode: m})
	return p
}

// Injected reports how many faults fired, by operation name.
func (p *Plan) Injected() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.injected))
	for k, v := range p.injected {
		out[k] = v
	}
	return out
}

// InjectedTotal reports how many faults fired across all operations.
func (p *Plan) InjectedTotal() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, v := range p.injected {
		n += v
	}
	return n
}

// before runs the pre-call schedule for one operation: the seeded
// latency, then the first matching script, consuming one shot of it.
// torn=true means "write a torn prefix, then fail"; err != nil alone
// means "fail outright".
func (p *Plan) before(op, key string) (torn bool, err error) {
	p.mu.Lock()
	var sleep time.Duration
	if p.maxLatency > 0 {
		sleep = time.Duration(p.rng.Int63n(int64(p.maxLatency)))
	}
	var hit *script
	for _, s := range p.scripts {
		if s.remaining > 0 && (s.op == "*" || s.op == op) && strings.Contains(key, s.keyMatch) {
			hit = s
			break
		}
	}
	if hit != nil {
		hit.remaining--
		p.injected[op]++
	}
	p.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if hit == nil {
		return false, nil
	}
	err = fmt.Errorf("faultstore: injected %s fault on %q", op, key)
	return hit.mode == modeTorn, err
}

// tearData is the torn prefix a TornNext write leaves behind: half the
// payload, which for every JSON record this module persists is
// undecodable junk the reader must reject and GC must sweep.
func tearData(data []byte) []byte {
	return data[:len(data)/2]
}

// faultyStore decorates a resultstore.Backend with a Plan.
type faultyStore struct {
	b    resultstore.Backend
	plan *Plan
}

// WrapStore returns b with plan's faults injected. The Location is
// tagged so digests show the decoration.
func WrapStore(b resultstore.Backend, plan *Plan) resultstore.Backend {
	return &faultyStore{b: b, plan: plan}
}

func (f *faultyStore) Load(key string) ([]byte, bool) {
	// A store load has no error channel: an injected fault reads as a
	// miss, exactly how the store treats an unreadable entry.
	if _, err := f.plan.before(OpStoreLoad, key); err != nil {
		return nil, false
	}
	return f.b.Load(key)
}

func (f *faultyStore) Store(key string, data []byte) error {
	torn, err := f.plan.before(OpStoreStore, key)
	if err != nil {
		if torn {
			_ = f.b.Store(key, tearData(data))
		}
		return err
	}
	return f.b.Store(key, data)
}

func (f *faultyStore) Visit(fn func(key string, data []byte) error) (int, error) {
	if _, err := f.plan.before(OpStoreVisit, ""); err != nil {
		return 0, err
	}
	return f.b.Visit(fn)
}

func (f *faultyStore) Delete(key string) error {
	if _, err := f.plan.before(OpStoreDelete, key); err != nil {
		return err
	}
	return f.b.Delete(key)
}

func (f *faultyStore) Location() string { return "fault(" + f.b.Location() + ")" }

// faultyCoord decorates a coord.Backend with a Plan. Now is never
// intercepted: lease-expiry arithmetic runs on the pool clock (often a
// fake one in tests), and faulting it would test the clock, not the
// protocol.
type faultyCoord struct {
	b    coord.Backend
	plan *Plan
}

// WrapCoord returns b with plan's faults injected.
func WrapCoord(b coord.Backend, plan *Plan) coord.Backend {
	return &faultyCoord{b: b, plan: plan}
}

func (f *faultyCoord) Get(key string) ([]byte, error) {
	if _, err := f.plan.before(OpCoordGet, key); err != nil {
		return nil, err
	}
	return f.b.Get(key)
}

func (f *faultyCoord) Put(key string, data []byte) error {
	torn, err := f.plan.before(OpCoordPut, key)
	if err != nil {
		if torn {
			_ = f.b.Put(key, tearData(data))
		}
		return err
	}
	return f.b.Put(key, data)
}

func (f *faultyCoord) Create(key string, data []byte) error {
	// Create is the exactly-once claim primitive; a torn script fails it
	// without writing — a half-written claim no one holds would wedge
	// the shard for a full TTL, which is a different (and by
	// construction impossible) failure than the torn overwrites
	// TornNext models.
	if _, err := f.plan.before(OpCoordCreate, key); err != nil {
		return err
	}
	return f.b.Create(key, data)
}

func (f *faultyCoord) List(dir string) ([]string, error) {
	if _, err := f.plan.before(OpCoordList, dir); err != nil {
		return nil, err
	}
	return f.b.List(dir)
}

func (f *faultyCoord) Now() time.Time { return f.b.Now() }

func (f *faultyCoord) Location() string { return "fault(" + f.b.Location() + ")" }
