package backendurl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/serve/wire"
)

// This file is the client half of the rtrserved control plane: store
// and coordinator backends that speak the wire protocol over
// http:/https: locators. The types implement resultstore.Backend and
// coord.Backend structurally (this package cannot import either
// without a cycle through their OpenBackend/OpenURL routing); the
// compile-time assertions live next to those switch arms.
//
// All protocol semantics stay client-side, exactly as they do for the
// other backends: the server only moves bytes, tells the time, and
// enforces auth. That is what lets the storetest/coordtest conformance
// suites — and the fake-clock protocol tests — run unmodified against
// a live server.

// HTTPOptions tunes the wire client. The zero value is usable.
type HTTPOptions struct {
	// Token, when non-empty, is sent as "Authorization: Bearer <Token>"
	// on every request.
	Token string
	// Timeout bounds each HTTP attempt (default 1 minute).
	Timeout time.Duration
	// Retries is the number of extra attempts after a connection error
	// or 5xx response (default 3; 4xx responses never retry). Backoff
	// is exponential starting at 100ms.
	Retries int
	// Client overrides the underlying *http.Client (tests).
	Client *http.Client
}

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.Timeout <= 0 {
		o.Timeout = time.Minute
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// httpClient is the shared request engine: auth header, per-request
// timeout, retry-with-backoff on 5xx and connection errors.
type httpClient struct {
	base string // campaign base URL, no trailing slash
	o    HTTPOptions
}

func newHTTPClient(loc Locator, o HTTPOptions) (*httpClient, error) {
	if loc.Scheme != SchemeHTTP && loc.Scheme != SchemeHTTPS {
		return nil, fmt.Errorf("backendurl: %s locator is not http/https", loc.Scheme)
	}
	return &httpClient{base: strings.TrimRight(loc.URL(), "/"), o: o.withDefaults()}, nil
}

// errStatus is a non-2xx response, carrying the decoded wire.Error
// message when the server sent one.
type errStatus struct {
	code int
	msg  string
}

func (e *errStatus) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("server returned %d: %s", e.code, e.msg)
	}
	return fmt.Sprintf("server returned %d", e.code)
}

// do issues method on base+path with the given body, retrying
// connection errors and 5xx responses, and returns the response body.
// Non-2xx responses come back as *errStatus.
func (c *httpClient) do(method, path string, body []byte) ([]byte, error) {
	var last error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt <= c.o.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
		data, err := c.once(method, path, body)
		if err == nil {
			return data, nil
		}
		last = err
		var se *errStatus
		if errors.As(err, &se) && se.code < 500 {
			return nil, err // 4xx: the request is wrong, retrying cannot help
		}
	}
	return nil, fmt.Errorf("%s %s%s: %w (after %d attempts)", method, c.base, path, last, c.o.Retries+1)
}

func (c *httpClient) once(method, path string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.o.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if c.o.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.o.Token)
	}
	resp, err := c.o.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return data, err
	}
	var we wire.Error
	_ = json.Unmarshal(data, &we)
	return nil, &errStatus{code: resp.StatusCode, msg: we.Message}
}

// notFound reports whether err is a 404 response.
func notFound(err error) bool {
	var se *errStatus
	return errors.As(err, &se) && se.code == http.StatusNotFound
}

// conflict reports whether err is a 409 response.
func conflict(err error) bool {
	var se *errStatus
	return errors.As(err, &se) && se.code == http.StatusConflict
}

// HTTPStore is a resultstore.Backend over the wire: objects live under
// {campaign}/store/o/{key} on an rtrserved instance.
type HTTPStore struct {
	c *httpClient
}

// NewHTTPStore dials nothing — it binds the locator and options; every
// method is an independent request.
func NewHTTPStore(loc Locator, o HTTPOptions) (*HTTPStore, error) {
	c, err := newHTTPClient(loc, o)
	if err != nil {
		return nil, err
	}
	return &HTTPStore{c: c}, nil
}

func (s *HTTPStore) Load(key string) ([]byte, bool) {
	data, err := s.c.do(http.MethodGet, "/store/o/"+key, nil)
	if err != nil {
		return nil, false // absent or unreachable: degrade to re-simulation
	}
	return data, true
}

func (s *HTTPStore) Store(key string, data []byte) error {
	_, err := s.c.do(http.MethodPut, "/store/o/"+key, data)
	return err
}

func (s *HTTPStore) Delete(key string) error {
	_, err := s.c.do(http.MethodDelete, "/store/o/"+key, nil)
	if err != nil && notFound(err) {
		return nil
	}
	return err
}

// Visit streams {campaign}/store/visit: NDJSON wire.VisitLine records,
// one per object, closed by an EOF trailer carrying the server-side
// junk count. Decoding — including the refusal to treat a stream with
// no trailer as complete — lives in wire.ReadVisit, shared with the
// server's own tests and the fuzz corpus.
func (s *HTTPStore) Visit(fn func(key string, data []byte) error) (int, error) {
	data, err := s.c.do(http.MethodGet, "/store/visit", nil)
	if err != nil {
		return 0, err
	}
	return wire.ReadVisit(bytes.NewReader(data), fn)
}

func (s *HTTPStore) Location() string { return s.c.base }

// HTTPCoord is a coord.Backend over the wire: state records live under
// {campaign}/coord/k/{key} on an rtrserved instance.
type HTTPCoord struct {
	c *httpClient

	// Now() must not block on the network (it is called inside tight
	// protocol loops), so the server clock is sampled once and the
	// local-vs-server offset cached; see Now.
	mu       sync.Mutex
	clockSet bool
	offset   time.Duration
}

// NewHTTPCoord binds the locator and options; see NewHTTPStore.
func NewHTTPCoord(loc Locator, o HTTPOptions) (*HTTPCoord, error) {
	c, err := newHTTPClient(loc, o)
	if err != nil {
		return nil, err
	}
	return &HTTPCoord{c: c}, nil
}

func (b *HTTPCoord) Get(key string) ([]byte, error) {
	data, err := b.c.do(http.MethodGet, "/coord/k/"+key, nil)
	if err != nil {
		if notFound(err) {
			return nil, fs.ErrNotExist
		}
		return nil, err
	}
	return data, nil
}

func (b *HTTPCoord) Put(key string, data []byte) error {
	_, err := b.c.do(http.MethodPut, "/coord/k/"+key, data)
	return err
}

// Create maps the server's 409 back to fs.ErrExist — the exclusive
// claim verdict. Note a retried Create can observe its *own* first
// attempt: if the server commits the record but the response is lost,
// the retry gets 409 and this worker loses a claim it actually won.
// That is safe — it is indistinguishable from losing the race, and the
// TTL re-lease path reclaims the shard — but it is why Create retries
// stay on, not why they could come off.
func (b *HTTPCoord) Create(key string, data []byte) error {
	_, err := b.c.do(http.MethodPost, "/coord/k/"+key, data)
	if err != nil && conflict(err) {
		return fs.ErrExist
	}
	return err
}

func (b *HTTPCoord) List(dir string) ([]string, error) {
	data, err := b.c.do(http.MethodGet, "/coord/list?dir="+dir, nil)
	if err != nil {
		if notFound(err) {
			return nil, fs.ErrNotExist
		}
		return nil, err
	}
	var names wire.Names
	if err := json.Unmarshal(data, &names); err != nil {
		return nil, fmt.Errorf("backendurl: list %s: %v", dir, err)
	}
	return names.Names, nil
}

// Now returns the pool clock: local monotonic time corrected by a
// once-sampled offset to the server clock, so every client of one
// server agrees on lease expiry to within one round trip regardless of
// host clock skew. If the sample fails, Now falls back to local time
// and re-samples on the next call.
func (b *HTTPCoord) Now() time.Time {
	b.mu.Lock()
	if !b.clockSet {
		if data, err := b.c.do(http.MethodGet, "/now", nil); err == nil {
			var n wire.Now
			if json.Unmarshal(data, &n) == nil {
				b.offset = time.Until(time.Unix(0, n.UnixNano))
				b.clockSet = true
			}
		}
	}
	off := b.offset
	b.mu.Unlock()
	return time.Now().Add(off)
}

func (b *HTTPCoord) Location() string { return b.c.base }
