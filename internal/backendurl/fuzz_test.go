package backendurl

import "testing"

// FuzzParseLocator throws arbitrary flag values at the locator parser
// and checks the two properties every caller relies on: Parse never
// panics, and a successful parse is canonical — String() reparses
// without error to the identical Locator, so a locator can round-trip
// through config files, process boundaries and error messages without
// drifting. CI runs this a few seconds per push; the checked-in corpus
// under testdata/fuzz keeps the interesting shapes regression-tested
// by plain `go test` forever.
func FuzzParseLocator(f *testing.F) {
	for _, seed := range []string{
		"",
		".rtr-store",
		"fs:/mnt/campaign",
		"fs:",
		"mem:",
		"mem:oops",
		"sqlite:campaign.db",
		"sqlite:",
		"http://host:8080/c/ID",
		"https://host/c/ID",
		"http:",
		"http://",
		"ftp:thing",
		"C:\\x",
		"a:b",
		"FS:Mixed/Case",
		"fs:a//b/.",
		"..",
		"mem::",
		"http:relative",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		loc, err := Parse("-store", raw)
		if err != nil {
			return // rejected input: the only property is "no panic"
		}
		if loc.Scheme == "" {
			t.Fatalf("Parse(%q) accepted with empty scheme: %+v", raw, loc)
		}
		again, err := Parse("-store", loc.String())
		if err != nil {
			t.Fatalf("Parse(%q) = %+v, but reparsing its String %q failed: %v",
				raw, loc, loc.String(), err)
		}
		if again != loc {
			t.Fatalf("Parse(%q) = %+v is not canonical: String %q reparses to %+v",
				raw, loc, loc.String(), again)
		}
	})
}
