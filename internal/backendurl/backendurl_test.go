package backendurl

import "testing"

// The error strings below are pinned: they name the offending flag so
// a multi-flag CLI invocation points at the right argument, and both
// CLIs share them through this package.

func TestParseBarePathIsFS(t *testing.T) {
	for raw, want := range map[string]string{
		".rtr-store":    ".rtr-store",
		"/mnt/campaign": "/mnt/campaign",
		"a//b/.":        "a/b", // Clean-normalized: one locator per backend
		"./rel":         "rel",
		"dir/../other":  "other",
	} {
		got, err := Parse("-store", raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		if got.Scheme != SchemeFS || got.Path != want {
			t.Errorf("Parse(%q) = %+v, want fs:%s", raw, got, want)
		}
	}
}

func TestParseSchemeDetection(t *testing.T) {
	// Single-letter prefixes (Windows drive style) and non-letter
	// prefixes are paths, not schemes.
	for _, raw := range []string{"c:tmp", "9x:tmp", "_x:tmp"} {
		got, err := Parse("-store", raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", raw, err)
		}
		if got.Scheme != SchemeFS {
			t.Errorf("Parse(%q).Scheme = %q, want fs (not a scheme prefix)", raw, got.Scheme)
		}
	}
	// An all-letter prefix of length ≥ 2 IS a scheme — unknown ones
	// must error rather than silently become directories.
	if _, err := Parse("-store", "weird:but:a/path"); err == nil {
		t.Error("unknown scheme accepted as a path")
	}
}

func TestParseExplicitSchemes(t *testing.T) {
	cases := []struct {
		raw  string
		want Locator
	}{
		{"fs:.rtr-store", Locator{SchemeFS, ".rtr-store"}},
		{"FS:/mnt/x/", Locator{SchemeFS, "/mnt/x"}},
		{"mem:", Locator{SchemeMem, ""}},
		{"MEM:", Locator{SchemeMem, ""}},
		{"sqlite:campaign.db", Locator{SchemeSQLite, "campaign.db"}},
		{"sqlite:./a//b.db", Locator{SchemeSQLite, "a/b.db"}},
	}
	for _, c := range cases {
		got, err := Parse("-coord", c.raw)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.raw, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.raw, got, c.want)
		}
	}
}

// TestParseErrorsNameTheFlag pins the full message for each failure
// mode: unknown scheme, missing path, and the empty locator. A user
// running `rtrrepro -store sqlite:db -coord sqlit:db` must be told
// which flag is wrong.
func TestParseErrorsNameTheFlag(t *testing.T) {
	cases := []struct {
		flag, raw, want string
	}{
		{"-store", "redis:host", `-store: unknown backend scheme "redis" (registered schemes: fs:, mem:, sqlite:, http:, https:)`},
		{"-coord", "sqlit:db", `-coord: unknown backend scheme "sqlit" (registered schemes: fs:, mem:, sqlite:, http:, https:)`},
		{"-store", "sqlite:", `-store: sqlite: missing path (want sqlite:FILE.db)`},
		{"-coord", "fs:", `-coord: fs: missing path (want fs:DIR)`},
		{"-store", "mem:stuff", `-store: mem: takes no path (got "stuff", want mem:)`},
		{"-coord", "", `-coord: empty backend locator`},
		{"-store", "http:", `-store: http: missing host (want http://HOST:PORT/c/ID)`},
		{"-coord", "https://", `-coord: https: missing host (want https://HOST:PORT/c/ID)`},
	}
	for _, c := range cases {
		_, err := Parse(c.flag, c.raw)
		if err == nil {
			t.Errorf("Parse(%s, %q): want error", c.flag, c.raw)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("Parse(%s, %q) error = %q, want %q", c.flag, c.raw, err.Error(), c.want)
		}
	}
}

func TestParseHTTP(t *testing.T) {
	l, err := Parse("-store", "http://host:8080/c/abc12")
	if err != nil {
		t.Fatal(err)
	}
	if l.Scheme != SchemeHTTP || l.URL() != "http://host:8080/c/abc12" {
		t.Errorf("http locator %+v, URL %q", l, l.URL())
	}
	l, err = Parse("-coord", "HTTPS://host/c/x")
	if err != nil {
		t.Fatal(err)
	}
	if l.Scheme != SchemeHTTPS || l.URL() != "https://host/c/x" {
		t.Errorf("https locator %+v, URL %q", l, l.URL())
	}
}

func TestLocatorStringRoundTrip(t *testing.T) {
	for _, raw := range []string{"fs:store", "mem:", "sqlite:c.db", "http://h:1/c/x"} {
		l, err := Parse("-store", raw)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse("-store", l.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", l.String(), err)
		}
		if back != l {
			t.Errorf("round trip %q → %+v → %+v", raw, l, back)
		}
	}
}
