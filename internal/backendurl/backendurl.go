// Package backendurl parses the -store/-coord backend locator syntax
// shared by cmd/rtrrepro and cmd/rtrsim.
//
// A locator is either a bare filesystem path (the historical form,
// still the default) or a scheme-prefixed form:
//
//	.rtr-store                   → fs backend rooted at .rtr-store
//	fs:/mnt/campaign             → fs backend, explicit scheme
//	mem:                         → in-process memory backend (ephemeral)
//	sqlite:campaign.db           → single-file campaign database
//	http://host:8080/c/ID        → campaign hosted by rtrserved
//	https://host/c/ID            → same, over TLS
//
// Both CLIs parse through this one package so the scheme set, the
// error messages, and the path normalization cannot drift between
// -store and -coord.
package backendurl

import (
	"fmt"
	"path/filepath"
	"strings"
)

// Recognized schemes.
const (
	SchemeFS     = "fs"
	SchemeMem    = "mem"
	SchemeSQLite = "sqlite"
	SchemeHTTP   = "http"
	SchemeHTTPS  = "https"
)

// Schemes lists every registered scheme, in the order error messages
// enumerate them. New backends register here so "unknown scheme"
// diagnostics can never go stale.
func Schemes() []string {
	return []string{SchemeFS, SchemeMem, SchemeSQLite, SchemeHTTP, SchemeHTTPS}
}

// schemeList renders Schemes for an error message: "fs:, mem:, ...".
func schemeList() string {
	s := Schemes()
	return strings.Join(s, ":, ") + ":"
}

// Locator is a parsed backend reference: which backend family, and the
// path it is rooted at (empty for mem).
type Locator struct {
	Scheme string
	Path   string
}

// String renders the canonical form, suitable for reparsing.
func (l Locator) String() string {
	return l.Scheme + ":" + l.Path
}

// looksLikeScheme reports whether raw starts with "<ident>:" where
// <ident> is alphabetic. This keeps Windows-style "C:\x" and
// relative paths with colons elsewhere out of the scheme namespace:
// only all-letter prefixes of length ≥ 2 are treated as schemes.
func splitScheme(raw string) (scheme, rest string, ok bool) {
	i := strings.IndexByte(raw, ':')
	if i < 2 {
		return "", "", false
	}
	for _, r := range raw[:i] {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') {
			return "", "", false
		}
	}
	return strings.ToLower(raw[:i]), raw[i+1:], true
}

// Parse interprets raw as a backend locator for the named CLI flag
// (e.g. "-store"). A bare path parses as the fs scheme. Paths are
// cleaned via filepath.Clean so "a//b/." and "a/b" name one backend;
// relative paths stay relative (they resolve against the working
// directory of each process, exactly as the bare-path form always
// has). Empty raw is an error: callers decide upstream whether an
// unset flag means "disabled".
func Parse(flag, raw string) (Locator, error) {
	if raw == "" {
		return Locator{}, fmt.Errorf("%s: empty backend locator", flag)
	}
	scheme, rest, ok := splitScheme(raw)
	if !ok {
		return Locator{Scheme: SchemeFS, Path: filepath.Clean(raw)}, nil
	}
	switch scheme {
	case SchemeFS:
		if rest == "" {
			return Locator{}, fmt.Errorf("%s: fs: missing path (want %s:DIR)", flag, SchemeFS)
		}
		return Locator{Scheme: SchemeFS, Path: filepath.Clean(rest)}, nil
	case SchemeMem:
		if rest != "" {
			return Locator{}, fmt.Errorf("%s: mem: takes no path (got %q, want mem:)", flag, rest)
		}
		return Locator{Scheme: SchemeMem}, nil
	case SchemeSQLite:
		if rest == "" {
			return Locator{}, fmt.Errorf("%s: sqlite: missing path (want %s:FILE.db)", flag, SchemeSQLite)
		}
		return Locator{Scheme: SchemeSQLite, Path: filepath.Clean(rest)}, nil
	case SchemeHTTP, SchemeHTTPS:
		if !strings.HasPrefix(rest, "//") || rest == "//" {
			return Locator{}, fmt.Errorf("%s: %s: missing host (want %s://HOST:PORT/c/ID)", flag, scheme, scheme)
		}
		// The path is the remainder of the URL; String() rejoins the
		// two halves into the original http://... form.
		return Locator{Scheme: scheme, Path: rest}, nil
	default:
		return Locator{}, fmt.Errorf("%s: unknown backend scheme %q (registered schemes: %s)", flag, scheme, schemeList())
	}
}

// URL reconstructs the full URL for http/https locators.
func (l Locator) URL() string { return l.Scheme + ":" + l.Path }
