package trace

import (
	"fmt"
	"strings"

	"repro/internal/simtime"
)

// GanttOptions controls rendering of a schedule view.
type GanttOptions struct {
	// TickMs is the simulated time represented by one character column.
	// Zero selects a tick that keeps the chart under ~100 columns.
	TickMs float64
}

// Gantt renders the trace as a per-unit ASCII timeline in the style of the
// paper's schedule figures:
//
//	RU0 |####111111......
//	RU1 |....####22222222
//	rec |####@@@@........
//
// '#' marks a reconfiguration occupying the unit, digits (the task ID,
// last digit) mark execution, '*' marks execution of a reused task, '.'
// marks idle time. The "rec" row shows the single reconfiguration
// circuitry's busy time.
func (t *Trace) Gantt(opt GanttOptions) string {
	makespan := t.Makespan()
	for _, l := range t.Loads {
		if l.End.After(makespan) {
			makespan = l.End
		}
	}
	if makespan == 0 {
		return "(empty trace)\n"
	}
	tick := simtime.FromMs(opt.TickMs)
	if tick <= 0 {
		tick = makespan / 100
		if tick < simtime.Millisecond {
			tick = simtime.Millisecond
		}
	}
	cols := int((makespan + tick - 1) / tick)
	rows := make([][]byte, t.RUs+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", cols))
	}
	paint := func(row []byte, from, to simtime.Time, c byte) {
		for i := int(from / tick); i < cols && simtime.Time(i)*tick < to; i++ {
			row[i] = c
		}
	}
	for _, l := range t.Loads {
		paint(rows[l.RU], l.Start, l.End, '#')
		paint(rows[t.RUs], l.Start, l.End, '@')
	}
	for _, e := range t.Execs {
		c := byte('0' + int(e.Task)%10)
		if e.Reused {
			c = '*'
		}
		paint(rows[e.RU], e.Start, e.End, c)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "1 col = %v, makespan = %v\n", tick, makespan)
	for i := 0; i < t.RUs; i++ {
		fmt.Fprintf(&b, "RU%-2d|%s|\n", i, rows[i])
	}
	fmt.Fprintf(&b, "rec |%s|\n", rows[t.RUs])
	return b.String()
}
