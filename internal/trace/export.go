package trace

import (
	"encoding/json"
	"fmt"
	"strings"
)

// traceJSON is the stable export schema; times are millisecond floats to
// match the paper's units and stay toolable from any language.
type traceJSON struct {
	RUs           int         `json:"rus"`
	LatencyMs     float64     `json:"latency_ms"`
	Heterogeneous bool        `json:"heterogeneous,omitempty"`
	Loads         []loadJSON  `json:"loads"`
	Execs         []execJSON  `json:"execs"`
	Skips         []skipJSON  `json:"skips,omitempty"`
	Graphs        []graphJSON `json:"graphs"`
}

type loadJSON struct {
	Task     int     `json:"task"`
	RU       int     `json:"ru"`
	StartMs  float64 `json:"start_ms"`
	EndMs    float64 `json:"end_ms"`
	Evicted  int     `json:"evicted,omitempty"`
	Instance int     `json:"instance"`
}

type execJSON struct {
	Task     int     `json:"task"`
	RU       int     `json:"ru"`
	StartMs  float64 `json:"start_ms"`
	EndMs    float64 `json:"end_ms"`
	Reused   bool    `json:"reused,omitempty"`
	Instance int     `json:"instance"`
}

type skipJSON struct {
	Task     int     `json:"task"`
	Victim   int     `json:"victim"`
	AtMs     float64 `json:"at_ms"`
	Instance int     `json:"instance"`
}

type graphJSON struct {
	Name       string  `json:"name"`
	Instance   int     `json:"instance"`
	ArrivedMs  float64 `json:"arrived_ms"`
	StartedMs  float64 `json:"started_ms"`
	FinishedMs float64 `json:"finished_ms"`
}

// MarshalJSON exports the trace for external analysis.
func (t *Trace) MarshalJSON() ([]byte, error) {
	out := traceJSON{
		RUs:           t.RUs,
		LatencyMs:     t.Latency.Ms(),
		Heterogeneous: t.Heterogeneous,
		Loads:         make([]loadJSON, 0, len(t.Loads)),
		Execs:         make([]execJSON, 0, len(t.Execs)),
		Graphs:        make([]graphJSON, 0, len(t.Graphs)),
	}
	for _, l := range t.Loads {
		out.Loads = append(out.Loads, loadJSON{
			Task: int(l.Task), RU: l.RU,
			StartMs: l.Start.Ms(), EndMs: l.End.Ms(),
			Evicted: int(l.Evicted), Instance: l.Instance,
		})
	}
	for _, e := range t.Execs {
		out.Execs = append(out.Execs, execJSON{
			Task: int(e.Task), RU: e.RU,
			StartMs: e.Start.Ms(), EndMs: e.End.Ms(),
			Reused: e.Reused, Instance: e.Instance,
		})
	}
	for _, s := range t.Skips {
		out.Skips = append(out.Skips, skipJSON{
			Task: int(s.Task), Victim: int(s.Victim), AtMs: s.At.Ms(), Instance: s.Instance,
		})
	}
	for _, g := range t.Graphs {
		out.Graphs = append(out.Graphs, graphJSON{
			Name: g.Name, Instance: g.Instance,
			ArrivedMs: g.Arrived.Ms(), StartedMs: g.Started.Ms(), FinishedMs: g.Finished.Ms(),
		})
	}
	return json.Marshal(out)
}

// svg layout constants (pixels).
const (
	svgRowH    = 22
	svgRowGap  = 6
	svgLeft    = 56
	svgRight   = 16
	svgTop     = 28
	svgPxPerMs = 8.0
)

// taskColor deterministically assigns one of a small palette per task.
func taskColor(task int) string {
	palette := []string{
		"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
		"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
	}
	if task < 0 {
		task = -task
	}
	return palette[task%len(palette)]
}

// SVG renders the schedule as a standalone SVG document: one lane per
// reconfigurable unit plus a lane for the reconfiguration circuitry.
// Loads are hatched gray, executions are colored by task (reuses get a
// bold outline), matching the visual language of the paper's figures.
func (t *Trace) SVG() string {
	makespan := t.Makespan()
	for _, l := range t.Loads {
		if l.End.After(makespan) {
			makespan = l.End
		}
	}
	lanes := t.RUs + 1
	width := svgLeft + int(makespan.Ms()*svgPxPerMs) + svgRight
	height := svgTop + lanes*(svgRowH+svgRowGap)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n",
		width, height)
	fmt.Fprintf(&b, `<text x="4" y="14">makespan %v, %d units, latency %v</text>`+"\n",
		makespan, t.RUs, t.Latency)
	laneY := func(lane int) int { return svgTop + lane*(svgRowH+svgRowGap) }
	x := func(tm float64) float64 { return float64(svgLeft) + tm*svgPxPerMs }
	// Lane labels and baselines.
	for i := 0; i < lanes; i++ {
		label := fmt.Sprintf("RU%d", i)
		if i == t.RUs {
			label = "rec"
		}
		y := laneY(i)
		fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`+"\n", y+svgRowH-7, label)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			svgLeft, y+svgRowH, width-svgRight, y+svgRowH)
	}
	rect := func(lane int, from, to float64, fill, extra string) {
		w := x(to) - x(from)
		if w < 1 {
			w = 1
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"%s/>`+"\n",
			x(from), laneY(lane), w, svgRowH, fill, extra)
	}
	for _, l := range t.Loads {
		rect(l.RU, l.Start.Ms(), l.End.Ms(), "#999", ` opacity="0.6"`)
		rect(t.RUs, l.Start.Ms(), l.End.Ms(), "#555", ` opacity="0.8"`)
	}
	for _, e := range t.Execs {
		extra := ""
		if e.Reused {
			extra = ` stroke="#000" stroke-width="2"`
		}
		rect(e.RU, e.Start.Ms(), e.End.Ms(), taskColor(int(e.Task)), extra)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#fff">%d</text>`+"\n",
			x(e.Start.Ms())+3, laneY(e.RU)+svgRowH-7, e.Task)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
