package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceJSON(t *testing.T) {
	tr := validTrace()
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if back["rus"].(float64) != 2 || back["latency_ms"].(float64) != 4 {
		t.Errorf("header wrong: %v", back)
	}
	loads := back["loads"].([]any)
	if len(loads) != 2 {
		t.Fatalf("loads = %d", len(loads))
	}
	first := loads[0].(map[string]any)
	if first["task"].(float64) != 1 || first["end_ms"].(float64) != 4 {
		t.Errorf("first load: %v", first)
	}
	execs := back["execs"].([]any)
	if len(execs) != 3 {
		t.Fatalf("execs = %d", len(execs))
	}
	reusedSeen := false
	for _, e := range execs {
		if e.(map[string]any)["reused"] == true {
			reusedSeen = true
		}
	}
	if !reusedSeen {
		t.Error("reused flag lost in export")
	}
}

func TestSVG(t *testing.T) {
	tr := validTrace()
	svg := tr.SVG()
	for _, frag := range []string{"<svg", "</svg>", "RU0", "RU1", "rec", "makespan 20 ms", "<rect"} {
		if !strings.Contains(svg, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	// Reused executions carry a bold outline.
	if !strings.Contains(svg, `stroke-width="2"`) {
		t.Error("reuse outline missing")
	}
	// Deterministic: same trace, same bytes.
	if tr.SVG() != svg {
		t.Error("SVG not deterministic")
	}
}

func TestTaskColorStable(t *testing.T) {
	if taskColor(3) != taskColor(3) {
		t.Error("color not stable")
	}
	if taskColor(-3) == "" {
		t.Error("negative task id broke palette")
	}
}
