// Package trace records what the simulated system did — every
// reconfiguration, execution, reuse and skip — precisely enough to
// validate the run against the architecture's physical invariants and to
// render paper-style schedule (Gantt) views.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// Load is one reconfiguration performed by the circuitry.
type Load struct {
	Task     taskgraph.TaskID
	RU       int
	Start    simtime.Time
	End      simtime.Time
	Evicted  taskgraph.TaskID // NoTask when the unit was empty
	Instance int              // application instance that requested it
}

// Exec is one task execution on a unit.
type Exec struct {
	Task     taskgraph.TaskID
	RU       int
	Start    simtime.Time
	End      simtime.Time
	Reused   bool // configuration was already resident (no load needed)
	Instance int
}

// Skip is one skip-events decision: a reconfiguration deliberately delayed
// to protect a reusable victim.
type Skip struct {
	Task     taskgraph.TaskID // task whose load was postponed
	Victim   taskgraph.TaskID // reusable victim being protected
	At       simtime.Time
	Instance int
}

// Graph records one application instance's lifecycle.
type Graph struct {
	Name     string
	Instance int
	Arrived  simtime.Time // when it entered the Dynamic List
	Started  simtime.Time // when it became the running graph
	Finished simtime.Time // when its last task completed
}

// Trace is the full record of a run.
type Trace struct {
	RUs     int
	Latency simtime.Time
	// Heterogeneous marks runs with per-task latencies; the exact
	// per-load duration check is skipped for them (durations come from
	// the run configuration, not from Latency).
	Heterogeneous bool
	Loads         []Load
	Execs         []Exec
	Skips         []Skip
	Graphs        []Graph
}

// Makespan returns the completion time of the last execution (zero for an
// empty trace).
func (t *Trace) Makespan() simtime.Time {
	var m simtime.Time
	for _, e := range t.Execs {
		if e.End.After(m) {
			m = e.End
		}
	}
	return m
}

// Reuses counts reused executions.
func (t *Trace) Reuses() int {
	n := 0
	for _, e := range t.Execs {
		if e.Reused {
			n++
		}
	}
	return n
}

// Validate checks the trace against the architecture's invariants:
//
//  1. loads never overlap (single reconfiguration circuitry);
//  2. every load takes exactly the configured latency;
//  3. executions on one unit never overlap, nor does an execution overlap
//     a load targeting the same unit;
//  4. every non-reused execution is preceded by a completed load of the
//     same task onto the same unit, with no other load to that unit in
//     between;
//  5. application instances execute sequentially: instance k+1's first
//     execution starts no earlier than instance k's last completion;
//  6. dependencies are respected: with graphs supplying the structure per
//     instance, each task starts no earlier than all its predecessors'
//     completions.
//
// graphs holds the template of each instance, indexed by instance number
// (nil entries are skipped); it may be nil to skip check 6.
func (t *Trace) Validate(graphs []*taskgraph.Graph) error {
	if err := t.validateLoads(); err != nil {
		return err
	}
	if err := t.validateUnits(); err != nil {
		return err
	}
	if err := t.validateResidency(); err != nil {
		return err
	}
	if err := t.validateSequentialInstances(); err != nil {
		return err
	}
	if graphs != nil {
		if err := t.validateDependencies(graphs); err != nil {
			return err
		}
	}
	return nil
}

func (t *Trace) validateLoads() error {
	loads := append([]Load(nil), t.Loads...)
	sort.Slice(loads, func(a, b int) bool { return loads[a].Start < loads[b].Start })
	for i, l := range loads {
		if !t.Heterogeneous && l.End.Sub(l.Start) != t.Latency {
			return fmt.Errorf("trace: load of task %d takes %v, latency is %v",
				l.Task, l.End.Sub(l.Start), t.Latency)
		}
		if l.End.Before(l.Start) {
			return fmt.Errorf("trace: load of task %d ends before it starts", l.Task)
		}
		if l.RU < 0 || l.RU >= t.RUs {
			return fmt.Errorf("trace: load of task %d targets unit %d of %d", l.Task, l.RU, t.RUs)
		}
		if i > 0 && loads[i-1].End.After(l.Start) {
			return fmt.Errorf("trace: loads overlap: task %d [%v,%v] and task %d [%v,%v]",
				loads[i-1].Task, loads[i-1].Start, loads[i-1].End, l.Task, l.Start, l.End)
		}
	}
	return nil
}

// span is a busy interval on one unit.
type span struct {
	start, end simtime.Time
	what       string
}

func (t *Trace) validateUnits() error {
	perRU := make([][]span, t.RUs)
	for _, e := range t.Execs {
		if e.RU < 0 || e.RU >= t.RUs {
			return fmt.Errorf("trace: exec of task %d on unit %d of %d", e.Task, e.RU, t.RUs)
		}
		if !e.End.After(e.Start) {
			return fmt.Errorf("trace: empty exec span for task %d", e.Task)
		}
		perRU[e.RU] = append(perRU[e.RU], span{e.Start, e.End, fmt.Sprintf("exec %d", e.Task)})
	}
	for _, l := range t.Loads {
		if l.End.After(l.Start) {
			perRU[l.RU] = append(perRU[l.RU], span{l.Start, l.End, fmt.Sprintf("load %d", l.Task)})
		}
	}
	for ruIdx, spans := range perRU {
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
		for i := 1; i < len(spans); i++ {
			if spans[i-1].end.After(spans[i].start) {
				return fmt.Errorf("trace: unit %d: %s [%v,%v] overlaps %s [%v,%v]",
					ruIdx, spans[i-1].what, spans[i-1].start, spans[i-1].end,
					spans[i].what, spans[i].start, spans[i].end)
			}
		}
	}
	return nil
}

func (t *Trace) validateResidency() error {
	// Chronological unit history: what is resident when.
	type write struct {
		at   simtime.Time
		task taskgraph.TaskID
	}
	hist := make([][]write, t.RUs)
	loads := append([]Load(nil), t.Loads...)
	sort.Slice(loads, func(a, b int) bool { return loads[a].End < loads[b].End })
	for _, l := range loads {
		hist[l.RU] = append(hist[l.RU], write{l.End, l.Task})
	}
	for _, e := range t.Execs {
		// Find the latest write to e.RU at or before e.Start.
		var cur taskgraph.TaskID
		found := false
		for _, w := range hist[e.RU] {
			if w.at.After(e.Start) {
				break
			}
			cur, found = w.task, true
		}
		if !found {
			return fmt.Errorf("trace: task %d executed on never-loaded unit %d", e.Task, e.RU)
		}
		if cur != e.Task {
			return fmt.Errorf("trace: task %d executed on unit %d while task %d resident",
				e.Task, e.RU, cur)
		}
	}
	return nil
}

func (t *Trace) validateSequentialInstances() error {
	type bounds struct {
		first, last simtime.Time
		seen        bool
	}
	m := map[int]*bounds{}
	maxInst := 0
	for _, e := range t.Execs {
		b := m[e.Instance]
		if b == nil {
			b = &bounds{first: e.Start, last: e.End, seen: true}
			m[e.Instance] = b
		} else {
			b.first = simtime.Min(b.first, e.Start)
			b.last = simtime.Max(b.last, e.End)
		}
		if e.Instance > maxInst {
			maxInst = e.Instance
		}
	}
	for i := 1; i <= maxInst; i++ {
		prev, cur := m[i-1], m[i]
		if prev == nil || cur == nil {
			continue
		}
		if cur.first.Before(prev.last) {
			return fmt.Errorf("trace: instance %d starts at %v before instance %d finishes at %v",
				i, cur.first, i-1, prev.last)
		}
	}
	return nil
}

func (t *Trace) validateDependencies(graphs []*taskgraph.Graph) error {
	type key struct {
		inst int
		task taskgraph.TaskID
	}
	execAt := map[key]Exec{}
	for _, e := range t.Execs {
		execAt[key{e.Instance, e.Task}] = e
	}
	for inst, g := range graphs {
		if g == nil {
			continue
		}
		for i := 0; i < g.NumTasks(); i++ {
			e, ok := execAt[key{inst, g.Task(i).ID}]
			if !ok {
				return fmt.Errorf("trace: instance %d task %d never executed", inst, g.Task(i).ID)
			}
			for _, p := range g.Preds(i) {
				pe, ok := execAt[key{inst, g.Task(p).ID}]
				if !ok {
					return fmt.Errorf("trace: instance %d predecessor %d never executed", inst, g.Task(p).ID)
				}
				if e.Start.Before(pe.End) {
					return fmt.Errorf("trace: instance %d: task %d starts %v before predecessor %d ends %v",
						inst, e.Task, e.Start, pe.Task, pe.End)
				}
			}
		}
	}
	return nil
}
