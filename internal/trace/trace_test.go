package trace

import (
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

// validTrace builds a small consistent trace: load 1 on RU0, exec it,
// load 2 on RU1 during exec, exec 2 (depends on 1), then reuse 1.
func validTrace() *Trace {
	return &Trace{
		RUs:     2,
		Latency: ms(4),
		Loads: []Load{
			{Task: 1, RU: 0, Start: 0, End: ms(4), Instance: 0},
			{Task: 2, RU: 1, Start: ms(4), End: ms(8), Instance: 0},
		},
		Execs: []Exec{
			{Task: 1, RU: 0, Start: ms(4), End: ms(10), Instance: 0},
			{Task: 2, RU: 1, Start: ms(10), End: ms(14), Instance: 0},
			{Task: 1, RU: 0, Start: ms(14), End: ms(20), Reused: true, Instance: 1},
		},
		Graphs: []Graph{
			{Name: "g", Instance: 0, Finished: ms(14)},
			{Name: "g1", Instance: 1, Finished: ms(20)},
		},
	}
}

func TestMakespanAndReuses(t *testing.T) {
	tr := validTrace()
	if tr.Makespan() != ms(20) {
		t.Errorf("Makespan = %v, want 20 ms", tr.Makespan())
	}
	if tr.Reuses() != 1 {
		t.Errorf("Reuses = %d, want 1", tr.Reuses())
	}
	empty := &Trace{RUs: 1, Latency: ms(4)}
	if empty.Makespan() != 0 {
		t.Error("empty trace makespan should be 0")
	}
}

func TestValidateOK(t *testing.T) {
	g, err := taskgraph.NewBuilder("g").
		AddTask(1, "a", ms(6)).
		AddTask(2, "b", ms(4)).
		AddDep(1, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	g1 := taskgraph.Chain("g1", 1, ms(6))
	tr := validTrace()
	if err := tr.Validate([]*taskgraph.Graph{g, g1}); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	if err := tr.Validate(nil); err != nil {
		t.Errorf("nil graphs: %v", err)
	}
}

func TestValidateCatchesOverlappingLoads(t *testing.T) {
	tr := validTrace()
	tr.Loads[1].Start = ms(2)
	tr.Loads[1].End = ms(6)
	if err := tr.Validate(nil); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("want overlap error, got %v", err)
	}
}

func TestValidateCatchesWrongLatency(t *testing.T) {
	tr := validTrace()
	tr.Loads[0].End = ms(5)
	if err := tr.Validate(nil); err == nil || !strings.Contains(err.Error(), "latency") {
		t.Errorf("want latency error, got %v", err)
	}
}

func TestValidateCatchesUnitOverlap(t *testing.T) {
	tr := validTrace()
	// Make exec of task 2 overlap the load of task 2 on the same unit.
	tr.Execs[1].Start = ms(6)
	if err := tr.Validate(nil); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("want unit overlap error, got %v", err)
	}
}

func TestValidateCatchesGhostExecution(t *testing.T) {
	tr := validTrace()
	tr.Execs = append(tr.Execs, Exec{Task: 9, RU: 0, Start: ms(30), End: ms(31), Instance: 1})
	err := tr.Validate(nil)
	if err == nil || !strings.Contains(err.Error(), "while task") {
		t.Errorf("want residency error, got %v", err)
	}
}

func TestValidateCatchesNeverLoadedUnit(t *testing.T) {
	tr := &Trace{
		RUs: 1, Latency: ms(4),
		Execs: []Exec{{Task: 1, RU: 0, Start: 0, End: ms(1)}},
	}
	err := tr.Validate(nil)
	if err == nil || !strings.Contains(err.Error(), "never-loaded") {
		t.Errorf("want never-loaded error, got %v", err)
	}
}

func TestValidateCatchesInstanceOverlap(t *testing.T) {
	tr := validTrace()
	tr.Execs[2].Start = ms(12) // instance 1 starts before instance 0 done
	tr.Execs[2].End = ms(18)
	err := tr.Validate(nil)
	if err == nil || !strings.Contains(err.Error(), "before instance") {
		t.Errorf("want sequencing error, got %v", err)
	}
}

func TestValidateCatchesDependencyViolation(t *testing.T) {
	g, err := taskgraph.NewBuilder("g").
		AddTask(1, "a", ms(6)).
		AddTask(2, "b", ms(4)).
		AddDep(2, 1). // reversed: 1 depends on 2
		Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := validTrace()
	tr.Execs = tr.Execs[:2] // drop instance 1
	tr.Graphs = tr.Graphs[:1]
	err = tr.Validate([]*taskgraph.Graph{g})
	if err == nil || !strings.Contains(err.Error(), "predecessor") {
		t.Errorf("want dependency error, got %v", err)
	}
}

func TestValidateCatchesMissingExecution(t *testing.T) {
	g := taskgraph.Chain("g", 1, ms(6), ms(4), ms(2))
	tr := validTrace()
	err := tr.Validate([]*taskgraph.Graph{g})
	if err == nil || !strings.Contains(err.Error(), "never executed") {
		t.Errorf("want never-executed error, got %v", err)
	}
}

func TestValidateCatchesBadRU(t *testing.T) {
	tr := validTrace()
	tr.Loads[0].RU = 5
	if err := tr.Validate(nil); err == nil {
		t.Error("out-of-range load unit accepted")
	}
	tr = validTrace()
	tr.Execs[0].RU = -1
	if err := tr.Validate(nil); err == nil {
		t.Error("out-of-range exec unit accepted")
	}
}

func TestValidateCatchesEmptyExec(t *testing.T) {
	tr := validTrace()
	tr.Execs[0].End = tr.Execs[0].Start
	if err := tr.Validate(nil); err == nil || !strings.Contains(err.Error(), "empty exec") {
		t.Errorf("want empty-exec error, got %v", err)
	}
}

func TestGantt(t *testing.T) {
	tr := validTrace()
	g := tr.Gantt(GanttOptions{TickMs: 1})
	if !strings.Contains(g, "RU0 |") || !strings.Contains(g, "rec |") {
		t.Errorf("missing rows:\n%s", g)
	}
	if !strings.Contains(g, "#") {
		t.Errorf("no load marks:\n%s", g)
	}
	if !strings.Contains(g, "*") {
		t.Errorf("no reuse marks:\n%s", g)
	}
	if !strings.Contains(g, "1") || !strings.Contains(g, "2") {
		t.Errorf("no exec marks:\n%s", g)
	}
	empty := &Trace{RUs: 1, Latency: ms(4)}
	if !strings.Contains(empty.Gantt(GanttOptions{}), "empty") {
		t.Error("empty trace rendering")
	}
	// Auto tick selection should cap width around 100 columns.
	wide := tr.Gantt(GanttOptions{})
	for _, line := range strings.Split(wide, "\n") {
		if len(line) > 130 {
			t.Errorf("line too wide: %d chars", len(line))
		}
	}
}
