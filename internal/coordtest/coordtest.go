// Package coordtest is the shard-coordinator conformance harness: a
// registry of every pool-state backend (fs, mem, sqlite, http — the
// last over a live in-process control plane) and one
// shared suite of the lease-protocol properties the multi-host sweeps
// depend on — adopt-or-initialise pool constants, exactly-one-owner
// claims per (shard, generation), TTL re-lease with attempt counting,
// the drain verdicts, and the future-clock clamp. A new backend is
// correct when it passes Conformance; the suite drives every worker
// off an injected fake clock, so it exercises the exact production
// expiry arithmetic on all backends.
package coordtest

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backendurl"
	"repro/internal/coord"
	"repro/internal/faultstore"
	"repro/internal/storetest"
)

// EnvFilter is the environment variable the CI backend matrix sets to
// restrict the registry: a comma list of backend names ("fs", "mem",
// "sqlite", "fault", "http"). Empty or unset runs all of them.
const EnvFilter = "RTR_BACKEND"

// Backend is one registered coordinator backend under test.
type Backend struct {
	// Name is the registry (and CI matrix) name: "fs", "mem",
	// "sqlite", "fault", "http".
	Name string
	// New creates one fresh, empty pool state and returns a handle
	// factory: every call yields a coord.Backend over that same state
	// whose clock is the given function — one handle per simulated
	// worker, so each worker can run on its own (possibly skewed)
	// clock exactly as separate hosts do.
	New func(tb testing.TB) func(clk func() time.Time) coord.Backend
}

// reclocked overrides a shared backend handle's clock, for backends
// where the clock is not per-handle injectable: mem (all workers share
// one instance) and http (Now would ask the server).
type reclocked struct {
	coord.Backend
	clk func() time.Time
}

func (r reclocked) Now() time.Time { return r.clk() }

func registry() []Backend {
	return []Backend{
		{
			Name: "fs",
			New: func(tb testing.TB) func(clk func() time.Time) coord.Backend {
				dir := tb.TempDir()
				return func(clk func() time.Time) coord.Backend {
					b := coord.NewFS(dir)
					b.Clock = clk
					return b
				}
			},
		},
		{
			Name: "mem",
			New: func(tb testing.TB) func(clk func() time.Time) coord.Backend {
				shared := coord.NewMem()
				return func(clk func() time.Time) coord.Backend {
					return reclocked{Backend: shared, clk: clk}
				}
			},
		},
		{
			Name: "sqlite",
			New: func(tb testing.TB) func(clk func() time.Time) coord.Backend {
				path := filepath.Join(tb.TempDir(), "campaign.db")
				return func(clk func() time.Time) coord.Backend {
					b, err := coord.NewSQLite(path)
					if err != nil {
						tb.Fatal(err)
					}
					b.Clock = clk
					return b
				}
			},
		},
		{
			// fault runs the lease protocol through the fault-injection
			// decorator (internal/faultstore) over mem, with seeded real-time
			// latency on every backend call. Expiry arithmetic still runs on
			// the injected fake clock, so the jitter shakes out ordering
			// assumptions without perturbing lease timings. Latency only —
			// the suite asserts exact claim/attempt counts.
			Name: "fault",
			New: func(tb testing.TB) func(clk func() time.Time) coord.Backend {
				plan := faultstore.NewPlan(1).WithLatency(500 * time.Microsecond)
				shared := faultstore.WrapCoord(coord.NewMem(), plan)
				return func(clk func() time.Time) coord.Backend {
					return reclocked{Backend: shared, clk: clk}
				}
			},
		},
		{
			// http runs the lease protocol against a live control plane.
			// The fake clock replaces the server-clock Now (the expiry
			// arithmetic under test is client-side either way); Get/Put/
			// Create/List — including the exclusive-create claims every
			// property here races on — go over the wire.
			Name: "http",
			New: func(tb testing.TB) func(clk func() time.Time) coord.Backend {
				base, opts := storetest.HTTPCampaign(tb)
				return func(clk func() time.Time) coord.Backend {
					loc, err := backendurl.Parse("-coord", base)
					if err != nil {
						tb.Fatal(err)
					}
					b, err := backendurl.NewHTTPCoord(loc, opts)
					if err != nil {
						tb.Fatal(err)
					}
					return reclocked{Backend: b, clk: clk}
				}
			},
		},
	}
}

// Backends returns the registered backends, filtered by the EnvFilter
// environment variable when set (same contract as storetest.Backends).
func Backends(tb testing.TB) []Backend {
	all := registry()
	filter := strings.TrimSpace(os.Getenv(EnvFilter))
	if filter == "" {
		return all
	}
	byName := make(map[string]Backend, len(all))
	for _, b := range all {
		byName[b.Name] = b
	}
	var out []Backend
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := byName[name]
		if !ok {
			tb.Fatalf("%s=%q: unknown backend %q (have fs, mem, sqlite, fault, http)", EnvFilter, filter, name)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		tb.Fatalf("%s=%q selects no backend", EnvFilter, filter)
	}
	return out
}

// Clock is a race-safe fake clock shared by every worker of a test
// pool (skewed workers wrap Now with an offset).
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock starts at an arbitrary fixed epoch — pool arithmetic only
// ever subtracts timestamps.
func NewClock() *Clock {
	return &Clock{t: time.Unix(1_700_000_000, 0)}
}

func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// Conformance runs every pinned coordinator property against one
// backend. Each subtest builds its own fresh pool state.
func Conformance(t *testing.T, b Backend) {
	const ttl = 30 * time.Second

	open := func(t *testing.T, handle coord.Backend, shards int, owner string) *coord.Coordinator {
		t.Helper()
		c, err := coord.Open(coord.Config{Backend: handle, Shards: shards, Owner: owner, LeaseTTL: ttl})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	t.Run("AdoptOrInitialise", func(t *testing.T) {
		clk := NewClock()
		newHandle := b.New(t)
		handle := newHandle(clk.Now)

		// An uninitialised pool refuses workers without a shard count.
		if _, err := coord.Open(coord.Config{Backend: handle}); err == nil {
			t.Fatal("joined an uninitialised pool without a shard count")
		}
		first, err := coord.Open(coord.Config{Backend: handle, Shards: 3, Owner: "first", LeaseTTL: ttl, Fingerprint: "fp-a"})
		if err != nil {
			t.Fatal(err)
		}
		// A later worker adopts the persisted constants by passing zeros.
		second, err := coord.Open(coord.Config{Backend: newHandle(clk.Now), Owner: "second"})
		if err != nil {
			t.Fatal(err)
		}
		if second.Shards() != 3 || second.LeaseTTL() != ttl {
			t.Errorf("adopted shards=%d ttl=%v, want 3/%v", second.Shards(), second.LeaseTTL(), ttl)
		}
		// Mismatched constants are refused: shard count, TTL, fingerprint.
		if _, err := coord.Open(coord.Config{Backend: newHandle(clk.Now), Shards: 5}); err == nil {
			t.Error("mismatched shard count accepted")
		}
		if _, err := coord.Open(coord.Config{Backend: newHandle(clk.Now), LeaseTTL: ttl * 2}); err == nil {
			t.Error("mismatched lease TTL accepted")
		}
		if _, err := coord.Open(coord.Config{Backend: newHandle(clk.Now), Fingerprint: "fp-b"}); err == nil {
			t.Error("mismatched fingerprint accepted")
		}
		_ = first
	})

	t.Run("ExactlyOnceClaims", func(t *testing.T) {
		clk := NewClock()
		newHandle := b.New(t)
		const shards, workers = 4, 4

		// Workers race to drain the pool; every shard must be claimed
		// and completed exactly once (generation 1, one owner each).
		var wg sync.WaitGroup
		var mu sync.Mutex
		owners := make(map[int][]string)
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, err := coord.Open(coord.Config{Backend: newHandle(clk.Now), Shards: shards, Owner: strings.Repeat("w", w+1), LeaseTTL: ttl})
				if err != nil {
					errs <- err
					return
				}
				for {
					lease, err := c.Claim()
					if err != nil {
						errs <- err
						return
					}
					if lease == nil {
						return
					}
					mu.Lock()
					owners[lease.Shard] = append(owners[lease.Shard], c.Owner())
					mu.Unlock()
					if err := lease.Done(); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for shard := 0; shard < shards; shard++ {
			if n := len(owners[shard]); n != 1 {
				t.Errorf("shard %d claimed %d times (%v), want exactly once", shard, n, owners[shard])
			}
		}
		c := open(t, newHandle(clk.Now), 0, "checker")
		if drained, err := c.Drained(); !drained || err != nil {
			t.Errorf("drained = %v, %v after all shards done", drained, err)
		}
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxAttempts() != 1 {
			t.Errorf("max attempts = %d, want 1 — a clean drain must not re-claim", st.MaxAttempts())
		}
	})

	t.Run("TTLReleaseCountsAttempts", func(t *testing.T) {
		clk := NewClock()
		newHandle := b.New(t)
		dead := open(t, newHandle(clk.Now), 1, "dead")
		survivor := open(t, newHandle(clk.Now), 0, "survivor")

		lease, err := dead.Claim()
		if err != nil || lease == nil || lease.Gen != 1 {
			t.Fatal(lease, err)
		}
		// While the lease heartbeats, nobody can steal the shard.
		if stolen, err := survivor.Claim(); err != nil || stolen != nil {
			t.Fatalf("live lease stolen: %v, %v", stolen, err)
		}
		clk.Advance(ttl / 2)
		if err := lease.Heartbeat(); err != nil {
			t.Fatal(err)
		}
		clk.Advance(ttl - time.Second) // beyond the claim, within the refreshed lease
		if stolen, err := survivor.Claim(); err != nil || stolen != nil {
			t.Fatalf("heartbeat did not extend the lease: %v, %v", stolen, err)
		}
		// The holder dies; one TTL after its last heartbeat the shard is
		// re-claimable at the next generation.
		clk.Advance(2 * time.Second)
		lease2, err := survivor.Claim()
		if err != nil || lease2 == nil {
			t.Fatal(lease2, err)
		}
		if lease2.Shard != 0 || lease2.Gen != 2 {
			t.Fatalf("re-claim = shard %d gen %d, want shard 0 gen 2", lease2.Shard, lease2.Gen)
		}
		// The dead worker's lease is gone for good.
		if err := lease.Heartbeat(); err != coord.ErrLeaseLost {
			t.Errorf("stale holder heartbeat = %v, want ErrLeaseLost", err)
		}
		if err := lease2.Done(); err != nil {
			t.Fatal(err)
		}
		st, err := survivor.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxAttempts() != 2 || !st.AllDone() {
			t.Errorf("status attempts=%d allDone=%v, want 2/true", st.MaxAttempts(), st.AllDone())
		}
	})

	t.Run("DrainVerdicts", func(t *testing.T) {
		clk := NewClock()
		newHandle := b.New(t)
		c := open(t, newHandle(clk.Now), 2, "w")

		// Forming: nothing claimed yet → wait.
		if drained, err := c.Drained(); drained || err != nil {
			t.Fatalf("forming pool: drained=%v err=%v, want wait", drained, err)
		}
		lease, err := c.Claim()
		if err != nil || lease == nil {
			t.Fatal(lease, err)
		}
		// Live lease → wait.
		if drained, err := c.Drained(); drained || err != nil {
			t.Fatalf("live lease: drained=%v err=%v, want wait", drained, err)
		}
		if err := lease.Done(); err != nil {
			t.Fatal(err)
		}
		// Between claims, a recent completion is proof of life → wait.
		clk.Advance(ttl / 2)
		if drained, err := c.Drained(); drained || err != nil {
			t.Fatalf("between claims: drained=%v err=%v, want wait", drained, err)
		}
		// A claimed shard whose evidence ages past the TTL → dead verdict.
		lease2, err := c.Claim()
		if err != nil || lease2 == nil {
			t.Fatal(lease2, err)
		}
		clk.Advance(ttl + time.Second)
		drained, err := c.Drained()
		if drained || err == nil || !strings.Contains(err.Error(), "looks dead") {
			t.Fatalf("dead pool verdict = (%v, %v), want the 'looks dead' error", drained, err)
		}
		// Recovery: re-claim and finish → drained.
		lease3, err := c.Claim()
		if err != nil || lease3 == nil || lease3.Gen != 2 {
			t.Fatal(lease3, err)
		}
		if err := lease3.Done(); err != nil {
			t.Fatal(err)
		}
		if drained, err := c.Drained(); !drained || err != nil {
			t.Fatalf("finished pool: drained=%v err=%v, want true", drained, err)
		}
	})

	t.Run("CheckpointRoundTrip", func(t *testing.T) {
		clk := NewClock()
		newHandle := b.New(t)
		handle := newHandle(clk.Now)
		c := open(t, handle, 2, "w")

		// Missing records read as absent, saves round-trip verbatim, and
		// a re-save overwrites (last writer wins — exactly Put's contract).
		cks := coord.NewCheckpointStore(handle)
		const name = "shard-0000/grid0"
		if _, ok := cks.LoadCheckpoint(name); ok {
			t.Fatal("phantom checkpoint before any save")
		}
		rec := []byte(`{"schema":1,"fingerprint":"fp","collected":7}`)
		if err := cks.SaveCheckpoint(name, rec); err != nil {
			t.Fatal(err)
		}
		if got, ok := cks.LoadCheckpoint(name); !ok || string(got) != string(rec) {
			t.Fatalf("load after save = %q, %v; want the saved record", got, ok)
		}
		rec2 := []byte(`{"schema":1,"fingerprint":"fp","collected":9}`)
		if err := cks.SaveCheckpoint(name, rec2); err != nil {
			t.Fatal(err)
		}
		if got, ok := cks.LoadCheckpoint(name); !ok || string(got) != string(rec2) {
			t.Fatalf("load after re-save = %q, %v; want the newer record", got, ok)
		}
		// The checkpoint namespace is invisible to the lease protocol:
		// the pool still drains exactly as if no checkpoints existed.
		for shard := 0; shard < 2; shard++ {
			lease, err := c.Claim()
			if err != nil || lease == nil {
				t.Fatal(lease, err)
			}
			if err := lease.Done(); err != nil {
				t.Fatal(err)
			}
		}
		if drained, err := c.Drained(); !drained || err != nil {
			t.Fatalf("drained = %v, %v with checkpoints present, want clean drain", drained, err)
		}
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxAttempts() != 1 {
			t.Errorf("max attempts = %d, want 1 — checkpoint records must not read as claims", st.MaxAttempts())
		}
	})

	t.Run("FutureClockClamped", func(t *testing.T) {
		clk := NewClock()
		newHandle := b.New(t)
		sane := open(t, newHandle(clk.Now), 2, "sane")
		skewed := open(t, newHandle(func() time.Time { return clk.Now().Add(48 * time.Hour) }), 0, "skewed")

		// The skewed worker completes shard 0 with a far-future stamp.
		lease, err := skewed.Claim()
		if err != nil || lease == nil {
			t.Fatal(lease, err)
		}
		if err := lease.Done(); err != nil {
			t.Fatal(err)
		}
		// Status must clamp the future completion: LastActivity never
		// exceeds the observer's now — the invariant CheckDrained's
		// pool-liveness aggregation depends on.
		st, err := sane.Status()
		if err != nil {
			t.Fatal(err)
		}
		now := clk.Now()
		for _, sh := range st.Shards {
			if sh.LastActivity.After(now) {
				t.Errorf("shard %d LastActivity %v is after now %v — future stamp unclamped", sh.Shard, sh.LastActivity, now)
			}
		}
		// A sane worker claims shard 1 and dies: the skewed completion
		// must not keep the dead pool looking alive.
		lease2, err := sane.Claim()
		if err != nil || lease2 == nil {
			t.Fatal(lease2, err)
		}
		clk.Advance(ttl + time.Second)
		drained, err := sane.Drained()
		if drained || err == nil || !strings.Contains(err.Error(), "looks dead") {
			t.Fatalf("future-skewed completion masked the dead pool: (%v, %v)", drained, err)
		}
	})
}
