package manager

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/taskgraph"
	"repro/internal/trace"
	"repro/internal/workload"
)

// evictionsOf extracts the (task, evicted) pairs of all true replacements
// (loads that displaced a resident configuration), in time order.
func evictionsOf(tr *trace.Trace) [][2]taskgraph.TaskID {
	var out [][2]taskgraph.TaskID
	for _, l := range tr.Loads {
		if l.Evicted != taskgraph.NoTask {
			out = append(out, [2]taskgraph.TaskID{l.Task, l.Evicted})
		}
	}
	return out
}

func wantEvictions(t *testing.T, got, want [][2]taskgraph.TaskID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("evictions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("eviction %d = task %d evicts %d, want task %d evicts %d\nall: %v",
				i, got[i][0], got[i][1], want[i][0], want[i][1], got)
		}
	}
}

// TestFig2LFDVictimNarrative pins the victim choices the paper walks
// through for Fig. 2b: "when the first replacement has to be made (when
// Task 5 has to be loaded), LFD selects RU3 as victim" (task 3), and
// "when Task 3 has to be loaded for the second time, LFD selects RU3
// (which has Task 5 loaded)". The final load of task 5 then evicts the
// never-again-needed task 1.
func TestFig2LFDVictimNarrative(t *testing.T) {
	res := runValidated(t, fig2Config(policy.NewLFD()), workload.Fig2Sequence()...)
	wantEvictions(t, evictionsOf(res.Trace), [][2]taskgraph.TaskID{
		{5, 3}, // first replacement: loading 5 evicts task 3
		{3, 5}, // second: reloading 3 evicts task 5
		{5, 1}, // last: reloading 5 evicts task 1 (all-infinite tie → first unit)
	})
}

// TestFig2LocalLFDVictimNarrative pins Fig. 2c: "the difference with
// respect to LFD is in the load of the first instance of Task 5, which
// this time selects RU1 as victim" (task 1) because the one-graph window
// cannot see Task Graph 1 returning.
func TestFig2LocalLFDVictimNarrative(t *testing.T) {
	res := runValidated(t, fig2Config(mustLocalLFD(t, 1)), workload.Fig2Sequence()...)
	wantEvictions(t, evictionsOf(res.Trace), [][2]taskgraph.TaskID{
		{5, 1}, // the paper's highlighted difference: RU1 (task 1), not RU3
		{1, 5}, // reloading 1 evicts 5 (farthest in window: [2,3,4,5])
		{5, 1}, // final 5 evicts 1 again (empty window → first candidate)
	})
}

// TestFig3SkipVictimSwitch pins Fig. 3b's mechanism: loading task 7 first
// sees only the reusable task 1 as a victim and skips; after task 4
// finishes, the choice is between tasks 1 and 4, "and it will select
// Task 4 since it is not going to be used again in the near future".
func TestFig3SkipVictimSwitch(t *testing.T) {
	res := runValidated(t, Config{
		RUs: 4, Latency: ms(4), Policy: mustLocalLFD(t, 1),
		SkipEvents: true, Mobility: fig3Mobility,
	}, workload.Fig3Sequence()...)
	if len(res.Trace.Skips) != 1 {
		t.Fatalf("skips = %v, want exactly one", res.Trace.Skips)
	}
	s := res.Trace.Skips[0]
	if s.Task != 7 || s.Victim != 1 {
		t.Errorf("skip = load of %d protecting %d, want load of 7 protecting 1", s.Task, s.Victim)
	}
	// Task 7's eventual load must evict task 4, not task 1.
	for _, l := range res.Trace.Loads {
		if l.Task == 7 {
			if l.Evicted != 4 {
				t.Errorf("task 7 evicted %d, want 4", l.Evicted)
			}
			return
		}
	}
	t.Fatal("task 7 never loaded")
}
