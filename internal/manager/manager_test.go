package manager

import (
	"strings"
	"testing"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

func mustLocalLFD(t *testing.T, w int) policy.Policy {
	t.Helper()
	p, err := policy.NewLocalLFD(w)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, cfg Config, graphs ...*taskgraph.Graph) *Result {
	t.Helper()
	res, err := Run(cfg, dynlist.NewSequence(graphs...))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runValidated runs with tracing and checks every architecture invariant.
func runValidated(t *testing.T, cfg Config, graphs ...*taskgraph.Graph) *Result {
	t.Helper()
	cfg.RecordTrace = true
	res := run(t, cfg, graphs...)
	if err := res.Trace.Validate(res.Templates); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	return res
}

func fig2Config(p policy.Policy) Config {
	return Config{RUs: 4, Latency: ms(4), Policy: p}
}

// --- Golden tests: Fig. 2 -------------------------------------------------

// TestFig2LRU reproduces Fig. 2a: reuse 2/12 (16.7 %), overhead 22 ms.
func TestFig2LRU(t *testing.T) {
	res := runValidated(t, fig2Config(policy.NewLRU()), workload.Fig2Sequence()...)
	if res.Executed != 12 {
		t.Fatalf("executed %d tasks, want 12", res.Executed)
	}
	if res.Reused != 2 {
		t.Errorf("reused = %d, want 2 (16.7%%)", res.Reused)
	}
	if want := ms(64); res.Makespan != want {
		t.Errorf("makespan = %v, want %v (ideal 42 ms + 22 ms overhead)", res.Makespan, want)
	}
}

// TestFig2LFD reproduces Fig. 2b: reuse 5/12 (41.7 %), overhead 11 ms.
func TestFig2LFD(t *testing.T) {
	res := runValidated(t, fig2Config(policy.NewLFD()), workload.Fig2Sequence()...)
	if res.Reused != 5 {
		t.Errorf("reused = %d, want 5 (41.7%%)", res.Reused)
	}
	if want := ms(53); res.Makespan != want {
		t.Errorf("makespan = %v, want %v (ideal 42 ms + 11 ms overhead)", res.Makespan, want)
	}
}

// TestFig2LocalLFD reproduces Fig. 2c: reuse 5/12 (41.7 %), overhead 15 ms.
func TestFig2LocalLFD(t *testing.T) {
	res := runValidated(t, fig2Config(mustLocalLFD(t, 1)), workload.Fig2Sequence()...)
	if res.Reused != 5 {
		t.Errorf("reused = %d, want 5 (41.7%%)", res.Reused)
	}
	if want := ms(57); res.Makespan != want {
		t.Errorf("makespan = %v, want %v (ideal 42 ms + 15 ms overhead)", res.Makespan, want)
	}
}

// TestFig2Ideal checks the zero-latency baseline: 42 ms (sum of critical
// paths: 9+8+8+9+8).
func TestFig2Ideal(t *testing.T) {
	res := runValidated(t, Config{RUs: 4, Latency: 0, Policy: policy.NewLRU()},
		workload.Fig2Sequence()...)
	if want := ms(42); res.Makespan != want {
		t.Errorf("ideal makespan = %v, want %v", res.Makespan, want)
	}
	if res.Reused != 5 {
		// With free loads LRU still reuses what is resident; the count is
		// incidental but pinned for determinism.
		t.Logf("note: ideal-run reuse = %d", res.Reused)
	}
}

// --- Golden tests: Fig. 3 -------------------------------------------------

// fig3Mobility returns the paper's mobility values for the Fig. 3 graphs:
// all zero except task 7 (mobility 1), per Fig. 7.
func fig3Mobility(g *taskgraph.Graph) []int {
	if g.Name() == "fig3-tg2" {
		return []int{0, 0, 0, 1}
	}
	return nil
}

// TestFig3ASAP reproduces Fig. 3a: pure ASAP, makespan 74 ms, overhead
// 12 ms, reuse 0 %.
func TestFig3ASAP(t *testing.T) {
	res := runValidated(t, Config{RUs: 4, Latency: ms(4), Policy: mustLocalLFD(t, 1)},
		workload.Fig3Sequence()...)
	if res.Executed != 10 {
		t.Fatalf("executed %d, want 10", res.Executed)
	}
	if res.Reused != 0 {
		t.Errorf("reused = %d, want 0", res.Reused)
	}
	if want := ms(74); res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

// TestFig3SkipEvents reproduces Fig. 3b: delaying task 7 by one event
// saves task 1 for reuse — makespan 70 ms, overhead 8 ms, reuse 10 %.
func TestFig3SkipEvents(t *testing.T) {
	res := runValidated(t, Config{
		RUs: 4, Latency: ms(4), Policy: mustLocalLFD(t, 1),
		SkipEvents: true, Mobility: fig3Mobility,
	}, workload.Fig3Sequence()...)
	if res.Reused != 1 {
		t.Errorf("reused = %d, want 1 (10%%)", res.Reused)
	}
	if want := ms(70); res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Skips != 1 {
		t.Errorf("skips = %d, want 1", res.Skips)
	}
}

// TestFig3Ideal checks the 62 ms zero-latency baseline (18+26+18).
func TestFig3Ideal(t *testing.T) {
	res := runValidated(t, Config{RUs: 4, Latency: 0, Policy: mustLocalLFD(t, 1)},
		workload.Fig3Sequence()...)
	if want := ms(62); res.Makespan != want {
		t.Errorf("ideal makespan = %v, want %v", res.Makespan, want)
	}
}

// --- Golden tests: Fig. 7 (forced delays) ---------------------------------

// TestFig7ForcedDelays reproduces every sub-figure of the mobility worked
// example: Fig. 3's Task Graph 2 alone on 4 units.
func TestFig7ForcedDelays(t *testing.T) {
	cases := []struct {
		name     string
		plan     map[int]int // local index → forced skips
		makespan simtime.Time
		skips    int
	}{
		{"reference", nil, ms(30), 0},
		{"delay task5 once", map[int]int{1: 1}, ms(36), 1},
		{"delay task6 once", map[int]int{2: 1}, ms(32), 1},
		{"delay task7 once", map[int]int{3: 1}, ms(30), 1},
		{"delay task7 twice", map[int]int{3: 2}, ms(32), 2},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			res := runValidated(t, Config{
				RUs: 4, Latency: ms(4), Policy: policy.NewLRU(), DelayPlan: tt.plan,
			}, workload.Fig3TG2())
			if res.Makespan != tt.makespan {
				t.Errorf("makespan = %v, want %v", res.Makespan, tt.makespan)
			}
			if res.ForcedSkips != tt.skips {
				t.Errorf("forced skips = %d, want %d", res.ForcedSkips, tt.skips)
			}
		})
	}
}

// --- Config validation ------------------------------------------------

func TestConfigValidation(t *testing.T) {
	g := workload.Fig2TG1()
	cases := []struct {
		name string
		cfg  Config
		frag string
	}{
		{"no units", Config{RUs: 0, Latency: ms(4), Policy: policy.NewLRU()}, "at least 1"},
		{"no policy", Config{RUs: 4, Latency: ms(4)}, "no replacement policy"},
		{"negative latency", Config{RUs: 4, Latency: -ms(1), Policy: policy.NewLRU()}, "negative latency"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Run(tt.cfg, dynlist.NewSequence(g))
			if err == nil || !strings.Contains(err.Error(), tt.frag) {
				t.Errorf("err = %v, want mention of %q", err, tt.frag)
			}
		})
	}
}

func TestEmptyFeed(t *testing.T) {
	res, err := Run(Config{RUs: 2, Latency: ms(4), Policy: policy.NewLRU()},
		dynlist.NewSequence())
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 || res.Makespan != 0 || res.Graphs != 0 {
		t.Errorf("empty run produced work: %+v", res)
	}
}

// --- General behaviour -----------------------------------------------

// TestSingleUnit runs a chain on one unit: every task must be loaded in
// turn, evicting its predecessor.
func TestSingleUnit(t *testing.T) {
	g := taskgraph.Chain("c", 1, ms(2), ms(2), ms(2))
	res := runValidated(t, Config{RUs: 1, Latency: ms(4), Policy: policy.NewLRU()}, g)
	if res.Executed != 3 || res.Reused != 0 {
		t.Errorf("executed %d reused %d", res.Executed, res.Reused)
	}
	// load 1 [0,4], exec [4,6], load 2 [6,10], exec [10,12], load 3
	// [12,16], exec [16,18].
	if want := ms(18); res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", res.Evictions)
	}
}

// TestGraphWiderThanArray: more parallel tasks than units must still
// complete (units recycle as tasks finish).
func TestGraphWiderThanArray(t *testing.T) {
	g := taskgraph.ForkJoin("wide", 1, ms(2),
		[]simtime.Time{ms(2), ms(2), ms(2), ms(2), ms(2)}, ms(2), true)
	res := runValidated(t, Config{RUs: 2, Latency: ms(1), Policy: policy.NewLRU()}, g)
	if res.Executed != 7 {
		t.Errorf("executed %d, want 7", res.Executed)
	}
}

// TestBackToBackSameGraph: an immediately repeated graph reuses every
// configuration when it fits in the array.
func TestBackToBackSameGraph(t *testing.T) {
	g := workload.Fig2TG1() // 3 tasks
	res := runValidated(t, Config{RUs: 4, Latency: ms(4), Policy: policy.NewLRU()}, g, g, g)
	if res.Executed != 9 {
		t.Fatalf("executed %d, want 9", res.Executed)
	}
	if res.Reused != 6 {
		t.Errorf("reused = %d, want 6 (all of runs 2 and 3)", res.Reused)
	}
	if res.Loads != 3 {
		t.Errorf("loads = %d, want 3", res.Loads)
	}
}

// TestDynamicArrivals: a graph arriving after the system went idle is
// picked up when it arrives, not before.
func TestDynamicArrivals(t *testing.T) {
	g := taskgraph.Chain("c", 1, ms(2))
	feed, err := dynlist.NewTimed([]dynlist.Item{
		{Graph: g, Arrival: 0},
		{Graph: g, Arrival: ms(100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{RUs: 2, Latency: ms(4), Policy: policy.NewLRU(), RecordTrace: true}, feed)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(res.Templates); err != nil {
		t.Fatal(err)
	}
	// First run: load [0,4], exec [4,6]. Second arrives at 100, config
	// still resident: reuse, exec [100,102].
	if want := ms(102); res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Reused != 1 {
		t.Errorf("reused = %d, want 1", res.Reused)
	}
	if len(res.Completions) != 2 || res.Completions[0] != ms(6) {
		t.Errorf("completions = %v", res.Completions)
	}
}

// TestDeterminism: identical configurations yield identical results.
func TestDeterminism(t *testing.T) {
	seq := workload.Fig2Sequence()
	cfg := fig2Config(policy.NewLFD())
	a := run(t, cfg, seq...)
	b := run(t, cfg, seq...)
	if a.Makespan != b.Makespan || a.Reused != b.Reused || a.Loads != b.Loads ||
		a.Events != b.Events {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestZeroLatencyNeverSlower: for every policy, the zero-latency run is a
// lower bound on the 4 ms-latency run.
func TestZeroLatencyNeverSlower(t *testing.T) {
	seq := workload.Fig3Sequence()
	pols := []policy.Policy{policy.NewLRU(), policy.NewFIFO(), policy.NewLFD(), mustLocalLFD(t, 2)}
	for _, p := range pols {
		ideal := run(t, Config{RUs: 4, Latency: 0, Policy: p}, seq...)
		real := run(t, Config{RUs: 4, Latency: ms(4), Policy: p}, seq...)
		if real.Makespan.Before(ideal.Makespan) {
			t.Errorf("%s: real %v < ideal %v", p.Name(), real.Makespan, ideal.Makespan)
		}
	}
}

// TestMaxEventsGuard: a tiny budget aborts cleanly.
func TestMaxEventsGuard(t *testing.T) {
	seq := workload.Fig2Sequence()
	_, err := Run(Config{RUs: 4, Latency: ms(4), Policy: policy.NewLRU(), MaxEvents: 3},
		dynlist.NewSequence(seq...))
	if err == nil || !strings.Contains(err.Error(), "events") {
		t.Errorf("err = %v, want event-budget error", err)
	}
}

// TestSkipNeverFiresWithoutMobility: SkipEvents with all-zero mobilities
// must behave exactly like plain ASAP.
func TestSkipNeverFiresWithoutMobility(t *testing.T) {
	plain := run(t, Config{RUs: 4, Latency: ms(4), Policy: mustLocalLFD(t, 1)},
		workload.Fig3Sequence()...)
	skip := run(t, Config{RUs: 4, Latency: ms(4), Policy: mustLocalLFD(t, 1), SkipEvents: true},
		workload.Fig3Sequence()...)
	if plain.Makespan != skip.Makespan || plain.Reused != skip.Reused || skip.Skips != 0 {
		t.Errorf("skip with zero mobility changed behaviour: %+v vs %+v", plain, skip)
	}
}

// TestSkipCounterIsPerGraph: the skipped_events counter resets between
// graph instances — the second TG2 instance can skip again.
func TestSkipCounterIsPerGraph(t *testing.T) {
	tg1, tg2 := workload.Fig3TG1(), workload.Fig3TG2()
	res := run(t, Config{
		RUs: 4, Latency: ms(4), Policy: mustLocalLFD(t, 1),
		SkipEvents: true, Mobility: fig3Mobility,
	}, tg1, tg2, tg1, tg2, tg1)
	if res.Skips < 2 {
		t.Errorf("skips = %d, want ≥ 2 (one per TG2 instance)", res.Skips)
	}
}

// TestTemplatesRecorded: every instance maps to its template.
func TestTemplatesRecorded(t *testing.T) {
	seq := workload.Fig2Sequence()
	res := run(t, fig2Config(policy.NewLRU()), seq...)
	if len(res.Templates) != 5 {
		t.Fatalf("templates = %d, want 5", len(res.Templates))
	}
	for i, g := range seq {
		if res.Templates[i] != g {
			t.Errorf("instance %d template mismatch", i)
		}
	}
}

// rogue is a deliberately broken policy choosing a unit outside the
// candidate set.
type rogue struct{}

func (rogue) Name() string { return "rogue" }
func (rogue) Window() int  { return policy.WindowNone }
func (rogue) SelectVictim(req policy.Request, cands []policy.Candidate) policy.Decision {
	return policy.Decision{RU: 99, Victim: 12345}
}

// TestRoguePolicyCaught: a policy evicting outside the candidate set is a
// programming error and must be caught loudly, not corrupt the run.
func TestRoguePolicyCaught(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rogue policy decision not caught")
		}
	}()
	seq := workload.Fig2Sequence()
	_, _ = Run(Config{RUs: 4, Latency: ms(4), Policy: rogue{}}, dynlist.NewSequence(seq...))
}
