package manager

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// reusePolicies builds one policy instance per family for the reuse
// property tests; the Random seed varies with the trial so the stateful
// path is exercised across different streams.
func reusePolicies(t *testing.T, trial int) []policy.Policy {
	t.Helper()
	local, err := policy.NewLocalLFD(1 + trial%3)
	if err != nil {
		t.Fatal(err)
	}
	return []policy.Policy{
		policy.NewLRU(),
		policy.NewFIFO(),
		policy.NewMRU(),
		policy.NewRandom(int64(trial*7 + 1)),
		policy.NewLFD(),
		local,
	}
}

// TestRunnerReuseByteIdentical is the invariant the whole pooled-state
// design hangs on: a Runner that has already executed arbitrary other
// workloads produces exactly the result — counters, completion times,
// full trace — a fresh Runner produces. Every state dimension is cycled:
// policy family (including the stateful Random), unit count, latency,
// skip-events with mobilities, cross-graph prefetch, graph sizes that
// shrink and grow between runs.
func TestRunnerReuseByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(20110516))
	reused := NewRunner()
	for trial := 0; trial < 90; trial++ {
		seq := randomWorkload(t, rng, 1+rng.Intn(4), 1+rng.Intn(10))
		pols := reusePolicies(t, trial)
		cfg := Config{
			RUs:         1 + rng.Intn(5),
			Latency:     simtime.Time(rng.Int63n(int64(simtime.FromMs(6)))),
			Policy:      pols[trial%len(pols)],
			RecordTrace: true,
		}
		switch trial % 4 {
		case 1:
			cfg.SkipEvents = true
			table := make(map[*taskgraph.Graph][]int)
			for _, g := range seq {
				if _, ok := table[g]; !ok {
					vals := make([]int, g.NumTasks())
					for i := range vals {
						vals[i] = rng.Intn(3)
					}
					table[g] = vals
				}
			}
			cfg.Mobility = func(g *taskgraph.Graph) []int { return table[g] }
		case 2:
			cfg.CrossGraphPrefetch = true
		case 3:
			cfg.CrossGraphPrefetch = true
			cfg.ConservativePrefetch = true
		}
		// The same policy instance serves both runs: Runner.Reset rewinds
		// stateful policies, so sharing it is part of what is under test.
		want, err := NewRunner().Run(cfg, dynlist.NewSequence(seq...))
		if err != nil {
			t.Fatalf("trial %d: fresh runner: %v", trial, err)
		}
		got, err := reused.Run(cfg, dynlist.NewSequence(seq...))
		if err != nil {
			t.Fatalf("trial %d: reused runner: %v", trial, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (%s, R=%d): reused runner diverged from fresh\nfresh:  %+v\nreused: %+v",
				trial, cfg.Policy.Name(), cfg.RUs, want, got)
		}
	}
}

// TestRunnerRerunIdentical: running the same scenario twice on one Runner
// yields identical results — the Random policy's in-place reseed
// included.
func TestRunnerRerunIdentical(t *testing.T) {
	seq := append(workload.Multimedia(), workload.Multimedia()...)
	cfg := Config{
		RUs: 4, Latency: workload.PaperLatency(),
		Policy: policy.NewRandom(3), RecordTrace: true,
	}
	r := NewRunner()
	first, err := r.Run(cfg, dynlist.NewSequence(seq...))
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(cfg, dynlist.NewSequence(seq...))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-run diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestEventLoopSteadyStateAllocs pins the tentpole guarantee: once a
// Runner is warm, preparing and executing a whole simulation — event
// loop, replacement decisions, lookahead construction, instance
// bookkeeping — allocates nothing. Only the final result snapshot (which
// must escape) is excluded, by driving the unexported phases directly.
func TestEventLoopSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seq := randomWorkload(t, rng, 3, 40)
	mobTable := make(map[*taskgraph.Graph][]int)
	for _, g := range seq {
		if _, ok := mobTable[g]; !ok {
			vals := make([]int, g.NumTasks())
			for i := range vals {
				vals[i] = rng.Intn(3)
			}
			mobTable[g] = vals
		}
	}
	local, err := policy.NewLocalLFD(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"LRU", Config{RUs: 4, Latency: workload.PaperLatency(), Policy: policy.NewLRU()}},
		{"FIFO", Config{RUs: 3, Latency: workload.PaperLatency(), Policy: policy.NewFIFO()}},
		{"MRU", Config{RUs: 4, Latency: workload.PaperLatency(), Policy: policy.NewMRU()}},
		{"Random", Config{RUs: 4, Latency: workload.PaperLatency(), Policy: policy.NewRandom(11)}},
		{"LFD", Config{RUs: 4, Latency: workload.PaperLatency(), Policy: policy.NewLFD()}},
		{"LocalLFD2", Config{RUs: 4, Latency: workload.PaperLatency(), Policy: local}},
		{"LocalLFD2+Skip", Config{
			RUs: 4, Latency: workload.PaperLatency(), Policy: local,
			SkipEvents: true,
			Mobility:   func(g *taskgraph.Graph) []int { return mobTable[g] },
		}},
		{"LRU+Prefetch", Config{
			RUs: 4, Latency: workload.PaperLatency(), Policy: policy.NewLRU(),
			CrossGraphPrefetch: true,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			feed := dynlist.NewSequence(seq...)
			r := NewRunner()
			runOnce := func() {
				if err := r.Reset(c.cfg); err != nil {
					t.Fatal(err)
				}
				if err := r.start(feed.Rewind()); err != nil {
					t.Fatal(err)
				}
				if err := r.loop(); err != nil {
					t.Fatal(err)
				}
			}
			runOnce() // warm: grow every buffer to its high-water mark
			if avg := testing.AllocsPerRun(5, runOnce); avg != 0 {
				t.Errorf("steady-state run allocates %.1f times, want 0", avg)
			}
		})
	}
}

// TestRunnerResetRejectsBadConfig: Reset validates like Run always has,
// and a failed Reset leaves the Runner usable for a correct config.
func TestRunnerResetRejectsBadConfig(t *testing.T) {
	r := NewRunner()
	if err := r.Reset(Config{RUs: 0, Policy: policy.NewLRU()}); err == nil {
		t.Error("Reset accepted 0 units")
	}
	if err := r.Reset(Config{RUs: 1}); err == nil {
		t.Error("Reset accepted nil policy")
	}
	if err := r.Reset(Config{RUs: 1, Latency: -1, Policy: policy.NewLRU()}); err == nil {
		t.Error("Reset accepted negative latency")
	}
	g := workload.JPEG()
	res, err := r.Run(Config{RUs: 4, Latency: workload.PaperLatency(), Policy: policy.NewLRU()},
		dynlist.NewSequence(g))
	if err != nil {
		t.Fatalf("runner unusable after rejected configs: %v", err)
	}
	if res.Graphs != 1 {
		t.Errorf("graphs = %d, want 1", res.Graphs)
	}
}
