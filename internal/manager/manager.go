// Package manager implements the paper's task-graph execution manager
// (Fig. 4) with the replacement module (Fig. 8) plugged into it.
//
// The manager is event-triggered. Three events drive it, exactly as in the
// paper: new_task_graph (an application arrives in the Dynamic List),
// end_of_reconfiguration (the circuitry finished a load — reuse of an
// already-resident configuration is the zero-latency special case), and
// end_of_execution (a task finished running). After each event the manager
// "settles": it starts the next application if none is running, starts
// every task whose configuration is resident and whose predecessors have
// finished, and — when the reconfiguration circuitry is idle — asks the
// replacement module to handle the next entry of the running graph's
// reconfiguration sequence.
//
// The replacement module follows Fig. 8: it reuses a resident
// configuration when possible, otherwise picks a victim with the
// configured policy; if skip-events is enabled, the victim is reusable
// within the policy's lookahead and the task's mobility exceeds the
// events already skipped for this graph, the load is postponed until the
// next event.
//
// Semantics that the paper leaves implicit were reverse-engineered from
// its worked figures and are locked in by golden tests (see DESIGN.md §2):
// applications execute strictly sequentially (the loads of graph k+1 begin
// when graph k completes); eviction candidates are units that are neither
// executing nor holding a configuration still awaiting execution in the
// running graph; and a postponed load waits for the next simulator event.
//
// The steady-state event loop is allocation-free: a Runner owns every
// piece of per-run state (engine queue, unit array, instance bookkeeping,
// lookahead and candidate buffers) and reuses it across runs, so a sweep
// worker simulates its whole slice of the grid on warm memory. See
// ARCHITECTURE.md §"The hot loop" for the design and its invariant —
// reuse never changes simulation output.
package manager

import (
	"fmt"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/ru"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Config parametrizes a run.
type Config struct {
	// RUs is the number of reconfigurable units (≥1).
	RUs int
	// Latency is the reconfiguration latency (0 is allowed and yields the
	// ideal schedule used as the overhead baseline).
	Latency simtime.Time
	// LatencyFor, when non-nil, supplies a per-task latency (e.g. derived
	// from per-task bitstream sizes), overriding Latency. Values must be
	// non-negative. The paper assumes a uniform latency; this is the
	// natural extension for heterogeneous configurations.
	LatencyFor func(taskgraph.TaskID) simtime.Time
	// Policy selects replacement victims. Its Window() governs how much
	// lookahead the manager builds for it.
	Policy policy.Policy
	// SkipEvents enables the run-time skip mechanism of Fig. 8. It needs
	// Mobility to be useful; with all-zero mobilities it never fires.
	SkipEvents bool
	// Mobility returns the per-local-index mobility values for a graph
	// (as computed by internal/mobility at design time). nil means all
	// zeros everywhere.
	Mobility func(*taskgraph.Graph) []int
	// DelayPlan forces the load of given tasks (by local index) to be
	// postponed a fixed number of events. It applies to every instance
	// and exists for the design-time mobility calculation (Fig. 6);
	// normal runs leave it nil.
	DelayPlan map[int]int
	// CrossGraphPrefetch extends the paper's manager: once the running
	// graph's reconfiguration sequence is exhausted, the idle circuitry
	// starts loading the next enqueued graph's configurations (and pins
	// the ones already resident). The paper's manager only prefetches
	// within the running graph; this is the natural next step and is
	// evaluated as an extension experiment.
	CrossGraphPrefetch bool
	// ConservativePrefetch tempers CrossGraphPrefetch to preserve reuse:
	// preloads only ever displace configurations the policy's lookahead
	// does not expect to be reused; when every candidate is reusable,
	// the preload waits. Greedy prefetch trades reuse (and therefore
	// reconfiguration energy) for hiding; the conservative variant keeps
	// the reuse. Only meaningful together with CrossGraphPrefetch and a
	// window that reaches past the graph being preloaded.
	ConservativePrefetch bool
	// RecordTrace enables full trace recording (loads, execs, skips).
	RecordTrace bool
	// MaxEvents aborts pathological runs; 0 means a generous default.
	MaxEvents uint64
}

const defaultMaxEvents = 50_000_000

// Result summarizes a completed run.
type Result struct {
	// Makespan is the completion time of the last task.
	Makespan simtime.Time
	// Executed counts task executions; Reused counts those that found
	// their configuration already resident. Loads counts actual
	// reconfigurations; Evictions counts loads that displaced a resident
	// configuration.
	Executed  int
	Reused    int
	Loads     int
	Evictions int
	// Skips counts run-time skip-events decisions; ForcedSkips counts
	// DelayPlan postponements (mobility calculation only). Preloads
	// counts cross-graph prefetch loads (extension).
	Skips       int
	ForcedSkips int
	Preloads    int
	// Graphs is the number of application instances completed, and
	// Completions their completion times in instance order.
	Graphs      int
	Completions []simtime.Time
	// Events is the number of simulator events processed.
	Events uint64
	// Trace is the full record when Config.RecordTrace was set.
	Trace *trace.Trace
	// Templates holds each instance's graph template, indexed by instance
	// number (for trace validation and reporting).
	Templates []*taskgraph.Graph
}

// taskState tracks one task of the running instance.
type taskState int8

const (
	stateNotLoaded taskState = iota // not yet consumed from the sequence
	stateLoading                    // reconfiguration in flight
	stateReady                      // resident, waiting for predecessors
	stateExecuting
	stateDone
)

// instance is the running application.
type instance struct {
	item      dynlist.Item
	g         *taskgraph.Graph
	rec       []int // local-index reconfiguration sequence
	recPos    int   // next entry to handle
	state     []taskState
	predsLeft []int
	ruOf      []int // unit holding each task while Ready/Executing
	execStart []simtime.Time
	reused    []bool
	doneCount int
	started   simtime.Time
	skipped   int   // skipped_events counter (Fig. 8), reset per graph
	delayLeft []int // remaining forced postponements per local index
	mobility  []int
}

// taskSet is an array-backed set of TaskIDs with O(1) epoch-based reset:
// a member is an entry stamped with the current epoch, so clearing the set
// between runs is a counter increment rather than an O(maxID) wipe, and a
// membership test is one bounds-checked load instead of a map probe.
type taskSet struct {
	mark  []uint32
	epoch uint32
}

func (s *taskSet) reset(maxID taskgraph.TaskID) {
	if n := int(maxID) + 1; n > len(s.mark) {
		s.mark = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // epoch counter wrapped: wipe the stale stamps once
		clear(s.mark)
		s.epoch = 1
	}
}

func (s *taskSet) add(id taskgraph.TaskID)      { s.mark[id] = s.epoch }
func (s *taskSet) remove(id taskgraph.TaskID)   { s.mark[id] = 0 }
func (s *taskSet) has(id taskgraph.TaskID) bool { return s.mark[id] == s.epoch }

// resize returns s with exactly n zeroed elements, reusing the backing
// array when it is large enough.
func resize[T any](s []T, n int) []T {
	if n <= cap(s) {
		s = s[:n]
		clear(s)
		return s
	}
	return make([]T, n)
}

// Runner is a reusable simulation runner. One Runner executes any number
// of runs sequentially, recycling every internal structure — event queue,
// unit array, instance bookkeeping, lookahead and candidate buffers — so
// that after the first run the event loop allocates nothing. Reuse is
// observationally invisible: a reused Runner produces byte-identical
// results to a fresh one (property-tested). A Runner is not safe for
// concurrent use; give each goroutine its own.
type Runner struct {
	cfg    Config
	engine sim.Engine
	units  *ru.Array
	recon  *ru.Reconfigurator

	arrivals []dynlist.Item
	arrived  int // arrivals already pushed into the DL
	dl       dynlist.List
	inst     instance // pooled storage for the running application
	cur      *instance

	protected taskSet
	skipArmed bool

	// Cross-graph prefetch state: the instance being preloaded, the
	// position reached in its reconfiguration sequence, the units its
	// completed preloads landed on (parallel id/unit slices, in completion
	// order), and the task of an in-flight preload.
	preloadFor      int
	preloadPos      int
	preloadDoneIDs  []taskgraph.TaskID
	preloadDoneRUs  []int
	preloadInFlight taskgraph.TaskID

	lookbuf []taskgraph.TaskID
	candbuf []policy.Candidate

	res Result
	tr  *trace.Trace
}

// NewRunner returns an empty Runner, ready for its first Run.
func NewRunner() *Runner { return &Runner{preloadFor: -1} }

// Run executes every application produced by feed under cfg and returns
// the aggregated result. It is shorthand for NewRunner().Run — callers
// running many simulations should hold on to one Runner instead.
func Run(cfg Config, feed dynlist.Feed) (*Result, error) {
	return NewRunner().Run(cfg, feed)
}

// Run executes every application produced by feed under cfg and returns
// the aggregated result. The Runner's state is fully re-initialized
// first, so runs are independent regardless of what ran before.
func (r *Runner) Run(cfg Config, feed dynlist.Feed) (*Result, error) {
	if err := r.Reset(cfg); err != nil {
		return nil, err
	}
	if err := r.start(feed); err != nil {
		return nil, err
	}
	if err := r.loop(); err != nil {
		return nil, err
	}
	return r.snapshot(), nil
}

// Reset validates cfg and rewinds the Runner to a pristine state for a
// new run, reusing the memory of previous runs. It also rewinds stateful
// policies (policy.Resetter) so a reused policy instance replays its
// original decision stream.
func (r *Runner) Reset(cfg Config) error {
	if cfg.RUs < 1 {
		return fmt.Errorf("manager: need at least 1 reconfigurable unit, got %d", cfg.RUs)
	}
	if cfg.Policy == nil {
		return fmt.Errorf("manager: no replacement policy configured")
	}
	if cfg.Latency < 0 {
		return fmt.Errorf("manager: negative latency %v", cfg.Latency)
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = defaultMaxEvents
	}
	if r.units == nil {
		units, err := ru.NewArray(cfg.RUs)
		if err != nil {
			return err
		}
		r.units = units
	} else if err := r.units.Reset(cfg.RUs); err != nil {
		return err
	}
	if r.recon == nil {
		recon, err := ru.NewReconfigurator(cfg.Latency)
		if err != nil {
			return err
		}
		r.recon = recon
	} else if err := r.recon.Reset(cfg.Latency); err != nil {
		return err
	}
	policy.Reset(cfg.Policy)
	r.cfg = cfg
	r.arrivals = r.arrivals[:0]
	r.arrived = 0
	r.dl.Reset()
	r.cur = nil
	r.skipArmed = false
	r.preloadFor = -1
	r.preloadPos = 0
	r.preloadDoneIDs = r.preloadDoneIDs[:0]
	r.preloadDoneRUs = r.preloadDoneRUs[:0]
	r.preloadInFlight = taskgraph.NoTask
	// Counters restart at zero; the result's slice buffers are kept.
	comps, tmpls := r.res.Completions[:0], r.res.Templates[:0]
	r.res = Result{Completions: comps, Templates: tmpls}
	r.tr = nil
	if cfg.RecordTrace {
		r.tr = &trace.Trace{
			RUs:           cfg.RUs,
			Latency:       cfg.Latency,
			Heterogeneous: cfg.LatencyFor != nil,
		}
		r.res.Trace = r.tr
	}
	return nil
}

// start drains the feed, pre-sizes every per-run structure from the
// workload's shape and schedules the arrival events.
//
// The feed is drained up front: arrival times are fixed, so each becomes
// a scheduled new_task_graph event. (Clairvoyant LFD additionally peeks
// at not-yet-arrived items through the drained slice.)
func (r *Runner) start(feed dynlist.Feed) error {
	for {
		it, ok := feed.Next()
		if !ok {
			break
		}
		r.arrivals = append(r.arrivals, it)
	}
	var maxID taskgraph.TaskID
	tasks := 0
	for i, it := range r.arrivals {
		if it.Graph == nil {
			return fmt.Errorf("manager: arrival %d has nil graph", i)
		}
		if id := it.Graph.MaxTaskID(); id > maxID {
			maxID = id
		}
		tasks += it.Graph.NumTasks()
	}
	r.protected.reset(maxID)
	if cap(r.res.Completions) < len(r.arrivals) {
		r.res.Completions = make([]simtime.Time, 0, len(r.arrivals))
	}
	r.res.Templates = resize(r.res.Templates, len(r.arrivals))
	r.engine.Reset(len(r.arrivals) + r.cfg.RUs + 2)
	for i, it := range r.arrivals {
		r.engine.ScheduleArrival(it.Arrival, i)
	}
	if r.tr != nil {
		// Pre-size the trace from the workload shape: at most one load and
		// exactly one exec per task occurrence, one record per instance.
		r.tr.Loads = make([]trace.Load, 0, tasks)
		r.tr.Execs = make([]trace.Exec, 0, tasks)
		r.tr.Graphs = make([]trace.Graph, 0, len(r.arrivals))
	}
	return nil
}

// snapshot copies the run's outcome out of the Runner's reusable buffers.
// Callers retain Results long after the Runner has moved on (a sweep's
// reorder window holds them across later runs), so every escaping slice
// is freshly owned; the trace is already per-run.
func (r *Runner) snapshot() *Result {
	out := new(Result)
	*out = r.res
	out.Completions = append([]simtime.Time(nil), r.res.Completions...)
	out.Templates = append([]*taskgraph.Graph(nil), r.res.Templates...)
	return out
}

// loop is the event loop: pop, handle, settle.
func (r *Runner) loop() error {
	for {
		ev, ok := r.engine.Pop()
		if !ok {
			break
		}
		if r.engine.Popped() > r.cfg.MaxEvents {
			return fmt.Errorf("manager: exceeded %d events at %v — runaway simulation",
				r.cfg.MaxEvents, r.engine.Now())
		}
		r.res.Events = r.engine.Popped()
		// A new event is the moment a postponed load waits for.
		r.skipArmed = false
		switch ev.Kind {
		case sim.NewTaskGraph:
			r.dl.Push(r.arrivals[ev.Arg])
			r.arrived++
		case sim.EndOfReconfiguration:
			r.handleEndOfReconfiguration()
		case sim.EndOfExecution:
			r.handleEndOfExecution(ev)
		}
		if err := r.settle(); err != nil {
			return err
		}
	}
	if r.cur != nil || r.dl.Len() > 0 {
		return fmt.Errorf("manager: simulation stalled at %v with work pending (running=%v, queued=%d)",
			r.engine.Now(), r.cur != nil, r.dl.Len())
	}
	return nil
}

func (r *Runner) handleEndOfReconfiguration() {
	task, unit := r.recon.Finish()
	if task == r.preloadInFlight && task != taskgraph.NoTask {
		// A cross-graph preload completed before its instance started.
		r.preloadDoneIDs = append(r.preloadDoneIDs, task)
		r.preloadDoneRUs = append(r.preloadDoneRUs, unit)
		r.preloadInFlight = taskgraph.NoTask
		return
	}
	local := r.cur.g.IndexOf(task)
	if local < 0 || r.cur.state[local] != stateLoading {
		panic(fmt.Sprintf("manager: end_of_reconfiguration for unexpected task %d", task))
	}
	r.cur.state[local] = stateReady
	r.cur.ruOf[local] = unit
}

func (r *Runner) handleEndOfExecution(ev sim.Event) {
	now := r.engine.Now()
	r.units.FinishExecution(ev.RU, now)
	local := r.cur.g.IndexOf(ev.Task)
	if local < 0 || r.cur.state[local] != stateExecuting {
		panic(fmt.Sprintf("manager: end_of_execution for unexpected task %d", ev.Task))
	}
	r.cur.state[local] = stateDone
	r.cur.doneCount++
	r.protected.remove(ev.Task)
	r.res.Executed++
	if r.cur.reused[local] {
		r.res.Reused++
	}
	if r.tr != nil {
		r.tr.Execs = append(r.tr.Execs, trace.Exec{
			Task: ev.Task, RU: ev.RU,
			Start: r.cur.execStart[local], End: now,
			Reused: r.cur.reused[local], Instance: r.cur.item.Instance,
		})
	}
	for _, s := range r.cur.g.Succs(local) {
		r.cur.predsLeft[s]--
	}
	if r.cur.doneCount == r.cur.g.NumTasks() {
		r.finishInstance(now)
	}
}

func (r *Runner) finishInstance(now simtime.Time) {
	r.res.Graphs++
	r.res.Completions = append(r.res.Completions, now)
	if now.After(r.res.Makespan) {
		r.res.Makespan = now
	}
	if r.tr != nil {
		r.tr.Graphs = append(r.tr.Graphs, trace.Graph{
			Name:     r.cur.g.Name(),
			Instance: r.cur.item.Instance,
			Arrived:  r.cur.item.Arrival,
			Started:  r.cur.started,
			Finished: now,
		})
	}
	r.cur = nil
}

// settle repeatedly applies every enabled action until none makes
// progress: start the next application, start ready executions, and drive
// the replacement module.
func (r *Runner) settle() error {
	for {
		progress := false
		if r.cur == nil {
			if it, ok := r.dl.PopFront(); ok {
				r.startInstance(it)
				progress = true
			}
		}
		if r.cur != nil && r.startReadyExecutions() {
			progress = true
		}
		if r.cur != nil && r.cur.recPos < len(r.cur.rec) && r.recon.Idle() && !r.skipArmed {
			if r.replacementModule() {
				progress = true
			}
		}
		if r.cfg.CrossGraphPrefetch && r.cur != nil && r.cur.recPos == len(r.cur.rec) &&
			r.recon.Idle() && r.dl.Len() > 0 {
			if r.preloadStep() {
				progress = true
			}
		}
		if !progress {
			return nil
		}
	}
}

func (r *Runner) startInstance(it dynlist.Item) {
	g := it.Graph
	n := g.NumTasks()
	// The pooled instance storage is recycled: each slice is resliced and
	// zeroed in place, so after the first few graphs no run allocates here.
	c := &r.inst
	*c = instance{
		item:      it,
		g:         g,
		rec:       g.RecSequence(),
		state:     resize(c.state, n),
		predsLeft: resize(c.predsLeft, n),
		ruOf:      resize(c.ruOf, n),
		execStart: resize(c.execStart, n),
		reused:    resize(c.reused, n),
		delayLeft: resize(c.delayLeft, n),
		mobility:  resize(c.mobility, n),
		started:   r.engine.Now(),
	}
	for i := 0; i < n; i++ {
		c.predsLeft[i] = len(g.Preds(i))
		c.ruOf[i] = -1
	}
	if r.cfg.Mobility != nil {
		if mob := r.cfg.Mobility(g); mob != nil {
			copy(c.mobility, mob)
		}
	}
	for local, d := range r.cfg.DelayPlan {
		if local >= 0 && local < n {
			c.delayLeft[local] = d
		}
	}
	// Hand over cross-graph preloads: configurations already loaded for
	// this instance become Ready (they were loads, not reuses); one may
	// still be in flight, in which case its end_of_reconfiguration event
	// will complete it through the normal path.
	if it.Instance == r.preloadFor {
		for k, id := range r.preloadDoneIDs {
			local := g.IndexOf(id)
			c.state[local] = stateReady
			c.ruOf[local] = r.preloadDoneRUs[k]
		}
		if r.preloadInFlight != taskgraph.NoTask {
			local := g.IndexOf(r.preloadInFlight)
			c.state[local] = stateLoading
			r.preloadInFlight = taskgraph.NoTask
		}
		r.preloadFor = -1
		r.preloadDoneIDs = r.preloadDoneIDs[:0]
		r.preloadDoneRUs = r.preloadDoneRUs[:0]
	}
	r.cur = c
	r.skipArmed = false
	r.res.Templates[it.Instance] = g
}

// startReadyExecutions launches every task whose configuration is resident
// and whose predecessors are all done. It reports whether any started.
func (r *Runner) startReadyExecutions() bool {
	started := false
	now := r.engine.Now()
	c := r.cur
	for i := 0; i < c.g.NumTasks(); i++ {
		if c.state[i] != stateReady || c.predsLeft[i] != 0 {
			continue
		}
		unit := c.ruOf[i]
		end := now.Add(c.g.Task(i).Exec)
		r.units.StartExecution(unit, end)
		c.state[i] = stateExecuting
		c.execStart[i] = now
		r.engine.Schedule(end, sim.EndOfExecution, c.g.Task(i).ID, unit)
		started = true
	}
	return started
}

// replacementModule is Fig. 8: handle the next reconfiguration-sequence
// entry. It reports whether it made progress (reuse or load started); a
// skip or a lack of candidates is not progress.
func (r *Runner) replacementModule() bool {
	c := r.cur
	// Entries satisfied by a cross-graph preload are already resident;
	// consume them silently.
	for c.recPos < len(c.rec) && c.state[c.rec[c.recPos]] != stateNotLoaded {
		c.recPos++
	}
	if c.recPos == len(c.rec) {
		return false
	}
	local := c.rec[c.recPos]
	id := c.g.Task(local).ID

	// Reuse: the configuration is already resident somewhere.
	if unit, ok := r.units.Find(id); ok {
		r.units.CountReuse(unit)
		c.state[local] = stateReady
		c.ruOf[local] = unit
		c.reused[local] = true
		c.recPos++
		r.protected.add(id)
		return true
	}

	// Determine whether a placement is possible at all: an empty unit, or
	// at least one replaceable candidate (an idle unit whose resident
	// configuration is not still awaiting execution in the running
	// graph). Fig. 8 exits with no action when the victim set is empty —
	// skips, forced or voluntary, are only meaningful when the load could
	// have proceeded.
	emptyUnit, hasEmpty := r.units.FirstEmpty()
	cands := r.candbuf[:0]
	if !hasEmpty {
		for i := 0; i < r.units.Len(); i++ {
			u := r.units.Unit(i)
			if u.Busy || r.protected.has(u.Resident) {
				continue
			}
			cands = append(cands, policy.Candidate{
				RU: i, Task: u.Resident, LastUse: u.LastUse, LoadedAt: u.LoadedAt,
			})
		}
		r.candbuf = cands
		if len(cands) == 0 {
			return false // wait for a unit to free up
		}
	}

	// Forced postponement (design-time mobility calculation, Fig. 6):
	// consume one delay per event at which the load could have happened,
	// provided a future event exists to wait for.
	if c.delayLeft[local] > 0 && r.engine.Len() > 0 {
		c.delayLeft[local]--
		r.res.ForcedSkips++
		r.skipArmed = true
		return false
	}

	// An empty unit needs no victim and cannot host a reusable one, so
	// the run-time skip logic does not apply (Fig. 8 step 4 requires a
	// reusable victim).
	if hasEmpty {
		r.beginLoad(local, id, emptyUnit)
		return true
	}

	dec := r.cfg.Policy.SelectVictim(policy.Request{
		Task: id, Now: r.engine.Now(), Lookahead: r.lookahead(),
	}, cands)
	r.checkDecision(dec, cands)

	// Skip events (Fig. 8, steps 4–5): protect a reusable victim by
	// postponing this load, if the task's mobility allows one more skip
	// and there is a future event to wait for.
	if r.cfg.SkipEvents && dec.Reusable && c.mobility[local] > c.skipped && r.engine.Len() > 0 {
		c.skipped++
		r.res.Skips++
		r.skipArmed = true
		if r.tr != nil {
			r.tr.Skips = append(r.tr.Skips, trace.Skip{
				Task: id, Victim: dec.Victim, At: r.engine.Now(), Instance: c.item.Instance,
			})
		}
		return false
	}

	r.beginLoad(local, id, dec.RU)
	return true
}

// checkDecision guards against misbehaving Policy implementations:
// evicting a unit outside the candidate set would corrupt the simulation
// (e.g. destroy an executing or pending configuration), so it is caught
// immediately rather than surfacing as a bizarre schedule.
func (r *Runner) checkDecision(dec policy.Decision, cands []policy.Candidate) {
	for _, c := range cands {
		if c.RU == dec.RU && c.Task == dec.Victim {
			return
		}
	}
	panic(fmt.Sprintf("manager: policy %s chose victim task %d on unit %d, not among the %d candidates",
		r.cfg.Policy.Name(), dec.Victim, dec.RU, len(cands)))
}

// beginLoad starts the reconfiguration of task id onto the given unit.
func (r *Runner) beginLoad(local int, id taskgraph.TaskID, unit int) {
	now := r.engine.Now()
	evicted := r.units.Install(unit, id, now)
	if evicted != taskgraph.NoTask {
		r.res.Evictions++
	}
	latency := r.cfg.Latency
	if r.cfg.LatencyFor != nil {
		latency = r.cfg.LatencyFor(id)
	}
	end := r.recon.BeginLatency(id, unit, now, latency)
	r.res.Loads++
	c := r.cur
	c.state[local] = stateLoading
	c.recPos++
	r.protected.add(id)
	r.engine.Schedule(end, sim.EndOfReconfiguration, id, unit)
	if r.tr != nil {
		r.tr.Loads = append(r.tr.Loads, trace.Load{
			Task: id, RU: unit, Start: now, End: end,
			Evicted: evicted, Instance: c.item.Instance,
		})
	}
}

// preloadStep advances the cross-graph prefetch: while the circuitry is
// idle and the running graph needs no more loads, bring the next enqueued
// graph's configurations onto the array — pinning those already resident
// and loading the missing ones, one per invocation. It reports whether a
// load started.
func (r *Runner) preloadStep() bool {
	head := r.dl.At(0)
	if r.preloadFor != head.Instance {
		r.preloadFor = head.Instance
		r.preloadPos = 0
		r.preloadDoneIDs = r.preloadDoneIDs[:0]
		r.preloadDoneRUs = r.preloadDoneRUs[:0]
		r.preloadInFlight = taskgraph.NoTask
	}
	g := head.Graph
	rec := g.RecSequence()
	for r.preloadPos < len(rec) {
		id := g.Task(rec[r.preloadPos]).ID
		if _, ok := r.units.Find(id); ok {
			// Already resident (a completed preload or a leftover from an
			// earlier instance): pin it so it survives until the instance
			// starts — leftovers will be counted as reuses then.
			r.protected.add(id)
			r.preloadPos++
			continue
		}
		// Place the missing configuration.
		unit, hasEmpty := r.units.FirstEmpty()
		if !hasEmpty {
			cands := r.candbuf[:0]
			for i := 0; i < r.units.Len(); i++ {
				u := r.units.Unit(i)
				if u.Busy || r.protected.has(u.Resident) {
					continue
				}
				cands = append(cands, policy.Candidate{
					RU: i, Task: u.Resident, LastUse: u.LastUse, LoadedAt: u.LoadedAt,
				})
			}
			r.candbuf = cands
			if len(cands) == 0 {
				return false
			}
			dec := r.cfg.Policy.SelectVictim(policy.Request{
				Task: id, Now: r.engine.Now(), Lookahead: r.lookahead(),
			}, cands)
			r.checkDecision(dec, cands)
			// Conservative mode: a preload is opportunistic, so never pay
			// for it with a configuration the lookahead says will be
			// reused — wait for a dead victim or for the instance to
			// start (at which point the load is mandatory and Fig. 8's
			// normal economics apply). This only has teeth when the
			// policy's window reaches past the graph being preloaded.
			if r.cfg.ConservativePrefetch && dec.Reusable {
				return false
			}
			unit = dec.RU
		}
		now := r.engine.Now()
		evicted := r.units.Install(unit, id, now)
		if evicted != taskgraph.NoTask {
			r.res.Evictions++
		}
		latency := r.cfg.Latency
		if r.cfg.LatencyFor != nil {
			latency = r.cfg.LatencyFor(id)
		}
		end := r.recon.BeginLatency(id, unit, now, latency)
		r.res.Loads++
		r.res.Preloads++
		r.protected.add(id)
		r.preloadInFlight = id
		r.preloadPos++
		r.engine.Schedule(end, sim.EndOfReconfiguration, id, unit)
		if r.tr != nil {
			r.tr.Loads = append(r.tr.Loads, trace.Load{
				Task: id, RU: unit, Start: now, End: end,
				Evicted: evicted, Instance: head.Instance,
			})
		}
		return true
	}
	return false
}

// lookahead builds the future request sequence visible to the policy: the
// remainder of the running graph's reconfiguration sequence (beyond the
// entry being decided), then the Dynamic List window, then — for the
// clairvoyant window — every arrival still to come. It reuses one buffer
// across calls and allocates nothing once that buffer has grown to the
// workload's high-water mark.
func (r *Runner) lookahead() []taskgraph.TaskID {
	w := r.cfg.Policy.Window()
	buf := r.lookbuf[:0]
	if w == policy.WindowNone {
		r.lookbuf = buf
		return buf
	}
	c := r.cur
	// During cross-graph preloading the running graph's sequence is
	// already exhausted (recPos == len); otherwise skip the entry being
	// decided right now.
	if from := c.recPos + 1; from < len(c.rec) {
		for _, li := range c.rec[from:] {
			buf = append(buf, c.g.Task(li).ID)
		}
	}
	buf = r.dl.AppendWindow(buf, w)
	if w == policy.WindowAll {
		for _, it := range r.arrivals[r.arrived:] {
			buf = it.Graph.AppendRecIDs(buf)
		}
	}
	r.lookbuf = buf
	return buf
}
