package manager

import (
	"testing"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// TestHeterogeneousLatency: per-task latencies override the uniform one
// and shift the schedule accordingly.
func TestHeterogeneousLatency(t *testing.T) {
	g := taskgraph.Chain("c", 1, ms(2), ms(2))
	perTask := map[taskgraph.TaskID]simtime.Time{1: ms(10), 2: ms(1)}
	res, err := Run(Config{
		RUs:     2,
		Latency: ms(4), // ignored where LatencyFor answers
		LatencyFor: func(id taskgraph.TaskID) simtime.Time {
			return perTask[id]
		},
		Policy:      policy.NewLRU(),
		RecordTrace: true,
	}, dynlist.NewSequence(g))
	if err != nil {
		t.Fatal(err)
	}
	// load 1 [0,10], exec 1 [10,12]; load 2 [10,11], exec 2 [12,14].
	if want := ms(14); res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if err := res.Trace.Validate(res.Templates); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
	if !res.Trace.Heterogeneous {
		t.Error("trace not marked heterogeneous")
	}
	for _, l := range res.Trace.Loads {
		if got, want := l.End.Sub(l.Start), perTask[l.Task]; got != want {
			t.Errorf("load %d took %v, want %v", l.Task, got, want)
		}
	}
}

// TestBitstreamDerivedLatencies runs the multimedia workload with
// bitstream-derived per-task latencies end to end.
func TestBitstreamDerivedLatencies(t *testing.T) {
	lat, err := workload.LatencyFromBitstreams(workload.BitstreamBytes(), workload.DefaultConfigBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	jpeg, hough := workload.JPEG(), workload.Hough()
	res, err := Run(Config{
		RUs: 4, LatencyFor: lat, Policy: policy.NewLRU(), RecordTrace: true,
	}, dynlist.NewSequence(jpeg, hough, jpeg))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(res.Templates); err != nil {
		t.Fatal(err)
	}
	if res.Executed != 14 {
		t.Errorf("executed %d, want 14", res.Executed)
	}
	// The second JPEG cannot reuse anything after Hough's 6 tasks swept a
	// 4-unit array.
	if res.Reused != 0 {
		t.Errorf("reused = %d, want 0", res.Reused)
	}
	// Every load's duration must equal its task's derived latency.
	for _, l := range res.Trace.Loads {
		if got := l.End.Sub(l.Start); got != lat(l.Task) {
			t.Errorf("load %d took %v, want %v", l.Task, got, lat(l.Task))
		}
	}
}

// TestHeterogeneousZero: a LatencyFor returning zero behaves like the
// ideal baseline.
func TestHeterogeneousZero(t *testing.T) {
	g := workload.JPEG()
	res, err := Run(Config{
		RUs:        4,
		Latency:    ms(4),
		LatencyFor: func(taskgraph.TaskID) simtime.Time { return 0 },
		Policy:     policy.NewLRU(),
	}, dynlist.NewSequence(g))
	if err != nil {
		t.Fatal(err)
	}
	if want := simtime.FromMs(79); res.Makespan != want {
		t.Errorf("makespan = %v, want critical path %v", res.Makespan, want)
	}
}
