package manager

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// randomWorkload builds a pool of random templates (with disjoint ID
// ranges) and a random sequence over it.
func randomWorkload(t *testing.T, rng *rand.Rand, pools, apps int) []*taskgraph.Graph {
	t.Helper()
	pool := make([]*taskgraph.Graph, pools)
	for i := range pool {
		g, err := taskgraph.RandomLayered(fmt.Sprintf("rand%d", i), taskgraph.RandomConfig{
			Tasks:       1 + rng.Intn(7),
			MaxWidth:    1 + rng.Intn(3),
			EdgeProb:    0.4,
			MinExec:     simtime.FromMs(1),
			MaxExec:     simtime.FromMs(12),
			LongEdges:   rng.Intn(2) == 0,
			FirstTaskID: taskgraph.TaskID(1 + i*100),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = g
	}
	seq := make([]*taskgraph.Graph, apps)
	for i := range seq {
		seq[i] = pool[rng.Intn(len(pool))]
	}
	return seq
}

// TestRandomWorkloadsSatisfyInvariants fuzzes the manager across random
// workloads, unit counts and policies, validating the full trace each
// time: single reconfiguration port, no unit overlap, residency, graph
// sequencing and dependency order.
func TestRandomWorkloadsSatisfyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20110516))
	policies := []func() policy.Policy{
		policy.NewLRU,
		policy.NewFIFO,
		policy.NewMRU,
		func() policy.Policy { return policy.NewRandom(7) },
		policy.NewLFD,
		func() policy.Policy { p, _ := policy.NewLocalLFD(1 + rng.Intn(4)); return p },
	}
	for trial := 0; trial < 120; trial++ {
		seq := randomWorkload(t, rng, 1+rng.Intn(4), 1+rng.Intn(12))
		rus := 1 + rng.Intn(6)
		latency := simtime.Time(rng.Int63n(int64(simtime.FromMs(6))))
		pol := policies[trial%len(policies)]()
		res, err := Run(Config{
			RUs: rus, Latency: latency, Policy: pol, RecordTrace: true,
		}, dynlist.NewSequence(seq...))
		if err != nil {
			t.Fatalf("trial %d (R=%d, latency %v, %s): %v", trial, rus, latency, pol.Name(), err)
		}
		wantExecs := 0
		for _, g := range seq {
			wantExecs += g.NumTasks()
		}
		if res.Executed != wantExecs {
			t.Fatalf("trial %d: executed %d of %d tasks", trial, res.Executed, wantExecs)
		}
		if res.Graphs != len(seq) {
			t.Fatalf("trial %d: completed %d of %d graphs", trial, res.Graphs, len(seq))
		}
		if err := res.Trace.Validate(res.Templates); err != nil {
			t.Fatalf("trial %d (R=%d, latency %v, %s): trace invalid: %v",
				trial, rus, latency, pol.Name(), err)
		}
		if res.Reused+res.Loads != res.Executed {
			t.Fatalf("trial %d: reuses %d + loads %d != executed %d",
				trial, res.Reused, res.Loads, res.Executed)
		}
	}
}

// TestSkipEventsNeverLosesWork: with random mobilities (even nonsensical
// ones), every task still executes and the trace stays valid — the skip
// mechanism may only postpone, never break.
func TestSkipEventsNeverLosesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		seq := randomWorkload(t, rng, 1+rng.Intn(3), 1+rng.Intn(8))
		rus := 2 + rng.Intn(4)
		mob := func(g *taskgraph.Graph) []int {
			vals := make([]int, g.NumTasks())
			for i := range vals {
				vals[i] = rng.Intn(4)
			}
			return vals
		}
		pol, err := policy.NewLocalLFD(1 + rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			RUs: rus, Latency: simtime.FromMs(4), Policy: pol,
			SkipEvents: true, Mobility: mob, RecordTrace: true,
		}, dynlist.NewSequence(seq...))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Trace.Validate(res.Templates); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Graphs != len(seq) {
			t.Fatalf("trial %d: %d of %d graphs completed", trial, res.Graphs, len(seq))
		}
	}
}

// TestReuseNeverExceedsResidencyOpportunity: the first instance of each
// template can never reuse anything; on a single-unit system only
// immediately repeated single-task graphs can reuse.
func TestReuseNeverExceedsResidencyOpportunity(t *testing.T) {
	g := taskgraph.Chain("c", 1, simtime.FromMs(2), simtime.FromMs(2))
	res, err := Run(Config{RUs: 1, Latency: simtime.FromMs(4), Policy: policy.NewLRU()},
		dynlist.NewSequence(g, g))
	if err != nil {
		t.Fatal(err)
	}
	// On one unit, a two-task chain leaves task 2 resident; the second
	// instance must reload task 1 and task 2 alike except task... task 2
	// is resident but task 1 must evict it before it can run. Replaying:
	// reuse only possible for the head if resident. Never for this shape.
	if res.Reused > 1 {
		t.Errorf("implausible reuse count %d on single unit", res.Reused)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkConservation: the manager never idles the reconfiguration
// circuitry when a load could proceed — verified indirectly: the makespan
// with ample units equals first-load latency plus the critical path when
// no reuse is possible and loads fit in execution shadows.
func TestWorkConservation(t *testing.T) {
	g := workload.JPEG() // chain 17/14/31/17, critical path 79
	res, err := Run(Config{RUs: 4, Latency: simtime.FromMs(4), Policy: policy.NewLRU()},
		dynlist.NewSequence(g))
	if err != nil {
		t.Fatal(err)
	}
	// load 11 [0,4]; every later load hides under execution: makespan =
	// 4 + 79 = 83 ms.
	if want := simtime.FromMs(83); res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

// TestArrivalDuringExecution: a graph arriving mid-execution of another
// waits its turn (strictly sequential applications).
func TestArrivalDuringExecution(t *testing.T) {
	a := taskgraph.Chain("a", 1, simtime.FromMs(20))
	b := taskgraph.Chain("b", 11, simtime.FromMs(5))
	feed, err := dynlist.NewTimed([]dynlist.Item{
		{Graph: a, Arrival: 0},
		{Graph: b, Arrival: simtime.FromMs(10)}, // a still executing
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{RUs: 2, Latency: simtime.FromMs(4), Policy: policy.NewLRU(), RecordTrace: true}, feed)
	if err != nil {
		t.Fatal(err)
	}
	// a: load [0,4], exec [4,24]. b arrives at 10 but must wait; its load
	// may also not start before a completes: load [24,28], exec [28,33].
	if want := simtime.FromMs(33); res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	for _, l := range res.Trace.Loads {
		if l.Task == 11 && l.Start.Before(simtime.FromMs(24)) {
			t.Errorf("graph b's load started at %v, before graph a finished", l.Start)
		}
	}
}

// TestLatencyMonotonicity: increasing the reconfiguration latency never
// shortens the makespan.
func TestLatencyMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := randomWorkload(t, rng, 3, 8)
	var prev simtime.Time
	for _, lat := range []simtime.Time{0, simtime.FromMs(1), simtime.FromMs(4), simtime.FromMs(16)} {
		res, err := Run(Config{RUs: 3, Latency: lat, Policy: policy.NewLRU()},
			dynlist.NewSequence(seq...))
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan.Before(prev) {
			t.Errorf("latency %v: makespan %v shorter than with smaller latency (%v)",
				lat, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}
