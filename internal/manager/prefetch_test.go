package manager

import (
	"testing"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// TestCrossGraphPrefetchHidesBoundaryLoad: with the extension enabled the
// next graph's first load overlaps the running graph's tail execution.
//
// A = chain a1(2)→a2(2), B = chain b1(2)→b2(2), 4 units, 4 ms latency.
// Baseline: B's loads start at A's completion (t=10) ⇒ makespan 20 ms.
// With prefetch: b1 loads during a2's execution ⇒ makespan 18 ms.
func TestCrossGraphPrefetchHidesBoundaryLoad(t *testing.T) {
	a := taskgraph.Chain("a", 1, ms(2), ms(2))
	b := taskgraph.Chain("b", 11, ms(2), ms(2))
	base := Config{RUs: 4, Latency: ms(4), Policy: policy.NewLRU(), RecordTrace: true}

	plain := runValidated(t, base, a, b)
	if want := ms(20); plain.Makespan != want {
		t.Fatalf("baseline makespan = %v, want %v", plain.Makespan, want)
	}

	pf := base
	pf.CrossGraphPrefetch = true
	fetched := runValidated(t, pf, a, b)
	if want := ms(18); fetched.Makespan != want {
		t.Errorf("prefetch makespan = %v, want %v", fetched.Makespan, want)
	}
	if fetched.Preloads != 1 {
		t.Errorf("preloads = %d, want 1 (b1 only; b2 loads after B starts)", fetched.Preloads)
	}
}

// TestCrossGraphPrefetchPinsResidents: with a repeated template the
// preloader pins resident configurations instead of loading, and the
// second instance reuses everything.
func TestCrossGraphPrefetchPinsResidents(t *testing.T) {
	g := workload.Fig2TG1()
	cfg := Config{RUs: 4, Latency: ms(4), Policy: policy.NewLRU(),
		CrossGraphPrefetch: true, RecordTrace: true}
	res := runValidated(t, cfg, g, g)
	if res.Preloads != 0 {
		t.Errorf("preloads = %d, want 0 (everything resident)", res.Preloads)
	}
	if res.Reused != 3 {
		t.Errorf("reused = %d, want 3", res.Reused)
	}
}

// TestCrossGraphPrefetchProtectsAgainstEviction: the pinned
// configurations of the upcoming graph must survive preloading of its
// missing ones even under unit pressure.
func TestCrossGraphPrefetchUnderPressure(t *testing.T) {
	// Three distinct 2-task chains on 2 units: every boundary must evict,
	// and the run must stay deadlock-free and valid.
	a := taskgraph.Chain("a", 1, ms(3), ms(3))
	b := taskgraph.Chain("b", 11, ms(3), ms(3))
	c := taskgraph.Chain("c", 21, ms(3), ms(3))
	cfg := Config{RUs: 2, Latency: ms(4), Policy: policy.NewLRU(),
		CrossGraphPrefetch: true, RecordTrace: true}
	res := runValidated(t, cfg, a, b, c, a)
	if res.Executed != 8 || res.Graphs != 4 {
		t.Fatalf("executed %d tasks in %d graphs", res.Executed, res.Graphs)
	}
}

// TestCrossGraphPrefetchNeverSlower: over the multimedia workload the
// extension must not lengthen the schedule (it only adds hiding
// opportunities) and should strictly help at moderate unit counts.
func TestCrossGraphPrefetchNeverSlower(t *testing.T) {
	seq := []*taskgraph.Graph{}
	pool := workload.Multimedia()
	for i := 0; i < 30; i++ {
		seq = append(seq, pool[i%3])
	}
	helped := false
	for _, rus := range []int{4, 6, 8} {
		base := Config{RUs: rus, Latency: ms(4), Policy: policy.NewLRU()}
		plain, err := Run(base, dynlist.NewSequence(seq...))
		if err != nil {
			t.Fatal(err)
		}
		pf := base
		pf.CrossGraphPrefetch = true
		fetched, err := Run(pf, dynlist.NewSequence(seq...))
		if err != nil {
			t.Fatal(err)
		}
		if fetched.Makespan.After(plain.Makespan) {
			t.Errorf("R=%d: prefetch lengthened makespan %v → %v",
				rus, plain.Makespan, fetched.Makespan)
		}
		if fetched.Makespan.Before(plain.Makespan) {
			helped = true
		}
	}
	if !helped {
		t.Error("prefetch never improved the makespan at any unit count")
	}
}

// TestCrossGraphPrefetchWithSkipEvents: the two mechanisms compose.
func TestCrossGraphPrefetchWithSkipEvents(t *testing.T) {
	cfg := Config{
		RUs: 4, Latency: ms(4), Policy: mustLocalLFD(t, 1),
		SkipEvents: true, Mobility: fig3Mobility,
		CrossGraphPrefetch: true, RecordTrace: true,
	}
	res := runValidated(t, cfg, workload.Fig3Sequence()...)
	// Prefetch may only improve on the 70 ms skip-events schedule.
	if res.Makespan.After(simtime.FromMs(70)) {
		t.Errorf("makespan = %v, want ≤ 70 ms", res.Makespan)
	}
	if res.Graphs != 3 {
		t.Errorf("graphs = %d, want 3", res.Graphs)
	}
}

// TestCrossGraphPrefetchLateArrivals: preloading must cope with an empty
// Dynamic List and with arrivals landing mid-execution.
func TestCrossGraphPrefetchLateArrivals(t *testing.T) {
	a := taskgraph.Chain("a", 1, ms(30))
	b := taskgraph.Chain("b", 11, ms(5))
	feed, err := dynlist.NewTimed([]dynlist.Item{
		{Graph: a, Arrival: 0},
		{Graph: b, Arrival: ms(10)}, // arrives while a executes; DL was empty before
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{RUs: 2, Latency: ms(4), Policy: policy.NewLRU(),
		CrossGraphPrefetch: true, RecordTrace: true}, feed)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(res.Templates); err != nil {
		t.Fatal(err)
	}
	// a: load [0,4] exec [4,34]. b arrives at 10, preloads [10,14], and
	// executes right at a's completion: [34,39].
	if want := ms(39); res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Preloads != 1 {
		t.Errorf("preloads = %d, want 1", res.Preloads)
	}
}

// TestConservativePrefetchPreservesReuse: the conservative prefetcher
// only displaces configurations the lookahead does not expect back, so
// with a window covering the workload's recurrence it keeps plain Local
// LFD's reuse while still using dead configurations (here: a one-shot
// graph's) to hide boundary loads. Greedy prefetch on the same workload
// sacrifices reuse.
func TestConservativePrefetchPreservesReuse(t *testing.T) {
	a := taskgraph.Chain("a", 1, ms(6), ms(6))
	b := taskgraph.Chain("b", 11, ms(6), ms(6))
	once := taskgraph.Chain("once", 21, ms(6), ms(6)) // never recurs: dead after its run
	seq := []*taskgraph.Graph{a, b, once, a, b, a, b, a, b}

	mk := func(prefetch, conservative bool) *Result {
		cfg := Config{
			RUs: 5, Latency: ms(4), Policy: mustLocalLFD(t, 4),
			CrossGraphPrefetch: prefetch, ConservativePrefetch: conservative,
			RecordTrace: true,
		}
		return runValidated(t, cfg, seq...)
	}
	plain := mk(false, false)
	greedy := mk(true, false)
	conserv := mk(true, true)

	if conserv.Reused < plain.Reused {
		t.Errorf("conservative prefetch lost reuse: %d < %d", conserv.Reused, plain.Reused)
	}
	if conserv.Makespan.After(plain.Makespan) {
		t.Errorf("conservative prefetch slowed the run: %v > %v", conserv.Makespan, plain.Makespan)
	}
	if conserv.Preloads == 0 {
		t.Error("conservative prefetch never preloaded anything (the one-shot graph's units were free)")
	}
	if greedy.Reused > conserv.Reused {
		t.Errorf("greedy should not out-reuse conservative: %d > %d", greedy.Reused, conserv.Reused)
	}
}
