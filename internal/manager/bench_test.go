package manager

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// BenchmarkEventLoop measures the steady-state hot loop on the paper's
// 500-application workload shape: a warm Runner re-simulating the whole
// sequence, reported per simulated event. Two custom metrics feed the CI
// budget gate (see .github/workflows/ci.yml):
//
//	ns/event     — wall time per processed simulator event
//	allocs/event — heap allocations per event; must be exactly 0
//
// The snapshot of the escaping Result is deliberately excluded (the
// unexported phases are driven directly): this benchmark isolates the
// loop the tests in reuse_test.go pin to zero allocations.
func BenchmarkEventLoop(b *testing.B) {
	pool := workload.Multimedia()
	feed, err := dynlist.RandomSequence(pool, 500, rand.New(rand.NewSource(20110516)))
	if err != nil {
		b.Fatal(err)
	}
	items := feed.Remaining()
	seq := make([]*taskgraph.Graph, len(items))
	for i, it := range items {
		seq[i] = it.Graph
	}
	local, err := policy.NewLocalLFD(1)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		pol  policy.Policy
	}{
		{"LRU", policy.NewLRU()},
		{"LocalLFD1", local},
		{"LFD", policy.NewLFD()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := Config{RUs: 4, Latency: workload.PaperLatency(), Policy: c.pol}
			run := dynlist.NewSequence(seq...)
			r := NewRunner()
			runOnce := func() uint64 {
				if err := r.Reset(cfg); err != nil {
					b.Fatal(err)
				}
				if err := r.start(run.Rewind()); err != nil {
					b.Fatal(err)
				}
				if err := r.loop(); err != nil {
					b.Fatal(err)
				}
				return r.engine.Popped()
			}
			runOnce() // warm the runner to its high-water mark
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			var events uint64
			for i := 0; i < b.N; i++ {
				events += runOnce()
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(events), "allocs/event")
		})
	}
}
