// Package storetest is the result-store conformance harness: a
// registry of every persistence backend (fs, mem, sqlite, http —
// the last over a live in-process control plane) and one
// shared suite of the behavioral properties the sweeps and CI gates
// pin — serve/miss accounting, schema invalidation, ElapsedHint
// survival across schema bumps, GC's keep-predicate, reopen
// persistence. A new backend is correct when it passes Conformance,
// not when it resembles the FS code; backend-parameterized tests
// elsewhere (internal/sweep's warm-run byte-identity, the experiments
// cross-backend merge) iterate Backends the same way.
//
// The package also holds the store-state manipulations that production
// code must never perform but several test sites need identically
// (StaleifySchema). It must not import internal/sweep: sweep's own
// tests iterate Backends, and the cycle would be immediate.
package storetest

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backendurl"
	"repro/internal/faultstore"
	"repro/internal/resultstore"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/simtime"
)

// EnvFilter is the environment variable the CI backend matrix sets to
// restrict the registry: a comma list of backend names ("fs", "mem",
// "sqlite", "fault", "http"). Empty or unset runs all of them.
const EnvFilter = "RTR_BACKEND"

// Backend is one registered store backend under test.
type Backend struct {
	// Name is the registry (and CI matrix) name: "fs", "mem",
	// "sqlite", "fault", "http".
	Name string
	// Open returns a fresh, empty store plus a reopen function that
	// opens a second handle over the same data with fresh counters —
	// what re-running a CLI against the same -store locator does.
	Open func(tb testing.TB) (s *resultstore.Store, reopen func(tb testing.TB) *resultstore.Store)
}

func registry() []Backend {
	return []Backend{
		{
			Name: "fs",
			Open: func(tb testing.TB) (*resultstore.Store, func(tb testing.TB) *resultstore.Store) {
				dir := tb.TempDir()
				s, err := resultstore.Open(dir)
				if err != nil {
					tb.Fatal(err)
				}
				return s, func(tb testing.TB) *resultstore.Store {
					s, err := resultstore.Open(dir)
					if err != nil {
						tb.Fatal(err)
					}
					return s
				}
			},
		},
		{
			Name: "mem",
			Open: func(tb testing.TB) (*resultstore.Store, func(tb testing.TB) *resultstore.Store) {
				s := resultstore.OpenMem()
				// The map dies with the process; "reopen" is a second
				// handle over the same backend — shared data, fresh
				// counters — exactly FromBackend's contract.
				return s, func(testing.TB) *resultstore.Store {
					return resultstore.FromBackend(s.Backend())
				}
			},
		},
		{
			Name: "sqlite",
			Open: func(tb testing.TB) (*resultstore.Store, func(tb testing.TB) *resultstore.Store) {
				path := filepath.Join(tb.TempDir(), "campaign.db")
				open := func(tb testing.TB) *resultstore.Store {
					s, err := resultstore.OpenSQLite(path)
					if err != nil {
						tb.Fatal(err)
					}
					return s
				}
				return open(tb), open
			},
		},
		{
			// fault runs the suite through the fault-injection decorator
			// (internal/faultstore) over mem, with seeded latency on every
			// backend call — pinning that each store property holds under
			// timing jitter. Latency only: the suite asserts exact counter
			// values, so destructive modes (scripted errors, torn writes)
			// live in the dedicated recovery tests instead.
			Name: "fault",
			Open: func(tb testing.TB) (*resultstore.Store, func(tb testing.TB) *resultstore.Store) {
				plan := faultstore.NewPlan(1).WithLatency(500 * time.Microsecond)
				b := faultstore.WrapStore(resultstore.NewMem(), plan)
				return resultstore.FromBackend(b), func(testing.TB) *resultstore.Store {
					return resultstore.FromBackend(b)
				}
			},
		},
		{
			// http runs the suite against a live control plane: the same
			// mem backend the "mem" entry tests, reached through the wire
			// client — pinning that the HTTP hop (auth, retries, NDJSON
			// enumeration) preserves every store property.
			Name: "http",
			Open: func(tb testing.TB) (*resultstore.Store, func(tb testing.TB) *resultstore.Store) {
				base, opts := HTTPCampaign(tb)
				open := func(tb testing.TB) *resultstore.Store {
					loc, err := backendurl.Parse("-store", base)
					if err != nil {
						tb.Fatal(err)
					}
					b, err := backendurl.NewHTTPStore(loc, opts)
					if err != nil {
						tb.Fatal(err)
					}
					return resultstore.FromBackend(b)
				}
				return open(tb), open
			},
		},
	}
}

// HTTPCampaign starts an in-process control plane (mem state root,
// bearer auth on) hosting one campaign, and returns the campaign's
// base URL plus the wire-client options that authenticate against it.
// Both conformance registries use it to run their suites over a live
// server; the server dies with the test.
func HTTPCampaign(tb testing.TB) (string, backendurl.HTTPOptions) {
	tb.Helper()
	const token = "conformance-token"
	srv, err := serve.New(serve.Config{State: "mem:", Token: token})
	if err != nil {
		tb.Fatal(err)
	}
	c, err := srv.Create(wire.Spec{V: wire.APIVersion, Kind: "suite"})
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(ts.Close)
	return ts.URL + "/c/" + c.ID(), backendurl.HTTPOptions{Token: token}
}

// Backends returns the registered backends, filtered by the EnvFilter
// environment variable when set. An unknown name in the filter is a
// test fatal — a typo in the CI matrix must fail loudly, not silently
// run nothing.
func Backends(tb testing.TB) []Backend {
	all := registry()
	filter := strings.TrimSpace(os.Getenv(EnvFilter))
	if filter == "" {
		return all
	}
	byName := make(map[string]Backend, len(all))
	for _, b := range all {
		byName[b.Name] = b
	}
	var out []Backend
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := byName[name]
		if !ok {
			tb.Fatalf("%s=%q: unknown backend %q (have fs, mem, sqlite, fault, http)", EnvFilter, filter, name)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		tb.Fatalf("%s=%q selects no backend", EnvFilter, filter)
	}
	return out
}

// StaleifySchema rewrites every entry in the store with an unservable
// schema version, keeping everything else (keys, recorded timings)
// intact — the state a store is in right after a
// resultstore.SchemaVersion bump, where every scenario must
// re-simulate but last run's measurements still feed dispatch-cost
// estimation (Store.ElapsedHint). Tests and benchmarks of that path
// share this one recipe so it cannot drift between them. It goes
// through the store's raw Backend, so it works on any of them.
func StaleifySchema(tb testing.TB, s *resultstore.Store) {
	tb.Helper()
	b := s.Backend()
	type pair struct {
		key  string
		data []byte
	}
	var entries []pair
	if _, err := b.Visit(func(key string, data []byte) error {
		entries = append(entries, pair{key, append([]byte(nil), data...)})
		return nil
	}); err != nil {
		tb.Fatal(err)
	}
	for _, e := range entries {
		var raw map[string]any
		if err := json.Unmarshal(e.data, &raw); err != nil {
			tb.Fatalf("staleify %s: %v", e.key, err)
		}
		raw["schema"] = resultstore.SchemaVersion + 1000
		out, err := json.Marshal(raw)
		if err != nil {
			tb.Fatal(err)
		}
		if err := b.Store(e.key, out); err != nil {
			tb.Fatal(err)
		}
	}
}

// Key derives a canonical-form 64-hex-char store key from a seed, for
// tests that need distinct well-formed keys without hashing anything.
func Key(seed byte) string {
	b := make([]byte, 0, 64)
	for i := 0; i < 64; i++ {
		b = append(b, "0123456789abcdef"[(int(seed)+i)%16])
	}
	return string(b)
}

// sampleEntry is a minimal servable entry (Put stamps schema and key).
func sampleEntry(scenario string) *resultstore.Entry {
	return &resultstore.Entry{
		Scenario: scenario,
		Run: &resultstore.Run{
			Makespan: simtime.FromMs(70), Executed: 15, Reused: 5, Loads: 10,
			Evictions: 6, Graphs: 3, Events: 42,
		},
	}
}

// Conformance runs every pinned store property against one backend.
// These are the semantics internal/resultstore.Store promises
// identically over any Backend; the suite is what licenses the CLIs to
// treat -store fs:/mem:/sqlite: as interchangeable.
func Conformance(t *testing.T, b Backend) {
	t.Run("RoundTripAndStats", func(t *testing.T) {
		s, _ := b.Open(t)
		key := Key(1)
		if _, ok := s.Get(key); ok {
			t.Fatal("hit on empty store")
		}
		want := sampleEntry("round-trip")
		if err := s.Put(key, want); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get(key)
		if !ok {
			t.Fatal("miss after Put")
		}
		if got.Schema != resultstore.SchemaVersion || got.Key != key {
			t.Errorf("entry stamped schema=%d key=%q", got.Schema, got.Key)
		}
		if !reflect.DeepEqual(got.Run, want.Run) || got.Scenario != want.Scenario {
			t.Errorf("round trip mutated the entry:\ngot  %+v\nwant %+v", got, want)
		}
		if hits, misses, puts := s.Stats(); hits != 1 || misses != 1 || puts != 1 {
			t.Errorf("stats = %d/%d/%d, want 1/1/1", hits, misses, puts)
		}
		line := s.SummaryLine()
		if !strings.Contains(line, "1 hits, 1 misses, 1 entries written") ||
			!strings.Contains(line, s.Dir()) {
			t.Errorf("summary line %q", line)
		}
	})

	t.Run("ProbeCountsHitsOnly", func(t *testing.T) {
		s, _ := b.Open(t)
		key := Key(2)
		if _, ok := s.Probe(key); ok {
			t.Fatal("Probe served from an empty store")
		}
		if err := s.Put(key, sampleEntry("probe")); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Probe(key); !ok {
			t.Fatal("Probe missed a fresh entry")
		}
		// The failed probe counted nothing; the serve is one hit.
		if hits, misses, _ := s.Stats(); hits != 1 || misses != 0 {
			t.Errorf("stats hits=%d misses=%d, want 1/0 — Probe must count hits only", hits, misses)
		}
	})

	t.Run("SchemaInvalidation", func(t *testing.T) {
		s, _ := b.Open(t)
		key := Key(3)
		e := sampleEntry("stale")
		e.ElapsedNS = 123456789
		if err := s.Put(key, e); err != nil {
			t.Fatal(err)
		}
		StaleifySchema(t, s)
		if _, ok := s.Get(key); ok {
			t.Error("stale-schema entry served as an outcome")
		}
		if _, ok := s.Probe(key); ok {
			t.Error("stale-schema entry served by Probe")
		}
		// The timing survives the bump — dispatch-cost estimation keeps
		// working through a full re-simulation.
		if d, ok := s.ElapsedHint(key); !ok || d.Nanoseconds() != 123456789 {
			t.Errorf("stale-schema hint = %v, %v; want the recorded timing", d, ok)
		}
		// GC reclaims it, and with it the hint.
		st, err := s.GC()
		if err != nil {
			t.Fatal(err)
		}
		if st.Kept != 0 || st.Removed != 1 {
			t.Errorf("gc kept %d removed %d, want 0/1", st.Kept, st.Removed)
		}
		if _, ok := s.ElapsedHint(key); ok {
			t.Error("hint served after GC removed the entry")
		}
	})

	t.Run("WrongKeyUnservable", func(t *testing.T) {
		s, _ := b.Open(t)
		key := Key(4)
		e := sampleEntry("moved")
		e.Schema = resultstore.SchemaVersion
		e.Key = Key(5) // recorded key disagrees with where it is filed
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Backend().Store(key, data); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Error("entry with mismatched key served")
		}
		if _, ok := s.ElapsedHint(key); ok {
			t.Error("hint served despite a key mismatch")
		}
		if st, err := s.GC(); err != nil || st.Removed != 1 || st.Kept != 0 {
			t.Errorf("gc = %+v, %v; want the mismatched entry removed", st, err)
		}
	})

	t.Run("UndecodableIsMissAndGCed", func(t *testing.T) {
		s, _ := b.Open(t)
		good, bad := Key(6), Key(7)
		if err := s.Put(good, sampleEntry("good")); err != nil {
			t.Fatal(err)
		}
		if err := s.Backend().Store(bad, []byte("{truncated")); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(bad); ok {
			t.Error("corrupt entry served")
		}
		st, err := s.GC()
		if err != nil {
			t.Fatal(err)
		}
		if st.Kept != 1 || st.Removed != 1 {
			t.Errorf("gc kept %d removed %d, want 1/1", st.Kept, st.Removed)
		}
		if _, ok := s.Get(good); !ok {
			t.Error("gc removed a valid entry")
		}
	})

	t.Run("MalformedKeysRejected", func(t *testing.T) {
		s, _ := b.Open(t)
		traversal := "__/" + Key(1)[3:] // right length, path separator inside
		for _, bad := range []string{"", "ab", "../../../../etc/passwd", traversal, Key(1) + "00"} {
			if err := s.Put(bad, sampleEntry("bad")); err == nil {
				t.Errorf("Put accepted malformed key %q", bad)
			}
			if _, ok := s.Get(bad); ok {
				t.Errorf("Get hit on malformed key %q", bad)
			}
		}
	})

	t.Run("OverwriteLastWins", func(t *testing.T) {
		s, _ := b.Open(t)
		key := Key(8)
		if err := s.Put(key, sampleEntry("first")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(key, sampleEntry("second")); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get(key)
		if !ok || got.Scenario != "second" {
			t.Fatalf("after overwrite got %+v, want the second entry", got)
		}
		// One key, one entry: the overwrite must not leave a duplicate.
		if st, err := s.GC(); err != nil || st.Kept != 1 || st.Removed != 0 {
			t.Errorf("gc after overwrite = %+v, %v; want exactly one kept entry", st, err)
		}
	})

	t.Run("ReopenSharesDataNotStats", func(t *testing.T) {
		s, reopen := b.Open(t)
		key := Key(9)
		e := sampleEntry("reopen")
		e.ElapsedNS = 55
		if err := s.Put(key, e); err != nil {
			t.Fatal(err)
		}
		s2 := reopen(t)
		if _, ok := s2.Get(key); !ok {
			t.Fatal("reopened handle missed the stored entry")
		}
		if d, ok := s2.ElapsedHint(key); !ok || d.Nanoseconds() != 55 {
			t.Errorf("reopened hint = %v, %v", d, ok)
		}
		if hits, misses, puts := s2.Stats(); hits != 1 || misses != 0 || puts != 0 {
			t.Errorf("reopened handle stats = %d/%d/%d, want fresh counters 1/0/0", hits, misses, puts)
		}
	})

	t.Run("ArtifactRoundTrip", func(t *testing.T) {
		s, _ := b.Open(t)
		key := Key(10)
		if _, ok := s.GetArtifact(key, "mobility-table", 1); ok {
			t.Fatal("artifact hit on empty store")
		}
		want := &resultstore.Artifact{
			Kind:        "mobility-table",
			KindVersion: 1,
			Label:       "conformance",
			Payload:     json.RawMessage(`{"graph":"jpeg","rus":4}`),
		}
		if err := s.PutArtifact(key, want); err != nil {
			t.Fatal(err)
		}
		got, ok := s.GetArtifact(key, "mobility-table", 1)
		if !ok {
			t.Fatal("artifact miss after PutArtifact")
		}
		if got.Schema != resultstore.ArtifactSchemaVersion || got.Key != key {
			t.Errorf("artifact stamped schema=%d key=%q", got.Schema, got.Key)
		}
		if got.Kind != want.Kind || got.KindVersion != want.KindVersion ||
			got.Label != want.Label || string(got.Payload) != string(want.Payload) {
			t.Errorf("artifact round trip mutated the entry:\ngot  %+v\nwant %+v", got, want)
		}
		// Wrong kind or version is a miss, never a cross-serve.
		if _, ok := s.GetArtifact(key, "other-kind", 1); ok {
			t.Error("artifact served under the wrong kind")
		}
		if _, ok := s.GetArtifact(key, "mobility-table", 2); ok {
			t.Error("artifact served under the wrong kind version")
		}
		if hits, misses, puts := s.ArtifactStats(); hits != 1 || misses != 3 || puts != 1 {
			t.Errorf("artifact stats = %d/%d/%d, want 1/3/1", hits, misses, puts)
		}
		// Artifact traffic stays off the result counters and vice versa.
		if hits, misses, puts := s.Stats(); hits+misses+puts != 0 {
			t.Errorf("artifact traffic leaked into result stats %d/%d/%d", hits, misses, puts)
		}
		if !strings.Contains(s.SummaryLine(), "artifacts: 1 hits, 3 misses, 1 written") {
			t.Errorf("summary line %q lacks the artifact digest", s.SummaryLine())
		}
	})

	t.Run("ArtifactResultMutualUnservability", func(t *testing.T) {
		s, _ := b.Open(t)
		rKey, aKey := Key(11), Key(12)
		if err := s.Put(rKey, sampleEntry("result")); err != nil {
			t.Fatal(err)
		}
		if err := s.PutArtifact(aKey, &resultstore.Artifact{
			Kind: "k", KindVersion: 1, Payload: json.RawMessage(`{}`),
		}); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(aKey); ok {
			t.Error("artifact served as a result")
		}
		if _, ok := s.GetArtifact(rKey, "k", 1); ok {
			t.Error("result served as an artifact")
		}
		if _, ok := s.ElapsedHint(aKey); ok {
			t.Error("artifact served an elapsed hint")
		}
	})

	t.Run("ArtifactSurvivesResultGC", func(t *testing.T) {
		s, _ := b.Open(t)
		rKey, aKey := Key(13), Key(14)
		if err := s.Put(rKey, sampleEntry("doomed")); err != nil {
			t.Fatal(err)
		}
		if err := s.PutArtifact(aKey, &resultstore.Artifact{
			Kind: "k", KindVersion: 1, Payload: json.RawMessage(`{}`),
		}); err != nil {
			t.Fatal(err)
		}
		// A result-schema bump staleifies the result but not the
		// artifact: artifact servability keys off "artifact_schema",
		// which StaleifySchema leaves alone.
		StaleifySchema(t, s)
		st, err := s.GC()
		if err != nil {
			t.Fatal(err)
		}
		if st.Kept != 1 || st.Removed != 1 {
			t.Errorf("gc kept %d removed %d, want the artifact kept and the stale result removed", st.Kept, st.Removed)
		}
		if _, ok := s.GetArtifact(aKey, "k", 1); !ok {
			t.Error("artifact lost across a result-schema GC")
		}
		// A mangled artifact (empty kind) is unservable junk and goes.
		if err := s.Backend().Store(aKey, []byte(`{"artifact_schema":1,"key":"`+aKey+`","kind":"","payload":{}}`)); err != nil {
			t.Fatal(err)
		}
		if st, err := s.GC(); err != nil || st.Removed != 1 {
			t.Errorf("gc = %+v, %v; want the mangled artifact removed", st, err)
		}
	})

	t.Run("ArtifactReopenPersists", func(t *testing.T) {
		s, reopen := b.Open(t)
		key := Key(15)
		if err := s.PutArtifact(key, &resultstore.Artifact{
			Kind: "k", KindVersion: 3, Payload: json.RawMessage(`{"v":1}`),
		}); err != nil {
			t.Fatal(err)
		}
		s2 := reopen(t)
		got, ok := s2.GetArtifact(key, "k", 3)
		if !ok || string(got.Payload) != `{"v":1}` {
			t.Fatalf("reopened handle artifact = %+v, %v", got, ok)
		}
		if hits, misses, puts := s2.ArtifactStats(); hits != 1 || misses != 0 || puts != 0 {
			t.Errorf("reopened artifact stats = %d/%d/%d, want fresh counters 1/0/0", hits, misses, puts)
		}
	})

	t.Run("ConcurrentPutGet", func(t *testing.T) {
		s, _ := b.Open(t)
		const workers = 8
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				key := Key(byte(100 + w))
				if err := s.Put(key, sampleEntry(fmt.Sprintf("worker %d", w))); err != nil {
					errs <- err
					return
				}
				if _, ok := s.Get(key); !ok {
					errs <- fmt.Errorf("worker %d missed its own write", w)
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if _, _, puts := s.Stats(); puts != workers {
			t.Errorf("puts = %d, want %d", puts, workers)
		}
	})
}
