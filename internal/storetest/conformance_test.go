package storetest

import "testing"

// TestConformance runs the shared suite against every registered
// backend (honoring the RTR_BACKEND filter the CI matrix sets).
func TestConformance(t *testing.T) {
	for _, b := range Backends(t) {
		t.Run(b.Name, func(t *testing.T) { Conformance(t, b) })
	}
}
