// Package cliflags registers the campaign flag set shared by
// cmd/rtrrepro and cmd/rtrsim — the -store/-coord/-shard/-merge
// surface plus the wire-client flags for http(s) locators — and
// resolves it into one campaign.Setup. The ~15 registrations and the
// mode-exclusion checks used to be duplicated per CLI; keeping them
// here means a new flag (or a new backend scheme) lands once and both
// CLIs agree on every error message.
package cliflags

import (
	"errors"
	"flag"
	"os"
	"time"

	"repro/internal/backendurl"
	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/resultstore"
	"repro/internal/sweep"
)

// CampaignFlags holds the raw flag values between Register and
// Resolve.
type CampaignFlags struct {
	Store   string
	NoStore bool
	StoreGC bool

	Shard string
	Merge bool
	Watch bool

	Parallel int
	Retries  int

	Coord        string
	CoordShards  int
	CoordWorkers int
	LeaseTTL     time.Duration
	Heartbeat    time.Duration
	CoordStatus  bool

	AuthToken   string
	HTTPTimeout time.Duration
}

// Register installs the shared campaign flags on fs and returns the
// struct Resolve reads after fs.Parse.
func Register(fs *flag.FlagSet) *CampaignFlags {
	f := &CampaignFlags{}
	fs.StringVar(&f.Store, "store", os.Getenv("RTR_STORE"),
		"persisted result store locator: a directory (or fs:DIR), mem:, sqlite:FILE.db, or an rtrserved campaign http(s)://HOST:PORT/c/ID (default: $RTR_STORE); re-runs serve unchanged scenarios from the store")
	fs.BoolVar(&f.NoStore, "no-store", false, "disable the result store even when -store/$RTR_STORE is set")
	fs.BoolVar(&f.StoreGC, "store-gc", false, "garbage-collect the result store (stale-schema and corrupt entries) and exit")
	fs.StringVar(&f.Shard, "shard", "", "run only shard i/N of the sweep grid into -store (e.g. \"0/2\"); renders no report")
	fs.BoolVar(&f.Merge, "merge-report", false, "render the report purely from -store (populated by N -shard runs); a missing grid scenario is an error")
	fs.BoolVar(&f.Watch, "watch", false, "with -coord and -merge-report: block until the pool drains, rendering each report row the moment its scenarios are stored (per-shard progress on stderr); a pool dead past its lease TTL errors instead of hanging")
	fs.IntVar(&f.Parallel, "parallel", 0, "concurrently simulated scenarios (0 = one per CPU; reports are identical at any setting)")
	fs.IntVar(&f.Retries, "max-scenario-retries", 0, "per-scenario retry budget: rerun a failing scenario up to this many extra times with jittered exponential backoff before failing the sweep; attempt metadata is recorded in the store entry")
	fs.StringVar(&f.Coord, "coord", "",
		"shard coordinator state locator (a directory, fs:DIR, mem:, sqlite:FILE.db, or an rtrserved campaign http(s)://HOST:PORT/c/ID): claim, heartbeat and re-lease shards from a self-healing pool into -store; every host runs this same command")
	fs.IntVar(&f.CoordShards, "coord-shards", 0, "total shard count for the -coord pool; the first worker persists it, later workers may omit it (0) or must agree")
	fs.IntVar(&f.CoordWorkers, "coord-workers", 1, "concurrent shard-claim loops inside this process")
	fs.DurationVar(&f.LeaseTTL, "lease-ttl", 0, "coordinator lease expiry: a shard whose worker misses heartbeats this long is re-leased and re-run (0: adopt the pool's TTL, "+coord.DefaultLeaseTTL.String()+" when initialising; a non-zero mismatch with the pool is refused)")
	fs.DurationVar(&f.Heartbeat, "heartbeat", 0, "coordinator heartbeat interval (0: a quarter of -lease-ttl)")
	fs.BoolVar(&f.CoordStatus, "coord-status", false, "print the -coord pool's per-shard state (done/leased/pending, owner, attempts) and exit")
	fs.StringVar(&f.AuthToken, "auth-token", os.Getenv("RTR_TOKEN"),
		"bearer token sent with http(s) -store/-coord locators (default: $RTR_TOKEN)")
	fs.DurationVar(&f.HTTPTimeout, "http-timeout", time.Minute, "per-request timeout for http(s) -store/-coord locators")
	return f
}

// Resolve opens the backends and enforces the mode exclusions. The
// error messages are shared verbatim by both CLIs (several are pinned
// by tests and CI greps).
func (f *CampaignFlags) Resolve() (campaign.Setup, error) {
	s := campaign.Setup{
		StoreGC:     f.StoreGC,
		CoordStatus: f.CoordStatus,
		Merge:       f.Merge,
		Watch:       f.Watch,
		Parallel:    f.Parallel,
		Retries:     f.Retries,
		HTTP:        backendurl.HTTPOptions{Token: f.AuthToken, Timeout: f.HTTPTimeout},
	}
	store, err := resultstore.OpenIfSet(f.Store, f.NoStore, s.HTTP)
	if err != nil {
		return s, err
	}
	s.Store = store
	if f.StoreGC {
		return s, nil // GC runs against s.Store (nil is RunGC's own error)
	}
	if f.CoordStatus && f.Coord == "" {
		return s, errors.New("-coord-status needs a coordinator directory (-coord DIR)")
	}
	if f.Coord != "" {
		back, err := coord.OpenBackend("-coord", f.Coord, s.HTTP)
		if err != nil {
			return s, err
		}
		s.Coord = &campaign.Coord{
			Backend: back, Locator: f.Coord,
			Shards: f.CoordShards, Workers: f.CoordWorkers,
			LeaseTTL: f.LeaseTTL, Heartbeat: f.Heartbeat,
		}
	}
	if f.CoordStatus {
		return s, nil
	}
	if f.Watch && (f.Coord == "" || !f.Merge) {
		return s, errors.New("-watch needs both -coord DIR and -merge-report: it renders from the store while the pool populates it")
	}
	if f.Coord != "" {
		if f.Shard != "" {
			return s, errors.New("-coord leases shards by itself — drop -shard")
		}
		if s.Store == nil {
			return s, errors.New("-coord needs a result store (-store DIR or $RTR_STORE)")
		}
	}
	if f.Shard != "" {
		sh, err := sweep.ParseShard(f.Shard)
		if err != nil {
			return s, err
		}
		if f.Merge {
			return s, errors.New("-shard and -merge-report are mutually exclusive (populate first, merge after)")
		}
		if s.Store == nil {
			return s, errors.New("-shard needs a result store (-store DIR or $RTR_STORE)")
		}
		s.Shard, s.HasShard = sh, true
	}
	if f.Merge && s.Store == nil {
		return s, errors.New("-merge-report needs a result store (-store DIR or $RTR_STORE)")
	}
	return s, nil
}
