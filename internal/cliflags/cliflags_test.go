package cliflags

import (
	"flag"
	"testing"
	"time"
)

// parse builds a CampaignFlags through a real FlagSet, exactly the way
// the CLIs do, so flag names and defaults are covered too.
func parse(t *testing.T, args ...string) (*CampaignFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse(%v): %v", args, err)
	}
	// Keep the environment out of the table: tests pin explicit flags.
	if !given(args, "-store") {
		f.Store = ""
	}
	if !given(args, "-auth-token") {
		f.AuthToken = ""
	}
	_, err := f.Resolve()
	return f, err
}

func given(args []string, name string) bool {
	for _, a := range args {
		if a == name || len(a) > len(name) && a[:len(name)+1] == name+"=" {
			return true
		}
	}
	return false
}

// TestResolveModeExclusionErrors pins every mode-exclusion message both
// CLIs share verbatim — EXPERIMENTS.md quotes several of these and
// operators grep for them, so a reworded message is a breaking change.
func TestResolveModeExclusionErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"coord-status without coord",
			[]string{"-coord-status"},
			"-coord-status needs a coordinator directory (-coord DIR)"},
		{"watch without coord",
			[]string{"-watch", "-merge-report", "-store", dir + "/s"},
			"-watch needs both -coord DIR and -merge-report: it renders from the store while the pool populates it"},
		{"watch without merge",
			[]string{"-watch", "-coord", dir + "/c", "-store", dir + "/s"},
			"-watch needs both -coord DIR and -merge-report: it renders from the store while the pool populates it"},
		{"coord with manual shard",
			[]string{"-coord", dir + "/c", "-shard", "0/2", "-store", dir + "/s"},
			"-coord leases shards by itself — drop -shard"},
		{"coord without store",
			[]string{"-coord", dir + "/c"},
			"-coord needs a result store (-store DIR or $RTR_STORE)"},
		{"shard with merge",
			[]string{"-shard", "0/2", "-merge-report", "-store", dir + "/s"},
			"-shard and -merge-report are mutually exclusive (populate first, merge after)"},
		{"shard without store",
			[]string{"-shard", "0/2"},
			"-shard needs a result store (-store DIR or $RTR_STORE)"},
		{"merge without store",
			[]string{"-merge-report"},
			"-merge-report needs a result store (-store DIR or $RTR_STORE)"},
		{"unknown store scheme",
			[]string{"-store", "ftp:thing"},
			`-store: unknown backend scheme "ftp" (registered schemes: fs:, mem:, sqlite:, http:, https:)`},
		{"unknown coord scheme",
			[]string{"-coord", "ftp:thing", "-store", dir + "/s"},
			`-coord: unknown backend scheme "ftp" (registered schemes: fs:, mem:, sqlite:, http:, https:)`},
		{"http store missing host",
			[]string{"-store", "http:"},
			"-store: http: missing host (want http://HOST:PORT/c/ID)"},
		{"bad shard syntax",
			[]string{"-shard", "2/2", "-store", dir + "/s"},
			`-shard "2/2": index 2 outside 0..1 (want 0 ≤ i < N)`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parse(t, c.args...)
			if err == nil {
				t.Fatalf("Resolve(%v) succeeded, want %q", c.args, c.want)
			}
			if err.Error() != c.want {
				t.Fatalf("Resolve(%v) error:\n got %q\nwant %q", c.args, err, c.want)
			}
		})
	}
}

// TestResolveOpensEveryScheme: each registered locator scheme resolves
// into an opened backend for both -store and -coord (http(s) clients
// are lazy — no server needs to listen for Resolve to succeed).
func TestResolveOpensEveryScheme(t *testing.T) {
	dir := t.TempDir()
	stores := map[string]string{
		"bare path": dir + "/bare",
		"fs":        "fs:" + dir + "/fs",
		"mem":       "mem:",
		"sqlite":    "sqlite:" + dir + "/c.db",
		"http":      "http://127.0.0.1:1/c/x",
		"https":     "https://127.0.0.1:1/c/x",
	}
	for name, loc := range stores {
		t.Run("store/"+name, func(t *testing.T) {
			f, err := parse(t, "-store", loc)
			if err != nil {
				t.Fatalf("Resolve(-store %s): %v", loc, err)
			}
			s, err := f.Resolve()
			if err != nil || s.Store == nil {
				t.Fatalf("re-Resolve: store nil or %v", err)
			}
		})
		t.Run("coord/"+name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			f := Register(fs)
			if err := fs.Parse([]string{"-coord", loc, "-store", "mem:", "-coord-shards", "2"}); err != nil {
				t.Fatal(err)
			}
			f.AuthToken = ""
			s, err := f.Resolve()
			if err != nil {
				t.Fatalf("Resolve(-coord %s): %v", loc, err)
			}
			if s.Coord == nil || s.Coord.Backend == nil {
				t.Fatal("coord backend not opened")
			}
			if s.Coord.Shards != 2 || s.Coord.Workers != 1 {
				t.Fatalf("coord settings %d shards / %d workers, want 2 / 1", s.Coord.Shards, s.Coord.Workers)
			}
		})
	}
}

// TestResolveStoreSwitches: -no-store wins over -store, and the retry
// budget plus wire options thread into the Setup.
func TestResolveStoreSwitches(t *testing.T) {
	f, err := parse(t, "-store", "mem:", "-no-store")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := f.Resolve(); s.Store != nil {
		t.Fatal("-no-store did not disable the store")
	}

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f2 := Register(fs)
	if err := fs.Parse([]string{"-store", "mem:", "-max-scenario-retries", "4",
		"-auth-token", "tok", "-http-timeout", "5s", "-parallel", "3"}); err != nil {
		t.Fatal(err)
	}
	s, err := f2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Retries != 4 || s.Parallel != 3 {
		t.Fatalf("Setup retries=%d parallel=%d, want 4 and 3", s.Retries, s.Parallel)
	}
	if s.HTTP.Token != "tok" || s.HTTP.Timeout != 5*time.Second {
		t.Fatalf("Setup HTTP = %+v, want token tok, timeout 5s", s.HTTP)
	}
}
