package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sweep"
)

type memCks map[string][]byte

func (m memCks) LoadCheckpoint(name string) ([]byte, bool) {
	d, ok := m[name]
	return d, ok
}

func (m memCks) SaveCheckpoint(name string, data []byte) error {
	m[name] = append([]byte(nil), data...)
	return nil
}

func TestMergeOffsetRoundTrip(t *testing.T) {
	cks := memCks{}
	if got := LoadMergeOffset(cks, "fp"); got != 0 {
		t.Fatalf("missing checkpoint loads offset %d, want 0", got)
	}
	SaveMergeOffset(cks, "fp", 42)
	if got := LoadMergeOffset(cks, "fp"); got != 42 {
		t.Fatalf("offset round-trip = %d, want 42", got)
	}
	if got := LoadMergeOffset(cks, "other-campaign"); got != 0 {
		t.Fatalf("foreign fingerprint loads offset %d, want 0", got)
	}
	SaveMergeOffset(cks, "fp", 0) // completed merge resets
	if got := LoadMergeOffset(cks, "fp"); got != 0 {
		t.Fatalf("reset offset = %d, want 0", got)
	}
	if err := cks.SaveCheckpoint(MergeCheckpointName, []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	if got := LoadMergeOffset(cks, "fp"); got != 0 {
		t.Fatalf("damaged checkpoint loads offset %d, want 0", got)
	}
	cp := sweep.Checkpoint{Fingerprint: "fp", Offset: -7}
	if err := cks.SaveCheckpoint(MergeCheckpointName, cp.Encode()); err != nil {
		t.Fatal(err)
	}
	if got := LoadMergeOffset(cks, "fp"); got != 0 {
		t.Fatalf("negative offset loads as %d, want 0", got)
	}
}

// TestCheckpointedWriterReassembly is the byte-identity property the
// merge-resume CI gate asserts end to end: for EVERY possible kill
// point R, truncating the dead merge's output at R and appending a
// resumed render (same deterministic stream, Resume=R) reproduces the
// plain report exactly — across write-call boundaries, mid-chunk and
// at the ends.
func TestCheckpointedWriterReassembly(t *testing.T) {
	chunks := []string{"workload  fig9\n", "", "row 1 | 42.5\n", "x", "yz\n", "footer"}
	full := strings.Join(chunks, "")
	for r := 0; r <= len(full); r++ {
		var buf bytes.Buffer
		var saves []int64
		w := &CheckpointedWriter{W: &buf, Resume: int64(r),
			Save: func(total int64) { saves = append(saves, total) }}
		for _, c := range chunks {
			n, err := w.Write([]byte(c))
			if err != nil || n != len(c) {
				t.Fatalf("resume %d: Write(%q) = %d, %v", r, c, n, err)
			}
		}
		if got := full[:r] + buf.String(); got != full {
			t.Fatalf("resume %d: reassembled %q, want %q", r, got, full)
		}
		if w.Total() != int64(len(full)) {
			t.Fatalf("resume %d: Total() = %d, want %d", r, w.Total(), len(full))
		}
		if len(saves) != len(chunks) || saves[len(saves)-1] != int64(len(full)) {
			t.Fatalf("resume %d: saves %v, want one per write ending at %d", r, saves, len(full))
		}
		for i := 1; i < len(saves); i++ {
			if saves[i] < saves[i-1] {
				t.Fatalf("resume %d: checkpoint went backwards: %v", r, saves)
			}
		}
	}
}

// failAfter errors once limit bytes have been accepted.
type failAfter struct {
	limit int
	n     int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n+len(p) > f.limit {
		take := f.limit - f.n
		f.n = f.limit
		return take, fmt.Errorf("failAfter: disk full")
	}
	f.n += len(p)
	return len(p), nil
}

// TestCheckpointedWriterErrorAccounting: on a downstream write error
// the reported count covers the suppressed prefix plus what landed,
// and the checkpoint is NOT advanced past the failure.
func TestCheckpointedWriterErrorAccounting(t *testing.T) {
	var saves []int64
	w := &CheckpointedWriter{W: &failAfter{limit: 4}, Resume: 2,
		Save: func(total int64) { saves = append(saves, total) }}
	n, err := w.Write([]byte("0123456789")) // 2 suppressed, 8 attempted, 4 land
	if err == nil {
		t.Fatal("downstream error not surfaced")
	}
	if n != 6 {
		t.Fatalf("short write reported n=%d, want 6 (2 suppressed + 4 landed)", n)
	}
	if len(saves) != 0 {
		t.Fatalf("checkpoint advanced to %v across a failed write", saves)
	}
}
