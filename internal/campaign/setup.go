package campaign

import (
	"time"

	"repro/internal/backendurl"
	"repro/internal/coord"
	"repro/internal/resultstore"
	"repro/internal/sweep"
)

// Setup is the resolved campaign flag set both CLIs share (see
// internal/cliflags.CampaignFlags.Resolve): backends opened, mode
// exclusions enforced, one struct the mains dispatch on.
type Setup struct {
	// Store is the opened result store, nil when unset or disabled.
	Store *resultstore.Store
	// StoreGC: garbage-collect the store and exit.
	StoreGC bool
	// CoordStatus: print the pool's per-shard state and exit.
	CoordStatus bool
	// Shard is the manual -shard i/N slice; HasShard says it was set.
	Shard    sweep.Shard
	HasShard bool
	// Merge renders purely from the store; Watch additionally blocks
	// on the coordinator pool, rendering rows as they land.
	Merge, Watch bool
	// Parallel is the scenario executor's worker count (0 = NumCPU).
	Parallel int
	// Retries is the per-scenario retry budget (-max-scenario-retries)
	// threaded into every scenario executor.
	Retries int
	// Coord carries the coordinator pool settings, nil without -coord.
	Coord *Coord
	// HTTP is the wire-client configuration applied to any http(s)
	// backend locator (token, per-request timeout).
	HTTP backendurl.HTTPOptions
}

// Coord is the resolved -coord* flag group.
type Coord struct {
	// Backend is the opened pool-state backend.
	Backend coord.Backend
	// Locator is the raw -coord value, for operator-facing messages.
	Locator string
	// Shards/Workers are -coord-shards and -coord-workers.
	Shards, Workers int
	// LeaseTTL/Heartbeat tune the lease protocol (0 = adopt/derive).
	LeaseTTL, Heartbeat time.Duration
}

// Config builds the coord.Config for this pool with the sweep
// fingerprint the caller computed from its full parameter set.
func (c *Coord) Config(fingerprint string) coord.Config {
	return coord.Config{
		Backend: c.Backend, Shards: c.Shards,
		LeaseTTL: c.LeaseTTL, Heartbeat: c.Heartbeat,
		Fingerprint: fingerprint,
	}
}

// StatusReport renders the -coord-status table (adopting the pool's
// persisted constants).
func (s *Setup) StatusReport() (string, error) {
	c, err := coord.Open(coord.Config{
		Backend: s.Coord.Backend, LeaseTTL: s.Coord.LeaseTTL, Heartbeat: s.Coord.Heartbeat,
	})
	if err != nil {
		return "", err
	}
	st, err := c.Status()
	if err != nil {
		return "", err
	}
	return st.Render(c.Dir()), nil
}
