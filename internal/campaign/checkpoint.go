package campaign

import (
	"io"

	"repro/internal/sweep"
)

// MergeCheckpointName keys the watch merge's render checkpoint in the
// pool's coordination backend. One watch merge per campaign at a time:
// concurrent merges would overwrite each other's offsets (each still
// renders a correct report; only a later resume could mispair a
// checkpoint with another merge's partial output).
const MergeCheckpointName = "merge"

// LoadMergeOffset returns the byte offset a previous watch merge of
// this campaign checkpointed — how much of the report it had already
// written when it died — or 0 when none exists (including after a
// completed merge, which resets the record so a deliberate re-render
// prints the full report).
func LoadMergeOffset(cks sweep.CheckpointStore, fingerprint string) int64 {
	cp, ok := sweep.LoadCheckpoint(cks, MergeCheckpointName, fingerprint)
	if !ok || cp.Offset < 0 {
		return 0
	}
	return cp.Offset
}

// SaveMergeOffset checkpoints the merge render position. Failures are
// ignored: checkpoints are an optimisation and the render must never
// fail on one.
func SaveMergeOffset(cks sweep.CheckpointStore, fingerprint string, offset int64) {
	cp := sweep.Checkpoint{Fingerprint: fingerprint, Offset: offset}
	_ = cks.SaveCheckpoint(MergeCheckpointName, cp.Encode())
}

// CheckpointedWriter makes a deterministic render resumable at byte
// granularity: it suppresses the first Resume bytes written through it
// (the prefix a previous merge already printed before it was killed)
// and reports each emitted position to Save, which persists it as the
// next resume point. Because the report stream is deterministic — a
// resumed merge re-renders from the store, pure serve hits — the
// suppressed prefix is byte-identical to what the dead merge printed,
// so `previous partial output truncated at the checkpointed offset` +
// `resumed output` reassembles the exact plain report. Save runs after
// the bytes are written, never before: the checkpoint may lag the
// output (a kill between write and save re-prints a little) but can
// never lead it (which would silently drop report bytes).
type CheckpointedWriter struct {
	W      io.Writer
	Resume int64
	// Save persists the total bytes rendered so far; nil disables
	// checkpointing (the writer then only suppresses).
	Save func(total int64)

	total int64
}

// Write implements io.Writer over the suppress-then-emit split.
func (w *CheckpointedWriter) Write(p []byte) (int, error) {
	prev := w.total
	w.total += int64(len(p))
	emit := p
	if prev < w.Resume {
		if w.total <= w.Resume {
			emit = nil
		} else {
			emit = p[w.Resume-prev:]
		}
	}
	if len(emit) > 0 {
		if n, err := w.W.Write(emit); err != nil {
			// Report how much of p really landed (the suppressed part
			// counts as written — it already exists in the dead merge's
			// output).
			return len(p) - len(emit) + n, err
		}
	}
	if w.Save != nil {
		w.Save(w.total)
	}
	return len(p), nil
}

// Total reports the bytes of report rendered through the writer,
// including the suppressed resume prefix.
func (w *CheckpointedWriter) Total() int64 { return w.total }
