// Package campaign is the shared campaign layer above the store and
// coordinator: the piece of the two CLIs that is the same sweep no
// matter where it runs — which experiments a suite selects, how a
// policy-grid table renders, how the -store/-coord flag set resolves
// into opened backends — plus the server-side renderer cmd/rtrserved
// injects into internal/serve (which cannot import sweep/experiments
// itself; see the serve package comment).
//
// The split keeps one source of truth for three consumers: rtrrepro,
// rtrsim (via internal/cliflags), and rtrserved's rows endpoint. A
// report rendered by the server over SSE is byte-identical to the one
// the CLI renders locally because both run these same functions.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/coord"
	"repro/internal/dynlist"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/simtime"
	"repro/internal/sweep"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// SelectExperiments resolves suite experiment ids: empty means the
// full suite. The error enumerates the known ids (both CLIs and the
// server validation path print it verbatim).
func SelectExperiments(ids []string) ([]experiments.Experiment, error) {
	if len(ids) == 0 {
		return experiments.All(), nil
	}
	var selected []experiments.Experiment
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q; known: %s", id, strings.Join(experiments.IDs(), ", "))
		}
		selected = append(selected, e)
	}
	return selected, nil
}

// BuildWorkload constructs a named workload sequence (fig2, fig3, or
// the seeded multimedia stream).
func BuildWorkload(name string, apps int, seed int64) ([]*taskgraph.Graph, error) {
	switch name {
	case "fig2":
		return workload.Fig2Sequence(), nil
	case "fig3":
		return workload.Fig3Sequence(), nil
	case "multimedia":
		feed, err := dynlist.RandomSequence(workload.Multimedia(), apps, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		items := feed.Remaining()
		seq := make([]*taskgraph.Graph, len(items))
		for i, it := range items {
			seq[i] = it.Graph
		}
		return seq, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want fig2, fig3 or multimedia)", name)
	}
}

// RenderSuite prints the rtrrepro report: the parameter header line
// followed by every selected experiment, in order.
func RenderSuite(opt experiments.Options, selected []experiments.Experiment, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "reproduction suite: seed %d, %d apps, RUs %v, latency %v\n",
		opt.Seed, opt.Apps, opt.RUs, opt.Latency); err != nil {
		return err
	}
	for _, e := range selected {
		if err := e.Run(opt, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// RenderSweepTable prints the rtrsim comparison table: the workload
// header, the column header, and one row per scenario in spec order,
// each the moment its scenario lands.
func RenderSweepTable(wl string, apps int, spec sweep.Spec, ex sweep.Executor, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "workload        %s (%d applications), latency %v, %d scenarios\n",
		wl, apps, spec.Latencies[0], spec.Size()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-30s %4s %10s %14s %12s %8s %8s\n",
		"policy", "RUs", "reuse %", "makespan", "remaining %", "loads", "skips"); err != nil {
		return err
	}
	rr := &sweep.RowRenderer{
		Emit: func(i int, rows []sweep.SummaryRow) error {
			row := rows[0]
			s := row.Summary
			_, err := fmt.Fprintf(w, "%-30s %4d %10.2f %14v %12.2f %8d %8d\n",
				s.PolicyName, row.Scenario.RUs, s.ReuseRate(), s.Makespan, s.RemainingOverheadPct(),
				s.Loads, row.Counters.Skips)
			return err
		},
	}
	if err := ex.Collect(spec, rr); err != nil {
		return err
	}
	return rr.Close()
}

// normalize fills a wire spec's zero values with the CLI defaults, so
// a minimal submission ({"kind":"suite"}) means what the bare CLI
// invocation means.
func normalize(s wire.Spec) wire.Spec {
	if s.Seed == 0 {
		s.Seed = 2011
	}
	if s.Apps <= 0 {
		s.Apps = 500
	}
	if len(s.RUs) == 0 {
		s.RUs = []int{4, 5, 6, 7, 8, 9, 10}
	}
	if s.LatencyMS <= 0 {
		s.LatencyMS = 4
	}
	if s.Workload == "" {
		s.Workload = "multimedia"
	}
	if len(s.Policies) == 0 {
		s.Policies = []string{"locallfd:1"}
	}
	return s
}

// plan turns a normalized wire spec into runnable pieces.
type plan struct {
	spec     wire.Spec
	selected []experiments.Experiment // suite
	wl       []*taskgraph.Graph       // sweep
	grid     sweep.Spec               // sweep
}

func buildPlan(s wire.Spec) (*plan, error) {
	s = normalize(s)
	p := &plan{spec: s}
	switch s.Kind {
	case "suite":
		selected, err := SelectExperiments(s.Only)
		if err != nil {
			return nil, err
		}
		p.selected = selected
	case "sweep":
		seq, err := BuildWorkload(s.Workload, s.Apps, s.Seed)
		if err != nil {
			return nil, err
		}
		policies, err := sweep.ParsePolicies(strings.Join(s.Policies, ","), s.Skip)
		if err != nil {
			return nil, err
		}
		if s.Prefetch {
			for i := range policies {
				policies[i].CrossGraphPrefetch = true
			}
		}
		p.wl = seq
		p.grid = sweep.Spec{
			Workloads: []sweep.Workload{{Seq: seq}},
			RUs:       s.RUs,
			Latencies: []simtime.Time{simtime.FromMs(s.LatencyMS)},
			Policies:  policies,
		}
		if err := p.grid.Cacheable(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("campaign spec kind %q (want suite or sweep)", s.Kind)
	}
	return p, nil
}

// CheckSpec vets a campaign submission without running anything: it
// is the serve.Config.Check hook, so a bad experiment id or policy
// string is refused at POST time, not at first render.
func CheckSpec(s wire.Spec) error {
	_, err := buildPlan(s)
	return err
}

// Render is the serve.Config.Rows hook: it renders the campaign's
// report into w — exactly the bytes the equivalent CLI merge prints
// locally — while the worker pool populates the store, blocking until
// the pool drains. The pool need not exist yet: like a CLI `-watch`
// merge, Render waits (here, ctx-aware) for the first worker to
// initialise it.
func Render(ctx context.Context, c *serve.Campaign, w io.Writer) error {
	p, err := buildPlan(c.Spec())
	if err != nil {
		return err
	}
	cfg := coord.Config{Backend: c.Coord()}
	for {
		if _, err := coord.Open(cfg); err == nil {
			break
		} else if !errors.Is(err, coord.ErrUninitialised) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
	}
	// The pool exists now, so MergeGate returns without blocking; its
	// progress lines are server-side noise, not report bytes.
	_, pw, poll, err := coord.MergeGate(cfg, true, io.Discard)
	if err != nil {
		return err
	}
	defer pw.Stop()
	wait := &sweep.StoreWait{Poll: poll, Done: pw.Done}
	store := c.Store()
	var renderErr error
	switch p.spec.Kind {
	case "suite":
		opt := experiments.Options{
			Seed:          p.spec.Seed,
			Apps:          p.spec.Apps,
			RUs:           p.spec.RUs,
			Latency:       simtime.FromMs(p.spec.LatencyMS),
			Parallel:      p.spec.Parallel,
			Store:         store,
			RequireStored: true,
			StoreWait:     wait,
		}
		renderErr = RenderSuite(opt, p.selected, w)
	case "sweep":
		ex := sweep.Executor{
			Workers:       p.spec.Parallel,
			Store:         store,
			RequireStored: true,
			StoreWait:     wait,
		}
		renderErr = RenderSweepTable(p.spec.Workload, len(p.wl), p.grid, ex, w)
	}
	if renderErr != nil {
		return renderErr
	}
	// Block until the pool drains: the last done records can trail the
	// store writes the report consumed.
	_, err = pw.Wait()
	return err
}
