package serve

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"

	"repro/internal/coord"
	"repro/internal/serve/wire"
)

// maxBodyBytes bounds any single store object or coordinator record.
// Report-scale sweep results are a few KB; the limit only exists so a
// confused client cannot exhaust the server.
const maxBodyBytes = 64 << 20

// Handler returns the server's routing table. Safe to share across
// listeners.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/campaigns", s.auth(s.handleCreate))
	mux.HandleFunc("GET /v1/campaigns/{id}/status", s.auth(s.handleStatus))
	mux.HandleFunc("GET /v1/campaigns/{id}/rows", s.auth(s.handleRows))
	mux.HandleFunc("GET /c/{id}/now", s.auth(s.handleNow))
	mux.HandleFunc("GET /c/{id}/store/o/{key}", s.auth(s.handleStoreGet))
	mux.HandleFunc("PUT /c/{id}/store/o/{key}", s.auth(s.handleStorePut))
	mux.HandleFunc("DELETE /c/{id}/store/o/{key}", s.auth(s.handleStoreDelete))
	mux.HandleFunc("GET /c/{id}/store/visit", s.auth(s.handleStoreVisit))
	mux.HandleFunc("GET /c/{id}/coord/k/{key...}", s.auth(s.handleCoordGet))
	mux.HandleFunc("PUT /c/{id}/coord/k/{key...}", s.auth(s.handleCoordPut))
	mux.HandleFunc("POST /c/{id}/coord/k/{key...}", s.auth(s.handleCoordCreate))
	mux.HandleFunc("GET /c/{id}/coord/list", s.auth(s.handleCoordList))
	return mux
}

// auth enforces the bearer token (constant-time compare) when one is
// configured.
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.Token == "" {
		return h
	}
	want := []byte("Bearer " + s.cfg.Token)
	return func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if len(got) != len(want) || subtle.ConstantTimeCompare(got, want) != 1 {
			s.error(w, http.StatusUnauthorized, "missing or wrong bearer token")
			return
		}
		h(w, r)
	}
}

func (s *Server) json(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Printf("serve: encode response: %v", err)
	}
}

func (s *Server) error(w http.ResponseWriter, code int, format string, args ...any) {
	s.json(w, code, wire.Error{V: wire.APIVersion, Message: fmt.Sprintf(format, args...)})
}

// campaign resolves the {id} path value, mapping unknown ids to 404.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) *Campaign {
	id := r.PathValue("id")
	c, err := s.Campaign(id)
	if errors.Is(err, fs.ErrNotExist) {
		s.error(w, http.StatusNotFound, "no campaign %q", id)
		return nil
	}
	if err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return nil
	}
	return c
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	spec, err := wire.DecodeSpec(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.error(w, http.StatusBadRequest, "%v", err)
		return
	}
	c, err := s.Create(spec)
	if err != nil {
		s.error(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.log.Printf("serve: campaign %s created (kind %s)", c.ID(), spec.Kind)
	s.json(w, http.StatusCreated, wire.Created{V: wire.APIVersion, ID: c.ID(), Path: "/c/" + c.ID()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	resp := wire.Status{V: wire.APIVersion, ID: camp.ID()}
	c, err := coord.Open(coord.Config{Backend: camp.Coord()})
	if errors.Is(err, coord.ErrUninitialised) {
		s.json(w, http.StatusOK, resp) // pool not formed yet: all zeroes
		return
	}
	if err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st, err := c.Status()
	if err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp.Initialised = true
	for _, sh := range st.Shards {
		resp.Shards = append(resp.Shards, wire.ShardStatus{
			Shard: sh.Shard, State: string(sh.State), Owner: sh.Owner, Attempts: sh.Attempts,
		})
	}
	resp.Done, _, _ = st.Counts()
	drained, derr := c.CheckDrained(st)
	resp.Drained = drained
	if derr != nil {
		resp.Dead = derr.Error()
	}
	s.json(w, http.StatusOK, resp)
}

// sseWriter turns each report chunk written by the renderer into one
// SSE row event, flushed immediately: concatenating the Text fields in
// Seq order reproduces the local report byte-for-byte.
type sseWriter struct {
	w   http.ResponseWriter
	f   http.Flusher
	seq int
}

func (sw *sseWriter) Write(p []byte) (int, error) {
	ev := wire.RowEvent{V: wire.APIVersion, Seq: sw.seq, Text: string(p)}
	sw.seq++
	if err := wire.WriteEvent(sw.w, "row", ev); err != nil {
		return 0, err
	}
	sw.f.Flush()
	return len(p), nil
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Rows == nil {
		s.error(w, http.StatusNotImplemented, "this server hosts backends only; it has no row renderer")
		return
	}
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	f, ok := w.(http.Flusher)
	if !ok {
		s.error(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	sw := &sseWriter{w: w, f: f}
	if err := s.cfg.Rows(r.Context(), camp, sw); err != nil {
		s.log.Printf("serve: campaign %s rows: %v", camp.ID(), err)
		_ = wire.WriteEvent(w, "error", wire.Error{V: wire.APIVersion, Message: err.Error()})
		f.Flush()
		return
	}
	_ = wire.WriteEvent(w, "done", wire.Status{V: wire.APIVersion, ID: camp.ID(), Drained: true})
	f.Flush()
}

func (s *Server) handleNow(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	s.json(w, http.StatusOK, wire.Now{UnixNano: camp.Coord().Now().UnixNano()})
}

// validStoreKey mirrors the store's own key shape (64 hex digits).
// The fs backend fans paths out on key prefixes, so the server must
// reject malformed keys before they reach a backend.
func validStoreKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// storeKey resolves and validates the {key} path value.
func (s *Server) storeKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if !validStoreKey(key) {
		s.error(w, http.StatusBadRequest, "malformed store key %q (want 64 hex digits)", key)
		return "", false
	}
	return key, true
}

func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	key, ok := s.storeKey(w, r)
	if !ok {
		return
	}
	data, ok := camp.store.Load(key)
	if !ok {
		s.error(w, http.StatusNotFound, "no object %s", key)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	key, ok := s.storeKey(w, r)
	if !ok {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.error(w, http.StatusBadRequest, "read object body: %v", err)
		return
	}
	if err := camp.store.Store(key, data); err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStoreDelete(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	key, ok := s.storeKey(w, r)
	if !ok {
		return
	}
	if err := camp.store.Delete(key); err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStoreVisit(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	junk, err := camp.store.Visit(func(key string, data []byte) error {
		return enc.Encode(wire.VisitLine{Key: key, Data: data})
	})
	if err != nil {
		// Headers are gone; ending the stream without the EOF trailer
		// is what tells the client the enumeration is incomplete.
		s.log.Printf("serve: campaign %s visit: %v", camp.ID(), err)
		return
	}
	_ = enc.Encode(wire.VisitLine{EOF: true, Junk: junk})
}

// validCoordKey vets a coordinator logical path ("coordinator.json",
// "shard-0007/gen-0001.claim"): short slash paths of conservative
// segments, so no backend ever sees traversal or absolute paths.
func validCoordKey(key string) bool {
	if key == "" || len(key) > 256 {
		return false
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
		for _, r := range seg {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
				r == '.', r == '_', r == '-':
			default:
				return false
			}
		}
	}
	return true
}

func (s *Server) coordKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if !validCoordKey(key) {
		s.error(w, http.StatusBadRequest, "malformed coordinator key %q", key)
		return "", false
	}
	return key, true
}

func (s *Server) handleCoordGet(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	key, ok := s.coordKey(w, r)
	if !ok {
		return
	}
	data, err := camp.coord.Get(key)
	if errors.Is(err, fs.ErrNotExist) {
		s.error(w, http.StatusNotFound, "no record %s", key)
		return
	}
	if err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Server) coordBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.error(w, http.StatusBadRequest, "read record body: %v", err)
		return nil, false
	}
	return data, true
}

func (s *Server) handleCoordPut(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	key, ok := s.coordKey(w, r)
	if !ok {
		return
	}
	data, ok := s.coordBody(w, r)
	if !ok {
		return
	}
	if err := camp.coord.Put(key, data); err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCoordCreate(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	key, ok := s.coordKey(w, r)
	if !ok {
		return
	}
	data, ok := s.coordBody(w, r)
	if !ok {
		return
	}
	err := camp.coord.Create(key, data)
	if errors.Is(err, fs.ErrExist) {
		s.error(w, http.StatusConflict, "record %s already exists", key)
		return
	}
	if err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleCoordList(w http.ResponseWriter, r *http.Request) {
	camp := s.campaign(w, r)
	if camp == nil {
		return
	}
	dir := r.URL.Query().Get("dir")
	if dir != "" && !validCoordKey(dir) {
		s.error(w, http.StatusBadRequest, "malformed coordinator prefix %q", dir)
		return
	}
	names, err := camp.coord.List(dir)
	if errors.Is(err, fs.ErrNotExist) {
		s.error(w, http.StatusNotFound, "no prefix %s", dir)
		return
	}
	if err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.json(w, http.StatusOK, wire.Names{Names: names})
}
