package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/backendurl"
	"repro/internal/campaign"
	"repro/internal/coord"
	"repro/internal/experiments"
	"repro/internal/resultstore"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

// TestServiceEndToEnd is the in-process version of the CI
// service-self-healing gate: a campaign submitted to a live control
// plane, populated by two workers running entirely over http backends,
// whose SSE row stream — collected while the workers run — must be
// byte-identical to the plain local report. This is the property that
// licenses `rtrrepro -store http://… -coord http://…` as a drop-in for
// directory locators.
func TestServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweeps in -short mode")
	}

	// The reference report: a plain single-process run, no store.
	exps, err := campaign.SelectExperiments([]string{"fig9b"})
	if err != nil {
		t.Fatal(err)
	}
	opt := experiments.Options{
		Seed: 2011, Apps: 40, RUs: []int{4, 5}, Latency: simtime.FromMs(4),
	}
	var plain bytes.Buffer
	if err := campaign.RenderSuite(opt, exps, &plain); err != nil {
		t.Fatal(err)
	}

	_, ts := newServer(t, serve.Config{
		Token: testToken,
		Rows:  campaign.Render,
		Check: campaign.CheckSpec,
	})

	// Submit the same campaign over the API.
	code, body := request(t, "POST", ts.URL+"/v1/campaigns",
		`{"api_version":1,"kind":"suite","only":["fig9b"],"seed":2011,"apps":40,"rus":[4,5],"latency_ms":4}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %s", code, body)
	}
	var created wire.Created
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	base := ts.URL + created.Path
	httpOpts := backendurl.HTTPOptions{Token: testToken}

	// Start the SSE watch first — like a CLI -watch merge, the renderer
	// must wait for the pool the workers have not formed yet.
	type sseResult struct {
		text string
		done bool
		err  error
	}
	sseCh := make(chan sseResult, 1)
	go func() {
		req, err := http.NewRequest("GET", ts.URL+"/v1/campaigns/"+created.ID+"/rows", nil)
		if err != nil {
			sseCh <- sseResult{err: err}
			return
		}
		req.Header.Set("Authorization", "Bearer "+testToken)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			sseCh <- sseResult{err: err}
			return
		}
		defer resp.Body.Close()
		var res sseResult
		var wantSeq int
		res.err = wire.ReadEvents(resp.Body, func(event string, data []byte) error {
			switch event {
			case "row":
				var row wire.RowEvent
				if err := json.Unmarshal(data, &row); err != nil {
					return err
				}
				if row.Seq != wantSeq {
					return fmt.Errorf("row seq %d, want %d", row.Seq, wantSeq)
				}
				wantSeq++
				res.text += row.Text
			case "done":
				res.done = true
			case "error":
				var e wire.Error
				if err := json.Unmarshal(data, &e); err != nil {
					return err
				}
				return fmt.Errorf("server rows error: %s", e.Message)
			}
			return nil
		})
		sseCh <- res
	}()

	// Two workers, each on its own wire handles — two hosts with no
	// shared filesystem.
	const shards = 4
	var wg sync.WaitGroup
	workerErrs := make(chan error, 2)
	for w := range 2 {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			loc, err := backendurl.Parse("-store", base)
			if err != nil {
				workerErrs <- err
				return
			}
			sb, err := backendurl.NewHTTPStore(loc, httpOpts)
			if err != nil {
				workerErrs <- err
				return
			}
			cb, err := backendurl.NewHTTPCoord(loc, httpOpts)
			if err != nil {
				workerErrs <- err
				return
			}
			c, err := coord.Open(coord.Config{
				Backend: cb, Shards: shards,
				Owner:    fmt.Sprintf("worker-%d", w),
				LeaseTTL: time.Minute,
			})
			if err != nil {
				workerErrs <- err
				return
			}
			popOpt := opt
			popOpt.Store = resultstore.FromBackend(sb)
			if _, err := c.RunWorkers(1, func(r coord.ShardRun) error {
				_, err := experiments.Populate(popOpt, exps, sweep.Shard{Index: r.Shard, Count: r.Count})
				return err
			}); err != nil {
				workerErrs <- err
			}
		}(w)
	}
	wg.Wait()
	close(workerErrs)
	for err := range workerErrs {
		t.Fatal(err)
	}

	select {
	case res := <-sseCh:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if !res.done {
			t.Fatal("SSE stream ended without the done event")
		}
		if res.text != plain.String() {
			t.Errorf("SSE report diverged from the plain local run:\n--- plain ---\n%s\n--- SSE ---\n%s", plain.String(), res.text)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("SSE stream did not finish")
	}

	// The status endpoint agrees the pool drained.
	code, body = request(t, "GET", ts.URL+"/v1/campaigns/"+created.ID+"/status", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d %s", code, body)
	}
	var st wire.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Initialised || !st.Drained || st.Done != shards || st.Dead != "" {
		t.Fatalf("post-drain status = %+v", st)
	}
}
