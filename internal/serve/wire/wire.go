// Package wire defines the versioned JSON message types spoken between
// rtrserved and its clients (the http: backend in internal/backendurl,
// curl users, and the conformance suites).
//
// The JSON encoding is the compatibility surface of the control plane,
// so it lives in its own importable package rather than as private
// structs inside the server. Every message carries an explicit
// api_version field; decoders reject versions this build does not
// speak with a message-pinned error so a v1 worker talking to a v9
// server fails loudly and nameably instead of mis-parsing.
package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// APIVersion is the protocol generation this build speaks. Bump it on
// any change that is not strictly additive (new optional fields are
// fine; renames, semantic changes, and removals are not).
const APIVersion = 1

// Spec is a declarative campaign submission: the CLI-shaped parameters
// of a sweep, not the in-process sweep.Spec (which holds graph
// pointers and policy constructors and cannot cross the wire). The
// server turns it back into a runnable plan via the renderer installed
// by cmd/rtrserved.
type Spec struct {
	V int `json:"api_version"`

	// Kind selects the plan family: "suite" runs the rtrrepro
	// experiment suite, "sweep" the rtrsim policy-grid table.
	Kind string `json:"kind"`

	Seed      int64   `json:"seed,omitempty"`
	Apps      int     `json:"apps,omitempty"`
	RUs       []int   `json:"rus,omitempty"`
	LatencyMS float64 `json:"latency_ms,omitempty"`
	Parallel  int     `json:"parallel,omitempty"`

	// Suite-only: experiment IDs to run (empty = all).
	Only []string `json:"only,omitempty"`

	// Sweep-only: workload name plus the policy grid switches.
	Workload string   `json:"workload,omitempty"`
	Policies []string `json:"policies,omitempty"`
	Skip     bool     `json:"skip,omitempty"`
	Prefetch bool     `json:"prefetch,omitempty"`
}

// Created is the response to POST /v1/campaigns.
type Created struct {
	V    int    `json:"api_version"`
	ID   string `json:"id"`
	Path string `json:"path"` // campaign base path on this server, e.g. /c/<id>
}

// ShardStatus mirrors coord.ShardStatus for the wire.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"` // pending | leased | expired | done
	Owner    string `json:"owner,omitempty"`
	Attempts int    `json:"attempts"`
}

// Status is the response to GET /v1/campaigns/{id}/status: the
// PoolWatch / CheckDrained verdicts plus the per-shard table.
type Status struct {
	V           int           `json:"api_version"`
	ID          string        `json:"id"`
	Initialised bool          `json:"initialised"`
	Shards      []ShardStatus `json:"shards,omitempty"`
	Done        int           `json:"done"`
	Drained     bool          `json:"drained"`
	// Dead is non-empty when the pool is wedged: every unfinished
	// shard has exhausted its lease with no live owner.
	Dead string `json:"dead,omitempty"`
}

// RowEvent is one SSE payload on GET /v1/campaigns/{id}/rows. Text is
// a verbatim chunk of the report stream; concatenating Text over Seq
// order reproduces the local report byte-for-byte.
type RowEvent struct {
	V    int    `json:"api_version"`
	Seq  int    `json:"seq"`
	Text string `json:"text"`
}

// VisitLine is one NDJSON record on GET {base}/store/visit. Data is
// base64 per encoding/json convention. The final line has EOF set and
// carries the backend's junk count instead of an object.
type VisitLine struct {
	Key  string `json:"key,omitempty"`
	Data []byte `json:"data,omitempty"`
	EOF  bool   `json:"eof,omitempty"`
	Junk int    `json:"junk,omitempty"`
}

// Names is the response to GET {base}/coord/list.
type Names struct {
	Names []string `json:"names"`
}

// Now is the response to GET {base}/now: the server pool clock.
type Now struct {
	UnixNano int64 `json:"unix_nano"`
}

// Error is the JSON error body for any non-2xx control-plane response.
type Error struct {
	V       int    `json:"api_version"`
	Message string `json:"error"`
}

// CheckVersion validates an api_version field pulled off the wire.
// The message names both sides so mixed deployments are diagnosable
// from either end.
func CheckVersion(got int, msg string) error {
	if got != APIVersion {
		return fmt.Errorf("wire: %s has api_version %d, this build speaks v%d", msg, got, APIVersion)
	}
	return nil
}

// DecodeSpec reads and validates a Spec submission.
func DecodeSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("wire: bad campaign spec: %v", err)
	}
	if err := CheckVersion(s.V, "campaign spec"); err != nil {
		return Spec{}, err
	}
	switch s.Kind {
	case "suite", "sweep":
	default:
		return Spec{}, fmt.Errorf("wire: campaign spec kind %q (want suite or sweep)", s.Kind)
	}
	return s, nil
}

// ReadVisit parses an NDJSON visit stream — one VisitLine per stored
// object, closed by the mandatory EOF trailer — invoking fn per record
// and returning the trailer's junk count. A stream that ends without
// the trailer is an error: a truncated enumeration must never look
// like a complete one to a GC sweep. Both sides of the wire share this
// decoder (the http: backend consumes it verbatim).
func ReadVisit(r io.Reader, fn func(key string, data []byte) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec VisitLine
		if err := json.Unmarshal(line, &rec); err != nil {
			return 0, fmt.Errorf("wire: visit stream: %v", err)
		}
		if rec.EOF {
			return rec.Junk, nil
		}
		if err := fn(rec.Key, rec.Data); err != nil {
			return 0, err
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("wire: visit stream truncated (no trailer)")
}

// WriteEvent emits one SSE frame: an optional event name, the JSON
// encoding of v as the data line, and the blank-line terminator.
func WriteEvent(w io.Writer, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if event != "" {
		if _, err := fmt.Fprintf(w, "event: %s\n", event); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// ReadEvents parses an SSE stream, invoking fn once per frame with the
// event name ("" when absent) and the raw data bytes. It returns when
// the stream ends or fn errors.
func ReadEvents(r io.Reader, fn func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	event, data, have := "", strings.Builder{}, false
	flush := func() error {
		if !have {
			return nil
		}
		err := fn(event, []byte(data.String()))
		event, have = "", false
		data.Reset()
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "event: "):
			event, have = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "data: "):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimPrefix(line, "data: "))
			have = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}
