package wire

import (
	"strings"
	"testing"
)

// TestDecodeSpecVersionPinned pins the unknown-version message: mixed
// deployments must be diagnosable from the error text alone.
func TestDecodeSpecVersionPinned(t *testing.T) {
	_, err := DecodeSpec(strings.NewReader(`{"api_version":9,"kind":"suite"}`))
	if err == nil {
		t.Fatal("future api_version accepted")
	}
	want := "wire: campaign spec has api_version 9, this build speaks v1"
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err.Error(), want)
	}
}

func TestDecodeSpecRejects(t *testing.T) {
	cases := map[string]string{
		`{"api_version":1,"kind":"dance"}`:           `wire: campaign spec kind "dance" (want suite or sweep)`,
		`{"api_version":1,"kind":"suite",}`:          "", // malformed JSON: message prefix only
		`{"api_version":1,"kind":"suite","bogus":3}`: "",
	}
	for raw, want := range cases {
		_, err := DecodeSpec(strings.NewReader(raw))
		if err == nil {
			t.Errorf("DecodeSpec(%s): want error", raw)
			continue
		}
		if want != "" && err.Error() != want {
			t.Errorf("DecodeSpec(%s) = %q, want %q", raw, err.Error(), want)
		}
		if want == "" && !strings.HasPrefix(err.Error(), "wire: bad campaign spec: ") {
			t.Errorf("DecodeSpec(%s) = %q, want wire: bad campaign spec prefix", raw, err.Error())
		}
	}
}

func TestDecodeSpecRoundTrip(t *testing.T) {
	s, err := DecodeSpec(strings.NewReader(
		`{"api_version":1,"kind":"sweep","workload":"fig2","rus":[4,6],"policies":["blind"],"skip":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "sweep" || s.Workload != "fig2" || len(s.RUs) != 2 || !s.Skip {
		t.Errorf("decoded spec %+v", s)
	}
}

// TestSSERoundTrip: frames written by WriteEvent come back through
// ReadEvents in order with event names intact.
func TestSSERoundTrip(t *testing.T) {
	var buf strings.Builder
	rows := []RowEvent{
		{V: APIVersion, Seq: 0, Text: "policy  RUs\n"},
		{V: APIVersion, Seq: 1, Text: "blind     4\n"},
	}
	for _, r := range rows {
		if err := WriteEvent(&buf, "row", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteEvent(&buf, "done", Status{V: APIVersion, Drained: true}); err != nil {
		t.Fatal(err)
	}
	var got []string
	err := ReadEvents(strings.NewReader(buf.String()), func(event string, data []byte) error {
		got = append(got, event)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "row" || got[2] != "done" {
		t.Errorf("events %v", got)
	}
}
