package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeMessage feeds arbitrary bytes to both wire decoders the
// control plane exposes to untrusted input: DecodeSpec (the campaign
// submission body) and ReadVisit (the NDJSON store enumeration the
// http: backend consumes). Malformed JSON, truncated streams, and
// junk-after-trailer must all come back as errors, never panics, and
// the invariants the callers rely on must hold whenever a decode
// succeeds. The checked-in corpus under testdata/fuzz pins the shapes
// found interesting so far; CI runs a short fuzz smoke on top.
func FuzzDecodeMessage(f *testing.F) {
	for _, seed := range []string{
		``,
		`{}`,
		`{"api_version":1,"kind":"suite"}`,
		`{"api_version":1,"kind":"sweep","workload":"fig2","policies":["lru"]}`,
		`{"api_version":9,"kind":"suite"}`,
		`{"api_version":1,"kind":"dance"}`,
		`{"api_version":1,"kind":"suite","bogus":true}`,
		`{"key":"a","data":"aGk="}` + "\n" + `{"eof":true,"junk":2}`,
		`{"eof":true}`,
		`{"key":"a","data":"aGk="}`, // truncated: no trailer
		"\n\n" + `{"eof":true,"junk":0}` + "\n",
		`{"key":"a","data":"!!!notbase64"}`,
		`{"key":"a"`, // torn mid-record
		`[1,2,3]`,
		`nonsense`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeSpec(bytes.NewReader(data)); err == nil {
			if s.V != APIVersion {
				t.Fatalf("DecodeSpec accepted api_version %d (build speaks v%d)", s.V, APIVersion)
			}
			if s.Kind != "suite" && s.Kind != "sweep" {
				t.Fatalf("DecodeSpec accepted kind %q", s.Kind)
			}
		}
		var records int
		junk, err := ReadVisit(bytes.NewReader(data), func(key string, data []byte) error {
			records++
			return nil
		})
		if err == nil && !bytes.Contains(data, []byte("eof")) {
			// A successful visit decode means the mandatory trailer was
			// present — a stream that never mentions eof cannot decode.
			t.Fatalf("ReadVisit succeeded (junk=%d, %d records) on a stream with no trailer: %q",
				junk, records, data)
		}
	})
}
