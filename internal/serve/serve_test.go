package serve_test

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/serve/wire"
)

const testToken = "serve-test-token"

// newServer starts a control plane over a mem state root and returns
// the live test server plus the serve.Server for direct calls.
func newServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.State == "" {
		cfg.State = "mem:"
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// request performs one authenticated call and returns the status code
// and body.
func request(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+testToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// errorMessage decodes a wire.Error body.
func errorMessage(t *testing.T, data []byte) string {
	t.Helper()
	var e wire.Error
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("not a wire error body: %v (%q)", err, data)
	}
	return e.Message
}

func TestCreateAndStatus(t *testing.T) {
	_, ts := newServer(t, serve.Config{Token: testToken})

	code, body := request(t, "POST", ts.URL+"/v1/campaigns", `{"api_version":1,"kind":"suite"}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %s", code, body)
	}
	var created wire.Created
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.V != wire.APIVersion || created.ID == "" || created.Path != "/c/"+created.ID {
		t.Fatalf("created = %+v", created)
	}

	// A fresh campaign's pool is not formed yet: status is all zeroes.
	code, body = request(t, "GET", ts.URL+"/v1/campaigns/"+created.ID+"/status", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d %s", code, body)
	}
	var st wire.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Initialised || st.Drained || st.Done != 0 || st.ID != created.ID {
		t.Fatalf("pre-pool status = %+v", st)
	}
}

func TestCreateRejections(t *testing.T) {
	_, ts := newServer(t, serve.Config{
		Token: testToken,
		Check: func(s wire.Spec) error {
			if len(s.Only) > 0 {
				return errors.New("no experiment filters here")
			}
			return nil
		},
	})
	cases := []struct {
		name, body, want string
	}{
		{"version", `{"api_version":9,"kind":"suite"}`,
			"wire: campaign spec has api_version 9, this build speaks v1"},
		{"kind", `{"api_version":1,"kind":"party"}`,
			`wire: campaign spec kind "party" (want suite or sweep)`},
		{"unknown field", `{"api_version":1,"kind":"suite","sneaky":true}`,
			"wire: bad campaign spec: "},
		{"malformed", `{"api_`, "wire: bad campaign spec: "},
		{"check hook", `{"api_version":1,"kind":"suite","only":["fig9a"]}`,
			"no experiment filters here"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := request(t, "POST", ts.URL+"/v1/campaigns", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("code = %d %s", code, body)
			}
			if msg := errorMessage(t, body); !strings.Contains(msg, tc.want) {
				t.Errorf("error %q does not contain %q", msg, tc.want)
			}
		})
	}
}

func TestAuth(t *testing.T) {
	srv, ts := newServer(t, serve.Config{Token: testToken})
	c, err := srv.Create(wire.Spec{V: wire.APIVersion, Kind: "suite"})
	if err != nil {
		t.Fatal(err)
	}
	urls := []string{
		ts.URL + "/v1/campaigns/" + c.ID() + "/status",
		ts.URL + "/c/" + c.ID() + "/now",
		ts.URL + "/c/" + c.ID() + "/store/visit",
		ts.URL + "/c/" + c.ID() + "/coord/k/coordinator.json",
	}
	for _, u := range urls {
		for _, hdr := range []string{"", "Bearer wrong"} {
			req, _ := http.NewRequest("GET", u, nil)
			if hdr != "" {
				req.Header.Set("Authorization", hdr)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Errorf("GET %s auth %q = %d, want 401", u, hdr, resp.StatusCode)
			}
			if msg := errorMessage(t, body); msg != "missing or wrong bearer token" {
				t.Errorf("auth error %q", msg)
			}
		}
	}
	// The liveness probe stays open.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d without auth, want 200", resp.StatusCode)
	}
}

func TestUnknownCampaign(t *testing.T) {
	_, ts := newServer(t, serve.Config{Token: testToken})
	for _, u := range []string{
		"/v1/campaigns/deadbeef/status",
		"/c/deadbeef/now",
		"/c/deadbeef/store/o/" + strings.Repeat("a", 64),
		"/c/deadbeef/coord/k/coordinator.json",
		"/c/ZZ/now", // invalid id shape is the same 404, not a 500
	} {
		code, body := request(t, "GET", ts.URL+u, "")
		if code != http.StatusNotFound {
			t.Errorf("GET %s = %d %s, want 404", u, code, body)
		}
		if msg := errorMessage(t, body); !strings.Contains(msg, "no campaign") {
			t.Errorf("GET %s error %q", u, msg)
		}
	}
}

func TestKeyValidation(t *testing.T) {
	srv, ts := newServer(t, serve.Config{Token: testToken})
	c, err := srv.Create(wire.Spec{V: wire.APIVersion, Kind: "suite"})
	if err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/c/" + c.ID()

	// Store keys must be 64 hex digits — the fs backend fans out on
	// key prefixes, so a short key must die here, not in a backend.
	for _, bad := range []string{"ab", strings.Repeat("a", 63) + "G", strings.Repeat("a", 65)} {
		code, body := request(t, "PUT", base+"/store/o/"+bad, "{}")
		if code != http.StatusBadRequest {
			t.Errorf("PUT store key %q = %d %s, want 400", bad, code, body)
		}
	}
	// Coordinator keys are conservative slash paths. (Traversal via
	// ".." segments never reaches the handler: the mux path-cleans it
	// away first.)
	for _, bad := range []string{"a%20b", "a%00b", strings.Repeat("x/", 200) + "y"} {
		code, body := request(t, "PUT", base+"/coord/k/"+bad, "{}")
		if code != http.StatusBadRequest {
			t.Errorf("PUT coord key %q = %d %s, want 400", bad, code, body)
		}
	}
	code, body := request(t, "GET", base+"/coord/list?dir=a%20b", "")
	if code != http.StatusBadRequest {
		t.Errorf("list with malformed prefix = %d %s, want 400", code, body)
	}
}

func TestCoordVerbs(t *testing.T) {
	srv, ts := newServer(t, serve.Config{Token: testToken})
	c, err := srv.Create(wire.Spec{V: wire.APIVersion, Kind: "suite"})
	if err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/c/" + c.ID() + "/coord/k/shard-0000/gen-0001.claim"

	if code, _ := request(t, "GET", base, ""); code != http.StatusNotFound {
		t.Fatalf("get absent record = %d, want 404", code)
	}
	if code, body := request(t, "POST", base, `{"owner":"w1"}`); code != http.StatusCreated {
		t.Fatalf("create = %d %s", code, body)
	}
	// Exclusive create: the second claimant loses with 409.
	code, body := request(t, "POST", base, `{"owner":"w2"}`)
	if code != http.StatusConflict {
		t.Fatalf("second create = %d %s, want 409", code, body)
	}
	if msg := errorMessage(t, body); !strings.Contains(msg, "already exists") {
		t.Errorf("conflict error %q", msg)
	}
	if code, data := request(t, "GET", base, ""); code != http.StatusOK || string(data) != `{"owner":"w1"}` {
		t.Fatalf("get after racing creates = %d %q, want the first writer's record", code, data)
	}
	if code, _ := request(t, "PUT", base, `{"owner":"w1","beat":2}`); code != http.StatusNoContent {
		t.Fatalf("put overwrite failed")
	}
	code, data := request(t, "GET", ts.URL+"/c/"+c.ID()+"/coord/list?dir=shard-0000", "")
	if code != http.StatusOK {
		t.Fatalf("list = %d %s", code, data)
	}
	var names wire.Names
	if err := json.Unmarshal(data, &names); err != nil {
		t.Fatal(err)
	}
	if len(names.Names) != 1 || names.Names[0] != "gen-0001.claim" {
		t.Fatalf("list names = %v", names.Names)
	}
}

func TestRowsWithoutRenderer(t *testing.T) {
	srv, ts := newServer(t, serve.Config{Token: testToken}) // no Rows hook
	c, err := srv.Create(wire.Spec{V: wire.APIVersion, Kind: "suite"})
	if err != nil {
		t.Fatal(err)
	}
	code, body := request(t, "GET", ts.URL+"/v1/campaigns/"+c.ID()+"/rows", "")
	if code != http.StatusNotImplemented {
		t.Fatalf("rows without a renderer = %d %s, want 501", code, body)
	}
}

// TestRestartReservesCampaigns pins that campaign state outlives the
// server process on the persistent roots: a second serve.New over the
// same root re-serves the campaign, spec and stored objects included.
func TestRestartReservesCampaigns(t *testing.T) {
	for _, state := range []string{"", "sqlite:"} {
		name := "fs"
		if state != "" {
			name = "sqlite"
		}
		t.Run(name, func(t *testing.T) {
			root := state + filepath.Join(t.TempDir(), "campaigns")
			srv, err := serve.New(serve.Config{State: root, Token: testToken})
			if err != nil {
				t.Fatal(err)
			}
			c, err := srv.Create(wire.Spec{V: wire.APIVersion, Kind: "sweep", Workload: "fig2"})
			if err != nil {
				t.Fatal(err)
			}
			key := strings.Repeat("5", 64)
			if err := c.Store().Backend().Store(key, []byte("payload")); err != nil {
				t.Fatal(err)
			}

			srv2, err := serve.New(serve.Config{State: root, Token: testToken})
			if err != nil {
				t.Fatal(err)
			}
			c2, err := srv2.Campaign(c.ID())
			if err != nil {
				t.Fatalf("campaign lost across restart: %v", err)
			}
			if c2.Spec().Workload != "fig2" {
				t.Errorf("respawned spec = %+v", c2.Spec())
			}
			if data, ok := c2.Store().Backend().Load(key); !ok || string(data) != "payload" {
				t.Errorf("stored object lost across restart: %q, %v", data, ok)
			}
		})
	}
}

func TestServerStateCannotChain(t *testing.T) {
	_, err := serve.New(serve.Config{State: "http://other:8080/c/abc"})
	if err == nil || !strings.Contains(err.Error(), "cannot chain to another server") {
		t.Fatalf("chained server state accepted: %v", err)
	}
}
