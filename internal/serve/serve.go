// Package serve is the sweep control plane behind cmd/rtrserved: a
// stdlib net/http server hosting any number of campaigns, each a
// resultstore.Backend + coord.Backend pair living under one state
// root (fs directory, sqlite campaign files, or memory — the same
// locator syntax the CLIs use). The versioned JSON/SSE protocol it
// speaks is defined in internal/serve/wire; the client half is the
// http:/https: scheme in internal/backendurl.
//
// The server deliberately implements no sweep semantics of its own.
// Store invariants (key validation, schema stamping, GC predicate)
// and the whole coordinator lease protocol stay client-side, exactly
// as they do over the fs and sqlite backends: a campaign endpoint
// only moves bytes, offers exclusive-create, and tells the time. That
// symmetry is what lets the storetest/coordtest conformance suites
// pass unmodified against a live server, and it is why this package
// must not import internal/sweep or internal/experiments (their test
// packages reach the suites through storetest) — the one place the
// server *renders* anything, GET /v1/campaigns/{id}/rows, does so
// through the RowsFunc callback cmd/rtrserved injects from
// internal/campaign.
//
// Endpoints (bearer-token auth on everything but /healthz):
//
//	POST   /v1/campaigns                submit a wire.Spec, get {id, path}
//	GET    /v1/campaigns/{id}/status    pool snapshot + drain/dead verdict
//	GET    /v1/campaigns/{id}/rows      report rows as SSE, live while the pool populates
//	GET    /healthz                     liveness, unauthenticated
//	GET    /c/{id}/now                  pool clock
//	GET    /c/{id}/store/o/{key}        store object read
//	PUT    /c/{id}/store/o/{key}        store object write (atomic overwrite)
//	DELETE /c/{id}/store/o/{key}        store object delete (absent ok)
//	GET    /c/{id}/store/visit          NDJSON enumeration + junk trailer
//	GET    /c/{id}/coord/k/{key...}     coordinator record read (404 = absent)
//	PUT    /c/{id}/coord/k/{key...}     coordinator record overwrite
//	POST   /c/{id}/coord/k/{key...}     exclusive create (409 = claim lost)
//	GET    /c/{id}/coord/list?dir=D     names under a coordinator prefix
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/backendurl"
	"repro/internal/coord"
	"repro/internal/resultstore"
	"repro/internal/serve/wire"
)

// RowsFunc renders a campaign's report into w, blocking until the
// pool drains (or dies, or ctx is cancelled). cmd/rtrserved injects
// internal/campaign.Render; servers without one 501 the rows route.
type RowsFunc func(ctx context.Context, c *Campaign, w io.Writer) error

// Config configures a Server.
type Config struct {
	// State locates the campaign state root using the CLI locator
	// syntax: a directory (or fs:DIR) keeps one subdirectory per
	// campaign, sqlite:DIR one set of campaign-database files per
	// campaign, mem: everything in process memory.
	State string
	// Token, when non-empty, is required as "Authorization: Bearer
	// <Token>" on every request except GET /healthz.
	Token string
	// Rows renders GET /v1/campaigns/{id}/rows; nil disables the route.
	Rows RowsFunc
	// Check, when non-nil, vets a submitted spec beyond wire.DecodeSpec
	// (unknown experiments, unparsable policies) before the campaign is
	// created.
	Check func(wire.Spec) error
	// Log receives request-level diagnostics; nil discards them.
	Log *log.Logger
}

// Campaign is one hosted store+coordinator pair.
type Campaign struct {
	id    string
	spec  wire.Spec
	store resultstore.Backend
	coord coord.Backend
}

// ID returns the campaign identifier (the {id} path element).
func (c *Campaign) ID() string { return c.id }

// Spec returns the submitted campaign spec.
func (c *Campaign) Spec() wire.Spec { return c.spec }

// Store returns a fresh *resultstore.Store handle over the campaign's
// backend — shared data, per-handle counters, exactly what reopening a
// locator gives a CLI.
func (c *Campaign) Store() *resultstore.Store { return resultstore.FromBackend(c.store) }

// Coord returns the campaign's coordinator backend.
func (c *Campaign) Coord() coord.Backend { return c.coord }

// root is the campaign state substrate: where specs and backends live.
type root interface {
	// create persists a new campaign's spec exclusively: fs.ErrExist
	// when the id is taken.
	create(id string, spec []byte) error
	// open returns the stored spec and the campaign's backends;
	// fs.ErrNotExist for an unknown id.
	open(id string) ([]byte, resultstore.Backend, coord.Backend, error)
	location() string
}

// Server hosts campaigns over a state root. Create with New.
type Server struct {
	cfg  Config
	log  *log.Logger
	root root

	mu    sync.Mutex
	camps map[string]*Campaign
}

// New opens (creating if needed) the state root and returns a Server.
func New(cfg Config) (*Server, error) {
	loc, err := backendurl.Parse("-state", cfg.State)
	if err != nil {
		return nil, err
	}
	var r root
	switch loc.Scheme {
	case backendurl.SchemeFS:
		if err := os.MkdirAll(loc.Path, 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		r = fsRoot{dir: loc.Path}
	case backendurl.SchemeSQLite:
		if err := os.MkdirAll(loc.Path, 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		r = sqliteRoot{dir: loc.Path}
	case backendurl.SchemeMem:
		r = &memRoot{camps: map[string]memCampaign{}}
	default:
		return nil, fmt.Errorf("serve: -state %s: a server cannot chain to another server (want fs:DIR, sqlite:DIR, or mem:)", loc.Scheme)
	}
	lg := cfg.Log
	if lg == nil {
		lg = log.New(io.Discard, "", 0)
	}
	return &Server{cfg: cfg, log: lg, root: r, camps: map[string]*Campaign{}}, nil
}

// Location names the state root, for startup banners.
func (s *Server) Location() string { return s.root.location() }

// Create registers a new campaign for the given (already decoded)
// spec and returns it.
func (s *Server) Create(spec wire.Spec) (*Campaign, error) {
	if s.cfg.Check != nil {
		if err := s.cfg.Check(spec); err != nil {
			return nil, err
		}
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	for range 4 {
		var raw [8]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return nil, err
		}
		id := hex.EncodeToString(raw[:])
		err := s.root.create(id, data)
		if errors.Is(err, fs.ErrExist) {
			continue // astronomically unlikely collision; reroll
		}
		if err != nil {
			return nil, err
		}
		return s.Campaign(id)
	}
	return nil, errors.New("serve: could not allocate a campaign id")
}

// validID keeps campaign ids shaped like the ones Create mints, which
// is also what keeps fs/sqlite roots free of path traversal.
func validID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, r := range id {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Campaign returns the campaign by id, lazily opening its backends
// from the state root (so a restarted server re-serves every campaign
// on disk). fs.ErrNotExist for an unknown id.
func (s *Server) Campaign(id string) (*Campaign, error) {
	if !validID(id) {
		return nil, fs.ErrNotExist
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.camps[id]; ok {
		return c, nil
	}
	data, sb, cb, err := s.root.open(id)
	if err != nil {
		return nil, err
	}
	var spec wire.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("serve: campaign %s: corrupt spec: %v", id, err)
	}
	c := &Campaign{id: id, spec: spec, store: sb, coord: cb}
	s.camps[id] = c
	return c, nil
}

// fsRoot keeps one directory per campaign: DIR/<id>/{spec.json,
// store/, coord/} — the same layouts the CLIs' fs locators use, so an
// operator can inspect (or even point a filesystem worker at) a
// hosted campaign directly.
type fsRoot struct{ dir string }

func (r fsRoot) location() string { return r.dir }

func (r fsRoot) create(id string, spec []byte) error {
	dir := filepath.Join(r.dir, id)
	if err := os.Mkdir(dir, 0o755); err != nil {
		return err // fs.ErrExist passes through
	}
	return os.WriteFile(filepath.Join(dir, "spec.json"), spec, 0o644)
}

func (r fsRoot) open(id string) ([]byte, resultstore.Backend, coord.Backend, error) {
	dir := filepath.Join(r.dir, id)
	spec, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, nil, nil, err
	}
	sb, err := resultstore.NewFS(filepath.Join(dir, "store"))
	if err != nil {
		return nil, nil, nil, err
	}
	return spec, sb, coord.NewFS(filepath.Join(dir, "coord")), nil
}

// sqliteRoot keeps campaign-database files per campaign: DIR/<id>.
// {spec.json,store.db,coord.db}. Store and coordinator use separate
// files so their locking never interleaves.
type sqliteRoot struct{ dir string }

func (r sqliteRoot) location() string { return "sqlite:" + r.dir }

func (r sqliteRoot) create(id string, spec []byte) error {
	f, err := os.OpenFile(filepath.Join(r.dir, id+".spec.json"), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(spec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (r sqliteRoot) open(id string) ([]byte, resultstore.Backend, coord.Backend, error) {
	spec, err := os.ReadFile(filepath.Join(r.dir, id+".spec.json"))
	if err != nil {
		return nil, nil, nil, err
	}
	sb, err := resultstore.NewSQLite(filepath.Join(r.dir, id+".store.db"))
	if err != nil {
		return nil, nil, nil, err
	}
	cb, err := coord.NewSQLite(filepath.Join(r.dir, id+".coord.db"))
	if err != nil {
		return nil, nil, nil, err
	}
	return spec, sb, cb, nil
}

// memRoot holds everything in process memory (tests, demos).
type memRoot struct {
	mu    sync.Mutex
	camps map[string]memCampaign
}

type memCampaign struct {
	spec  []byte
	store resultstore.Backend
	coord coord.Backend
}

func (r *memRoot) location() string { return "mem:" }

func (r *memRoot) create(id string, spec []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.camps[id]; ok {
		return fs.ErrExist
	}
	r.camps[id] = memCampaign{spec: spec, store: resultstore.NewMem(), coord: coord.NewMem()}
	return nil
}

func (r *memRoot) open(id string) ([]byte, resultstore.Backend, coord.Backend, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.camps[id]
	if !ok {
		return nil, nil, nil, fs.ErrNotExist
	}
	return c.spec, c.store, c.coord, nil
}
