package artifact

import (
	"reflect"
	"testing"

	"repro/internal/mobility"
	"repro/internal/resultstore"
	"repro/internal/storetest"
	"repro/internal/workload"
)

func resetMobility(t *testing.T) {
	t.Helper()
	mobility.FlushCache()
	mobility.ResetStats()
	t.Cleanup(func() {
		mobility.SetStore(nil)
		mobility.FlushCache()
		mobility.ResetStats()
	})
}

// TestMobilityKeyCanonical: the key is a valid store key, deterministic,
// and sensitive to every input.
func TestMobilityKeyCanonical(t *testing.T) {
	fp := workload.JPEG().Fingerprint()
	lat := workload.PaperLatency()
	key := MobilityKey(fp, 4, lat)
	if len(key) != 64 {
		t.Fatalf("key %q is not canonical 64-hex", key)
	}
	if key != MobilityKey(fp, 4, lat) {
		t.Error("key not deterministic")
	}
	distinct := map[string]bool{
		key:                       true,
		MobilityKey(fp, 5, lat):   true,
		MobilityKey(fp, 4, lat+1): true,
		MobilityKey(workload.MPEG1().Fingerprint(), 4, lat): true,
	}
	if len(distinct) != 4 {
		t.Errorf("key collisions across inputs: %d distinct of 4", len(distinct))
	}
}

// TestTwoProcessReuse is the tentpole's acceptance shape, per backend: a
// cold "process" populates the store; a fresh process (flushed map, new
// store handle over the same data) performs zero mobility computations
// and serves identical tables.
func TestTwoProcessReuse(t *testing.T) {
	for _, bk := range storetest.Backends(t) {
		t.Run(bk.Name, func(t *testing.T) {
			resetMobility(t)
			store, reopen := bk.Open(t)
			restore := Install(store)
			defer restore()

			pool := workload.Multimedia()
			lat := workload.PaperLatency()
			_, cold, err := mobility.CachedAll(pool, 4, lat)
			if err != nil {
				t.Fatal(err)
			}
			if st := mobility.Stats(); st.Computes != int64(len(pool)) || st.StoreWrites != int64(len(pool)) {
				t.Fatalf("cold stats %+v, want %d computes all written back", st, len(pool))
			}
			if _, _, puts := store.ArtifactStats(); puts != int64(len(pool)) {
				t.Fatalf("store recorded %d artifact writes, want %d", puts, len(pool))
			}

			// Fresh process: new store handle, empty mobility map.
			mobility.FlushCache()
			mobility.ResetStats()
			s2 := reopen(t)
			restore2 := Install(s2)
			defer restore2()
			_, warm, err := mobility.CachedAll(pool, 4, lat)
			if err != nil {
				t.Fatal(err)
			}
			st := mobility.Stats()
			if st.Computes != 0 {
				t.Fatalf("warm process computed %d tables, want 0 (loaded from artifacts)", st.Computes)
			}
			if st.StoreHits != int64(len(pool)) {
				t.Fatalf("warm stats %+v, want %d store hits", st, len(pool))
			}
			for i := range cold {
				if !reflect.DeepEqual(warm[i].Values, cold[i].Values) ||
					warm[i].RefMakespan != cold[i].RefMakespan ||
					warm[i].RUs != cold[i].RUs || warm[i].Latency != cold[i].Latency {
					t.Errorf("table %d served from artifacts diverges from the computed one", i)
				}
			}
		})
	}
}

// TestLoadTableRejectsMismatch: an artifact stored for one template must
// not serve a different one, even if someone files it under the wrong
// key by hand.
func TestLoadTableRejectsMismatch(t *testing.T) {
	resetMobility(t)
	store := resultstore.OpenMem()
	ts := NewTableStore(store)
	jpeg, hough := workload.JPEG(), workload.Hough()
	lat := workload.PaperLatency()
	tab, err := mobility.Compute(jpeg, 4, lat)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.StoreTable(tab); err != nil {
		t.Fatal(err)
	}
	// Honest keys: a different triple is simply a miss.
	if _, ok := ts.LoadTable(jpeg, 5, lat); ok {
		t.Error("table served for a different unit count")
	}
	// Sabotage: move the JPEG payload under Hough's key. The payload
	// validation (graph name, task set) must refuse to serve it.
	a, ok := store.GetArtifact(MobilityKey(jpeg.Fingerprint(), 4, lat), MobilityKind, MobilityVersion)
	if !ok {
		t.Fatal("stored artifact not retrievable")
	}
	wrongKey := MobilityKey(hough.Fingerprint(), 4, lat)
	if err := store.PutArtifact(wrongKey, &resultstore.Artifact{
		Kind: MobilityKind, KindVersion: MobilityVersion, Payload: a.Payload,
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := ts.LoadTable(hough, 4, lat); ok {
		t.Error("mismatched payload served as another template's table")
	}
}

// TestKindVersionInvalidates: bumping MobilityVersion must read old
// artifacts as misses (recompute-and-overwrite, like a schema bump).
func TestKindVersionInvalidates(t *testing.T) {
	resetMobility(t)
	store := resultstore.OpenMem()
	ts := NewTableStore(store)
	g := workload.JPEG()
	lat := workload.PaperLatency()
	tab, err := mobility.Compute(g, 4, lat)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.StoreTable(tab); err != nil {
		t.Fatal(err)
	}
	key := MobilityKey(g.Fingerprint(), 4, lat)
	if _, ok := store.GetArtifact(key, MobilityKind, MobilityVersion+1); ok {
		t.Error("artifact served under a future kind version")
	}
	if _, ok := store.GetArtifact(key, "other-kind", MobilityVersion); ok {
		t.Error("artifact served under a different kind")
	}
}
