// Package artifact persists design-time phase outputs in the result
// store's artifact space, so they are reused across processes and hosts
// instead of recomputed by every cold process.
//
// The first (and so far only) artifact kind is the mobility table: the
// paper's design-time phase output, a pure function of (graph, RUs,
// latency) and hundreds of full schedules to recompute. Tables are keyed
// by a canonical hash of the graph's content fingerprint plus the unit
// count and latency — never a pointer, never a name alone — so any
// process that builds or re-parses the same template derives the same
// key, and a stale key can never alias a different triple. The payload
// is the table's stable JSON encoding (internal/mobility/encoding.go),
// validated against the requesting template on load; a payload that does
// not decode or does not match reads as a miss and the table is
// recomputed, never served wrong.
//
// Install wires a store into the mobility cache as its persistent second
// tier (process map → store → compute); both CLIs do this whenever a
// -store is attached, which is all it takes to make every shard worker
// on every host share one design-time phase per triple.
package artifact

import (
	"encoding/json"
	"fmt"

	"repro/internal/mobility"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// MobilityKind tags mobility-table artifacts in the store.
const MobilityKind = "mobility-table"

// MobilityVersion is the mobility payload layout version. Bump it when
// the table encoding (or the design-time algorithm whose output it
// records) changes meaning: old artifacts then read as misses and are
// recomputed and overwritten in place.
const MobilityVersion = 1

// MobilityKey derives the canonical store key for the mobility table of
// (graph fingerprint, RUs, latency). The kind tag is folded in first for
// domain separation from scenario result keys, which share the store's
// key space.
func MobilityKey(fingerprint string, rus int, latency simtime.Time) string {
	h := resultstore.NewHash()
	h.String("artifact", MobilityKind)
	h.String("graph", fingerprint)
	h.Int("rus", int64(rus))
	h.Int("latency", int64(latency))
	return h.Sum()
}

// TableStore adapts a result store's artifact space to the mobility
// cache's persistent-tier interface (mobility.TableStore).
type TableStore struct {
	s *resultstore.Store
}

// NewTableStore wraps s. The store must be non-nil.
func NewTableStore(s *resultstore.Store) *TableStore {
	return &TableStore{s: s}
}

// LoadTable fetches and validates the stored table for the triple.
// Anything short of a well-formed table for exactly this template is a
// miss: the cache recomputes, it never serves a doubtful artifact.
func (ts *TableStore) LoadTable(g *taskgraph.Graph, rus int, latency simtime.Time) (*mobility.Table, bool) {
	a, ok := ts.s.GetArtifact(MobilityKey(g.Fingerprint(), rus, latency), MobilityKind, MobilityVersion)
	if !ok {
		return nil, false
	}
	t, err := mobility.TableFromJSON(a.Payload, g)
	if err != nil {
		return nil, false
	}
	return t, true
}

// StoreTable persists a freshly computed table under its canonical key.
func (ts *TableStore) StoreTable(t *mobility.Table) error {
	payload, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("artifact: encode mobility table %s: %w", t.Graph.Name(), err)
	}
	return ts.s.PutArtifact(MobilityKey(t.Graph.Fingerprint(), t.RUs, t.Latency), &resultstore.Artifact{
		Kind:        MobilityKind,
		KindVersion: MobilityVersion,
		Label:       fmt.Sprintf("mobility %s rus=%d latency=%v", t.Graph.Name(), t.RUs, t.Latency),
		Payload:     payload,
	})
}

// Install wires s in as the mobility cache's persistent tier and returns
// a restore function that reinstates whatever was installed before —
// t.Cleanup fodder in tests, a no-op deferred call in the CLIs.
func Install(s *resultstore.Store) (restore func()) {
	prev := mobility.SetStore(NewTableStore(s))
	return func() { mobility.SetStore(prev) }
}
