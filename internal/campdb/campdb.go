// Package campdb implements the single-file campaign database behind
// the CLIs' `sqlite:path.db` backend scheme: one portable file holding
// a whole campaign — store objects, coordinator leases, attempt
// metadata — that can be scp'd between hosts or attached to a CI run
// as a single artifact.
//
// The container this repo builds in has no SQL driver and the module
// deliberately has zero dependencies, so the file format is a
// stdlib-only append-only record log rather than a real SQLite
// database; the scheme name pins the CLI contract (one campaign, one
// file) and a driver-backed implementation can later replace this
// package behind the same locator syntax. The format:
//
//	header  : 12 bytes, "rtrcampdb1\x00\x00"
//	record  : crc32(IEEE, of everything after it)  uint32 LE
//	          flags                                1 byte (bit0 = tombstone)
//	          len(bucket)                          1 byte
//	          len(key)                             uint16 LE
//	          len(value)                           uint32 LE
//	          bucket ‖ key ‖ value
//
// Records are grouped into buckets ("object" for store entries,
// "coord" for coordinator state) so one file can serve -store and
// -coord simultaneously. The latest record for a (bucket, key) wins;
// a tombstone record deletes the key. Readers keep an in-memory index
// of offsets and re-scan only the file's new tail on each operation,
// so concurrent processes observe each other's writes (the watch-merge
// path polls through this).
//
// Multi-process safety comes from flock(2): every append holds an
// exclusive lock, every refresh a shared lock. A crashed writer can
// leave a torn record at EOF; the next writer (under the exclusive
// lock, where no live writer can exist) truncates the torn tail and
// appends from the last valid record. CRCs make torn or bit-rotted
// tails detectable rather than silently corrupting the index.
package campdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

const (
	magic      = "rtrcampdb1\x00\x00"
	recHdrLen  = 4 + 1 + 1 + 2 + 4
	flagDelete = 1 << 0
	// maxValueLen bounds a single value so a corrupt length field
	// cannot demand a multi-gigabyte allocation; store entries are
	// a few KB of JSON.
	maxValueLen = 1 << 28
)

// ErrExist is returned by Create when the key already holds a value.
var ErrExist = errors.New("campdb: key exists")

// ErrNotExist is returned by Get when the key holds no value.
var ErrNotExist = errors.New("campdb: key does not exist")

type ref struct {
	off  int64 // offset of the value bytes within the file
	vlen uint32
}

// DB is one handle on a campaign database file. A handle is safe for
// concurrent use by multiple goroutines, and distinct handles (in this
// or other processes) on the same file stay coherent through flock +
// tail re-scanning.
type DB struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	scanned int64          // offset up to which the index reflects the file
	idx     map[string]ref // bucket+"\x00"+key → latest live value
}

// Open opens (creating if absent) the database at path.
func Open(path string) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campdb: %w", err)
	}
	d := &DB{f: f, path: path, scanned: int64(len(magic)), idx: make(map[string]ref)}
	if err := d.initHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// initHeader writes the magic header into an empty file, or verifies
// it in a non-empty one. Two processes may race to create the file;
// the exclusive lock makes exactly one write the header.
func (d *DB) initHeader() error {
	if err := flock(d.f, true); err != nil {
		return err
	}
	defer funlock(d.f)
	st, err := d.f.Stat()
	if err != nil {
		return fmt.Errorf("campdb: %w", err)
	}
	if st.Size() == 0 {
		if _, err := d.f.WriteAt([]byte(magic), 0); err != nil {
			return fmt.Errorf("campdb: write header: %w", err)
		}
		return nil
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(io.NewSectionReader(d.f, 0, int64(len(magic))), hdr); err != nil || string(hdr) != magic {
		return fmt.Errorf("campdb: %s is not a campaign database (bad header)", d.path)
	}
	return nil
}

// Close releases the file handle. In-flight operations on other
// handles are unaffected.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// Path returns the file the database lives in.
func (d *DB) Path() string { return d.path }

func ikey(bucket, key string) string { return bucket + "\x00" + key }

// scanLocked advances the index over records appended since the last
// scan. It stops (without error) at a torn tail: under a shared lock
// that tail may be a live writer mid-append; under the exclusive lock
// the caller may truncate it via d.scanned. Call with d.mu held and
// the file locked.
func (d *DB) scanLocked() error {
	st, err := d.f.Stat()
	if err != nil {
		return fmt.Errorf("campdb: %w", err)
	}
	size := st.Size()
	if size < d.scanned {
		// The file shrank under us (external truncation/replacement):
		// rebuild from scratch.
		d.scanned = int64(len(magic))
		d.idx = make(map[string]ref)
	}
	hdr := make([]byte, recHdrLen)
	for d.scanned+recHdrLen <= size {
		if _, err := d.f.ReadAt(hdr, d.scanned); err != nil {
			return fmt.Errorf("campdb: read record header: %w", err)
		}
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		flags := hdr[4]
		blen := int(hdr[5])
		klen := int(binary.LittleEndian.Uint16(hdr[6:8]))
		vlen := int(binary.LittleEndian.Uint32(hdr[8:12]))
		if vlen > maxValueLen {
			return nil // corrupt length: treat as torn tail
		}
		recLen := int64(recHdrLen + blen + klen + vlen)
		if d.scanned+recLen > size {
			return nil // torn tail
		}
		body := make([]byte, recLen-4)
		if _, err := d.f.ReadAt(body, d.scanned+4); err != nil {
			return fmt.Errorf("campdb: read record: %w", err)
		}
		if crc32.ChecksumIEEE(body) != crc {
			return nil // torn or rotted tail
		}
		bucket := string(body[recHdrLen-4 : recHdrLen-4+blen])
		key := string(body[recHdrLen-4+blen : recHdrLen-4+blen+klen])
		if flags&flagDelete != 0 {
			delete(d.idx, ikey(bucket, key))
		} else {
			d.idx[ikey(bucket, key)] = ref{
				off:  d.scanned + int64(recHdrLen+blen+klen),
				vlen: uint32(vlen),
			}
		}
		d.scanned += recLen
	}
	return nil
}

// refreshLocked brings the index up to date under a shared lock.
func (d *DB) refreshLocked() error {
	if err := flock(d.f, false); err != nil {
		return err
	}
	defer funlock(d.f)
	return d.scanLocked()
}

// appendLocked writes one record at the scanned frontier. Caller holds
// d.mu and the exclusive lock, with scanLocked already run (so
// d.scanned is the end of valid data; anything beyond is a torn tail
// this write may overwrite).
func (d *DB) appendLocked(flags byte, bucket, key string, val []byte) error {
	if len(bucket) > 255 {
		return fmt.Errorf("campdb: bucket name too long (%d bytes)", len(bucket))
	}
	if len(key) > 1<<16-1 {
		return fmt.Errorf("campdb: key too long (%d bytes)", len(key))
	}
	if len(val) > maxValueLen {
		return fmt.Errorf("campdb: value too large (%d bytes)", len(val))
	}
	rec := make([]byte, recHdrLen+len(bucket)+len(key)+len(val))
	rec[4] = flags
	rec[5] = byte(len(bucket))
	binary.LittleEndian.PutUint16(rec[6:8], uint16(len(key)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(val)))
	copy(rec[recHdrLen:], bucket)
	copy(rec[recHdrLen+len(bucket):], key)
	copy(rec[recHdrLen+len(bucket)+len(key):], val)
	binary.LittleEndian.PutUint32(rec[0:4], crc32.ChecksumIEEE(rec[4:]))
	if _, err := d.f.WriteAt(rec, d.scanned); err != nil {
		return fmt.Errorf("campdb: append: %w", err)
	}
	if flags&flagDelete != 0 {
		delete(d.idx, ikey(bucket, key))
	} else {
		d.idx[ikey(bucket, key)] = ref{
			off:  d.scanned + int64(recHdrLen+len(bucket)+len(key)),
			vlen: uint32(len(val)),
		}
	}
	d.scanned += int64(len(rec))
	return nil
}

// withAppendLock runs fn with the exclusive lock held and the index
// current; any torn tail left by a crashed writer is truncated first
// (no live writer can exist while we hold the exclusive lock).
func (d *DB) withAppendLock(fn func() error) error {
	if err := flock(d.f, true); err != nil {
		return err
	}
	defer funlock(d.f)
	if err := d.scanLocked(); err != nil {
		return err
	}
	if st, err := d.f.Stat(); err == nil && st.Size() > d.scanned {
		if err := d.f.Truncate(d.scanned); err != nil {
			return fmt.Errorf("campdb: truncate torn tail: %w", err)
		}
	}
	return fn()
}

// Get returns the latest value for (bucket, key), or ErrNotExist.
// The returned slice is freshly allocated.
func (d *DB) Get(bucket, key string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.refreshLocked(); err != nil {
		return nil, err
	}
	r, ok := d.idx[ikey(bucket, key)]
	if !ok {
		return nil, ErrNotExist
	}
	// Complete records are immutable (truncation only ever removes a
	// torn tail), so this read needs no lock.
	val := make([]byte, r.vlen)
	if _, err := d.f.ReadAt(val, r.off); err != nil {
		return nil, fmt.Errorf("campdb: read value: %w", err)
	}
	return val, nil
}

// Put stores val under (bucket, key), overwriting any prior value.
func (d *DB) Put(bucket, key string, val []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.withAppendLock(func() error {
		return d.appendLocked(0, bucket, key, val)
	})
}

// Create stores val under (bucket, key) only if the key holds no
// value, returning ErrExist otherwise. This is the atomic claim
// primitive: under the exclusive lock, exactly one contender wins.
func (d *DB) Create(bucket, key string, val []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.withAppendLock(func() error {
		if _, ok := d.idx[ikey(bucket, key)]; ok {
			return ErrExist
		}
		return d.appendLocked(0, bucket, key, val)
	})
}

// Delete removes (bucket, key). Deleting an absent key is a no-op.
func (d *DB) Delete(bucket, key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.withAppendLock(func() error {
		if _, ok := d.idx[ikey(bucket, key)]; !ok {
			return nil
		}
		return d.appendLocked(flagDelete, bucket, key, nil)
	})
}

// Keys returns the live keys in bucket, sorted.
func (d *DB) Keys(bucket string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.refreshLocked(); err != nil {
		return nil, err
	}
	prefix := bucket + "\x00"
	var keys []string
	for ik := range d.idx {
		if len(ik) > len(prefix) && ik[:len(prefix)] == prefix {
			keys = append(keys, ik[len(prefix):])
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Visit calls fn for every live (key, value) in bucket, in sorted key
// order. fn's value slice is owned by fn.
func (d *DB) Visit(bucket string, fn func(key string, val []byte) error) error {
	keys, err := d.Keys(bucket)
	if err != nil {
		return err
	}
	for _, k := range keys {
		val, err := d.Get(bucket, k)
		if errors.Is(err, ErrNotExist) {
			continue // deleted between snapshot and read
		}
		if err != nil {
			return err
		}
		if err := fn(k, val); err != nil {
			return err
		}
	}
	return nil
}
