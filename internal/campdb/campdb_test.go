package campdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTest(t *testing.T) *DB {
	t.Helper()
	d, err := Open(filepath.Join(t.TempDir(), "c.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestRoundTrip(t *testing.T) {
	d := openTest(t)
	if _, err := d.Get("object", "k"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get on empty db: %v", err)
	}
	if err := d.Put("object", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, err := d.Get("object", "k"); err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Last write wins.
	if err := d.Put("object", "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Get("object", "k"); string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	// Buckets are disjoint namespaces.
	if _, err := d.Get("coord", "k"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("bucket leak: %v", err)
	}
}

func TestCreateIsSetIfAbsent(t *testing.T) {
	d := openTest(t)
	if err := d.Create("coord", "claim", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := d.Create("coord", "claim", []byte("b")); !errors.Is(err, ErrExist) {
		t.Fatalf("second Create: %v", err)
	}
	if got, _ := d.Get("coord", "claim"); string(got) != "a" {
		t.Fatalf("loser overwrote winner: %q", got)
	}
	// Delete frees the key for a fresh Create.
	if err := d.Delete("coord", "claim"); err != nil {
		t.Fatal(err)
	}
	if err := d.Create("coord", "claim", []byte("c")); err != nil {
		t.Fatalf("Create after Delete: %v", err)
	}
}

func TestDeleteAndVisit(t *testing.T) {
	d := openTest(t)
	for i := 0; i < 5; i++ {
		if err := d.Put("object", fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete("object", "k2"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("object", "never-existed"); err != nil {
		t.Fatalf("deleting absent key: %v", err)
	}
	var seen []string
	err := d.Visit("object", func(k string, v []byte) error {
		seen = append(seen, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"k0", "k1", "k3", "k4"}
	if len(seen) != len(want) {
		t.Fatalf("Visit saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Visit order %v, want sorted %v", seen, want)
		}
	}
}

// TestSecondHandleSeesWrites is the watch-merge property: a reader
// handle opened before a writer's Put still observes it (refresh on
// read), as two CLI processes sharing one campaign file must.
func TestSecondHandleSeesWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get("object", "k"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("premature visibility: %v", err)
	}
	if err := w.Put("object", "k", []byte("shared")); err != nil {
		t.Fatal(err)
	}
	if got, err := r.Get("object", "k"); err != nil || string(got) != "shared" {
		t.Fatalf("second handle Get = %q, %v", got, err)
	}
	// And claims contend correctly across handles.
	if err := w.Create("coord", "c", []byte("w")); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("coord", "c", []byte("r")); !errors.Is(err, ErrExist) {
		t.Fatalf("cross-handle Create: %v", err)
	}
}

func TestReopenPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("object", "k", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("object", "gone"); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got, err := d2.Get("object", "k"); err != nil || string(got) != "survives" {
		t.Fatalf("after reopen Get = %q, %v", got, err)
	}
}

// TestTornTailRecovered simulates a writer killed mid-append: bytes of
// a partial record at EOF. Reads must stop at the last valid record;
// the next append must truncate the torn tail and land cleanly.
func TestTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("object", "good", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	d.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got, err := d2.Get("object", "good"); err != nil || string(got) != "ok" {
		t.Fatalf("Get over torn tail = %q, %v", got, err)
	}
	if err := d2.Put("object", "after", []byte("recovered")); err != nil {
		t.Fatal(err)
	}
	// Reopen once more: both records must decode, the garbage is gone.
	d2.Close()
	d3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	for k, want := range map[string]string{"good": "ok", "after": "recovered"} {
		if got, err := d3.Get("object", k); err != nil || string(got) != want {
			t.Fatalf("Get(%s) = %q, %v", k, got, err)
		}
	}
}

// TestCorruptTailCRC: a full-length record whose payload was bit-rotted
// must be rejected by its CRC, not admitted to the index.
func TestCorruptTailCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("object", "good", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("object", "victim", []byte("xx")); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Flip a bit in the last record's value bytes.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got, err := d2.Get("object", "good"); err != nil || string(got) != "ok" {
		t.Fatalf("Get(good) = %q, %v", got, err)
	}
	if _, err := d2.Get("object", "victim"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rotted record admitted: %v", err)
	}
}

func TestNotADatabase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	if err := os.WriteFile(path, []byte("this is not a campaign db"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("bad header accepted")
	}
}

// TestConcurrentHandles hammers one file from several handles and
// goroutines (run under -race in CI): every Create has exactly one
// winner, every Put is eventually visible.
func TestConcurrentHandles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	const handles, keys = 4, 16
	dbs := make([]*DB, handles)
	for i := range dbs {
		d, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		dbs[i] = d
	}
	wins := make([]int, keys)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for h, d := range dbs {
		wg.Add(1)
		go func(h int, d *DB) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("claim-%02d", k)
				err := d.Create("coord", key, []byte{byte(h)})
				switch {
				case err == nil:
					mu.Lock()
					wins[k]++
					mu.Unlock()
				case errors.Is(err, ErrExist):
				default:
					t.Errorf("Create: %v", err)
				}
				if err := d.Put("object", fmt.Sprintf("h%d-k%d", h, k), []byte("v")); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}(h, d)
	}
	wg.Wait()
	for k, n := range wins {
		if n != 1 {
			t.Errorf("claim %d won %d times, want exactly 1", k, n)
		}
	}
	keysSeen, err := dbs[0].Keys("object")
	if err != nil {
		t.Fatal(err)
	}
	if len(keysSeen) != handles*keys {
		t.Errorf("saw %d object keys, want %d", len(keysSeen), handles*keys)
	}
}
