//go:build unix

package campdb

import (
	"fmt"
	"os"
	"syscall"
)

// flock takes a shared (ex=false) or exclusive (ex=true) advisory lock
// on f, blocking until granted. funlock releases it. Locks coordinate
// handles across processes; within a process d.mu already serializes.
func flock(f *os.File, ex bool) error {
	how := syscall.LOCK_SH
	if ex {
		how = syscall.LOCK_EX
	}
	for {
		err := syscall.Flock(int(f.Fd()), how)
		if err == nil {
			return nil
		}
		if err != syscall.EINTR {
			return fmt.Errorf("campdb: flock: %w", err)
		}
	}
}

func funlock(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
