//go:build !unix

package campdb

import "os"

// Non-unix platforms get no cross-process advisory locking: a single
// process (the common CI and laptop case) is still fully serialized by
// DB.mu, but concurrent processes sharing one file are unsupported.
func flock(*os.File, bool) error { return nil }

func funlock(*os.File) {}
