// Package storetest holds result-store helpers for tests and benchmarks
// — state manipulations that production code must never perform but
// several test sites need identically.
package storetest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resultstore"
)

// StaleifySchema rewrites every entry under dir with an unservable
// schema version, keeping everything else (keys, recorded timings)
// intact — the state a store is in right after a
// resultstore.SchemaVersion bump, where every scenario must re-simulate
// but last run's measurements still feed dispatch-cost estimation
// (Store.ElapsedHint). Tests and benchmarks of that path share this one
// recipe so it cannot drift between them.
func StaleifySchema(tb testing.TB, dir string) {
	tb.Helper()
	err := filepath.WalkDir(filepath.Join(dir, "objects"), func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".json") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		var raw map[string]any
		if err := json.Unmarshal(data, &raw); err != nil {
			return err
		}
		raw["schema"] = resultstore.SchemaVersion + 1000
		out, err := json.Marshal(raw)
		if err != nil {
			return err
		}
		return os.WriteFile(p, out, 0o644)
	})
	if err != nil {
		tb.Fatal(err)
	}
}
