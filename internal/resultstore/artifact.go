package resultstore

import (
	"encoding/json"
	"fmt"
)

// ArtifactSchemaVersion identifies the artifact envelope layout below.
// Bump it only when the envelope fields themselves change; a change to
// one artifact kind's payload bumps that kind's own version instead
// (GetArtifact rejects the mismatch as a miss, and the producer
// overwrites the entry in place — the same no-orphans invalidation rule
// results use).
const ArtifactSchemaVersion = 1

// Artifact is the envelope for a persisted design-time artifact: the
// output of a phase that is a pure function of its inputs (mobility
// tables first — see internal/artifact), stored next to results in the
// same content-addressed key space so every backend (fs, mem, sqlite)
// and every merge/GC tool carries artifacts for free.
//
// Artifacts and results share the key space but never the keys: an
// artifact key hashes a kind tag along with the inputs (domain
// separation), and the envelopes are mutually unservable — a result
// entry has no artifact_schema, an artifact has no run — so Get can
// never serve an artifact as an outcome nor GetArtifact an outcome as
// an artifact.
type Artifact struct {
	// Schema is the envelope version, stamped by PutArtifact.
	Schema int `json:"artifact_schema"`
	// Key records the canonical key the artifact is filed under, stamped
	// by PutArtifact; a mismatch makes the entry unservable, exactly like
	// a result entry's recorded key.
	Key string `json:"key"`
	// Kind names the artifact type (e.g. "mobility-table"); the producer
	// defines it and GetArtifact requires an exact match.
	Kind string `json:"kind"`
	// KindVersion is the payload layout version of the Kind; a bump makes
	// old entries of the kind read as misses so they are recomputed and
	// overwritten in place.
	KindVersion int `json:"kind_version"`
	// Label is a human-readable summary for store tooling; never parsed.
	Label string `json:"label,omitempty"`
	// Payload is the kind-defined content.
	Payload json.RawMessage `json:"payload"`
}

// decodeArtifactServable is the single definition of "this artifact may
// be served": it decodes, carries the current envelope version, records
// the key it is filed under, and names a kind with a payload.
// GetArtifact and GC both delegate here, mirroring decodeServable for
// results. Artifact servability is deliberately independent of the
// result SchemaVersion: a result-schema bump re-simulates outcomes, it
// does not invalidate design-time work.
func decodeArtifactServable(key string, data []byte) (*Artifact, bool) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil ||
		a.Schema != ArtifactSchemaVersion || a.Key != key ||
		a.Kind == "" || len(a.Payload) == 0 {
		return nil, false
	}
	return &a, true
}

// GetArtifact looks up the artifact under key, requiring the given kind
// and kind version. Anything else — missing, undecodable, a result
// entry, wrong envelope schema, kind or version — is a miss, never an
// error: a consumer degrades to recomputing the artifact, it does not
// fail. Artifact lookups have their own hit/miss counters (see
// ArtifactStats); they never touch the result counters the determinism
// gates pin.
func (s *Store) GetArtifact(key, kind string, kindVersion int) (*Artifact, bool) {
	a, ok := s.getArtifact(key)
	if ok && a.Kind == kind && a.KindVersion == kindVersion {
		s.artHits.Add(1)
		return a, true
	}
	s.artMisses.Add(1)
	return nil, false
}

func (s *Store) getArtifact(key string) (*Artifact, bool) {
	if validKey(key) != nil {
		return nil, false
	}
	data, ok := s.b.Load(key)
	if !ok {
		return nil, false
	}
	return decodeArtifactServable(key, data)
}

// PutArtifact writes the artifact under key, stamping the envelope
// version and the key into it. Writes are atomic like result writes,
// and failures feed the same degraded-write accounting (SummaryLine): a
// full store loses warm starts, never correctness.
func (s *Store) PutArtifact(key string, a *Artifact) error {
	if err := s.putArtifact(key, a); err != nil {
		s.writeFailures.Add(1)
		msg := err.Error()
		s.firstWriteErr.CompareAndSwap(nil, &msg)
		return err
	}
	s.artPuts.Add(1)
	return nil
}

func (s *Store) putArtifact(key string, a *Artifact) error {
	if err := validKey(key); err != nil {
		return err
	}
	if a.Kind == "" {
		return fmt.Errorf("resultstore: artifact %s: empty kind", key)
	}
	if len(a.Payload) == 0 {
		return fmt.Errorf("resultstore: artifact %s (%s): empty payload", key, a.Kind)
	}
	a.Schema = ArtifactSchemaVersion
	a.Key = key
	data, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("resultstore: encode artifact %s: %w", key, err)
	}
	return s.b.Store(key, data)
}

// ArtifactStats reports the cumulative artifact lookup and write
// counters since Open, separate from the result counters.
func (s *Store) ArtifactStats() (hits, misses, puts int64) {
	return s.artHits.Load(), s.artMisses.Load(), s.artPuts.Load()
}
