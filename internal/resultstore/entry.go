package resultstore

import (
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// Entry is one stored scenario outcome: the raw run, its zero-latency
// ideal baseline and the derived summary (the latter two absent for
// sweeps run without baselines). Schema and Key are stamped by Put.
type Entry struct {
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	// Scenario is a human-readable label for store inspection only; it is
	// not part of the identity (the key is).
	Scenario string `json:"scenario,omitempty"`

	// ElapsedNS is the measured wall time, in nanoseconds, of simulating
	// this scenario (its own run — not the shared ideal baseline or the
	// design-time phase, which are amortized across a sweep). It is a
	// dispatch-cost measurement, never part of the result: reports ignore
	// it, and ElapsedHint serves it across schema versions.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`

	// Attempts is how many executions the scenario took before this
	// result landed (1 = first try). LastError and RetriedAtNS record the
	// final retried failure and when the winning attempt started, set
	// only when Attempts > 1. Like ElapsedNS these are operational
	// metadata, never part of the result: reports ignore them, so adding
	// them did not bump SchemaVersion (strictly-additive optional fields
	// never do — old entries simply decode with Attempts 0, meaning
	// "recorded before retry bookkeeping existed").
	Attempts    int    `json:"attempts,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	RetriedAtNS int64  `json:"retried_at_ns,omitempty"`

	Run     *Run             `json:"run"`
	Ideal   *Run             `json:"ideal,omitempty"`
	Summary *metrics.Summary `json:"summary,omitempty"`
}

// Run is the serializable subset of a manager.Result: every counter and
// timing a report can consume, minus the in-memory-only execution trace
// and template map (trace-recording sweeps bypass the store entirely).
type Run struct {
	Makespan    simtime.Time   `json:"makespan"`
	Executed    int            `json:"executed"`
	Reused      int            `json:"reused"`
	Loads       int            `json:"loads"`
	Evictions   int            `json:"evictions"`
	Skips       int            `json:"skips,omitempty"`
	ForcedSkips int            `json:"forced_skips,omitempty"`
	Preloads    int            `json:"preloads,omitempty"`
	Graphs      int            `json:"graphs"`
	Completions []simtime.Time `json:"completions,omitempty"`
	Events      uint64         `json:"events"`
}

// RecordRun captures the serializable fields of a completed run. The
// trace and the template map are dropped — callers that need them must
// not serve the scenario from the store.
func RecordRun(r *manager.Result) *Run {
	if r == nil {
		return nil
	}
	rec := &Run{
		Makespan:    r.Makespan,
		Executed:    r.Executed,
		Reused:      r.Reused,
		Loads:       r.Loads,
		Evictions:   r.Evictions,
		Skips:       r.Skips,
		ForcedSkips: r.ForcedSkips,
		Preloads:    r.Preloads,
		Graphs:      r.Graphs,
		Events:      r.Events,
	}
	if len(r.Completions) > 0 {
		rec.Completions = append([]simtime.Time(nil), r.Completions...)
	}
	return rec
}

// Result reconstructs a manager.Result from the record. Trace and
// Templates are nil — by construction no stored scenario was recorded
// with tracing enabled.
func (r *Run) Result() *manager.Result {
	if r == nil {
		return nil
	}
	res := &manager.Result{
		Makespan:    r.Makespan,
		Executed:    r.Executed,
		Reused:      r.Reused,
		Loads:       r.Loads,
		Evictions:   r.Evictions,
		Skips:       r.Skips,
		ForcedSkips: r.ForcedSkips,
		Preloads:    r.Preloads,
		Graphs:      r.Graphs,
		Events:      r.Events,
	}
	if len(r.Completions) > 0 {
		res.Completions = append([]simtime.Time(nil), r.Completions...)
	}
	return res
}
