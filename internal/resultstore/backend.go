package resultstore

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Backend is the persistence substrate under a Store: a byte-level
// key→value map with enumeration. Everything that makes the store a
// *result* store — key validation, schema stamping and invalidation,
// hit/miss/put accounting, the GC keep-predicate — lives in Store and
// is therefore identical across backends; a backend only moves bytes.
// internal/storetest runs the shared conformance suite against every
// registered backend, which is what makes a new backend correct: it
// passes the suite, it does not resemble the FS code.
//
// Implementations must be safe for concurrent use, and Store must be
// atomic with respect to Load: a concurrent reader sees the old value
// or the new one, never a torn mix.
type Backend interface {
	// Load returns the bytes under key, or ok=false if absent or
	// unreadable (the store degrades to re-simulation, it never fails
	// a sweep on a read).
	Load(key string) ([]byte, bool)
	// Store atomically writes data under key, overwriting.
	Store(key string, data []byte) error
	// Visit enumerates every stored (key, value) pair, additionally
	// reporting how many junk artifacts (e.g. leftover temp files)
	// it swept away; GC adds that to its removed count.
	Visit(fn func(key string, data []byte) error) (junk int, err error)
	// Delete removes key; deleting an absent key is not an error.
	Delete(key string) error
	// Location names where the data lives, for digests and error
	// messages: the root directory for fs, "mem:", "sqlite:FILE".
	Location() string
}

// fsBackend is the default backend and the historical on-disk format:
// DIR/objects/<k0k1>/<key>.json, one file per entry, fanned out on the
// first two hex digits of the key. Writes go through a temp file plus
// rename, so concurrent writers (including separate processes sharing
// one store directory over any filesystem that renames atomically)
// never expose a torn entry — which is what makes the store the merge
// substrate for sharded multi-host sweeps.
type fsBackend struct {
	dir string
}

// NewFS returns the filesystem backend rooted at dir, creating the
// objects/ tree if needed.
func NewFS(dir string) (Backend, error) {
	if dir == "" {
		return nil, errInvalidDir
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &fsBackend{dir: dir}, nil
}

// path maps a (pre-validated) key to its entry file.
func (b *fsBackend) path(key string) string {
	return filepath.Join(b.dir, "objects", key[:2], key+".json")
}

func (b *fsBackend) Load(key string) ([]byte, bool) {
	data, err := os.ReadFile(b.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

func (b *fsBackend) Store(key string, data []byte) error {
	p := b.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key[:8]+"-*.tmp")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: commit %s: %w", key, err)
	}
	return nil
}

func (b *fsBackend) Visit(fn func(key string, data []byte) error) (int, error) {
	junk := 0
	root := filepath.Join(b.dir, "objects")
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(p, ".tmp") {
			if os.Remove(p) == nil {
				junk++
			}
			return nil
		}
		key := strings.TrimSuffix(filepath.Base(p), ".json")
		if len(key) != keyLen || strings.ContainsAny(key, "/\\.") || b.path(key) != p {
			// A file whose name is not a well-formed key at its own
			// fanout path can never be served or addressed by key;
			// sweep it here so Delete(key) stays path-consistent.
			if os.Remove(p) == nil {
				junk++
			}
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			// Unreadable entry: surface it as undecodable so the GC
			// predicate deletes it rather than silently skipping.
			data = nil
		}
		return fn(key, data)
	})
	return junk, err
}

func (b *fsBackend) Delete(key string) error {
	err := os.Remove(b.path(key))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (b *fsBackend) Location() string { return b.dir }
