package resultstore

import "sync"

// memBackend keeps the whole store in a process-local map: zero file
// I/O for tests and ephemeral CI runs (`-store mem:`), and the natural
// substrate for `-race` runs that would otherwise churn tempdirs. A
// mem store dies with the process — sharding across processes through
// it is impossible by construction, which OpenURL's scheme docs state.
type memBackend struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns a fresh, empty in-memory backend.
func NewMem() Backend {
	return &memBackend{m: make(map[string][]byte)}
}

func (b *memBackend) Load(key string) ([]byte, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.m[key]
	return data, ok
}

func (b *memBackend) Store(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = cp
	return nil
}

func (b *memBackend) Visit(fn func(key string, data []byte) error) (int, error) {
	b.mu.RLock()
	keys := make([]string, 0, len(b.m))
	for k := range b.m {
		keys = append(keys, k)
	}
	b.mu.RUnlock()
	for _, k := range keys {
		if data, ok := b.Load(k); ok {
			if err := fn(k, data); err != nil {
				return 0, err
			}
		}
	}
	return 0, nil
}

func (b *memBackend) Delete(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.m, key)
	return nil
}

func (b *memBackend) Location() string { return "mem:" }
