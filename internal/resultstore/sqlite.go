package resultstore

import (
	"errors"

	"repro/internal/campdb"
)

// sqliteBackend stores entries in the single-file campaign database
// behind the CLIs' `-store sqlite:FILE.db` scheme (see internal/campdb
// for the format and why it is a stdlib-only record log rather than a
// driver-backed SQLite file). One file can hold the whole campaign:
// passing the same locator to -store and -coord puts the objects and
// the coordinator state side by side in separate buckets, so a
// finished campaign is one artifact to archive or ship.
type sqliteBackend struct {
	db *campdb.DB
}

// storeBucket holds result entries; internal/coord uses coordBucket in
// the same file.
const storeBucket = "object"

// NewSQLite opens (creating if needed) the campaign database at path
// and returns its store backend.
func NewSQLite(path string) (Backend, error) {
	db, err := campdb.Open(path)
	if err != nil {
		return nil, err
	}
	return &sqliteBackend{db: db}, nil
}

func (b *sqliteBackend) Load(key string) ([]byte, bool) {
	data, err := b.db.Get(storeBucket, key)
	if err != nil {
		return nil, false
	}
	return data, true
}

func (b *sqliteBackend) Store(key string, data []byte) error {
	return b.db.Put(storeBucket, key, data)
}

func (b *sqliteBackend) Visit(fn func(key string, data []byte) error) (int, error) {
	return 0, b.db.Visit(storeBucket, fn)
}

func (b *sqliteBackend) Delete(key string) error {
	if err := b.db.Delete(storeBucket, key); err != nil && !errors.Is(err, campdb.ErrNotExist) {
		return err
	}
	return nil
}

func (b *sqliteBackend) Location() string { return "sqlite:" + b.db.Path() }
