package resultstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Hash accumulates the canonical config hash of one scenario. Every
// component is framed as (len(name), name, len(value), value), so
// adjacent fields can never alias each other ("ab"+"c" vs "a"+"bc") and
// the digest is a function of the labeled component sequence alone —
// stable across processes, platforms and Go versions.
//
// The component order is fixed by the caller; internal/sweep's golden
// hash test pins the resulting digests so any accidental change to the
// recipe (which would silently invalidate or, worse, mis-hit every
// store) fails loudly.
type Hash struct {
	h hash.Hash
}

// NewHash starts a canonical config hash. The schema version is
// deliberately NOT part of the key: a key identifies a configuration,
// while the schema version (recorded inside each entry) governs whether
// a stored outcome is still servable. Keeping keys stable across schema
// bumps means a bump's re-simulation overwrites old entries in place
// instead of orphaning them, and their measured timings keep feeding
// dispatch-cost estimation (Store.ElapsedHint) until overwritten.
func NewHash() *Hash {
	return &Hash{h: sha256.New()}
}

func (h *Hash) frame(b []byte) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	h.h.Write(n[:])
	h.h.Write(b)
}

// Bytes folds in a named binary component.
func (h *Hash) Bytes(name string, v []byte) {
	h.frame([]byte(name))
	h.frame(v)
}

// String folds in a named string component.
func (h *Hash) String(name, v string) { h.Bytes(name, []byte(v)) }

// Int folds in a named integer component.
func (h *Hash) Int(name string, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Bytes(name, b[:])
}

// Bool folds in a named flag.
func (h *Hash) Bool(name string, v bool) {
	b := []byte{0}
	if v {
		b[0] = 1
	}
	h.Bytes(name, b)
}

// Float folds in a named float component via its IEEE-754 bits.
func (h *Hash) Float(name string, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.Bytes(name, b[:])
}

// Sum finalizes the digest as lowercase hex. The Hash must not be used
// afterwards.
func (h *Hash) Sum() string {
	return hex.EncodeToString(h.h.Sum(nil))
}
