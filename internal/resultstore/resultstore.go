// Package resultstore persists simulated scenario results in a
// content-addressed on-disk store, keyed by a canonical config hash of
// every input that determines the outcome (workload content, unit count,
// latency, policy specifier, feature flags, schema version).
//
// The store is the simulator practicing what it simulates: the paper's
// replacement technique avoids redoing reconfiguration work whose result
// is already resident, and the store avoids redoing simulation work whose
// result is already on disk. A sweep re-run with an overlapping grid
// serves the unchanged scenarios from the store and only simulates the
// new ones; internal/sweep guarantees the warm results are byte-identical
// to a cold run.
//
// Persistence is pluggable: a Store is semantics (key validation,
// schema stamping and invalidation, hit/miss accounting, the GC
// predicate) over a byte-level Backend. Three backends ship — the
// default filesystem layout (DIR/objects/<k0k1>/<key>.json, atomic
// temp+rename writes, the merge substrate for sharded multi-host
// sweeps), an in-memory map (tests, ephemeral CI), and the single-file
// campaign database (internal/campdb) behind the `sqlite:FILE.db`
// locator scheme. internal/storetest runs the shared conformance suite
// against all of them; internal/backendurl parses the CLI locator
// syntax shared with -coord.
//
// Invalidation: every entry records the SchemaVersion it was written
// under — inside the entry, deliberately not in the key (since schema
// v2). A version bump makes old entries unservable (Get treats them as
// misses — they can never poison a report) without moving them, so
// re-simulation overwrites them in place and GC deletes whatever
// remains, along with entries that fail to decode or whose recorded key
// does not match their filename.
//
// Entries additionally record the measured wall time of their simulation
// (elapsed_ns, schema v2). It is dispatch steering, never part of the
// result: ElapsedHint serves it across schema versions so even the full
// re-run after a bump dispatches on real measurements, and reports never
// see it.
//
// Three lookups with three accounting rules: Get serves a full entry and
// counts a hit or a miss; Probe serves identically but counts only the
// hit — it is what watch-mode merges poll while remote shards are still
// populating, where "not here yet" is not a miss; ElapsedHint reads only
// the timing, valid under any schema, and counts nothing.
package resultstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/backendurl"
)

// SchemaVersion identifies the entry layout and the config-hash recipe.
// Bump it whenever either changes: the Entry fields, the serialized
// subset of a run result, or the set of inputs folded into scenario keys
// (see internal/sweep's golden hash test). Old entries then read as
// misses and `rtrsim -store-gc` reclaims them.
//
// Since version 2 the schema version lives only inside the entry, not in
// the config-hash key: a bump makes every old entry unservable (Get
// rejects it) without moving it to a different path, so the
// re-simulation overwrites it in place — no orphaned files — and its
// measured timing keeps feeding dispatch-cost estimation through
// ElapsedHint until then.
//
// v2: entries gained the measured ElapsedNS timing and keys stopped
// folding in the schema version.
//
// Strictly-additive optional fields do NOT bump the version: ElapsedNS
// landed inside v2, and the retry metadata (Attempts, LastError,
// RetriedAtNS) followed the same pattern — old entries decode with the
// zero values and stay servable, because reports never read these
// fields.
const SchemaVersion = 2

// Store is a content-addressed result store over a Backend. The zero
// value is not usable; call Open (fs), OpenMem, OpenSQLite, OpenURL,
// or FromBackend. A Store is safe for concurrent use.
type Store struct {
	b Backend

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64

	artHits   atomic.Int64
	artMisses atomic.Int64
	artPuts   atomic.Int64

	writeFailures atomic.Int64
	firstWriteErr atomic.Pointer[string]
}

var errInvalidDir = errors.New("resultstore: empty store directory")

// OpenIfSet resolves the CLI store flags: a nil Store (run without one)
// when the locator is empty or the store is disabled, an opened store
// otherwise. The locator takes the -store flag's backend syntax: a
// bare directory (the fs default), fs:DIR, mem:, sqlite:FILE.db, or an
// http(s)://HOST/c/ID campaign hosted by rtrserved (opts tunes the
// wire client — token, timeout; at most one may be passed).
func OpenIfSet(locator string, disabled bool, opts ...backendurl.HTTPOptions) (*Store, error) {
	if disabled || locator == "" {
		return nil, nil
	}
	return OpenURL("-store", locator, opts...)
}

// OpenURL opens the store named by a backend locator (see
// internal/backendurl), attributing parse errors to the given flag.
func OpenURL(flag, locator string, opts ...backendurl.HTTPOptions) (*Store, error) {
	loc, err := backendurl.Parse(flag, locator)
	if err != nil {
		return nil, err
	}
	switch loc.Scheme {
	case backendurl.SchemeMem:
		return OpenMem(), nil
	case backendurl.SchemeSQLite:
		return OpenSQLite(loc.Path)
	case backendurl.SchemeHTTP, backendurl.SchemeHTTPS:
		var o backendurl.HTTPOptions
		if len(opts) > 0 {
			o = opts[0]
		}
		b, err := backendurl.NewHTTPStore(loc, o)
		if err != nil {
			return nil, err
		}
		return FromBackend(b), nil
	default:
		return Open(loc.Path)
	}
}

// The wire backend implements the Backend contract structurally —
// backendurl cannot import this package — so pin it here.
var _ Backend = (*backendurl.HTTPStore)(nil)

// Open creates (if needed) and opens the filesystem store rooted at dir.
func Open(dir string) (*Store, error) {
	b, err := NewFS(dir)
	if err != nil {
		return nil, err
	}
	return FromBackend(b), nil
}

// OpenMem opens a fresh in-memory store (dies with the process).
func OpenMem() *Store { return FromBackend(NewMem()) }

// OpenSQLite opens the store bucket of the single-file campaign
// database at path, creating the file if needed.
func OpenSQLite(path string) (*Store, error) {
	if path == "" {
		return nil, errInvalidDir
	}
	b, err := NewSQLite(path)
	if err != nil {
		return nil, err
	}
	return FromBackend(b), nil
}

// FromBackend wraps an existing backend in a Store with fresh
// counters. Two Stores over one backend share data but not stats —
// exactly what reopening a store directory always meant.
func FromBackend(b Backend) *Store { return &Store{b: b} }

// Backend exposes the persistence substrate, for conformance tooling
// (internal/storetest rewrites raw entries through it) and for callers
// that need to share one backend across Store handles.
func (s *Store) Backend() Backend { return s.b }

// Dir returns the store's location: the root directory for the fs
// backend, the locator ("mem:", "sqlite:FILE") otherwise. The name is
// historical; treat it as a display string, not necessarily a path.
func (s *Store) Dir() string { return s.b.Location() }

// keyLen is the length of a canonical key: lowercase hex SHA-256.
const keyLen = 64

// validKey gates every lookup and write: canonical keys only, so no
// backend ever sees a key it could mistake for a path escape.
func validKey(key string) error {
	if len(key) != keyLen || strings.ContainsAny(key, "/\\.") {
		return fmt.Errorf("resultstore: malformed key %q", key)
	}
	return nil
}

// Get looks the key up. A missing, undecodable, wrong-schema or
// wrong-key entry is a miss, never an error: the store degrades to
// re-simulation, it does not fail a sweep. The returned Entry is owned by
// the caller.
func (s *Store) Get(key string) (*Entry, bool) {
	e, ok := s.get(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e, true
}

// Probe is Get for pollers: a present, servable entry is decoded and
// counted as a hit exactly like Get, but an absent (or unservable) one
// counts nothing. Watch-mode merges poll it while remote shards are
// still populating the store — repeatedly observing "not here yet" is
// not a miss, and the serve that eventually follows is the scenario's
// only counted lookup, so a watch merge still digests 100% hits with
// one file read per poll.
func (s *Store) Probe(key string) (*Entry, bool) {
	e, ok := s.get(key)
	if !ok {
		return nil, false
	}
	s.hits.Add(1)
	return e, true
}

// get decodes a servable entry, counting nothing.
func (s *Store) get(key string) (*Entry, bool) {
	if validKey(key) != nil {
		return nil, false
	}
	data, ok := s.b.Load(key)
	if !ok {
		return nil, false
	}
	e, ok := decodeServable(key, data)
	if !ok {
		return nil, false
	}
	return e, true
}

// decodeServable is the single definition of "this entry may be
// served": it decodes, carries the current schema version, records the
// key it is filed under, and holds a run. Get, Probe and GC all
// delegate here, so invalidation can never drift between serving and
// collection — on any backend.
func decodeServable(key string, data []byte) (*Entry, bool) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Schema != SchemaVersion || e.Key != key || e.Run == nil {
		return nil, false
	}
	return &e, true
}

// Put writes the entry under key, stamping the current schema version and
// the key into it. The write is atomic (temp file + rename), so a
// concurrent Get sees either the old entry or the new one, never a torn
// file. Failures are additionally recorded on the store (see
// SummaryLine): a full or read-only store directory must degrade to
// re-simulation on the next run, never lose a computed sweep.
func (s *Store) Put(key string, e *Entry) error {
	if err := s.put(key, e); err != nil {
		s.writeFailures.Add(1)
		msg := err.Error()
		s.firstWriteErr.CompareAndSwap(nil, &msg)
		return err
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) put(key string, e *Entry) error {
	if err := validKey(key); err != nil {
		return err
	}
	e.Schema = SchemaVersion
	e.Key = key
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", key, err)
	}
	return s.b.Store(key, data)
}

// elapsedProbe is the minimal decode ElapsedHint performs: the recorded
// key (a self-consistency check) and the measured timing. Every other
// entry field — including the schema version — is irrelevant to a cost
// hint.
type elapsedProbe struct {
	Key       string `json:"key"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// ElapsedHint returns the measured simulation wall time recorded under
// key, for dispatch-cost estimation only. Unlike Get it accepts entries
// written under any schema version: keys deliberately exclude the schema
// version, so after a bump the entry at the same key is unservable but
// its timing is still the best available estimate of what re-simulating
// the scenario will cost. A hint is never a serve — lookups here do not
// touch the hit/miss counters, and a wrong hint costs wall clock, never
// correctness.
func (s *Store) ElapsedHint(key string) (time.Duration, bool) {
	if validKey(key) != nil {
		return 0, false
	}
	data, ok := s.b.Load(key)
	if !ok {
		return 0, false
	}
	var e elapsedProbe
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.ElapsedNS <= 0 {
		return 0, false
	}
	return time.Duration(e.ElapsedNS), true
}

// Stats reports the cumulative lookup and write counters since Open.
func (s *Store) Stats() (hits, misses, puts int64) {
	return s.hits.Load(), s.misses.Load(), s.puts.Load()
}

// SummaryLine renders the counters as the one-line digest the CLIs print
// (to stderr, so stored-result reports stay byte-identical on stdout).
// Degraded writes are appended so a full or read-only store directory is
// visible even though it never fails a run.
func (s *Store) SummaryLine() string {
	hits, misses, puts := s.Stats()
	line := fmt.Sprintf("result store: %d hits, %d misses, %d entries written (%s)",
		hits, misses, puts, s.Dir())
	if ah, am, ap := s.ArtifactStats(); ah+am+ap > 0 {
		line += fmt.Sprintf("; artifacts: %d hits, %d misses, %d written", ah, am, ap)
	}
	if fails := s.writeFailures.Load(); fails > 0 {
		line += fmt.Sprintf("; %d writes FAILED (first: %s)", fails, *s.firstWriteErr.Load())
	}
	return line
}

// RunGC is the CLIs' shared -store-gc entry point: it garbage-collects
// the store and returns the printable one-line digest (which the CI
// determinism gate greps — keep the format stable). A nil store is the
// flag-resolution error.
func RunGC(s *Store) (string, error) {
	if s == nil {
		return "", errors.New("-store-gc needs a store directory (-store DIR or $RTR_STORE)")
	}
	st, err := s.GC()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("store gc: removed %d stale entries, kept %d (%s)",
		st.Removed, st.Kept, s.Dir()), nil
}

// GCStats summarizes one garbage collection pass.
type GCStats struct {
	// Kept is the number of valid entries left in place: current-schema
	// results plus servable design-time artifacts.
	Kept int
	// Removed is the number of files deleted: stale-schema entries,
	// undecodable files, entries whose key does not match their filename,
	// and leftover temp files from interrupted writes.
	Removed int
}

// GC walks the store and deletes every entry that the current code
// could never serve: wrong schema version, undecodable bytes, or a
// recorded key that does not match the key it is filed under. An entry
// survives when it is servable either as a result (decodeServable) or
// as a design-time artifact (decodeArtifactServable) — the two
// envelopes share the key space, and a result-schema bump must not
// throw away design-time work. Backend junk (leftover temp files and
// the like) is swept too and counted in Removed.
func (s *Store) GC() (GCStats, error) {
	var st GCStats
	var stale []string
	junk, err := s.b.Visit(func(key string, data []byte) error {
		if _, ok := decodeServable(key, data); ok {
			st.Kept++
			return nil
		}
		if _, ok := decodeArtifactServable(key, data); ok {
			st.Kept++
			return nil
		}
		stale = append(stale, key)
		return nil
	})
	st.Removed += junk
	if err != nil {
		return st, fmt.Errorf("resultstore: gc: %w", err)
	}
	for _, key := range stale {
		if err := s.b.Delete(key); err != nil {
			return st, fmt.Errorf("resultstore: gc: %w", err)
		}
		st.Removed++
	}
	return st, nil
}
