// Package resultstore persists simulated scenario results in a
// content-addressed on-disk store, keyed by a canonical config hash of
// every input that determines the outcome (workload content, unit count,
// latency, policy specifier, feature flags, schema version).
//
// The store is the simulator practicing what it simulates: the paper's
// replacement technique avoids redoing reconfiguration work whose result
// is already resident, and the store avoids redoing simulation work whose
// result is already on disk. A sweep re-run with an overlapping grid
// serves the unchanged scenarios from the store and only simulates the
// new ones; internal/sweep guarantees the warm results are byte-identical
// to a cold run.
//
// Layout: DIR/objects/<k0k1>/<key>.json, one JSON Entry per scenario,
// fanned out on the first two hex digits of the key. Writes go through a
// temp file plus rename, so concurrent writers (including separate
// processes sharing one store directory over any filesystem that renames
// atomically) never expose a torn entry — which is what makes the store
// the merge substrate for sharded multi-host sweeps.
//
// Invalidation: every entry records the SchemaVersion it was written
// under — inside the entry, deliberately not in the key (since schema
// v2). A version bump makes old entries unservable (Get treats them as
// misses — they can never poison a report) without moving them, so
// re-simulation overwrites them in place and GC deletes whatever
// remains, along with entries that fail to decode or whose recorded key
// does not match their filename.
//
// Entries additionally record the measured wall time of their simulation
// (elapsed_ns, schema v2). It is dispatch steering, never part of the
// result: ElapsedHint serves it across schema versions so even the full
// re-run after a bump dispatches on real measurements, and reports never
// see it.
//
// Three lookups with three accounting rules: Get serves a full entry and
// counts a hit or a miss; Probe serves identically but counts only the
// hit — it is what watch-mode merges poll while remote shards are still
// populating, where "not here yet" is not a miss; ElapsedHint reads only
// the timing, valid under any schema, and counts nothing.
package resultstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// SchemaVersion identifies the entry layout and the config-hash recipe.
// Bump it whenever either changes: the Entry fields, the serialized
// subset of a run result, or the set of inputs folded into scenario keys
// (see internal/sweep's golden hash test). Old entries then read as
// misses and `rtrsim -store-gc` reclaims them.
//
// Since version 2 the schema version lives only inside the entry, not in
// the config-hash key: a bump makes every old entry unservable (Get
// rejects it) without moving it to a different path, so the
// re-simulation overwrites it in place — no orphaned files — and its
// measured timing keeps feeding dispatch-cost estimation through
// ElapsedHint until then.
//
// v2: entries gained the measured ElapsedNS timing and keys stopped
// folding in the schema version.
const SchemaVersion = 2

// Store is a content-addressed result store rooted at a directory. The
// zero value is not usable; call Open. A Store is safe for concurrent use.
type Store struct {
	dir string

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64

	writeFailures atomic.Int64
	firstWriteErr atomic.Pointer[string]
}

// OpenIfSet resolves the CLI store flags: a nil Store (run without one)
// when dir is empty or the store is disabled, an opened store otherwise.
func OpenIfSet(dir string, disabled bool) (*Store, error) {
	if disabled || dir == "" {
		return nil, nil
	}
	return Open(dir)
}

// Open creates (if needed) and opens the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("resultstore: empty store directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// keyLen is the length of a canonical key: lowercase hex SHA-256.
const keyLen = 64

// path maps a key to its entry file, fanning out on the leading hex
// digits to keep directories small under large grids.
func (s *Store) path(key string) (string, error) {
	if len(key) != keyLen || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("resultstore: malformed key %q", key)
	}
	return filepath.Join(s.dir, "objects", key[:2], key+".json"), nil
}

// Get looks the key up. A missing, undecodable, wrong-schema or
// wrong-key entry is a miss, never an error: the store degrades to
// re-simulation, it does not fail a sweep. The returned Entry is owned by
// the caller.
func (s *Store) Get(key string) (*Entry, bool) {
	e, ok := s.get(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e, true
}

// Probe is Get for pollers: a present, servable entry is decoded and
// counted as a hit exactly like Get, but an absent (or unservable) one
// counts nothing. Watch-mode merges poll it while remote shards are
// still populating the store — repeatedly observing "not here yet" is
// not a miss, and the serve that eventually follows is the scenario's
// only counted lookup, so a watch merge still digests 100% hits with
// one file read per poll.
func (s *Store) Probe(key string) (*Entry, bool) {
	e, ok := s.get(key)
	if !ok {
		return nil, false
	}
	s.hits.Add(1)
	return e, true
}

// get decodes a servable entry, counting nothing.
func (s *Store) get(key string) (*Entry, bool) {
	p, err := s.path(key)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Schema != SchemaVersion || e.Key != key || e.Run == nil {
		return nil, false
	}
	return &e, true
}

// Put writes the entry under key, stamping the current schema version and
// the key into it. The write is atomic (temp file + rename), so a
// concurrent Get sees either the old entry or the new one, never a torn
// file. Failures are additionally recorded on the store (see
// SummaryLine): a full or read-only store directory must degrade to
// re-simulation on the next run, never lose a computed sweep.
func (s *Store) Put(key string, e *Entry) error {
	if err := s.put(key, e); err != nil {
		s.writeFailures.Add(1)
		msg := err.Error()
		s.firstWriteErr.CompareAndSwap(nil, &msg)
		return err
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) put(key string, e *Entry) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	e.Schema = SchemaVersion
	e.Key = key
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", key, err)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key[:8]+"-*.tmp")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: commit %s: %w", key, err)
	}
	return nil
}

// elapsedProbe is the minimal decode ElapsedHint performs: the recorded
// key (a self-consistency check) and the measured timing. Every other
// entry field — including the schema version — is irrelevant to a cost
// hint.
type elapsedProbe struct {
	Key       string `json:"key"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// ElapsedHint returns the measured simulation wall time recorded under
// key, for dispatch-cost estimation only. Unlike Get it accepts entries
// written under any schema version: keys deliberately exclude the schema
// version, so after a bump the entry at the same key is unservable but
// its timing is still the best available estimate of what re-simulating
// the scenario will cost. A hint is never a serve — lookups here do not
// touch the hit/miss counters, and a wrong hint costs wall clock, never
// correctness.
func (s *Store) ElapsedHint(key string) (time.Duration, bool) {
	p, err := s.path(key)
	if err != nil {
		return 0, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return 0, false
	}
	var e elapsedProbe
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.ElapsedNS <= 0 {
		return 0, false
	}
	return time.Duration(e.ElapsedNS), true
}

// Stats reports the cumulative lookup and write counters since Open.
func (s *Store) Stats() (hits, misses, puts int64) {
	return s.hits.Load(), s.misses.Load(), s.puts.Load()
}

// SummaryLine renders the counters as the one-line digest the CLIs print
// (to stderr, so stored-result reports stay byte-identical on stdout).
// Degraded writes are appended so a full or read-only store directory is
// visible even though it never fails a run.
func (s *Store) SummaryLine() string {
	hits, misses, puts := s.Stats()
	line := fmt.Sprintf("result store: %d hits, %d misses, %d entries written (%s)",
		hits, misses, puts, s.dir)
	if fails := s.writeFailures.Load(); fails > 0 {
		line += fmt.Sprintf("; %d writes FAILED (first: %s)", fails, *s.firstWriteErr.Load())
	}
	return line
}

// RunGC is the CLIs' shared -store-gc entry point: it garbage-collects
// the store and returns the printable one-line digest (which the CI
// determinism gate greps — keep the format stable). A nil store is the
// flag-resolution error.
func RunGC(s *Store) (string, error) {
	if s == nil {
		return "", errors.New("-store-gc needs a store directory (-store DIR or $RTR_STORE)")
	}
	st, err := s.GC()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("store gc: removed %d stale entries, kept %d (%s)",
		st.Removed, st.Kept, s.dir), nil
}

// GCStats summarizes one garbage collection pass.
type GCStats struct {
	// Kept is the number of valid current-schema entries left in place.
	Kept int
	// Removed is the number of files deleted: stale-schema entries,
	// undecodable files, entries whose key does not match their filename,
	// and leftover temp files from interrupted writes.
	Removed int
}

// GC walks the store and deletes every entry that the current code could
// never serve: wrong schema version, undecodable JSON, or a recorded key
// that does not match the filename. Leftover temp files are removed too.
func (s *Store) GC() (GCStats, error) {
	var st GCStats
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(p, ".tmp") {
			if os.Remove(p) == nil {
				st.Removed++
			}
			return nil
		}
		key := strings.TrimSuffix(filepath.Base(p), ".json")
		data, err := os.ReadFile(p)
		var e Entry
		valid := err == nil &&
			json.Unmarshal(data, &e) == nil &&
			e.Schema == SchemaVersion && e.Key == key && e.Run != nil
		if valid {
			st.Kept++
			return nil
		}
		if err := os.Remove(p); err != nil {
			return err
		}
		st.Removed++
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("resultstore: gc: %w", err)
	}
	return st, nil
}
