package resultstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

func testKey(seed byte) string {
	b := make([]byte, 0, 64)
	for i := 0; i < 64; i++ {
		b = append(b, "0123456789abcdef"[(int(seed)+i)%16])
	}
	return string(b)
}

func sampleEntry() *Entry {
	return &Entry{
		Scenario: "LRU R=4 latency=4 ms",
		Run: &Run{
			Makespan: simtime.FromMs(70), Executed: 15, Reused: 5, Loads: 10,
			Evictions: 6, Skips: 1, Graphs: 3,
			Completions: []simtime.Time{simtime.FromMs(30), simtime.FromMs(70)},
			Events:      42,
		},
		Ideal: &Run{Makespan: simtime.FromMs(50), Executed: 15, Graphs: 3, Events: 40},
		Summary: &metrics.Summary{
			PolicyName: "LRU", RUs: 4, Latency: simtime.FromMs(4),
			Executed: 15, Reused: 5, Loads: 10, Skips: 1,
			Makespan: simtime.FromMs(70), IdealMakespan: simtime.FromMs(50),
		},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	want := sampleEntry()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Schema != SchemaVersion || got.Key != key {
		t.Errorf("entry stamped schema=%d key=%q", got.Schema, got.Key)
	}
	if !reflect.DeepEqual(got.Run, want.Run) ||
		!reflect.DeepEqual(got.Ideal, want.Ideal) ||
		!reflect.DeepEqual(got.Summary, want.Summary) {
		t.Errorf("round trip mutated the entry:\ngot  %+v\nwant %+v", got, want)
	}
	hits, misses, puts := s.Stats()
	if hits != 1 || misses != 1 || puts != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/1/1", hits, misses, puts)
	}
	if !strings.Contains(s.SummaryLine(), "1 hits, 1 misses, 1 entries written") {
		t.Errorf("summary line %q", s.SummaryLine())
	}
}

func TestGetRejectsBadEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	write := func(key string, mutate func(*Entry)) {
		t.Helper()
		e := sampleEntry()
		if err := s.Put(key, e); err != nil {
			t.Fatal(err)
		}
		e.Schema = SchemaVersion // Put stamped it; apply the corruption
		mutate(e)
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "objects", key[:2], key+".json")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	stale := testKey(2)
	write(stale, func(e *Entry) { e.Schema = SchemaVersion + 1 })
	if _, ok := s.Get(stale); ok {
		t.Error("stale-schema entry served")
	}

	wrongKey := testKey(3)
	write(wrongKey, func(e *Entry) { e.Key = testKey(4) })
	if _, ok := s.Get(wrongKey); ok {
		t.Error("entry with mismatched key served")
	}

	noRun := testKey(5)
	write(noRun, func(e *Entry) { e.Run = nil })
	if _, ok := s.Get(noRun); ok {
		t.Error("entry without a run served")
	}

	corrupt := testKey(6)
	if err := s.Put(corrupt, sampleEntry()); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "objects", corrupt[:2], corrupt+".json")
	if err := os.WriteFile(p, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(corrupt); ok {
		t.Error("corrupt entry served")
	}
}

func TestGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, stale, corrupt := testKey(7), testKey(8), testKey(9)
	for _, k := range []string{good, stale, corrupt} {
		if err := s.Put(k, sampleEntry()); err != nil {
			t.Fatal(err)
		}
	}
	// Rewrite one entry under a future schema and truncate another.
	e := sampleEntry()
	e.Schema = SchemaVersion + 1
	e.Key = stale
	data, _ := json.Marshal(e)
	if err := os.WriteFile(filepath.Join(dir, "objects", stale[:2], stale+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "objects", corrupt[:2], corrupt+".json"), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A leftover temp file from an interrupted write.
	if err := os.WriteFile(filepath.Join(dir, "objects", good[:2], ".leftover.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 || st.Removed != 3 {
		t.Errorf("gc kept %d removed %d, want 1/3", st.Kept, st.Removed)
	}
	if _, ok := s.Get(good); !ok {
		t.Error("gc removed a valid entry")
	}
	if _, ok := s.Get(stale); ok {
		t.Error("gc left a stale entry servable")
	}
}

func TestOpenAndKeyValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open accepted an empty dir")
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	traversal := "__/" + testKey(1)[3:] // right length, path separator inside
	for _, bad := range []string{"", "ab", "abcd", "../../../../etc/passwd", traversal, testKey(1) + "00"} {
		if err := s.Put(bad, sampleEntry()); err == nil {
			t.Errorf("Put accepted malformed key %q", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Errorf("Get hit on malformed key %q", bad)
		}
	}
}

func TestPutFailureIsRecorded(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Any failing write path records the degradation; a malformed key is
	// the one that fails identically on every platform and as any user.
	if err := s.Put("abcd", sampleEntry()); err == nil {
		t.Fatal("malformed key accepted")
	}
	if _, _, puts := s.Stats(); puts != 0 {
		t.Error("failed write counted as a put")
	}
	if !strings.Contains(s.SummaryLine(), "1 writes FAILED") {
		t.Errorf("summary line hides the failure: %q", s.SummaryLine())
	}
	if err := s.Put(testKey(1), sampleEntry()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.SummaryLine(), "1 entries written") ||
		!strings.Contains(s.SummaryLine(), "1 writes FAILED") {
		t.Errorf("summary line after recovery: %q", s.SummaryLine())
	}
}

func TestRunRecordRoundTrip(t *testing.T) {
	orig := &manager.Result{
		Makespan: simtime.FromMs(123), Executed: 9, Reused: 4, Loads: 5,
		Evictions: 2, Skips: 1, ForcedSkips: 1, Preloads: 3, Graphs: 2,
		Completions: []simtime.Time{simtime.FromMs(60), simtime.FromMs(123)},
		Events:      77,
	}
	rec := RecordRun(orig)
	back := rec.Result()
	if back.Trace != nil || back.Templates != nil {
		t.Error("reconstructed result carries trace/templates")
	}
	orig.Templates = nil // never serialized
	if !reflect.DeepEqual(back, orig) {
		t.Errorf("round trip:\ngot  %+v\nwant %+v", back, orig)
	}
	if RecordRun(nil) != nil || (*Run)(nil).Result() != nil {
		t.Error("nil round trip not nil")
	}
	// The record must not alias the original's completions.
	rec.Completions[0] = 0
	if orig.Completions[0] == 0 {
		t.Error("RecordRun aliases Completions")
	}
}

// TestElapsedHint covers the dispatch-cost probe: it serves recorded
// timings for current AND stale-schema entries (the key identifies the
// configuration; only servability is schema-gated), never counts toward
// the hit/miss stats, and rejects anything that could misattribute a
// timing — a missing entry, a zero/absent measurement, a key mismatch.
// TestProbeMatchesGetServability: Probe must serve exactly what Get
// serves — while counting hits only, never misses, the property that
// keeps a watch merge's polling invisible in the store digest.
func TestProbeMatchesGetServability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(4)
	if _, ok := s.Probe(key); ok {
		t.Error("Probe served from an empty store")
	}
	if _, ok := s.Probe("not-a-key"); ok {
		t.Error("Probe served a malformed key")
	}
	if err := s.Put(key, sampleEntry()); err != nil {
		t.Fatal(err)
	}
	ent, ok := s.Probe(key)
	if !ok || ent.Run == nil || ent.Scenario != sampleEntry().Scenario {
		t.Errorf("Probe of a fresh entry = (%+v, %v), want the full entry", ent, ok)
	}

	// A stale-schema or run-less rewrite is unservable for both.
	p := filepath.Join(dir, "objects", key[:2], key+".json")
	for name, corrupt := range map[string]func(e *Entry){
		"stale schema": func(e *Entry) { e.Schema = SchemaVersion + 1 },
		"missing run":  func(e *Entry) { e.Run = nil },
	} {
		e := sampleEntry()
		e.Schema, e.Key = SchemaVersion, key
		corrupt(e)
		data, _ := json.Marshal(e)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Probe(key); ok {
			t.Errorf("%s: Probe served where Get would miss", name)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("%s: Get served it after all — Probe and Get disagree", name)
		}
	}

	// Accounting: the one successful Probe is a hit; the four failed
	// probes count nothing; only the two deliberate Get calls are misses.
	hits, misses, puts := s.Stats()
	if hits != 1 || misses != 2 || puts != 1 {
		t.Errorf("stats hits=%d misses=%d puts=%d, want 1/2/1 — Probe must count hits only", hits, misses, puts)
	}
}

func TestElapsedHint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if _, ok := s.ElapsedHint(key); ok {
		t.Error("hint served from an empty store")
	}
	e := sampleEntry()
	e.ElapsedNS = 123456789
	if err := s.Put(key, e); err != nil {
		t.Fatal(err)
	}
	if d, ok := s.ElapsedHint(key); !ok || d.Nanoseconds() != 123456789 {
		t.Errorf("hint = %v, %v; want 123456789ns", d, ok)
	}

	// A stale-schema rewrite keeps the timing servable as a hint while
	// Get refuses the outcome.
	e.Schema = SchemaVersion + 1
	e.Key = key
	data, _ := json.Marshal(e)
	p := filepath.Join(dir, "objects", key[:2], key+".json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Error("stale-schema entry served as an outcome")
	}
	if d, ok := s.ElapsedHint(key); !ok || d.Nanoseconds() != 123456789 {
		t.Errorf("stale-schema hint = %v, %v; want the recorded timing", d, ok)
	}

	// No recorded measurement → no hint.
	noTime := testKey(2)
	if err := s.Put(noTime, sampleEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ElapsedHint(noTime); ok {
		t.Error("hint served from an entry without a measurement")
	}

	// A key mismatch (hand-moved file) must not leak another scenario's
	// timing, and malformed keys are rejected like everywhere else.
	e.Key = testKey(3)
	data, _ = json.Marshal(e)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ElapsedHint(key); ok {
		t.Error("hint served despite a key mismatch")
	}
	if _, ok := s.ElapsedHint("not-a-key"); ok {
		t.Error("hint served for a malformed key")
	}

	// Hint traffic never pollutes the serve stats the CI gates grep.
	hits, misses, _ := s.Stats()
	if hits != 0 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d after hint lookups, want only the one real Get miss", hits, misses)
	}
}

func TestHashFramingAndDeterminism(t *testing.T) {
	digest := func(build func(*Hash)) string {
		h := NewHash()
		build(h)
		return h.Sum()
	}
	base := digest(func(h *Hash) { h.String("a", "bc") })
	if base != digest(func(h *Hash) { h.String("a", "bc") }) {
		t.Error("hash not deterministic")
	}
	for name, other := range map[string]func(*Hash){
		"field split":  func(h *Hash) { h.String("ab", "c") },
		"name/value":   func(h *Hash) { h.String("abc", "") },
		"extra field":  func(h *Hash) { h.String("a", "bc"); h.Bool("x", false) },
		"int vs str":   func(h *Hash) { h.Int("a", 0x6362) },
		"empty":        func(*Hash) {},
		"float vs int": func(h *Hash) { h.Float("a", 1) },
	} {
		if got := digest(other); got == base {
			t.Errorf("%s collides with base digest", name)
		}
	}
	if len(base) != 64 {
		t.Errorf("digest length %d, want 64 hex chars", len(base))
	}
}
