package taskgraph

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestJSONRoundTrip(t *testing.T) {
	g := ForkJoin("fig3-tg2", 4, ms(12), []simtime.Time{ms(8), ms(6)}, ms(6), true)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatalf("FromJSON: %v\njson: %s", err, data)
	}
	if back.Name() != g.Name() || back.NumTasks() != g.NumTasks() {
		t.Fatalf("round trip changed shape: %v vs %v", back, g)
	}
	for i := 0; i < g.NumTasks(); i++ {
		if back.Task(i) != g.Task(i) {
			t.Errorf("task %d: %+v vs %+v", i, back.Task(i), g.Task(i))
		}
		if len(back.Preds(i)) != len(g.Preds(i)) {
			t.Errorf("task %d preds differ", i)
		}
	}
	r1, r2 := g.RecSequenceIDs(), back.RecSequenceIDs()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("rec sequence differs: %v vs %v", r1, r2)
		}
	}
}

func TestJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		g, err := RandomLayered("r", RandomConfig{
			Tasks: 1 + rng.Intn(10), MaxWidth: 3, EdgeProb: 0.4,
			MinExec: ms(0.5), MaxExec: ms(8),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		back, err := FromJSON(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		data2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Fatalf("trial %d: not stable:\n%s\n%s", trial, data, data2)
		}
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "{"},
		{"no tasks", `{"name":"g","tasks":[]}`},
		{"bad exec", `{"name":"g","tasks":[{"id":1,"exec_ms":0}]}`},
		{"negative exec", `{"name":"g","tasks":[{"id":1,"exec_ms":-2}]}`},
		{"cycle", `{"name":"g","tasks":[{"id":1,"exec_ms":1},{"id":2,"exec_ms":1}],
			"deps":[{"from":1,"to":2},{"from":2,"to":1}]}`},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromJSON([]byte(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestDOT(t *testing.T) {
	g := Chain("c", 1, ms(2.5), ms(4))
	dot := g.DOT()
	for _, frag := range []string{`digraph "c"`, "t1 ->", "t2", "2.5 ms"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}
