package taskgraph

import (
	"fmt"
	"math/rand"

	"repro/internal/simtime"
)

// Chain builds a linear pipeline: ids[0] → ids[1] → … Each task i gets
// execution time execs[i]. Fig. 2's two motivational graphs are chains.
func Chain(name string, firstID TaskID, execs ...simtime.Time) *Graph {
	b := NewBuilder(name)
	for i, e := range execs {
		id := firstID + TaskID(i)
		b.AddTask(id, fmt.Sprintf("%s.t%d", name, i+1), e)
		if i > 0 {
			b.AddDep(id-1, id)
		}
	}
	return b.MustBuild()
}

// ForkJoin builds root → {branches…} → sink when sink is true, or just
// root → {branches…} when false. Fig. 3's Task Graph 1 is a fork
// (no sink); its Task Graph 2 is a diamond (fork-join with two branches).
func ForkJoin(name string, firstID TaskID, rootExec simtime.Time, branchExecs []simtime.Time, sinkExec simtime.Time, sink bool) *Graph {
	b := NewBuilder(name)
	root := firstID
	b.AddTask(root, name+".root", rootExec)
	id := root
	for i, e := range branchExecs {
		id++
		b.AddTask(id, fmt.Sprintf("%s.b%d", name, i+1), e)
		b.AddDep(root, id)
	}
	if sink {
		sid := id + 1
		b.AddTask(sid, name+".sink", sinkExec)
		for bi := root + 1; bi <= id; bi++ {
			b.AddDep(bi, sid)
		}
	}
	return b.MustBuild()
}

// RandomConfig parametrizes RandomLayered.
type RandomConfig struct {
	Tasks       int          // total number of tasks (≥1)
	MaxWidth    int          // maximum tasks per layer (≥1)
	EdgeProb    float64      // probability of an edge between adjacent-layer pairs
	MinExec     simtime.Time // per-task execution time bounds
	MaxExec     simtime.Time
	LongEdges   bool // also allow edges skipping layers
	FirstTaskID TaskID
}

// RandomLayered generates a random layered DAG: tasks are dealt into
// layers of random width (≤ MaxWidth) and edges point from earlier to
// later layers. Every non-root task receives at least one predecessor so
// the graph is connected enough to exercise dependency handling.
// Generation is fully determined by rng, keeping experiments reproducible.
func RandomLayered(name string, cfg RandomConfig, rng *rand.Rand) (*Graph, error) {
	if cfg.Tasks < 1 {
		return nil, fmt.Errorf("taskgraph: RandomLayered needs ≥1 task, got %d", cfg.Tasks)
	}
	if cfg.MaxWidth < 1 {
		return nil, fmt.Errorf("taskgraph: RandomLayered needs MaxWidth ≥1, got %d", cfg.MaxWidth)
	}
	if cfg.MinExec <= 0 || cfg.MaxExec < cfg.MinExec {
		return nil, fmt.Errorf("taskgraph: bad exec bounds [%v, %v]", cfg.MinExec, cfg.MaxExec)
	}
	first := cfg.FirstTaskID
	if first <= NoTask {
		first = 1
	}
	b := NewBuilder(name)
	// Deal tasks into layers.
	var layers [][]TaskID
	id := first
	remaining := cfg.Tasks
	for remaining > 0 {
		w := 1 + rng.Intn(cfg.MaxWidth)
		if w > remaining {
			w = remaining
		}
		layer := make([]TaskID, 0, w)
		for i := 0; i < w; i++ {
			exec := cfg.MinExec
			if span := int64(cfg.MaxExec - cfg.MinExec); span > 0 {
				exec += simtime.Time(rng.Int63n(span + 1))
			}
			b.AddTask(id, fmt.Sprintf("%s.n%d", name, int(id-first)+1), exec)
			layer = append(layer, id)
			id++
		}
		layers = append(layers, layer)
		remaining -= w
	}
	// Wire edges.
	for li := 1; li < len(layers); li++ {
		for _, to := range layers[li] {
			wired := false
			lo := li - 1
			if cfg.LongEdges {
				lo = 0
			}
			for lj := lo; lj < li; lj++ {
				for _, from := range layers[lj] {
					if rng.Float64() < cfg.EdgeProb {
						b.AddDep(from, to)
						wired = true
					}
				}
			}
			if !wired { // guarantee at least one predecessor
				prev := layers[li-1]
				b.AddDep(prev[rng.Intn(len(prev))], to)
			}
		}
	}
	return b.Build()
}
