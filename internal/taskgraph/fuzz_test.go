package taskgraph

import (
	"encoding/json"
	"testing"
)

// FuzzFromJSON ensures arbitrary input never panics the graph decoder and
// that everything it accepts is a valid graph that round-trips.
func FuzzFromJSON(f *testing.F) {
	seeds := []string{
		`{"name":"g","tasks":[{"id":1,"exec_ms":1}]}`,
		`{"name":"g","tasks":[{"id":1,"exec_ms":2.5},{"id":2,"exec_ms":4}],
		  "deps":[{"from":1,"to":2}]}`,
		`{"name":"g","tasks":[{"id":1,"exec_ms":1},{"id":2,"exec_ms":1}],
		  "deps":[{"from":1,"to":2},{"from":2,"to":1}]}`,
		`{"name":"g","tasks":[{"id":1,"exec_ms":1}],"rec_sequence":[1]}`,
		`{}`, `[]`, `null`, `{"tasks":`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := FromJSON(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted graphs must satisfy the package invariants.
		if g.NumTasks() == 0 {
			t.Fatal("accepted empty graph")
		}
		order := g.TopoOrder()
		if len(order) != g.NumTasks() {
			t.Fatalf("topological order incomplete: %d of %d", len(order), g.NumTasks())
		}
		pos := map[int]int{}
		for k, i := range g.RecSequence() {
			pos[i] = k
		}
		for i := 0; i < g.NumTasks(); i++ {
			if g.Task(i).Exec <= 0 {
				t.Fatal("accepted non-positive exec time")
			}
			for _, p := range g.Preds(i) {
				if pos[p] > pos[i] {
					t.Fatal("rec sequence not topological")
				}
			}
		}
		// And survive a round trip.
		out, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("marshal of accepted graph failed: %v", err)
		}
		if _, err := FromJSON(out); err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
	})
}
