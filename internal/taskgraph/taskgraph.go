// Package taskgraph models the applications executed by the reconfigurable
// system: directed acyclic graphs whose nodes are hardware tasks (one FPGA
// configuration each) and whose edges are data dependencies.
//
// A Graph is an immutable template built once (normally at design time) via
// a Builder. Workloads reference Graph templates; the execution manager
// instantiates per-run bookkeeping separately, so a single template can be
// enqueued many times, which is exactly how the paper's experiments use the
// JPEG / MPEG-1 / Hough graphs.
//
// Task identity matters: reuse is keyed on TaskID. Two executions of the
// same template share TaskIDs, so a configuration left on a reconfigurable
// unit by an earlier run can be reused by a later one.
package taskgraph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/internal/simtime"
)

// TaskID identifies a hardware task configuration. IDs are global to a
// workload: distinct applications must use distinct IDs, while repeated
// executions of one application share them (that is what makes reuse
// possible).
type TaskID int

// NoTask is the zero TaskID, never used by a valid task.
const NoTask TaskID = 0

// Task is one node of a task graph: a hardware task with a fixed execution
// time once its configuration is resident on a reconfigurable unit.
type Task struct {
	ID   TaskID
	Name string
	Exec simtime.Time // pure execution time, excluding reconfiguration
}

// Graph is an immutable task graph template.
type Graph struct {
	name  string
	tasks []Task  // indexed by local task index
	succs [][]int // successor local indices, per task
	preds [][]int // predecessor local indices, per task
	byID  map[TaskID]int
	rec   []int    // reconfiguration sequence (local indices, topological)
	recID []TaskID // rec as TaskIDs, precomputed once at Build time
	maxID TaskID   // largest TaskID in the graph

	fpOnce sync.Once // guards fp (content fingerprint, computed lazily)
	fp     string
}

// Fingerprint returns the template's content fingerprint: lowercase hex
// SHA-256 of its canonical JSON encoding (sorted dependencies, explicit
// reconfiguration sequence, millisecond execution times). Two templates
// with identical content share a fingerprint even when they are distinct
// pointers — in particular a template re-parsed from its own JSON in
// another process — which is what lets design-time artifacts computed
// once be reused across processes and hosts. Memoized on first use; safe
// for concurrent use.
func (g *Graph) Fingerprint() string {
	g.fpOnce.Do(func() {
		data, err := g.MarshalJSON()
		if err != nil {
			// A Builder-validated graph always encodes; colliding silently
			// on an empty fingerprint would be far worse than failing loud.
			panic(fmt.Sprintf("taskgraph: fingerprint %q: %v", g.name, err))
		}
		sum := sha256.Sum256(data)
		g.fp = hex.EncodeToString(sum[:])
	})
	return g.fp
}

// MaxTaskID returns the largest TaskID used by the graph. Array-backed
// per-task state (e.g. the manager's protected set) sizes itself from
// this.
func (g *Graph) MaxTaskID() TaskID { return g.maxID }

// Name returns the template's human-readable name.
func (g *Graph) Name() string { return g.name }

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// Task returns the task at local index i.
func (g *Graph) Task(i int) Task { return g.tasks[i] }

// Tasks returns a copy of the task list in local-index order.
func (g *Graph) Tasks() []Task {
	out := make([]Task, len(g.tasks))
	copy(out, g.tasks)
	return out
}

// Succs returns the local indices of i's successors. The returned slice
// must not be modified.
func (g *Graph) Succs(i int) []int { return g.succs[i] }

// Preds returns the local indices of i's predecessors. The returned slice
// must not be modified.
func (g *Graph) Preds(i int) []int { return g.preds[i] }

// IndexOf returns the local index of the task with the given ID, or -1.
func (g *Graph) IndexOf(id TaskID) int {
	if i, ok := g.byID[id]; ok {
		return i
	}
	return -1
}

// RecSequence returns the reconfiguration sequence: the order in which the
// manager loads the graph's configurations. It is always a topological
// order. The returned slice must not be modified.
func (g *Graph) RecSequence() []int { return g.rec }

// RecSequenceIDs returns the reconfiguration sequence as TaskIDs, in a
// fresh slice.
func (g *Graph) RecSequenceIDs() []TaskID {
	out := make([]TaskID, len(g.recID))
	copy(out, g.recID)
	return out
}

// AppendRecIDs appends the reconfiguration sequence's TaskIDs to dst and
// returns the extended slice. Unlike RecSequenceIDs it allocates nothing
// beyond dst's own growth — the IDs are precomputed at Build time — which
// is what keeps lookahead construction in the simulation hot loop
// allocation-free.
func (g *Graph) AppendRecIDs(dst []TaskID) []TaskID {
	return append(dst, g.recID...)
}

// TotalExec returns the sum of all task execution times (the serial
// execution time on a single unit with no reconfiguration cost).
func (g *Graph) TotalExec() simtime.Time {
	var s simtime.Time
	for _, t := range g.tasks {
		s = s.Add(t.Exec)
	}
	return s
}

// String summarizes the graph.
func (g *Graph) String() string {
	edges := 0
	for _, s := range g.succs {
		edges += len(s)
	}
	return fmt.Sprintf("%s{%d tasks, %d deps, total %v}", g.name, len(g.tasks), edges, g.TotalExec())
}

// A Builder accumulates tasks and dependencies and validates them into an
// immutable Graph.
type Builder struct {
	name   string
	tasks  []Task
	byID   map[TaskID]int
	edges  [][2]int // (from, to) local indices
	recIDs []TaskID // optional explicit reconfiguration order
	err    error    // first error encountered; reported by Build
}

// NewBuilder starts a graph named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byID: make(map[TaskID]int)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("taskgraph %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// AddTask adds a task. IDs must be positive and unique within the graph;
// execution times must be positive.
func (b *Builder) AddTask(id TaskID, name string, exec simtime.Time) *Builder {
	if id <= NoTask {
		b.fail("task %q: non-positive id %d", name, id)
		return b
	}
	if exec <= 0 {
		b.fail("task %d (%s): non-positive execution time %v", id, name, exec)
		return b
	}
	if _, dup := b.byID[id]; dup {
		b.fail("duplicate task id %d", id)
		return b
	}
	b.byID[id] = len(b.tasks)
	b.tasks = append(b.tasks, Task{ID: id, Name: name, Exec: exec})
	return b
}

// AddDep records that task `to` depends on task `from` (from → to). Both
// tasks must already have been added.
func (b *Builder) AddDep(from, to TaskID) *Builder {
	fi, ok := b.byID[from]
	if !ok {
		b.fail("dependency %d→%d: unknown task %d", from, to, from)
		return b
	}
	ti, ok := b.byID[to]
	if !ok {
		b.fail("dependency %d→%d: unknown task %d", from, to, to)
		return b
	}
	if fi == ti {
		b.fail("self-dependency on task %d", from)
		return b
	}
	b.edges = append(b.edges, [2]int{fi, ti})
	return b
}

// SetRecSequence overrides the default reconfiguration order with an
// explicit one. It must mention every task exactly once and be a
// topological order; Build verifies both.
func (b *Builder) SetRecSequence(ids ...TaskID) *Builder {
	b.recIDs = append([]TaskID(nil), ids...)
	return b
}

// Build validates the accumulated definition and returns the immutable
// Graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.tasks) == 0 {
		return nil, fmt.Errorf("taskgraph %q: no tasks", b.name)
	}
	n := len(b.tasks)
	g := &Graph{
		name:  b.name,
		tasks: append([]Task(nil), b.tasks...),
		succs: make([][]int, n),
		preds: make([][]int, n),
		byID:  make(map[TaskID]int, n),
	}
	for id, i := range b.byID {
		g.byID[id] = i
	}
	seen := make(map[[2]int]bool, len(b.edges))
	for _, e := range b.edges {
		if seen[e] {
			continue // collapse duplicate edges
		}
		seen[e] = true
		g.succs[e[0]] = append(g.succs[e[0]], e[1])
		g.preds[e[1]] = append(g.preds[e[1]], e[0])
	}
	for i := range g.succs {
		sort.Ints(g.succs[i])
		sort.Ints(g.preds[i])
	}
	order, ok := topoOrder(g)
	if !ok {
		return nil, fmt.Errorf("taskgraph %q: dependency cycle", b.name)
	}
	if b.recIDs != nil {
		rec, err := g.checkRecSequence(b.recIDs)
		if err != nil {
			return nil, fmt.Errorf("taskgraph %q: %v", b.name, err)
		}
		g.rec = rec
	} else {
		g.rec = defaultRecSequence(g, order)
	}
	g.recID = make([]TaskID, len(g.rec))
	for k, i := range g.rec {
		g.recID[k] = g.tasks[i].ID
	}
	for _, t := range g.tasks {
		if t.ID > g.maxID {
			g.maxID = t.ID
		}
	}
	return g, nil
}

// MustBuild is Build, panicking on error. Intended for the static graph
// definitions in workload libraries and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// checkRecSequence validates an explicit order and converts it to local
// indices.
func (g *Graph) checkRecSequence(ids []TaskID) ([]int, error) {
	if len(ids) != len(g.tasks) {
		return nil, fmt.Errorf("rec sequence has %d entries, graph has %d tasks", len(ids), len(g.tasks))
	}
	rec := make([]int, len(ids))
	pos := make(map[int]int, len(ids)) // local index -> position
	for k, id := range ids {
		i, ok := g.byID[id]
		if !ok {
			return nil, fmt.Errorf("rec sequence mentions unknown task %d", id)
		}
		if _, dup := pos[i]; dup {
			return nil, fmt.Errorf("rec sequence mentions task %d twice", id)
		}
		pos[i] = k
		rec[k] = i
	}
	for i := range g.tasks {
		for _, p := range g.preds[i] {
			if pos[p] > pos[i] {
				return nil, fmt.Errorf("rec sequence loads task %d before its predecessor %d",
					g.tasks[i].ID, g.tasks[p].ID)
			}
		}
	}
	return rec, nil
}
