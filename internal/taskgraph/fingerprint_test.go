package taskgraph

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/simtime"
)

func fpGraph(t *testing.T, name string, exec simtime.Time) *Graph {
	t.Helper()
	g, err := NewBuilder(name).
		AddTask(1, "a", exec).
		AddTask(2, "b", exec).
		AddDep(1, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFingerprintContentKeyed: identical content ⇒ identical
// fingerprint across distinct pointers; any content change ⇒ different
// fingerprint.
func TestFingerprintContentKeyed(t *testing.T) {
	a := fpGraph(t, "g", simtime.FromMs(5))
	b := fpGraph(t, "g", simtime.FromMs(5))
	if a == b {
		t.Fatal("helper returned one pointer twice")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("content-identical graphs fingerprint differently")
	}
	if len(a.Fingerprint()) != 64 {
		t.Errorf("fingerprint %q is not 64-hex", a.Fingerprint())
	}
	for _, other := range []*Graph{
		fpGraph(t, "g2", simtime.FromMs(5)), // name
		fpGraph(t, "g", simtime.FromMs(6)),  // exec times
	} {
		if other.Fingerprint() == a.Fingerprint() {
			t.Errorf("distinct graph %s shares a's fingerprint", other.Name())
		}
	}
	// Structure: same tasks, no dependency.
	loose, err := NewBuilder("g").
		AddTask(1, "a", simtime.FromMs(5)).
		AddTask(2, "b", simtime.FromMs(5)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if loose.Fingerprint() == a.Fingerprint() {
		t.Error("dropping a dependency did not change the fingerprint")
	}
}

// TestFingerprintSurvivesReparse is the cross-process property the
// artifact cache keys on: a graph re-parsed from its own JSON in another
// process derives the same fingerprint.
func TestFingerprintSurvivesReparse(t *testing.T) {
	g := fpGraph(t, "roundtrip", simtime.FromMs(7))
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Errorf("fingerprint changed across a JSON round trip: %s vs %s",
			g.Fingerprint()[:12], g2.Fingerprint()[:12])
	}
}

// TestFingerprintConcurrent: the lazy memoization must be safe under
// concurrent first use.
func TestFingerprintConcurrent(t *testing.T) {
	g := fpGraph(t, "conc", simtime.FromMs(3))
	var wg sync.WaitGroup
	got := make([]string, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = g.Fingerprint()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("concurrent fingerprints diverge: %q vs %q", got[i], got[0])
		}
	}
}
