package taskgraph

import (
	"sort"

	"repro/internal/simtime"
)

// topoOrder returns a topological order of g's local indices using Kahn's
// algorithm with a deterministic (lowest-index-first) tie break, and
// reports whether the graph is acyclic.
func topoOrder(g *Graph) ([]int, bool) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.preds[i])
	}
	// ready is kept sorted ascending; n is small (graphs are a handful of
	// nodes), so linear insertion is fine and keeps the order stable.
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		for _, s := range g.succs[i] {
			indeg[s]--
			if indeg[s] == 0 {
				at := sort.SearchInts(ready, s)
				ready = append(ready, 0)
				copy(ready[at+1:], ready[at:])
				ready[at] = s
			}
		}
	}
	return order, len(order) == n
}

// TopoOrder returns a deterministic topological order of the graph's local
// indices.
func (g *Graph) TopoOrder() []int {
	order, _ := topoOrder(g) // construction guarantees acyclicity
	return append([]int(nil), order...)
}

// ASAPStarts returns, per local index, the earliest possible execution
// start assuming unlimited reconfigurable units and zero reconfiguration
// latency: start(i) = max over predecessors p of start(p)+exec(p).
func (g *Graph) ASAPStarts() []simtime.Time {
	order, _ := topoOrder(g)
	start := make([]simtime.Time, len(g.tasks))
	for _, i := range order {
		for _, p := range g.preds[i] {
			if f := start[p].Add(g.tasks[p].Exec); f.After(start[i]) {
				start[i] = f
			}
		}
	}
	return start
}

// CriticalPath returns the length of the longest execution-time path
// through the graph: the ideal makespan with unlimited units and free
// reconfiguration. The paper's Table II "Initial Execution Time" column is
// this quantity for each benchmark.
func (g *Graph) CriticalPath() simtime.Time {
	start := g.ASAPStarts()
	var m simtime.Time
	for i, t := range g.tasks {
		if f := start[i].Add(t.Exec); f.After(m) {
			m = f
		}
	}
	return m
}

// Levels groups local indices by ASAP depth: level 0 holds the roots,
// level k the tasks whose longest predecessor chain has k edges.
func (g *Graph) Levels() [][]int {
	order, _ := topoOrder(g)
	depth := make([]int, len(g.tasks))
	max := 0
	for _, i := range order {
		for _, p := range g.preds[i] {
			if depth[p]+1 > depth[i] {
				depth[i] = depth[p] + 1
			}
		}
		if depth[i] > max {
			max = depth[i]
		}
	}
	levels := make([][]int, max+1)
	for i, d := range depth {
		levels[d] = append(levels[d], i)
	}
	return levels
}

// Width returns the size of the largest level: the graph's peak potential
// parallelism.
func (g *Graph) Width() int {
	w := 0
	for _, l := range g.Levels() {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}

// defaultRecSequence orders loads by ASAP execution start, breaking ties by
// insertion (local index) order. For the paper's graphs, whose tasks are
// declared in execution order, this reproduces the paper's 1,2,…,n load
// order; for arbitrary graphs it is a sensible prefetch-friendly order
// (tasks needed sooner are loaded sooner) and always topological.
func defaultRecSequence(g *Graph, topo []int) []int {
	start := make([]simtime.Time, len(g.tasks))
	for _, i := range topo {
		for _, p := range g.preds[i] {
			if f := start[p].Add(g.tasks[p].Exec); f.After(start[i]) {
				start[i] = f
			}
		}
	}
	rec := make([]int, len(g.tasks))
	for i := range rec {
		rec[i] = i
	}
	sort.SliceStable(rec, func(a, b int) bool {
		if start[rec[a]] != start[rec[b]] {
			return start[rec[a]].Before(start[rec[b]])
		}
		return rec[a] < rec[b]
	})
	return rec
}
