package taskgraph

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

// fig2TG1 is Task Graph 1 of the paper's Fig. 2: chain 1(2.5)→2(2.5)→3(4).
func fig2TG1(t *testing.T) *Graph {
	t.Helper()
	return Chain("fig2-tg1", 1, ms(2.5), ms(2.5), ms(4))
}

func TestBuilderBasics(t *testing.T) {
	g := fig2TG1(t)
	if g.NumTasks() != 3 {
		t.Fatalf("NumTasks = %d, want 3", g.NumTasks())
	}
	if g.Task(0).ID != 1 || g.Task(2).ID != 3 {
		t.Errorf("task ids: %v %v", g.Task(0).ID, g.Task(2).ID)
	}
	if got := g.TotalExec(); got != ms(9) {
		t.Errorf("TotalExec = %v, want 9 ms", got)
	}
	if got := g.IndexOf(2); got != 1 {
		t.Errorf("IndexOf(2) = %d, want 1", got)
	}
	if got := g.IndexOf(99); got != -1 {
		t.Errorf("IndexOf(99) = %d, want -1", got)
	}
	if len(g.Preds(0)) != 0 || len(g.Succs(0)) != 1 || g.Succs(0)[0] != 1 {
		t.Errorf("adjacency of task 1 wrong: preds=%v succs=%v", g.Preds(0), g.Succs(0))
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*Graph, error)
		frag  string
	}{
		{"empty", func() (*Graph, error) { return NewBuilder("g").Build() }, "no tasks"},
		{"zero id", func() (*Graph, error) {
			return NewBuilder("g").AddTask(0, "a", ms(1)).Build()
		}, "non-positive id"},
		{"negative exec", func() (*Graph, error) {
			return NewBuilder("g").AddTask(1, "a", -ms(1)).Build()
		}, "non-positive execution time"},
		{"dup id", func() (*Graph, error) {
			return NewBuilder("g").AddTask(1, "a", ms(1)).AddTask(1, "b", ms(1)).Build()
		}, "duplicate task id"},
		{"unknown dep from", func() (*Graph, error) {
			return NewBuilder("g").AddTask(1, "a", ms(1)).AddDep(7, 1).Build()
		}, "unknown task 7"},
		{"unknown dep to", func() (*Graph, error) {
			return NewBuilder("g").AddTask(1, "a", ms(1)).AddDep(1, 7).Build()
		}, "unknown task 7"},
		{"self dep", func() (*Graph, error) {
			return NewBuilder("g").AddTask(1, "a", ms(1)).AddDep(1, 1).Build()
		}, "self-dependency"},
		{"cycle", func() (*Graph, error) {
			return NewBuilder("g").
				AddTask(1, "a", ms(1)).AddTask(2, "b", ms(1)).
				AddDep(1, 2).AddDep(2, 1).Build()
		}, "cycle"},
		{"rec wrong len", func() (*Graph, error) {
			return NewBuilder("g").AddTask(1, "a", ms(1)).AddTask(2, "b", ms(1)).
				SetRecSequence(1).Build()
		}, "entries"},
		{"rec unknown", func() (*Graph, error) {
			return NewBuilder("g").AddTask(1, "a", ms(1)).SetRecSequence(9).Build()
		}, "unknown task"},
		{"rec dup", func() (*Graph, error) {
			return NewBuilder("g").AddTask(1, "a", ms(1)).AddTask(2, "b", ms(1)).
				SetRecSequence(1, 1).Build()
		}, "twice"},
		{"rec not topological", func() (*Graph, error) {
			return NewBuilder("g").AddTask(1, "a", ms(1)).AddTask(2, "b", ms(1)).
				AddDep(1, 2).SetRecSequence(2, 1).Build()
		}, "before its predecessor"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Errorf("error %q does not mention %q", err, tt.frag)
			}
		})
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	g, err := NewBuilder("g").
		AddTask(1, "a", ms(1)).AddTask(2, "b", ms(1)).
		AddDep(1, 2).AddDep(1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Succs(0)) != 1 {
		t.Errorf("duplicate edge not collapsed: %v", g.Succs(0))
	}
}

func TestTopoOrderChain(t *testing.T) {
	g := fig2TG1(t)
	order := g.TopoOrder()
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("TopoOrder = %v, want %v", order, want)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	// Fig. 3 Task Graph 2: diamond 4(12)→{5(8),6(6)}→7(6); critical path
	// 12+8+6 = 26 ms.
	g := ForkJoin("fig3-tg2", 4, ms(12), []simtime.Time{ms(8), ms(6)}, ms(6), true)
	if got := g.CriticalPath(); got != ms(26) {
		t.Errorf("CriticalPath = %v, want 26 ms", got)
	}
	// Chain: critical path = total.
	c := fig2TG1(t)
	if got := c.CriticalPath(); got != ms(9) {
		t.Errorf("chain CriticalPath = %v, want 9 ms", got)
	}
}

func TestASAPStarts(t *testing.T) {
	g := ForkJoin("fj", 4, ms(12), []simtime.Time{ms(8), ms(6)}, ms(6), true)
	starts := g.ASAPStarts()
	want := []simtime.Time{0, ms(12), ms(12), ms(20)}
	for i := range want {
		if starts[i] != want[i] {
			t.Errorf("ASAPStarts[%d] = %v, want %v", i, starts[i], want[i])
		}
	}
}

func TestLevelsAndWidth(t *testing.T) {
	g := ForkJoin("fj", 1, ms(1), []simtime.Time{ms(1), ms(1), ms(1)}, ms(1), true)
	levels := g.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if got := g.Width(); got != 3 {
		t.Errorf("Width = %d, want 3", got)
	}
}

func TestDefaultRecSequenceMatchesPaperOrder(t *testing.T) {
	// For the paper's graphs (declared in execution order) the default
	// reconfiguration sequence must be 1..n.
	g := ForkJoin("fig3-tg2", 4, ms(12), []simtime.Time{ms(8), ms(6)}, ms(6), true)
	got := g.RecSequenceIDs()
	want := []TaskID{4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RecSequenceIDs = %v, want %v", got, want)
		}
	}
}

func TestExplicitRecSequence(t *testing.T) {
	g, err := NewBuilder("g").
		AddTask(1, "a", ms(1)).AddTask(2, "b", ms(2)).AddTask(3, "c", ms(3)).
		AddDep(1, 3).
		SetRecSequence(2, 1, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	got := g.RecSequenceIDs()
	want := []TaskID{2, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RecSequenceIDs = %v, want %v", got, want)
		}
	}
}

func TestRecSequenceAlwaysTopological(t *testing.T) {
	g := ForkJoin("fj", 1, ms(5), []simtime.Time{ms(1), ms(9)}, ms(2), true)
	pos := make(map[int]int)
	for k, i := range g.RecSequence() {
		pos[i] = k
	}
	for i := 0; i < g.NumTasks(); i++ {
		for _, p := range g.Preds(i) {
			if pos[p] > pos[i] {
				t.Fatalf("rec sequence not topological: pred %d after %d", p, i)
			}
		}
	}
}

func TestStringer(t *testing.T) {
	g := fig2TG1(t)
	s := g.String()
	for _, frag := range []string{"fig2-tg1", "3 tasks", "2 deps", "9 ms"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestTasksCopyIsolated(t *testing.T) {
	g := fig2TG1(t)
	ts := g.Tasks()
	ts[0].Exec = ms(999)
	if g.Task(0).Exec == ms(999) {
		t.Error("Tasks() must return a copy")
	}
}
