package taskgraph

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// graphJSON is the stable on-disk representation of a Graph.
type graphJSON struct {
	Name  string     `json:"name"`
	Tasks []taskJSON `json:"tasks"`
	Deps  []depJSON  `json:"deps,omitempty"`
	Rec   []TaskID   `json:"rec_sequence,omitempty"`
}

type taskJSON struct {
	ID     TaskID  `json:"id"`
	Name   string  `json:"name,omitempty"`
	ExecMs float64 `json:"exec_ms"`
}

type depJSON struct {
	From TaskID `json:"from"`
	To   TaskID `json:"to"`
}

// MarshalJSON encodes the graph with millisecond execution times, matching
// the units used throughout the paper.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{Name: g.name, Rec: g.RecSequenceIDs()}
	for _, t := range g.tasks {
		out.Tasks = append(out.Tasks, taskJSON{ID: t.ID, Name: t.Name, ExecMs: t.Exec.Ms()})
	}
	for i, succs := range g.succs {
		for _, s := range succs {
			out.Deps = append(out.Deps, depJSON{From: g.tasks[i].ID, To: g.tasks[s].ID})
		}
	}
	sort.Slice(out.Deps, func(a, b int) bool {
		if out.Deps[a].From != out.Deps[b].From {
			return out.Deps[a].From < out.Deps[b].From
		}
		return out.Deps[a].To < out.Deps[b].To
	})
	return json.Marshal(out)
}

// FromJSON decodes a graph previously encoded with MarshalJSON (or written
// by hand in the same schema), validating it like a Builder would.
func FromJSON(data []byte) (*Graph, error) {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("taskgraph: decode: %v", err)
	}
	b := NewBuilder(in.Name)
	for _, t := range in.Tasks {
		exec, err := msToTime(t.ExecMs)
		if err != nil {
			return nil, fmt.Errorf("taskgraph %q task %d: %v", in.Name, t.ID, err)
		}
		b.AddTask(t.ID, t.Name, exec)
	}
	for _, d := range in.Deps {
		b.AddDep(d.From, d.To)
	}
	if len(in.Rec) > 0 {
		b.SetRecSequence(in.Rec...)
	}
	return b.Build()
}

func msToTime(ms float64) (simtime.Time, error) {
	if ms <= 0 {
		return 0, fmt.Errorf("non-positive exec_ms %v", ms)
	}
	return simtime.FromMs(ms), nil
}

// DOT renders the graph in Graphviz dot syntax, labeling nodes with their
// execution times, in the style of the paper's figures.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for _, t := range g.tasks {
		label := fmt.Sprintf("%d\\n%v", t.ID, t.Exec)
		if t.Name != "" {
			label = fmt.Sprintf("%d %s\\n%v", t.ID, t.Name, t.Exec)
		}
		fmt.Fprintf(&b, "  t%d [label=\"%s\"];\n", t.ID, label)
	}
	for i, succs := range g.succs {
		for _, s := range succs {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", g.tasks[i].ID, g.tasks[s].ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
