package taskgraph

import (
	"math/rand"
	"testing"

	"repro/internal/simtime"
)

func TestChain(t *testing.T) {
	g := Chain("c", 10, ms(1), ms(2), ms(3))
	if g.NumTasks() != 3 {
		t.Fatalf("NumTasks = %d", g.NumTasks())
	}
	if g.Task(0).ID != 10 || g.Task(2).ID != 12 {
		t.Errorf("ids = %d..%d, want 10..12", g.Task(0).ID, g.Task(2).ID)
	}
	if g.CriticalPath() != ms(6) {
		t.Errorf("CriticalPath = %v, want 6 ms", g.CriticalPath())
	}
	if len(g.Preds(2)) != 1 || g.Preds(2)[0] != 1 {
		t.Errorf("Preds(2) = %v", g.Preds(2))
	}
}

func TestForkJoinNoSink(t *testing.T) {
	// Fig. 3 Task Graph 1: 1(12) → {2(6), 3(6)}.
	g := ForkJoin("tg1", 1, ms(12), []simtime.Time{ms(6), ms(6)}, 0, false)
	if g.NumTasks() != 3 {
		t.Fatalf("NumTasks = %d, want 3", g.NumTasks())
	}
	if g.CriticalPath() != ms(18) {
		t.Errorf("CriticalPath = %v, want 18 ms", g.CriticalPath())
	}
	if len(g.Succs(0)) != 2 {
		t.Errorf("root should have 2 successors, has %v", g.Succs(0))
	}
}

func TestRandomLayeredValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		g, err := RandomLayered("r", RandomConfig{
			Tasks:       n,
			MaxWidth:    1 + rng.Intn(4),
			EdgeProb:    rng.Float64(),
			MinExec:     ms(1),
			MaxExec:     ms(20),
			LongEdges:   trial%2 == 0,
			FirstTaskID: TaskID(1 + trial*100),
		}, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.NumTasks() != n {
			t.Fatalf("trial %d: NumTasks = %d, want %d", trial, g.NumTasks(), n)
		}
		// Built via Builder, so acyclicity etc. already hold; verify the
		// structural promises the generator makes.
		roots := 0
		for i := 0; i < n; i++ {
			if len(g.Preds(i)) == 0 {
				roots++
			}
			tk := g.Task(i)
			if tk.Exec < ms(1) || tk.Exec > ms(20) {
				t.Fatalf("trial %d: exec %v out of bounds", trial, tk.Exec)
			}
		}
		if roots == 0 {
			t.Fatalf("trial %d: no roots in a DAG", trial)
		}
	}
}

func TestRandomLayeredDeterminism(t *testing.T) {
	cfg := RandomConfig{Tasks: 9, MaxWidth: 3, EdgeProb: 0.5, MinExec: ms(1), MaxExec: ms(10)}
	g1, err := RandomLayered("r", cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomLayered("r", cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := g1.MarshalJSON()
	j2, _ := g2.MarshalJSON()
	if string(j1) != string(j2) {
		t.Errorf("same seed produced different graphs:\n%s\n%s", j1, j2)
	}
}

func TestRandomLayeredErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []RandomConfig{
		{Tasks: 0, MaxWidth: 1, MinExec: ms(1), MaxExec: ms(2)},
		{Tasks: 3, MaxWidth: 0, MinExec: ms(1), MaxExec: ms(2)},
		{Tasks: 3, MaxWidth: 2, MinExec: 0, MaxExec: ms(2)},
		{Tasks: 3, MaxWidth: 2, MinExec: ms(3), MaxExec: ms(2)},
	}
	for i, cfg := range cases {
		if _, err := RandomLayered("r", cfg, rng); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
