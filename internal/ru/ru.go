// Package ru models the reconfigurable hardware substrate assumed by the
// paper: a set of equal-sized reconfigurable units (RUs), each able to hold
// one task configuration at a time, fed by a single reconfiguration
// circuitry that can perform one load at a time with a fixed latency.
//
// This mirrors the multi-tasking reconfigurable architectures of the
// paper's references [7, 8] (network-on-chip hosted reconfigurable tiles
// and parallel configuration models): units are interchangeable, so a task
// can be placed on any unit, and reuse means finding the task's
// configuration already resident on some unit.
package ru

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// Unit is the state of one reconfigurable unit.
type Unit struct {
	// Resident is the configuration currently held, or taskgraph.NoTask
	// when the unit has never been loaded.
	Resident taskgraph.TaskID
	// Busy reports whether the resident task is executing right now.
	Busy bool
	// BusyUntil is the end of the current execution (valid when Busy).
	BusyUntil simtime.Time
	// LastUse is when the resident configuration last finished executing;
	// this is the LRU key. A reused configuration refreshes it.
	LastUse simtime.Time
	// LoadedAt is when the resident configuration was written; this is
	// the FIFO key. Reuse does not refresh it.
	LoadedAt simtime.Time
	// Loads counts configurations written onto this unit.
	Loads int
	// Reuses counts executions that found their configuration already
	// resident here.
	Reuses int
}

// Array is the bank of reconfigurable units.
type Array struct {
	units     []Unit
	residency map[taskgraph.TaskID]int // resident task -> unit index
}

// NewArray creates n empty units. n must be positive.
func NewArray(n int) (*Array, error) {
	if n < 1 {
		return nil, fmt.Errorf("ru: need at least 1 unit, got %d", n)
	}
	return &Array{
		units:     make([]Unit, n),
		residency: make(map[taskgraph.TaskID]int, n),
	}, nil
}

// Reset re-initialises the array to n empty units, reusing the unit
// storage and the residency index of previous runs where possible. n must
// be positive. A pooled simulation runner calls this once per run instead
// of allocating a fresh Array.
func (a *Array) Reset(n int) error {
	if n < 1 {
		return fmt.Errorf("ru: need at least 1 unit, got %d", n)
	}
	if n <= cap(a.units) {
		a.units = a.units[:n]
		clear(a.units)
	} else {
		a.units = make([]Unit, n)
	}
	if a.residency == nil {
		a.residency = make(map[taskgraph.TaskID]int, n)
	} else {
		clear(a.residency)
	}
	return nil
}

// Len returns the number of units.
func (a *Array) Len() int { return len(a.units) }

// Unit returns a copy of unit i's state.
func (a *Array) Unit(i int) Unit { return a.units[i] }

// Find returns the unit currently holding task, if any.
func (a *Array) Find(task taskgraph.TaskID) (int, bool) {
	i, ok := a.residency[task]
	return i, ok
}

// FirstEmpty returns the lowest-indexed unit that has never been loaded.
func (a *Array) FirstEmpty() (int, bool) {
	for i := range a.units {
		if a.units[i].Resident == taskgraph.NoTask {
			return i, true
		}
	}
	return -1, false
}

// Install writes task's configuration onto unit i at time at, evicting
// whatever was resident. It returns the evicted task (NoTask if the unit
// was empty). Installing onto a busy unit is a programming error.
func (a *Array) Install(i int, task taskgraph.TaskID, at simtime.Time) taskgraph.TaskID {
	u := &a.units[i]
	if u.Busy {
		panic(fmt.Sprintf("ru: installing task %d on busy unit %d", task, i))
	}
	evicted := u.Resident
	if evicted != taskgraph.NoTask {
		delete(a.residency, evicted)
	}
	u.Resident = task
	u.LoadedAt = at
	u.LastUse = at
	u.Loads++
	a.residency[task] = i
	return evicted
}

// StartExecution marks unit i busy until end. The unit must hold a
// configuration and be idle.
func (a *Array) StartExecution(i int, end simtime.Time) {
	u := &a.units[i]
	if u.Resident == taskgraph.NoTask {
		panic(fmt.Sprintf("ru: executing on empty unit %d", i))
	}
	if u.Busy {
		panic(fmt.Sprintf("ru: unit %d already executing", i))
	}
	u.Busy = true
	u.BusyUntil = end
}

// FinishExecution marks unit i idle at time at and refreshes the LRU key.
func (a *Array) FinishExecution(i int, at simtime.Time) {
	u := &a.units[i]
	if !u.Busy {
		panic(fmt.Sprintf("ru: finishing idle unit %d", i))
	}
	u.Busy = false
	u.LastUse = at
}

// CountReuse records that unit i's resident configuration is being reused.
func (a *Array) CountReuse(i int) { a.units[i].Reuses++ }

// TotalLoads sums configuration writes across all units.
func (a *Array) TotalLoads() int {
	n := 0
	for i := range a.units {
		n += a.units[i].Loads
	}
	return n
}

// TotalReuses sums reuses across all units.
func (a *Array) TotalReuses() int {
	n := 0
	for i := range a.units {
		n += a.units[i].Reuses
	}
	return n
}

// Reconfigurator is the single reconfiguration circuitry. Only one load
// can be in flight at a time; latency is fixed per load.
type Reconfigurator struct {
	latency simtime.Time

	active    bool
	task      taskgraph.TaskID
	target    int
	busyUntil simtime.Time

	loads     int
	busyTotal simtime.Time
}

// NewReconfigurator creates a circuitry with the given per-load latency.
// Latency may be zero (used to compute ideal schedules) but not negative.
func NewReconfigurator(latency simtime.Time) (*Reconfigurator, error) {
	if latency < 0 {
		return nil, fmt.Errorf("ru: negative reconfiguration latency %v", latency)
	}
	return &Reconfigurator{latency: latency}, nil
}

// Reset re-initialises the circuitry for a new run with the given
// per-load latency, clearing the in-flight load and the counters.
func (r *Reconfigurator) Reset(latency simtime.Time) error {
	if latency < 0 {
		return fmt.Errorf("ru: negative reconfiguration latency %v", latency)
	}
	*r = Reconfigurator{latency: latency}
	return nil
}

// Latency returns the per-load latency.
func (r *Reconfigurator) Latency() simtime.Time { return r.latency }

// Idle reports whether the circuitry can accept a load.
func (r *Reconfigurator) Idle() bool { return !r.active }

// Begin starts loading task onto unit target at time at using the default
// latency, and returns the completion time. Beginning a load while busy
// is a programming error.
func (r *Reconfigurator) Begin(task taskgraph.TaskID, target int, at simtime.Time) simtime.Time {
	return r.BeginLatency(task, target, at, r.latency)
}

// BeginLatency is Begin with an explicit per-load latency, supporting
// heterogeneous configurations (bitstream sizes differing per task).
func (r *Reconfigurator) BeginLatency(task taskgraph.TaskID, target int, at, latency simtime.Time) simtime.Time {
	if r.active {
		panic(fmt.Sprintf("ru: reconfigurator busy with task %d, cannot load %d", r.task, task))
	}
	if latency < 0 {
		panic(fmt.Sprintf("ru: negative latency %v for task %d", latency, task))
	}
	r.active = true
	r.task = task
	r.target = target
	r.busyUntil = at.Add(latency)
	r.loads++
	r.busyTotal = r.busyTotal.Add(latency)
	return r.busyUntil
}

// Finish completes the in-flight load and returns the task and target unit.
func (r *Reconfigurator) Finish() (taskgraph.TaskID, int) {
	if !r.active {
		panic("ru: finishing an idle reconfigurator")
	}
	r.active = false
	return r.task, r.target
}

// InFlight returns the task being loaded and its target while active.
func (r *Reconfigurator) InFlight() (taskgraph.TaskID, int, bool) {
	return r.task, r.target, r.active
}

// Loads returns the number of loads performed.
func (r *Reconfigurator) Loads() int { return r.loads }

// BusyTotal returns the cumulative time spent loading.
func (r *Reconfigurator) BusyTotal() simtime.Time { return r.busyTotal }
