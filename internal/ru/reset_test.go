package ru

import (
	"testing"

	"repro/internal/simtime"
)

// TestArrayReset: a reset array is indistinguishable from a new one —
// empty units, no residency — including when shrinking or growing.
func TestArrayReset(t *testing.T) {
	a, err := NewArray(4)
	if err != nil {
		t.Fatal(err)
	}
	a.Install(0, 7, simtime.FromMs(1))
	a.Install(3, 9, simtime.FromMs(2))
	for _, n := range []int{4, 2, 6} {
		if err := a.Reset(n); err != nil {
			t.Fatal(err)
		}
		if a.Len() != n {
			t.Fatalf("Reset(%d): len = %d", n, a.Len())
		}
		if _, ok := a.Find(7); ok {
			t.Fatalf("Reset(%d): residency survived", n)
		}
		if i, ok := a.FirstEmpty(); !ok || i != 0 {
			t.Fatalf("Reset(%d): first empty = %d,%v", n, i, ok)
		}
		if a.TotalLoads() != 0 || a.TotalReuses() != 0 {
			t.Fatalf("Reset(%d): counters survived", n)
		}
		a.Install(0, 7, simtime.FromMs(1))
	}
	if err := a.Reset(0); err == nil {
		t.Error("Reset accepted 0 units")
	}
}

// TestReconfiguratorReset clears in-flight state and counters and applies
// the new latency.
func TestReconfiguratorReset(t *testing.T) {
	r, err := NewReconfigurator(simtime.FromMs(4))
	if err != nil {
		t.Fatal(err)
	}
	r.Begin(5, 1, 0)
	if err := r.Reset(simtime.FromMs(2)); err != nil {
		t.Fatal(err)
	}
	if !r.Idle() || r.Loads() != 0 || r.BusyTotal() != 0 {
		t.Fatalf("state survived Reset: idle=%v loads=%d busy=%v", r.Idle(), r.Loads(), r.BusyTotal())
	}
	if r.Latency() != simtime.FromMs(2) {
		t.Errorf("latency = %v, want 2ms", r.Latency())
	}
	if end := r.Begin(6, 0, 0); end != simtime.FromMs(2) {
		t.Errorf("load end = %v, want 2ms", end)
	}
	if err := r.Reset(-1); err == nil {
		t.Error("Reset accepted negative latency")
	}
}
