package ru

import (
	"testing"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

func mustArray(t *testing.T, n int) *Array {
	t.Helper()
	a, err := NewArray(n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(0); err == nil {
		t.Error("NewArray(0) should fail")
	}
	if _, err := NewArray(-3); err == nil {
		t.Error("NewArray(-3) should fail")
	}
	a := mustArray(t, 4)
	if a.Len() != 4 {
		t.Errorf("Len = %d, want 4", a.Len())
	}
}

func TestInstallAndFind(t *testing.T) {
	a := mustArray(t, 2)
	if _, ok := a.Find(7); ok {
		t.Error("Find on empty array")
	}
	i, ok := a.FirstEmpty()
	if !ok || i != 0 {
		t.Fatalf("FirstEmpty = %d,%v, want 0,true", i, ok)
	}
	if ev := a.Install(0, 7, ms(1)); ev != taskgraph.NoTask {
		t.Errorf("evicted %d from empty unit", ev)
	}
	if i, ok := a.Find(7); !ok || i != 0 {
		t.Errorf("Find(7) = %d,%v", i, ok)
	}
	i, ok = a.FirstEmpty()
	if !ok || i != 1 {
		t.Fatalf("FirstEmpty after one install = %d,%v", i, ok)
	}
	a.Install(1, 8, ms(2))
	if _, ok := a.FirstEmpty(); ok {
		t.Error("FirstEmpty on full array")
	}
	// Replacement evicts and rekeys residency.
	if ev := a.Install(0, 9, ms(3)); ev != 7 {
		t.Errorf("evicted %d, want 7", ev)
	}
	if _, ok := a.Find(7); ok {
		t.Error("evicted task still resident")
	}
	if i, ok := a.Find(9); !ok || i != 0 {
		t.Errorf("Find(9) = %d,%v", i, ok)
	}
	if a.TotalLoads() != 3 {
		t.Errorf("TotalLoads = %d, want 3", a.TotalLoads())
	}
}

func TestExecutionLifecycle(t *testing.T) {
	a := mustArray(t, 1)
	a.Install(0, 5, ms(0))
	a.StartExecution(0, ms(10))
	u := a.Unit(0)
	if !u.Busy || u.BusyUntil != ms(10) {
		t.Errorf("unit after start: %+v", u)
	}
	a.FinishExecution(0, ms(10))
	u = a.Unit(0)
	if u.Busy {
		t.Error("unit still busy after finish")
	}
	if u.LastUse != ms(10) {
		t.Errorf("LastUse = %v, want 10 ms", u.LastUse)
	}
}

func TestReuseRefreshesLRUNotFIFO(t *testing.T) {
	a := mustArray(t, 1)
	a.Install(0, 5, ms(0))
	a.StartExecution(0, ms(4))
	a.FinishExecution(0, ms(4))
	a.CountReuse(0)
	a.StartExecution(0, ms(9))
	a.FinishExecution(0, ms(9))
	u := a.Unit(0)
	if u.LastUse != ms(9) {
		t.Errorf("LastUse = %v, want 9 ms (refreshed by reuse)", u.LastUse)
	}
	if u.LoadedAt != ms(0) {
		t.Errorf("LoadedAt = %v, want 0 ms (not refreshed)", u.LoadedAt)
	}
	if u.Reuses != 1 || a.TotalReuses() != 1 {
		t.Errorf("Reuses = %d / %d, want 1 / 1", u.Reuses, a.TotalReuses())
	}
}

func TestInstallPanicsOnBusy(t *testing.T) {
	a := mustArray(t, 1)
	a.Install(0, 5, ms(0))
	a.StartExecution(0, ms(10))
	defer func() {
		if recover() == nil {
			t.Error("Install on busy unit did not panic")
		}
	}()
	a.Install(0, 6, ms(1))
}

func TestStartExecutionPanics(t *testing.T) {
	t.Run("empty unit", func(t *testing.T) {
		a := mustArray(t, 1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		a.StartExecution(0, ms(1))
	})
	t.Run("double start", func(t *testing.T) {
		a := mustArray(t, 1)
		a.Install(0, 5, ms(0))
		a.StartExecution(0, ms(2))
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		a.StartExecution(0, ms(3))
	})
}

func TestFinishExecutionPanicsWhenIdle(t *testing.T) {
	a := mustArray(t, 1)
	a.Install(0, 5, ms(0))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.FinishExecution(0, ms(1))
}

func TestReconfigurator(t *testing.T) {
	if _, err := NewReconfigurator(-ms(1)); err == nil {
		t.Error("negative latency accepted")
	}
	r, err := NewReconfigurator(ms(4))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Idle() || r.Latency() != ms(4) {
		t.Error("fresh reconfigurator state wrong")
	}
	end := r.Begin(7, 2, ms(10))
	if end != ms(14) {
		t.Errorf("Begin returned %v, want 14 ms", end)
	}
	if r.Idle() {
		t.Error("reconfigurator should be busy")
	}
	task, tgt, active := r.InFlight()
	if !active || task != 7 || tgt != 2 {
		t.Errorf("InFlight = %d,%d,%v", task, tgt, active)
	}
	task, tgt = r.Finish()
	if task != 7 || tgt != 2 || !r.Idle() {
		t.Errorf("Finish = %d,%d idle=%v", task, tgt, r.Idle())
	}
	if r.Loads() != 1 || r.BusyTotal() != ms(4) {
		t.Errorf("stats: loads=%d busy=%v", r.Loads(), r.BusyTotal())
	}
}

func TestReconfiguratorZeroLatency(t *testing.T) {
	r, err := NewReconfigurator(0)
	if err != nil {
		t.Fatal(err)
	}
	if end := r.Begin(1, 0, ms(5)); end != ms(5) {
		t.Errorf("zero-latency load ends at %v, want 5 ms", end)
	}
}

func TestReconfiguratorPanics(t *testing.T) {
	t.Run("double begin", func(t *testing.T) {
		r, _ := NewReconfigurator(ms(4))
		r.Begin(1, 0, 0)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		r.Begin(2, 1, 0)
	})
	t.Run("finish idle", func(t *testing.T) {
		r, _ := NewReconfigurator(ms(4))
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		r.Finish()
	})
}
