// Package benchgate turns the benchmark artifact CI already archives
// (`BENCH_ci.json`, the `go test -json` stream of the per-commit bench
// job) into an enforced budget instead of a passive record. It parses
// the benchmark result lines out of the stream, extracts the custom
// metrics the hot-loop benchmark reports (ns/event, allocs/event), and
// gates a current run against two rules:
//
//   - allocs/event must be exactly 0 — the zero-allocation steady state
//     is an invariant, not a trend, so it needs no baseline to check;
//   - the trend units (ns/event for the hot loop, ns/table for the
//     design-time artifact cache) must not regress past a ratio of the
//     previous run's value — a trend rule, skipped (with a note) for
//     benchmarks the previous artifact does not contain, and skipped
//     entirely when there is no previous artifact at all (the first run
//     on a branch bootstraps the baseline rather than failing).
//
// Comparisons key on the benchmark name with the -GOMAXPROCS suffix
// stripped, so a runner with a different core count still matches its
// baseline.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics holds one benchmark's reported values keyed by unit
// ("ns/op", "ns/event", "allocs/event", ...).
type Metrics map[string]float64

// testEvent is the subset of the `go test -json` event schema the
// parser needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// gomaxprocsSuffix strips the trailing "-N" go appends to benchmark
// names, so runs from machines with different core counts compare.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// benchLine matches a benchmark result line: name, iteration count,
// then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.+)$`)

// Parse reads a `go test -json` stream (or, as a convenience for local
// use, plain `go test -bench` text) and returns the metrics of every
// benchmark result line in it. Go streams a result line in pieces —
// the name flushes before the benchmark runs, the numbers after — so
// the parser reassembles the output text first and scans whole lines.
func Parse(r io.Reader) (map[string]Metrics, error) {
	var text strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	jsonLines := false
	for sc.Scan() {
		line := sc.Text()
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err == nil && ev.Action != "" {
			jsonLines = true
			if ev.Action == "output" {
				text.WriteString(ev.Output)
			}
			continue
		}
		if jsonLines {
			return nil, fmt.Errorf("benchgate: mixed json and non-json input at %q", line)
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	return parseBenchText(text.String())
}

// parseBenchText extracts benchmark result lines from assembled output.
func parseBenchText(text string) (map[string]Metrics, error) {
	out := make(map[string]Metrics)
	for _, line := range strings.Split(text, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[2])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchgate: odd value/unit fields in %q", line)
		}
		mm := out[name]
		if mm == nil {
			mm = make(Metrics)
			out[name] = mm
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q: %w", fields[i], line, err)
			}
			unit := fields[i+1]
			// A -count>1 run repeats each benchmark; keep the strictest
			// reading — the worst allocation count, the best time (repeated
			// timings differ by scheduler noise, allocations must not).
			if old, ok := mm[unit]; ok {
				if strings.HasPrefix(unit, "allocs/") {
					v = max(v, old)
				} else {
					v = min(v, old)
				}
			}
			mm[unit] = v
		}
	}
	return out, nil
}

// Options tunes the gate.
type Options struct {
	// MaxRatio is the trend-unit regression budget: a current value above
	// previous × MaxRatio fails. Zero means the default 1.5 — generous
	// against runner noise, far below an accidental re-introduction of
	// per-event allocation (the LFD loop was 6× slower before pooling).
	MaxRatio float64
}

// trendUnits are the custom metrics gated by the regression-ratio rule.
// Absolute values are host-dependent; the ratio against the previous
// artifact from the same runner pool is what the gate enforces.
var trendUnits = []string{"ns/event", "ns/table"}

// Gate checks cur against the rules, using prev as the trend baseline;
// prev may be nil (no previous artifact — bootstrap run).
// The returned report always describes every check performed, pass or
// fail; err is non-nil if any rule failed.
func Gate(cur, prev map[string]Metrics, opt Options) (string, error) {
	ratio := opt.MaxRatio
	if ratio == 0 {
		ratio = 1.5
	}
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	violations := 0
	checked := 0
	for _, n := range names {
		m := cur[n]
		if a, ok := m["allocs/event"]; ok {
			checked++
			if a > 0 {
				violations++
				fmt.Fprintf(&b, "FAIL %s: %.4g allocs/event, budget is exactly 0\n", n, a)
			} else {
				fmt.Fprintf(&b, "ok   %s: 0 allocs/event\n", n)
			}
		}
		for _, unit := range trendUnits {
			ns, ok := m[unit]
			if !ok {
				continue
			}
			checked++
			if prev == nil {
				fmt.Fprintf(&b, "ok   %s: %.1f %s (no previous artifact — baseline recorded)\n", n, ns, unit)
				continue
			}
			pm, ok := prev[n]
			if !ok {
				fmt.Fprintf(&b, "ok   %s: %.1f %s (new benchmark — no baseline yet)\n", n, ns, unit)
				continue
			}
			pns, ok := pm[unit]
			if !ok || pns <= 0 {
				fmt.Fprintf(&b, "ok   %s: %.1f %s (previous run reported no %s)\n", n, ns, unit, unit)
				continue
			}
			r := ns / pns
			if r > ratio {
				violations++
				fmt.Fprintf(&b, "FAIL %s: %.1f %s vs %.1f previously (%.2f×, budget %.2f×)\n", n, ns, unit, pns, r, ratio)
			} else {
				fmt.Fprintf(&b, "ok   %s: %.1f %s vs %.1f previously (%.2f×)\n", n, ns, unit, pns, r)
			}
		}
	}
	if checked == 0 {
		return b.String(), fmt.Errorf("benchgate: no benchmark reported ns/event or allocs/event — wrong artifact?")
	}
	if violations > 0 {
		return b.String(), fmt.Errorf("benchgate: %d budget violation(s)", violations)
	}
	return b.String(), nil
}
