package benchgate

import (
	"strings"
	"testing"
)

// jsonStream builds a `go test -json` stream the way go actually emits
// benchmark lines: the name flushes in one output event, the numbers in
// a later one.
func jsonStream(pieces ...string) string {
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"repro"}` + "\n")
	for _, p := range pieces {
		b.WriteString(`{"Action":"output","Package":"repro","Output":"` + p + `"}` + "\n")
	}
	b.WriteString(`{"Action":"pass","Package":"repro"}` + "\n")
	return b.String()
}

func TestParseReassemblesSplitLines(t *testing.T) {
	in := jsonStream(
		`BenchmarkEventLoop/LRU-8         \t`,
		`       5\t    226746 ns/op\t       154.2 ns/event\t         0 allocs/event\n`,
		`BenchmarkEventLoop/LFD-8         \t       2\t   3250000 ns/op\t       575.7 ns/event\t         0 allocs/event\n`,
	)
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	lru := got["BenchmarkEventLoop/LRU"]
	if lru == nil || lru["ns/event"] != 154.2 || lru["allocs/event"] != 0 {
		t.Errorf("LRU metrics = %v", lru)
	}
	if lfd := got["BenchmarkEventLoop/LFD"]; lfd == nil || lfd["ns/event"] != 575.7 {
		t.Errorf("LFD metrics = %v", lfd)
	}
}

func TestParsePlainBenchText(t *testing.T) {
	in := "goos: linux\nBenchmarkEventLoop/LRU-4   10   100 ns/op   50.0 ns/event   0 allocs/event\nPASS\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m := got["BenchmarkEventLoop/LRU"]; m == nil || m["ns/event"] != 50 {
		t.Errorf("metrics = %v", m)
	}
}

// TestParseCountKeepsStrictest: with -count>1 the best time and the
// worst allocation count win.
func TestParseCountKeepsStrictest(t *testing.T) {
	in := "BenchmarkX-8 1 100 ns/op 60.0 ns/event 0 allocs/event\n" +
		"BenchmarkX-8 1 90 ns/op 50.0 ns/event 0.5 allocs/event\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m := got["BenchmarkX"]
	if m["ns/event"] != 50 {
		t.Errorf("ns/event = %v, want best (50)", m["ns/event"])
	}
	if m["allocs/event"] != 0.5 {
		t.Errorf("allocs/event = %v, want worst (0.5)", m["allocs/event"])
	}
}

// TestParseStripsGomaxprocs: a 8-core run and a 4-core baseline land on
// the same key.
func TestParseStripsGomaxprocs(t *testing.T) {
	a, err := Parse(strings.NewReader("BenchmarkY-8 1 10.0 ns/event\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(strings.NewReader("BenchmarkY-4 1 12.0 ns/event\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a["BenchmarkY"]; !ok {
		t.Fatalf("keys = %v", a)
	}
	if _, ok := b["BenchmarkY"]; !ok {
		t.Fatalf("keys = %v", b)
	}
}

func bench(ns, allocs float64) map[string]Metrics {
	return map[string]Metrics{
		"BenchmarkEventLoop/LRU": {"ns/event": ns, "allocs/event": allocs},
	}
}

func TestGateAllocsBudgetIsAbsolute(t *testing.T) {
	// Fails even with no baseline: the zero-allocation invariant needs
	// no previous run to check.
	rep, err := Gate(bench(100, 0.01), nil, Options{})
	if err == nil {
		t.Fatalf("allocs/event > 0 passed:\n%s", rep)
	}
	if !strings.Contains(rep, "FAIL") {
		t.Errorf("report hides the violation:\n%s", rep)
	}
}

func TestGateNoBaselineBootstraps(t *testing.T) {
	rep, err := Gate(bench(100, 0), nil, Options{})
	if err != nil {
		t.Fatalf("bootstrap run failed: %v\n%s", err, rep)
	}
	if !strings.Contains(rep, "no previous artifact") {
		t.Errorf("report does not explain the skipped trend check:\n%s", rep)
	}
}

func TestGateNsRegression(t *testing.T) {
	prev := bench(100, 0)
	if rep, err := Gate(bench(140, 0), prev, Options{}); err != nil {
		t.Errorf("1.4× within default 1.5× budget failed: %v\n%s", err, rep)
	}
	if rep, err := Gate(bench(160, 0), prev, Options{}); err == nil {
		t.Errorf("1.6× past default budget passed:\n%s", rep)
	}
	if rep, err := Gate(bench(115, 0), prev, Options{MaxRatio: 1.1}); err == nil {
		t.Errorf("1.15× past tightened 1.1× budget passed:\n%s", rep)
	}
}

func TestGateNewBenchmarkHasNoBaseline(t *testing.T) {
	prev := map[string]Metrics{"BenchmarkOther": {"ns/event": 10}}
	rep, err := Gate(bench(999, 0), prev, Options{})
	if err != nil {
		t.Errorf("new benchmark treated as regression: %v\n%s", err, rep)
	}
	if !strings.Contains(rep, "no baseline yet") {
		t.Errorf("report does not flag the missing baseline:\n%s", rep)
	}
}

// TestGateNsPerTableTrend: the artifact-cache benchmark's ns/table is
// gated by the same regression ratio as the hot loop's ns/event.
func TestGateNsPerTableTrend(t *testing.T) {
	tables := func(ns float64) map[string]Metrics {
		return map[string]Metrics{
			"BenchmarkFig9ArtifactWarm": {"ns/table": ns},
		}
	}
	prev := tables(1000)
	if rep, err := Gate(tables(1400), prev, Options{}); err != nil {
		t.Errorf("1.4× ns/table within default budget failed: %v\n%s", err, rep)
	}
	rep, err := Gate(tables(1600), prev, Options{})
	if err == nil {
		t.Errorf("1.6× ns/table past default budget passed:\n%s", rep)
	}
	if !strings.Contains(rep, "ns/table") {
		t.Errorf("report does not name the regressed unit:\n%s", rep)
	}
	// ns/table alone satisfies the wrong-artifact guard.
	if _, err := Gate(tables(10), nil, Options{}); err != nil {
		t.Errorf("ns/table-only artifact refused: %v", err)
	}
}

// TestGateRefusesEmptyArtifact: gating a stream with none of the
// budgeted metrics means the wrong file was fed in — loud failure, not
// a silent pass.
func TestGateRefusesEmptyArtifact(t *testing.T) {
	cur := map[string]Metrics{"BenchmarkFig9Sweep/seq": {"ns/op": 1e9}}
	if _, err := Gate(cur, nil, Options{}); err == nil {
		t.Error("artifact without ns/event or allocs/event passed")
	}
}
