package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestConcurrentRunsShareOneSystem drives one skip-events System from
// several goroutines; under -race this exercises the prepared-table view,
// the shared mobility cache and the concurrent ideal baseline.
func TestConcurrentRunsShareOneSystem(t *testing.T) {
	sys, err := NewSystem(Config{
		RUs:        4,
		Latency:    workload.PaperLatency(),
		Policy:     "locallfd:1",
		SkipEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := workload.Fig3Sequence()
	const runs = 8
	results := make([]*Result, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sys.Run(seq...)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < runs; i++ {
		if results[i] == nil || results[0] == nil {
			t.Fatal("missing result")
		}
		if !reflect.DeepEqual(results[i].Summary, results[0].Summary) {
			t.Errorf("run %d diverged: %+v vs %+v", i, results[i].Summary, results[0].Summary)
		}
	}
}

// TestRandomPolicyForkedPerRun checks the stateful Random policy never
// crosses goroutines: every simulation — the real/ideal pair inside one
// Run, and overlapping Runs on one System — gets a fork replaying the
// seed's decision stream, so concurrent results are also reproducible.
func TestRandomPolicyForkedPerRun(t *testing.T) {
	sys, err := NewSystem(Config{
		RUs:     4,
		Latency: workload.PaperLatency(),
		Policy:  "random:7",
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := workload.Fig2Sequence()
	const runs = 6
	results := make([]*Result, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sys.Run(seq...)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatal("missing result")
		}
		if res.Run.Makespan.Before(res.Ideal.Makespan) {
			t.Errorf("run %d: real makespan %v beats ideal %v", i, res.Run.Makespan, res.Ideal.Makespan)
		}
		if !reflect.DeepEqual(res.Summary, results[0].Summary) {
			t.Errorf("run %d diverged from run 0 despite the per-run fork", i)
		}
	}
}
