package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// ExampleEvaluate reproduces the paper's Fig. 2b in five lines: the
// clairvoyant LFD policy on the motivational workload.
func ExampleEvaluate() {
	res, err := core.Evaluate(core.Config{
		RUs:     4,
		Latency: simtime.FromMs(4),
		Policy:  "lfd",
	}, workload.Fig2Sequence()...)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Printf("reuse %.1f%% overhead %v\n", s.ReuseRate(), s.Overhead())
	// Output:
	// reuse 41.7% overhead 11 ms
}

// ExampleSystem_Run shows the full hybrid technique: the design-time
// phase (Prepare) computes mobility tables, the run-time phase applies
// Local LFD with skip events — the paper's Fig. 3b.
func ExampleSystem_Run() {
	sys, err := core.NewSystem(core.Config{
		RUs:        4,
		Latency:    simtime.FromMs(4),
		Policy:     "locallfd:1",
		SkipEvents: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	seq := workload.Fig3Sequence()
	if err := sys.Prepare(seq...); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(seq...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %v, %d skip decision(s), %d task reused\n",
		res.Summary.Makespan, res.Run.Skips, res.Summary.Reused)
	// Output:
	// makespan 70 ms, 1 skip decision(s), 1 task reused
}

// ExampleSystem_MobilityTable prints the design-time artefact of the
// paper's Fig. 7.
func ExampleSystem_MobilityTable() {
	sys, err := core.NewSystem(core.Config{
		RUs:     4,
		Latency: simtime.FromMs(4),
		Policy:  "locallfd:1",
	})
	if err != nil {
		log.Fatal(err)
	}
	g := workload.Fig3TG2()
	if err := sys.Prepare(g); err != nil {
		log.Fatal(err)
	}
	tab, _ := sys.MobilityTable(g)
	fmt.Println(tab)
	// Output:
	// mobility of fig3-tg2 (R=4, latency 4 ms, ref makespan 30 ms): 4:0 5:0 6:0 7:1
}
