package core

import (
	"testing"

	"repro/internal/workload"
)

// TestCrossGraphPrefetchThroughFacade: the extension is reachable from
// the public configuration and improves the Fig. 3 schedule beyond skip
// events (the boundary loads hide under the preceding graph).
func TestCrossGraphPrefetchThroughFacade(t *testing.T) {
	seq := workload.Fig3Sequence()
	base := Config{RUs: 4, Latency: ms(4), Policy: "locallfd:1"}

	plain, err := Evaluate(base, seq...)
	if err != nil {
		t.Fatal(err)
	}
	pf := base
	pf.CrossGraphPrefetch = true
	fetched, err := Evaluate(pf, seq...)
	if err != nil {
		t.Fatal(err)
	}
	if !fetched.Summary.Makespan.Before(plain.Summary.Makespan) {
		t.Errorf("prefetch did not improve: %v vs %v",
			fetched.Summary.Makespan, plain.Summary.Makespan)
	}
	if fetched.Run.Preloads == 0 {
		t.Error("no preloads recorded")
	}
	// The ideal baseline must be identical (latency-0 timing is
	// prefetch-independent), keeping overheads comparable.
	if fetched.Ideal.Makespan != plain.Ideal.Makespan {
		t.Errorf("ideal baselines diverged: %v vs %v",
			fetched.Ideal.Makespan, plain.Ideal.Makespan)
	}
}
