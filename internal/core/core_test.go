package core

import (
	"strings"
	"testing"

	"repro/internal/dynlist"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

func TestNewSystemValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no units", Config{RUs: 0, Latency: ms(4), Policy: "lru"}},
		{"negative latency", Config{RUs: 4, Latency: -ms(1), Policy: "lru"}},
		{"nil policy", Config{RUs: 4, Latency: ms(4)}},
		{"bad spec", Config{RUs: 4, Latency: ms(4), Policy: "nope"}},
		{"bad type", Config{RUs: 4, Latency: ms(4), Policy: 42}},
	}
	for _, tt := range cases {
		if _, err := NewSystem(tt.cfg); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

func TestPolicyFromValueOrString(t *testing.T) {
	a, err := NewSystem(Config{RUs: 4, Latency: ms(4), Policy: "lfd"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSystem(Config{RUs: 4, Latency: ms(4), Policy: policy.NewLFD()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Policy().Name() != b.Policy().Name() {
		t.Errorf("policies differ: %s vs %s", a.Policy().Name(), b.Policy().Name())
	}
}

// TestEvaluateFig2 runs the whole facade over the Fig. 2 anchor.
func TestEvaluateFig2(t *testing.T) {
	res, err := Evaluate(Config{RUs: 4, Latency: ms(4), Policy: "lfd"},
		workload.Fig2Sequence()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Reused != 5 || res.Summary.Overhead() != ms(11) {
		t.Errorf("summary = %v", res.Summary)
	}
	if res.Ideal.Makespan != ms(42) {
		t.Errorf("ideal = %v, want 42 ms", res.Ideal.Makespan)
	}
}

// TestSkipEventsEndToEnd reproduces Fig. 3b through the facade, with the
// design-time phase computed by Prepare rather than hand-fed.
func TestSkipEventsEndToEnd(t *testing.T) {
	sys, err := NewSystem(Config{
		RUs: 4, Latency: ms(4), Policy: "locallfd:1", SkipEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := workload.Fig3Sequence()
	if err := sys.Prepare(seq...); err != nil {
		t.Fatal(err)
	}
	tab, ok := sys.MobilityTable(seq[1]) // fig3-tg2
	if !ok {
		t.Fatal("no mobility table for TG2")
	}
	// Fig. 7: task 7 (local index 3) has mobility 1.
	if tab.Values[3] != 1 {
		t.Errorf("mobility(task 7) = %d, want 1", tab.Values[3])
	}
	res, err := sys.Run(seq...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Makespan != ms(70) || res.Summary.Reused != 1 {
		t.Errorf("makespan = %v reused = %d, want 70 ms and 1", res.Run.Makespan, res.Summary.Reused)
	}
}

// TestRunPreparesOnDemand: skip events without an explicit Prepare call
// must still work (Run prepares the templates it can see).
func TestRunPreparesOnDemand(t *testing.T) {
	sys, err := NewSystem(Config{RUs: 4, Latency: ms(4), Policy: "locallfd:1", SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(workload.Fig3Sequence()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Makespan != ms(70) {
		t.Errorf("makespan = %v, want 70 ms", res.Run.Makespan)
	}
}

func TestPrepareIdempotentAndValidates(t *testing.T) {
	sys, err := NewSystem(Config{RUs: 4, Latency: ms(4), Policy: "lru"})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.JPEG()
	if err := sys.Prepare(g, g, g); err != nil {
		t.Fatal(err)
	}
	if err := sys.Prepare(nil); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestRunFeed(t *testing.T) {
	sys, err := NewSystem(Config{RUs: 4, Latency: ms(4), Policy: "lru"})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.JPEG()
	mk := func() dynlist.Feed {
		f, _ := dynlist.NewTimed([]dynlist.Item{
			{Graph: g, Arrival: 0},
			{Graph: g, Arrival: ms(500)},
		})
		return f
	}
	res, err := sys.RunFeed(mk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Executed != 8 || res.Run.Reused != 4 {
		t.Errorf("executed %d reused %d, want 8 and 4", res.Run.Executed, res.Run.Reused)
	}
}

func TestRecordTrace(t *testing.T) {
	res, err := Evaluate(Config{RUs: 4, Latency: ms(4), Policy: "lru", RecordTrace: true},
		workload.Fig2Sequence()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Trace == nil {
		t.Fatal("no trace recorded")
	}
	if err := res.Run.Trace.Validate(res.Run.Templates); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
	gantt := res.Run.Trace.Gantt(trace.GanttOptions{TickMs: 1})
	if !strings.Contains(gantt, "rec |") {
		t.Errorf("gantt rendering broken:\n%s", gantt)
	}
}

func TestCompare(t *testing.T) {
	base := Config{RUs: 4, Latency: ms(4)}
	lru, lfd, local := base, base, base
	lru.Policy, lfd.Policy, local.Policy = "lru", "lfd", "locallfd:1"
	localSkip := local
	localSkip.SkipEvents = true
	out, err := Compare([]Config{lru, lfd, local, localSkip}, workload.Fig2Sequence()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("results = %d, want 4", len(out))
	}
	if out["LRU"].Summary.Reused != 2 || out["LFD"].Summary.Reused != 5 {
		t.Error("Fig. 2 counts wrong through Compare")
	}
	if _, ok := out["Local LFD (1) +skip"]; !ok {
		t.Error("skip variant key missing")
	}
	if _, err := Compare([]Config{lru, lru}, workload.Fig2TG1()); err == nil {
		t.Error("duplicate configs accepted")
	}
}

func TestSummaryReadable(t *testing.T) {
	res, err := Evaluate(Config{RUs: 4, Latency: ms(4), Policy: "lru"},
		workload.Fig2Sequence()...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary.String(), "LRU") {
		t.Errorf("summary: %s", res.Summary)
	}
}
