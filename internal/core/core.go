// Package core assembles the paper's complete replacement technique into a
// small public API.
//
// A System is a reconfigurable platform configuration: a number of equal
// reconfigurable units, a reconfiguration latency, a replacement policy,
// and optionally the hybrid design-time/run-time extensions (skip events
// backed by design-time mobility tables).
//
// Typical use:
//
//	sys, _ := core.NewSystem(core.Config{
//	    RUs:        4,
//	    Latency:    workload.PaperLatency(),
//	    Policy:     "locallfd:2",
//	    SkipEvents: true,
//	})
//	sys.Prepare(workload.Multimedia()...) // design-time phase
//	res, _ := sys.Run(sequence...)        // run-time phase
//	fmt.Println(res.Summary)
//
// Run executes the workload twice — once for real and once with zero
// reconfiguration latency, the two simulations running concurrently — so
// every result carries the paper's overhead metrics alongside the raw
// counters.
//
// Design-time mobility tables are served from the process-wide memoized
// cache in internal/mobility, keyed by (template, RUs, latency): Systems
// with the same platform configuration share one table per template
// instead of each recomputing it. A System is safe for concurrent use.
package core

import (
	"fmt"
	"sync"

	"repro/internal/dynlist"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// Config describes a system under test.
type Config struct {
	// RUs is the number of reconfigurable units.
	RUs int
	// Latency is the reconfiguration latency (e.g.
	// workload.PaperLatency()).
	Latency simtime.Time
	// Policy is either a policy.Policy or a specifier string accepted by
	// policy.Parse ("lru", "lfd", "locallfd:2", …).
	Policy any
	// SkipEvents enables the run-time skip mechanism. It requires the
	// design-time phase: call Prepare, or let Run prepare on demand.
	SkipEvents bool
	// CrossGraphPrefetch enables the extension that preloads the next
	// enqueued graph once the running one needs no more loads.
	CrossGraphPrefetch bool
	// RecordTrace retains the full execution trace on results.
	RecordTrace bool
}

// System is a configured platform ready to execute workloads.
type System struct {
	cfg Config
	pol policy.Policy

	// tables is the System's view of the prepared templates. The tables
	// themselves live in the process-wide mobility cache and are shared
	// with every other System (and sweep scenario) using the same
	// (template, RUs, latency) triple.
	mu     sync.Mutex
	tables map[*taskgraph.Graph]*mobility.Table
}

// NewSystem validates cfg and builds a System.
func NewSystem(cfg Config) (*System, error) {
	if cfg.RUs < 1 {
		return nil, fmt.Errorf("core: need at least one reconfigurable unit, got %d", cfg.RUs)
	}
	if cfg.Latency < 0 {
		return nil, fmt.Errorf("core: negative latency %v", cfg.Latency)
	}
	var pol policy.Policy
	switch p := cfg.Policy.(type) {
	case policy.Policy:
		pol = p
	case string:
		parsed, err := policy.Parse(p)
		if err != nil {
			return nil, err
		}
		pol = parsed
	case nil:
		return nil, fmt.Errorf("core: no policy configured")
	default:
		return nil, fmt.Errorf("core: policy must be a policy.Policy or a specifier string, got %T", p)
	}
	return &System{
		cfg:    cfg,
		pol:    pol,
		tables: make(map[*taskgraph.Graph]*mobility.Table),
	}, nil
}

// Policy returns the system's replacement policy.
func (s *System) Policy() policy.Policy { return s.pol }

// Prepare runs the design-time phase (mobility calculation, Fig. 6) for
// each distinct template. It is idempotent per template, and memoized
// process-wide: a template another System (or a sweep) already prepared
// under the same platform configuration is served from the shared cache.
func (s *System) Prepare(graphs ...*taskgraph.Graph) error {
	for _, g := range graphs {
		if g == nil {
			return fmt.Errorf("core: nil graph in Prepare")
		}
		s.mu.Lock()
		_, done := s.tables[g]
		s.mu.Unlock()
		if done {
			continue
		}
		// mobility.Cached single-flights concurrent callers, so parallel
		// Prepares of one template compute it once.
		t, err := mobility.Cached(g, s.cfg.RUs, s.cfg.Latency)
		if err != nil {
			return fmt.Errorf("core: design-time phase for %s: %w", g.Name(), err)
		}
		s.mu.Lock()
		s.tables[g] = t
		s.mu.Unlock()
	}
	return nil
}

// MobilityTable returns the design-time table for a prepared template.
func (s *System) MobilityTable(g *taskgraph.Graph) (*mobility.Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[g]
	return t, ok
}

// Result couples the raw run with its ideal baseline and derived metrics.
type Result struct {
	// Run is the raw simulation outcome (trace included when requested).
	Run *manager.Result
	// Ideal is the same workload with zero reconfiguration latency.
	Ideal *manager.Result
	// Summary carries the paper's metrics (reuse rate, overhead,
	// remaining-overhead percentage).
	Summary *metrics.Summary
}

// Run executes the graph sequence (all applications available from time
// zero, as in the paper's experiments).
func (s *System) Run(seq ...*taskgraph.Graph) (*Result, error) {
	return s.runItems(func() dynlist.Feed { return dynlist.NewSequence(seq...) }, seq)
}

// RunFeed executes an arbitrary arrival feed. Because a Feed can only be
// consumed once, the caller supplies a constructor so the ideal baseline
// can replay the same arrivals. The real run and the baseline execute
// concurrently, so mkFeed must be safe to call from two goroutines.
func (s *System) RunFeed(mkFeed func() dynlist.Feed) (*Result, error) {
	return s.runItems(mkFeed, nil)
}

func (s *System) runItems(mkFeed func() dynlist.Feed, known []*taskgraph.Graph) (*Result, error) {
	if s.cfg.SkipEvents {
		if err := s.Prepare(known...); err != nil {
			return nil, err
		}
	}
	cfg := manager.Config{
		RUs:                s.cfg.RUs,
		Latency:            s.cfg.Latency,
		Policy:             s.pol,
		SkipEvents:         s.cfg.SkipEvents,
		CrossGraphPrefetch: s.cfg.CrossGraphPrefetch,
		RecordTrace:        s.cfg.RecordTrace,
	}
	if s.cfg.SkipEvents {
		cfg.Mobility = s.mobilityFor
	}
	// A stateful policy (Random) cannot be shared by concurrent
	// simulations — neither by the real/ideal pair below nor by
	// overlapping Run calls on one System — so every simulation gets a
	// fork replaying the same decision stream from the initial state.
	cfg.Policy = policy.Fork(s.pol)
	idealCfg := cfg
	idealCfg.Latency = 0
	idealCfg.SkipEvents = false
	idealCfg.Mobility = nil
	idealCfg.RecordTrace = false
	idealCfg.Policy = policy.Fork(s.pol)

	// The real run and its zero-latency baseline are independent
	// simulations over independent feeds — run them concurrently.
	var (
		run, ideal       *manager.Result
		runErr, idealErr error
		wg               sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ideal, idealErr = manager.Run(idealCfg, mkFeed())
	}()
	run, runErr = manager.Run(cfg, mkFeed())
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if idealErr != nil {
		return nil, fmt.Errorf("core: ideal baseline: %w", idealErr)
	}
	sum, err := metrics.Summarize(s.pol.Name(), s.cfg.RUs, s.cfg.Latency, run, ideal)
	if err != nil {
		return nil, err
	}
	return &Result{Run: run, Ideal: ideal, Summary: sum}, nil
}

// mobilityFor serves prepared tables to the manager; unprepared templates
// (possible with RunFeed) fall back to zero mobility, which is safe.
func (s *System) mobilityFor(g *taskgraph.Graph) []int {
	if t, ok := s.MobilityTable(g); ok {
		return t.Values
	}
	return nil
}

// Evaluate is the one-call convenience: build a system, prepare if
// needed, run the sequence.
func Evaluate(cfg Config, seq ...*taskgraph.Graph) (*Result, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return sys.Run(seq...)
}

// Compare evaluates several configurations over the same sequence and
// returns results keyed by policy name (plus "+skip" when skip events are
// enabled, to keep keys unique). The configurations run concurrently —
// each gets its own System — and errors are reported for the first
// failing configuration in argument order.
func Compare(cfgs []Config, seq ...*taskgraph.Graph) (map[string]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			results[i], errs[i] = Evaluate(cfg, seq...)
		}(i, cfg)
	}
	wg.Wait()
	out := make(map[string]*Result, len(cfgs))
	for i, res := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		key := res.Summary.PolicyName
		if cfgs[i].SkipEvents {
			key += " +skip"
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("core: duplicate configuration %q in Compare", key)
		}
		out[key] = res
	}
	return out, nil
}
