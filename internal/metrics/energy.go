package metrics

import (
	"fmt"

	"repro/internal/manager"
	"repro/internal/taskgraph"
)

// EnergyModel quantifies the paper's secondary claims: "higher reuse
// rates reduce the system energy consumption, since a reconfiguration
// process consumes a large amount of energy [4]. In addition, higher
// reuse rates also reduce the pressure over the external memory and the
// system bus, since the reconfigurations involve moving large amounts of
// data from an external memory to the FPGA."
//
// Each configuration load moves the task's bitstream from external memory
// onto the device, costing energy proportional to its size; a reused task
// moves nothing. The defaults follow the magnitudes reported for
// Virtex-class partial reconfiguration in the paper's era (Becker, Luk &
// Cheung, FCCM 2010 — the paper's reference [4]): bitstreams of a few
// hundred kilobytes per region and reconfiguration energy on the order of
// millijoules per load.
type EnergyModel struct {
	// BitstreamBytes gives each task's configuration size. Tasks absent
	// from the map (or a nil map) use DefaultBitstreamBytes.
	BitstreamBytes map[taskgraph.TaskID]int
	// DefaultBitstreamBytes is the fallback configuration size.
	DefaultBitstreamBytes int
	// NanojoulePerByte is the energy to transfer and write one bitstream
	// byte during reconfiguration.
	NanojoulePerByte float64
}

// DefaultEnergyModel returns a model with uniform 300 KiB bitstreams
// (a typical equal-sized-region partial bitstream on the paper's
// Virtex-II Pro class device) at 10 nJ/byte — about 3 mJ per load.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		DefaultBitstreamBytes: 300 << 10,
		NanojoulePerByte:      10,
	}
}

// bytesOf returns the bitstream size for a task.
func (m EnergyModel) bytesOf(id taskgraph.TaskID) int {
	if b, ok := m.BitstreamBytes[id]; ok {
		return b
	}
	return m.DefaultBitstreamBytes
}

// EnergyReport aggregates the reconfiguration energy and memory traffic
// of a run.
type EnergyReport struct {
	// Loads and Reuses echo the run's counters.
	Loads  int
	Reuses int
	// BusBytes is the total bitstream traffic moved over the external
	// memory bus.
	BusBytes int64
	// SpentMillijoules is the reconfiguration energy actually consumed.
	SpentMillijoules float64
	// SavedBytes and SavedMillijoules quantify what reuse avoided: the
	// traffic and energy the same schedule would have cost had every
	// reused task been loaded instead.
	SavedBytes       int64
	SavedMillijoules float64
}

// Energy computes the energy/traffic report for a run. When the run was
// traced, per-load task identities price each transfer individually;
// otherwise the default bitstream size prices the aggregate counters.
func Energy(res *manager.Result, model EnergyModel) (*EnergyReport, error) {
	if res == nil {
		return nil, fmt.Errorf("metrics: nil result")
	}
	if model.DefaultBitstreamBytes <= 0 {
		return nil, fmt.Errorf("metrics: non-positive default bitstream size %d", model.DefaultBitstreamBytes)
	}
	if model.NanojoulePerByte < 0 {
		return nil, fmt.Errorf("metrics: negative energy density %v", model.NanojoulePerByte)
	}
	rep := &EnergyReport{Loads: res.Loads, Reuses: res.Reused}
	if tr := res.Trace; tr != nil {
		for _, l := range tr.Loads {
			rep.BusBytes += int64(model.bytesOf(l.Task))
		}
		for _, e := range tr.Execs {
			if e.Reused {
				rep.SavedBytes += int64(model.bytesOf(e.Task))
			}
		}
	} else {
		rep.BusBytes = int64(res.Loads) * int64(model.DefaultBitstreamBytes)
		rep.SavedBytes = int64(res.Reused) * int64(model.DefaultBitstreamBytes)
	}
	rep.SpentMillijoules = float64(rep.BusBytes) * model.NanojoulePerByte / 1e6
	rep.SavedMillijoules = float64(rep.SavedBytes) * model.NanojoulePerByte / 1e6
	return rep, nil
}

// SavingsPct is the fraction of the no-reuse energy that reuse avoided.
func (r *EnergyReport) SavingsPct() float64 {
	total := r.SpentMillijoules + r.SavedMillijoules
	if total == 0 {
		return 0
	}
	return 100 * r.SavedMillijoules / total
}

// String gives a one-line digest.
func (r *EnergyReport) String() string {
	return fmt.Sprintf("reconfiguration energy %.1f mJ (%d loads, %.2f MB bus traffic); reuse saved %.1f mJ (%.1f%%)",
		r.SpentMillijoules, r.Loads, float64(r.BusBytes)/(1<<20), r.SavedMillijoules, r.SavingsPct())
}
