package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/manager"
	"repro/internal/simtime"
)

func times(ms ...float64) []simtime.Time {
	out := make([]simtime.Time, len(ms))
	for i, v := range ms {
		out[i] = simtime.FromMs(v)
	}
	return out
}

func TestDelays(t *testing.T) {
	run := &manager.Result{Completions: times(10, 25, 40, 70)}
	ideal := &manager.Result{Completions: times(8, 20, 38, 50)}
	d, err := Delays(run, ideal)
	if err != nil {
		t.Fatal(err)
	}
	// delays: 2, 5, 2, 20 ms
	if d.Count != 4 {
		t.Errorf("Count = %d", d.Count)
	}
	if d.Mean != simtime.FromMs(7.25) {
		t.Errorf("Mean = %v, want 7.25 ms", d.Mean)
	}
	if d.Max != simtime.FromMs(20) {
		t.Errorf("Max = %v, want 20 ms", d.Max)
	}
	if d.P50 != simtime.FromMs(2) {
		t.Errorf("P50 = %v, want 2 ms", d.P50)
	}
	if d.P95 != simtime.FromMs(20) {
		t.Errorf("P95 = %v, want 20 ms", d.P95)
	}
	if !strings.Contains(d.String(), "p95") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestDelaysValidation(t *testing.T) {
	if _, err := Delays(nil, nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Delays(&manager.Result{Completions: times(1)}, &manager.Result{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Delays(
		&manager.Result{Completions: times(5)},
		&manager.Result{Completions: times(9)}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestDelaysEmpty(t *testing.T) {
	d, err := Delays(&manager.Result{}, &manager.Result{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 0 || d.Mean != 0 {
		t.Errorf("empty: %+v", d)
	}
}

func TestPercentile(t *testing.T) {
	vals := times(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	cases := []struct {
		p    int
		want float64
	}{
		{50, 5}, {95, 10}, {100, 10}, {10, 1}, {1, 1},
	}
	for _, tt := range cases {
		if got := percentile(vals, tt.p); got != simtime.FromMs(tt.want) {
			t.Errorf("p%d = %v, want %v ms", tt.p, got, tt.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestStddev(t *testing.T) {
	if Stddev(nil) != 0 {
		t.Error("Stddev(nil)")
	}
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant stddev = %v", got)
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
}
