package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/manager"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func TestEnergyFromCounters(t *testing.T) {
	model := EnergyModel{DefaultBitstreamBytes: 1000, NanojoulePerByte: 1000} // 1 mJ per load
	res := &manager.Result{Loads: 7, Reused: 3}
	rep, err := Energy(res, model)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BusBytes != 7000 {
		t.Errorf("BusBytes = %d, want 7000", rep.BusBytes)
	}
	if math.Abs(rep.SpentMillijoules-7) > 1e-9 {
		t.Errorf("Spent = %v mJ, want 7", rep.SpentMillijoules)
	}
	if math.Abs(rep.SavedMillijoules-3) > 1e-9 {
		t.Errorf("Saved = %v mJ, want 3", rep.SavedMillijoules)
	}
	if math.Abs(rep.SavingsPct()-30) > 1e-9 {
		t.Errorf("SavingsPct = %v, want 30", rep.SavingsPct())
	}
}

func TestEnergyFromTracePerTaskSizes(t *testing.T) {
	model := EnergyModel{
		BitstreamBytes:        map[taskgraph.TaskID]int{1: 100, 2: 900},
		DefaultBitstreamBytes: 500,
		NanojoulePerByte:      1e6, // 1 mJ per byte, for round numbers
	}
	res := &manager.Result{
		Loads:  2,
		Reused: 1,
		Trace: &trace.Trace{
			RUs: 1,
			Loads: []trace.Load{
				{Task: 1}, {Task: 3}, // 100 + 500 (default)
			},
			Execs: []trace.Exec{
				{Task: 1}, {Task: 3},
				{Task: 2, Reused: true}, // saved 900
			},
		},
	}
	rep, err := Energy(res, model)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BusBytes != 600 {
		t.Errorf("BusBytes = %d, want 600", rep.BusBytes)
	}
	if rep.SavedBytes != 900 {
		t.Errorf("SavedBytes = %d, want 900", rep.SavedBytes)
	}
	if !strings.Contains(rep.String(), "mJ") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestEnergyValidation(t *testing.T) {
	if _, err := Energy(nil, DefaultEnergyModel()); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := Energy(&manager.Result{}, EnergyModel{}); err == nil {
		t.Error("zero bitstream size accepted")
	}
	if _, err := Energy(&manager.Result{}, EnergyModel{DefaultBitstreamBytes: 1, NanojoulePerByte: -1}); err == nil {
		t.Error("negative energy density accepted")
	}
}

func TestEnergyZeroRun(t *testing.T) {
	rep, err := Energy(&manager.Result{}, DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SavingsPct() != 0 || rep.SpentMillijoules != 0 {
		t.Errorf("empty run: %+v", rep)
	}
}

func TestDefaultEnergyModelMagnitudes(t *testing.T) {
	m := DefaultEnergyModel()
	// One load should land in the low-millijoule range the paper's
	// reference [4] reports for partial reconfiguration.
	perLoad := float64(m.DefaultBitstreamBytes) * m.NanojoulePerByte / 1e6
	if perLoad < 0.5 || perLoad > 50 {
		t.Errorf("per-load energy %v mJ implausible", perLoad)
	}
}
