// Package metrics derives the paper's evaluation quantities from raw run
// results and formats them as report tables.
//
// The three headline quantities are:
//
//   - reuse rate — reused tasks / executed tasks (Fig. 9a/9b);
//   - reconfiguration overhead — makespan minus the ideal (zero-latency)
//     makespan of the same workload (the per-figure "overhead" of
//     Figs. 2 and 3);
//   - remaining overhead percentage — overhead divided by the original
//     overhead, where the original is what the workload would suffer if
//     every executed task paid the full reconfiguration latency
//     (Fig. 9c's "percentage of the original reconfiguration overhead
//     that remains").
package metrics

import (
	"fmt"
	"strings"

	"repro/internal/manager"
	"repro/internal/simtime"
)

// Summary is the evaluated outcome of one run against its ideal baseline.
type Summary struct {
	PolicyName string
	RUs        int
	Latency    simtime.Time

	Executed int
	Reused   int
	Loads    int
	Skips    int

	Makespan      simtime.Time
	IdealMakespan simtime.Time
}

// Summarize combines a run and its zero-latency baseline.
func Summarize(policyName string, rus int, latency simtime.Time, res, ideal *manager.Result) (*Summary, error) {
	if res == nil || ideal == nil {
		return nil, fmt.Errorf("metrics: nil result")
	}
	if res.Executed != ideal.Executed {
		return nil, fmt.Errorf("metrics: run executed %d tasks but ideal executed %d — different workloads",
			res.Executed, ideal.Executed)
	}
	if res.Makespan.Before(ideal.Makespan) {
		return nil, fmt.Errorf("metrics: run makespan %v beats ideal %v — baseline mismatch",
			res.Makespan, ideal.Makespan)
	}
	return &Summary{
		PolicyName:    policyName,
		RUs:           rus,
		Latency:       latency,
		Executed:      res.Executed,
		Reused:        res.Reused,
		Loads:         res.Loads,
		Skips:         res.Skips,
		Makespan:      res.Makespan,
		IdealMakespan: ideal.Makespan,
	}, nil
}

// ReuseRate returns reused/executed in percent (0 for an empty run).
func (s *Summary) ReuseRate() float64 {
	if s.Executed == 0 {
		return 0
	}
	return 100 * float64(s.Reused) / float64(s.Executed)
}

// Overhead returns the reconfiguration overhead: makespan − ideal.
func (s *Summary) Overhead() simtime.Time {
	return s.Makespan.Sub(s.IdealMakespan)
}

// OriginalOverhead is the overhead the workload would suffer with no
// prefetching and no reuse: one full latency per executed task.
func (s *Summary) OriginalOverhead() simtime.Time {
	return simtime.Time(int64(s.Latency) * int64(s.Executed))
}

// RemainingOverheadPct returns Overhead as a percentage of
// OriginalOverhead (Fig. 9c's metric). Zero-latency runs report 0.
func (s *Summary) RemainingOverheadPct() float64 {
	orig := s.OriginalOverhead()
	if orig == 0 {
		return 0
	}
	return 100 * float64(s.Overhead()) / float64(orig)
}

// String gives a one-line digest.
func (s *Summary) String() string {
	return fmt.Sprintf("%s R=%d: reuse %.2f%% (%d/%d), overhead %v (%.2f%% of original), makespan %v",
		s.PolicyName, s.RUs, s.ReuseRate(), s.Reused, s.Executed,
		s.Overhead(), s.RemainingOverheadPct(), s.Makespan)
}

// Table accumulates rows for a text report in the shape of the paper's
// figures: one row per series (policy), one column per x value (number of
// units).
type Table struct {
	Title   string
	XLabel  string
	XValues []string
	rows    []row
}

type row struct {
	name   string
	values []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title, xLabel string, xValues ...string) *Table {
	return &Table{Title: title, XLabel: xLabel, XValues: xValues}
}

// AddRow appends a series. The number of values must match the headers.
func (t *Table) AddRow(name string, values ...string) error {
	if len(values) != len(t.XValues) {
		return fmt.Errorf("metrics: row %q has %d values, table has %d columns",
			name, len(values), len(t.XValues))
	}
	t.rows = append(t.rows, row{name: name, values: values})
	return nil
}

// AddFloatRow appends a series of percentages/numbers with two decimals.
func (t *Table) AddFloatRow(name string, values ...float64) error {
	strs := make([]string, len(values))
	for i, v := range values {
		strs[i] = fmt.Sprintf("%.2f", v)
	}
	return t.AddRow(name, strs...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	head := append([]string{t.XLabel}, t.XValues...)
	widths := make([]int, len(head))
	for i, h := range head {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		if len(r.name) > widths[0] {
			widths[0] = len(r.name)
		}
		for i, v := range r.values {
			if len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(head)
	sep := make([]string, len(head))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(append([]string{r.name}, r.values...))
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, x := range t.XValues {
		b.WriteByte(',')
		b.WriteString(x)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(r.name)
		for _, v := range r.values {
			b.WriteByte(',')
			b.WriteString(v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Mean returns the arithmetic mean of vs (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
