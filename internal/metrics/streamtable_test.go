package metrics

import (
	"fmt"
	"strings"
	"testing"
)

// TestStreamTableLayoutFixedUpFront: the whole layout — label column
// sized by the declared row labels, value columns by header vs the
// MinCell floor — is decided before any data exists, and rows render
// incrementally with the header already on the writer.
func TestStreamTableLayoutFixedUpFront(t *testing.T) {
	var b strings.Builder
	tab := NewStreamTable(&b, StreamTableConfig{
		Title:     "reuse rate (%)",
		XLabel:    "RUs \\ policy",
		RowLabels: []string{"4", "10", "Avg."},
		XValues:   []string{"LRU", "Local LFD (1)"},
	})
	headerOnly := b.String()
	if !strings.Contains(headerOnly, "reuse rate (%)\n") || !strings.Contains(headerOnly, "RUs \\ policy") {
		t.Fatalf("header not written at construction:\n%s", headerOnly)
	}
	if err := tab.FloatRow("4", 21.98, 38.95); err != nil {
		t.Fatal(err)
	}
	afterOne := b.String()
	if !strings.HasPrefix(afterOne, headerOnly) || !strings.Contains(afterOne, "21.98") {
		t.Fatalf("first row not streamed:\n%s", afterOne)
	}
	if err := tab.FloatRow("10", 31.19, 45.93); err != nil {
		t.Fatal(err)
	}
	if err := tab.FloatRow("Avg.", 26.58, 42.44); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), b.String())
	}
	// Every post-title line is identically wide: the layout never moved
	// as rows landed.
	for _, l := range lines[2:] {
		if len(l) != len(lines[1]) {
			t.Errorf("line %q is %d wide, header is %d — layout shifted", l, len(l), len(lines[1]))
		}
	}
	// The "LRU" column floors at MinCell (6) even though the header is
	// shorter; "Local LFD (1)" uses its header width.
	if !strings.Contains(lines[1], "LRU     Local LFD (1)") {
		t.Errorf("column widths off: %q", lines[1])
	}
}

// TestStreamTableRowErrors: a row with the wrong arity is refused.
func TestStreamTableRowErrors(t *testing.T) {
	tab := NewStreamTable(&strings.Builder{}, StreamTableConfig{
		XLabel: "x", XValues: []string{"a", "b"},
	})
	if err := tab.Row("r", "1"); err == nil {
		t.Error("short row accepted")
	}
	if err := tab.Row("r", "1", "2", "3"); err == nil {
		t.Error("long row accepted")
	}
	if err := tab.Row("r", "1", "2"); err != nil {
		t.Error(err)
	}
}

// TestStreamTableCSVCapture: the CSV writer receives exactly the rows
// written, header first, and a table without CSVTo streams nothing.
func TestStreamTableCSVCapture(t *testing.T) {
	var b, csv strings.Builder
	tab := NewStreamTable(&b, StreamTableConfig{
		XLabel: "RUs \\ policy", XValues: []string{"LRU", "LFD"}, CSVTo: &csv,
	})
	if err := tab.FloatRow("4", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tab.Row("5", "3.00", "4.00"); err != nil {
		t.Fatal(err)
	}
	want := "RUs \\ policy,LRU,LFD\n4,1.00,2.00\n5,3.00,4.00\n"
	if got := csv.String(); got != want {
		t.Errorf("CSV\n got %q\nwant %q", got, want)
	}
}

// countingCSVSink records how many Write calls delivered how many bytes,
// so a test can prove rows arrive as they land rather than at the end.
type countingCSVSink struct {
	sb     strings.Builder
	writes int
}

func (c *countingCSVSink) Write(p []byte) (int, error) {
	c.writes++
	return c.sb.Write(p)
}

// TestStreamTableCSVBoundedRetention is the CSV half of the streaming
// memory gate (the renderer half is TestRowRendererBoundedRetention in
// internal/sweep): on a grid far larger than one row, every CSV record
// reaches the sink the moment its Row call returns. The table holds no
// capture buffer at all — retention is the sink's business — so `-csv`
// runs carry O(1) state however large the sweep grid.
func TestStreamTableCSVBoundedRetention(t *testing.T) {
	const rows = 200
	sink := &countingCSVSink{}
	tab := NewStreamTable(&strings.Builder{}, StreamTableConfig{
		XLabel: "RUs \\ policy", XValues: []string{"LRU", "LFD", "Random"}, CSVTo: sink,
	})
	if got, want := sink.sb.String(), "RUs \\ policy,LRU,LFD,Random\n"; got != want {
		t.Fatalf("header not streamed at construction: %q", got)
	}
	var want strings.Builder
	want.WriteString("RUs \\ policy,LRU,LFD,Random\n")
	for i := 0; i < rows; i++ {
		label := string(rune('a' + i%26))
		if err := tab.FloatRow(label, float64(i), float64(i)+0.5, float64(i)*2); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&want, "%s,%d.00,%d.50,%d.00\n", label, i, i, i*2)
		// The defining property: the sink is complete up to this row
		// *now*, not after some final flush — there is none to call.
		if sink.sb.String() != want.String() {
			t.Fatalf("row %d: sink lags the table — capture is buffered, not streamed", i)
		}
	}
	if sink.writes < rows {
		t.Errorf("sink saw %d writes for %d rows — rows were batched", sink.writes, rows)
	}
}

// failingWriter fails every write after the first n.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	f.n--
	return len(p), nil
}

// TestStreamTableCSVWriteErrors: a failing CSV sink (spool file on a
// full disk) surfaces through Row instead of silently truncating the
// capture.
func TestStreamTableCSVWriteErrors(t *testing.T) {
	tab := NewStreamTable(&strings.Builder{}, StreamTableConfig{
		XLabel: "x", XValues: []string{"a"}, CSVTo: &failingWriter{n: 64},
	})
	if err := tab.Row("ok", "1"); err != nil {
		t.Fatalf("healthy sink: %v", err)
	}
	bad := NewStreamTable(&strings.Builder{}, StreamTableConfig{
		XLabel: "x", XValues: []string{"a"}, CSVTo: &failingWriter{},
	})
	if err := bad.Row("r", "1"); err == nil {
		t.Error("failed CSV write not reported")
	}
}
