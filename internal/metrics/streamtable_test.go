package metrics

import (
	"strings"
	"testing"
)

// TestStreamTableLayoutFixedUpFront: the whole layout — label column
// sized by the declared row labels, value columns by header vs the
// MinCell floor — is decided before any data exists, and rows render
// incrementally with the header already on the writer.
func TestStreamTableLayoutFixedUpFront(t *testing.T) {
	var b strings.Builder
	tab := NewStreamTable(&b, StreamTableConfig{
		Title:     "reuse rate (%)",
		XLabel:    "RUs \\ policy",
		RowLabels: []string{"4", "10", "Avg."},
		XValues:   []string{"LRU", "Local LFD (1)"},
	})
	headerOnly := b.String()
	if !strings.Contains(headerOnly, "reuse rate (%)\n") || !strings.Contains(headerOnly, "RUs \\ policy") {
		t.Fatalf("header not written at construction:\n%s", headerOnly)
	}
	if err := tab.FloatRow("4", 21.98, 38.95); err != nil {
		t.Fatal(err)
	}
	afterOne := b.String()
	if !strings.HasPrefix(afterOne, headerOnly) || !strings.Contains(afterOne, "21.98") {
		t.Fatalf("first row not streamed:\n%s", afterOne)
	}
	if err := tab.FloatRow("10", 31.19, 45.93); err != nil {
		t.Fatal(err)
	}
	if err := tab.FloatRow("Avg.", 26.58, 42.44); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), b.String())
	}
	// Every post-title line is identically wide: the layout never moved
	// as rows landed.
	for _, l := range lines[2:] {
		if len(l) != len(lines[1]) {
			t.Errorf("line %q is %d wide, header is %d — layout shifted", l, len(l), len(lines[1]))
		}
	}
	// The "LRU" column floors at MinCell (6) even though the header is
	// shorter; "Local LFD (1)" uses its header width.
	if !strings.Contains(lines[1], "LRU     Local LFD (1)") {
		t.Errorf("column widths off: %q", lines[1])
	}
}

// TestStreamTableRowErrors: a row with the wrong arity is refused.
func TestStreamTableRowErrors(t *testing.T) {
	tab := NewStreamTable(&strings.Builder{}, StreamTableConfig{
		XLabel: "x", XValues: []string{"a", "b"},
	})
	if err := tab.Row("r", "1"); err == nil {
		t.Error("short row accepted")
	}
	if err := tab.Row("r", "1", "2", "3"); err == nil {
		t.Error("long row accepted")
	}
	if err := tab.Row("r", "1", "2"); err != nil {
		t.Error(err)
	}
}

// TestStreamTableCSVCapture: CSV accumulates exactly the rows written,
// header first, and stays empty without CaptureCSV.
func TestStreamTableCSVCapture(t *testing.T) {
	var b strings.Builder
	tab := NewStreamTable(&b, StreamTableConfig{
		XLabel: "RUs \\ policy", XValues: []string{"LRU", "LFD"}, CaptureCSV: true,
	})
	if err := tab.FloatRow("4", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tab.Row("5", "3.00", "4.00"); err != nil {
		t.Fatal(err)
	}
	want := "RUs \\ policy,LRU,LFD\n4,1.00,2.00\n5,3.00,4.00\n"
	if got := tab.CSV(); got != want {
		t.Errorf("CSV\n got %q\nwant %q", got, want)
	}

	plain := NewStreamTable(&strings.Builder{}, StreamTableConfig{XLabel: "x", XValues: []string{"a"}})
	if err := plain.FloatRow("r", 1); err != nil {
		t.Fatal(err)
	}
	if plain.CSV() != "" {
		t.Error("CSV captured without CaptureCSV")
	}
}
