package metrics

import (
	"fmt"
	"io"
	"strings"
)

// StreamTableConfig fixes a StreamTable's whole layout before the first
// row exists. A buffered Table computes its column widths from the data,
// which forces it to hold every row until the last one has landed; a
// StreamTable instead derives the widths from what a sweep knows up
// front — the axis headers and the row labels the grid will produce —
// so each row can be rendered and forgotten the moment its scenarios
// complete. That fixed layout is what lets report tables print while a
// sweep (or a multi-host populate feeding a watch-mode merge) is still
// running, retaining O(1) rows instead of O(grid).
type StreamTableConfig struct {
	// Title, when non-empty, prints on its own line above the header.
	Title string
	// XLabel heads the row-label column ("RUs \ policy").
	XLabel string
	// RowLabels are the labels of every row the table will receive, in
	// any order; they only size the label column. A row written with a
	// label longer than all of these still renders, just misaligned.
	RowLabels []string
	// XValues are the column headers, one per value column.
	XValues []string
	// MinCell floors every value column's width (default 6 — room for a
	// "%.2f" percentage up to 999.99). Columns whose header is wider use
	// the header width.
	MinCell int
	// CSVTo, when non-nil, additionally receives each row in CSV form the
	// moment it lands (header at construction, one line per Row). The
	// table itself retains nothing — CSV rows stream to the writer just
	// like the rendered table streams to w, so capture stays O(1) however
	// large the grid. Reports that do not ask for CSV hold nothing.
	CSVTo io.Writer
}

// StreamTable renders an aligned text table row by row to an io.Writer.
// The title, header and separator are written at construction; each
// Row/FloatRow call appends one fully-rendered line. Nothing is buffered
// between rows — the optional CSV capture streams to its own writer the
// same way — so the writers' output is complete up to the last row that
// landed: the property watch-mode merges rely on to show progress
// mid-sweep, and the property that keeps retention O(1) on any grid.
type StreamTable struct {
	w      io.Writer
	widths []int
	ncols  int
	csvW   io.Writer
}

// NewStreamTable fixes the layout from cfg and writes the table header
// to w immediately.
func NewStreamTable(w io.Writer, cfg StreamTableConfig) *StreamTable {
	min := cfg.MinCell
	if min <= 0 {
		min = 6
	}
	widths := make([]int, len(cfg.XValues)+1)
	widths[0] = len(cfg.XLabel)
	for _, l := range cfg.RowLabels {
		if len(l) > widths[0] {
			widths[0] = len(l)
		}
	}
	for i, h := range cfg.XValues {
		widths[i+1] = min
		if len(h) > widths[i+1] {
			widths[i+1] = len(h)
		}
	}
	t := &StreamTable{w: w, widths: widths, ncols: len(cfg.XValues), csvW: cfg.CSVTo}
	if t.csvW != nil {
		writeCSVLine(t.csvW, cfg.XLabel, cfg.XValues)
	}
	if cfg.Title != "" {
		fmt.Fprintln(w, cfg.Title)
	}
	t.writeAligned(cfg.XLabel, cfg.XValues)
	sep := make([]string, len(cfg.XValues))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i+1])
	}
	t.writeAligned(strings.Repeat("-", widths[0]), sep)
	return t
}

// writeAligned renders one padded line.
func (t *StreamTable) writeAligned(name string, values []string) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", t.widths[0], name)
	for i, v := range values {
		b.WriteString("  ")
		fmt.Fprintf(&b, "%-*s", t.widths[i+1], v)
	}
	b.WriteByte('\n')
	io.WriteString(t.w, b.String())
}

// writeCSVLine streams one CSV record (name, then values) to w.
func writeCSVLine(w io.Writer, name string, values []string) error {
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	for _, v := range values {
		if _, err := io.WriteString(w, ","); err != nil {
			return err
		}
		if _, err := io.WriteString(w, v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Row writes one row. The number of values must match the headers. When
// the table streams CSV, a failed CSV write surfaces here (a spool file
// can hit a full disk; the aligned table keeps the buffered Table's
// fire-and-forget behaviour).
func (t *StreamTable) Row(name string, values ...string) error {
	if len(values) != t.ncols {
		return fmt.Errorf("metrics: row %q has %d values, table has %d columns",
			name, len(values), t.ncols)
	}
	t.writeAligned(name, values)
	if t.csvW != nil {
		if err := writeCSVLine(t.csvW, name, values); err != nil {
			return fmt.Errorf("metrics: csv stream: %w", err)
		}
	}
	return nil
}

// FloatRow writes one row of numbers with two decimals.
func (t *StreamTable) FloatRow(name string, values ...float64) error {
	strs := make([]string, len(values))
	for i, v := range values {
		strs[i] = fmt.Sprintf("%.2f", v)
	}
	return t.Row(name, strs...)
}
