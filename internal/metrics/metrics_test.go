package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/manager"
	"repro/internal/simtime"
)

func ms(v float64) simtime.Time { return simtime.FromMs(v) }

func mkSummary(t *testing.T, executed, reused int, makespan, ideal float64) *Summary {
	t.Helper()
	s, err := Summarize("P", 4, ms(4),
		&manager.Result{Executed: executed, Reused: reused, Makespan: ms(makespan)},
		&manager.Result{Executed: executed, Makespan: ms(ideal)})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFig2Quantities recomputes the paper's Fig. 2 numbers from raw
// counts: 12 executions, ideal 42 ms.
func TestFig2Quantities(t *testing.T) {
	cases := []struct {
		name     string
		reused   int
		makespan float64
		rate     float64
		overhead float64
	}{
		{"LRU", 2, 64, 16.67, 22},
		{"LFD", 5, 53, 41.67, 11},
		{"LocalLFD", 5, 57, 41.67, 15},
	}
	for _, tt := range cases {
		s := mkSummary(t, 12, tt.reused, tt.makespan, 42)
		if math.Abs(s.ReuseRate()-tt.rate) > 0.01 {
			t.Errorf("%s: reuse = %.2f%%, want %.2f%%", tt.name, s.ReuseRate(), tt.rate)
		}
		if s.Overhead() != ms(tt.overhead) {
			t.Errorf("%s: overhead = %v, want %v ms", tt.name, s.Overhead(), tt.overhead)
		}
	}
}

func TestRemainingOverheadPct(t *testing.T) {
	// 12 tasks × 4 ms = 48 ms original; 22 ms remaining ⇒ 45.83 %.
	s := mkSummary(t, 12, 2, 64, 42)
	if got := s.RemainingOverheadPct(); math.Abs(got-45.8333) > 0.01 {
		t.Errorf("remaining = %.3f%%, want 45.833%%", got)
	}
	if s.OriginalOverhead() != ms(48) {
		t.Errorf("original = %v, want 48 ms", s.OriginalOverhead())
	}
}

func TestZeroLatencySummary(t *testing.T) {
	s, err := Summarize("P", 4, 0,
		&manager.Result{Executed: 5, Makespan: ms(10)},
		&manager.Result{Executed: 5, Makespan: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	if s.RemainingOverheadPct() != 0 {
		t.Error("zero-latency remaining overhead should be 0")
	}
}

func TestEmptyRun(t *testing.T) {
	s, err := Summarize("P", 4, ms(4), &manager.Result{}, &manager.Result{})
	if err != nil {
		t.Fatal(err)
	}
	if s.ReuseRate() != 0 || s.RemainingOverheadPct() != 0 {
		t.Error("empty run should report zeros")
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize("P", 4, ms(4), nil, nil); err == nil {
		t.Error("nil results accepted")
	}
	if _, err := Summarize("P", 4, ms(4),
		&manager.Result{Executed: 3},
		&manager.Result{Executed: 4}); err == nil {
		t.Error("mismatched workloads accepted")
	}
	if _, err := Summarize("P", 4, ms(4),
		&manager.Result{Executed: 3, Makespan: ms(1)},
		&manager.Result{Executed: 3, Makespan: ms(2)}); err == nil {
		t.Error("run faster than ideal accepted")
	}
}

func TestSummaryString(t *testing.T) {
	s := mkSummary(t, 12, 5, 53, 42)
	out := s.String()
	for _, frag := range []string{"41.67", "11 ms", "53 ms", "R=4"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() = %q missing %q", out, frag)
		}
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("Fig 9a", "policy", "4", "5", "6")
	if err := tab.AddFloatRow("LRU", 30.1, 31.2, 32.3); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("LFD", "45.97", "46.00", "46.10"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("bad", "1"); err == nil {
		t.Error("wrong-arity row accepted")
	}
	out := tab.String()
	for _, frag := range []string{"Fig 9a", "policy", "LRU", "30.10", "45.97"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "policy,4,5,6\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "LRU,30.10,31.20,32.30") {
		t.Errorf("CSV row wrong:\n%s", csv)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}
