package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/manager"
	"repro/internal/simtime"
)

// DelayStats summarizes per-application scheduling delay: how much later
// each application finished than it would have on an overhead-free
// system. The paper reports workload-level makespans; per-application
// percentiles matter to anyone running the technique in a soft-real-time
// setting (the multimedia context of the paper's introduction).
type DelayStats struct {
	Count int
	Mean  simtime.Time
	Max   simtime.Time
	P50   simtime.Time
	P95   simtime.Time
}

// Delays compares per-instance completion times of a run against its
// zero-latency baseline. Both results must come from the same workload.
func Delays(run, ideal *manager.Result) (*DelayStats, error) {
	if run == nil || ideal == nil {
		return nil, fmt.Errorf("metrics: nil result")
	}
	if len(run.Completions) != len(ideal.Completions) {
		return nil, fmt.Errorf("metrics: %d vs %d completions — different workloads",
			len(run.Completions), len(ideal.Completions))
	}
	n := len(run.Completions)
	stats := &DelayStats{Count: n}
	if n == 0 {
		return stats, nil
	}
	delays := make([]simtime.Time, n)
	var sum simtime.Time
	for i := range delays {
		d := run.Completions[i].Sub(ideal.Completions[i])
		if d < 0 {
			return nil, fmt.Errorf("metrics: instance %d finished earlier (%v) than ideal (%v)",
				i, run.Completions[i], ideal.Completions[i])
		}
		delays[i] = d
		sum = sum.Add(d)
		if d.After(stats.Max) {
			stats.Max = d
		}
	}
	sort.Slice(delays, func(a, b int) bool { return delays[a] < delays[b] })
	stats.Mean = sum / simtime.Time(n)
	stats.P50 = percentile(delays, 50)
	stats.P95 = percentile(delays, 95)
	return stats, nil
}

// percentile returns the nearest-rank percentile of sorted values.
func percentile(sorted []simtime.Time, p int) simtime.Time {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String renders a one-line digest.
func (d *DelayStats) String() string {
	return fmt.Sprintf("per-app delay over %d apps: mean %v, p50 %v, p95 %v, max %v",
		d.Count, d.Mean, d.P50, d.P95, d.Max)
}

// Stddev computes the population standard deviation of vs.
func Stddev(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	m := Mean(vs)
	s := 0.0
	for _, v := range vs {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(vs)))
}
