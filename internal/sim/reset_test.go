package sim

import (
	"testing"

	"repro/internal/simtime"
)

// TestEngineReset: a reset engine behaves exactly like a zero-value one —
// clock at zero, empty queue, cleared counters, same tie-breaking.
func TestEngineReset(t *testing.T) {
	var e Engine
	e.Schedule(simtime.FromMs(5), EndOfExecution, 1, 0)
	e.Schedule(simtime.FromMs(2), EndOfReconfiguration, 2, 1)
	e.Pop()
	e.Reset(8)
	if e.Len() != 0 || e.Now() != 0 || e.Popped() != 0 {
		t.Fatalf("after Reset: len=%d now=%v popped=%d", e.Len(), e.Now(), e.Popped())
	}
	// Insertion-order tie-breaking restarts from sequence zero.
	e.Schedule(simtime.FromMs(1), EndOfExecution, 10, 0)
	e.Schedule(simtime.FromMs(1), EndOfExecution, 11, 1)
	if ev, _ := e.Pop(); ev.Task != 10 {
		t.Errorf("first pop task = %d, want 10 (insertion order)", ev.Task)
	}
	if ev, _ := e.Pop(); ev.Task != 11 {
		t.Errorf("second pop task = %d, want 11", ev.Task)
	}
}

// TestEngineResetKeepsBackingArray: once grown, a reset engine schedules
// without allocating.
func TestEngineResetKeepsBackingArray(t *testing.T) {
	var e Engine
	e.Reset(64)
	avg := testing.AllocsPerRun(20, func() {
		e.Reset(64)
		for i := 0; i < 64; i++ {
			e.Schedule(simtime.FromMs(float64(i)), EndOfExecution, 1, 0)
		}
		for {
			if _, ok := e.Pop(); !ok {
				break
			}
		}
	})
	if avg != 0 {
		t.Errorf("warm schedule/pop cycle allocates %.1f times, want 0", avg)
	}
}
