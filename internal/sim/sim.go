// Package sim provides the deterministic discrete-event core of the
// simulator: a typed event set and a time-ordered queue with stable
// tie-breaking.
//
// The execution manager (internal/manager) is event-triggered exactly like
// the one in the paper's Fig. 4: it pops one event at a time, reacts, and
// lets consequences (task starts, new reconfigurations) be scheduled as
// future events. Determinism matters — every experiment must be exactly
// repeatable — so ties are broken first by event kind and then by
// scheduling order, never by map iteration or heap internals.
package sim

import (
	"fmt"

	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

// Kind enumerates the paper's event types (Fig. 4) plus the arrival event
// that feeds the Dynamic List.
type Kind int

const (
	// EndOfExecution fires when a task finishes running on its unit.
	EndOfExecution Kind = iota
	// EndOfReconfiguration fires when the reconfiguration circuitry
	// finishes loading a configuration onto a unit.
	EndOfReconfiguration
	// NewTaskGraph fires when an application arrives and is enqueued in
	// the Dynamic List.
	NewTaskGraph
)

// String names the kind the way the paper does.
func (k Kind) String() string {
	switch k {
	case EndOfExecution:
		return "end_of_execution"
	case EndOfReconfiguration:
		return "end_of_reconfiguration"
	case NewTaskGraph:
		return "new_task_graph"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled occurrence.
type Event struct {
	Time simtime.Time
	Kind Kind
	Task taskgraph.TaskID // task involved (execution / reconfiguration)
	RU   int              // unit involved, -1 when not applicable
	Arg  int              // kind-specific payload (e.g. arrival index)
	seq  uint64           // insertion order, for stable ties
}

// String renders the event for traces and error messages.
func (e Event) String() string {
	return fmt.Sprintf("%v %s task=%d ru=%d", e.Time, e.Kind, e.Task, e.RU)
}

// before defines the total event order: by time, then by kind
// (end_of_execution first, so that a task finishing at instant t frees its
// unit before a load decision at the same instant), then by insertion
// order.
func (e Event) before(f Event) bool {
	if e.Time != f.Time {
		return e.Time < f.Time
	}
	if e.Kind != f.Kind {
		return e.Kind < f.Kind
	}
	return e.seq < f.seq
}

// Engine owns the simulated clock and the pending-event queue.
// The zero value is ready to use.
type Engine struct {
	now     simtime.Time
	heap    []Event
	nextSeq uint64
	popped  uint64
}

// Reset rewinds the engine to its zero state — empty queue, clock at
// zero, popped counter cleared — while keeping the heap's backing array,
// so a reused engine schedules into warm memory instead of re-growing the
// queue from nil. capacity is a pre-size hint (typically the task-graph
// node count plus pending arrivals); the backing array only ever grows.
func (e *Engine) Reset(capacity int) {
	if capacity > cap(e.heap) {
		e.heap = make([]Event, 0, capacity)
	} else {
		e.heap = e.heap[:0]
	}
	e.now = 0
	e.nextSeq = 0
	e.popped = 0
}

// Now returns the current simulated time: the timestamp of the most
// recently popped event.
func (e *Engine) Now() simtime.Time { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.heap) }

// Popped returns how many events have been processed so far.
func (e *Engine) Popped() uint64 { return e.popped }

// Schedule enqueues an event at time at. Scheduling into the past is a
// programming error and panics: the simulation would otherwise silently
// produce causality violations.
func (e *Engine) Schedule(at simtime.Time, k Kind, task taskgraph.TaskID, ru int) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling %s at %v before now %v", k, at, e.now))
	}
	ev := Event{Time: at, Kind: k, Task: task, RU: ru, seq: e.nextSeq}
	e.nextSeq++
	e.push(ev)
}

// ScheduleArrival enqueues a NewTaskGraph event carrying the arrival index.
func (e *Engine) ScheduleArrival(at simtime.Time, index int) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling arrival at %v before now %v", at, e.now))
	}
	ev := Event{Time: at, Kind: NewTaskGraph, RU: -1, Arg: index, seq: e.nextSeq}
	e.nextSeq++
	e.push(ev)
}

// Pop removes and returns the next event, advancing the clock to its
// timestamp. ok is false when the queue is empty.
func (e *Engine) Pop() (ev Event, ok bool) {
	if len(e.heap) == 0 {
		return Event{}, false
	}
	ev = e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	e.now = ev.Time
	e.popped++
	return ev, true
}

// Peek returns the next event without removing it.
func (e *Engine) Peek() (Event, bool) {
	if len(e.heap) == 0 {
		return Event{}, false
	}
	return e.heap[0], true
}

// push inserts an event, restoring the heap property.
func (e *Engine) push(ev Event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heap[i].before(e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && e.heap[l].before(e.heap[best]) {
			best = l
		}
		if r < n && e.heap[r].before(e.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		e.heap[i], e.heap[best] = e.heap[best], e.heap[i]
		i = best
	}
}
