package sim

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/simtime"
)

func TestEmptyEngine(t *testing.T) {
	var e Engine
	if _, ok := e.Pop(); ok {
		t.Error("Pop on empty engine returned ok")
	}
	if _, ok := e.Peek(); ok {
		t.Error("Peek on empty engine returned ok")
	}
	if e.Now() != 0 || e.Len() != 0 {
		t.Error("zero engine not at epoch")
	}
}

func TestTimeOrdering(t *testing.T) {
	var e Engine
	e.Schedule(simtime.FromMs(5), EndOfExecution, 1, 0)
	e.Schedule(simtime.FromMs(2), EndOfExecution, 2, 1)
	e.Schedule(simtime.FromMs(9), EndOfReconfiguration, 3, 2)
	var times []simtime.Time
	for {
		ev, ok := e.Pop()
		if !ok {
			break
		}
		times = append(times, ev.Time)
		if e.Now() != ev.Time {
			t.Errorf("Now %v != popped time %v", e.Now(), ev.Time)
		}
	}
	want := []simtime.Time{simtime.FromMs(2), simtime.FromMs(5), simtime.FromMs(9)}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("pop order %v, want %v", times, want)
		}
	}
}

func TestKindTieBreak(t *testing.T) {
	// At equal times, end_of_execution precedes end_of_reconfiguration,
	// which precedes new_task_graph, regardless of insertion order.
	var e Engine
	at := simtime.FromMs(4)
	e.ScheduleArrival(at, 7)
	e.Schedule(at, EndOfReconfiguration, 2, 1)
	e.Schedule(at, EndOfExecution, 1, 0)
	kinds := []Kind{}
	for {
		ev, ok := e.Pop()
		if !ok {
			break
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []Kind{EndOfExecution, EndOfReconfiguration, NewTaskGraph}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kind order %v, want %v", kinds, want)
		}
	}
}

func TestInsertionTieBreak(t *testing.T) {
	var e Engine
	at := simtime.FromMs(1)
	for i := 0; i < 10; i++ {
		e.Schedule(at, EndOfExecution, 0, i)
	}
	for i := 0; i < 10; i++ {
		ev, ok := e.Pop()
		if !ok || ev.RU != i {
			t.Fatalf("pop %d: got ru %d", i, ev.RU)
		}
	}
}

func TestCausalityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	var e Engine
	e.Schedule(simtime.FromMs(5), EndOfExecution, 1, 0)
	e.Pop()
	e.Schedule(simtime.FromMs(1), EndOfExecution, 2, 0)
}

func TestArrivalPayload(t *testing.T) {
	var e Engine
	e.ScheduleArrival(simtime.FromMs(3), 42)
	ev, ok := e.Pop()
	if !ok || ev.Kind != NewTaskGraph || ev.Arg != 42 || ev.RU != -1 {
		t.Errorf("arrival event = %+v", ev)
	}
}

func TestPoppedCounter(t *testing.T) {
	var e Engine
	e.Schedule(0, EndOfExecution, 1, 0)
	e.Schedule(0, EndOfExecution, 2, 0)
	e.Pop()
	if e.Popped() != 1 {
		t.Errorf("Popped = %d, want 1", e.Popped())
	}
	e.Pop()
	if e.Popped() != 2 {
		t.Errorf("Popped = %d, want 2", e.Popped())
	}
}

// TestHeapProperty pushes random events and checks the pop sequence is
// sorted under the engine's total order.
func TestHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var e Engine
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			e.Schedule(simtime.Time(rng.Int63n(100)), Kind(rng.Intn(2)), 0, i)
		}
		type key struct {
			t simtime.Time
			k Kind
			s int
		}
		var got []key
		for {
			ev, ok := e.Pop()
			if !ok {
				break
			}
			got = append(got, key{ev.Time, ev.Kind, ev.RU})
		}
		if len(got) != n {
			t.Fatalf("trial %d: popped %d of %d", trial, len(got), n)
		}
		sorted := sort.SliceIsSorted(got, func(a, b int) bool {
			if got[a].t != got[b].t {
				return got[a].t < got[b].t
			}
			if got[a].k != got[b].k {
				return got[a].k < got[b].k
			}
			return got[a].s < got[b].s
		})
		if !sorted {
			t.Fatalf("trial %d: pop sequence not ordered: %v", trial, got)
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	// Scheduling while popping (the normal simulation pattern) preserves
	// ordering for events at or after Now.
	var e Engine
	e.Schedule(simtime.FromMs(1), EndOfExecution, 1, 0)
	ev, _ := e.Pop()
	e.Schedule(ev.Time.Add(simtime.FromMs(4)), EndOfReconfiguration, 2, 1)
	e.Schedule(ev.Time, EndOfExecution, 3, 2) // same instant is allowed
	ev2, _ := e.Pop()
	if ev2.Task != 3 {
		t.Errorf("same-instant event should pop first, got task %d", ev2.Task)
	}
	ev3, _ := e.Pop()
	if ev3.Task != 2 {
		t.Errorf("got task %d, want 2", ev3.Task)
	}
}

func TestKindString(t *testing.T) {
	if EndOfExecution.String() != "end_of_execution" ||
		EndOfReconfiguration.String() != "end_of_reconfiguration" ||
		NewTaskGraph.String() != "new_task_graph" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind formatting")
	}
}
