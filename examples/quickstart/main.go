// Quickstart: define two small applications, run them on a simulated
// 4-unit reconfigurable system under the paper's Local LFD policy, and
// print the reuse and overhead metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
)

func main() {
	// An application is a task graph: nodes are hardware tasks (one FPGA
	// configuration each), edges are dependencies. Task IDs are global —
	// repeated executions of the same template share them, which is what
	// makes configuration reuse possible.
	filter, err := taskgraph.NewBuilder("filter").
		AddTask(1, "acquire", simtime.FromMs(3)).
		AddTask(2, "convolve", simtime.FromMs(8)).
		AddTask(3, "emit", simtime.FromMs(2)).
		AddDep(1, 2).
		AddDep(2, 3).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	detect := taskgraph.ForkJoin("detect", 10,
		simtime.FromMs(4), // root
		[]simtime.Time{simtime.FromMs(6), simtime.FromMs(5)}, // parallel branches
		simtime.FromMs(3), // sink
		true)

	// A system: 4 equal reconfigurable units, 4 ms reconfiguration
	// latency, the paper's Local LFD replacement policy with a Dynamic
	// List window of 2 applications, plus the hybrid skip-events feature.
	sys, err := core.NewSystem(core.Config{
		RUs:        4,
		Latency:    simtime.FromMs(4),
		Policy:     "locallfd:2",
		SkipEvents: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Design-time phase: compute mobility tables once per template.
	if err := sys.Prepare(filter, detect); err != nil {
		log.Fatal(err)
	}

	// Run-time phase: execute a bursty sequence that revisits templates —
	// the situation configuration reuse pays off in.
	res, err := sys.Run(filter, detect, filter, filter, detect)
	if err != nil {
		log.Fatal(err)
	}

	s := res.Summary
	fmt.Printf("executed %d tasks, reused %d (%.1f%%)\n", s.Executed, s.Reused, s.ReuseRate())
	fmt.Printf("makespan %v vs ideal %v — reconfiguration overhead %v\n",
		s.Makespan, s.IdealMakespan, s.Overhead())
	fmt.Printf("only %.1f%% of the raw reconfiguration cost (%v) remains visible\n",
		s.RemainingOverheadPct(), s.OriginalOverhead())
}
