// Mobilitystudy: the design-time side of the paper's technique. For each
// benchmark the example computes the mobility table (Fig. 6) at several
// platform sizes, showing how slack appears as units are added, then
// replays the paper's Fig. 3 to show a single skip decision paying off at
// run time.
//
//	go run ./examples/mobilitystudy
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mobility"
	"repro/internal/taskgraph"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	fmt.Println("design-time mobility tables (events a load may be postponed):")
	graphs := []*taskgraph.Graph{
		workload.Fig3TG2(), workload.JPEG(), workload.MPEG1(), workload.Hough(),
	}
	for _, g := range graphs {
		for _, rus := range []int{2, 4, 8} {
			if rus < g.Width() {
				// Narrower than the graph is fine too, but keep the
				// table readable.
				continue
			}
			tab, err := mobility.Compute(g, rus, workload.PaperLatency())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %v\n", tab)
		}
	}

	fmt.Println("\nrun-time payoff (the paper's Fig. 3, R=4):")
	for _, skip := range []bool{false, true} {
		res, err := core.Evaluate(core.Config{
			RUs: 4, Latency: workload.PaperLatency(), Policy: "locallfd:1",
			SkipEvents: skip, RecordTrace: true,
		}, workload.Fig3Sequence()...)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		label := "ASAP (no skips)"
		if skip {
			label = "with skip events"
		}
		fmt.Printf("\n%s: makespan %v, overhead %v, reuse %.0f%%, skips %d\n",
			label, s.Makespan, s.Overhead(), s.ReuseRate(), res.Run.Skips)
		fmt.Print(res.Run.Trace.Gantt(trace.GanttOptions{TickMs: 1}))
	}
	fmt.Println("\nDelaying task 7 by one event (its mobility) keeps task 1 resident for")
	fmt.Println("the second Task Graph 1, eliminating one exposed reconfiguration.")
}
