// Multimedia: the paper's evaluation scenario — a random stream of JPEG
// decoder, MPEG-1 encoder and Hough transform applications on a small
// reconfigurable platform — comparing every replacement policy head to
// head. This is the situation the paper's introduction motivates:
// recurrent multimedia kernels competing for a few reconfigurable units.
//
//	go run ./examples/multimedia
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynlist"
	"repro/internal/metrics"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

func main() {
	const (
		apps = 150
		rus  = 4
		seed = 42
	)
	pool := workload.Multimedia()
	feed, err := dynlist.RandomSequence(pool, apps, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	items := feed.Remaining()
	seq := make([]*taskgraph.Graph, len(items))
	for i, it := range items {
		seq[i] = it.Graph
	}
	fmt.Printf("%d applications drawn from {JPEG, MPEG-1, Hough} — %d distinct tasks on %d units\n\n",
		apps, workload.UniverseSize(pool), rus)

	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"LRU (classic cache baseline)", core.Config{Policy: "lru"}},
		{"FIFO", core.Config{Policy: "fifo"}},
		{"Local LFD (1)", core.Config{Policy: "locallfd:1"}},
		{"Local LFD (1) + Skip Events", core.Config{Policy: "locallfd:1", SkipEvents: true}},
		{"Local LFD (4) + Skip Events", core.Config{Policy: "locallfd:4", SkipEvents: true}},
		{"LFD (clairvoyant optimum)", core.Config{Policy: "lfd"}},
	}
	tab := metrics.NewTable("", "policy", "reuse %", "overhead", "remaining %")
	for _, c := range configs {
		c.cfg.RUs = rus
		c.cfg.Latency = workload.PaperLatency()
		res, err := core.Evaluate(c.cfg, seq...)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		if err := tab.AddRow(c.label,
			fmt.Sprintf("%.2f", s.ReuseRate()),
			s.Overhead().String(),
			fmt.Sprintf("%.2f", s.RemainingOverheadPct())); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(tab.String())
	fmt.Println("\nNote how Local LFD with skip events exceeds even clairvoyant LFD on")
	fmt.Println("reuse: LFD must load as soon as possible, while the hybrid technique")
	fmt.Println("may delay a load to protect a configuration it knows will be needed.")
}
