// Dynamicarrivals: the highly dynamic environment of the paper's Fig. 1 —
// applications arrive over time, the Dynamic List grows and shrinks, and
// the scheduler only ever sees a window of the future. A burst of arrivals
// piles work up; a quiet period drains it; a late job finds its
// configurations still resident and runs with zero reconfiguration cost.
//
//	go run ./examples/dynamicarrivals
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynlist"
	"repro/internal/simtime"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

func main() {
	jpeg, mpeg := workload.JPEG(), workload.MPEG1()
	ms := simtime.FromMs

	// A bursty arrival pattern: two jobs at once, two more while the
	// first burst executes, silence, then a JPEG long after the system
	// went idle. The 9-unit platform fits both working sets (4+5 tasks),
	// so steady state approaches zero reconfigurations.
	arrivals := []dynlist.Item{
		{Graph: jpeg, Arrival: 0},
		{Graph: mpeg, Arrival: 0},
		{Graph: jpeg, Arrival: ms(120)},
		{Graph: mpeg, Arrival: ms(150)},
		{Graph: jpeg, Arrival: ms(700)},
	}

	sys, err := core.NewSystem(core.Config{
		RUs:         9,
		Latency:     workload.PaperLatency(),
		Policy:      "locallfd:2",
		SkipEvents:  true,
		RecordTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Prepare(jpeg, mpeg); err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunFeed(func() dynlist.Feed {
		f, err := dynlist.NewTimed(arrivals)
		if err != nil {
			log.Fatal(err)
		}
		return f
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-application timeline (arrival → start → completion):")
	for _, g := range res.Run.Trace.Graphs {
		fmt.Printf("  #%d %-6s  arrived %8v  started %8v  finished %8v\n",
			g.Instance, g.Name, g.Arrived, g.Started, g.Finished)
	}
	s := res.Summary
	fmt.Printf("\nreuse %.1f%% (%d/%d), overhead %v\n",
		s.ReuseRate(), s.Reused, s.Executed, s.Overhead())
	fmt.Println("\nThe final JPEG (arrival 700 ms) reuses the whole pipeline left resident")
	fmt.Println("by the earlier instances: zero reconfigurations, zero overhead.")

	// The same system under a sustained stochastic load: a Poisson stream
	// of 80 applications with a 30 ms mean inter-arrival gap.
	res, err = sys.RunFeed(func() dynlist.Feed {
		f, err := dynlist.RandomArrivals([]*taskgraph.Graph{jpeg, mpeg}, 80,
			ms(30), rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatal(err)
		}
		return f
	})
	if err != nil {
		log.Fatal(err)
	}
	s = res.Summary
	fmt.Printf("\nPoisson stream (80 apps, mean gap 30 ms): reuse %.1f%%, overhead %v (%.2f%% of original)\n",
		s.ReuseRate(), s.Overhead(), s.RemainingOverheadPct())
}
