// Package taskreuse is a faithful Go reproduction of "A Replacement
// Technique to Maximize Task Reuse in Reconfigurable Systems" (Clemente,
// Resano, Mozos et al., IPDPS Workshops / Reconfigurable Architectures
// 2011).
//
// The paper proposes a hybrid design-time/run-time configuration
// replacement technique for FPGA-style multitasking systems built from
// equal-sized reconfigurable units: Local LFD (Belady's longest-forward-
// distance restricted to the run-time Dynamic List window) combined with
// Skip Events (deliberately postponing a reconfiguration, within a task's
// precomputed mobility, to protect a configuration known to be reused
// soon).
//
// The library lives under internal/:
//
//   - internal/core — the public facade: configure a System, run
//     workloads, get the paper's metrics.
//   - internal/taskgraph, internal/sim, internal/ru — the substrates:
//     task-graph model, discrete-event engine, reconfigurable-unit array.
//   - internal/manager — the event-triggered execution manager (paper
//     Fig. 4) with the replacement module (Fig. 8).
//   - internal/policy — LRU, FIFO, MRU, Random, LFD and Local LFD.
//   - internal/mobility — the design-time phase (Fig. 6), with a
//     process-wide memoized table cache keyed by (template, RUs, latency).
//   - internal/sweep — the parallel scenario executor: declarative
//     policy × RUs × latency × workload grids run on a bounded worker
//     pool with deterministic, spec-order results.
//   - internal/experiments — regenerates every table and figure, each
//     grid experiment as one sweep Spec.
//
// The benchmarks in bench_test.go regenerate the paper's measured tables;
// cmd/rtrrepro prints the full evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package taskreuse
