// Package taskreuse is a faithful Go reproduction of "A Replacement
// Technique to Maximize Task Reuse in Reconfigurable Systems" (Clemente,
// Resano, Mozos et al., IPDPS Workshops / Reconfigurable Architectures
// 2011).
//
// The paper proposes a hybrid design-time/run-time configuration
// replacement technique for FPGA-style multitasking systems built from
// equal-sized reconfigurable units: Local LFD (Belady's longest-forward-
// distance restricted to the run-time Dynamic List window) combined with
// Skip Events (deliberately postponing a reconfiguration, within a task's
// precomputed mobility, to protect a configuration known to be reused
// soon).
//
// The library lives under internal/:
//
//   - internal/core — the public facade: configure a System, run
//     workloads, get the paper's metrics.
//   - internal/taskgraph, internal/sim, internal/ru — the substrates:
//     task-graph model, discrete-event engine, reconfigurable-unit array.
//   - internal/manager — the event-triggered execution manager (paper
//     Fig. 4) with the replacement module (Fig. 8).
//   - internal/policy — LRU, FIFO, MRU, Random, LFD and Local LFD.
//   - internal/mobility — the design-time phase (Fig. 6), with a
//     process-wide memoized table cache keyed by (template, RUs, latency).
//   - internal/sweep — the parallel scenario executor: declarative
//     policy × RUs × latency × workload grids run on a bounded worker
//     pool with deterministic, spec-order results streamed through
//     collectors and row renderers.
//   - internal/resultstore — the persisted, content-addressed store of
//     scenario results (canonical config-hash keys, atomic writes,
//     measured timings for dispatch).
//   - internal/coord — the file-based shard coordinator: self-healing
//     multi-host pools with leases, TTL expiry and watch/drain verdicts.
//   - internal/experiments — regenerates every table and figure, each
//     grid experiment as one sweep Spec rendered row by row.
//
// The benchmarks in bench_test.go regenerate the paper's measured tables;
// cmd/rtrrepro prints the full evaluation. ARCHITECTURE.md walks the
// whole pipeline (Spec → Executor/Collector → resultstore → coord →
// merge/watch render) end to end; see also README.md, DESIGN.md and
// EXPERIMENTS.md.
package taskreuse
