// Benchmarks regenerating the paper's measured results, one group per
// table or figure. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute times are host-dependent (the paper measured a PowerPC 405 at
// 100 MHz); the meaningful comparisons are the ratios between policies
// and between the design-time and run-time phases. See EXPERIMENTS.md.
package taskreuse_test

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/artifact"
	"repro/internal/dynlist"
	"repro/internal/experiments"
	"repro/internal/manager"
	"repro/internal/mobility"
	"repro/internal/policy"
	"repro/internal/resultstore"
	"repro/internal/simtime"
	"repro/internal/storetest"
	"repro/internal/sweep"
	"repro/internal/taskgraph"
	"repro/internal/workload"
)

// --- Fig. 2 / Fig. 3: motivational schedules ------------------------------

// BenchmarkFig2 times the three motivational-example simulations
// (scheduling cost of the whole pipeline, not a paper table per se).
func BenchmarkFig2(b *testing.B) {
	for _, spec := range []string{"lru", "lfd", "locallfd:1"} {
		pol, err := policy.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(pol.Name(), func(b *testing.B) {
			cfg := manager.Config{RUs: 4, Latency: workload.PaperLatency(), Policy: pol}
			seq := workload.Fig2Sequence()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := manager.Run(cfg, dynlist.NewSequence(seq...)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3SkipEvents times the skip-events run of Fig. 3b including
// the design-time mobility phase amortized over executions.
func BenchmarkFig3SkipEvents(b *testing.B) {
	seq := workload.Fig3Sequence()
	lookup, _, err := mobility.ComputeAll(seq, 4, workload.PaperLatency())
	if err != nil {
		b.Fatal(err)
	}
	pol, err := policy.NewLocalLFD(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := manager.Config{
		RUs: 4, Latency: workload.PaperLatency(), Policy: pol,
		SkipEvents: true, Mobility: lookup,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := manager.Run(cfg, dynlist.NewSequence(seq...))
		if err != nil {
			b.Fatal(err)
		}
		if res.Makespan != simtime.FromMs(70) {
			b.Fatalf("makespan drifted: %v", res.Makespan)
		}
	}
}

// --- Fig. 9: the 500-application evaluation --------------------------------

// fig9Workload builds the paper's 500-application sequence once.
func fig9Workload(b *testing.B) (pool, seq []*taskgraph.Graph) {
	b.Helper()
	opt := experiments.DefaultOptions()
	pool = workload.Multimedia()
	feed, err := dynlist.RandomSequence(pool, opt.Apps, rand.New(rand.NewSource(opt.Seed)))
	if err != nil {
		b.Fatal(err)
	}
	items := feed.Remaining()
	seq = make([]*taskgraph.Graph, len(items))
	for i, it := range items {
		seq[i] = it.Graph
	}
	return pool, seq
}

// BenchmarkFig9Run times one full 500-application simulation per policy at
// the paper's most contended point (R=4) — the cost of regenerating one
// data point of Fig. 9.
func BenchmarkFig9Run(b *testing.B) {
	pool, seq := fig9Workload(b)
	lookup, _, err := mobility.ComputeAll(pool, 4, workload.PaperLatency())
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		pol  policy.Policy
		skip bool
	}{
		{"LRU", policy.NewLRU(), false},
		{"LocalLFD1", mustLocal(b, 1), false},
		{"LocalLFD4", mustLocal(b, 4), false},
		{"LocalLFD1+Skip", mustLocal(b, 1), true},
		{"LFD", policy.NewLFD(), false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := manager.Config{
				RUs: 4, Latency: workload.PaperLatency(), Policy: c.pol, SkipEvents: c.skip,
			}
			if c.skip {
				cfg.Mobility = lookup
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := manager.Run(cfg, dynlist.NewSequence(seq...)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 9 sweep: sequential vs parallel executor --------------------------

// fig9SweepSpec is the Fig. 9b grid (four policy series across the unit
// sweep) as a declarative sweep Spec.
func fig9SweepSpec(b *testing.B, pool, seq []*taskgraph.Graph) sweep.Spec {
	b.Helper()
	return sweep.Spec{
		Workloads: []sweep.Workload{{Pool: pool, Seq: seq}},
		RUs:       experiments.DefaultOptions().RUs,
		Latencies: []simtime.Time{workload.PaperLatency()},
		Policies: []sweep.PolicySpec{
			sweep.Fixed("LRU", policy.NewLRU()),
			sweep.LocalLFD(1, false),
			sweep.LocalLFD(1, true),
			sweep.Fixed("LFD", policy.NewLFD()),
		},
	}
}

// BenchmarkFig9Sweep measures regenerating the whole Fig. 9b grid —
// 4 policy series × 7 unit counts — sequentially (Workers=1) and on the
// parallel executor (one worker per CPU). The design-time mobility cache
// is warmed first so both variants measure pure simulation throughput;
// on an N-core host the parallel variant should approach N× (the
// acceptance bar is ≥2× on ≥4 cores). The result-collection order is
// byte-identical either way — see TestParallelReportsByteIdentical.
func BenchmarkFig9Sweep(b *testing.B) {
	pool, seq := fig9Workload(b)
	spec := fig9SweepSpec(b, pool, seq)
	// Warm the shared design-time cache so the measurement isolates the
	// executor (the first Run would otherwise pay the one-off mobility
	// computation and skew the smaller b.N runs).
	if _, err := (sweep.Executor{}).Run(spec); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"Sequential", 1},
		{"Parallel", 0}, // one worker per CPU
	} {
		b.Run(bc.name, func(b *testing.B) {
			ex := sweep.Executor{Workers: bc.workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rs, err := ex.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				if len(rs.Results) != spec.Size() {
					b.Fatalf("%d results for %d scenarios", len(rs.Results), spec.Size())
				}
			}
		})
	}
}

// BenchmarkFig9SweepColdCache includes the design-time phase: each
// iteration flushes the process-wide mobility cache, so the measurement
// covers what a fresh process pays for the full grid. The parallel
// variant overlaps the mobility computations across unit counts too.
func BenchmarkFig9SweepColdCache(b *testing.B) {
	pool, seq := fig9Workload(b)
	spec := fig9SweepSpec(b, pool, seq)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"Sequential", 1},
		{"Parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ex := sweep.Executor{Workers: bc.workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mobility.FlushCache()
				if _, err := ex.Run(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9SweepWarmStore measures serving the whole Fig. 9b grid
// from a populated result store: the cost of a re-run that re-simulates
// nothing (hash the workload once, 28 disk lookups, decode). Compare
// against BenchmarkFig9Sweep/Parallel — the gap is what the store saves
// on every overlapping re-run.
func BenchmarkFig9SweepWarmStore(b *testing.B) {
	pool, seq := fig9Workload(b)
	spec := fig9SweepSpec(b, pool, seq)
	store, err := resultstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ex := sweep.Executor{Store: store}
	// Cold run populates the store (and warms the mobility cache).
	if _, err := ex.Run(spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := ex.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Results) != spec.Size() {
			b.Fatalf("%d results for %d scenarios", len(rs.Results), spec.Size())
		}
	}
	b.StopTimer()
	if _, misses, _ := store.Stats(); misses != int64(spec.Size()) {
		b.Fatalf("warm iterations missed the store (%d misses beyond the cold run's %d)",
			misses-int64(spec.Size()), spec.Size())
	}
}

// --- Design-time artifact cache: cold compute vs warm load -----------------

// artifactBenchGrid is the design-time work a Fig. 9-style sweep needs:
// every multimedia template at several unit counts.
func artifactBenchGrid() (pool []*taskgraph.Graph, rus []int) {
	return workload.Multimedia(), []int{4, 5, 6}
}

// BenchmarkFig9ArtifactCold measures the design-time phase a fresh
// process pays with no artifact store: every mobility table computed
// from scratch. The ns/table metric is the cold baseline for
// BenchmarkFig9ArtifactWarm.
func BenchmarkFig9ArtifactCold(b *testing.B) {
	pool, rus := artifactBenchGrid()
	prev := mobility.SetStore(nil)
	defer mobility.SetStore(prev)
	defer mobility.FlushCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mobility.FlushCache()
		for _, u := range rus {
			if _, _, err := mobility.CachedAll(pool, u, workload.PaperLatency()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rus)*len(pool)), "ns/table")
}

// BenchmarkFig9ArtifactWarm measures the same design-time phase served
// from a pre-seeded artifact store — what the second process of a
// cross-scenario (or cross-host) sweep pays instead of recomputing.
// Every iteration flushes the in-process map, so the timed work is
// store probe + decode + validate per table; the benchmark fails if any
// table was recomputed. CI's bench-regression job trend-gates the
// ns/table metric next to the hot loop's ns/event.
func BenchmarkFig9ArtifactWarm(b *testing.B) {
	pool, rus := artifactBenchGrid()
	store, err := resultstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	restore := artifact.Install(store)
	defer restore()
	defer mobility.FlushCache()
	// Seed: one cold pass computes and persists every table.
	mobility.FlushCache()
	for _, u := range rus {
		if _, _, err := mobility.CachedAll(pool, u, workload.PaperLatency()); err != nil {
			b.Fatal(err)
		}
	}
	mobility.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mobility.FlushCache()
		for _, u := range rus {
			if _, _, err := mobility.CachedAll(pool, u, workload.PaperLatency()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if st := mobility.Stats(); st.Computes != 0 {
		b.Fatalf("warm iterations recomputed %d tables; the artifact tier should have served them", st.Computes)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rus)*len(pool)), "ns/table")
}

// BenchmarkFig9SweepDispatch isolates the heavy-tail dispatch fix on a
// small pool, in the grid shape where a static spec-order feed is
// weakest: clairvoyant LFD at R=4 costs ~20× LRU (full-future scans
// under maximum contention), and on a descending-RU grid — a perfectly
// natural way to write the axis — that most expensive scenario has the
// highest spec index, so spec order starts it when everything else is
// already draining and the whole pool idles behind one straggler.
// Cost-order (longest-processing-time) dispatch starts it first and
// backfills with the cheap scenarios, cutting the tail regardless of
// how the user happened to order the axes. Collection order and results
// are byte-identical either way (see TestSpecOrderDispatchIdentical);
// the ascending Fig. 9 grids dodge the worst case only by luck of
// putting R=4 first.
func BenchmarkFig9SweepDispatch(b *testing.B) {
	pool, seq := fig9Workload(b)
	spec := fig9SweepSpec(b, pool, seq)
	spec.RUs = []int{10, 9, 8, 7, 6, 5, 4} // expensive contended scenarios last in spec order
	// Warm the shared design-time cache so the measurement isolates
	// dispatch strategy, not the one-off mobility computation.
	if _, err := (sweep.Executor{}).Run(spec); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name      string
		specOrder bool
	}{
		{"SpecOrder", true},
		{"CostOrderLPT", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ex := sweep.Executor{Workers: 4, SpecOrderDispatch: bc.specOrder}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ex.RunSummaries(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9SweepMeasuredDispatch contrasts the static cost heuristic
// with measured-cost dispatch on the sweep's tail latency: the same
// descending-RU grid as BenchmarkFig9SweepDispatch (the ~20× LFD-at-R=4
// straggler last in spec order), re-simulated in full on a 4-worker pool.
// A cold run populates the store with per-scenario wall times, the
// entries are then invalidated exactly as a schema bump would (timings
// survive at the same keys, outcomes do not), and each variant re-runs
// the whole grid: StaticHeuristic without the store, MeasuredCost with it
// — dispatch ranked by last run's real measurements instead of the
// policy-family guess. The measured total is the sweep's completion time,
// i.e. the straggler tail the LPT feed exists to cut; the measured
// variant's margin over the heuristic is what warm re-runs (and the
// coordinator's crash-recovery re-runs) gain on grids where the heuristic
// misjudges relative costs. Results are byte-identical either way.
func BenchmarkFig9SweepMeasuredDispatch(b *testing.B) {
	pool, seq := fig9Workload(b)
	spec := fig9SweepSpec(b, pool, seq)
	spec.RUs = []int{10, 9, 8, 7, 6, 5, 4}
	store, err := resultstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// Cold run: warms the mobility cache and records every scenario's
	// measured wall time in the store.
	if _, err := (sweep.Executor{Store: store}).Run(spec); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		ex   sweep.Executor
	}{
		{"StaticHeuristic", sweep.Executor{Workers: 4}},
		{"MeasuredCost", sweep.Executor{Workers: 4, Store: store}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Each re-simulation writes fresh current-schema entries;
				// re-stale them outside the timed region so every
				// iteration measures a full re-simulation with hints, not
				// a warm store serve.
				b.StopTimer()
				storetest.StaleifySchema(b, store)
				b.StartTimer()
				if _, err := bc.ex.RunSummaries(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSink keeps a benchmark's output conservatively live so the
// retained-memory measurements below can't be optimized away.
var benchSink any

// BenchmarkFig9SweepSummary contrasts what a completed sweep pins in
// memory: a full ResultSet (every raw run and ideal baseline, O(grid)
// completion-time slices) versus the streaming SummaryCollector rows
// (scalar counters only). The retained-B/scn metric is measured
// directly — heap in use holding the output minus heap after dropping
// it, per scenario — and must stay flat for the summary stream as the
// grid grows from 3 to 7 unit counts, while the ResultSet's grows with
// the workload. This is the memory story behind sharded, store-merged
// grids: no process ever needs the whole grid resident.
func BenchmarkFig9SweepSummary(b *testing.B) {
	pool, seq := fig9Workload(b)
	for _, grid := range []struct {
		name string
		rus  []int
	}{
		{"R4-6", []int{4, 5, 6}},
		{"R4-10", []int{4, 5, 6, 7, 8, 9, 10}},
	} {
		spec := fig9SweepSpec(b, pool, seq)
		spec.RUs = grid.rus
		if _, err := (sweep.Executor{}).Run(spec); err != nil {
			b.Fatal(err) // warm the mobility cache
		}
		measureRetained := func(b *testing.B, run func() any) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSink = run()
			}
			b.StopTimer()
			var with, without runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&with)
			benchSink = nil
			runtime.GC()
			runtime.ReadMemStats(&without)
			retained := int64(with.HeapAlloc) - int64(without.HeapAlloc)
			if retained < 0 {
				retained = 0
			}
			b.ReportMetric(float64(retained)/float64(spec.Size()), "retained-B/scn")
		}
		ex := sweep.Executor{}
		b.Run("ResultSet/"+grid.name, func(b *testing.B) {
			measureRetained(b, func() any {
				rs, err := ex.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				return rs
			})
		})
		b.Run("SummaryStream/"+grid.name, func(b *testing.B) {
			measureRetained(b, func() any {
				ss, err := ex.RunSummaries(spec)
				if err != nil {
					b.Fatal(err)
				}
				return ss
			})
		})
	}
}

// --- Table I: worst-case replacement decision ------------------------------

// BenchmarkTableI regenerates Table I: the worst-case run-time delay of a
// single replacement decision (victim absent from the whole lookahead,
// four candidates to scan).
func BenchmarkTableI(b *testing.B) {
	_, seq := fig9Workload(b)
	full := experiments.FullFutureLookahead(seq)
	cases := []struct {
		name string
		pol  policy.Policy
		look []taskgraph.TaskID
	}{
		{"LRU", policy.NewLRU(), nil},
		{"LFD", policy.NewLFD(), full},
		{"LocalLFD1", mustLocal(b, 1), experiments.WindowLookahead(1)},
		{"LocalLFD2", mustLocal(b, 2), experiments.WindowLookahead(2)},
		{"LocalLFD4", mustLocal(b, 4), experiments.WindowLookahead(4)},
	}
	for _, c := range cases {
		// Two worst cases: the paper's literal one (victim absent — our
		// implementation short-circuits on the first never-reused
		// candidate) and the cost-equivalent late-hit one (all four
		// candidates force full scans, the cost the paper measured).
		absent := experiments.NewWorstCase(c.look)
		lateHit := experiments.NewLateHitCase(c.look)
		b.Run(c.name+"/absent", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dec := c.pol.SelectVictim(absent.Request, absent.Candidates)
				if dec.Reusable {
					b.Fatal("worst case must not find the victim")
				}
			}
		})
		b.Run(c.name+"/latehit", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.pol.SelectVictim(lateHit.Request, lateHit.Candidates)
			}
		})
	}
}

// --- Table II: module impact per benchmark ---------------------------------

// BenchmarkTableIIManager approximates Table II column 3: the run-time
// cost of driving one application instance through the execution manager.
func BenchmarkTableIIManager(b *testing.B) {
	for _, g := range workload.Multimedia() {
		b.Run(g.Name(), func(b *testing.B) {
			cfg := manager.Config{RUs: 4, Latency: workload.PaperLatency(), Policy: policy.NewLRU()}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := manager.Run(cfg, dynlist.NewSequence(g)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableIIDesignTime regenerates Table II column 6: the
// design-time mobility calculation per benchmark.
func BenchmarkTableIIDesignTime(b *testing.B) {
	for _, g := range workload.Multimedia() {
		b.Run(g.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mobility.Compute(g, 4, workload.PaperLatency()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Abstract's 10× claim ---------------------------------------------------

// BenchmarkHybridVsPureRuntime contrasts the per-application run-time cost
// of the hybrid technique (replacement decisions only) with an equivalent
// purely run-time technique (which recomputes mobilities on every
// arrival). The paper reports a ~10× reduction.
func BenchmarkHybridVsPureRuntime(b *testing.B) {
	g := workload.Hough()
	pol := mustLocal(b, 1)
	look := experiments.WindowLookahead(1)
	wc := experiments.NewWorstCase(look)
	decisions := g.NumTasks()

	b.Run("hybrid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for d := 0; d < decisions; d++ {
				pol.SelectVictim(wc.Request, wc.Candidates)
			}
		}
	})
	b.Run("pure-runtime", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mobility.ComputePureRuntime(g, 4, workload.PaperLatency()); err != nil {
				b.Fatal(err)
			}
			for d := 0; d < decisions; d++ {
				pol.SelectVictim(wc.Request, wc.Candidates)
			}
		}
	})
}

// --- helpers ---------------------------------------------------------------

func mustLocal(b *testing.B, w int) policy.Policy {
	b.Helper()
	p, err := policy.NewLocalLFD(w)
	if err != nil {
		b.Fatal(err)
	}
	return p
}
